package workload

import (
	"math/rand"

	"repro/internal/qtree"
)

// QueryConfig controls random query-tree generation.
type QueryConfig struct {
	// MaxDepth bounds the alternation depth (a leaf has depth 1).
	MaxDepth int
	// MaxFanout bounds the children per interior node (at least 2 are used).
	MaxFanout int
	// LeafProb is the probability of cutting a branch short with a leaf.
	LeafProb float64
}

// DefaultQueryConfig is a moderate tree shape for property tests.
func DefaultQueryConfig() QueryConfig {
	return QueryConfig{MaxDepth: 4, MaxFanout: 3, LeafProb: 0.4}
}

// RandomQuery draws a random ∧/∨ query tree whose leaves constrain the
// scenario's base attributes with random constants. The root is a
// conjunction; operators alternate by level.
func (s *Scenario) RandomQuery(rng *rand.Rand, cfg QueryConfig) *qtree.Node {
	q := s.randomNode(rng, cfg, cfg.MaxDepth, qtree.KindAnd)
	return q.Normalize()
}

func (s *Scenario) randomNode(rng *rand.Rand, cfg QueryConfig, depth int, kind qtree.NodeKind) *qtree.Node {
	if depth <= 1 || rng.Float64() < cfg.LeafProb {
		return s.randomLeaf(rng)
	}
	n := 2 + rng.Intn(cfg.MaxFanout-1)
	kids := make([]*qtree.Node, n)
	next := qtree.KindOr
	if kind == qtree.KindOr {
		next = qtree.KindAnd
	}
	for i := range kids {
		kids[i] = s.randomNode(rng, cfg, depth-1, next)
	}
	if kind == qtree.KindAnd {
		return qtree.And(kids...)
	}
	return qtree.Or(kids...)
}

func (s *Scenario) randomLeaf(rng *rand.Rand) *qtree.Node {
	attr := s.BaseAttrs[rng.Intn(len(s.BaseAttrs))]
	return qtree.Leaf(s.Constraint(attr, rng.Intn(s.ValueDomain)))
}

// SimpleConjunction draws a random simple conjunction of n constraints over
// distinct attributes (cycling if n exceeds the attribute count).
func (s *Scenario) SimpleConjunction(rng *rand.Rand, n int) *qtree.Node {
	kids := make([]*qtree.Node, n)
	perm := rng.Perm(len(s.BaseAttrs))
	for i := 0; i < n; i++ {
		attr := s.BaseAttrs[perm[i%len(perm)]]
		kids[i] = qtree.Leaf(s.Constraint(attr, rng.Intn(s.ValueDomain)))
	}
	return qtree.And(kids...).Normalize()
}

// WorstCaseCompactness builds the Section 8 compactness family: a scenario
// of 2k independent attributes and the query
//
//	Q = ∧_{i=1..k} ( [a_{2i} = v] ∨ [a_{2i+1} = v] )
//
// whose DNF has 2^k disjuncts of k constraints each, while the original
// (and TDQM-preserved) tree has ~3k nodes.
func WorstCaseCompactness(k int) (*Scenario, *qtree.Node) {
	s := New(Config{Indep: 2 * k})
	kids := make([]*qtree.Node, k)
	for i := 0; i < k; i++ {
		kids[i] = qtree.Or(
			qtree.Leaf(s.Constraint(s.BaseAttrs[2*i], 0)),
			qtree.Leaf(s.Constraint(s.BaseAttrs[2*i+1], 1)),
		)
	}
	return s, qtree.And(kids...).Normalize()
}

// DependencyConjunction builds the Section 8 EDNF-cost family: a conjunction
// of n conjuncts, each a disjunction of k leaf constraints, where e of the
// pair groups span conjunct boundaries (degree-of-dependency e); the
// remaining constraints are independent. With e = 0 every conjunct's EDNF
// collapses to ε; each increment of e adds dependent constraints that
// survive into the EDNF product.
func DependencyConjunction(n, k, e int) (*Scenario, *qtree.Node) {
	if k < 2 {
		k = 2
	}
	if e > n-1 {
		e = n - 1
	}
	s := New(Config{Indep: n * k, Pairs: e})
	kids := make([]*qtree.Node, n)
	indep := 0
	for i := 0; i < n; i++ {
		leaves := make([]*qtree.Node, k)
		for j := 0; j < k; j++ {
			leaves[j] = qtree.Leaf(s.Constraint(s.BaseAttrs[indep], 0))
			indep++
		}
		kids[i] = qtree.Or(leaves...)
	}
	// Thread e dependent pairs across consecutive conjuncts: the pair
	// group's first attribute replaces a leaf of conjunct i, its second a
	// leaf of conjunct i+1.
	for p := 0; p < e; p++ {
		g := s.Groups[n*k+p] // pair groups follow the independents
		kids[p].Kids[0] = qtree.Leaf(s.Constraint(g.Attrs[0], 0))
		kids[p+1].Kids[k-1] = qtree.Leaf(s.Constraint(g.Attrs[1], 0))
	}
	return s, qtree.And(kids...).Normalize()
}

// IndependentTree builds a query of n independent constraints arranged as a
// conjunction of ⌈n/2⌉ two-way disjunctions — the "no dependencies" case of
// Section 8 where TDQM pays virtually no extra cost while DNF conversion
// still explodes.
func IndependentTree(n int) (*Scenario, *qtree.Node) {
	if n < 2 {
		n = 2
	}
	s := New(Config{Indep: n})
	var kids []*qtree.Node
	for i := 0; i+1 < n; i += 2 {
		kids = append(kids, qtree.Or(
			qtree.Leaf(s.Constraint(s.BaseAttrs[i], 0)),
			qtree.Leaf(s.Constraint(s.BaseAttrs[i+1], 1)),
		))
	}
	if n%2 == 1 {
		kids = append(kids, qtree.Leaf(s.Constraint(s.BaseAttrs[n-1], 0)))
	}
	return s, qtree.And(kids...).Normalize()
}
