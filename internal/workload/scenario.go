// Package workload generates synthetic translation scenarios — mapping
// specifications with controlled constraint-dependency structure, random
// query trees, and random data tuples — for the property-based tests and
// the benchmark harness that reproduce the paper's complexity and
// compactness claims (Sections 4.4 and 8).
//
// A scenario partitions a base-attribute universe into dependency groups
// mirroring the paper's examples:
//
//   - independent attributes (like publisher): one exact rule each;
//   - pair groups (like pyear/pmonth → pdate): an exact rule for the pair
//     and an exact prefix rule for the leading attribute alone, the second
//     attribute having no mapping by itself;
//   - inexact pair groups (like ln/fn → author at Clbooks): an exact rule
//     for the pair and *relaxing* containment rules for each attribute
//     alone;
//   - triple groups: exact rules for the full triple, the leading pair, and
//     the leading attribute.
//
// The specifications are sound and complete by construction (Definitions
// 3–4): every rule emits the minimal subsuming mapping of an indecomposable
// constraint combination under the scenario's data semantics, and every
// indecomposable combination with a non-trivial mapping has a rule.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/engine"
	"repro/internal/qtree"
	"repro/internal/rules"
	"repro/internal/values"
)

// GroupKind classifies a dependency group.
type GroupKind int

const (
	// KindIndep is a single independent attribute.
	KindIndep GroupKind = iota
	// KindPair is a pyear/pmonth-style pair: only the first attribute has a
	// (prefix) mapping alone.
	KindPair
	// KindInexactPair is an ln/fn-style pair whose individual attributes
	// relax to word containment.
	KindInexactPair
	// KindTriple is a three-attribute group with nested prefix mappings.
	KindTriple
)

func (k GroupKind) String() string {
	switch k {
	case KindIndep:
		return "indep"
	case KindPair:
		return "pair"
	case KindInexactPair:
		return "inexact-pair"
	case KindTriple:
		return "triple"
	default:
		return fmt.Sprintf("GroupKind(%d)", int(k))
	}
}

// Group is one dependency group: its base attributes and the target
// attribute their combination maps to.
type Group struct {
	Kind   GroupKind
	Attrs  []string
	Target string
}

// Config sizes a scenario.
type Config struct {
	Indep        int // independent attributes
	Pairs        int // pyear/pmonth-style groups
	InexactPairs int // ln/fn-style groups
	Triples      int // triple groups
}

// Scenario is a generated translation scenario.
type Scenario struct {
	Spec   *rules.Spec
	Groups []Group
	// BaseAttrs lists every mediator-side attribute.
	BaseAttrs []string
	// Eval evaluates both vocabularies over scenario tuples.
	Eval *engine.Evaluator
	// ValueDomain is the number of distinct constants ("v0".."v<n-1>").
	ValueDomain int
}

// New builds a scenario for the given configuration.
func New(cfg Config) *Scenario {
	s := &Scenario{Eval: engine.NewEvaluator(), ValueDomain: 4}
	reg := rules.NewRegistry()
	registerWorkloadActions(reg)

	var rs []*rules.Rule
	var caps []rules.Capability
	attrIdx, groupIdx := 0, 0

	nextAttr := func() string {
		a := fmt.Sprintf("a%d", attrIdx)
		attrIdx++
		s.BaseAttrs = append(s.BaseAttrs, a)
		return a
	}

	addGroup := func(kind GroupKind, n int) {
		g := Group{Kind: kind, Target: fmt.Sprintf("t%d", groupIdx)}
		groupIdx++
		for i := 0; i < n; i++ {
			g.Attrs = append(g.Attrs, nextAttr())
		}
		s.Groups = append(s.Groups, g)
		rs = append(rs, groupRules(g)...)
		caps = append(caps, groupCaps(g)...)
	}

	for i := 0; i < cfg.Indep; i++ {
		addGroup(KindIndep, 1)
	}
	for i := 0; i < cfg.Pairs; i++ {
		addGroup(KindPair, 2)
	}
	for i := 0; i < cfg.InexactPairs; i++ {
		addGroup(KindInexactPair, 2)
	}
	for i := 0; i < cfg.Triples; i++ {
		addGroup(KindTriple, 3)
	}

	target := rules.NewTarget("workload", caps...)
	s.Spec = rules.MustSpec("K_workload", target, reg, rs...)
	return s
}

// groupRules builds the mapping rules for one group.
func groupRules(g Group) []*rules.Rule {
	lit := func(name string) rules.AttrPat { return rules.AttrPat{Name: name} }
	tgt := func() rules.AttrPat { return rules.AttrPat{Name: g.Target} }
	valueConds := func(vars ...string) []rules.CondRef {
		out := make([]rules.CondRef, len(vars))
		for i, v := range vars {
			out[i] = rules.CondRef{Name: "Value", Args: []string{v}}
		}
		return out
	}
	name := func(suffix string) string { return "R_" + g.Target + "_" + suffix }

	switch g.Kind {
	case KindIndep:
		return []*rules.Rule{{
			Name:     name("full"),
			Patterns: []rules.ConstraintPat{{Attr: lit(g.Attrs[0]), Op: qtree.OpEq, RHS: rules.VarTerm("A")}},
			Conds:    valueConds("A"),
			Emit:     rules.EmitLeaf(rules.ConstraintPat{Attr: tgt(), Op: qtree.OpEq, RHS: rules.VarTerm("A")}),
			Exact:    true,
		}}
	case KindPair:
		return []*rules.Rule{
			{
				Name: name("full"),
				Patterns: []rules.ConstraintPat{
					{Attr: lit(g.Attrs[0]), Op: qtree.OpEq, RHS: rules.VarTerm("A")},
					{Attr: lit(g.Attrs[1]), Op: qtree.OpEq, RHS: rules.VarTerm("B")},
				},
				Conds: valueConds("A", "B"),
				Lets:  []rules.LetClause{{Var: "K", Func: "JoinBar", Args: []string{"A", "B"}}},
				Emit:  rules.EmitLeaf(rules.ConstraintPat{Attr: tgt(), Op: qtree.OpEq, RHS: rules.VarTerm("K")}),
				Exact: true,
			},
			{
				Name:     name("p1"),
				Patterns: []rules.ConstraintPat{{Attr: lit(g.Attrs[0]), Op: qtree.OpEq, RHS: rules.VarTerm("A")}},
				Conds:    valueConds("A"),
				Lets:     []rules.LetClause{{Var: "K", Func: "PrefixBar", Args: []string{"A"}}},
				Emit:     rules.EmitLeaf(rules.ConstraintPat{Attr: tgt(), Op: qtree.OpStarts, RHS: rules.VarTerm("K")}),
				Exact:    true,
			},
		}
	case KindInexactPair:
		mk := func(i int) *rules.Rule {
			return &rules.Rule{
				Name:     name(fmt.Sprintf("w%d", i)),
				Patterns: []rules.ConstraintPat{{Attr: lit(g.Attrs[i]), Op: qtree.OpEq, RHS: rules.VarTerm("A")}},
				Conds:    valueConds("A"),
				Lets:     []rules.LetClause{{Var: "W", Func: "WordOf", Args: []string{"A"}}},
				Emit:     rules.EmitLeaf(rules.ConstraintPat{Attr: tgt(), Op: qtree.OpContains, RHS: rules.VarTerm("W")}),
			}
		}
		return []*rules.Rule{
			{
				Name: name("full"),
				Patterns: []rules.ConstraintPat{
					{Attr: lit(g.Attrs[0]), Op: qtree.OpEq, RHS: rules.VarTerm("A")},
					{Attr: lit(g.Attrs[1]), Op: qtree.OpEq, RHS: rules.VarTerm("B")},
				},
				Conds: valueConds("A", "B"),
				Lets:  []rules.LetClause{{Var: "K", Func: "JoinSpace", Args: []string{"A", "B"}}},
				Emit:  rules.EmitLeaf(rules.ConstraintPat{Attr: tgt(), Op: qtree.OpEq, RHS: rules.VarTerm("K")}),
				Exact: true,
			},
			mk(0), mk(1),
		}
	case KindTriple:
		return []*rules.Rule{
			{
				Name: name("full"),
				Patterns: []rules.ConstraintPat{
					{Attr: lit(g.Attrs[0]), Op: qtree.OpEq, RHS: rules.VarTerm("A")},
					{Attr: lit(g.Attrs[1]), Op: qtree.OpEq, RHS: rules.VarTerm("B")},
					{Attr: lit(g.Attrs[2]), Op: qtree.OpEq, RHS: rules.VarTerm("C")},
				},
				Conds: valueConds("A", "B", "C"),
				Lets:  []rules.LetClause{{Var: "K", Func: "JoinBar3", Args: []string{"A", "B", "C"}}},
				Emit:  rules.EmitLeaf(rules.ConstraintPat{Attr: tgt(), Op: qtree.OpEq, RHS: rules.VarTerm("K")}),
				Exact: true,
			},
			{
				Name: name("p12"),
				Patterns: []rules.ConstraintPat{
					{Attr: lit(g.Attrs[0]), Op: qtree.OpEq, RHS: rules.VarTerm("A")},
					{Attr: lit(g.Attrs[1]), Op: qtree.OpEq, RHS: rules.VarTerm("B")},
				},
				Conds: valueConds("A", "B"),
				Lets:  []rules.LetClause{{Var: "K", Func: "PrefixBar2", Args: []string{"A", "B"}}},
				Emit:  rules.EmitLeaf(rules.ConstraintPat{Attr: tgt(), Op: qtree.OpStarts, RHS: rules.VarTerm("K")}),
				Exact: true,
			},
			{
				Name:     name("p1"),
				Patterns: []rules.ConstraintPat{{Attr: lit(g.Attrs[0]), Op: qtree.OpEq, RHS: rules.VarTerm("A")}},
				Conds:    valueConds("A"),
				Lets:     []rules.LetClause{{Var: "K", Func: "PrefixBar", Args: []string{"A"}}},
				Emit:     rules.EmitLeaf(rules.ConstraintPat{Attr: tgt(), Op: qtree.OpStarts, RHS: rules.VarTerm("K")}),
				Exact:    true,
			},
		}
	default:
		panic("workload: unknown group kind")
	}
}

func groupCaps(g Group) []rules.Capability {
	switch g.Kind {
	case KindIndep:
		return []rules.Capability{{Attr: g.Target, Op: qtree.OpEq}}
	case KindPair, KindTriple:
		return []rules.Capability{
			{Attr: g.Target, Op: qtree.OpEq},
			{Attr: g.Target, Op: qtree.OpStarts},
		}
	case KindInexactPair:
		return []rules.Capability{
			{Attr: g.Target, Op: qtree.OpEq},
			{Attr: g.Target, Op: qtree.OpContains},
		}
	default:
		return nil
	}
}

// registerWorkloadActions installs the value-composition functions the
// generated rules call.
func registerWorkloadActions(reg *rules.Registry) {
	str := func(b rules.Binding, arg string) (string, error) {
		v, err := b.Value(arg)
		if err != nil {
			return "", err
		}
		s, ok := v.(values.String)
		if !ok {
			return "", fmt.Errorf("workload: argument %s is not a string", arg)
		}
		return s.Raw(), nil
	}
	join := func(sep, suffix string, n int) rules.ActionFunc {
		return func(b rules.Binding, args []string) (rules.BoundVal, error) {
			parts := make([]string, n)
			for i := 0; i < n; i++ {
				p, err := str(b, args[i])
				if err != nil {
					return rules.BoundVal{}, err
				}
				parts[i] = p
			}
			return rules.ValueOf(values.String(strings.Join(parts, sep) + suffix)), nil
		}
	}
	reg.RegisterAction("JoinBar", join("|", "", 2))
	reg.RegisterAction("JoinBar3", join("|", "", 3))
	reg.RegisterAction("JoinSpace", join(" ", "", 2))
	reg.RegisterAction("PrefixBar", join("|", "|", 1))
	reg.RegisterAction("PrefixBar2", join("|", "|", 2))
	reg.RegisterAction("WordOf", func(b rules.Binding, args []string) (rules.BoundVal, error) {
		w, err := str(b, args[0])
		if err != nil {
			return rules.BoundVal{}, err
		}
		return rules.ValueOf(values.Word(w)), nil
	})
	// Declared result kinds let rules.Compose record these conversions as
	// replayed lets when a chain spec applies them to request-time values.
	for _, name := range []string{"JoinBar", "JoinBar3", "JoinSpace", "PrefixBar", "PrefixBar2", "WordOf"} {
		reg.RegisterActionKind(name, rules.BindValue)
	}
}

// Value returns the i-th constant of the value domain.
func (s *Scenario) Value(i int) values.String {
	return values.String(fmt.Sprintf("v%d", i%s.ValueDomain))
}

// Constraint builds [attr = v<i>].
func (s *Scenario) Constraint(attr string, i int) *qtree.Constraint {
	return qtree.Sel(qtree.A(attr), qtree.OpEq, s.Value(i))
}

// RandomTuple draws a tuple assigning every base attribute a random value
// and deriving every group's target attribute, so that original and
// translated queries are evaluable on the same tuple.
func (s *Scenario) RandomTuple(rng *rand.Rand) engine.Tuple {
	vals := make(map[string]string, len(s.BaseAttrs))
	for _, a := range s.BaseAttrs {
		vals[a] = fmt.Sprintf("v%d", rng.Intn(s.ValueDomain))
	}
	return s.Tuple(vals)
}

// Tuple materializes the universe tuple of a full base-attribute assignment
// (attribute name → raw value string): every base attribute carries its
// assigned value and every group's target attribute is derived from it under
// the scenario's data semantics, so original and translated queries are
// evaluable on the same tuple. Attributes missing from vals default to "v0".
// This is the data-generation primitive the conformance harness uses to
// craft adversarial witness tuples for specific assignments.
func (s *Scenario) Tuple(vals map[string]string) engine.Tuple {
	t := make(engine.Tuple)
	get := func(a string) string {
		if v, ok := vals[a]; ok {
			return v
		}
		return "v0"
	}
	for _, a := range s.BaseAttrs {
		t.Set(qtree.A(a), values.String(get(a)))
	}
	for _, g := range s.Groups {
		parts := make([]string, len(g.Attrs))
		for i, a := range g.Attrs {
			parts[i] = get(a)
		}
		sep := "|"
		if g.Kind == KindInexactPair {
			sep = " "
		}
		t.Set(qtree.A(g.Target), values.String(strings.Join(parts, sep)))
	}
	return t
}

// Relation draws n random universe tuples as a named engine relation — the
// synthetic dataset generator behind the conformance harness's executable
// oracles.
func (s *Scenario) Relation(name string, rng *rand.Rand, n int) *engine.Relation {
	r := engine.NewRelation(name)
	for i := 0; i < n; i++ {
		r.Tuples = append(r.Tuples, s.RandomTuple(rng))
	}
	return r
}

// GroupFor returns the dependency group whose target attribute is named
// target, if any.
func (s *Scenario) GroupFor(target string) (Group, bool) {
	for _, g := range s.Groups {
		if g.Target == target {
			return g, true
		}
	}
	return Group{}, false
}
