package workload

// Chain scenarios: a second (and optionally third, ...) mediation hop
// stacked on top of a base scenario, for exercising rules.Compose and the
// sequential-vs-composed differential oracles. The base spec maps mediator
// attributes a* to intermediate targets t*; a chain layer maps those targets
// to a further vocabulary u* (then w*, ...), with the same dependency-group
// flavors the base generator uses:
//
//   - pass groups re-emit a target's constraints verbatim under a new name;
//   - wrap groups prepend a sentinel ("zz|") via a conversion function, so
//     composition must record replayed lets;
//   - pair groups join two targets into one downstream attribute: the joint
//     rule needs both targets in one conjunction (a cross-emission matching
//     per-rule composition can never see — the documented superset
//     divergence), the leading target alone maps to an exact prefix, and the
//     second target deliberately has no mapping by itself (the unmatched →
//     True path).
//
// Data semantics extend the same way: Extend derives each chain attribute
// from the upstream tuple, so original, intermediate, and chained queries
// are all evaluable on one universe tuple.

import (
	"fmt"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/qtree"
	"repro/internal/rules"
	"repro/internal/values"
)

// ChainKind classifies a chain dependency group.
type ChainKind int

const (
	// ChainPass re-emits one upstream attribute's constraints verbatim.
	ChainPass ChainKind = iota
	// ChainWrap maps one upstream attribute through a conversion function.
	ChainWrap
	// ChainPair joins two upstream attributes into one chain attribute.
	ChainPair
)

func (k ChainKind) String() string {
	switch k {
	case ChainPass:
		return "pass"
	case ChainWrap:
		return "wrap"
	case ChainPair:
		return "pair"
	default:
		return fmt.Sprintf("ChainKind(%d)", int(k))
	}
}

// ChainGroup is one chain dependency group: the upstream attributes it
// consumes and the chain attribute it produces.
type ChainGroup struct {
	Kind    ChainKind
	Sources []string
	U       string
}

// chainAttr is one attribute of a chain layer's input vocabulary with the
// operators upstream emissions can impose on it.
type chainAttr struct {
	name string
	ops  []string
}

// ChainScenario is one chain layer over a base scenario (or over a previous
// chain layer — see Next).
type ChainScenario struct {
	// Base is the underlying scenario whose spec forms hop 1.
	Base *Scenario
	// Spec2 maps this layer's input vocabulary to its output vocabulary;
	// rules.Compose(hop1, Spec2) collapses the chain.
	Spec2 *rules.Spec
	// Groups records the chain's dependency structure.
	Groups []ChainGroup

	level int
	out   []chainAttr
}

// NewChain stacks a random chain layer over s: every target attribute of s
// is consumed by exactly one chain group. The walk is a pure function of
// (s, rng), so the conformance harness can regenerate the identical chain
// from a seed without widening its replay strings.
func NewChain(s *Scenario, rng *rand.Rand) *ChainScenario {
	vocab := make([]chainAttr, 0, len(s.Groups))
	for _, g := range s.Groups {
		vocab = append(vocab, chainAttr{name: g.Target, ops: groupOps(g.Kind)})
	}
	return buildChain(s, vocab, 2, rng)
}

// Next stacks a further chain layer over cs's output vocabulary, for 3-hop
// chains (associativity testing). Extend calls compose left to right:
// ch3.Extend(ch2.Extend(tuple)).
func (cs *ChainScenario) Next(rng *rand.Rand) *ChainScenario {
	return buildChain(cs.Base, cs.out, cs.level+1, rng)
}

// groupOps lists the operators the base spec's rules emit on a group's
// target attribute.
func groupOps(k GroupKind) []string {
	switch k {
	case KindIndep:
		return []string{qtree.OpEq}
	case KindPair, KindTriple:
		return []string{qtree.OpEq, qtree.OpStarts}
	case KindInexactPair:
		return []string{qtree.OpEq, qtree.OpContains}
	default:
		return nil
	}
}

func buildChain(base *Scenario, vocab []chainAttr, level int, rng *rand.Rand) *ChainScenario {
	cs := &ChainScenario{Base: base, level: level}
	prefix := string(rune('u' + (level - 2))) // u, v, w, ...

	reg := rules.NewRegistry()
	registerWorkloadActions(reg)
	registerChainActions(reg)

	var rs []*rules.Rule
	capSet := make(map[string]bool)
	var caps []rules.Capability
	emitCap := func(attr, op string) {
		key := attr + "\x00" + op
		if !capSet[key] {
			capSet[key] = true
			caps = append(caps, rules.Capability{Attr: attr, Op: op})
		}
	}

	i, ui := 0, 0
	for i < len(vocab) {
		u := fmt.Sprintf("%s%d", prefix, ui)
		ui++
		var g ChainGroup
		var outOps []string
		switch {
		case i+1 < len(vocab) && rng.Float64() < 0.35:
			g = ChainGroup{Kind: ChainPair, Sources: []string{vocab[i].name, vocab[i+1].name}, U: u}
			rs = append(rs, chainPairRules(u, vocab[i], vocab[i+1], emitCap)...)
			outOps = []string{qtree.OpEq, qtree.OpStarts}
			if hasOp(vocab[i].ops, qtree.OpContains) {
				outOps = append(outOps, qtree.OpContains)
			}
			i += 2
		case rng.Float64() < 0.5:
			g = ChainGroup{Kind: ChainWrap, Sources: []string{vocab[i].name}, U: u}
			rs = append(rs, chainWrapRules(u, vocab[i], emitCap)...)
			outOps = vocab[i].ops
			i++
		default:
			g = ChainGroup{Kind: ChainPass, Sources: []string{vocab[i].name}, U: u}
			rs = append(rs, chainPassRules(u, vocab[i], emitCap)...)
			outOps = vocab[i].ops
			i++
		}
		cs.Groups = append(cs.Groups, g)
		cs.out = append(cs.out, chainAttr{name: u, ops: outOps})
	}

	target := rules.NewTarget(fmt.Sprintf("chain%d", level), caps...)
	cs.Spec2 = rules.MustSpec(fmt.Sprintf("K_chain%d", level), target, reg, rs...)
	return cs
}

func hasOp(ops []string, op string) bool {
	for _, o := range ops {
		if o == op {
			return true
		}
	}
	return false
}

func chainPassRules(u string, src chainAttr, emitCap func(string, string)) []*rules.Rule {
	var out []*rules.Rule
	for _, op := range src.ops {
		emitCap(u, op)
		out = append(out, &rules.Rule{
			Name:     fmt.Sprintf("C_%s_pass_%s", u, opSlug(op)),
			Patterns: []rules.ConstraintPat{{Attr: rules.AttrPat{Name: src.name}, Op: op, RHS: rules.VarTerm("A")}},
			Conds:    []rules.CondRef{{Name: "Value", Args: []string{"A"}}},
			Emit:     rules.EmitLeaf(rules.ConstraintPat{Attr: rules.AttrPat{Name: u}, Op: op, RHS: rules.VarTerm("A")}),
			Exact:    true,
		})
	}
	return out
}

func chainWrapRules(u string, src chainAttr, emitCap func(string, string)) []*rules.Rule {
	var out []*rules.Rule
	for _, op := range src.ops {
		emitCap(u, op)
		r := &rules.Rule{
			Name:     fmt.Sprintf("C_%s_wrap_%s", u, opSlug(op)),
			Patterns: []rules.ConstraintPat{{Attr: rules.AttrPat{Name: src.name}, Op: op, RHS: rules.VarTerm("A")}},
			Conds:    []rules.CondRef{{Name: "Value", Args: []string{"A"}}},
			Exact:    true,
		}
		if op == qtree.OpContains {
			// zz| never tokenizes into a domain word, so word containment
			// passes through the sentinel unchanged — and the contained
			// Pattern value must not flow through WrapZ, which only accepts
			// strings.
			r.Emit = rules.EmitLeaf(rules.ConstraintPat{Attr: rules.AttrPat{Name: u}, Op: op, RHS: rules.VarTerm("A")})
		} else {
			// [src = A]      ⟺ [u = "zz|"+A]
			// [src starts P] ⟺ [u starts "zz|"+P]
			r.Lets = []rules.LetClause{{Var: "K", Func: "WrapZ", Args: []string{"A"}}}
			r.Emit = rules.EmitLeaf(rules.ConstraintPat{Attr: rules.AttrPat{Name: u}, Op: op, RHS: rules.VarTerm("K")})
		}
		out = append(out, r)
	}
	return out
}

// chainPairRules maps sources (t1, t2) to u = t1+"|"+t2. Only t1 has
// mappings alone; t2 is reachable solely through the joint rule, which needs
// both sources in one conjunction.
func chainPairRules(u string, t1, t2 chainAttr, emitCap func(string, string)) []*rules.Rule {
	lit := func(name string) rules.AttrPat { return rules.AttrPat{Name: name} }
	emitCap(u, qtree.OpEq)
	emitCap(u, qtree.OpStarts)
	out := []*rules.Rule{
		{
			Name: fmt.Sprintf("C_%s_joint", u),
			Patterns: []rules.ConstraintPat{
				{Attr: lit(t1.name), Op: qtree.OpEq, RHS: rules.VarTerm("A")},
				{Attr: lit(t2.name), Op: qtree.OpEq, RHS: rules.VarTerm("B")},
			},
			Conds: []rules.CondRef{{Name: "Value", Args: []string{"A"}}, {Name: "Value", Args: []string{"B"}}},
			Lets:  []rules.LetClause{{Var: "K", Func: "JoinBar", Args: []string{"A", "B"}}},
			Emit:  rules.EmitLeaf(rules.ConstraintPat{Attr: lit(u), Op: qtree.OpEq, RHS: rules.VarTerm("K")}),
			Exact: true,
		},
		{
			// Exact by the workload's fixed-shape value domain: equality on
			// t1 pins a fixed-length prefix of u (same argument as the base
			// generator's PrefixBar rules).
			Name:     fmt.Sprintf("C_%s_pfx", u),
			Patterns: []rules.ConstraintPat{{Attr: lit(t1.name), Op: qtree.OpEq, RHS: rules.VarTerm("A")}},
			Conds:    []rules.CondRef{{Name: "Value", Args: []string{"A"}}},
			Lets:     []rules.LetClause{{Var: "K", Func: "PrefixBar", Args: []string{"A"}}},
			Emit:     rules.EmitLeaf(rules.ConstraintPat{Attr: lit(u), Op: qtree.OpStarts, RHS: rules.VarTerm("K")}),
			Exact:    true,
		},
	}
	for _, op := range t1.ops {
		switch op {
		case qtree.OpStarts:
			out = append(out, &rules.Rule{
				Name:     fmt.Sprintf("C_%s_pstarts", u),
				Patterns: []rules.ConstraintPat{{Attr: lit(t1.name), Op: qtree.OpStarts, RHS: rules.VarTerm("P")}},
				Conds:    []rules.CondRef{{Name: "Value", Args: []string{"P"}}},
				Emit:     rules.EmitLeaf(rules.ConstraintPat{Attr: lit(u), Op: qtree.OpStarts, RHS: rules.VarTerm("P")}),
			})
		case qtree.OpContains:
			emitCap(u, qtree.OpContains)
			out = append(out, &rules.Rule{
				Name:     fmt.Sprintf("C_%s_pcontains", u),
				Patterns: []rules.ConstraintPat{{Attr: lit(t1.name), Op: qtree.OpContains, RHS: rules.VarTerm("W")}},
				Conds:    []rules.CondRef{{Name: "Value", Args: []string{"W"}}},
				Emit:     rules.EmitLeaf(rules.ConstraintPat{Attr: lit(u), Op: qtree.OpContains, RHS: rules.VarTerm("W")}),
			})
		}
	}
	return out
}

func opSlug(op string) string {
	switch op {
	case qtree.OpEq:
		return "eq"
	case qtree.OpStarts:
		return "starts"
	case qtree.OpContains:
		return "contains"
	default:
		return "op"
	}
}

// registerChainActions installs the chain layer's extra conversion function.
func registerChainActions(reg *rules.Registry) {
	reg.RegisterAction("WrapZ", func(b rules.Binding, args []string) (rules.BoundVal, error) {
		v, err := b.Value(args[0])
		if err != nil {
			return rules.BoundVal{}, err
		}
		s, ok := v.(values.String)
		if !ok {
			return rules.BoundVal{}, fmt.Errorf("workload: WrapZ argument %s is not a string", args[0])
		}
		return rules.ValueOf(values.String("zz|" + s.Raw())), nil
	})
	reg.RegisterActionKind("WrapZ", rules.BindValue)
}

// Extend derives this layer's chain attributes on a universe tuple already
// carrying the upstream vocabulary, returning an extended clone.
func (cs *ChainScenario) Extend(t engine.Tuple) engine.Tuple {
	out := t.Clone()
	raw := func(name string) string {
		v, ok := t.Get(qtree.A(name))
		if !ok {
			return ""
		}
		s, _ := v.(values.String)
		return s.Raw()
	}
	for _, g := range cs.Groups {
		var val string
		switch g.Kind {
		case ChainPass:
			val = raw(g.Sources[0])
		case ChainWrap:
			val = "zz|" + raw(g.Sources[0])
		case ChainPair:
			val = raw(g.Sources[0]) + "|" + raw(g.Sources[1])
		}
		out.Set(qtree.A(g.U), values.String(val))
	}
	return out
}

// ExtendRelation applies Extend to every tuple of r.
func (cs *ChainScenario) ExtendRelation(r *engine.Relation) *engine.Relation {
	out := engine.NewRelation(r.Name)
	for _, t := range r.Tuples {
		out.Tuples = append(out.Tuples, cs.Extend(t))
	}
	return out
}
