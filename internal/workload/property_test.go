package workload

import (
	"math/rand"
	"testing"

	"repro/internal/boolex"
	"repro/internal/core"
	"repro/internal/qtree"
)

// defaultScenario mixes every group kind: 4 independent attributes, 2 pair
// groups, 1 inexact pair, 1 triple — 13 base attributes, 11 rules.
func defaultScenario() *Scenario {
	return New(Config{Indep: 4, Pairs: 2, InexactPairs: 1, Triples: 1})
}

// TestTheorem2TDQMEqualsDNF is the central correctness property: for random
// queries and a sound/complete spec, Algorithm TDQM and the trivially
// correct Algorithm DNF produce logically equivalent translations over the
// shared emission atoms (Theorem 2 against the Theorem 1 + Section 5
// baseline).
func TestTheorem2TDQMEqualsDNF(t *testing.T) {
	s := defaultScenario()
	rng := rand.New(rand.NewSource(1))
	cfg := DefaultQueryConfig()
	for i := 0; i < 300; i++ {
		q := s.RandomQuery(rng, cfg)
		tdqmT := core.NewTranslator(s.Spec)
		viaTDQM, err := tdqmT.TDQM(q)
		if err != nil {
			t.Fatalf("case %d: TDQM: %v\nq = %s", i, err, q)
		}
		dnfT := core.NewTranslator(s.Spec)
		viaDNF, err := dnfT.DNFMap(q)
		if err != nil {
			t.Fatalf("case %d: DNF: %v\nq = %s", i, err, q)
		}
		eq, err := boolex.Equivalent(viaTDQM, viaDNF)
		if err != nil {
			t.Logf("case %d: skipping equivalence (too many atoms): %v", i, err)
			continue
		}
		if !eq {
			t.Fatalf("case %d: TDQM and DNF disagree\nq    = %s\ntdqm = %s\ndnf  = %s",
				i, q, viaTDQM, viaDNF)
		}
	}
}

// TestCompactness checks the Section 8 compactness property on random
// queries. The paper claims TDQM produces the most compact translation "in
// most cases": when a constraint repeats across conjuncts, DNF's disjunct
// deduplication can occasionally win by a node or two, so the property is
// (a) aggregate — total TDQM size strictly below total DNF size — and
// (b) per-case within a small additive slack.
func TestCompactness(t *testing.T) {
	s := defaultScenario()
	rng := rand.New(rand.NewSource(2))
	cfg := DefaultQueryConfig()
	totalTDQM, totalDNF, larger := 0, 0, 0
	for i := 0; i < 300; i++ {
		q := s.RandomQuery(rng, cfg)
		tr := core.NewTranslator(s.Spec)
		viaTDQM, err := tr.TDQM(q)
		if err != nil {
			t.Fatal(err)
		}
		viaDNF, err := tr.DNFMap(q)
		if err != nil {
			t.Fatal(err)
		}
		totalTDQM += viaTDQM.Size()
		totalDNF += viaDNF.Size()
		if viaTDQM.Size() > viaDNF.Size() {
			larger++
			if viaTDQM.Size() > viaDNF.Size()+4 {
				t.Fatalf("case %d: TDQM output much larger than DNF output (%d > %d)\nq = %s",
					i, viaTDQM.Size(), viaDNF.Size(), q)
			}
		}
	}
	if totalTDQM >= totalDNF {
		t.Fatalf("aggregate TDQM size %d not below aggregate DNF size %d", totalTDQM, totalDNF)
	}
	if larger > 15 { // 5% of 300
		t.Fatalf("TDQM larger than DNF in %d/300 cases; expected rare", larger)
	}
}

// TestDefinition1Subsumption checks the subsumption guarantee on data: for
// random queries and random tuples, every tuple satisfying Q satisfies the
// translation S(Q) (Definition 1 condition 2, witnessed empirically).
func TestDefinition1Subsumption(t *testing.T) {
	s := defaultScenario()
	rng := rand.New(rand.NewSource(3))
	cfg := DefaultQueryConfig()
	hits := 0
	for i := 0; i < 120; i++ {
		q := s.RandomQuery(rng, cfg)
		tr := core.NewTranslator(s.Spec)
		mapped, err := tr.TDQM(q)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Spec.Target.Expressible(mapped); err != nil {
			t.Fatalf("case %d: %v\nq = %s\nS(q) = %s", i, err, q, mapped)
		}
		for j := 0; j < 60; j++ {
			tup := s.RandomTuple(rng)
			inQ, err := s.Eval.EvalQuery(q, tup)
			if err != nil {
				t.Fatal(err)
			}
			if !inQ {
				continue
			}
			hits++
			inS, err := s.Eval.EvalQuery(mapped, tup)
			if err != nil {
				t.Fatal(err)
			}
			if !inS {
				t.Fatalf("case %d: tuple satisfies Q but not S(Q)\nq = %s\nS(q) = %s\ntuple = %s",
					i, q, mapped, tup)
			}
		}
	}
	if hits < 50 {
		t.Fatalf("only %d satisfying tuples across all cases; property weakly exercised", hits)
	}
}

// TestEq3FilterRestoresExactness checks Eq. 3 on data: Q ≡ F ∧ S(Q) for the
// filter returned by TranslateWithFilter.
func TestEq3FilterRestoresExactness(t *testing.T) {
	s := defaultScenario()
	rng := rand.New(rand.NewSource(4))
	cfg := DefaultQueryConfig()
	for i := 0; i < 80; i++ {
		q := s.RandomQuery(rng, cfg)
		tr := core.NewTranslator(s.Spec)
		mapped, filter, err := tr.TranslateWithFilter(q, core.AlgTDQM)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 60; j++ {
			tup := s.RandomTuple(rng)
			inQ, err := s.Eval.EvalQuery(q, tup)
			if err != nil {
				t.Fatal(err)
			}
			inS, err := s.Eval.EvalQuery(mapped, tup)
			if err != nil {
				t.Fatal(err)
			}
			inF, err := s.Eval.EvalQuery(filter, tup)
			if err != nil {
				t.Fatal(err)
			}
			if inQ != (inS && inF) {
				t.Fatalf("case %d: Eq.3 violated: Q=%v S=%v F=%v\nq = %s\nS(q) = %s\nF = %s\ntuple = %s",
					i, inQ, inS, inF, q, mapped, filter, tup)
			}
		}
	}
}

// TestBranchFiltersRestoreExactness checks the per-branch filter identity
// on data: σ_Q(D) = ∪_i σ_Fi(σ_Si(D)) for TranslateBranches output.
func TestBranchFiltersRestoreExactness(t *testing.T) {
	s := defaultScenario()
	rng := rand.New(rand.NewSource(9))
	cfg := DefaultQueryConfig()
	tightBranches := 0
	for i := 0; i < 80; i++ {
		q := s.RandomQuery(rng, cfg)
		tr := core.NewTranslator(s.Spec)
		branches, err := tr.TranslateBranches(q, core.AlgTDQM)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range branches {
			if b.Branch.IsSimpleConjunction() && !b.Filter.EqualCanonical(b.Branch) {
				tightBranches++ // a branch with a residue strictly smaller than itself
			}
		}
		for j := 0; j < 50; j++ {
			tup := s.RandomTuple(rng)
			inQ, err := s.Eval.EvalQuery(q, tup)
			if err != nil {
				t.Fatal(err)
			}
			inUnion := false
			for _, b := range branches {
				inS, err := s.Eval.EvalQuery(b.Mapped, tup)
				if err != nil {
					t.Fatal(err)
				}
				if !inS {
					continue
				}
				inF, err := s.Eval.EvalQuery(b.Filter, tup)
				if err != nil {
					t.Fatal(err)
				}
				if inF {
					inUnion = true
					break
				}
			}
			if inQ != inUnion {
				t.Fatalf("case %d: branch union mismatch: Q=%v union=%v\nq = %s\ntuple %s",
					i, inQ, inUnion, q, tup)
			}
		}
	}
	if tightBranches == 0 {
		t.Error("no branch ever had a tight (non-trivial, smaller-than-branch) filter; property weakly exercised")
	}
}

// TestTheorem6PSafePartitionSafety checks that PSafe partitions are safe on
// random conjunctions: translating blocks independently and conjoining
// equals translating the whole conjunction via DNF (S(Q̂) = ∏ S(∧(B))).
func TestTheorem6PSafePartitionSafety(t *testing.T) {
	s := defaultScenario()
	rng := rand.New(rand.NewSource(5))
	cfg := QueryConfig{MaxDepth: 3, MaxFanout: 3, LeafProb: 0.3}
	for i := 0; i < 200; i++ {
		q := s.RandomQuery(rng, cfg)
		if q.Kind != qtree.KindAnd {
			continue
		}
		tr := core.NewTranslator(s.Spec)
		p, err := tr.PSafe(q.Kids)
		if err != nil {
			t.Fatal(err)
		}
		var blockMaps []*qtree.Node
		for _, blk := range p.Blocks {
			conj := make([]*qtree.Node, len(blk))
			for j, x := range blk {
				conj[j] = q.Kids[x]
			}
			bm, err := tr.DNFMap(qtree.AndOf(conj...))
			if err != nil {
				t.Fatal(err)
			}
			blockMaps = append(blockMaps, bm)
		}
		viaBlocks := qtree.AndOf(blockMaps...)
		whole, err := tr.DNFMap(q)
		if err != nil {
			t.Fatal(err)
		}
		eq, err := boolex.Equivalent(viaBlocks, whole)
		if err != nil {
			continue // atom overflow; skip
		}
		if !eq {
			t.Fatalf("case %d: partition %s unsafe\nq = %s\nblocks = %s\nwhole = %s",
				i, p, q, viaBlocks, whole)
		}
	}
}

// TestLemma3RandomPartitions checks Lemma 3 on random conjunctions: PSafe
// computes the same partition whether the safety machinery uses essential
// DNF or full DNF.
func TestLemma3RandomPartitions(t *testing.T) {
	s := defaultScenario()
	rng := rand.New(rand.NewSource(7))
	cfg := QueryConfig{MaxDepth: 3, MaxFanout: 3, LeafProb: 0.3}
	checked := 0
	for i := 0; i < 200; i++ {
		q := s.RandomQuery(rng, cfg)
		if q.Kind != qtree.KindAnd {
			continue
		}
		checked++
		ednfTr := core.NewTranslator(s.Spec)
		pE, err := ednfTr.PSafe(q.Kids)
		if err != nil {
			t.Fatal(err)
		}
		fullTr := core.NewTranslator(s.Spec)
		fullTr.SetFullDNFSafety(true)
		pF, err := fullTr.PSafe(q.Kids)
		if err != nil {
			t.Fatal(err)
		}
		if pE.String() != pF.String() {
			t.Fatalf("case %d: partitions differ (EDNF %s vs full DNF %s)\nq = %s",
				i, pE, pF, q)
		}
		if fullTr.Stats.ProductTerms < ednfTr.Stats.ProductTerms {
			t.Fatalf("case %d: EDNF examined more terms (%d) than full DNF (%d)",
				i, ednfTr.Stats.ProductTerms, fullTr.Stats.ProductTerms)
		}
	}
	if checked < 50 {
		t.Fatalf("only %d conjunctions checked; generator too narrow", checked)
	}
}

// TestAblationEquivalence checks on random queries that the ablated
// variants stay logically correct: TDQM without PSafe ≡ TDQM, and SCM
// without suppression ≡ SCM on data.
func TestAblationEquivalence(t *testing.T) {
	s := defaultScenario()
	rng := rand.New(rand.NewSource(8))
	cfg := DefaultQueryConfig()
	for i := 0; i < 120; i++ {
		q := s.RandomQuery(rng, cfg)
		tr := core.NewTranslator(s.Spec)
		full, err := tr.TDQM(q)
		if err != nil {
			t.Fatal(err)
		}
		ablated, err := tr.TDQMNoPartition(q)
		if err != nil {
			t.Fatal(err)
		}
		eq, err := boolex.Equivalent(full, ablated)
		if err != nil {
			continue
		}
		if !eq {
			t.Fatalf("case %d: TDQMNoPartition differs\nq = %s\nfull = %s\nablated = %s",
				i, q, full, ablated)
		}
		if ablated.Size() < full.Size() {
			t.Fatalf("case %d: ablated output smaller than TDQM's (%d < %d)",
				i, ablated.Size(), full.Size())
		}
	}
}

// TestSCMAgainstBruteForce cross-checks Algorithm SCM against a brute-force
// implementation of Eq. 4 (the conjunction of S(m̂) over *all* matchings,
// with Lemma 1 making submatchings redundant): the two must be logically
// equivalent.
func TestSCMAgainstBruteForce(t *testing.T) {
	s := defaultScenario()
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 200; i++ {
		q := s.SimpleConjunction(rng, 2+rng.Intn(6))
		tr := core.NewTranslator(s.Spec)
		res, err := tr.SCMQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force: conjoin emissions of ALL matchings (no suppression).
		ms, err := s.Spec.Matchings(q.SimpleConjuncts())
		if err != nil {
			t.Fatal(err)
		}
		var kids []*qtree.Node
		for _, m := range ms {
			kids = append(kids, m.Emission)
		}
		brute := qtree.AndOf(kids...)
		// Suppressed emissions are semantically implied, not syntactically
		// identical (Lemma 1), so compare on data, not on Boolean atoms.
		for j := 0; j < 120; j++ {
			tup := s.RandomTuple(rng)
			inSCM, err := s.Eval.EvalQuery(res.Query, tup)
			if err != nil {
				t.Fatal(err)
			}
			inBrute, err := s.Eval.EvalQuery(brute, tup)
			if err != nil {
				t.Fatal(err)
			}
			if inSCM != inBrute {
				t.Fatalf("case %d: SCM with suppression differs from Eq.4 on data\nq = %s\nscm = %s\nbrute = %s\ntuple = %s",
					i, q, res.Query, brute, tup)
			}
		}
	}
}
