package workload

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/qtree"
	"repro/internal/rules"
)

// TestScenarioShape sanity-checks generator bookkeeping.
func TestScenarioShape(t *testing.T) {
	s := New(Config{Indep: 3, Pairs: 2, InexactPairs: 1, Triples: 1})
	if got := len(s.BaseAttrs); got != 3+4+2+3 {
		t.Errorf("base attrs = %d, want 12", got)
	}
	if got := len(s.Groups); got != 7 {
		t.Errorf("groups = %d, want 7", got)
	}
	// Rules: 3 indep + 2×2 pair + 3 inexact-pair + 3 triple.
	if got := len(s.Spec.Rules); got != 3+4+3+3 {
		t.Errorf("rules = %d, want 13", got)
	}
}

// TestGroupRuleSoundness verifies, per group kind, that every rule's
// emission is (a) subsuming and (b) exact exactly when marked so — on
// exhaustively enumerated tuples over the group's attributes.
func TestGroupRuleSoundness(t *testing.T) {
	s := New(Config{Pairs: 1, InexactPairs: 1, Triples: 1, Indep: 1})
	rng := rand.New(rand.NewSource(1))
	tr := core.NewTranslator(s.Spec)

	for _, g := range s.Groups {
		// Build the full-group query with fixed values v0, v1, v2.
		var kids []*qtree.Node
		for i, a := range g.Attrs {
			kids = append(kids, qtree.Leaf(s.Constraint(a, i)))
		}
		q := qtree.AndOf(kids...)
		res, err := tr.SCMQuery(q)
		if err != nil {
			t.Fatalf("group %s: %v", g.Target, err)
		}
		if res.Query.IsTrue() {
			t.Fatalf("group %s: full conjunction has trivial mapping", g.Target)
		}
		// Probe: subsumption and exactness on random tuples.
		for j := 0; j < 400; j++ {
			tup := s.RandomTuple(rng)
			inQ, err := s.Eval.EvalQuery(q, tup)
			if err != nil {
				t.Fatal(err)
			}
			inS, err := s.Eval.EvalQuery(res.Query, tup)
			if err != nil {
				t.Fatal(err)
			}
			if inQ && !inS {
				t.Fatalf("group %s (%v): emission not subsuming on %s", g.Target, g.Kind, tup)
			}
			// Full-group rules are exact by design.
			if inS && !inQ {
				t.Fatalf("group %s (%v): full-group mapping admits false positive %s",
					g.Target, g.Kind, tup)
			}
		}
	}
}

// TestPartialRulesRelax verifies the designed asymmetries: a pair group's
// second attribute has no mapping alone; an inexact pair's components map
// to containment that genuinely admits false positives.
func TestPartialRulesRelax(t *testing.T) {
	s := New(Config{Pairs: 1, InexactPairs: 1})
	tr := core.NewTranslator(s.Spec)
	rng := rand.New(rand.NewSource(2))

	pair := s.Groups[0]
	res, err := tr.SCMQuery(qtree.NewConstraintSet(s.Constraint(pair.Attrs[1], 0)).Conjunction())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Query.IsTrue() {
		t.Errorf("pair second attribute mapped to %s, want TRUE", res.Query)
	}

	inexact := s.Groups[1]
	q := qtree.NewConstraintSet(s.Constraint(inexact.Attrs[1], 0)).Conjunction()
	res, err = tr.SCMQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Query.IsTrue() {
		t.Fatal("inexact-pair component should have a containment mapping")
	}
	// The relaxation must admit at least one false positive across many
	// random tuples (a tuple whose *other* component carries the value).
	fp := false
	for j := 0; j < 2000 && !fp; j++ {
		tup := s.RandomTuple(rng)
		inQ, _ := s.Eval.EvalQuery(q, tup)
		inS, _ := s.Eval.EvalQuery(res.Query, tup)
		if inS && !inQ {
			fp = true
		}
	}
	if !fp {
		t.Error("containment relaxation admitted no false positives in 2000 tuples; generator broken?")
	}
}

// TestSpecCompleteness empirically probes Definition 4: for random
// cross-group constraint combinations, the mapping synthesized from
// per-group rules equals the mapping of the whole conjunction — i.e. no
// indecomposable combination lacks a rule.
func TestSpecCompleteness(t *testing.T) {
	s := New(Config{Indep: 2, Pairs: 2, InexactPairs: 1, Triples: 1})
	tr := core.NewTranslator(s.Spec)
	rng := rand.New(rand.NewSource(3))

	for i := 0; i < 150; i++ {
		q := s.SimpleConjunction(rng, 2+rng.Intn(5))
		res, err := tr.SCMQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 80; j++ {
			tup := s.RandomTuple(rng)
			inQ, _ := s.Eval.EvalQuery(q, tup)
			inS, _ := s.Eval.EvalQuery(res.Query, tup)
			if inQ && !inS {
				t.Fatalf("case %d: mapping not subsuming\nq = %s\nS = %s\ntuple %s",
					i, q, res.Query, tup)
			}
		}
	}
}

// TestWorstCaseCompactnessFamily checks the E10 family's advertised shape.
func TestWorstCaseCompactnessFamily(t *testing.T) {
	s, q := WorstCaseCompactness(5)
	if q.Kind != qtree.KindAnd || len(q.Kids) != 5 {
		t.Fatalf("family shape: %s", q)
	}
	tr := core.NewTranslator(s.Spec)
	viaTDQM, err := tr.TDQM(q)
	if err != nil {
		t.Fatal(err)
	}
	viaDNF, err := tr.DNFMap(q)
	if err != nil {
		t.Fatal(err)
	}
	if viaTDQM.Size() != q.Size() {
		t.Errorf("TDQM size %d != input size %d (structure should be preserved)",
			viaTDQM.Size(), q.Size())
	}
	wantDNF := 1 + 32*(5+1) // Or node + 2^5 disjuncts of (And + 5 leaves)
	if viaDNF.Size() != wantDNF {
		t.Errorf("DNF size %d, want %d", viaDNF.Size(), wantDNF)
	}
}

// TestDependencyConjunctionFamily checks the E11 family: with e = 0 all
// EDNF collapse to ε; each increment multiplies the product terms.
func TestDependencyConjunctionFamily(t *testing.T) {
	var prevTerms int
	for e := 0; e <= 3; e++ {
		s, q := DependencyConjunction(4, 3, e)
		tr := core.NewTranslator(s.Spec)
		p, err := tr.PSafe(q.Kids)
		if err != nil {
			t.Fatal(err)
		}
		if e == 0 {
			if !p.Separable {
				t.Errorf("e=0: conjunction should be separable, got %s", p)
			}
			if tr.Stats.ProductTerms != 1 {
				t.Errorf("e=0: %d product terms, want 1 (all ε)", tr.Stats.ProductTerms)
			}
		} else {
			if p.Separable {
				t.Errorf("e=%d: conjunction should not be fully separable", e)
			}
			if tr.Stats.ProductTerms <= prevTerms {
				t.Errorf("e=%d: product terms %d did not grow from %d",
					e, tr.Stats.ProductTerms, prevTerms)
			}
		}
		prevTerms = tr.Stats.ProductTerms
	}
}

// TestIndependentTreeFamily checks the E9 family.
func TestIndependentTreeFamily(t *testing.T) {
	s, q := IndependentTree(8)
	tr := core.NewTranslator(s.Spec)
	p, err := tr.PSafe(q.Kids)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Separable {
		t.Errorf("independent tree not separable: %s", p)
	}
	// Odd n appends a lone leaf conjunct.
	_, qOdd := IndependentTree(9)
	if got := len(qOdd.Conjuncts()); got != 5 {
		t.Errorf("odd-n conjunct count = %d, want 5", got)
	}
}

// TestRandomQueryDeterminism: the same seed yields the same query.
func TestRandomQueryDeterminism(t *testing.T) {
	s := New(Config{Indep: 4, Pairs: 2})
	q1 := s.RandomQuery(rand.New(rand.NewSource(77)), DefaultQueryConfig())
	q2 := s.RandomQuery(rand.New(rand.NewSource(77)), DefaultQueryConfig())
	if q1.String() != q2.String() {
		t.Error("random query generation is not reproducible for a fixed seed")
	}
}

// TestDSLRoundTripEquivalence: the generator builds its rules
// programmatically; formatting them to DSL text, reparsing, and rebuilding
// the spec against the same registry must yield identical translations —
// the DSL can express everything the Go API can.
func TestDSLRoundTripEquivalence(t *testing.T) {
	s := New(Config{Indep: 2, Pairs: 2, InexactPairs: 1, Triples: 1})
	text := rules.FormatSpec(s.Spec)
	back, err := rules.ParseRules(text)
	if err != nil {
		t.Fatalf("formatted spec does not reparse: %v\n%s", err, text)
	}
	spec2, err := rules.NewSpec(s.Spec.Name+"_rt", s.Spec.Target, s.Spec.Reg, back...)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	cfg := DefaultQueryConfig()
	for i := 0; i < 60; i++ {
		q := s.RandomQuery(rng, cfg)
		a, err := core.NewTranslator(s.Spec).TDQM(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := core.NewTranslator(spec2).TDQM(q)
		if err != nil {
			t.Fatal(err)
		}
		if !a.EqualCanonical(b) {
			t.Fatalf("case %d: translations differ after DSL round trip\nq = %s\noriginal: %s\nreparsed: %s",
				i, q, a, b)
		}
	}
}
