package workload

import (
	"repro/internal/engine"
	"repro/internal/values"
)

// AccessRelation builds the access-path benchmark fixture: n tuples whose
// low-selectivity attributes exercise each probe kind of engine.Access.
// cat hits ~n/200 tuples per equality value, price spreads over a 0..9999
// window so small ranges select ~0.5%, and the rare description token
// "xenon" appears in every 200th tuple for inverted-token probes. It backs
// the scan/{full,indexed}/* rows of qbench -bench-json and is free for
// tests that need a deterministic indexable relation.
func AccessRelation(n int) *engine.Relation {
	rel := engine.NewRelation("scanbench")
	for i := 0; i < n; i++ {
		desc := "alpha beta gamma"
		if i%200 == 7 {
			desc = "alpha xenon gamma"
		}
		rel.Tuples = append(rel.Tuples, engine.Tuple{
			"id":    values.Int(i),
			"cat":   values.Int(i % 200),
			"price": values.Int((i * 2497) % 10000),
			"desc":  values.String(desc),
		})
	}
	return rel
}
