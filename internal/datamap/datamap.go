// Package datamap implements data translation on top of the query-mapping
// framework. The paper's rule system was adapted *from* a data-translation
// framework (Section 4.1, ref [17]): translating a data object is the
// special case of mapping a conjunction of equality constraints — an
// attribute-value record [a1 = v1] ∧ [a2 = v2] ∧ … maps through Algorithm
// SCM, and the definite part of the emission is read back as a record in
// the target vocabulary.
//
// Only definite emissions become data: equality leaves assign values
// directly; a during leaf assigns the (possibly partial) date; disjunctive
// or relational emissions (containment, prefixes) are indefinite and are
// skipped — data translation can be lossy exactly where query translation
// must relax.
package datamap

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/qparse"
	"repro/internal/qtree"
)

// Result is the outcome of translating one record.
type Result struct {
	// Tuple holds the target-vocabulary record.
	Tuple engine.Tuple
	// Indefinite lists the target constraints that could not be read back
	// as attribute values (relaxations, disjunctions).
	Indefinite []*qtree.Node
	// Dropped lists source attributes with no mapping at all.
	Dropped []string
}

// TranslateTuple translates an attribute-value record into the target
// vocabulary of the translator's specification.
func TranslateTuple(t engine.Tuple, tr *core.Translator) (*Result, error) {
	// Render the record as a simple conjunction of equality constraints,
	// in canonical attribute order for determinism.
	keys := make([]string, 0, len(t))
	for k := range t {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	cs := make([]*qtree.Constraint, 0, len(t))
	for _, k := range keys {
		attr, err := qparse.ParseAttr(k)
		if err != nil {
			return nil, fmt.Errorf("datamap: attribute %q: %w", k, err)
		}
		cs = append(cs, qtree.Sel(attr, qtree.OpEq, t[k]))
	}

	res, err := tr.SCM(cs)
	if err != nil {
		return nil, err
	}
	out := &Result{Tuple: make(engine.Tuple)}
	for _, c := range res.Unmatched {
		out.Dropped = append(out.Dropped, c.Attr.Key())
	}
	// Walk the top-level conjunction of the mapping; read back definite
	// leaves.
	for _, conj := range res.Query.Conjuncts() {
		if conj.Kind == qtree.KindLeaf && !conj.C.IsJoin() && definiteOp(conj.C.Op) {
			out.Tuple.Set(conj.C.Attr, conj.C.Val)
			continue
		}
		if conj.IsTrue() {
			continue
		}
		out.Indefinite = append(out.Indefinite, conj)
	}
	return out, nil
}

// definiteOp reports whether a constraint operator assigns a value to the
// attribute when read as data. Equality does; during does for dates (the
// value is the date at the constraint's granularity).
func definiteOp(op string) bool {
	return op == qtree.OpEq || op == qtree.OpDuring
}
