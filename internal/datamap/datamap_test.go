package datamap

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/qtree"
	"repro/internal/sources"
	"repro/internal/values"
)

// TestTranslateBookRecord: the mediator-side attributes of a book record
// translate into the native Amazon vocabulary, matching the hand-derived
// conversions of sources.Book.Tuple where the mapping is definite.
func TestTranslateBookRecord(t *testing.T) {
	tr := core.NewTranslator(sources.NewAmazon().Spec)

	rec := make(engine.Tuple)
	rec.Set(qtree.A("ln"), values.String("Clancy"))
	rec.Set(qtree.A("fn"), values.String("Tom"))
	rec.Set(qtree.A("pyear"), values.Int(1997))
	rec.Set(qtree.A("pmonth"), values.Int(5))
	rec.Set(qtree.A("publisher"), values.String("oreilly"))
	rec.Set(qtree.A("id-no"), values.String("000000001A"))
	rec.Set(qtree.A("category"), values.String("D.3"))

	res, err := TranslateTuple(rec, tr)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"author":    `"Clancy, Tom"`,
		"pdate":     "May/97",
		"publisher": `"oreilly"`,
		"isbn":      `"000000001A"`,
		"subject":   `"programming"`,
	}
	for attr, text := range want {
		v, ok := res.Tuple.Get(qtree.A(attr))
		if !ok {
			t.Errorf("translated record missing %s", attr)
			continue
		}
		if v.String() != text {
			t.Errorf("%s = %s, want %s", attr, v, text)
		}
	}
	if len(res.Dropped) != 0 {
		t.Errorf("unexpected dropped attributes: %v", res.Dropped)
	}
}

// TestTranslateDropsAndIndefinites: a first name alone has no mapping
// (dropped); a title maps only to a prefix constraint (indefinite).
func TestTranslateDropsAndIndefinites(t *testing.T) {
	tr := core.NewTranslator(sources.NewAmazon().Spec)

	rec := make(engine.Tuple)
	rec.Set(qtree.A("fn"), values.String("Tom"))
	rec.Set(qtree.A("ti"), values.String("the hunt"))

	res, err := TranslateTuple(rec, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dropped) != 1 || res.Dropped[0] != "fn" {
		t.Errorf("Dropped = %v, want [fn]", res.Dropped)
	}
	if len(res.Indefinite) != 1 {
		t.Fatalf("Indefinite = %v, want the title-prefix constraint", res.Indefinite)
	}
	if res.Indefinite[0].C.Op != qtree.OpStarts {
		t.Errorf("indefinite constraint = %s, want a starts constraint", res.Indefinite[0])
	}
	if _, ok := res.Tuple.Get(qtree.A("title")); ok {
		t.Error("prefix constraint wrongly read back as data")
	}
}

// TestTranslateCarRecord: the many-to-many Section 1 mapping works as data
// translation too.
func TestTranslateCarRecord(t *testing.T) {
	tr := core.NewTranslator(sources.NewCars().Spec)
	rec := make(engine.Tuple)
	rec.Set(qtree.A("car-type"), values.String("ford-taurus"))
	rec.Set(qtree.A("year"), values.Int(1994))

	res, err := TranslateTuple(rec, tr)
	if err != nil {
		t.Fatal(err)
	}
	mk, _ := res.Tuple.Get(qtree.A("make"))
	md, _ := res.Tuple.Get(qtree.A("model"))
	if mk == nil || md == nil || mk.String() != `"ford"` || md.String() != `"taurus-94"` {
		t.Errorf("make/model = %v/%v", mk, md)
	}
}

// TestTranslateMetricRecord: unit conversions as data translation.
func TestTranslateMetricRecord(t *testing.T) {
	tr := core.NewTranslator(sources.NewMetric().Spec)
	rec := make(engine.Tuple)
	rec.Set(qtree.A("length"), values.Float(3))
	rec.Set(qtree.A("cost"), values.Float(100))

	res, err := TranslateTuple(rec, tr)
	if err != nil {
		t.Fatal(err)
	}
	cm, _ := res.Tuple.Get(qtree.A("length-cm"))
	cents, _ := res.Tuple.Get(qtree.A("price-cents"))
	if cm == nil || cm.String() != "7.62" {
		t.Errorf("length-cm = %v, want 7.62", cm)
	}
	if cents == nil || cents.String() != "10000" {
		t.Errorf("price-cents = %v, want 10000", cents)
	}
}

// TestRoundTripAgainstGenerator: data translation reproduces the generator's
// derived attributes for every definite mapping across a whole catalog.
func TestRoundTripAgainstGenerator(t *testing.T) {
	tr := core.NewTranslator(sources.NewAmazon().Spec)
	for _, bk := range sources.GenBooks(77, 120) {
		full := bk.Tuple()
		// Source-side record: only the mediator attributes.
		rec := make(engine.Tuple)
		for _, a := range []string{"ln", "fn", "pyear", "pmonth", "publisher", "id-no", "category"} {
			v, _ := full.Get(qtree.A(a))
			rec.Set(qtree.A(a), v)
		}
		res, err := TranslateTuple(rec, tr)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range []string{"author", "publisher", "isbn", "subject"} {
			want, _ := full.Get(qtree.A(a))
			got, ok := res.Tuple.Get(qtree.A(a))
			if !ok || !got.Equal(want) {
				t.Fatalf("book %+v: %s = %v, want %v", bk, a, got, want)
			}
		}
		// pdate translates at month granularity (the day is not in the
		// mediator vocabulary).
		got, _ := res.Tuple.Get(qtree.A("pdate"))
		d, ok := got.(values.Date)
		if !ok || d.Year != bk.Year || d.Month != bk.Month || d.Day != 0 {
			t.Fatalf("book %+v: pdate = %v", bk, got)
		}
	}
}
