package core

import (
	"repro/internal/obs"
	"repro/internal/qtree"
	"repro/internal/rules"
)

// SCMResult is the output of Algorithm SCM: the translated query, the
// matchings retained after submatching suppression, the constraints no
// retained matching covers (their mapping is True), and the residue — the
// part of the input the translation realizes only inexactly, which the
// mediator folds into the filter query F (Section 2, Eq. 3).
type SCMResult struct {
	Query     *qtree.Node
	Matchings []*rules.Matching
	Unmatched []*qtree.Constraint
	Residue   *qtree.Node
}

// SCM is Algorithm SCM (Figure 4): it maps the simple conjunction of the
// given constraints to its minimal subsuming mapping with respect to the
// translator's specification.
//
// Steps: (1) find all matchings M(Q̂, K); (2) suppress submatchings —
// a matching that is a proper subset of another is redundant by Lemma 1;
// (3) conjoin the emissions of the remaining matchings. Constraints covered
// by no matching map to True.
func (t *Translator) SCM(cs []*qtree.Constraint) (*SCMResult, error) {
	if t.planOK() {
		key := planKeySCM(cs)
		if e := t.planGet(key); e != nil {
			t.planApply(e)
			return e.scm, nil
		}
		rec := t.planRecord()
		res, err := t.scmBody(cs)
		if err != nil {
			rec.abort(t)
			return nil, err
		}
		rec.store(t, key, &planEntry{scm: res})
		return res, nil
	}
	return t.scmBody(cs)
}

// scmBody is the plan-independent Algorithm SCM implementation.
func (t *Translator) scmBody(cs []*qtree.Constraint) (*SCMResult, error) {
	t.Stats.SCMCalls++
	t.metrics.SCMCall(t.Spec.Name)
	if f := t.frameTop(); f != nil {
		f.scmCalls++
	}
	var (
		sp         *obs.Span
		matchSpans map[string]*obs.Span
		all        []*rules.Matching
		err        error
	)
	if t.tracer != nil {
		t.traceEnter(cs)
		defer t.traceExit()
		sp = t.tracer.Start(obs.KindSCM, qtree.NewConstraintSet(cs...).Conjunction().String())
		defer t.tracer.End()
		sp.Set(obs.CtrEssentialDNFSize, t.essentialSize(cs))
		all, matchSpans, err = t.tracedMatchings(cs)
	} else {
		all, err = t.matchings(cs)
	}
	if err != nil {
		return nil, err
	}
	ms := rules.SuppressSubmatchings(all)
	t.traceSCM(cs, all, ms)
	if sp != nil || t.metrics != nil || t.frameTop() != nil {
		t.accountSuppression(sp, matchSpans, all, ms)
	}

	res := &SCMResult{Matchings: ms}
	kids := make([]*qtree.Node, 0, len(ms))
	covered := qtree.NewConstraintSet()
	exact := qtree.NewConstraintSet()
	for _, m := range ms {
		kids = append(kids, m.Emission)
		covered.AddAll(m.Set)
		if m.Rule.Exact {
			exact.AddAll(m.Set)
		}
	}
	res.Query = qtree.And(kids...).Normalize()

	var residue []*qtree.Node
	for _, c := range cs {
		if !covered.Has(c) {
			res.Unmatched = append(res.Unmatched, c)
		}
		if !exact.Has(c) {
			residue = append(residue, qtree.Leaf(c))
		}
	}
	res.Residue = qtree.And(residue...).Normalize()
	if !res.Residue.IsTrue() {
		t.residueClean = false
	}
	if sp != nil {
		sp.Set(obs.CtrEmittedAtoms, int64(len(res.Query.Constraints())))
		sp.Set(obs.CtrUnmatched, int64(len(res.Unmatched)))
	}
	return res, nil
}

// accountSuppression back-fills the per-rule kept/suppressed split into the
// SCM span, its match spans, and the cumulative metrics.
func (t *Translator) accountSuppression(sp *obs.Span, matchSpans map[string]*obs.Span, all, ms []*rules.Matching) {
	kept := make(map[*rules.Matching]bool, len(ms))
	for _, m := range ms {
		kept[m] = true
	}
	if sp != nil {
		sp.Set(obs.CtrCandidates, int64(len(all)))
		sp.Set(obs.CtrKept, int64(len(ms)))
		sp.Set(obs.CtrSuppressed, int64(len(all)-len(ms)))
	}
	f := t.frameTop()
	for _, m := range all {
		msp := matchSpans[m.Rule.Name] // nil when untraced; Add is nil-safe
		if kept[m] {
			msp.Add(obs.CtrKept, 1)
			t.metrics.RuleFired(t.Spec.Name, m.Rule.Name)
			if f != nil {
				f.addFired(m.Rule.Name, 1)
			}
		} else {
			msp.Add(obs.CtrSuppressed, 1)
			t.metrics.RuleSuppressed(t.Spec.Name, m.Rule.Name)
			if f != nil {
				f.addSuppressed(m.Rule.Name, 1)
			}
		}
	}
}

// SCMQuery runs Algorithm SCM on a simple-conjunction query node.
func (t *Translator) SCMQuery(q *qtree.Node) (*SCMResult, error) {
	return t.SCM(q.Normalize().SimpleConjuncts())
}
