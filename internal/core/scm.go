package core

import (
	"repro/internal/qtree"
	"repro/internal/rules"
)

// SCMResult is the output of Algorithm SCM: the translated query, the
// matchings retained after submatching suppression, the constraints no
// retained matching covers (their mapping is True), and the residue — the
// part of the input the translation realizes only inexactly, which the
// mediator folds into the filter query F (Section 2, Eq. 3).
type SCMResult struct {
	Query     *qtree.Node
	Matchings []*rules.Matching
	Unmatched []*qtree.Constraint
	Residue   *qtree.Node
}

// SCM is Algorithm SCM (Figure 4): it maps the simple conjunction of the
// given constraints to its minimal subsuming mapping with respect to the
// translator's specification.
//
// Steps: (1) find all matchings M(Q̂, K); (2) suppress submatchings —
// a matching that is a proper subset of another is redundant by Lemma 1;
// (3) conjoin the emissions of the remaining matchings. Constraints covered
// by no matching map to True.
func (t *Translator) SCM(cs []*qtree.Constraint) (*SCMResult, error) {
	t.Stats.SCMCalls++
	all, err := t.matchings(cs)
	if err != nil {
		return nil, err
	}
	ms := rules.SuppressSubmatchings(all)
	t.traceSCM(cs, all, ms)

	res := &SCMResult{Matchings: ms}
	kids := make([]*qtree.Node, 0, len(ms))
	covered := qtree.NewConstraintSet()
	exact := qtree.NewConstraintSet()
	for _, m := range ms {
		kids = append(kids, m.Emission)
		covered.AddAll(m.Set)
		if m.Rule.Exact {
			exact.AddAll(m.Set)
		}
	}
	res.Query = qtree.And(kids...).Normalize()

	var residue []*qtree.Node
	for _, c := range cs {
		if !covered.Has(c) {
			res.Unmatched = append(res.Unmatched, c)
		}
		if !exact.Has(c) {
			residue = append(residue, qtree.Leaf(c))
		}
	}
	res.Residue = qtree.And(residue...).Normalize()
	if !res.Residue.IsTrue() {
		t.residueClean = false
	}
	return res, nil
}

// SCMQuery runs Algorithm SCM on a simple-conjunction query node.
func (t *Translator) SCMQuery(q *qtree.Node) (*SCMResult, error) {
	return t.SCM(q.Normalize().SimpleConjuncts())
}
