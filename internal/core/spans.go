package core

import (
	"repro/internal/obs"
	"repro/internal/qtree"
	"repro/internal/rules"
)

// This file threads the obs span tracer through the algorithms. All hooks
// are nil-guarded: with no tracer attached the per-call cost is one pointer
// check. Tracing is purely observational — traced and untraced runs produce
// byte-identical translations and identical Stats (the dependent-constraint
// precomputation below calls the spec directly, bypassing the counted
// matchings path).

// SetTracer attaches (or detaches, with nil) a span tracer. Unlike the flat
// derivation Trace of SetTrace, the tracer records the full call tree —
// one span per TDQM node visit, EDNF computation, PSafe partition, SCM
// invocation, and rule matching attempt — with the counters that make the
// paper's e-vs-k cost claim observable per query.
//
// Deprecated: prefer the WithTracer option at construction time, or carry
// the tracer in the context passed to Do (obs.WithTracer).
func (t *Translator) SetTracer(tr *obs.Tracer) { WithTracer(tr)(t) }

// SetMetrics attaches (or detaches, with nil) cumulative translation
// metrics; per-rule fire/suppress counts and algorithm work counters are
// recorded under the spec's name.
//
// Deprecated: prefer the WithMetrics option at construction time.
func (t *Translator) SetMetrics(m *obs.TranslationMetrics) { WithMetrics(m)(t) }

// traceEnter tracks translation depth and, at the top level, computes the
// dependent-constraint support of the whole query: the keys of every
// constraint participating in a multi-constraint potential matching. Spans
// report |keys(subquery) ∩ support| as essentialDNFSize; the set shrinks
// monotonically down the tree, which is the child-e <= parent-e invariant
// obs.Verify checks. Call only when t.tracer != nil, paired with traceExit.
func (t *Translator) traceEnter(cs []*qtree.Constraint) {
	if t.traceDepth == 0 {
		t.depSupport = t.dependentKeys(cs)
	}
	t.traceDepth++
}

// traceExit unwinds traceEnter, clearing the support at the top level.
func (t *Translator) traceExit() {
	t.traceDepth--
	if t.traceDepth == 0 {
		t.depSupport = nil
	}
}

// dependentKeys computes the support set. Matching errors are deliberately
// swallowed: the traced translation immediately re-runs the same matching
// and reports the error through the normal path.
func (t *Translator) dependentKeys(cs []*qtree.Constraint) map[string]bool {
	ms, err := t.Spec.Matchings(cs)
	if err != nil {
		return map[string]bool{}
	}
	support := make(map[string]bool)
	for _, m := range ms {
		if m.Set.Len() >= 2 {
			for _, k := range m.Set.Keys() {
				support[k] = true
			}
		}
	}
	return support
}

// essentialSize is e for a set of constraints under the current support.
func (t *Translator) essentialSize(cs []*qtree.Constraint) int64 {
	seen := make(map[string]bool, len(cs))
	var e int64
	for _, c := range cs {
		k := c.Key()
		if t.depSupport[k] && !seen[k] {
			seen[k] = true
			e++
		}
	}
	return e
}

// tracedMatchings mirrors matchings (same Stats accounting, same matching
// order) while emitting one match span per rule that produced candidates.
// It returns the matchings plus the per-rule spans so the SCM caller can
// back-fill kept/suppressed counts after suppression.
//
// It iterates the same candidate rules the compiled engine dispatches to —
// a span is only ever emitted for a rule with matchings and an index-skipped
// rule has none, so traces are byte-identical to the pre-index engine while
// RuleAttempts agrees with the untraced path. The memo is bypass-or-record
// here: never consulted (every traced run must emit its spans) but always
// populated, so memo-enabled translations trace identically to memo-free
// ones.
func (t *Translator) tracedMatchings(cs []*qtree.Constraint) ([]*rules.Matching, map[string]*obs.Span, error) {
	t.Stats.MatchRuns++
	var all []*rules.Matching
	spans := make(map[string]*obs.Span)
	probed := 0
	for _, r := range t.candidateRules(cs) {
		probed++
		ms, err := t.Spec.MatchRule(r, cs)
		if err != nil {
			return nil, nil, err
		}
		if len(ms) == 0 {
			continue
		}
		sp := t.tracer.Start(obs.KindMatch, r.Name)
		sp.Set(obs.CtrCandidates, int64(len(ms)))
		t.tracer.End()
		spans[r.Name] = sp
		all = append(all, ms...)
	}
	t.Stats.MatchingsFound += len(all)
	t.Stats.RuleAttempts += probed
	if t.memo != nil {
		t.memo.put(memoKey(cs), all, probed)
		t.memoStats.Misses++
	}
	return all, spans, nil
}
