package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// TestPlanAllocCeilings pins allocation budgets for the translation-plan
// work: a warm plan hit must stay two orders of magnitude below the
// interpretive path (it only builds shape keys and replays recorded
// results), and the interpretive path itself must hold the gains from the
// pooled simplifyEDNF nullification scratch and the reused product-term
// constraint set in PSafe's scan. Measured values at the time of writing:
// warm ≈ 277, interpretive e=2 ≈ 80.3k, interpretive e=0 ≈ 3.9k; ceilings
// carry ~30% headroom so incidental churn doesn't flake, while an accidental
// un-pooling (or a plan hit that re-runs the algorithm) trips them
// immediately.
func TestPlanAllocCeilings(t *testing.T) {
	for _, tc := range []struct {
		name    string
		e       int
		planned bool
		ceiling float64
		runs    int
	}{
		{"warm-plan/e=2/k=8", 2, true, 400, 50},
		{"interpretive/e=2/k=8", 2, false, 105_000, 10},
		{"interpretive/e=0/k=8", 0, false, 5_500, 20},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, q := workload.DependencyConjunction(4, 8, tc.e)
			var opts []core.Option
			if tc.planned {
				opts = append(opts, core.WithPlan(core.NewPlan(0)))
			}
			tr := core.NewTranslator(s.Spec, opts...)
			if _, err := tr.TDQM(q); err != nil { // warm-up: populates the plan
				t.Fatal(err)
			}
			got := testing.AllocsPerRun(tc.runs, func() {
				if _, err := tr.TDQM(q); err != nil {
					t.Fatal(err)
				}
			})
			if got > tc.ceiling {
				t.Errorf("%s: %.0f allocs/op exceeds pinned ceiling %.0f", tc.name, got, tc.ceiling)
			}
		})
	}
}
