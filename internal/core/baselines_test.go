package core_test

import (
	"testing"

	"repro/internal/boolex"
	"repro/internal/core"
	"repro/internal/qparse"
	"repro/internal/qtree"
	"repro/internal/sources"
)

// TestCNFMapReproducesQa: the Garlic-style baseline produces exactly the
// suboptimal Qa of Example 2 — the combined-name dependency is lost.
func TestCNFMapReproducesQa(t *testing.T) {
	tr := amazonTranslator()
	q := qparse.MustParse(`([ln = "Clancy"] or [ln = "Klancy"]) and [fn = "Tom"]`)
	got, err := tr.CNFMap(q)
	if err != nil {
		t.Fatal(err)
	}
	wantQa := qparse.MustParse(`[author = "Clancy"] or [author = "Klancy"]`)
	if !got.EqualCanonical(wantQa) {
		t.Errorf("CNFMap = %s, want Qa = %s", got, wantQa)
	}
	// TDQM produces the strictly more selective Qb — witnessed on data:
	// a "Clancy, Joe" book matches Qa but not Qb.
	qb, err := tr.TDQM(q)
	if err != nil {
		t.Fatal(err)
	}
	am := sources.NewAmazon()
	decoy := sources.Book{Title: "decoy", Ln: "Clancy", Fn: "Joe", Year: 1997, Month: 1, Day: 1,
		Category: "D.3", Publisher: "oreilly", IDNo: "000000009Z", Keywords: []string{"decoy"}}.Tuple()
	inQa, err := am.Eval.EvalQuery(got, decoy)
	if err != nil {
		t.Fatal(err)
	}
	inQb, err := am.Eval.EvalQuery(qb, decoy)
	if err != nil {
		t.Fatal(err)
	}
	if !inQa || inQb {
		t.Errorf("decoy: inQa=%v inQb=%v, want true/false (Qa properly subsumes Qb)", inQa, inQb)
	}
}

// TestCNFMapSubsumes: the baseline is still correct (subsuming) on data.
func TestCNFMapSubsumes(t *testing.T) {
	am := sources.NewAmazon()
	tr := core.NewTranslator(am.Spec)
	catalog := sources.BookRelation("catalog", sources.GenBooks(15, 300))

	queries := []string{
		`([ln = "Clancy"] or [ln = "Smith"]) and [fn = "Tom"]`,
		`[pyear = 1997] and ([pmonth = 5] or [publisher = "oreilly"])`,
		`([category = "D.3"] and [pyear = 1996]) or [id-no = "zzz"]`,
	}
	for _, qs := range queries {
		q := qparse.MustParse(qs)
		viaCNF, err := tr.CNFMap(q)
		if err != nil {
			t.Fatal(err)
		}
		viaTDQM, err := tr.TDQM(q)
		if err != nil {
			t.Fatal(err)
		}
		var nQ, nCNF, nTDQM int
		for _, tup := range catalog.Tuples {
			inQ, err := am.Eval.EvalQuery(q, tup)
			if err != nil {
				t.Fatal(err)
			}
			inCNF, err := am.Eval.EvalQuery(viaCNF, tup)
			if err != nil {
				t.Fatal(err)
			}
			inTDQM, err := am.Eval.EvalQuery(viaTDQM, tup)
			if err != nil {
				t.Fatal(err)
			}
			if inQ {
				nQ++
				if !inCNF {
					t.Fatalf("%s: CNF baseline missed an answer", qs)
				}
				if !inTDQM {
					t.Fatalf("%s: TDQM missed an answer", qs)
				}
			}
			if inCNF {
				nCNF++
			}
			if inTDQM {
				nTDQM++
			}
		}
		if nTDQM > nCNF {
			t.Errorf("%s: TDQM (%d) less selective than CNF baseline (%d)?", qs, nTDQM, nCNF)
		}
	}
}

// TestWithoutRelaxations: stripping inexact rules models syntactic-only
// wrappers — the near-pattern title constraint now has no mapping at all.
func TestWithoutRelaxations(t *testing.T) {
	full := sources.NewAmazon().Spec
	exactOnly := core.WithoutRelaxations(full)
	if len(exactOnly.Rules) >= len(full.Rules) {
		t.Fatalf("exact-only spec has %d rules, full has %d", len(exactOnly.Rules), len(full.Rules))
	}
	tr := core.NewTranslator(exactOnly)
	got, err := tr.TDQM(qparse.MustParse(`[ti contains java(near)jdk]`))
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsTrue() {
		t.Errorf("without relaxations, near-title maps to %s, want TRUE (dropped)", got)
	}
	// Exact mappings survive.
	got, err = tr.TDQM(qparse.MustParse(`[ln = "Clancy"] and [fn = "Tom"]`))
	if err != nil {
		t.Fatal(err)
	}
	if got.IsTrue() {
		t.Error("exact name mapping lost")
	}
}

// TestToCNF: structural and logical checks for the CNF conversion.
func TestToCNF(t *testing.T) {
	q := qparse.MustParse(`[a = 1] or ([b = 1] and [c = 1])`)
	cnf := qtree.ToCNF(q)
	if cnf.Kind != qtree.KindAnd || len(cnf.Kids) != 2 {
		t.Fatalf("CNF shape = %s", cnf)
	}
	for _, clause := range cnf.Kids {
		if clause.Kind != qtree.KindOr || len(clause.Kids) != 2 {
			t.Fatalf("clause %s not a 2-way disjunction", clause)
		}
	}
	if !boolex.MustEquivalent(q, cnf) {
		t.Errorf("CNF not equivalent: %s vs %s", q, cnf)
	}
	// True passes through.
	if !qtree.ToCNF(qtree.True()).IsTrue() {
		t.Error("ToCNF(TRUE) != TRUE")
	}
}
