package core

import (
	"sync"

	"repro/internal/qtree"
)

// Parallel branch mapping. The embarrassingly parallel outer loops — one SCM
// per disjunct in Algorithm DNF, one recursive TDQM per Or-branch — fan out
// over forked child translators behind a bounded worker pool, mirroring
// internal/serve's per-source fan-out. Branch results are placed by index
// and child statistics merged in branch order, so output, Stats, and residue
// tracking are identical to the sequential path.

// SetParallelism sets the number of workers branch mapping may use; n <= 1
// (the default) keeps translation fully sequential. Parallelism is skipped
// whenever a tracer or derivation trace is attached — span trees and
// derivation logs are ordered, sequential artifacts.
//
// Deprecated: prefer the WithParallelism option at construction time.
func (t *Translator) SetParallelism(n int) { WithParallelism(n)(t) }

// parallelEligible reports whether a fan-out over n branches should run
// concurrently.
func (t *Translator) parallelEligible(n int) bool {
	return t.sem != nil && n > 1 && t.tracer == nil && t.trace == nil
}

// fork returns a child translator for one branch: same spec, flags, metrics,
// shared memo, and shared worker pool, with its own Stats and residue flag.
// The child starts at depth 1 so its structural calls never create or drop
// the shared memo.
func (t *Translator) fork() *Translator {
	sub := &Translator{
		Spec:          t.Spec,
		fullDNFSafety: t.fullDNFSafety,
		compiledOff:   t.compiledOff,
		memoOff:       t.memoOff,
		memo:          t.memo,
		shared:        t.shared,
		plan:          t.plan,
		metrics:       t.metrics,
		workers:       t.workers,
		sem:           t.sem,
		depth:         1,
		residueClean:  true,
	}
	if len(t.planFrames) > 0 {
		// The fan-out runs inside an open plan recording: give the child a
		// base frame so its metric activity is captured and folded back into
		// the parent's frame at merge (see planAgg).
		sub.planFrames = []*planAgg{{}}
	}
	return sub
}

// merge folds a finished branch translator's accounting back into t.
func (t *Translator) merge(sub *Translator) {
	t.Stats.SCMCalls += sub.Stats.SCMCalls
	t.Stats.MatchRuns += sub.Stats.MatchRuns
	t.Stats.MatchingsFound += sub.Stats.MatchingsFound
	t.Stats.PSafeCalls += sub.Stats.PSafeCalls
	t.Stats.ProductTerms += sub.Stats.ProductTerms
	t.Stats.Disjunctivizations += sub.Stats.Disjunctivizations
	t.Stats.DNFDisjuncts += sub.Stats.DNFDisjuncts
	t.Stats.RuleAttempts += sub.Stats.RuleAttempts
	t.memoStats.Hits += sub.memoStats.Hits
	t.memoStats.Misses += sub.memoStats.Misses
	t.residueClean = t.residueClean && sub.residueClean
	if len(sub.planFrames) == 1 {
		if f := t.frameTop(); f != nil {
			f.fold(sub.planFrames[0])
		}
	}
}

// mapBranches maps every branch through fn on a forked translator, running
// up to the configured worker count concurrently. A branch that cannot get
// a pool slot runs inline on the calling goroutine — the slot-or-inline
// acquisition means nested fan-outs (an Or inside a disjunct) can never
// deadlock on the shared pool. Results are placed by branch index, children
// merged in branch order, and the first error (by branch index) returned.
func (t *Translator) mapBranches(branches []*qtree.Node, fn func(*Translator, *qtree.Node) (*qtree.Node, error)) ([]*qtree.Node, error) {
	out := make([]*qtree.Node, len(branches))
	errs := make([]error, len(branches))
	subs := make([]*Translator, len(branches))
	var wg sync.WaitGroup
	for i := range branches {
		sub := t.fork()
		subs[i] = sub
		select {
		case t.sem <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-t.sem }()
				out[i], errs[i] = fn(sub, branches[i])
			}(i)
		default:
			out[i], errs[i] = fn(sub, branches[i])
		}
	}
	wg.Wait()
	for _, sub := range subs {
		t.merge(sub)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
