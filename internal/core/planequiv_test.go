package core_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/conformance"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/workload"
)

// newTranslationMetrics builds a fresh registry+metrics pair, and scrape
// renders the registry's full Prometheus exposition for byte comparison.
func newTranslationMetrics(t *testing.T) (*obs.Registry, *obs.TranslationMetrics) {
	t.Helper()
	reg := obs.NewRegistry()
	return reg, obs.NewTranslationMetrics(reg)
}

func scrape(t *testing.T, reg *obs.Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return buf.String()
}

// planGrid is the translator-configuration grid the differential suite runs
// under: every combination of the translation-scoped memo, the shared
// MatchCache, and branch-mapping parallelism.
var planGrid = []struct {
	memo  bool
	cache bool
	par   int
}{
	{true, false, 0},
	{false, false, 0},
	{true, true, 0},
	{false, true, 0},
	{true, false, 4},
	{true, true, 4},
}

// TestPlanEquivalenceConformance is the differential plan-equivalence
// contract: across ≥40 conformance seeds and a {memo, MatchCache,
// parallelism} grid, translation with a cold shared Plan and with a warm one
// produces byte-identical mapped queries and residues (exact String
// equality, not just canonical equivalence — plan keys are exact renderings,
// so a hit must reproduce precisely the translation the interpretive path
// yields) and, because every hit replays its recorded Stats delta, Stats
// identical to a plan-free run. The plan must be observable only through
// PlanStats.
func TestPlanEquivalenceConformance(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		c := conformance.NewCase(seed)
		for _, g := range planGrid {
			name := fmt.Sprintf("seed %d memo=%v cache=%v par=%d", seed, g.memo, g.cache, g.par)
			opts := func() []core.Option {
				o := []core.Option{core.WithMemo(g.memo), core.WithParallelism(g.par)}
				if g.cache {
					o = append(o, core.WithMatchCache(core.NewMatchCache(0)))
				}
				return o
			}

			base := core.NewTranslator(c.S.Spec, opts()...)
			wantQ, wantF, wantErr := base.TranslateWithFilter(c.Query, core.AlgTDQM)

			plan := core.NewPlan(0)
			for _, variant := range []string{"cold", "warm"} {
				tr := core.NewTranslator(c.S.Spec, append(opts(), core.WithPlan(plan))...)
				gotQ, gotF, gotErr := tr.TranslateWithFilter(c.Query, core.AlgTDQM)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("%s %s: err=%v, plan-free err=%v", name, variant, gotErr, wantErr)
				}
				if wantErr != nil {
					continue
				}
				if gotQ.String() != wantQ.String() {
					t.Errorf("%s %s: mapped query not byte-identical\n got: %s\nwant: %s",
						name, variant, gotQ, wantQ)
				}
				if gotF.String() != wantF.String() {
					t.Errorf("%s %s: residue not byte-identical\n got: %s\nwant: %s",
						name, variant, gotF, wantF)
				}
				if tr.Stats != base.Stats {
					t.Errorf("%s %s: Stats diverged from plan-free run\n got: %+v\nwant: %+v",
						name, variant, tr.Stats, base.Stats)
				}
			}
			if wantErr == nil {
				if st := plan.Stats(); st.Hits == 0 {
					t.Errorf("%s: warm plan run recorded no hits", name)
				}
			}
		}
	}
}

// TestPlanEquivalenceSweep repeats the differential check on the
// dependency-degree sweep fixture — the e>0 workloads the plan was built to
// accelerate — asserting warm-plan output, Stats, and PSafe partitions stay
// byte-identical to the interpretive path.
func TestPlanEquivalenceSweep(t *testing.T) {
	for _, e := range []int{0, 1, 2} {
		for _, k := range []int{2, 4, 8} {
			s, q := workload.DependencyConjunction(4, k, e)
			name := fmt.Sprintf("e=%d k=%d", e, k)

			base := core.NewTranslator(s.Spec)
			wantQ, err := base.TDQM(q)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}

			plan := core.NewPlan(0)
			tr := core.NewTranslator(s.Spec, core.WithPlan(plan))
			for pass := 0; pass < 3; pass++ {
				tr.ResetStats()
				gotQ, err := tr.TDQM(q)
				if err != nil {
					t.Fatalf("%s pass %d: %v", name, pass, err)
				}
				if gotQ.String() != wantQ.String() {
					t.Errorf("%s pass %d: mapped query not byte-identical\n got: %s\nwant: %s",
						name, pass, gotQ, wantQ)
				}
				if tr.Stats != base.Stats {
					t.Errorf("%s pass %d: Stats diverged\n got: %+v\nwant: %+v",
						name, pass, tr.Stats, base.Stats)
				}
			}
			if plan.Stats().Hits == 0 {
				t.Errorf("%s: repeated translations never hit the plan", name)
			}
		}
	}
}

// TestPlanMetricsParity asserts the cumulative TranslationMetrics counters
// advance identically plan-on (warm) and plan-off: a hit replays the
// recorded rule-fire/suppression/SCM/PSafe/Disjunctivize/product-term
// activity it suppressed.
func TestPlanMetricsParity(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		c := conformance.NewCase(seed)

		exposition := func(withPlan bool) string {
			reg, m := newTranslationMetrics(t)
			opts := []core.Option{core.WithMetrics(m)}
			if withPlan {
				plan := core.NewPlan(0)
				// Warm the plan with a metrics-free run so the measured run
				// below replays recorded fragments.
				warm := core.NewTranslator(c.S.Spec, core.WithPlan(plan))
				if _, _, err := warm.TranslateWithFilter(c.Query, core.AlgTDQM); err != nil {
					t.Fatalf("seed %d: warming: %v", seed, err)
				}
				opts = append(opts, core.WithPlan(plan))
			}
			tr := core.NewTranslator(c.S.Spec, opts...)
			if _, _, err := tr.TranslateWithFilter(c.Query, core.AlgTDQM); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			return scrape(t, reg)
		}

		on, off := exposition(true), exposition(false)
		if on != off {
			t.Errorf("seed %d: metrics diverge plan-on vs plan-off\n on: %s\noff: %s",
				seed, on, off)
		}
	}
}
