package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/obs"
	"repro/internal/qtree"
	"repro/internal/rules"
)

// Partition is the result of Algorithm PSafe: a partition of a conjunction's
// conjuncts into blocks that are safe to translate independently
// (S(Q̂) = ∏ S(∧(B))) and minimal before merging (no block further
// partitionable safely — Theorem 6).
type Partition struct {
	// Blocks holds disjoint, sorted conjunct-index blocks covering all
	// conjuncts, ordered by first index.
	Blocks [][]int
	// Separable reports whether every conjunct ended up in its own block,
	// i.e. the conjunction was safe to separate completely.
	Separable bool
	// CrossMatchings counts the cross-matching instances found across the
	// examined product terms.
	CrossMatchings int
}

// String renders the partition as {{0,1},{2}}.
func (p *Partition) String() string {
	parts := make([]string, len(p.Blocks))
	for i, b := range p.Blocks {
		es := make([]string, len(b))
		for j, x := range b {
			es[j] = fmt.Sprint(x)
		}
		parts[i] = "{" + strings.Join(es, ",") + "}"
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// PSafe is Algorithm PSafe (Figure 11): it partitions the given conjuncts
// into safe, minimal blocks with respect to the translator's specification.
//
// Step 1 computes the conjuncts' essential DNF (Procedure EDNF) and scans
// every product term for cross-matchings — potential matchings spanning
// ingredients of different conjuncts — recording, per cross-matching, the
// candidate blocks that minimally cover it. Step 2 selects an irredundant
// set of candidate blocks covering all cross-matchings, merges overlapping
// blocks, and completes the partition with singleton blocks.
//
// With a translation plan attached, repeated conjunct shapes replay the
// recorded partition instead of re-running the scan; the spec's static
// feature-pair adjacency additionally proves many shapes separable without
// scanning at all (see staticallySeparable).
func (t *Translator) PSafe(conjuncts []*qtree.Node) (*Partition, error) {
	if t.planOK() {
		key := planKeyPSafe(conjuncts)
		if e := t.planGet(key); e != nil {
			t.planApply(e)
			return e.part, nil
		}
		rec := t.planRecord()
		p, err := t.psafeBody(conjuncts)
		if err != nil {
			rec.abort(t)
			return nil, err
		}
		rec.store(t, key, &planEntry{part: p})
		return p, nil
	}
	return t.psafeBody(conjuncts)
}

// psafeBody is the plan-independent Algorithm PSafe implementation.
func (t *Translator) psafeBody(conjuncts []*qtree.Node) (*Partition, error) {
	t.Stats.PSafeCalls++
	t.metrics.PSafeCall(t.Spec.Name)
	if f := t.frameTop(); f != nil {
		f.psafeCalls++
	}
	n := len(conjuncts)
	all := qtree.NewConstraintSet()
	for _, c := range conjuncts {
		all.AddAll(qtree.SetOfConstraints(c))
	}
	var sp *obs.Span
	startTerms := t.Stats.ProductTerms
	var ms []*rules.Matching
	var err error
	if t.tracer != nil {
		t.traceEnter(all.Slice())
		defer t.traceExit()
		sp = t.tracer.Start(obs.KindPSafe, "")
		defer t.tracer.End()
		sp.Set(obs.CtrConjuncts, int64(n))
		sp.Set(obs.CtrEssentialDNFSize, t.essentialSize(all.Slice()))
		ms, _, err = t.tracedMatchings(all.Slice())
	} else {
		ms, err = t.matchings(all.Slice())
	}
	if err != nil {
		return nil, err
	}
	// Single-constraint potential matchings can never be cross-matchings:
	// inside any product term, a one-constraint matching lies wholly within
	// whichever ingredient contributed its constraint. They are equally
	// inert in EDNF nullification (containment in a disjunct they intersect
	// is automatic, and the single-constraint case is exempt from the
	// witness rule), so dropping them up front is exact — results and Stats
	// are unchanged, the scan just compares fewer sets.
	mp := multiConstraintSets(matchingSets(ms))

	des := make([]DNFExpr, n)
	for i, c := range conjuncts {
		des[i] = t.EDNF(c, mp)
	}

	total := 1
	for i := range des {
		total *= len(des[i])
	}

	// Step 1: scan product terms for cross-matchings and candidate blocks.
	// When no potential matching can span two conjuncts the scan finds
	// nothing, so it is skipped and the examined terms accounted
	// arithmetically: len(mp) == 0 covers the dependency-free case, and the
	// spec's static feature-pair adjacency proves the rest shape-wise.
	cands := make(map[string]*candBlock) // keyed by index-tuple
	instBlocks := make(map[string][]string)
	var instOrder []string

	if len(mp) > 0 && !t.staticallySeparable(conjuncts) {
		for _, in := range t.scanTerms(des, mp, total) {
			if _, dup := instBlocks[in.id]; dup {
				continue
			}
			instOrder = append(instOrder, in.id)
			for _, bidx := range in.covers {
				key := blockKey(bidx)
				cb, ok := cands[key]
				if !ok {
					cb = &candBlock{indices: bidx, covers: make(map[string]bool)}
					cands[key] = cb
				}
				cb.covers[in.id] = true
				instBlocks[in.id] = append(instBlocks[in.id], key)
			}
		}
	}
	t.Stats.ProductTerms += total

	p := &Partition{CrossMatchings: len(instOrder)}

	// Step 2: choose an irredundant cover of the cross-matching instances.
	chosen := chooseCover(instOrder, instBlocks, cands)

	// Merge overlapping chosen blocks (union-find over conjunct indices).
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, key := range chosen {
		b := cands[key].indices
		for _, x := range b[1:] {
			parent[find(x)] = find(b[0])
		}
	}
	groups := make(map[int][]int)
	for i := 0; i < n; i++ {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	// Order blocks by their smallest member for determinism.
	sort.Slice(roots, func(a, b int) bool { return groups[roots[a]][0] < groups[roots[b]][0] })
	for _, r := range roots {
		blk := groups[r]
		sort.Ints(blk)
		p.Blocks = append(p.Blocks, blk)
	}
	p.Separable = len(p.Blocks) == n
	diff := t.Stats.ProductTerms - startTerms
	t.metrics.ProductTerms(t.Spec.Name, diff)
	if f := t.frameTop(); f != nil {
		f.productTerms += diff
	}
	if sp != nil {
		sp.Set(obs.CtrBlocks, int64(len(p.Blocks)))
		sp.Set(obs.CtrCrossMatchings, int64(p.CrossMatchings))
		sp.Set(obs.CtrProductTerms, int64(t.Stats.ProductTerms-startTerms))
		if p.Separable {
			sp.Set(obs.CtrSeparable, 1)
		} else {
			sp.Set(obs.CtrSeparable, 0)
		}
	}
	return p, nil
}

func blockKey(idx []int) string {
	b := make([]byte, 0, 4*len(idx))
	for i, x := range idx {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(x), 10)
	}
	return string(b)
}

// multiConstraintSets keeps the potential matchings holding at least two
// constraints — the only ones that can span conjuncts. It filters in place:
// matchingSets returns a fresh slice.
func multiConstraintSets(sets []*qtree.ConstraintSet) []*qtree.ConstraintSet {
	out := sets[:0]
	for _, s := range sets {
		if s.Len() >= 2 {
			out = append(out, s)
		}
	}
	return out
}

// staticallySeparable consults the spec's static translation plan: a
// cross-matching assigns constraints of two different conjuncts to patterns
// of one rule, so if no feature pair of any rule is jointly satisfiable
// across any conjunct pair, no product term can contain a cross-matching and
// the scan is skipped. The check is shape-only (no matcher runs) and
// one-sided: false means "cannot prove", not "cross-matchings exist".
// Only the compiled path uses it — the tdqm-uncompiled ablation stays fully
// interpretive.
func (t *Translator) staticallySeparable(conjuncts []*qtree.Node) bool {
	if t.compiledOff {
		return false
	}
	tp := t.Spec.TranslationPlan()
	if tp.Pairs() == 0 {
		return true
	}
	sats := make([][]uint64, len(conjuncts))
	for i, c := range conjuncts {
		sats[i] = tp.SatMask(c.Constraints())
	}
	for i := 0; i < len(conjuncts); i++ {
		for j := i + 1; j < len(conjuncts); j++ {
			if tp.CrossFeasible(sats[i], sats[j]) {
				return false
			}
		}
	}
	return true
}

// scanInst is one cross-matching occurrence found by the product-term scan:
// its instance ID (term index tuple + matching ID) and the minimal candidate
// blocks covering it, in discovery order.
type scanInst struct {
	id     string
	covers [][]int
}

// psafeParMinTerms is the minimum product-term count before the scan fans
// out onto the worker pool; below it the fork/merge overhead dominates.
const psafeParMinTerms = 64

// scanTerms enumerates the [0, total) product terms of des and returns the
// cross-matching instances in term order. When a worker pool is configured
// and the term space is large enough, disjoint index ranges are scanned
// concurrently and stitched back in order, so the result — and everything
// downstream (candidate blocks, chooseCover, the partition) — is identical
// to the sequential scan. Traced runs stay sequential: tracing is a
// deterministic single-goroutine artifact regime.
func (t *Translator) scanTerms(des []DNFExpr, mp []*qtree.ConstraintSet, total int) []scanInst {
	if t.sem != nil && t.tracer == nil && t.trace == nil && total >= psafeParMinTerms {
		return scanTermsParallel(t.sem, des, mp, total)
	}
	return scanTermRange(des, mp, 0, total)
}

// scanTermRange scans product terms lo..hi (odometer order, last dimension
// fastest). One constraint set is reused across terms and the term ID is
// built lazily — most terms contain no cross-matching.
func scanTermRange(des []DNFExpr, mp []*qtree.ConstraintSet, lo, hi int) []scanInst {
	n := len(des)
	idx := make([]int, n)
	rem := lo
	for i := n - 1; i >= 0; i-- {
		idx[i] = rem % len(des[i])
		rem /= len(des[i])
	}
	ing := make([]*qtree.ConstraintSet, n)
	term := qtree.NewConstraintSet()
	keyBuf := make([]byte, 0, 4*n)
	var out []scanInst
	for pos := lo; pos < hi; pos++ {
		term.Reset()
		for i := range idx {
			ing[i] = des[i][idx[i]]
			term.AddAll(ing[i])
		}
		termID := ""
		for _, m := range mp {
			if !m.SubsetOf(term) {
				continue
			}
			inside := false
			for i := 0; i < n; i++ {
				if m.SubsetOf(ing[i]) {
					inside = true
					break
				}
			}
			if inside {
				continue // not a cross-matching in this term
			}
			if termID == "" {
				keyBuf = keyBuf[:0]
				for i, x := range idx {
					if i > 0 {
						keyBuf = append(keyBuf, ',')
					}
					keyBuf = strconv.AppendInt(keyBuf, int64(x), 10)
				}
				termID = "[" + string(keyBuf) + "]"
			}
			out = append(out, scanInst{id: termID + "|" + m.ID(), covers: minimalCovers(m, ing)})
		}
		// odometer
		i := n - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(des[i]) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			break
		}
	}
	return out
}

// scanTermsParallel splits [0, total) into one chunk per pool slot (plus the
// caller) and scans them concurrently, borrowing slots from the shared
// n−1-slot semaphore with the same acquire-or-inline discipline as
// mapBranches, so nested fan-out cannot deadlock. Chunk results are
// concatenated in chunk order, which is term order.
func scanTermsParallel(sem chan struct{}, des []DNFExpr, mp []*qtree.ConstraintSet, total int) []scanInst {
	workers := cap(sem) + 1
	chunk := (total + workers - 1) / workers
	nChunks := (total + chunk - 1) / chunk
	results := make([][]scanInst, nChunks)
	var wg sync.WaitGroup
	for c := 0; c < nChunks; c++ {
		lo, hi := c*chunk, (c+1)*chunk
		if hi > total {
			hi = total
		}
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func(c, lo, hi int) {
				defer wg.Done()
				defer func() { <-sem }()
				results[c] = scanTermRange(des, mp, lo, hi)
			}(c, lo, hi)
		default:
			results[c] = scanTermRange(des, mp, lo, hi)
		}
	}
	wg.Wait()
	out := results[0]
	for _, r := range results[1:] {
		out = append(out, r...)
	}
	return out
}

// minimalCovers enumerates all minimal (irredundant) covers of matching m by
// the ingredient constraint sets: subsets β of conjunct indices such that
// m ⊆ ∪_{i∈β} C(I_i) and no proper subset of β covers m (Figure 11,
// lines 9–10).
//
// Enumeration goes by per-constraint choice: for each constraint of m pick
// one conjunct containing it, union the choices, then keep the minimal
// sets. Every minimal cover arises this way (each member of a minimal
// cover exclusively covers some constraint, so choosing those exclusive
// constraints reconstructs it), and the work is bounded by
// ∏ |holders(c)| over m's constraints — small, since rule arity bounds |m|.
func minimalCovers(m *qtree.ConstraintSet, ing []*qtree.ConstraintSet) [][]int {
	keys := m.Keys()
	holders := make([][]int, len(keys))
	for ki, key := range keys {
		for i, s := range ing {
			if s.HasKey(key) {
				holders[ki] = append(holders[ki], i)
			}
		}
		if len(holders[ki]) == 0 {
			return nil // m not coverable in this term (cannot happen when m ⊆ term)
		}
	}
	// Product of choices, collecting candidate index sets.
	seen := make(map[string]bool)
	var candidates [][]int
	choice := make([]int, len(keys))
	for {
		set := make(map[int]bool, len(keys))
		for ki := range keys {
			set[holders[ki][choice[ki]]] = true
		}
		idxs := make([]int, 0, len(set))
		for i := range set {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		key := blockKey(idxs)
		if !seen[key] {
			seen[key] = true
			candidates = append(candidates, idxs)
		}
		// odometer
		ki := len(keys) - 1
		for ; ki >= 0; ki-- {
			choice[ki]++
			if choice[ki] < len(holders[ki]) {
				break
			}
			choice[ki] = 0
		}
		if ki < 0 {
			break
		}
	}
	// Keep only the minimal candidates (no other candidate is a proper
	// subset).
	var out [][]int
	for i, a := range candidates {
		minimal := true
		for j, b := range candidates {
			if i != j && properSubsetInts(b, a) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, a)
		}
	}
	return out
}

// properSubsetInts reports whether sorted a is a proper subset of sorted b.
func properSubsetInts(a, b []int) bool {
	if len(a) >= len(b) {
		return false
	}
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j >= len(b) || b[j] != x {
			return false
		}
		j++
	}
	return true
}

// candBlock is a candidate block (Figure 11, variable X): the conjunct
// indices it comprises and the cross-matching instances it covers (B̃).
type candBlock struct {
	indices []int
	covers  map[string]bool
}

// chooseCover selects an irredundant subset of the candidate blocks covering
// every cross-matching instance (Figure 11, line 16). Blocks that are the
// sole cover of some instance are forced; the remainder is covered greedily
// (largest marginal coverage, ties broken by smaller block then by key for
// determinism), and a final pruning pass removes blocks made redundant by
// later choices, yielding a minimal (irredundant) cover.
func chooseCover(instOrder []string, instBlocks map[string][]string, cands map[string]*candBlock) []string {
	if len(instOrder) == 0 {
		return nil
	}
	chosen := make(map[string]bool)
	covered := make(map[string]bool)

	markCovered := func(key string) {
		for inst := range cands[key].covers {
			covered[inst] = true
		}
	}

	// Forced blocks: sole cover of some instance.
	for _, inst := range instOrder {
		bs := instBlocks[inst]
		if len(bs) == 1 && !chosen[bs[0]] {
			chosen[bs[0]] = true
			markCovered(bs[0])
		}
	}

	// Greedy cover of the remainder.
	keys := make([]string, 0, len(cands))
	for k := range cands {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		ka, kb := cands[keys[a]], cands[keys[b]]
		if len(ka.indices) != len(kb.indices) {
			return len(ka.indices) < len(kb.indices)
		}
		return keys[a] < keys[b]
	})
	remaining := func() int {
		c := 0
		for _, inst := range instOrder {
			if !covered[inst] {
				c++
			}
		}
		return c
	}
	for remaining() > 0 {
		best, bestGain := "", 0
		for _, k := range keys {
			if chosen[k] {
				continue
			}
			gain := 0
			for inst := range cands[k].covers {
				if !covered[inst] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = k, gain
			}
		}
		if best == "" {
			break // cannot happen: every instance has at least one candidate
		}
		chosen[best] = true
		markCovered(best)
	}

	// Prune: drop blocks whose instances are all covered by other choices.
	chosenKeys := make([]string, 0, len(chosen))
	for k := range chosen {
		chosenKeys = append(chosenKeys, k)
	}
	// Try to drop larger blocks first so the surviving cover prefers small
	// blocks, matching the paper's minimality discussion.
	sort.Slice(chosenKeys, func(a, b int) bool {
		ka, kb := cands[chosenKeys[a]], cands[chosenKeys[b]]
		if len(ka.indices) != len(kb.indices) {
			return len(ka.indices) > len(kb.indices)
		}
		return chosenKeys[a] < chosenKeys[b]
	})
	for _, k := range chosenKeys {
		redundant := true
		for inst := range cands[k].covers {
			soleHolder := true
			for _, other := range instBlocks[inst] {
				if other != k && chosen[other] {
					soleHolder = false
					break
				}
			}
			if soleHolder {
				redundant = false
				break
			}
		}
		if redundant {
			delete(chosen, k)
		}
	}

	out := make([]string, 0, len(chosen))
	for k := range chosen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
