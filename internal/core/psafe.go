package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/qtree"
	"repro/internal/rules"
)

// Partition is the result of Algorithm PSafe: a partition of a conjunction's
// conjuncts into blocks that are safe to translate independently
// (S(Q̂) = ∏ S(∧(B))) and minimal before merging (no block further
// partitionable safely — Theorem 6).
type Partition struct {
	// Blocks holds disjoint, sorted conjunct-index blocks covering all
	// conjuncts, ordered by first index.
	Blocks [][]int
	// Separable reports whether every conjunct ended up in its own block,
	// i.e. the conjunction was safe to separate completely.
	Separable bool
	// CrossMatchings counts the cross-matching instances found across the
	// examined product terms.
	CrossMatchings int
}

// String renders the partition as {{0,1},{2}}.
func (p *Partition) String() string {
	parts := make([]string, len(p.Blocks))
	for i, b := range p.Blocks {
		es := make([]string, len(b))
		for j, x := range b {
			es[j] = fmt.Sprint(x)
		}
		parts[i] = "{" + strings.Join(es, ",") + "}"
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// PSafe is Algorithm PSafe (Figure 11): it partitions the given conjuncts
// into safe, minimal blocks with respect to the translator's specification.
//
// Step 1 computes the conjuncts' essential DNF (Procedure EDNF) and scans
// every product term for cross-matchings — potential matchings spanning
// ingredients of different conjuncts — recording, per cross-matching, the
// candidate blocks that minimally cover it. Step 2 selects an irredundant
// set of candidate blocks covering all cross-matchings, merges overlapping
// blocks, and completes the partition with singleton blocks.
func (t *Translator) PSafe(conjuncts []*qtree.Node) (*Partition, error) {
	t.Stats.PSafeCalls++
	t.metrics.PSafeCall(t.Spec.Name)
	n := len(conjuncts)
	all := qtree.NewConstraintSet()
	for _, c := range conjuncts {
		all.AddAll(qtree.SetOfConstraints(c))
	}
	var sp *obs.Span
	startTerms := t.Stats.ProductTerms
	var ms []*rules.Matching
	var err error
	if t.tracer != nil {
		t.traceEnter(all.Slice())
		defer t.traceExit()
		sp = t.tracer.Start(obs.KindPSafe, "")
		defer t.tracer.End()
		sp.Set(obs.CtrConjuncts, int64(n))
		sp.Set(obs.CtrEssentialDNFSize, t.essentialSize(all.Slice()))
		ms, _, err = t.tracedMatchings(all.Slice())
	} else {
		ms, err = t.matchings(all.Slice())
	}
	if err != nil {
		return nil, err
	}
	mp := matchingSets(ms)

	des := make([]DNFExpr, n)
	for i, c := range conjuncts {
		des[i] = t.EDNF(c, mp)
	}

	// Step 1: scan product terms for cross-matchings and candidate blocks.
	cands := make(map[string]*candBlock) // keyed by index-tuple
	instBlocks := make(map[string][]string)
	var instOrder []string

	idx := make([]int, n)
	ing := make([]*qtree.ConstraintSet, n)
	for {
		term := qtree.NewConstraintSet()
		for i := range idx {
			ing[i] = des[i][idx[i]]
			term.AddAll(ing[i])
		}
		t.Stats.ProductTerms++
		termID := fmt.Sprint(idx)
		for _, m := range mp {
			if !m.SubsetOf(term) {
				continue
			}
			inside := false
			for i := 0; i < n; i++ {
				if m.SubsetOf(ing[i]) {
					inside = true
					break
				}
			}
			if inside {
				continue // not a cross-matching in this term
			}
			instID := termID + "|" + m.ID()
			if _, dup := instBlocks[instID]; dup {
				continue
			}
			instOrder = append(instOrder, instID)
			for _, bidx := range minimalCovers(m, ing) {
				key := blockKey(bidx)
				cb, ok := cands[key]
				if !ok {
					cb = &candBlock{indices: bidx, covers: make(map[string]bool)}
					cands[key] = cb
				}
				cb.covers[instID] = true
				instBlocks[instID] = append(instBlocks[instID], key)
			}
		}
		// odometer
		i := n - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(des[i]) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			break
		}
	}

	p := &Partition{CrossMatchings: len(instOrder)}

	// Step 2: choose an irredundant cover of the cross-matching instances.
	chosen := chooseCover(instOrder, instBlocks, cands)

	// Merge overlapping chosen blocks (union-find over conjunct indices).
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, key := range chosen {
		b := cands[key].indices
		for _, x := range b[1:] {
			parent[find(x)] = find(b[0])
		}
	}
	groups := make(map[int][]int)
	for i := 0; i < n; i++ {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	// Order blocks by their smallest member for determinism.
	sort.Slice(roots, func(a, b int) bool { return groups[roots[a]][0] < groups[roots[b]][0] })
	for _, r := range roots {
		blk := groups[r]
		sort.Ints(blk)
		p.Blocks = append(p.Blocks, blk)
	}
	p.Separable = len(p.Blocks) == n
	t.metrics.ProductTerms(t.Spec.Name, t.Stats.ProductTerms-startTerms)
	if sp != nil {
		sp.Set(obs.CtrBlocks, int64(len(p.Blocks)))
		sp.Set(obs.CtrCrossMatchings, int64(p.CrossMatchings))
		sp.Set(obs.CtrProductTerms, int64(t.Stats.ProductTerms-startTerms))
		if p.Separable {
			sp.Set(obs.CtrSeparable, 1)
		} else {
			sp.Set(obs.CtrSeparable, 0)
		}
	}
	return p, nil
}

func blockKey(idx []int) string {
	parts := make([]string, len(idx))
	for i, x := range idx {
		parts[i] = fmt.Sprint(x)
	}
	return strings.Join(parts, ",")
}

// minimalCovers enumerates all minimal (irredundant) covers of matching m by
// the ingredient constraint sets: subsets β of conjunct indices such that
// m ⊆ ∪_{i∈β} C(I_i) and no proper subset of β covers m (Figure 11,
// lines 9–10).
//
// Enumeration goes by per-constraint choice: for each constraint of m pick
// one conjunct containing it, union the choices, then keep the minimal
// sets. Every minimal cover arises this way (each member of a minimal
// cover exclusively covers some constraint, so choosing those exclusive
// constraints reconstructs it), and the work is bounded by
// ∏ |holders(c)| over m's constraints — small, since rule arity bounds |m|.
func minimalCovers(m *qtree.ConstraintSet, ing []*qtree.ConstraintSet) [][]int {
	keys := m.Keys()
	holders := make([][]int, len(keys))
	for ki, key := range keys {
		for i, s := range ing {
			if s.HasKey(key) {
				holders[ki] = append(holders[ki], i)
			}
		}
		if len(holders[ki]) == 0 {
			return nil // m not coverable in this term (cannot happen when m ⊆ term)
		}
	}
	// Product of choices, collecting candidate index sets.
	seen := make(map[string]bool)
	var candidates [][]int
	choice := make([]int, len(keys))
	for {
		set := make(map[int]bool, len(keys))
		for ki := range keys {
			set[holders[ki][choice[ki]]] = true
		}
		idxs := make([]int, 0, len(set))
		for i := range set {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		key := blockKey(idxs)
		if !seen[key] {
			seen[key] = true
			candidates = append(candidates, idxs)
		}
		// odometer
		ki := len(keys) - 1
		for ; ki >= 0; ki-- {
			choice[ki]++
			if choice[ki] < len(holders[ki]) {
				break
			}
			choice[ki] = 0
		}
		if ki < 0 {
			break
		}
	}
	// Keep only the minimal candidates (no other candidate is a proper
	// subset).
	var out [][]int
	for i, a := range candidates {
		minimal := true
		for j, b := range candidates {
			if i != j && properSubsetInts(b, a) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, a)
		}
	}
	return out
}

// properSubsetInts reports whether sorted a is a proper subset of sorted b.
func properSubsetInts(a, b []int) bool {
	if len(a) >= len(b) {
		return false
	}
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j >= len(b) || b[j] != x {
			return false
		}
		j++
	}
	return true
}

// candBlock is a candidate block (Figure 11, variable X): the conjunct
// indices it comprises and the cross-matching instances it covers (B̃).
type candBlock struct {
	indices []int
	covers  map[string]bool
}

// chooseCover selects an irredundant subset of the candidate blocks covering
// every cross-matching instance (Figure 11, line 16). Blocks that are the
// sole cover of some instance are forced; the remainder is covered greedily
// (largest marginal coverage, ties broken by smaller block then by key for
// determinism), and a final pruning pass removes blocks made redundant by
// later choices, yielding a minimal (irredundant) cover.
func chooseCover(instOrder []string, instBlocks map[string][]string, cands map[string]*candBlock) []string {
	if len(instOrder) == 0 {
		return nil
	}
	chosen := make(map[string]bool)
	covered := make(map[string]bool)

	markCovered := func(key string) {
		for inst := range cands[key].covers {
			covered[inst] = true
		}
	}

	// Forced blocks: sole cover of some instance.
	for _, inst := range instOrder {
		bs := instBlocks[inst]
		if len(bs) == 1 && !chosen[bs[0]] {
			chosen[bs[0]] = true
			markCovered(bs[0])
		}
	}

	// Greedy cover of the remainder.
	keys := make([]string, 0, len(cands))
	for k := range cands {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		ka, kb := cands[keys[a]], cands[keys[b]]
		if len(ka.indices) != len(kb.indices) {
			return len(ka.indices) < len(kb.indices)
		}
		return keys[a] < keys[b]
	})
	remaining := func() int {
		c := 0
		for _, inst := range instOrder {
			if !covered[inst] {
				c++
			}
		}
		return c
	}
	for remaining() > 0 {
		best, bestGain := "", 0
		for _, k := range keys {
			if chosen[k] {
				continue
			}
			gain := 0
			for inst := range cands[k].covers {
				if !covered[inst] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = k, gain
			}
		}
		if best == "" {
			break // cannot happen: every instance has at least one candidate
		}
		chosen[best] = true
		markCovered(best)
	}

	// Prune: drop blocks whose instances are all covered by other choices.
	chosenKeys := make([]string, 0, len(chosen))
	for k := range chosen {
		chosenKeys = append(chosenKeys, k)
	}
	// Try to drop larger blocks first so the surviving cover prefers small
	// blocks, matching the paper's minimality discussion.
	sort.Slice(chosenKeys, func(a, b int) bool {
		ka, kb := cands[chosenKeys[a]], cands[chosenKeys[b]]
		if len(ka.indices) != len(kb.indices) {
			return len(ka.indices) > len(kb.indices)
		}
		return chosenKeys[a] < chosenKeys[b]
	})
	for _, k := range chosenKeys {
		redundant := true
		for inst := range cands[k].covers {
			soleHolder := true
			for _, other := range instBlocks[inst] {
				if other != k && chosen[other] {
					soleHolder = false
					break
				}
			}
			if soleHolder {
				redundant = false
				break
			}
		}
		if redundant {
			delete(chosen, k)
		}
	}

	out := make([]string, 0, len(chosen))
	for k := range chosen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
