package core

import (
	"repro/internal/qtree"
)

// BranchTranslation is one top-level disjunct of a query translated with
// its own (tight, per-branch) filter: σ_Q(D) = ∪_i σ_Fi(σ_Si(D)).
//
// A single global filter for a disjunctive query must fall back to Q itself
// whenever any branch is inexact (TranslateWithFilter), because after the
// union it is unknown which branch admitted a tuple. Keeping branches
// separate preserves the tight residue of Example 3 per branch — the
// practical upshot of the paper's companion filter work [15, 16].
type BranchTranslation struct {
	// Branch is the original disjunct.
	Branch *qtree.Node
	// Mapped is S(Branch) in the target vocabulary.
	Mapped *qtree.Node
	// Filter restores exactness for this branch: Branch = Filter ∧ Mapped.
	Filter *qtree.Node
}

// TranslateBranches translates each top-level disjunct of q independently
// with its own filter. A non-disjunctive query yields a single branch.
func (t *Translator) TranslateBranches(q *qtree.Node, algorithm string) ([]BranchTranslation, error) {
	q = q.Normalize()
	ds := q.Disjuncts()
	out := make([]BranchTranslation, 0, len(ds))
	for _, d := range ds {
		mapped, filter, err := t.TranslateWithFilter(d, algorithm)
		if err != nil {
			return nil, err
		}
		out = append(out, BranchTranslation{Branch: d, Mapped: mapped, Filter: filter})
	}
	return out, nil
}
