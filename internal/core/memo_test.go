package core_test

import (
	"testing"

	"repro/internal/conformance"
	"repro/internal/core"
)

// TestMemoCompiledConformance is the memo/compiled-equivalence contract:
// across ≥40 conformance seeds and both structural algorithms, translation
// with the matching memo on/off and the compiled dispatch engine on/off
// produces EqualCanonical queries and identical residues. Variants sharing
// the compiled setting must also report identical Stats — the memo
// compensates every counter on a hit — while compiled on/off may differ only
// in RuleAttempts (the index probes fewer rules).
func TestMemoCompiledConformance(t *testing.T) {
	algs := []string{core.AlgTDQM, core.AlgDNF}
	for seed := int64(1); seed <= 40; seed++ {
		c := conformance.NewCase(seed)
		for _, alg := range algs {
			base := core.NewTranslator(c.S.Spec)
			base.SetMemo(false)
			base.SetCompiled(false)
			wantQ, wantF, wantErr := base.TranslateWithFilter(c.Query, alg)

			variants := []struct {
				name     string
				memo     bool
				compiled bool
			}{
				{"memo", true, false},
				{"compiled", false, true},
				{"memo+compiled", true, true},
			}
			for _, v := range variants {
				tr := core.NewTranslator(c.S.Spec)
				tr.SetMemo(v.memo)
				tr.SetCompiled(v.compiled)
				gotQ, gotF, gotErr := tr.TranslateWithFilter(c.Query, alg)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("seed %d %s %s: err=%v, baseline err=%v",
						seed, alg, v.name, gotErr, wantErr)
				}
				if wantErr != nil {
					continue
				}
				if !gotQ.EqualCanonical(wantQ) {
					t.Errorf("seed %d (%s) %s %s: mapped query differs\n got: %s\nwant: %s",
						seed, c.SeedString(), alg, v.name, gotQ, wantQ)
				}
				if !gotF.EqualCanonical(wantF) {
					t.Errorf("seed %d (%s) %s %s: residue differs\n got: %s\nwant: %s",
						seed, c.SeedString(), alg, v.name, gotF, wantF)
				}
				if !v.compiled && tr.Stats != base.Stats {
					t.Errorf("seed %d %s %s: Stats diverged from memo-off baseline\n got: %+v\nwant: %+v",
						seed, alg, v.name, tr.Stats, base.Stats)
				}
				if v.compiled {
					w := base.Stats
					g := tr.Stats
					// RuleAttempts legitimately differs; everything else must not.
					w.RuleAttempts, g.RuleAttempts = 0, 0
					if g != w {
						t.Errorf("seed %d %s %s: non-attempt Stats diverged\n got: %+v\nwant: %+v",
							seed, alg, v.name, tr.Stats, base.Stats)
					}
					if tr.Stats.RuleAttempts > base.Stats.RuleAttempts {
						t.Errorf("seed %d %s %s: compiled probed more rules (%d) than uncompiled (%d)",
							seed, alg, v.name, tr.Stats.RuleAttempts, base.Stats.RuleAttempts)
					}
				}
			}
		}
	}
}

// TestMemoDefaultsOnAndScoped checks the memo actually engages by default —
// a structural translation on a query with repeated subtrees must record
// hits — and that its lifetime is one translation: a second run of the same
// query starts cold (same hit count as the first, not a warm full-hit run).
func TestMemoDefaultsOnAndScoped(t *testing.T) {
	c := conformance.NewCase(3)
	tr := core.NewTranslator(c.S.Spec)
	if _, _, err := tr.TranslateWithFilter(c.Query, core.AlgTDQM); err != nil {
		t.Fatal(err)
	}
	first := tr.MemoStats()
	if first.Misses == 0 {
		t.Fatal("no memo misses recorded; memo appears disabled by default")
	}
	if _, _, err := tr.TranslateWithFilter(c.Query, core.AlgTDQM); err != nil {
		t.Fatal(err)
	}
	second := tr.MemoStats()
	if got, want := second.Misses-first.Misses, first.Misses; got != want {
		t.Errorf("second translation recorded %d misses, want %d (memo must not outlive a translation)",
			got, want)
	}
}
