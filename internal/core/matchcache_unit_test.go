package core

import (
	"testing"

	"repro/internal/qtree"
	"repro/internal/rules"
)

func testSpec(t *testing.T, name string) *rules.Spec {
	t.Helper()
	rs := rules.MustParseRules(`
rule R0 {
  match [a = V];
  where Value(V);
  emit exact [t = V];
}`)
	spec, err := rules.NewSpec(name, rules.NewTarget(name, rules.Capability{Attr: "t", Op: qtree.OpEq}),
		rules.NewRegistry(), rs...)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestMatchCacheLRUEviction pins the small-cache semantics: capacities below
// the shard threshold collapse to one shard, so the bound is exact and
// eviction strictly follows recency.
func TestMatchCacheLRUEviction(t *testing.T) {
	spec := testSpec(t, "s1")
	c := NewMatchCache(2)
	if got := len(c.shards); got != 1 {
		t.Fatalf("capacity 2 built %d shards, want 1", got)
	}
	c.put(spec, "k1", nil, 1)
	c.put(spec, "k2", nil, 2)
	if _, ok := c.get(spec, "k1"); !ok { // promote k1: k2 is now oldest
		t.Fatal("k1 missing before capacity was reached")
	}
	c.put(spec, "k3", nil, 3)
	if _, ok := c.get(spec, "k2"); ok {
		t.Error("k2 survived eviction; want LRU entry dropped")
	}
	if _, ok := c.get(spec, "k1"); !ok {
		t.Error("k1 evicted despite being recently used")
	}
	if e, ok := c.get(spec, "k3"); !ok || e.probed != 3 {
		t.Errorf("k3 lookup = (%+v, %v), want probed=3 hit", e, ok)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("stats = %+v, want 1 eviction and 2 entries", st)
	}
	if st.Hits != 3 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 3 hits and 1 miss", st)
	}
	if got, want := st.HitRate(), 0.75; got != want {
		t.Errorf("HitRate() = %v, want %v", got, want)
	}
}

// TestMatchCacheSpecKeying checks entries are scoped to the spec identity:
// the same constraint-set key under two specs occupies two entries, and
// Invalidate drops exactly one spec's entries.
func TestMatchCacheSpecKeying(t *testing.T) {
	sa, sb := testSpec(t, "sa"), testSpec(t, "sb")
	c := NewMatchCache(8)
	c.put(sa, "k", nil, 1)
	c.put(sb, "k", nil, 2)
	c.put(sb, "k2", nil, 3)
	if c.Len() != 3 {
		t.Fatalf("Len() = %d, want 3 (same key under two specs must not collide)", c.Len())
	}
	if e, _ := c.get(sa, "k"); e.probed != 1 {
		t.Errorf("sa entry probed = %d, want 1", e.probed)
	}
	if e, _ := c.get(sb, "k"); e.probed != 2 {
		t.Errorf("sb entry probed = %d, want 2", e.probed)
	}
	if got := c.Invalidate(sb); got != 2 {
		t.Errorf("Invalidate(sb) = %d, want 2", got)
	}
	if _, ok := c.get(sb, "k"); ok {
		t.Error("sb entry survived Invalidate")
	}
	if _, ok := c.get(sa, "k"); !ok {
		t.Error("Invalidate(sb) dropped sa's entry")
	}
	if c.Len() != 1 {
		t.Errorf("Len() = %d after invalidation, want 1", c.Len())
	}
}

// TestMatchCacheSharding checks large caches distribute capacity across all
// shards without losing any of it.
func TestMatchCacheSharding(t *testing.T) {
	c := NewMatchCache(100)
	if got := len(c.shards); got != matchCacheShards {
		t.Fatalf("capacity 100 built %d shards, want %d", got, matchCacheShards)
	}
	total := 0
	for i := range c.shards {
		total += c.shards[i].cap
	}
	if total != 100 {
		t.Errorf("shard capacities sum to %d, want 100", total)
	}
	if def := NewMatchCache(0); len(def.shards) != matchCacheShards {
		t.Errorf("NewMatchCache(0) built %d shards, want %d", len(def.shards), matchCacheShards)
	}
}
