package core

import (
	"repro/internal/obs"
	"repro/internal/qtree"
)

// TDQM is Algorithm TDQM (Figure 8): top-down query mapping. It traverses
// the query tree, separating disjuncts freely (Case-1), partitioning the
// conjuncts of complex conjunctions into safe blocks with Algorithm PSafe
// and locally Disjunctivizing only the inseparable blocks (Case-2), and
// mapping simple conjunctions with Algorithm SCM (Case-3).
//
// Given a sound and complete specification, the output is the minimal
// subsuming mapping of q (Theorem 2), and — unlike Algorithm DNF — the
// query structure is rewritten only where constraint dependencies demand it,
// so the output stays compact (Section 8).
func (t *Translator) TDQM(q *qtree.Node) (*qtree.Node, error) {
	defer t.begin(true)()
	q = q.Normalize()
	if t.tracer != nil {
		cs := q.Constraints()
		t.traceEnter(cs)
		defer t.traceExit()
		sp := t.tracer.Start(obs.KindTDQM, q.String())
		defer t.tracer.End()
		sp.Set(obs.CtrQuerySize, int64(q.Size()))
		sp.Set(obs.CtrEssentialDNFSize, t.essentialSize(cs))
	}
	if t.planOK() {
		key := planKeyTDQM(q)
		if e := t.planGet(key); e != nil {
			t.planApply(e)
			return e.node, nil
		}
		rec := t.planRecord()
		out, err := t.tdqmBody(q)
		if err != nil {
			rec.abort(t)
			return nil, err
		}
		rec.store(t, key, &planEntry{node: out})
		return out, nil
	}
	return t.tdqmBody(q)
}

// tdqmBody is the plan-independent TDQM case analysis over a normalized
// query.
func (t *Translator) tdqmBody(q *qtree.Node) (*qtree.Node, error) {
	switch {
	case q.Kind == qtree.KindOr:
		// Case-1: disjuncts are always separable — map them concurrently
		// when a worker pool is configured.
		if t.parallelEligible(len(q.Kids)) {
			kids, err := t.mapBranches(q.Kids, (*Translator).TDQM)
			if err != nil {
				return nil, err
			}
			return qtree.Or(kids...).Normalize(), nil
		}
		kids := make([]*qtree.Node, len(q.Kids))
		for i, d := range q.Kids {
			s, err := t.TDQM(d)
			if err != nil {
				return nil, err
			}
			kids[i] = s
		}
		return qtree.Or(kids...).Normalize(), nil

	case q.IsSimpleConjunction():
		// Case-3: base case — Algorithm SCM.
		res, err := t.SCM(q.SimpleConjuncts())
		if err != nil {
			return nil, err
		}
		return res.Query, nil

	default: // ∧-node with at least one non-leaf child
		// Case-2: partition the conjuncts into safe blocks, rewrite each
		// multi-conjunct block into disjunctive form, and recurse.
		p, err := t.PSafe(q.Kids)
		if err != nil {
			return nil, err
		}
		t.tracePartition(q.Kids, p)
		kids := make([]*qtree.Node, len(p.Blocks))
		for i, blk := range p.Blocks {
			conj := make([]*qtree.Node, len(blk))
			for j, x := range blk {
				conj[j] = q.Kids[x]
			}
			var b *qtree.Node
			if len(conj) == 1 {
				b = conj[0]
			} else {
				t.Stats.Disjunctivizations++
				t.metrics.Disjunctivization(t.Spec.Name)
				if f := t.frameTop(); f != nil {
					f.disjunctivizations++
				}
				b = qtree.Disjunctivize(conj)
				t.traceRewrite(conj, b)
			}
			s, err := t.TDQM(b)
			if err != nil {
				return nil, err
			}
			kids[i] = s
		}
		return qtree.And(kids...).Normalize(), nil
	}
}
