package core

import (
	"repro/internal/obs"
	"repro/internal/qtree"
	"repro/internal/rules"
)

// DNFExpr is a disjunction of simple conjunctions, each represented as a
// constraint set. An empty set is the ε placeholder ("don't care") of
// Procedure EDNF: it marks a disjunct whose constraints were nullified but
// whose existence still matters when forming product terms.
type DNFExpr []*qtree.ConstraintSet

// Epsilon is the DNF expression consisting of a single ε disjunct.
func Epsilon() DNFExpr { return DNFExpr{qtree.NewConstraintSet()} }

// String renders the expression for diagnostics, using ε for empty sets.
func (e DNFExpr) String() string {
	s := ""
	for i, d := range e {
		if i > 0 {
			s += " v "
		}
		if d.IsEmpty() {
			s += "eps"
		} else {
			s += d.String()
		}
	}
	return s
}

// PotentialMatchings computes M_p = M(C(Q), K): the matchings of the rules
// against the *set* of all constraints of q, ignoring query structure
// (Section 7.1.3). The result is deduplicated by constraint set.
//
// Because rule conditions inspect only the constraints they bind, a matching
// found here is a matching of any subquery containing its constraints, and
// conversely every subquery matching appears here — so the potential
// matchings can be reused for every safety check and SCM call over q.
func (t *Translator) PotentialMatchings(q *qtree.Node) ([]*qtree.ConstraintSet, error) {
	ms, err := t.matchings(q.Constraints())
	if err != nil {
		return nil, err
	}
	return matchingSets(ms), nil
}

// matchingSets deduplicates matchings to their constraint sets.
func matchingSets(ms []*rules.Matching) []*qtree.ConstraintSet {
	seen := make(map[string]bool, len(ms))
	var out []*qtree.ConstraintSet
	for _, m := range ms {
		id := m.Set.ID()
		if !seen[id] {
			seen[id] = true
			out = append(out, m.Set)
		}
	}
	return out
}

// EDNF is Procedure EDNF (Figure 10): it computes the essential DNF
// D_e(q) of query q with respect to the potential matchings mp. Constraints
// that cannot participate in any potential cross-matching are nullified to
// ε, which keeps the safety checks of Algorithm PSafe proportional to the
// degree of constraint dependency rather than to query size (Section 8).
func (t *Translator) EDNF(q *qtree.Node, mp []*qtree.ConstraintSet) DNFExpr {
	var sp *obs.Span
	if t.tracer != nil {
		sp = t.tracer.Start(obs.KindEDNF, q.String())
		defer t.tracer.End()
		sp.Set(obs.CtrEssentialDNFSize, t.essentialSize(q.Constraints()))
	}
	if t.planOK() {
		key := planKeyEDNF(q, mp)
		if e := t.planGet(key); e != nil {
			t.planApply(e)
			return e.expr
		}
		rec := t.planRecord()
		d := t.ednfStep(q.Normalize(), mp)
		rec.store(t, key, &planEntry{expr: d})
		sp.Set(obs.CtrDisjuncts, int64(len(d)))
		return d
	}
	d := t.ednfStep(q.Normalize(), mp)
	sp.Set(obs.CtrDisjuncts, int64(len(d)))
	return d
}

// ednfStep is subroutine ednf: post-order traversal computing D(q) from the
// children's D_e, then simplifying to D_e(q).
func (t *Translator) ednfStep(q *qtree.Node, mp []*qtree.ConstraintSet) DNFExpr {
	var d DNFExpr
	switch q.Kind {
	case qtree.KindTrue:
		d = Epsilon()
	case qtree.KindLeaf:
		d = DNFExpr{qtree.NewConstraintSet(q.C)}
	case qtree.KindOr:
		// Case-1: D(Q) is the concatenation of the children's EDNF.
		for _, k := range q.Kids {
			d = append(d, t.ednfStep(k, mp)...)
		}
	case qtree.KindAnd:
		// Case-2: D(Q) = Disjunctivize of the children's EDNF.
		exprs := make([]DNFExpr, len(q.Kids))
		for i, k := range q.Kids {
			exprs[i] = t.ednfStep(k, mp)
		}
		d = productExpr(exprs)
		t.Stats.ProductTerms += len(d)
	}
	if t.fullDNFSafety {
		return dedupeExpr(d) // ablation: keep the full DNF (Section 7.1.3)
	}
	return t.simplifyEDNF(d, mp)
}

// dedupeExpr removes duplicate disjuncts without nullification.
func dedupeExpr(d DNFExpr) DNFExpr {
	seen := make(map[string]bool, len(d))
	out := make(DNFExpr, 0, len(d))
	for _, disj := range d {
		id := disj.ID()
		if !seen[id] {
			seen[id] = true
			out = append(out, disj)
		}
	}
	return out
}

// productExpr forms the cross product of DNF expressions, unioning the
// constraint sets of each combination.
func productExpr(exprs []DNFExpr) DNFExpr {
	terms := DNFExpr{qtree.NewConstraintSet()}
	for _, e := range exprs {
		next := make(DNFExpr, 0, len(terms)*len(e))
		for _, a := range terms {
			for _, b := range e {
				next = append(next, a.Union(b))
			}
		}
		terms = next
	}
	return terms
}

// simplifyEDNF implements step (2) of Procedure EDNF: nullify useless
// disjuncts (lines 17–22) and merge duplicates and ε's (lines 23–24).
//
// A disjunct D̂ is nullified when every potential matching m relevant to it
// (m ∩ C(D̂) ≠ ∅) is (a) wholly contained in D̂, and (b) either a single
// constraint or witnessed by some other disjunct D̂' disjoint from m — the
// condition ensuring the potential cross-matching is still discoverable
// through the other product terms, so no false positives arise.
// Nullification decisions are taken simultaneously against the incoming
// disjunct list, which keeps the procedure deterministic; a disjunct
// nullified in the same pass still counts as a disjoint witness, exactly as
// the ε's do in the paper's illustration.
//
// The nullification flags live in a translator-owned scratch buffer: ednf's
// post-order recursion finishes each child's simplification before the
// parent's begins, so the calls never overlap and one buffer serves the
// whole translation.
func (t *Translator) simplifyEDNF(d DNFExpr, mp []*qtree.ConstraintSet) DNFExpr {
	if cap(t.scratch.nullify) < len(d) {
		t.scratch.nullify = make([]bool, len(d))
	}
	nullify := t.scratch.nullify[:len(d)]
	for i := range nullify {
		nullify[i] = false
	}
	for i, disj := range d {
		if disj.IsEmpty() {
			continue
		}
		ok := true
		for _, m := range mp {
			if !m.Intersects(disj) {
				continue // irrelevant to this disjunct
			}
			if !m.SubsetOf(disj) {
				ok = false // m may combine with outside constraints
				break
			}
			if m.Len() == 1 {
				continue
			}
			witness := false
			for j, other := range d {
				if j != i && !m.Intersects(other) {
					witness = true
					break
				}
			}
			if !witness {
				ok = false
				break
			}
		}
		nullify[i] = ok
	}
	out := make(DNFExpr, 0, len(d))
	seen := make(map[string]bool, len(d))
	for i, disj := range d {
		if nullify[i] {
			disj = qtree.NewConstraintSet() // ε
		}
		id := disj.ID()
		if !seen[id] {
			seen[id] = true
			out = append(out, disj)
		}
	}
	return out
}
