package core

import (
	"context"

	"repro/internal/qtree"
)

// TranslateWithFilter maps q and also returns the filter query F the
// mediator must apply to the source results so that Q = F ∧ S(Q) (Eq. 3).
// It delegates to Do with a background context; prefer Do when a context
// or per-call Stats are wanted.
func (t *Translator) TranslateWithFilter(q *qtree.Node, algorithm string) (mapped, filter *qtree.Node, err error) {
	r, err := t.Do(context.Background(), q, algorithm)
	if err != nil {
		return nil, nil, err
	}
	return r.Mapped, r.Filter, nil
}

// translateWithFilter is the shared mapped+filter path behind Do,
// TranslateWithFilter, and TranslateBatch.
//
// For a simple conjunction the residue is tight, as in Example 3: only the
// constraints not exactly realized at the target remain in F. For complex
// queries the library returns True when the whole translation was exact and
// the original query otherwise — re-applying Q is always a correct filter
// (Example 1 does exactly that); per-branch filter minimization is the
// subject of the paper's references [15, 16] and out of scope (DESIGN.md).
func (t *Translator) translateWithFilter(q *qtree.Node, algorithm string) (mapped, filter *qtree.Node, err error) {
	q = q.Normalize()
	if q.IsSimpleConjunction() {
		res, err := t.SCM(q.SimpleConjuncts())
		if err != nil {
			return nil, nil, err
		}
		return res.Query, res.Residue, nil
	}
	t.residueClean = true
	mapped, err = t.Translate(q, algorithm)
	if err != nil {
		return nil, nil, err
	}
	if t.residueClean {
		return mapped, qtree.True(), nil
	}
	return mapped, q.Clone(), nil
}
