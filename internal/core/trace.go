package core

import (
	"fmt"
	"strings"

	"repro/internal/qtree"
	"repro/internal/rules"
)

// TraceEventKind classifies trace events.
type TraceEventKind int

const (
	// TraceSCM records an Algorithm SCM invocation.
	TraceSCM TraceEventKind = iota
	// TraceMatchKept records a matching retained after suppression.
	TraceMatchKept
	// TraceMatchSuppressed records a suppressed submatching.
	TraceMatchSuppressed
	// TracePartition records an Algorithm PSafe partition.
	TracePartition
	// TraceRewrite records a Disjunctivize structure rewriting.
	TraceRewrite
)

func (k TraceEventKind) String() string {
	switch k {
	case TraceSCM:
		return "scm"
	case TraceMatchKept:
		return "match"
	case TraceMatchSuppressed:
		return "suppressed"
	case TracePartition:
		return "partition"
	case TraceRewrite:
		return "rewrite"
	default:
		return fmt.Sprintf("TraceEventKind(%d)", int(k))
	}
}

// TraceEvent is one step in a translation derivation.
type TraceEvent struct {
	Kind   TraceEventKind
	Detail string
}

// Trace collects the derivation steps of a translation, for explanation
// output (qmap -explain) and debugging of rule sets.
type Trace struct {
	Events []TraceEvent
}

// add appends an event.
func (t *Trace) add(kind TraceEventKind, format string, args ...any) {
	t.Events = append(t.Events, TraceEvent{Kind: kind, Detail: fmt.Sprintf(format, args...)})
}

// String renders the trace, one step per line.
func (t *Trace) String() string {
	var b strings.Builder
	for _, e := range t.Events {
		fmt.Fprintf(&b, "%-11s %s\n", e.Kind.String()+":", e.Detail)
	}
	return b.String()
}

// SetTrace attaches (or detaches, with nil) a trace collector to the
// translator. Tracing is off by default; it does not change results.
func (t *Translator) SetTrace(tr *Trace) { t.trace = tr }

// traceSCM records an SCM invocation with its retained and suppressed
// matchings.
func (t *Translator) traceSCM(cs []*qtree.Constraint, all, kept []*rules.Matching) {
	if t.trace == nil {
		return
	}
	conj := qtree.NewConstraintSet(cs...).Conjunction()
	t.trace.add(TraceSCM, "translate simple conjunction %s", conj)
	keptIDs := make(map[string]bool, len(kept))
	for _, m := range kept {
		keptIDs[m.ID()] = true
		t.trace.add(TraceMatchKept, "rule %s matched %s -> %s", m.Rule.Name, m.Set, m.Emission)
	}
	for _, m := range all {
		if !keptIDs[m.ID()] {
			t.trace.add(TraceMatchSuppressed, "rule %s matching %s (submatching of a larger one)",
				m.Rule.Name, m.Set)
		}
	}
}

// tracePartition records a PSafe partition.
func (t *Translator) tracePartition(conjuncts []*qtree.Node, p *Partition) {
	if t.trace == nil {
		return
	}
	parts := make([]string, len(conjuncts))
	for i, c := range conjuncts {
		parts[i] = c.String()
	}
	t.trace.add(TracePartition, "conjuncts [%s] partitioned %s (%d cross-matchings)",
		strings.Join(parts, " | "), p, p.CrossMatchings)
}

// traceRewrite records a local Disjunctivize.
func (t *Translator) traceRewrite(block []*qtree.Node, result *qtree.Node) {
	if t.trace == nil {
		return
	}
	parts := make([]string, len(block))
	for i, c := range block {
		parts[i] = c.String()
	}
	t.trace.add(TraceRewrite, "disjunctivize block [%s] -> %s", strings.Join(parts, " | "), result)
}
