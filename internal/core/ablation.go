package core

// Deliberately weakened algorithm variants for ablation studies: each
// removes one design element the paper argues for, so the benchmarks can
// quantify that element's contribution (see EXPERIMENTS.md, E13).

import (
	"repro/internal/qtree"
)

// FullDNFSafety, when set, makes the safety machinery use full DNF instead
// of essential DNF: Procedure EDNF's nullification and simplification steps
// are skipped, so Algorithm PSafe scans every product term of the
// conjuncts' complete DNF — the "brute-force" approach of Section 7.1.3
// whose cost is ~2^{nk} regardless of the dependency degree.
//
// The partitions produced are identical (Lemma 3); only the cost differs.
// The flag lives on the Translator so a whole translation can be run in
// ablated mode.
func (t *Translator) SetFullDNFSafety(on bool) { t.fullDNFSafety = on }

// SCMNoSuppression is Algorithm SCM without step 2 (submatching
// suppression): every matching's emission is conjoined, including the
// redundant ones subsumed by larger matchings. The output is still a
// correct subsuming mapping (Lemma 1 makes the extra conjuncts logically
// redundant) but is larger, and with partial-mapping rules like R7 it
// carries superfluous weaker constraints.
func (t *Translator) SCMNoSuppression(cs []*qtree.Constraint) (*qtree.Node, error) {
	t.Stats.SCMCalls++
	ms, err := t.matchings(cs)
	if err != nil {
		return nil, err
	}
	kids := make([]*qtree.Node, 0, len(ms))
	for _, m := range ms {
		kids = append(kids, m.Emission)
	}
	return qtree.And(kids...).Normalize(), nil
}

// TDQMNoPartition is Algorithm TDQM without Algorithm PSafe: every complex
// conjunction is treated as one inseparable block and Disjunctivized
// wholesale. The result is still the minimal subsuming mapping, but the
// structure conversion is global-per-level rather than local-per-block, so
// cost and output size approach the DNF baseline on queries whose
// conjunctions are mostly separable.
func (t *Translator) TDQMNoPartition(q *qtree.Node) (*qtree.Node, error) {
	defer t.begin(true)()
	q = q.Normalize()
	switch {
	case q.Kind == qtree.KindOr:
		kids := make([]*qtree.Node, len(q.Kids))
		for i, d := range q.Kids {
			s, err := t.TDQMNoPartition(d)
			if err != nil {
				return nil, err
			}
			kids[i] = s
		}
		return qtree.Or(kids...).Normalize(), nil
	case q.IsSimpleConjunction():
		res, err := t.SCM(q.SimpleConjuncts())
		if err != nil {
			return nil, err
		}
		return res.Query, nil
	default:
		t.Stats.Disjunctivizations++
		return t.TDQMNoPartition(qtree.Disjunctivize(q.Kids))
	}
}
