package core

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/qtree"
	"repro/internal/rules"
)

// matchMemo is the translation-scoped matching cache: it maps a canonical
// constraint-set key to the matchings (and the rule-probe count) the spec
// produced for that set. EDNF, PSafe, SCM, and TDQM's recursive descent all
// re-derive matchings for overlapping constraint subsets; within one
// translation those results are identical, so the first derivation is
// recorded and replayed.
//
// Lifetime and invalidation: a memo lives for exactly one structural
// translation (TDQM/DNF/CNF entry; see Translator.begin) and is dropped when
// the entry call returns — there is nothing to invalidate, because a spec's
// rules are immutable and the memo never outlives the translation that
// created it. Cross-translation caching is the serve layer's job
// (internal/serve's translation cache), which caches whole translations
// keyed by canonical query.
//
// The map is guarded by a mutex because parallel branch mapping shares the
// parent's memo across branch goroutines.
type matchMemo struct {
	mu sync.RWMutex
	m  map[string]memoEntry
}

type memoEntry struct {
	ms     []*rules.Matching
	probed int // rules actually probed to produce ms
}

func newMatchMemo() *matchMemo {
	return &matchMemo{m: make(map[string]memoEntry)}
}

func (mm *matchMemo) get(key string) (memoEntry, bool) {
	mm.mu.RLock()
	e, ok := mm.m[key]
	mm.mu.RUnlock()
	return e, ok
}

func (mm *matchMemo) put(key string, ms []*rules.Matching, probed int) {
	mm.mu.Lock()
	mm.m[key] = memoEntry{ms: ms, probed: probed}
	mm.mu.Unlock()
}

// memoKey is the canonical constraint-set key: sorted constraint keys,
// joined. It matches qtree.ConstraintSet.ID for the same constraints.
func memoKey(cs []*qtree.Constraint) string {
	keys := make([]string, len(cs))
	for i, c := range cs {
		keys[i] = c.Key()
	}
	sort.Strings(keys)
	return strings.Join(keys, ";")
}

// MemoStats reports translation-memo effectiveness. It is kept out of Stats
// so that memo-on and memo-off translations produce identical Stats (the
// memo compensates the work counters on every hit).
type MemoStats struct {
	Hits   int
	Misses int
}

// MemoStats returns the memo hit/miss counts accumulated so far. Under
// parallel branch mapping the split is timing-dependent (two branches racing
// on the same key may both miss); the counts are for reporting, not for
// correctness assertions.
func (t *Translator) MemoStats() MemoStats { return t.memoStats }

// begin marks entry into a translator algorithm. Structural entry points
// (TDQM, DNF, CNF) create the translation-scoped memo at the outermost call;
// the returned func unwinds the depth and drops an owned memo when the
// outermost call returns. Non-structural entries (SCM, PSafe) only
// participate in an enclosing scope's memo.
func (t *Translator) begin(structural bool) func() {
	t.depth++
	if structural && t.memo == nil && !t.memoOff {
		t.memo = newMatchMemo()
		t.ownMemo = true
	}
	return func() {
		t.depth--
		if t.depth == 0 && t.ownMemo {
			t.memo = nil
			t.ownMemo = false
		}
	}
}
