package core

import (
	"repro/internal/obs"
	"repro/internal/qtree"
)

// DNFMap is Algorithm DNF (Figure 6): it converts q into disjunctive normal
// form, maps every disjunct independently with Algorithm SCM (disjuncts are
// always separable), and returns the disjunction of the mappings.
//
// The result is the minimal subsuming mapping, but the conversion is
// exponential in general and the output is typically far less compact than
// Algorithm TDQM's (Section 8) — this is the paper's baseline.
func (t *Translator) DNFMap(q *qtree.Node) (*qtree.Node, error) {
	defer t.begin(true)()
	var sp *obs.Span
	if t.tracer != nil {
		cs := q.Constraints()
		t.traceEnter(cs)
		defer t.traceExit()
		sp = t.tracer.Start(obs.KindDNF, q.String())
		defer t.tracer.End()
		sp.Set(obs.CtrQuerySize, int64(q.Size()))
		sp.Set(obs.CtrEssentialDNFSize, t.essentialSize(cs))
	}
	dnf := qtree.ToDNF(q)
	ds := dnf.Disjuncts()
	t.Stats.DNFDisjuncts += len(ds)
	sp.Set(obs.CtrDisjuncts, int64(len(ds)))
	if t.parallelEligible(len(ds)) {
		kids, err := t.mapBranches(ds, func(sub *Translator, d *qtree.Node) (*qtree.Node, error) {
			res, err := sub.SCM(d.SimpleConjuncts())
			if err != nil {
				return nil, err
			}
			return res.Query, nil
		})
		if err != nil {
			return nil, err
		}
		return qtree.Or(kids...).Normalize(), nil
	}
	kids := make([]*qtree.Node, 0, len(ds))
	for _, d := range ds {
		res, err := t.SCM(d.SimpleConjuncts())
		if err != nil {
			return nil, err
		}
		kids = append(kids, res.Query)
	}
	return qtree.Or(kids...).Normalize(), nil
}
