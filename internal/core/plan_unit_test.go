package core

import (
	"testing"
)

// TestPlanLRUEviction pins the small-plan semantics: capacities below the
// shard threshold collapse to one shard, so the bound is exact and eviction
// strictly follows recency.
func TestPlanLRUEviction(t *testing.T) {
	spec := testSpec(t, "p1")
	p := NewPlan(2)
	if got := len(p.shards); got != 1 {
		t.Fatalf("capacity 2 built %d shards, want 1", got)
	}
	p.put(spec, "k1", &planEntry{})
	p.put(spec, "k2", &planEntry{})
	if _, ok := p.get(spec, "k1"); !ok { // promote k1: k2 is now oldest
		t.Fatal("k1 missing before capacity was reached")
	}
	p.put(spec, "k3", &planEntry{})
	if _, ok := p.get(spec, "k2"); ok {
		t.Error("k2 survived eviction; want LRU entry dropped")
	}
	if _, ok := p.get(spec, "k1"); !ok {
		t.Error("k1 evicted despite being recently used")
	}
	if _, ok := p.get(spec, "k3"); !ok {
		t.Error("k3 missing right after insertion")
	}
	st := p.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("stats = %+v, want 1 eviction and 2 entries", st)
	}
	if st.Hits != 3 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 3 hits and 1 miss", st)
	}
	if got, want := st.HitRate(), 0.75; got != want {
		t.Errorf("HitRate() = %v, want %v", got, want)
	}
}

// TestPlanSpecKeying checks entries are scoped to the spec identity: the
// same shape key under two specs occupies two entries, and Invalidate drops
// exactly one spec's entries.
func TestPlanSpecKeying(t *testing.T) {
	sa, sb := testSpec(t, "pa"), testSpec(t, "pb")
	p := NewPlan(8)
	ea, eb := &planEntry{}, &planEntry{}
	p.put(sa, "k", ea)
	p.put(sb, "k", eb)
	p.put(sb, "k2", &planEntry{})
	if p.Len() != 3 {
		t.Fatalf("Len() = %d, want 3 (same key under two specs must not collide)", p.Len())
	}
	if e, _ := p.get(sa, "k"); e != ea {
		t.Error("sa lookup returned the wrong entry")
	}
	if e, _ := p.get(sb, "k"); e != eb {
		t.Error("sb lookup returned the wrong entry")
	}
	if got := p.Invalidate(sb); got != 2 {
		t.Errorf("Invalidate(sb) = %d, want 2", got)
	}
	if _, ok := p.get(sb, "k"); ok {
		t.Error("sb entry survived Invalidate")
	}
	if _, ok := p.get(sa, "k"); !ok {
		t.Error("Invalidate(sb) dropped sa's entry")
	}
	if p.Len() != 1 {
		t.Errorf("Len() = %d after invalidation, want 1", p.Len())
	}
}

// TestPlanSharding checks large plans distribute capacity across all shards
// without losing any of it.
func TestPlanSharding(t *testing.T) {
	p := NewPlan(100)
	if got := len(p.shards); got != planShards {
		t.Fatalf("capacity 100 built %d shards, want %d", got, planShards)
	}
	total := 0
	for i := range p.shards {
		total += p.shards[i].cap
	}
	if total != 100 {
		t.Errorf("shard capacities sum to %d, want 100", total)
	}
	if def := NewPlan(0); len(def.shards) != planShards {
		t.Errorf("NewPlan(0) built %d shards, want %d", len(def.shards), planShards)
	}
}

// TestPlanBypassCountsMiss pins the bypass accounting: a traced lookup that
// skips the plan still counts as a miss, so PlanStats.Misses covers every
// lookup that ran the algorithm.
func TestPlanBypassCountsMiss(t *testing.T) {
	p := NewPlan(4)
	p.noteBypass()
	if st := p.Stats(); st.Misses != 1 || st.Hits != 0 {
		t.Errorf("stats after bypass = %+v, want exactly 1 miss", st)
	}
}
