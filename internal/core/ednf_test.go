package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/qparse"
	"repro/internal/qtree"
	"repro/internal/sources"
)

// qbookConjuncts parses Q_book (Figure 7) and returns its three conjuncts
// Č1 = (fl ff ∨ fk1 ∨ fk2), Č2 = fy, Č3 = (fm1 ∨ fm2).
func qbookConjuncts(t *testing.T) []*qtree.Node {
	t.Helper()
	q := qparse.MustParse(
		`(([ln = "Smith"] and [fn = "John"]) or [kwd contains web] or [kwd contains java]) ` +
			`and [pyear = 1997] and ([pmonth = 5] or [pmonth = 6])`).Normalize()
	if q.Kind != qtree.KindAnd || len(q.Kids) != 3 {
		t.Fatalf("unexpected shape: %s", q)
	}
	return q.Kids
}

// TestExample11EDNF reproduces the essential-DNF annotations of Figure 7 /
// Example 11: De(Č1) = ε, De(Č2) = fy, De(Č3) = fm1 ∨ fm2.
func TestExample11EDNF(t *testing.T) {
	tr := core.NewTranslator(sources.NewAmazon().Spec)
	conj := qbookConjuncts(t)

	all := qtree.AndOf(conj...)
	mp, err := tr.PotentialMatchings(all)
	if err != nil {
		t.Fatal(err)
	}

	de1 := tr.EDNF(conj[0], mp)
	if len(de1) != 1 || !de1[0].IsEmpty() {
		t.Errorf("De(Č1) = %s, want ε", de1)
	}

	de2 := tr.EDNF(conj[1], mp)
	if len(de2) != 1 || de2[0].Len() != 1 {
		t.Errorf("De(Č2) = %s, want {fy}", de2)
	}

	de3 := tr.EDNF(conj[2], mp)
	if len(de3) != 2 {
		t.Errorf("De(Č3) = %s, want fm1 ∨ fm2", de3)
	}
	for _, d := range de3 {
		if d.Len() != 1 {
			t.Errorf("De(Č3) disjunct %s should be a single pmonth constraint", d)
		}
	}
}

// TestExample11PotentialMatchings checks M_p for Q_book: the potential
// matchings include the cross pairs {fy,fm1}, {fy,fm2} and the name pair
// {fl,ff} alongside the singleton matchings.
func TestExample11PotentialMatchings(t *testing.T) {
	tr := core.NewTranslator(sources.NewAmazon().Spec)
	conj := qbookConjuncts(t)
	mp, err := tr.PotentialMatchings(qtree.AndOf(conj...))
	if err != nil {
		t.Fatal(err)
	}
	bySize := map[int]int{}
	for _, m := range mp {
		bySize[m.Len()]++
	}
	// Pairs: {fl,ff} (R2), {fy,fm1}, {fy,fm2} (R6).
	if bySize[2] != 3 {
		for _, m := range mp {
			t.Logf("potential: %s", m)
		}
		t.Errorf("got %d pair matchings, want 3", bySize[2])
	}
	// Singletons: {fl} (R3), {fy} (R7), {fk1}, {fk2} (R8).
	if bySize[1] != 4 {
		for _, m := range mp {
			t.Logf("potential: %s", m)
		}
		t.Errorf("got %d singleton matchings, want 4", bySize[1])
	}
}

// TestEDNFLeafNullification checks the false-positive guard discussed in
// Section 7.1.3: in (fl ff)(fl)(ff) the pair {fl, ff} lies wholly inside the
// first conjunct, so the conjunction is safe — deleting fl ff prematurely
// would fabricate a cross-matching.
func TestEDNFLeafNullification(t *testing.T) {
	tr := core.NewTranslator(sources.NewAmazon().Spec)
	c1 := qparse.MustParse(`[ln = "Smith"] and [fn = "John"]`)
	c2 := qparse.MustParse(`[ln = "Smith"]`)
	c3 := qparse.MustParse(`[fn = "John"]`)

	p, err := tr.PSafe([]*qtree.Node{c1, c2, c3})
	if err != nil {
		t.Fatal(err)
	}
	if p.CrossMatchings != 0 {
		t.Errorf("found %d cross-matchings in (flff)(fl)(ff); want 0 — {fl,ff} is inside Č1", p.CrossMatchings)
	}
	if !p.Separable {
		t.Errorf("(flff)(fl)(ff) should be separable, got %s", p)
	}
}

// TestEDNFNoDependencies checks the Section 8 claim that with no dependent
// constraints every EDNF collapses to ε and the safety check examines a
// single product term.
func TestEDNFNoDependencies(t *testing.T) {
	tr := core.NewTranslator(sources.NewAmazon().Spec)
	// publisher / id-no / category constraints have only singleton
	// matchings at Amazon.
	q := qparse.MustParse(`([publisher = "oreilly"] or [publisher = "mit-press"]) and ` +
		`([id-no = "111111111A"] or [id-no = "222222222B"]) and [category = "D.3"]`).Normalize()
	p, err := tr.PSafe(q.Kids)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Separable {
		t.Errorf("independent conjunction not separable: %s", p)
	}
	// All EDNF terms are ε, so exactly one product term is examined by the
	// top-level PSafe (plus the per-node products inside EDNF computation).
	if tr.Stats.ProductTerms > 4 {
		t.Errorf("safety check examined %d product terms; expected ≤ 4 with all-ε EDNF", tr.Stats.ProductTerms)
	}
}

// TestLemma3Equivalence checks Lemma 3 on Q_book: Algorithm PSafe finds the
// same cross-matching count and partition whether it uses essential or full
// DNF. The full-DNF run is emulated with a spec-free scan: we compare the
// partition computed by PSafe (EDNF-based) with the partition derived from
// brute-force DNF safety analysis.
func TestLemma3Equivalence(t *testing.T) {
	tr := core.NewTranslator(sources.NewAmazon().Spec)
	conj := qbookConjuncts(t)

	p, err := tr.PSafe(conj)
	if err != nil {
		t.Fatal(err)
	}

	// Brute force: full DNF of the conjunction, Definition 5 per disjunct.
	brute := core.NewTranslator(sources.NewAmazon().Spec)
	cross := 0
	full := qtree.ToDNF(qtree.AndOf(conj...))
	for _, d := range full.Disjuncts() {
		// Partition the disjunct's constraints by originating conjunct.
		var parts []*qtree.ConstraintSet
		dset := qtree.SetOfConstraints(d)
		for _, c := range conj {
			inter := qtree.NewConstraintSet()
			for _, cc := range qtree.SetOfConstraints(c).Slice() {
				if dset.Has(cc) {
					inter.Add(cc)
				}
			}
			parts = append(parts, inter)
		}
		delta, err := brute.CrossMatchings(parts)
		if err != nil {
			t.Fatal(err)
		}
		cross += len(delta)
	}
	if (cross == 0) != (p.CrossMatchings == 0) {
		t.Errorf("EDNF-based safety (%d cross) disagrees with full-DNF safety (%d cross)",
			p.CrossMatchings, cross)
	}
}
