package core

import (
	"container/list"
	"hash/maphash"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/qtree"
	"repro/internal/rules"
)

// Plan is the dynamic half of translation-plan compilation: a spec-keyed,
// bounded LRU of translation fragments shared across translations,
// translators, and requests. Where the MatchCache reuses rule-matching
// results, the Plan reuses the *derived* work built on top of them — whole
// TDQM subtree translations, PSafe safe-block partitions, EDNF essential
// DNFs, and SCM results — looked up by exact query shape, so a repeated
// shape pays its EDNF/PSafe tree rewriting once per spec rather than once
// per request (the laconic-mappings precomputation idea, applied at the
// request tier).
//
// Every entry carries, besides its payload, the exact Stats delta and the
// cumulative-metrics activity of the run that recorded it. A hit replays
// both, so Stats and TranslationMetrics are indistinguishable plan-on vs
// plan-off — the same hit-compensation discipline the memo and MatchCache
// established, one level up. Under tracing, lookups are bypassed (every
// algorithm step must emit its spans) but completed fragments are still
// recorded: bypass-or-record keeps golden traces byte-identical while
// warming the plan for untraced traffic.
//
// Keying and invalidation: entries are keyed by (spec identity, kind-tagged
// shape key); shape keys are exact renderings, not canonical forms, so a
// hit replays precisely the translation the same input would have produced.
// Specs are immutable after first use (see rules.Spec), so entries only
// leave by LRU eviction or Invalidate. Payloads are shared between
// translations and must be treated as immutable.
//
// Concurrency: safe for concurrent use; the key space is sharded exactly
// like the MatchCache, with per-shard mutex+LRU and shared atomic counters.
type Plan struct {
	shards []planShard
	seed   maphash.Seed

	hits, misses, evictions atomic.Uint64
}

// DefaultPlanSize is the capacity used when NewPlan is given a non-positive
// capacity. Plan entries are heavier than match-cache entries (they hold
// whole translated subtrees), so the default is smaller.
const DefaultPlanSize = 2048

// planShards is the shard count for large plans; smaller plans collapse to
// one shard so the configured capacity is exact.
const planShards = 16

type planShard struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List                // front = most recently used
	items map[planKey]*list.Element // key → element whose Value is *planItem
}

// planKey scopes a kind-tagged shape key to one spec identity.
type planKey struct {
	spec *rules.Spec
	key  string
}

type planItem struct {
	key   planKey
	entry *planEntry
}

// planEntry is one cached translation fragment. Exactly one payload field
// is set, according to the key's kind tag: node for TDQM subtrees ("T|"),
// part for PSafe partitions ("P|"), expr for EDNF results ("E|"), scm for
// SCM results ("S|"). delta, clean, and agg replay the recording run's
// Stats, residue tracking, and cumulative metrics on every hit.
type planEntry struct {
	node *qtree.Node
	part *Partition
	expr DNFExpr
	scm  *SCMResult

	delta Stats
	clean bool
	agg   planAgg
}

// NewPlan returns a plan cache holding up to capacity entries
// (DefaultPlanSize if capacity <= 0).
func NewPlan(capacity int) *Plan {
	if capacity <= 0 {
		capacity = DefaultPlanSize
	}
	n := planShards
	if capacity < planShards {
		n = 1
	}
	p := &Plan{shards: make([]planShard, n), seed: maphash.MakeSeed()}
	for i := range p.shards {
		per := capacity / n
		if i < capacity%n {
			per++
		}
		if per < 1 {
			per = 1
		}
		p.shards[i] = planShard{
			cap:   per,
			ll:    list.New(),
			items: make(map[planKey]*list.Element, per),
		}
	}
	return p
}

func (p *Plan) shardFor(key string) *planShard {
	if len(p.shards) == 1 {
		return &p.shards[0]
	}
	return &p.shards[maphash.String(p.seed, key)%uint64(len(p.shards))]
}

// get returns the entry for (spec, key), promoting it and counting a hit; a
// failed lookup counts a miss.
func (p *Plan) get(spec *rules.Spec, key string) (*planEntry, bool) {
	sh := p.shardFor(key)
	sh.mu.Lock()
	el, ok := sh.items[planKey{spec: spec, key: key}]
	if !ok {
		sh.mu.Unlock()
		p.misses.Add(1)
		return nil, false
	}
	sh.ll.MoveToFront(el)
	e := el.Value.(*planItem).entry
	sh.mu.Unlock()
	p.hits.Add(1)
	return e, true
}

// put inserts (or refreshes) the entry for (spec, key), evicting least
// recently used entries beyond the shard's capacity.
func (p *Plan) put(spec *rules.Spec, key string, e *planEntry) {
	k := planKey{spec: spec, key: key}
	sh := p.shardFor(key)
	sh.mu.Lock()
	if el, ok := sh.items[k]; ok {
		sh.ll.MoveToFront(el)
		el.Value.(*planItem).entry = e
		sh.mu.Unlock()
		return
	}
	sh.items[k] = sh.ll.PushFront(&planItem{key: k, entry: e})
	evicted := 0
	for sh.ll.Len() > sh.cap {
		oldest := sh.ll.Back()
		sh.ll.Remove(oldest)
		delete(sh.items, oldest.Value.(*planItem).key)
		evicted++
	}
	sh.mu.Unlock()
	if evicted > 0 {
		p.evictions.Add(uint64(evicted))
	}
}

// noteBypass records a tracing-mode bypass as a miss, keeping hits+misses
// equal to the number of plan consultations.
func (p *Plan) noteBypass() { p.misses.Add(1) }

// Invalidate drops every entry recorded under spec and returns the number
// removed. Specs are immutable, so this is only needed when a spec is
// retired and its entries should stop occupying capacity.
func (p *Plan) Invalidate(spec *rules.Spec) int {
	removed := 0
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for key, el := range sh.items {
			if key.spec == spec {
				sh.ll.Remove(el)
				delete(sh.items, key)
				removed++
			}
		}
		sh.mu.Unlock()
	}
	return removed
}

// Len returns the number of resident entries across all shards.
func (p *Plan) Len() int {
	n := 0
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		n += sh.ll.Len()
		sh.mu.Unlock()
	}
	return n
}

// PlanStats is a point-in-time snapshot of a Plan's counters — the only
// observable difference between plan-on and plan-off translation.
type PlanStats struct {
	// Hits counts lookups served from the plan.
	Hits uint64 `json:"hits"`
	// Misses counts lookups that found no entry, including traced lookups
	// that bypassed the plan by design (bypass-or-record).
	Misses uint64 `json:"misses"`
	// Evictions counts entries evicted for capacity.
	Evictions uint64 `json:"evictions"`
	// Entries is the number of resident entries.
	Entries int `json:"entries"`
}

// Stats returns a snapshot of the plan's counters.
func (p *Plan) Stats() PlanStats {
	return PlanStats{
		Hits:      p.hits.Load(),
		Misses:    p.misses.Load(),
		Evictions: p.evictions.Load(),
		Entries:   p.Len(),
	}
}

// HitRate returns the fraction of lookups served from the plan.
func (s PlanStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// planAgg accumulates the cumulative-metrics activity of one recording
// scope: the counts TranslationMetrics would have been fed. A plan hit
// replays the aggregate (see replay), so qmap_* counters advance exactly as
// they would have on the interpretive path.
type planAgg struct {
	scmCalls           int
	psafeCalls         int
	productTerms       int
	disjunctivizations int
	fired              map[string]int // rule name → retained matchings
	suppressed         map[string]int // rule name → suppressed matchings
}

func (a *planAgg) addFired(rule string, n int) {
	if a.fired == nil {
		a.fired = make(map[string]int)
	}
	a.fired[rule] += n
}

func (a *planAgg) addSuppressed(rule string, n int) {
	if a.suppressed == nil {
		a.suppressed = make(map[string]int)
	}
	a.suppressed[rule] += n
}

// fold accumulates b into a — closing an inner recording scope folds its
// activity into the enclosing one, and merging a parallel branch folds the
// branch's activity into its parent's open scope.
func (a *planAgg) fold(b *planAgg) {
	a.scmCalls += b.scmCalls
	a.psafeCalls += b.psafeCalls
	a.productTerms += b.productTerms
	a.disjunctivizations += b.disjunctivizations
	for r, n := range b.fired {
		a.addFired(r, n)
	}
	for r, n := range b.suppressed {
		a.addSuppressed(r, n)
	}
}

// replay feeds the aggregate into m under the spec's name.
func (a *planAgg) replay(m *obs.TranslationMetrics, spec string) {
	if m == nil {
		return
	}
	m.SCMCallN(spec, a.scmCalls)
	m.PSafeCallN(spec, a.psafeCalls)
	m.ProductTerms(spec, a.productTerms)
	m.DisjunctivizationN(spec, a.disjunctivizations)
	for r, n := range a.fired {
		m.RuleFiredN(spec, r, n)
	}
	for r, n := range a.suppressed {
		m.RuleSuppressedN(spec, r, n)
	}
}

// add folds a recorded delta into the counters — the Stats replay of a plan
// hit, the inverse of the sub a recording takes.
func (s *Stats) add(d Stats) {
	s.SCMCalls += d.SCMCalls
	s.MatchRuns += d.MatchRuns
	s.MatchingsFound += d.MatchingsFound
	s.PSafeCalls += d.PSafeCalls
	s.ProductTerms += d.ProductTerms
	s.Disjunctivizations += d.Disjunctivizations
	s.DNFDisjuncts += d.DNFDisjuncts
	s.RuleAttempts += d.RuleAttempts
}

// SetPlan attaches (or detaches, with nil) a shared translation plan.
// Results, Stats, metrics, and traces are identical with or without one;
// the plan is observable only through its own PlanStats.
//
// Deprecated: prefer the WithPlan option at construction time.
func (t *Translator) SetPlan(p *Plan) { WithPlan(p)(t) }

// Plan returns the attached shared translation plan, or nil.
func (t *Translator) Plan() *Plan { return t.plan }

// planOK reports whether the plan participates in this translator's
// configuration at all. The uncompiled ablation is excluded so its recorded
// costs stay fully interpretive, and the full-DNF ablation is excluded
// because its safety machinery computes different intermediate shapes.
func (t *Translator) planOK() bool {
	return t.plan != nil && !t.compiledOff && !t.fullDNFSafety
}

// planGet looks up a plan entry, honoring the bypass-or-record discipline:
// under tracing the lookup is skipped (and counted as a miss) so every
// algorithm step still runs and emits its spans, while the completed run is
// still recorded for untraced traffic.
func (t *Translator) planGet(key string) *planEntry {
	if t.tracer != nil || t.trace != nil {
		t.plan.noteBypass()
		return nil
	}
	e, ok := t.plan.get(t.Spec, key)
	if !ok {
		return nil
	}
	return e
}

// planApply replays a hit entry's recorded side effects: the Stats delta,
// the residue-cleanliness flag, the cumulative metrics, and — when an
// enclosing recording is open — the activity fold into that scope, so an
// outer fragment recorded around this hit replays correctly later.
func (t *Translator) planApply(e *planEntry) {
	t.Stats.add(e.delta)
	if !e.clean {
		t.residueClean = false
	}
	e.agg.replay(t.metrics, t.Spec.Name)
	if f := t.frameTop(); f != nil {
		f.fold(&e.agg)
	}
}

// frameTop returns the innermost open recording scope, or nil.
func (t *Translator) frameTop() *planAgg {
	if n := len(t.planFrames); n > 0 {
		return t.planFrames[n-1]
	}
	return nil
}

// planRec snapshots the translator state a recording must restore: the
// Stats baseline the delta is taken against, and the caller's residue flag
// (the scope tracks its own cleanliness, then ANDs back).
type planRec struct {
	before     Stats
	savedClean bool
}

// planRecord opens a recording scope for one fragment.
func (t *Translator) planRecord() planRec {
	t.planFrames = append(t.planFrames, &planAgg{})
	rec := planRec{before: t.Stats, savedClean: t.residueClean}
	t.residueClean = true
	return rec
}

// planPop closes the innermost scope, folding its activity into the
// enclosing one.
func (t *Translator) planPop() *planAgg {
	f := t.planFrames[len(t.planFrames)-1]
	t.planFrames = t.planFrames[:len(t.planFrames)-1]
	if top := t.frameTop(); top != nil {
		top.fold(f)
	}
	return f
}

// store completes a recording: it stamps the entry with the scope's Stats
// delta, cleanliness, and metric activity, restores the caller's residue
// flag, and publishes the entry.
func (rec planRec) store(t *Translator, key string, e *planEntry) {
	f := t.planPop()
	e.delta = t.Stats.sub(rec.before)
	e.clean = t.residueClean
	e.agg = *f
	t.residueClean = rec.savedClean && t.residueClean
	t.plan.put(t.Spec, key, e)
}

// abort unwinds a recording scope on error without publishing an entry.
func (rec planRec) abort(t *Translator) {
	t.planPop()
	t.residueClean = rec.savedClean && t.residueClean
}

// Shape keys. Keys render the exact input (not its canonical form): two
// structurally different but equivalent inputs translate to structurally
// different but equivalent outputs, and a plan hit must reproduce exactly
// what the interpretive path would have produced for that input.

func planKeyTDQM(q *qtree.Node) string { return "T|" + q.String() }

func planKeySCM(cs []*qtree.Constraint) string {
	var b strings.Builder
	b.WriteString("S|")
	for i, c := range cs {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(c.Key())
	}
	return b.String()
}

func planKeyPSafe(conjuncts []*qtree.Node) string {
	var b strings.Builder
	b.WriteString("P|")
	for i, c := range conjuncts {
		if i > 0 {
			b.WriteString("&&")
		}
		b.WriteString(c.String())
	}
	return b.String()
}

func planKeyEDNF(q *qtree.Node, mp []*qtree.ConstraintSet) string {
	var b strings.Builder
	b.WriteString("E|")
	b.WriteString(q.String())
	b.WriteByte('#')
	for i, m := range mp {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(m.ID())
	}
	return b.String()
}
