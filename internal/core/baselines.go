package core

// Baselines modeling the translation behavior the paper attributes to other
// systems (Section 3), for the comparative experiments:
//
//   - CNFMap — Garlic-style processing: the query is converted to CNF and
//     every clause is translated independently, constraint by constraint.
//     No cross-constraint dependencies are considered, so the result is a
//     correct subsuming mapping but generally NOT minimal (it is exactly
//     the suboptimal Qa of Example 2).
//   - WithoutRelaxations — a specification stripped of its inexact rules,
//     modeling wrappers that "translate a constraint syntactically if
//     supported, or else drop it entirely" with no semantic rewriting.

import (
	"repro/internal/qtree"
	"repro/internal/rules"
)

// CNFMap translates q clause-by-clause over its CNF, mapping every
// constraint independently (one-to-one, the implicit assumption the paper
// ascribes to other frameworks). The output subsumes q but misses the
// selectivity that dependency-aware mapping provides.
func (t *Translator) CNFMap(q *qtree.Node) (*qtree.Node, error) {
	defer t.begin(true)()
	cnf := qtree.ToCNF(q)
	clauses := cnf.Conjuncts()
	kids := make([]*qtree.Node, 0, len(clauses))
	for _, clause := range clauses {
		ds := clause.Disjuncts()
		mapped := make([]*qtree.Node, 0, len(ds))
		for _, d := range ds {
			// Each disjunct of a CNF clause is a single constraint (or
			// True); translate it alone.
			res, err := t.SCM(d.SimpleConjuncts())
			if err != nil {
				return nil, err
			}
			mapped = append(mapped, res.Query)
		}
		kids = append(kids, qtree.Or(mapped...).Normalize())
	}
	return qtree.And(kids...).Normalize(), nil
}

// WithoutRelaxations derives a specification containing only the exact
// rules of spec — the "syntactic-only" wrapper model without semantic
// rewriting. Constraints whose only mappings were relaxations now map to
// True and fall entirely to the mediator's filter.
func WithoutRelaxations(spec *rules.Spec) *rules.Spec {
	var exact []*rules.Rule
	for _, r := range spec.Rules {
		if r.Exact {
			exact = append(exact, r)
		}
	}
	return rules.MustSpec(spec.Name+"_exact_only", spec.Target, spec.Reg, exact...)
}
