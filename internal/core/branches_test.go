package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/qparse"
)

// TestTranslateBranchesShape: each top-level disjunct is translated with
// its own filter; simple-conjunction branches get tight residues.
func TestTranslateBranchesShape(t *testing.T) {
	tr := amazonTranslator()
	q := qparse.MustParse(
		`([ti contains java(near)jdk] and [publisher = "oreilly"]) or ` +
			`([ln = "Clancy"] and [fn = "Tom"])`)
	branches, err := tr.TranslateBranches(q, core.AlgTDQM)
	if err != nil {
		t.Fatal(err)
	}
	if len(branches) != 2 {
		t.Fatalf("got %d branches, want 2", len(branches))
	}
	// Branch 1: the title relaxation leaves exactly the ti constraint in
	// the filter (tight residue, not the whole branch).
	wantF := qparse.MustParse(`[ti contains java(near)jdk]`)
	if !branches[0].Filter.EqualCanonical(wantF) {
		t.Errorf("branch 1 filter = %s, want %s", branches[0].Filter, wantF)
	}
	// Branch 2 is exact.
	if !branches[1].Filter.IsTrue() {
		t.Errorf("branch 2 filter = %s, want TRUE", branches[1].Filter)
	}

	// Non-disjunctive query: a single branch.
	one, err := tr.TranslateBranches(qparse.MustParse(`[ln = "X"]`), core.AlgTDQM)
	if err != nil || len(one) != 1 {
		t.Fatalf("single-branch case: %d branches, %v", len(one), err)
	}
}

// TestEDNFExprString covers the ε rendering used in experiment output.
func TestEDNFExprString(t *testing.T) {
	e := core.Epsilon()
	if got := e.String(); got != "eps" {
		t.Errorf("Epsilon String = %q", got)
	}
	tr := amazonTranslator()
	q := qparse.MustParse(`[pyear = 1997] or [pmonth = 5]`)
	mp, err := tr.PotentialMatchings(q)
	if err != nil {
		t.Fatal(err)
	}
	de := tr.EDNF(q, mp)
	if de.String() == "" {
		t.Error("EDNF String empty")
	}
}
