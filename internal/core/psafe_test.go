package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/qparse"
	"repro/internal/qtree"
	"repro/internal/rules"
	"repro/internal/sources"
)

// xyuvSpec builds the synthetic specification of Examples 13/14: the
// matchings for constraints x, y, u, v are {x,y}, {u}, and {v}.
func xyuvSpec(t *testing.T) *rules.Spec {
	t.Helper()
	rs := rules.MustParseRules(`
rule RXY {
  match [x = A], [y = B];
  where Value(A), Value(B);
  emit exact [txy = A];
}
rule RU {
  match [u = A];
  where Value(A);
  emit exact [tu = A];
}
rule RV {
  match [v = A];
  where Value(A);
  emit exact [tv = A];
}
`)
	target := rules.NewTarget("xyuv",
		rules.Capability{Attr: "txy", Op: qtree.OpEq},
		rules.Capability{Attr: "tu", Op: qtree.OpEq},
		rules.Capability{Attr: "tv", Op: qtree.OpEq},
	)
	return rules.MustSpec("K_xyuv", target, rules.NewRegistry(), rs...)
}

// TestExample13Qa reproduces the first partition of Examples 13/14:
// Q̂a = (x)(y)(yu ∨ v) partitions into {{Č1, Č2}, {Č3}} — only the block
// covering the cross-matching {x, y} is required, and Č3 separates.
func TestExample13Qa(t *testing.T) {
	tr := core.NewTranslator(xyuvSpec(t))
	qa := qparse.MustParse(`[x = 1] and [y = 1] and (([y = 1] and [u = 1]) or [v = 1])`).Normalize()
	if qa.Kind != qtree.KindAnd || len(qa.Kids) != 3 {
		t.Fatalf("unexpected shape: %s", qa)
	}
	p, err := tr.PSafe(qa.Kids)
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "{{0,1}, {2}}" {
		t.Errorf("partition(Qa) = %s, want {{0,1}, {2}}", p)
	}
}

// TestExample13Qb reproduces the second partition: Q̂b = (x)(y∨u)(y∨v)
// needs both blocks {Č1,Č2} and {Č1,Č3}, which merge into one
// {Č1, Č2, Č3}.
func TestExample13Qb(t *testing.T) {
	tr := core.NewTranslator(xyuvSpec(t))
	qb := qparse.MustParse(`[x = 1] and ([y = 1] or [u = 1]) and ([y = 1] or [v = 1])`).Normalize()
	if qb.Kind != qtree.KindAnd || len(qb.Kids) != 3 {
		t.Fatalf("unexpected shape: %s", qb)
	}
	p, err := tr.PSafe(qb.Kids)
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "{{0,1,2}}" {
		t.Errorf("partition(Qb) = %s, want {{0,1,2}}", p)
	}
}

// TestExample7Safety reproduces Example 7: with K_Amazon,
// Q̂ = (fl ff)(fy)(fm1) is unsafe because of the cross-matching {fy, fm1}.
func TestExample7Safety(t *testing.T) {
	tr := core.NewTranslator(sources.NewAmazon().Spec)
	c1 := qtree.SetOfConstraints(qparse.MustParse(`[ln = "Smith"] and [fn = "John"]`))
	c2 := qtree.SetOfConstraints(qparse.MustParse(`[pyear = 1997]`))
	c3 := qtree.SetOfConstraints(qparse.MustParse(`[pmonth = 5]`))

	delta, err := tr.CrossMatchings([]*qtree.ConstraintSet{c1, c2, c3})
	if err != nil {
		t.Fatal(err)
	}
	if len(delta) != 1 {
		t.Fatalf("got %d cross-matchings (%v), want 1", len(delta), delta)
	}
	want := qtree.SetOfConstraints(qparse.MustParse(`[pyear = 1997] and [pmonth = 5]`))
	if !delta[0].Equal(want) {
		t.Errorf("cross-matching = %s, want %s", delta[0], want)
	}
	safe, err := tr.SafeBase([]*qtree.ConstraintSet{c1, c2, c3})
	if err != nil {
		t.Fatal(err)
	}
	if safe {
		t.Error("Q̂ reported safe; Example 7 says unsafe")
	}
}

// mapOracle builds an engine-backed subsumption oracle over a grid of map
// points: broader subsumes narrower iff every grid point selected by
// narrower is selected by broader.
func mapOracle(t *testing.T) core.SubsumptionOracle {
	t.Helper()
	ev := sources.NewMapEvaluator()
	var grid []engine.Tuple
	for x := -10.0; x <= 60; x += 5 {
		for y := -10.0; y <= 60; y += 5 {
			grid = append(grid, sources.MapTuple(x, y))
		}
	}
	return func(broader, narrower *qtree.Node) (bool, error) {
		for _, tup := range grid {
			inN, err := ev.EvalQuery(narrower, tup)
			if err != nil {
				return false, err
			}
			if !inN {
				continue
			}
			inB, err := ev.EvalQuery(broader, tup)
			if err != nil {
				return false, err
			}
			if !inB {
				return false, nil
			}
		}
		return true, nil
	}
}

// TestExample8 reproduces Example 8 / Figure 9: with the map rules,
// Q̂ = (f1 f2)(f3 f4) has two cross-matchings yet is *separable* (they are
// redundant: the corner constraints subsume the range pair), while
// Q̂' = (f1 f4)(f2 f3) is truly inseparable.
func TestExample8(t *testing.T) {
	g := sources.NewMapSource()
	tr := core.NewTranslator(g.Spec)
	oracle := mapOracle(t)

	f1 := qtree.SetOfConstraints(qparse.MustParse(`[xmin = 10]`))
	f2 := qtree.SetOfConstraints(qparse.MustParse(`[xmax = 30]`))
	f3 := qtree.SetOfConstraints(qparse.MustParse(`[ymin = 20]`))
	f4 := qtree.SetOfConstraints(qparse.MustParse(`[ymax = 40]`))

	// First conjunction: (f1 f2)(f3 f4).
	c1, c2 := f1.Union(f2), f3.Union(f4)
	delta, err := tr.CrossMatchings([]*qtree.ConstraintSet{c1, c2})
	if err != nil {
		t.Fatal(err)
	}
	if len(delta) != 2 {
		t.Fatalf("got %d cross-matchings (%v), want 2 (m3, m4)", len(delta), delta)
	}
	safe, err := tr.SafeBase([]*qtree.ConstraintSet{c1, c2})
	if err != nil {
		t.Fatal(err)
	}
	if safe {
		t.Error("(f1f2)(f3f4) reported safe; it has cross-matchings")
	}
	sep, err := tr.SeparableBase([]*qtree.ConstraintSet{c1, c2}, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if !sep {
		t.Error("(f1f2)(f3f4) not separable; Example 8 proves it is (redundant cross-matchings)")
	}

	// Second conjunction: (f1 f4)(f2 f3) — all cross-matchings essential.
	d1, d2 := f1.Union(f4), f2.Union(f3)
	delta, err = tr.CrossMatchings([]*qtree.ConstraintSet{d1, d2})
	if err != nil {
		t.Fatal(err)
	}
	if len(delta) != 4 {
		t.Fatalf("got %d cross-matchings (%v), want 4", len(delta), delta)
	}
	sep, err = tr.SeparableBase([]*qtree.ConstraintSet{d1, d2}, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if sep {
		t.Error("(f1f4)(f2f3) reported separable; Example 8 proves it is not")
	}
}

// TestExample8Mapping checks the actual translations behind Example 8: the
// separated mapping S(f1f2)S(f3f4) = g1 ∧ g2, and the cross-matching's
// mapping S(f1f3) = g3, with g1g2 ⊆ g3 on data (Figure 9: point (50,30) is
// in g3 but not in g1g2).
func TestExample8Mapping(t *testing.T) {
	g := sources.NewMapSource()
	tr := core.NewTranslator(g.Spec)

	res, err := tr.SCMQuery(qparse.MustParse(`[xmin = 10] and [xmax = 30]`))
	if err != nil {
		t.Fatal(err)
	}
	if want := qparse.MustParse(`[xrange = (10:30)]`); !res.Query.EqualCanonical(want) {
		t.Errorf("S(f1f2) = %s, want %s", res.Query, want)
	}

	res, err = tr.SCMQuery(qparse.MustParse(`[xmin = 10] and [ymin = 20]`))
	if err != nil {
		t.Fatal(err)
	}
	if want := qparse.MustParse(`[cll = (10,20)]`); !res.Query.EqualCanonical(want) {
		t.Errorf("S(f1f3) = %s, want %s", res.Query, want)
	}

	ev := sources.NewMapEvaluator()
	pt := sources.MapTuple(50, 30) // Figure 9's witness point
	inG3, err := ev.EvalQuery(qparse.MustParse(`[cll = (10,20)]`), pt)
	if err != nil {
		t.Fatal(err)
	}
	inG1G2, err := ev.EvalQuery(qparse.MustParse(`[xrange = (10:30)] and [yrange = (20:40)]`), pt)
	if err != nil {
		t.Fatal(err)
	}
	if !inG3 || inG1G2 {
		t.Errorf("point (50,30): inG3=%v inG1G2=%v, want true/false", inG3, inG1G2)
	}
}
