package core_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/conformance"
	"repro/internal/core"
	"repro/internal/qtree"
	"repro/internal/workload"
)

// TestMatchCacheConformance is the shared-cache equivalence contract: across
// ≥40 conformance seeds and both structural algorithms, translation with a
// cold shared MatchCache and with a warm one (populated by a previous
// translator over the same spec) produces EqualCanonical queries, identical
// residues, and — because every hit compensates the work counters — Stats
// identical to a cache-free run. The cache must be observable only through
// MatchCacheStats.
func TestMatchCacheConformance(t *testing.T) {
	algs := []string{core.AlgTDQM, core.AlgDNF}
	for seed := int64(1); seed <= 40; seed++ {
		c := conformance.NewCase(seed)
		for _, alg := range algs {
			base := core.NewTranslator(c.S.Spec)
			wantQ, wantF, wantErr := base.TranslateWithFilter(c.Query, alg)

			cache := core.NewMatchCache(0)
			for _, variant := range []string{"cold", "warm"} {
				tr := core.NewTranslator(c.S.Spec, core.WithMatchCache(cache))
				gotQ, gotF, gotErr := tr.TranslateWithFilter(c.Query, alg)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("seed %d %s %s: err=%v, cache-free err=%v",
						seed, alg, variant, gotErr, wantErr)
				}
				if wantErr != nil {
					continue
				}
				if !gotQ.EqualCanonical(wantQ) {
					t.Errorf("seed %d (%s) %s %s: mapped query differs\n got: %s\nwant: %s",
						seed, c.SeedString(), alg, variant, gotQ, wantQ)
				}
				if !gotF.EqualCanonical(wantF) {
					t.Errorf("seed %d (%s) %s %s: residue differs\n got: %s\nwant: %s",
						seed, c.SeedString(), alg, variant, gotF, wantF)
				}
				if tr.Stats != base.Stats {
					t.Errorf("seed %d %s %s: Stats diverged from cache-free run\n got: %+v\nwant: %+v",
						seed, alg, variant, tr.Stats, base.Stats)
				}
			}
			if wantErr == nil {
				if st := cache.Stats(); st.Hits == 0 && st.Misses == 0 {
					t.Errorf("seed %d %s: shared cache was never consulted", seed, alg)
				}
			}
		}
	}
}

// batchQueries derives a deterministic per-seed batch: the case's own query
// plus random workload queries over the same scenario, with repeats so the
// batch exercises memo and cache sharing.
func batchQueries(c *conformance.Case) []*qtree.Node {
	rng := rand.New(rand.NewSource(c.Seed * 7919))
	cfg := workload.QueryConfig{MaxDepth: 2, MaxFanout: 3, LeafProb: 0.4}
	qs := []*qtree.Node{c.Query}
	for i := 0; i < 5; i++ {
		qs = append(qs, c.S.RandomQuery(rng, cfg))
	}
	qs = append(qs, c.Query) // a repeat: identical queries must stay identical
	return qs
}

// TestTranslateBatchConformance asserts TranslateBatch is item-for-item
// equivalent to a per-query loop of fresh translators, across 40 seeds and a
// parallelism × shared-cache grid: same mapped queries, same residues, same
// per-item Stats.
func TestTranslateBatchConformance(t *testing.T) {
	ctx := context.Background()
	grid := []struct {
		par   int
		cache bool
	}{{0, false}, {0, true}, {4, false}, {4, true}}
	for seed := int64(1); seed <= 40; seed++ {
		c := conformance.NewCase(seed)
		qs := batchQueries(c)

		want := make([]core.BatchResult, len(qs))
		for i, q := range qs {
			r, err := core.NewTranslator(c.S.Spec).Do(ctx, q, core.AlgTDQM)
			want[i] = core.BatchResult{Result: r, Err: err}
		}

		for _, g := range grid {
			name := fmt.Sprintf("seed %d par=%d cache=%v", seed, g.par, g.cache)
			opts := []core.Option{core.WithParallelism(g.par)}
			if g.cache {
				opts = append(opts, core.WithMatchCache(core.NewMatchCache(0)))
			}
			tr := core.NewTranslator(c.S.Spec, opts...)
			got := tr.TranslateBatch(ctx, qs, core.AlgTDQM)
			if len(got) != len(want) {
				t.Fatalf("%s: %d results for %d queries", name, len(got), len(qs))
			}
			for i := range got {
				if (got[i].Err == nil) != (want[i].Err == nil) {
					t.Errorf("%s item %d: err=%v, loop err=%v", name, i, got[i].Err, want[i].Err)
					continue
				}
				if want[i].Err != nil {
					continue
				}
				if !got[i].Mapped.EqualCanonical(want[i].Mapped) {
					t.Errorf("%s item %d: mapped differs\n got: %s\nwant: %s",
						name, i, got[i].Mapped, want[i].Mapped)
				}
				if !got[i].Filter.EqualCanonical(want[i].Filter) {
					t.Errorf("%s item %d: filter differs\n got: %s\nwant: %s",
						name, i, got[i].Filter, want[i].Filter)
				}
				if got[i].Stats != want[i].Stats {
					t.Errorf("%s item %d: Stats differ\n got: %+v\nwant: %+v",
						name, i, got[i].Stats, want[i].Stats)
				}
			}
		}
	}
}

// TestTranslateBatchCancellation checks an already-canceled context fails
// every item with the context error instead of translating.
func TestTranslateBatchCancellation(t *testing.T) {
	c := conformance.NewCase(5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tr := core.NewTranslator(c.S.Spec)
	for i, r := range tr.TranslateBatch(ctx, batchQueries(c), core.AlgTDQM) {
		if r.Err == nil {
			t.Fatalf("item %d translated under a canceled context", i)
		}
	}
	if _, err := tr.Do(ctx, c.Query, core.AlgTDQM); err == nil {
		t.Fatal("Do succeeded under a canceled context")
	}
}
