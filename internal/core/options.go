package core

import "repro/internal/obs"

// Option configures a Translator at construction time. Options replace the
// mutating setters (SetParallelism, SetTracer, SetMemo, ...) as the primary
// configuration surface: a translator is assembled once, fully configured,
// by NewTranslator(spec, opts...) instead of being mutated after the fact.
// The setters remain as thin deprecated wrappers for existing callers.
type Option func(*Translator)

// WithParallelism bounds the worker pool branch mapping and TranslateBatch
// may use; n <= 1 keeps translation fully sequential (the default).
func WithParallelism(n int) Option {
	return func(t *Translator) { t.SetParallelism(n) }
}

// WithMatchCache attaches a shared cross-request matchings cache. Results
// and Stats are identical with or without one; see MatchCache.
func WithMatchCache(c *MatchCache) Option {
	return func(t *Translator) { t.SetMatchCache(c) }
}

// WithPlan attaches a shared cross-request translation plan. Results,
// Stats, metrics, and traces are identical with or without one; see Plan.
func WithPlan(p *Plan) Option {
	return func(t *Translator) { t.SetPlan(p) }
}

// WithTracer attaches a span tracer recording the full derivation call
// tree. A nil tracer is a no-op.
func WithTracer(tr *obs.Tracer) Option {
	return func(t *Translator) { t.SetTracer(tr) }
}

// WithMetrics attaches cumulative translation metrics recorded under the
// spec's name. A nil metrics handle is a no-op.
func WithMetrics(m *obs.TranslationMetrics) Option {
	return func(t *Translator) { t.SetMetrics(m) }
}

// WithTrace attaches a flat derivation-trace collector (qmap -explain).
func WithTrace(tr *Trace) Option {
	return func(t *Translator) { t.SetTrace(tr) }
}

// WithMemo enables or disables the translation-scoped matching memo
// (enabled by default).
func WithMemo(on bool) Option {
	return func(t *Translator) { t.SetMemo(on) }
}

// WithCompiled enables or disables the compiled rule-dispatch engine
// (enabled by default).
func WithCompiled(on bool) Option {
	return func(t *Translator) { t.SetCompiled(on) }
}

// WithFullDNFSafety switches the safety machinery to full DNF (ablation).
func WithFullDNFSafety(on bool) Option {
	return func(t *Translator) { t.SetFullDNFSafety(on) }
}
