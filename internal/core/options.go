package core

import "repro/internal/obs"

// Option configures a Translator at construction time. Options are the
// primary configuration surface — each one owns its configuration logic,
// and the mutating setters (SetParallelism, SetTracer, ...) are thin
// deprecated wrappers that apply the corresponding option after the fact.
// A translator is assembled once, fully configured, by
// NewTranslator(spec, opts...).
type Option func(*Translator)

// WithParallelism bounds the worker pool branch mapping and TranslateBatch
// may use; n <= 1 keeps translation fully sequential (the default).
// Parallelism is skipped whenever a tracer or derivation trace is attached —
// span trees and derivation logs are ordered, sequential artifacts.
func WithParallelism(n int) Option {
	return func(t *Translator) {
		if n <= 1 {
			t.workers, t.sem = 0, nil
			return
		}
		t.workers = n
		// n-1 slots: the caller's goroutine is the n-th worker (branches
		// that find the pool full run inline on it).
		t.sem = make(chan struct{}, n-1)
	}
}

// WithMatchCache attaches a shared cross-request matchings cache (nil
// detaches). Results and Stats are identical with or without one; see
// MatchCache.
func WithMatchCache(c *MatchCache) Option {
	return func(t *Translator) { t.shared = c }
}

// WithPlan attaches a shared cross-request translation plan (nil detaches).
// Results, Stats, metrics, and traces are identical with or without one;
// see Plan.
func WithPlan(p *Plan) Option {
	return func(t *Translator) { t.plan = p }
}

// WithTracer attaches a span tracer recording the full derivation call
// tree (nil detaches). A nil tracer is a no-op.
func WithTracer(tr *obs.Tracer) Option {
	return func(t *Translator) { t.tracer = tr }
}

// WithMetrics attaches cumulative translation metrics recorded under the
// spec's name (nil detaches). A nil metrics handle is a no-op.
func WithMetrics(m *obs.TranslationMetrics) Option {
	return func(t *Translator) { t.metrics = m }
}

// WithTrace attaches a flat derivation-trace collector (qmap -explain).
func WithTrace(tr *Trace) Option {
	return func(t *Translator) { t.SetTrace(tr) }
}

// WithMemo enables or disables the translation-scoped matching memo
// (enabled by default).
func WithMemo(on bool) Option {
	return func(t *Translator) { t.SetMemo(on) }
}

// WithCompiled enables or disables the compiled rule-dispatch engine
// (enabled by default).
func WithCompiled(on bool) Option {
	return func(t *Translator) { t.SetCompiled(on) }
}

// WithFullDNFSafety switches the safety machinery to full DNF (ablation).
func WithFullDNFSafety(on bool) Option {
	return func(t *Translator) { t.SetFullDNFSafety(on) }
}
