package core_test

import (
	"strings"
	"testing"

	"repro/internal/boolex"
	"repro/internal/core"
	"repro/internal/qparse"
	"repro/internal/qtree"
	"repro/internal/sources"
)

func amazonTranslator() *core.Translator {
	return core.NewTranslator(sources.NewAmazon().Spec)
}

func TestTDQMTrivialInputs(t *testing.T) {
	tr := amazonTranslator()

	// True maps to True.
	got, err := tr.TDQM(qtree.True())
	if err != nil || !got.IsTrue() {
		t.Errorf("TDQM(TRUE) = %v, %v", got, err)
	}

	// A single unsupported constraint maps to True.
	got, err = tr.TDQM(qparse.MustParse(`[fn = "Tom"]`))
	if err != nil || !got.IsTrue() {
		t.Errorf("TDQM(fn alone) = %v, %v", got, err)
	}

	// A single supported constraint maps to its emission.
	got, err = tr.TDQM(qparse.MustParse(`[ln = "Chang"]`))
	if err != nil {
		t.Fatal(err)
	}
	if want := qparse.MustParse(`[author = "Chang"]`); !got.EqualCanonical(want) {
		t.Errorf("TDQM(ln) = %s, want %s", got, want)
	}
}

func TestTDQMUnsupportedDisjunctBroadensToTrue(t *testing.T) {
	// fn alone maps to True; in a disjunction, True absorbs: the whole
	// query must map to True (anything could match the unsupported branch).
	tr := amazonTranslator()
	got, err := tr.TDQM(qparse.MustParse(`[ln = "Chang"] or [fn = "Kevin"]`))
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsTrue() {
		t.Errorf("got %s, want TRUE (unsupported disjunct broadens the mapping)", got)
	}
}

func TestTDQMDeepAlternation(t *testing.T) {
	tr := amazonTranslator()
	q := qparse.MustParse(
		`[publisher = "oreilly"] and ` +
			`([category = "D.3"] or ([category = "H.2"] and ` +
			`([pyear = 1997] or [pyear = 1998])))`)
	got, err := tr.TDQM(q)
	if err != nil {
		t.Fatal(err)
	}
	viaDNF, err := tr.DNFMap(q)
	if err != nil {
		t.Fatal(err)
	}
	if !boolex.MustEquivalent(got, viaDNF) {
		t.Errorf("deep alternation: TDQM != DNF\nTDQM: %s\nDNF:  %s", got, viaDNF)
	}
}

func TestTranslateUnknownAlgorithm(t *testing.T) {
	tr := amazonTranslator()
	if _, err := tr.Translate(qtree.True(), "bogus"); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestTranslateSCMRejectsComplex(t *testing.T) {
	tr := amazonTranslator()
	q := qparse.MustParse(`[ln = "a"] or [ln = "b"]`)
	if _, err := tr.Translate(q, core.AlgSCM); err == nil {
		t.Error("SCM accepted a disjunction")
	}
}

func TestStatsAccumulate(t *testing.T) {
	tr := amazonTranslator()
	q := qparse.MustParse(`([ln = "a"] or [ln = "b"]) and [fn = "c"]`)
	if _, err := tr.TDQM(q); err != nil {
		t.Fatal(err)
	}
	s := tr.Stats
	if s.SCMCalls == 0 || s.MatchRuns == 0 || s.PSafeCalls == 0 {
		t.Errorf("stats not recorded: %+v", s)
	}
	tr.ResetStats()
	if tr.Stats != (core.Stats{}) {
		t.Errorf("ResetStats left %+v", tr.Stats)
	}
}

func TestResidueTightForSimpleConjunction(t *testing.T) {
	tr := amazonTranslator()
	q := qparse.MustParse(`[ti contains java(near)jdk] and [publisher = "oreilly"] and [pyear = 1997]`)
	_, filter, err := tr.TranslateWithFilter(q, core.AlgTDQM)
	if err != nil {
		t.Fatal(err)
	}
	// Only the relaxed ti constraint remains; publisher and pyear are exact.
	want := qparse.MustParse(`[ti contains java(near)jdk]`)
	if !filter.EqualCanonical(want) {
		t.Errorf("filter = %s, want %s", filter, want)
	}
}

func TestResidueFallbackForComplexInexact(t *testing.T) {
	tr := amazonTranslator()
	q := qparse.MustParse(`[ti contains java(near)jdk] or [category = "D.3"]`)
	_, filter, err := tr.TranslateWithFilter(q, core.AlgTDQM)
	if err != nil {
		t.Fatal(err)
	}
	if !filter.EqualCanonical(q) {
		t.Errorf("complex inexact filter = %s, want Q itself", filter)
	}

	// All-exact complex query: filter must be True.
	q = qparse.MustParse(`[publisher = "a"] or [publisher = "b"]`)
	_, filter, err = tr.TranslateWithFilter(q, core.AlgTDQM)
	if err != nil {
		t.Fatal(err)
	}
	if !filter.IsTrue() {
		t.Errorf("all-exact complex filter = %s, want TRUE", filter)
	}
}

func TestUnmatchedConstraintsReported(t *testing.T) {
	tr := amazonTranslator()
	res, err := tr.SCMQuery(qparse.MustParse(`[fn = "Tom"] and [publisher = "x"]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unmatched) != 1 || res.Unmatched[0].Attr.Name != "fn" {
		t.Errorf("Unmatched = %v, want the fn constraint", res.Unmatched)
	}
}

func TestPSafeSingleConjunct(t *testing.T) {
	tr := amazonTranslator()
	q := qparse.MustParse(`[ln = "a"] or [ln = "b"]`)
	p, err := tr.PSafe([]*qtree.Node{q})
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "{{0}}" || !p.Separable {
		t.Errorf("single conjunct partition = %s", p)
	}
}

func TestDNFMapTrue(t *testing.T) {
	tr := amazonTranslator()
	got, err := tr.DNFMap(qtree.True())
	if err != nil || !got.IsTrue() {
		t.Errorf("DNFMap(TRUE) = %v, %v", got, err)
	}
}

func TestTDQMDeterministic(t *testing.T) {
	// Repeated translations of the same query must render identically —
	// the library guarantees canonical ordering for reproducible output.
	q := qparse.MustParse(
		`(([ln = "Smith"] and [fn = "John"]) or [kwd contains web]) and ` +
			`[pyear = 1997] and ([pmonth = 5] or [pmonth = 6])`)
	var first string
	for i := 0; i < 10; i++ {
		tr := amazonTranslator()
		got, err := tr.TDQM(q)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = got.String()
			continue
		}
		if got.String() != first {
			t.Fatalf("nondeterministic output:\n%s\nvs\n%s", first, got)
		}
	}
	if !strings.Contains(first, "pdate") {
		t.Fatalf("unexpected translation: %s", first)
	}
}
