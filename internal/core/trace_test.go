package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/qparse"
	"repro/internal/sources"
)

func TestTraceRecordsDerivation(t *testing.T) {
	tr := amazonTranslator()
	trace := &core.Trace{}
	tr.SetTrace(trace)

	q := qparse.MustParse(`[pyear = 1997] and ([pmonth = 5] or [pmonth = 6])`)
	if _, err := tr.TDQM(q); err != nil {
		t.Fatal(err)
	}

	kinds := make(map[core.TraceEventKind]int)
	for _, e := range trace.Events {
		kinds[e.Kind]++
	}
	if kinds[core.TracePartition] != 1 {
		t.Errorf("partition events = %d, want 1", kinds[core.TracePartition])
	}
	if kinds[core.TraceRewrite] != 1 {
		t.Errorf("rewrite events = %d, want 1", kinds[core.TraceRewrite])
	}
	if kinds[core.TraceSCM] != 2 {
		t.Errorf("SCM events = %d, want 2 (one per rewritten disjunct)", kinds[core.TraceSCM])
	}
	if kinds[core.TraceMatchSuppressed] != 2 {
		t.Errorf("suppressed events = %d, want 2 (R7 per disjunct)", kinds[core.TraceMatchSuppressed])
	}
	text := trace.String()
	for _, want := range []string{"rule R6", "rule R7", "disjunctivize", "pdate during May/97"} {
		if !strings.Contains(text, want) {
			t.Errorf("trace output missing %q:\n%s", want, text)
		}
	}
}

func TestTraceOffByDefault(t *testing.T) {
	tr := amazonTranslator()
	q := qparse.MustParse(`[pyear = 1997] and [pmonth = 5]`)
	if _, err := tr.TDQM(q); err != nil {
		t.Fatal(err)
	}
	// No trace attached: nothing to assert except that it did not panic;
	// attach one and confirm detach works too.
	trace := &core.Trace{}
	tr.SetTrace(trace)
	tr.SetTrace(nil)
	if _, err := tr.TDQM(q); err != nil {
		t.Fatal(err)
	}
	if len(trace.Events) != 0 {
		t.Errorf("detached trace still collected %d events", len(trace.Events))
	}
}

func TestTraceIdenticalResults(t *testing.T) {
	q := qparse.MustParse(
		`(([ln = "Smith"] and [fn = "John"]) or [kwd contains web]) and [pyear = 1997]`)
	plain := core.NewTranslator(sources.NewAmazon().Spec)
	got1, err := plain.TDQM(q)
	if err != nil {
		t.Fatal(err)
	}
	traced := core.NewTranslator(sources.NewAmazon().Spec)
	traced.SetTrace(&core.Trace{})
	got2, err := traced.TDQM(q)
	if err != nil {
		t.Fatal(err)
	}
	if !got1.EqualCanonical(got2) {
		t.Errorf("tracing changed the translation:\n%s\nvs\n%s", got1, got2)
	}
}
