package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/qtree"
	"repro/internal/rules"
	"repro/internal/workload"
)

// composeFixture builds a two-hop chain, its composed spec, and a query
// batch over the base vocabulary.
func composeFixture(t *testing.T, seed int64) (*workload.Scenario, *rules.Spec, []*qtree.Node) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s := workload.New(workload.Config{Indep: 2, Pairs: 1, InexactPairs: 1})
	ch := workload.NewChain(s, rng)
	comp, err := rules.Compose(s.Spec, ch.Spec2)
	if err != nil {
		t.Fatalf("Compose: %v", err)
	}
	qcfg := workload.DefaultQueryConfig()
	var qs []*qtree.Node
	for i := 0; i < 8; i++ {
		qs = append(qs, s.RandomQuery(rng, qcfg))
	}
	return s, comp, qs
}

// TestComposedSpecCacheInvalidate checks that a composed spec is a
// first-class citizen of the shared caches: translations through it
// populate a MatchCache and a Plan under its own identity, Invalidate on
// the composed spec removes exactly its entries while the hop specs'
// entries survive, and re-translation after invalidation is byte-identical.
func TestComposedSpecCacheInvalidate(t *testing.T) {
	s, comp, qs := composeFixture(t, 5)
	cache := core.NewMatchCache(0)
	plan := core.NewPlan(0)

	translate := func(spec *rules.Spec, q *qtree.Node) string {
		tr := core.NewTranslator(spec, core.WithMatchCache(cache), core.WithPlan(plan))
		out, err := tr.Translate(q, core.AlgTDQM)
		if err != nil {
			t.Fatalf("translate: %v", err)
		}
		return out.String()
	}

	base := make([]string, len(qs))
	for i, q := range qs {
		translate(s.Spec, q) // populate hop-spec entries
		base[i] = translate(comp, q)
	}
	if cache.Len() == 0 {
		t.Fatalf("shared MatchCache stayed empty")
	}
	if plan.Len() == 0 {
		t.Fatalf("shared Plan stayed empty")
	}

	cacheBefore, planBefore := cache.Len(), plan.Len()
	nc := cache.Invalidate(comp)
	np := plan.Invalidate(comp)
	if nc == 0 || np == 0 {
		t.Fatalf("Invalidate(composed) removed nothing: cache %d, plan %d", nc, np)
	}
	if got, want := cache.Len(), cacheBefore-nc; got != want {
		t.Fatalf("cache.Len() = %d after invalidation, want %d", got, want)
	}
	if got, want := plan.Len(), planBefore-np; got != want {
		t.Fatalf("plan.Len() = %d after invalidation, want %d", got, want)
	}
	// The hop spec's entries must survive: invalidating the composed spec
	// again removes nothing.
	if n := cache.Invalidate(comp); n != 0 {
		t.Fatalf("second Invalidate(composed) removed %d cache entries", n)
	}
	if cache.Len() == 0 {
		t.Fatalf("Invalidate(composed) wiped the hop spec's cache entries too")
	}

	for i, q := range qs {
		if got := translate(comp, q); got != base[i] {
			t.Fatalf("q%d: re-translation after invalidation differs\ngot  %s\nwant %s", i, got, base[i])
		}
	}
}

// TestComposedSpecPlanEquivalence locks the plan contract on composed
// specs: translations with a shared Plan (cold and warm) are byte-identical
// to plan-free translations, including Stats.
func TestComposedSpecPlanEquivalence(t *testing.T) {
	_, comp, qs := composeFixture(t, 9)
	plan := core.NewPlan(0)
	for i, q := range qs {
		bare := core.NewTranslator(comp)
		wantQ, wantF, err := bare.TranslateWithFilter(q, core.AlgTDQM)
		if err != nil {
			t.Fatalf("q%d: bare: %v", i, err)
		}
		for pass := 0; pass < 2; pass++ {
			tr := core.NewTranslator(comp, core.WithPlan(plan))
			gotQ, gotF, err := tr.TranslateWithFilter(q, core.AlgTDQM)
			if err != nil {
				t.Fatalf("q%d pass %d: planned: %v", i, pass, err)
			}
			if gotQ.String() != wantQ.String() || gotF.String() != wantF.String() {
				t.Fatalf("q%d pass %d: planned translation differs\ngot  %s | %s\nwant %s | %s",
					i, pass, gotQ, gotF, wantQ, wantF)
			}
			if bare.Stats != tr.Stats {
				t.Fatalf("q%d pass %d: Stats differ with plan: %+v vs %+v", i, pass, tr.Stats, bare.Stats)
			}
		}
	}
}
