package core

import (
	"container/list"
	"hash/maphash"
	"sync"
	"sync/atomic"

	"repro/internal/resilience"
	"repro/internal/rules"
)

// MatchCache is the cross-request matchings cache: a spec-keyed, bounded
// LRU of canonical constraint-set key → (matchings, rules probed), shared
// across translations, translators, and requests. It generalizes the
// translation-scoped memo (memo.go) one level up: distinct requests whose
// queries overlap in constraint groups re-derive identical SCM matchings,
// and because a spec's rules are immutable the first derivation is valid
// for every later translation against the same *rules.Spec.
//
// Keying and invalidation: entries are keyed by (spec identity, canonical
// constraint-set key). Spec identity is the *rules.Spec pointer — two specs
// with identical rules do not share entries, and a spec's entries can be
// dropped wholesale with Invalidate. There is no time-based expiry: specs
// are immutable after construction everywhere in this repository, so an
// entry only leaves the cache by LRU eviction or explicit invalidation.
//
// Concurrency: the cache is safe for concurrent use. The key space is
// sharded and each shard holds its own mutex and LRU list, so eviction on
// one shard never blocks lookups on another; the hit/miss/eviction counters
// are atomics shared by all shards. Small caches (capacity below the shard
// count threshold) collapse to a single shard so the configured capacity is
// exact; larger caches distribute capacity evenly across shards and the
// bound is enforced per shard.
//
// Cached matchings are shared between translations and must be treated as
// immutable — the same contract the translation memo and serve's
// translation cache already rely on.
type MatchCache struct {
	shards []matchShard
	seed   maphash.Seed

	// admit, when non-nil, is the TinyLFU admission sketch: every lookup
	// touches it, and a full shard only admits an insert whose estimated
	// access frequency strictly exceeds its eviction victim's. The sketch
	// is keyed by the canonical constraint-set key alone (not the spec
	// pointer) — cross-spec frequency sharing is harmless noise in an
	// already-approximate estimate.
	admit    *resilience.Sketch
	rejected atomic.Uint64

	hits, misses, evictions atomic.Uint64
}

// DefaultMatchCacheSize is the capacity used when NewMatchCache is given a
// non-positive capacity.
const DefaultMatchCacheSize = 4096

// matchCacheShards is the shard count for large caches; caches smaller than
// this stay single-sharded so their capacity is exact.
const matchCacheShards = 16

type matchShard struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List                 // front = most recently used
	items map[matchKey]*list.Element // key → element whose Value is *matchEntry
}

// matchKey scopes a canonical constraint-set key to one spec identity.
type matchKey struct {
	spec *rules.Spec
	cs   string
}

type matchEntry struct {
	key matchKey
	memoEntry
}

// NewMatchCache returns a cache holding up to capacity matchings entries
// (DefaultMatchCacheSize if capacity <= 0).
func NewMatchCache(capacity int) *MatchCache {
	return NewMatchCacheAdmission(capacity, false)
}

// NewMatchCacheAdmission returns a cache like NewMatchCache, optionally
// guarded by a TinyLFU admission sketch: a full shard refuses inserts whose
// estimated access frequency does not strictly exceed the eviction
// victim's, so a flood of one-off constraint sets (scan-like traffic)
// cannot wash out the hot working set. A refused insert changes nothing
// for its caller — the derived matchings are still returned, just not
// cached. Rejections are counted (AdmissionRejected).
func NewMatchCacheAdmission(capacity int, admission bool) *MatchCache {
	if capacity <= 0 {
		capacity = DefaultMatchCacheSize
	}
	n := matchCacheShards
	if capacity < matchCacheShards {
		n = 1
	}
	c := &MatchCache{shards: make([]matchShard, n), seed: maphash.MakeSeed()}
	if admission {
		c.admit = resilience.NewSketch(capacity)
	}
	for i := range c.shards {
		per := capacity / n
		if i < capacity%n {
			per++
		}
		if per < 1 {
			per = 1
		}
		c.shards[i] = matchShard{
			cap:   per,
			ll:    list.New(),
			items: make(map[matchKey]*list.Element, per),
		}
	}
	return c
}

// shardFor picks the shard by hashing the constraint-set key. The spec
// pointer is part of the map key but not the shard choice: the same
// constraint set under different specs sharing a shard is harmless.
func (c *MatchCache) shardFor(cs string) *matchShard {
	if len(c.shards) == 1 {
		return &c.shards[0]
	}
	return &c.shards[maphash.String(c.seed, cs)%uint64(len(c.shards))]
}

// get returns the entry for (spec, cs), promoting it to most recently used
// and counting a hit; a failed lookup counts a miss.
func (c *MatchCache) get(spec *rules.Spec, cs string) (memoEntry, bool) {
	if c.admit != nil {
		c.admit.Touch(cs)
	}
	sh := c.shardFor(cs)
	sh.mu.Lock()
	el, ok := sh.items[matchKey{spec: spec, cs: cs}]
	if !ok {
		sh.mu.Unlock()
		c.misses.Add(1)
		return memoEntry{}, false
	}
	sh.ll.MoveToFront(el)
	e := el.Value.(*matchEntry).memoEntry
	sh.mu.Unlock()
	c.hits.Add(1)
	return e, true
}

// put inserts (or refreshes) the entry for (spec, cs), evicting least
// recently used entries beyond the shard's capacity.
func (c *MatchCache) put(spec *rules.Spec, cs string, ms []*rules.Matching, probed int) {
	key := matchKey{spec: spec, cs: cs}
	sh := c.shardFor(cs)
	sh.mu.Lock()
	if el, ok := sh.items[key]; ok {
		sh.ll.MoveToFront(el)
		el.Value.(*matchEntry).memoEntry = memoEntry{ms: ms, probed: probed}
		sh.mu.Unlock()
		return
	}
	if c.admit != nil && sh.ll.Len() >= sh.cap {
		victim := sh.ll.Back().Value.(*matchEntry).key.cs
		if !c.admit.Admit(cs, victim) {
			sh.mu.Unlock()
			c.rejected.Add(1)
			return
		}
	}
	sh.items[key] = sh.ll.PushFront(&matchEntry{key: key, memoEntry: memoEntry{ms: ms, probed: probed}})
	evicted := 0
	for sh.ll.Len() > sh.cap {
		oldest := sh.ll.Back()
		sh.ll.Remove(oldest)
		delete(sh.items, oldest.Value.(*matchEntry).key)
		evicted++
	}
	sh.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(uint64(evicted))
	}
}

// AdmissionRejected returns the number of inserts refused by the TinyLFU
// admission policy (always 0 without admission).
func (c *MatchCache) AdmissionRejected() uint64 { return c.rejected.Load() }

// noteBypass records a tracing-mode bypass as a miss: traced lookups are
// skipped (every match run must emit its spans) but still recorded, so the
// counter keeps hits+misses equal to the number of cache consultations.
func (c *MatchCache) noteBypass() { c.misses.Add(1) }

// Invalidate drops every entry recorded under spec and returns the number
// removed. Specs are immutable, so this is only needed when a spec is
// retired and its entries should stop occupying capacity.
func (c *MatchCache) Invalidate(spec *rules.Spec) int {
	removed := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for key, el := range sh.items {
			if key.spec == spec {
				sh.ll.Remove(el)
				delete(sh.items, key)
				removed++
			}
		}
		sh.mu.Unlock()
	}
	return removed
}

// Len returns the number of resident entries across all shards.
func (c *MatchCache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.ll.Len()
		sh.mu.Unlock()
	}
	return n
}

// MatchCacheStats is a point-in-time snapshot of a MatchCache's counters.
// It is the only observable difference between cache-on and cache-off
// translation: results, residues, and core.Stats are identical either way,
// because every hit compensates the work counters exactly.
type MatchCacheStats struct {
	// Hits counts lookups served from the cache.
	Hits uint64 `json:"hits"`
	// Misses counts lookups that found no entry, including traced lookups
	// that bypassed the cache by design (bypass-or-record).
	Misses uint64 `json:"misses"`
	// Evictions counts entries evicted for capacity.
	Evictions uint64 `json:"evictions"`
	// Entries is the number of resident entries.
	Entries int `json:"entries"`
}

// Stats returns a snapshot of the cache's counters.
func (c *MatchCache) Stats() MatchCacheStats {
	return MatchCacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.Len(),
	}
}

// HitRate returns the fraction of lookups served from the cache.
func (s MatchCacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}
