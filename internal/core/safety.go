package core

import (
	"repro/internal/engine"
	"repro/internal/qtree"
)

// CrossMatchings computes δ for a base-case conjunction Q̂ = Ĉ1···Ĉn of
// simple conjunctions (Definition 5): the matchings found in Q̂ as a whole
// that are not contained in any single conjunct. Because rule conditions
// inspect only the constraints they bind, a matching lies in M(Ĉi, K)
// exactly when its constraint set is a subset of Ĉi's constraints.
func (t *Translator) CrossMatchings(conjuncts []*qtree.ConstraintSet) ([]*qtree.ConstraintSet, error) {
	whole := qtree.NewConstraintSet()
	for _, c := range conjuncts {
		whole.AddAll(c)
	}
	ms, err := t.matchings(whole.Slice())
	if err != nil {
		return nil, err
	}
	var delta []*qtree.ConstraintSet
	for _, m := range matchingSets(ms) {
		inside := false
		for _, c := range conjuncts {
			if m.SubsetOf(c) {
				inside = true
				break
			}
		}
		if !inside {
			delta = append(delta, m)
		}
	}
	return delta, nil
}

// SafeBase tests the Definition 5 safety condition for a conjunction of
// simple conjunctions: safe iff no cross-matchings exist. Safety is
// sufficient (but not necessary) for separability (Corollary 1).
func (t *Translator) SafeBase(conjuncts []*qtree.ConstraintSet) (bool, error) {
	delta, err := t.CrossMatchings(conjuncts)
	if err != nil {
		return false, err
	}
	return len(delta) == 0, nil
}

// Safe tests the Definition 6 safety condition for a general conjunction of
// disjunctive conjuncts, using Procedure EDNF exactly as Algorithm PSafe
// does: the conjunction is safe iff no product term contains a
// cross-matching.
func (t *Translator) Safe(conjuncts []*qtree.Node) (bool, error) {
	p, err := t.PSafe(conjuncts)
	if err != nil {
		return false, err
	}
	return p.CrossMatchings == 0, nil
}

// SubsumptionOracle decides whether broader subsumes narrower — i.e.
// σ_broader(D) ⊇ σ_narrower(D) for all D. Oracles are domain-specific: the
// library provides an engine-backed oracle over sampled data and a
// Boolean-level oracle (internal/boolex) for shared-atom queries.
type SubsumptionOracle func(broader, narrower *qtree.Node) (bool, error)

// SeparableGeneral tests the precise separability condition of Theorem 4
// for a general conjunction of disjunctive conjuncts, empirically over a
// tuple sample: Q̂ is separable iff for every disjunct D̂j of
// Disjunctivize(Q̂), the "slack" of separating its ingredients —
// [∏ S(I_ik)] ∖ S(D̂j) — is absorbed by the other disjuncts' mappings
// (Eq. 8). Negation is not representable in the query language, so the
// set difference is evaluated tuple by tuple with the given evaluator.
//
// The verdict is exact over the sample: a false result is definitive (a
// witness tuple violates Eq. 8); a true result certifies separability over
// the sampled data (exhaustive samples give the full theorem).
func (t *Translator) SeparableGeneral(conjuncts []*qtree.Node, ev *engine.Evaluator, sample []engine.Tuple) (bool, error) {
	disj := qtree.Disjunctivize(conjuncts)
	ds := disj.Disjuncts()

	// Per disjunct: the separated mapping Zj = ∏ S(ingredient) and the
	// joint mapping S(D̂j).
	type branch struct {
		z, s *qtree.Node
	}
	branches := make([]branch, len(ds))
	for j, d := range ds {
		var zs []*qtree.Node
		for _, ing := range d.Conjuncts() {
			m, err := t.TDQM(ing)
			if err != nil {
				return false, err
			}
			zs = append(zs, m)
		}
		s, err := t.TDQM(d)
		if err != nil {
			return false, err
		}
		branches[j] = branch{z: qtree.AndOf(zs...), s: s}
	}

	for _, tup := range sample {
		for j, b := range branches {
			inZ, err := ev.EvalQuery(b.z, tup)
			if err != nil {
				return false, err
			}
			if !inZ {
				continue
			}
			inS, err := ev.EvalQuery(b.s, tup)
			if err != nil {
				return false, err
			}
			if inS {
				continue
			}
			// Tuple is in the slack Zj ∖ S(D̂j): some other disjunct's
			// mapping must absorb it.
			absorbed := false
			for j2, b2 := range branches {
				if j2 == j {
					continue
				}
				in2, err := ev.EvalQuery(b2.s, tup)
				if err != nil {
					return false, err
				}
				if in2 {
					absorbed = true
					break
				}
			}
			if !absorbed {
				return false, nil // Eq. 8 violated: not separable
			}
		}
	}
	return true, nil
}

// SeparableBase tests the *precise* separability condition of Theorem 3 for
// a base-case conjunction: Q̂ is separable iff every cross-matching m ∈ δ is
// redundant, i.e. S(Ĉ1)···S(Ĉn) ⊆ S(∧(m)). Redundant cross-matchings are
// rare in practice (Example 8's interdependent map attributes are the
// canonical exception), so Algorithm PSafe uses the cheap safety test; this
// function exists to quantify how conservative that test is.
func (t *Translator) SeparableBase(conjuncts []*qtree.ConstraintSet, subsumes SubsumptionOracle) (bool, error) {
	delta, err := t.CrossMatchings(conjuncts)
	if err != nil {
		return false, err
	}
	if len(delta) == 0 {
		return true, nil
	}
	sep := make([]*qtree.Node, 0, len(conjuncts))
	for _, c := range conjuncts {
		res, err := t.SCM(c.Slice())
		if err != nil {
			return false, err
		}
		sep = append(sep, res.Query)
	}
	separated := qtree.And(sep...).Normalize()
	for _, m := range delta {
		res, err := t.SCM(m.Slice())
		if err != nil {
			return false, err
		}
		ok, err := subsumes(res.Query, separated)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil // essential cross-matching: not separable
		}
	}
	return true, nil
}
