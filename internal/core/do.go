package core

import (
	"context"
	"sync"

	"repro/internal/obs"
	"repro/internal/qtree"
)

// Result is the outcome of one translation through Do: the mapped query,
// the filter query F of Eq. 3, and the work Stats of this call alone.
type Result struct {
	// Mapped is the translated query in the target vocabulary.
	Mapped *qtree.Node
	// Filter is F: the part of the original the mediator must re-check so
	// that Q = F ∧ S(Q) (True when the translation is exact).
	Filter *qtree.Node
	// Stats counts the work performed by this call (not the translator's
	// cumulative counters, which keep accumulating across calls).
	Stats Stats
}

// Do is the unified, context-first translation entry point: it maps q with
// the named algorithm and returns the mapped query, the filter query, and
// per-call Stats in one Result. Translate and TranslateWithFilter delegate
// to the same path; Do additionally honors the context — cancellation is
// checked on entry, and a tracer carried by the context (obs.WithTracer)
// is attached for the duration of the call when the translator has none of
// its own.
func (t *Translator) Do(ctx context.Context, q *qtree.Node, algorithm string) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if tracer := obs.TracerFrom(ctx); tracer != nil && t.tracer == nil {
		t.tracer = tracer
		defer func() { t.tracer = nil }()
	}
	before := t.Stats
	mapped, filter, err := t.translateWithFilter(q, algorithm)
	if err != nil {
		return Result{}, err
	}
	return Result{Mapped: mapped, Filter: filter, Stats: t.Stats.sub(before)}, nil
}

// Add accumulates d's counters into s, counter-wise. The mediator's chain
// debug path uses it to sum per-hop translation work into one Stats value
// comparable with the composed single hop.
func (s *Stats) Add(d Stats) {
	s.SCMCalls += d.SCMCalls
	s.MatchRuns += d.MatchRuns
	s.MatchingsFound += d.MatchingsFound
	s.PSafeCalls += d.PSafeCalls
	s.ProductTerms += d.ProductTerms
	s.Disjunctivizations += d.Disjunctivizations
	s.DNFDisjuncts += d.DNFDisjuncts
	s.RuleAttempts += d.RuleAttempts
}

// sub returns the counter-wise difference s - prev.
func (s Stats) sub(prev Stats) Stats {
	return Stats{
		SCMCalls:           s.SCMCalls - prev.SCMCalls,
		MatchRuns:          s.MatchRuns - prev.MatchRuns,
		MatchingsFound:     s.MatchingsFound - prev.MatchingsFound,
		PSafeCalls:         s.PSafeCalls - prev.PSafeCalls,
		ProductTerms:       s.ProductTerms - prev.ProductTerms,
		Disjunctivizations: s.Disjunctivizations - prev.Disjunctivizations,
		DNFDisjuncts:       s.DNFDisjuncts - prev.DNFDisjuncts,
		RuleAttempts:       s.RuleAttempts - prev.RuleAttempts,
	}
}

// BatchResult is one query's outcome in a TranslateBatch call. Err is set
// per item: a query that fails to translate does not abort the batch.
type BatchResult struct {
	Result
	Err error
}

// TranslateBatch maps every query in qs against the translator's spec in a
// single call. Results are identical to a per-query loop of Do — the
// conformance suite asserts item-by-item equality — but the batch amortizes
// shared work:
//
//   - the compiled dispatch engine is forced up front, so no query pays the
//     lazy Spec.Compiled() build;
//   - one matching memo spans the whole batch (safe: the memo only assumes
//     a fixed spec), so constraint groups recurring across the batch's
//     queries are derived once, on top of any attached cross-request
//     MatchCache;
//   - with WithParallelism(n), the batch fans out onto the same bounded
//     worker pool branch mapping uses, slot-or-inline so a full pool can
//     never deadlock.
//
// Cancellation is checked per item: queries not yet started when the
// context is canceled report ctx.Err(). A tracer — attached or carried by
// ctx — forces the batch sequential, like branch mapping.
func (t *Translator) TranslateBatch(ctx context.Context, qs []*qtree.Node, algorithm string) []BatchResult {
	out := make([]BatchResult, len(qs))
	if len(qs) == 0 {
		return out
	}
	if !t.compiledOff {
		t.Spec.Compiled()
	}
	if tracer := obs.TracerFrom(ctx); tracer != nil && t.tracer == nil {
		t.tracer = tracer
		defer func() { t.tracer = nil }()
	}
	// One memo scope for the whole batch: begin at the outermost level so
	// each query's structural entry neither creates nor drops it.
	release := t.begin(true)
	defer release()

	if !t.parallelEligible(len(qs)) {
		for i, q := range qs {
			if err := ctx.Err(); err != nil {
				out[i] = BatchResult{Err: err}
				continue
			}
			r, err := t.Do(ctx, q, algorithm)
			out[i] = BatchResult{Result: r, Err: err}
		}
		return out
	}

	subs := make([]*Translator, len(qs))
	var wg sync.WaitGroup
	for i := range qs {
		if err := ctx.Err(); err != nil {
			out[i] = BatchResult{Err: err}
			continue
		}
		sub := t.fork()
		subs[i] = sub
		run := func(i int, sub *Translator) {
			mapped, filter, err := sub.translateWithFilter(qs[i], algorithm)
			if err != nil {
				out[i] = BatchResult{Err: err}
				return
			}
			out[i] = BatchResult{Result: Result{Mapped: mapped, Filter: filter, Stats: sub.Stats}}
		}
		select {
		case t.sem <- struct{}{}:
			wg.Add(1)
			go func(i int, sub *Translator) {
				defer wg.Done()
				defer func() { <-t.sem }()
				run(i, sub)
			}(i, sub)
		default:
			run(i, sub)
		}
	}
	wg.Wait()
	for _, sub := range subs {
		if sub != nil {
			t.merge(sub)
		}
	}
	return out
}
