package core_test

import (
	"testing"

	"repro/internal/conformance"
	"repro/internal/core"
	"repro/internal/obs"
)

// TestParallelMatchesSequential is the parallel branch-mapping contract:
// with a worker pool configured, TDQM and DNF produce EqualCanonical
// queries, identical residues, and — because child translators merge in
// deterministic branch order — identical Stats to the sequential path,
// across the conformance seed corpus. Run under -race in CI, this also
// exercises the shared memo and the lazily published qtree caches from
// concurrent branches.
func TestParallelMatchesSequential(t *testing.T) {
	algs := []string{core.AlgTDQM, core.AlgDNF}
	for seed := int64(1); seed <= 40; seed++ {
		c := conformance.NewCase(seed)
		for _, alg := range algs {
			seq := core.NewTranslator(c.S.Spec)
			wantQ, wantF, wantErr := seq.TranslateWithFilter(c.Query, alg)

			par := core.NewTranslator(c.S.Spec)
			par.SetParallelism(8)
			gotQ, gotF, gotErr := par.TranslateWithFilter(c.Query, alg)

			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("seed %d %s: parallel err=%v, sequential err=%v", seed, alg, gotErr, wantErr)
			}
			if wantErr != nil {
				continue
			}
			if !gotQ.EqualCanonical(wantQ) {
				t.Errorf("seed %d (%s) %s: parallel mapped query differs\n got: %s\nwant: %s",
					seed, c.SeedString(), alg, gotQ, wantQ)
			}
			if !gotF.EqualCanonical(wantF) {
				t.Errorf("seed %d (%s) %s: parallel residue differs\n got: %s\nwant: %s",
					seed, c.SeedString(), alg, gotF, wantF)
			}
			if par.Stats != seq.Stats {
				t.Errorf("seed %d %s: parallel Stats diverged\n got: %+v\nwant: %+v",
					seed, alg, par.Stats, seq.Stats)
			}
		}
	}
}

// TestParallelSkippedUnderTracing pins the bypass rule: a traced translation
// must stay sequential (span trees are ordered artifacts), and its trace
// must equal the trace of a translator with no parallelism configured.
func TestParallelSkippedUnderTracing(t *testing.T) {
	c := conformance.NewCase(5)

	run := func(workers int) string {
		tr := core.NewTranslator(c.S.Spec)
		tr.SetParallelism(workers)
		tracer := obs.NewTracer()
		tr.SetTracer(tracer)
		if _, _, err := tr.TranslateWithFilter(c.Query, core.AlgTDQM); err != nil {
			t.Fatal(err)
		}
		if err := obs.Verify(tracer.Root()); err != nil {
			t.Fatalf("workers=%d: trace fails invariants: %v", workers, err)
		}
		js, err := tracer.Root().MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		return string(js)
	}

	if got, want := run(8), run(1); got != want {
		t.Errorf("traced translation differs with a worker pool configured:\n got: %s\nwant: %s", got, want)
	}
}
