package core_test

import (
	"testing"

	"repro/internal/boolex"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/qparse"
	"repro/internal/qtree"
	"repro/internal/rules"
	"repro/internal/sources"
	"repro/internal/values"
)

// TestExample9GeneralSafety reproduces Example 9: for
// Q̂ = (I11 ∨ I12)(I21) with no cross-ingredient dependencies, every
// ingredient conjunction is safe and therefore so is the whole conjunction.
func TestExample9GeneralSafety(t *testing.T) {
	tr := core.NewTranslator(sources.NewAmazon().Spec)
	// Ingredients over independent attributes (publisher / id-no /
	// category have only singleton matchings at Amazon).
	c1 := qparse.MustParse(`[publisher = "a"] or [publisher = "b"]`)
	c2 := qparse.MustParse(`[id-no = "123456789X"]`)
	safe, err := tr.Safe([]*qtree.Node{c1, c2})
	if err != nil {
		t.Fatal(err)
	}
	if !safe {
		t.Error("(I11 ∨ I12)(I21) with independent ingredients reported unsafe")
	}
}

// anomalySpec builds the Section 7.1.2 anomaly scenario: constraints x, y,
// z where {y, z} is a matching and x has no mapping at all
// (S(x) = True, so S(xz) = S(z)).
func anomalySpec(t *testing.T) *rules.Spec {
	t.Helper()
	// Note YZ's emission must be the *minimal* subsuming mapping of y ∧ z
	// (Definition 3): since the target supports tz too, that is
	// [tyz = A] ∧ [tz = B], not [tyz = A] alone.
	rs := rules.MustParseRules(`
rule YZ {
  match [y = A], [z = B];
  where Value(A), Value(B);
  emit exact [tyz = A] and [tz = B];
}
rule Z {
  match [z = B];
  where Value(B);
  emit exact [tz = B];
}
`)
	target := rules.NewTarget("anomaly",
		rules.Capability{Attr: "tyz", Op: qtree.OpEq},
		rules.Capability{Attr: "tz", Op: qtree.OpEq},
	)
	return rules.MustSpec("K_anomaly", target, rules.NewRegistry(), rs...)
}

// TestDefinition6Anomaly reproduces the Section 7.1.2 "anomaly": the
// conjunction (x ∨ y)(z) is UNSAFE by Definition 6 (the term (y)(z) has the
// cross-matching {y,z}) yet actually separable, because S(x) = True masks
// the unsafe term. The safety test is conservative: PSafe groups the
// conjuncts, and the resulting mapping — while less succinct — must still
// be logically equivalent to the separated one (both are minimal).
func TestDefinition6Anomaly(t *testing.T) {
	tr := core.NewTranslator(anomalySpec(t))
	q := qparse.MustParse(`([x = 1] or [y = 1]) and [z = 1]`).Normalize()

	safe, err := tr.Safe(q.Kids)
	if err != nil {
		t.Fatal(err)
	}
	if safe {
		t.Error("(x ∨ y)(z) reported safe; Definition 6 classifies it unsafe")
	}
	p, err := tr.PSafe(q.Kids)
	if err != nil {
		t.Fatal(err)
	}
	if p.Separable {
		t.Errorf("PSafe separated the unsafe conjunction: %s", p)
	}

	// The conservative (grouped) mapping and the separated mapping are both
	// correct here: S((x∨y)z) = S(x∨y) ∧ S(z) = S(z) = [tz = 1].
	grouped, err := tr.TDQM(q)
	if err != nil {
		t.Fatal(err)
	}
	c1Map, err := tr.DNFMap(q.Kids[0])
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.SCMQuery(q.Kids[1])
	if err != nil {
		t.Fatal(err)
	}
	separated := qtree.AndOf(c1Map, res.Query)
	eq, err := boolex.Equivalent(grouped, separated)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Errorf("anomaly case: grouped %s and separated %s mappings differ", grouped, separated)
	}
	// And both reduce to S(z): the y-branch's stricter [tyz] mapping stays
	// inside a disjunct that the x-branch's True-mapped disjunct absorbs
	// semantically.
	want := qparse.MustParse(`[tz = 1]`)
	if ok, _ := boolex.Equivalent(grouped, want); !ok {
		t.Errorf("grouped mapping %s not equivalent to S(z) = %s", grouped, want)
	}
}

// TestTheorem4GeneralSeparability: the Section 7.1.2 anomaly, completed.
// Definition 6 calls (x ∨ y)(z) unsafe, but the precise Theorem 4 test —
// evaluated exhaustively over the value grid — certifies it IS separable:
// the unsafe term's slack is absorbed because S(x) = True masks it.
// The inseparable control case (pyear)(pmonth ∨ publisher at Amazon)
// fails the same test.
func TestTheorem4GeneralSeparability(t *testing.T) {
	tr := core.NewTranslator(anomalySpec(t))
	q := qparse.MustParse(`([x = 1] or [y = 1]) and [z = 1]`).Normalize()

	// Exhaustive sample over the anomaly vocabulary: x,y,z ∈ {0,1} with
	// derived tyz = y and tz = z.
	var sample []engine.Tuple
	ev := engine.NewEvaluator()
	for x := 0; x <= 1; x++ {
		for y := 0; y <= 1; y++ {
			for z := 0; z <= 1; z++ {
				tup := make(engine.Tuple)
				tup.Set(qtree.A("x"), values.Int(int64(x)))
				tup.Set(qtree.A("y"), values.Int(int64(y)))
				tup.Set(qtree.A("z"), values.Int(int64(z)))
				tup.Set(qtree.A("tyz"), values.Int(int64(y)))
				tup.Set(qtree.A("tz"), values.Int(int64(z)))
				sample = append(sample, tup)
			}
		}
	}
	sep, err := tr.SeparableGeneral(q.Kids, ev, sample)
	if err != nil {
		t.Fatal(err)
	}
	if !sep {
		t.Error("Theorem 4 should certify (x ∨ y)(z) separable (the anomaly)")
	}

	// Control: a truly inseparable conjunction at Amazon —
	// (pyear)(pmonth ∨ publisher); the pyear∧pmonth branch loses the
	// combined date if separated.
	am := sources.NewAmazon()
	amTr := core.NewTranslator(am.Spec)
	qa := qparse.MustParse(`[pyear = 1997] and ([pmonth = 5] or [publisher = "x"])`).Normalize()
	var books []engine.Tuple
	for _, bk := range sources.GenBooks(3, 200) {
		books = append(books, bk.Tuple())
	}
	sep, err = amTr.SeparableGeneral(qa.Kids, am.Eval, books)
	if err != nil {
		t.Fatal(err)
	}
	if sep {
		t.Error("Theorem 4 should refute separability of (pyear)(pmonth ∨ publisher)")
	}
}

// TestSafetyMatchesPartitionSeparability: Safe ⟺ PSafe finds zero
// cross-matchings ⟺ fully separable partition, across the paper's
// fixtures.
func TestSafetyMatchesPartitionSeparability(t *testing.T) {
	tr := core.NewTranslator(sources.NewAmazon().Spec)
	cases := []struct {
		q    string
		safe bool
	}{
		{`[publisher = "a"] and ([category = "D.3"] or [category = "H.2"])`, true},
		{`[pyear = 1997] and ([pmonth = 5] or [pmonth = 6])`, false},
		{`([ln = "a"] or [ln = "b"]) and [fn = "c"]`, false},
		{`([ln = "a"] or [ln = "b"]) and ([pyear = 1997] or [publisher = "x"])`, true},
	}
	for _, c := range cases {
		q := qparse.MustParse(c.q).Normalize()
		safe, err := tr.Safe(q.Conjuncts())
		if err != nil {
			t.Fatal(err)
		}
		if safe != c.safe {
			t.Errorf("Safe(%s) = %v, want %v", c.q, safe, c.safe)
		}
	}
}
