package core_test

import (
	"testing"

	"repro/internal/boolex"
	"repro/internal/core"
	"repro/internal/qparse"
	"repro/internal/sources"
)

// TestSCMNoSuppressionIsLooser: without submatching suppression the output
// conjoins redundant weaker emissions (R7's year-only date alongside R6's
// month date). The result remains logically equivalent on data but is
// strictly larger syntactically.
func TestSCMNoSuppressionIsLooser(t *testing.T) {
	am := sources.NewAmazon()
	tr := core.NewTranslator(am.Spec)
	q := qparse.MustParse(`[pyear = 1997] and [pmonth = 5]`)
	cs := q.SimpleConjuncts()

	res, err := tr.SCM(cs)
	if err != nil {
		t.Fatal(err)
	}
	noSup, err := tr.SCMNoSuppression(cs)
	if err != nil {
		t.Fatal(err)
	}
	if noSup.Size() <= res.Query.Size() {
		t.Errorf("no-suppression output (%d nodes) not larger than SCM output (%d nodes)",
			noSup.Size(), res.Query.Size())
	}
	// The redundant conjunct must be the year-only pdate constraint.
	found := false
	for _, c := range noSup.Constraints() {
		if c.String() == "[pdate during 97]" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected redundant [pdate during 97] in %s", noSup)
	}
}

// TestTDQMNoPartitionEquivalentButLarger: skipping PSafe still yields a
// correct mapping (it is the DNF approach applied level by level) but
// destroys structure that TDQM preserves.
func TestTDQMNoPartitionEquivalentButLarger(t *testing.T) {
	am := sources.NewAmazon()
	qbook := qparse.MustParse(
		`(([ln = "Smith"] and [fn = "John"]) or [kwd contains web] or [kwd contains java]) ` +
			`and [pyear = 1997] and ([pmonth = 5] or [pmonth = 6])`)

	tr := core.NewTranslator(am.Spec)
	withPSafe, err := tr.TDQM(qbook)
	if err != nil {
		t.Fatal(err)
	}
	without, err := tr.TDQMNoPartition(qbook)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := boolex.Equivalent(withPSafe, without)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatalf("ablated TDQM differs logically\nwith:    %s\nwithout: %s", withPSafe, without)
	}
	if without.Size() <= withPSafe.Size() {
		t.Errorf("no-partition output (%d nodes) not larger than TDQM output (%d nodes)",
			without.Size(), withPSafe.Size())
	}
}

// TestFullDNFSafetySamePartition: Lemma 3 — PSafe computes identical
// partitions with essential and with full DNF; only the examined term count
// differs.
func TestFullDNFSafetySamePartition(t *testing.T) {
	am := sources.NewAmazon()
	qbook := qparse.MustParse(
		`(([ln = "Smith"] and [fn = "John"]) or [kwd contains web] or [kwd contains java]) ` +
			`and [pyear = 1997] and ([pmonth = 5] or [pmonth = 6])`).Normalize()

	ednfTr := core.NewTranslator(am.Spec)
	pE, err := ednfTr.PSafe(qbook.Kids)
	if err != nil {
		t.Fatal(err)
	}
	fullTr := core.NewTranslator(am.Spec)
	fullTr.SetFullDNFSafety(true)
	pF, err := fullTr.PSafe(qbook.Kids)
	if err != nil {
		t.Fatal(err)
	}
	if pE.String() != pF.String() {
		t.Errorf("partitions differ: EDNF %s vs full DNF %s", pE, pF)
	}
	if fullTr.Stats.ProductTerms <= ednfTr.Stats.ProductTerms {
		t.Errorf("full DNF examined %d terms, EDNF %d — expected full DNF to examine more",
			fullTr.Stats.ProductTerms, ednfTr.Stats.ProductTerms)
	}
}
