// Package core implements the paper's query-mapping algorithms:
//
//   - Algorithm SCM (Figure 4): minimal subsuming mapping of simple
//     conjunctions via rule matching and submatching suppression.
//   - Algorithm DNF (Figure 6): the baseline for complex queries — global
//     DNF conversion, then SCM per disjunct.
//   - Procedure EDNF (Figure 10): essential-DNF computation for cheap
//     separability (safety) testing.
//   - Algorithm PSafe (Figure 11): safe, minimal partitioning of the
//     conjuncts of an ∧-node by covering cross-matchings.
//   - Algorithm TDQM (Figure 8): top-down query mapping that rewrites query
//     structure locally and only when dependencies require it.
//
// All algorithms take a mapping specification (internal/rules.Spec) that is
// assumed sound and complete (Definitions 3–4); under that assumption the
// outputs are minimal subsuming mappings (Theorems 1, 2).
package core

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/qtree"
	"repro/internal/rules"
)

// Stats counts the work performed during a translation; the benchmark
// harness uses it to reproduce the paper's cost claims (Sections 4.4, 8).
type Stats struct {
	// SCMCalls counts invocations of Algorithm SCM.
	SCMCalls int
	// MatchRuns counts rule-matching passes (M(·, K) evaluations).
	MatchRuns int
	// MatchingsFound counts matchings produced across all passes.
	MatchingsFound int
	// PSafeCalls counts conjunct-partitioning invocations.
	PSafeCalls int
	// ProductTerms counts product terms (disjuncts) examined during safety
	// checking — the 2^{ne} / 2^{nk} quantity of Section 8.
	ProductTerms int
	// Disjunctivizations counts local structure rewritings performed.
	Disjunctivizations int
	// DNFDisjuncts counts disjuncts processed by Algorithm DNF.
	DNFDisjuncts int
}

// Translator binds a mapping specification and accumulates statistics.
// Its methods are not safe for concurrent use; create one per goroutine.
type Translator struct {
	Spec  *rules.Spec
	Stats Stats

	// residueClean tracks, during TranslateWithFilter, whether every SCM
	// invocation realized its conjunction exactly (empty residue).
	residueClean bool
	// fullDNFSafety switches the safety machinery to full DNF (ablation;
	// see SetFullDNFSafety).
	fullDNFSafety bool
	// trace, when non-nil, collects derivation steps (see SetTrace).
	trace *Trace
	// tracer, when non-nil, records the span tree of the translation
	// (see SetTracer); metrics, when non-nil, feeds cumulative per-rule
	// and per-algorithm counters (see SetMetrics).
	tracer  *obs.Tracer
	metrics *obs.TranslationMetrics
	// traceDepth and depSupport implement the essentialDNFSize counter:
	// the dependent-constraint support of the top-level traced query and
	// the recursion depth that scopes it (see traceEnter).
	traceDepth int
	depSupport map[string]bool
}

// NewTranslator returns a translator for spec.
func NewTranslator(spec *rules.Spec) *Translator {
	return &Translator{Spec: spec}
}

// ResetStats zeroes the statistics counters.
func (t *Translator) ResetStats() { t.Stats = Stats{} }

// matchings runs M(·, K) with counting.
func (t *Translator) matchings(cs []*qtree.Constraint) ([]*rules.Matching, error) {
	t.Stats.MatchRuns++
	ms, err := t.Spec.Matchings(cs)
	if err != nil {
		return nil, err
	}
	t.Stats.MatchingsFound += len(ms)
	return ms, nil
}

// Algorithm names accepted by Translate.
const (
	AlgSCM  = "scm"
	AlgDNF  = "dnf"
	AlgTDQM = "tdqm"
	// AlgCNF is the Garlic-style dependency-blind baseline (see CNFMap);
	// its output subsumes the original but is generally not minimal.
	AlgCNF = "cnf"
)

// Translate maps q with the named algorithm. AlgSCM requires a simple
// conjunction; AlgDNF, AlgTDQM and AlgCNF accept arbitrary ∧/∨ queries.
func (t *Translator) Translate(q *qtree.Node, algorithm string) (*qtree.Node, error) {
	switch algorithm {
	case AlgSCM:
		q = q.Normalize()
		if !q.IsSimpleConjunction() {
			return nil, fmt.Errorf("core: %s is not a simple conjunction; use %s or %s",
				q, AlgDNF, AlgTDQM)
		}
		res, err := t.SCM(q.SimpleConjuncts())
		if err != nil {
			return nil, err
		}
		return res.Query, nil
	case AlgDNF:
		return t.DNFMap(q)
	case AlgTDQM:
		return t.TDQM(q)
	case AlgCNF:
		return t.CNFMap(q)
	default:
		return nil, fmt.Errorf("core: unknown algorithm %q", algorithm)
	}
}
