// Package core implements the paper's query-mapping algorithms:
//
//   - Algorithm SCM (Figure 4): minimal subsuming mapping of simple
//     conjunctions via rule matching and submatching suppression.
//   - Algorithm DNF (Figure 6): the baseline for complex queries — global
//     DNF conversion, then SCM per disjunct.
//   - Procedure EDNF (Figure 10): essential-DNF computation for cheap
//     separability (safety) testing.
//   - Algorithm PSafe (Figure 11): safe, minimal partitioning of the
//     conjuncts of an ∧-node by covering cross-matchings.
//   - Algorithm TDQM (Figure 8): top-down query mapping that rewrites query
//     structure locally and only when dependencies require it.
//
// All algorithms take a mapping specification (internal/rules.Spec) that is
// assumed sound and complete (Definitions 3–4); under that assumption the
// outputs are minimal subsuming mappings (Theorems 1, 2).
package core

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/qtree"
	"repro/internal/rules"
)

// Stats counts the work performed during a translation; the benchmark
// harness uses it to reproduce the paper's cost claims (Sections 4.4, 8).
type Stats struct {
	// SCMCalls counts invocations of Algorithm SCM.
	SCMCalls int
	// MatchRuns counts rule-matching passes (M(·, K) evaluations).
	MatchRuns int
	// MatchingsFound counts matchings produced across all passes.
	MatchingsFound int
	// PSafeCalls counts conjunct-partitioning invocations.
	PSafeCalls int
	// ProductTerms counts product terms (disjuncts) examined during safety
	// checking — the 2^{ne} / 2^{nk} quantity of Section 8.
	ProductTerms int
	// Disjunctivizations counts local structure rewritings performed.
	Disjunctivizations int
	// DNFDisjuncts counts disjuncts processed by Algorithm DNF.
	DNFDisjuncts int
	// RuleAttempts counts rules actually probed for matchings across all
	// match runs. With the compiled dispatch engine this is the number of
	// rules the index could not reject; the uncompiled path probes every
	// rule of the spec on every run.
	RuleAttempts int
}

// Translator binds a mapping specification and accumulates statistics.
// Its methods are not safe for concurrent use; create one per goroutine.
type Translator struct {
	Spec  *rules.Spec
	Stats Stats

	// residueClean tracks, during TranslateWithFilter, whether every SCM
	// invocation realized its conjunction exactly (empty residue).
	residueClean bool
	// fullDNFSafety switches the safety machinery to full DNF (ablation;
	// see SetFullDNFSafety).
	fullDNFSafety bool
	// trace, when non-nil, collects derivation steps (see SetTrace).
	trace *Trace
	// tracer, when non-nil, records the span tree of the translation
	// (see SetTracer); metrics, when non-nil, feeds cumulative per-rule
	// and per-algorithm counters (see SetMetrics).
	tracer  *obs.Tracer
	metrics *obs.TranslationMetrics
	// traceDepth and depSupport implement the essentialDNFSize counter:
	// the dependent-constraint support of the top-level traced query and
	// the recursion depth that scopes it (see traceEnter).
	traceDepth int
	depSupport map[string]bool

	// compiledOff and memoOff disable the compiled dispatch engine and the
	// translation-scoped matching memo; both are enabled by default (see
	// SetCompiled, SetMemo).
	compiledOff bool
	memoOff     bool
	// memo is the translation-scoped matching cache; ownMemo marks the
	// translator that created it and drops it when the outermost structural
	// call returns; depth scopes that lifetime (see begin).
	memo      *matchMemo
	ownMemo   bool
	depth     int
	memoStats MemoStats
	// shared, when non-nil, is the cross-request matchings cache consulted
	// after the translation-scoped memo (see SetMatchCache / MatchCache).
	shared *MatchCache
	// plan, when non-nil, is the cross-request translation plan: cached
	// TDQM/PSafe/EDNF/SCM fragments looked up by exact query shape, with
	// Stats and metrics replayed on hits (see SetPlan / Plan, plan.go).
	// planFrames is the stack of open recording scopes accumulating the
	// metric activity a cached fragment must replay.
	plan       *Plan
	planFrames []*planAgg
	// scratch holds per-translator reusable buffers for the EDNF/PSafe
	// allocation diet; forks get fresh scratch (see ednf.go, psafe.go).
	scratch struct {
		nullify []bool
	}
	// workers and sem implement bounded parallel branch mapping
	// (see SetParallelism).
	workers int
	sem     chan struct{}
}

// NewTranslator returns a translator for spec, configured by the given
// functional options (see Option and the With* constructors in options.go).
func NewTranslator(spec *rules.Spec, opts ...Option) *Translator {
	t := &Translator{Spec: spec}
	for _, opt := range opts {
		opt(t)
	}
	return t
}

// ResetStats zeroes the statistics counters.
func (t *Translator) ResetStats() { t.Stats = Stats{} }

// SetCompiled enables or disables the compiled rule-dispatch engine
// (rules.CompiledSpec). It is enabled by default; disabling it restores the
// scan-every-rule path, which produces identical matchings at higher cost
// (the equivalence the tests in memo_test.go assert).
func (t *Translator) SetCompiled(on bool) { t.compiledOff = !on }

// SetMatchCache attaches (or detaches, with nil) a shared cross-request
// matchings cache. Results and Stats are identical with or without one —
// hits replay recorded matchings with exact counter compensation — so the
// cache is observable only through its own MatchCacheStats.
//
// Deprecated: prefer the WithMatchCache option at construction time.
func (t *Translator) SetMatchCache(c *MatchCache) { WithMatchCache(c)(t) }

// MatchCache returns the attached shared matchings cache, or nil.
func (t *Translator) MatchCache() *MatchCache { return t.shared }

// SetMemo enables or disables the translation-scoped matching memo. It is
// enabled by default; results are identical either way — the memo replays
// previously derived matchings (with exact Stats compensation) instead of
// re-deriving them.
func (t *Translator) SetMemo(on bool) {
	t.memoOff = !on
	if !on && t.ownMemo {
		t.memo = nil
		t.ownMemo = false
	}
}

// matchings runs M(·, K) with counting, consulting the translation-scoped
// memo and then the shared cross-request MatchCache when either is in
// scope. Hits replay the recorded matchings and compensate the work
// counters exactly, so Stats are indistinguishable from a cache-free run.
// Under tracing both layers are bypass-or-record: lookups are skipped
// (every run must emit its match spans) but results are still recorded, so
// untraced work — in this translation or a later request — can reuse them
// and golden traces stay byte-identical.
func (t *Translator) matchings(cs []*qtree.Constraint) ([]*rules.Matching, error) {
	t.Stats.MatchRuns++
	var key string
	if t.memo != nil || t.shared != nil {
		key = memoKey(cs)
	}
	if t.tracer == nil {
		if t.memo != nil {
			if e, ok := t.memo.get(key); ok {
				t.memoStats.Hits++
				t.Stats.MatchingsFound += len(e.ms)
				t.Stats.RuleAttempts += e.probed
				return e.ms, nil
			}
		}
		if t.shared != nil {
			if e, ok := t.shared.get(t.Spec, key); ok {
				if t.memo != nil {
					// Replay into the memo so later lookups in this
					// translation stay local (no shard lock).
					t.memo.put(key, e.ms, e.probed)
					t.memoStats.Misses++
				}
				t.Stats.MatchingsFound += len(e.ms)
				t.Stats.RuleAttempts += e.probed
				return e.ms, nil
			}
		}
	} else if t.shared != nil {
		t.shared.noteBypass()
	}
	if t.memo != nil {
		t.memoStats.Misses++
	}
	ms, probed, err := t.runMatchings(cs)
	if err != nil {
		return nil, err
	}
	t.Stats.MatchingsFound += len(ms)
	t.Stats.RuleAttempts += probed
	if t.memo != nil {
		t.memo.put(key, ms, probed)
	}
	if t.shared != nil {
		t.shared.put(t.Spec, key, ms, probed)
	}
	return ms, nil
}

// runMatchings is the uncached matching pass: compiled dispatch unless
// disabled. It returns the matchings and the number of rules probed.
func (t *Translator) runMatchings(cs []*qtree.Constraint) ([]*rules.Matching, int, error) {
	if t.compiledOff {
		ms, err := t.Spec.Matchings(cs)
		return ms, len(t.Spec.Rules), err
	}
	return t.Spec.Compiled().MatchingsCounted(cs)
}

// candidateRules returns the rules a matching pass over cs will probe, in
// specification order — the compiled engine's candidates, or every rule
// when compilation is disabled. The tracing layer iterates these so traced
// and untraced translations count identical RuleAttempts.
func (t *Translator) candidateRules(cs []*qtree.Constraint) []*rules.Rule {
	if t.compiledOff {
		return t.Spec.Rules
	}
	return t.Spec.Compiled().CandidateRules(cs)
}

// Algorithm names accepted by Translate.
const (
	AlgSCM  = "scm"
	AlgDNF  = "dnf"
	AlgTDQM = "tdqm"
	// AlgCNF is the Garlic-style dependency-blind baseline (see CNFMap);
	// its output subsumes the original but is generally not minimal.
	AlgCNF = "cnf"
)

// Translate maps q with the named algorithm. AlgSCM requires a simple
// conjunction; AlgDNF, AlgTDQM and AlgCNF accept arbitrary ∧/∨ queries.
func (t *Translator) Translate(q *qtree.Node, algorithm string) (*qtree.Node, error) {
	switch algorithm {
	case AlgSCM:
		q = q.Normalize()
		if !q.IsSimpleConjunction() {
			return nil, fmt.Errorf("core: %s is not a simple conjunction; use %s or %s",
				q, AlgDNF, AlgTDQM)
		}
		res, err := t.SCM(q.SimpleConjuncts())
		if err != nil {
			return nil, err
		}
		return res.Query, nil
	case AlgDNF:
		return t.DNFMap(q)
	case AlgTDQM:
		return t.TDQM(q)
	case AlgCNF:
		return t.CNFMap(q)
	default:
		return nil, fmt.Errorf("core: unknown algorithm %q", algorithm)
	}
}
