// Package qparse implements a parser for the textual constraint-query
// language used throughout the paper's examples:
//
//	[ln = "Clancy"] and ([fn = "Tom"] or [kwd contains data(near)mining])
//
// Constraints are bracketed; attributes may be view-qualified with instance
// indexes (fac[1].ln); values are quoted strings, numbers, dates (May/97),
// text patterns (java(near)jdk), ranges ((10:30)) and points ((10,20));
// a bare dotted identifier on the right-hand side denotes a join attribute.
package qparse

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokLParen
	tokRParen
	tokAnd
	tokOr
	tokTrue
	tokConstraint // a whole bracketed constraint, raw text without brackets
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokConstraint:
		return "[" + t.text + "]"
	default:
		return t.text
	}
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the whole input. Bracketed constraints are captured raw;
// splitting their interior is the parser's job since values may contain
// parentheses and spaces.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(tokEOF, "")
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case c == '(':
			l.emit(tokLParen, "(")
			l.pos++
		case c == ')':
			l.emit(tokRParen, ")")
			l.pos++
		case c == '[':
			start := l.pos + 1
			depth := 1
			i := start
			inStr := false
			for ; i < len(l.src); i++ {
				ch := l.src[i]
				if inStr {
					if ch == '"' {
						inStr = false
					}
					continue
				}
				switch ch {
				case '"':
					inStr = true
				case '[':
					depth++
				case ']':
					depth--
				}
				if depth == 0 {
					break
				}
			}
			if i >= len(l.src) {
				return nil, fmt.Errorf("qparse: unterminated constraint at offset %d", l.pos)
			}
			l.emit(tokConstraint, l.src[start:i])
			l.pos = i + 1
		case isWordStart(rune(c)):
			start := l.pos
			for l.pos < len(l.src) && isWordPart(rune(l.src[l.pos])) {
				l.pos++
			}
			w := l.src[start:l.pos]
			switch strings.ToLower(w) {
			case "and":
				l.toks = append(l.toks, token{tokAnd, w, start})
			case "or":
				l.toks = append(l.toks, token{tokOr, w, start})
			case "true":
				l.toks = append(l.toks, token{tokTrue, w, start})
			default:
				return nil, fmt.Errorf("qparse: unexpected word %q at offset %d", w, start)
			}
		default:
			return nil, fmt.Errorf("qparse: unexpected character %q at offset %d", c, l.pos)
		}
	}
}

func (l *lexer) emit(k tokKind, text string) {
	l.toks = append(l.toks, token{k, text, l.pos})
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
}

func isWordStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isWordPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
