package qparse

import (
	"testing"
)

// FuzzParse checks the parser never panics, that successfully parsed
// queries survive a print→reparse round trip canonically, and that printing
// reaches a fixpoint after two rounds (print(parse(print(q))) == print(q)).
func FuzzParse(f *testing.F) {
	seeds := []string{
		`[ln = "Clancy"] and [fn = "Tom"]`,
		`([a = 1] or [b = 2]) and [c = 3]`,
		`[fac[1].ln = fac[2].ln]`,
		`[ti contains java(near)jdk]`,
		`[pdate during 12/May/97] or [x = (10:30)] or [y = (1,2)]`,
		`TRUE`,
		`[a = "unterminated`,
		`[[nested] = 1]`,
		`[a <= -4.5]`,
		`((((`,
		// negative numerics, integer and float, on both comparison sides
		`[a = -1] and [b > -0.25] or [c < -99999999]`,
		`[a != -0]`,
		// deeply nested parenthesization (depth >= 6)
		`(((((([deep = 1]))))))`,
		`((((((([a = 1] or [b = 2]) and [c = 3]) or [d = 4]) and [e = 5]) or [f = 6]) and [g = 7])`,
		// proximity / connective patterns and during periods
		`[ti contains data(^)mining] and [su contains a(v)b(v)c]`,
		`[abstract contains one(near)two(near)three]`,
		`[pdate during May/97] and [rdate during 1997]`,
		// tuple and time values of Example 8's map source
		`[Cll = (10,20)] and [Cur = (30,40)]`,
		`[when = (23:59)] or [when = (0:0)]`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		printed := q.String()
		rt, err := Parse(printed)
		if err != nil {
			t.Fatalf("re-parse of printed query %q failed: %v", printed, err)
		}
		if !rt.EqualCanonical(q) {
			t.Fatalf("round trip changed query:\noriginal: %s\nreparsed: %s", q, rt)
		}
		// Two-round fixpoint: printing is stable once a query has been
		// through parse→print→parse, so reproducers and cache keys derived
		// from printed form never drift.
		printed2 := rt.String()
		rt2, err := Parse(printed2)
		if err != nil {
			t.Fatalf("re-parse of second printing %q failed: %v", printed2, err)
		}
		if got := rt2.String(); got != printed2 {
			t.Fatalf("printing not a fixpoint after two rounds:\nfirst:  %s\nsecond: %s", printed2, got)
		}
	})
}
