package qparse

import (
	"testing"
)

// FuzzParse checks the parser never panics and that successfully parsed
// queries survive a print→reparse round trip canonically.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`[ln = "Clancy"] and [fn = "Tom"]`,
		`([a = 1] or [b = 2]) and [c = 3]`,
		`[fac[1].ln = fac[2].ln]`,
		`[ti contains java(near)jdk]`,
		`[pdate during 12/May/97] or [x = (10:30)] or [y = (1,2)]`,
		`TRUE`,
		`[a = "unterminated`,
		`[[nested] = 1]`,
		`[a <= -4.5]`,
		`((((`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		printed := q.String()
		rt, err := Parse(printed)
		if err != nil {
			t.Fatalf("re-parse of printed query %q failed: %v", printed, err)
		}
		if !rt.EqualCanonical(q) {
			t.Fatalf("round trip changed query:\noriginal: %s\nreparsed: %s", q, rt)
		}
	})
}
