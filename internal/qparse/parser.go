package qparse

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/qtree"
	"repro/internal/values"
)

// Parse parses a constraint query. The result is normalized (alternating
// ∧/∨, duplicates removed).
func Parse(src string) (*qtree.Node, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.orExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("qparse: trailing input at %s", p.peek())
	}
	return q.Normalize(), nil
}

// MustParse is Parse that panics on error; intended for tests and fixtures.
func MustParse(src string) *qtree.Node {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

// ParseConstraint parses a single constraint without surrounding brackets,
// e.g. `ln = "Clancy"` or with them, e.g. `[ln = "Clancy"]`.
func ParseConstraint(src string) (*qtree.Constraint, error) {
	s := strings.TrimSpace(src)
	s = strings.TrimPrefix(s, "[")
	s = strings.TrimSuffix(s, "]")
	return parseConstraintBody(s)
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) orExpr() (*qtree.Node, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	kids := []*qtree.Node{left}
	for p.peek().kind == tokOr {
		p.next()
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return qtree.Or(kids...), nil
}

func (p *parser) andExpr() (*qtree.Node, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	kids := []*qtree.Node{left}
	for p.peek().kind == tokAnd {
		p.next()
		right, err := p.unary()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return qtree.And(kids...), nil
}

func (p *parser) unary() (*qtree.Node, error) {
	switch t := p.peek(); t.kind {
	case tokLParen:
		p.next()
		q, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if p.peek().kind != tokRParen {
			return nil, fmt.Errorf("qparse: expected ) at %s", p.peek())
		}
		p.next()
		return q, nil
	case tokTrue:
		p.next()
		return qtree.True(), nil
	case tokConstraint:
		p.next()
		c, err := parseConstraintBody(t.text)
		if err != nil {
			return nil, err
		}
		return qtree.Leaf(c), nil
	default:
		return nil, fmt.Errorf("qparse: expected constraint or ( at %s", t)
	}
}

// operators ordered longest-first so that "<=" wins over "<".
var opTokens = []string{
	qtree.OpContains, qtree.OpStarts, qtree.OpDuring,
	qtree.OpNe, qtree.OpLe, qtree.OpGe, qtree.OpEq, qtree.OpLt, qtree.OpGt,
}

// parseConstraintBody splits "attr op rhs" and builds the constraint.
func parseConstraintBody(s string) (*qtree.Constraint, error) {
	lhs, op, rhs, err := SplitConstraint(s)
	if err != nil {
		return nil, err
	}
	attr, err := ParseAttr(lhs)
	if err != nil {
		return nil, err
	}
	// Join constraint: the right-hand side is an attribute reference for
	// comparison operators when it parses as a dotted/indexed identifier.
	if op != qtree.OpContains && op != qtree.OpStarts && op != qtree.OpDuring {
		if looksLikeAttr(rhs) {
			rattr, err := ParseAttr(rhs)
			if err != nil {
				return nil, err
			}
			return qtree.Join(attr, op, rattr), nil
		}
	}
	val, err := ParseValue(rhs, op)
	if err != nil {
		return nil, err
	}
	return qtree.Sel(attr, op, val), nil
}

// SplitConstraint splits a constraint body "lhs op rhs" at the first
// operator occurring outside string literals, preferring the longest
// operator at that position. Word operators must be space-delimited.
func SplitConstraint(s string) (lhs, op, rhs string, err error) {
	s = strings.TrimSpace(s)
	opIdx, opLen := -1, 0
	inStr := false
scan:
	for i := 0; i < len(s); i++ {
		if s[i] == '"' {
			inStr = !inStr
		}
		if inStr {
			continue
		}
		for _, o := range opTokens {
			if !strings.HasPrefix(s[i:], o) {
				continue
			}
			// Word operators must be delimited by spaces so that an
			// attribute like "during-field" is not misread.
			if isWordOp(o) && !wordBoundary(s, i, len(o)) {
				continue
			}
			if len(o) > opLen {
				opIdx, opLen, op = i, len(o), o
			}
		}
		if opIdx == i {
			break scan
		}
	}
	if opIdx <= 0 {
		return "", "", "", fmt.Errorf("qparse: no operator in constraint %q", s)
	}
	lhs = strings.TrimSpace(s[:opIdx])
	rhs = strings.TrimSpace(s[opIdx+opLen:])
	if rhs == "" {
		return "", "", "", fmt.Errorf("qparse: missing right-hand side in %q", s)
	}
	return lhs, op, rhs, nil
}

func isWordOp(o string) bool {
	return o == qtree.OpContains || o == qtree.OpStarts || o == qtree.OpDuring
}

func wordBoundary(s string, i, n int) bool {
	before := i == 0 || s[i-1] == ' '
	after := i+n >= len(s) || s[i+n] == ' '
	return before && after
}

// ParseAttr parses an attribute reference: name, view.name, view[i].name,
// or view.rel.name (and view[i].rel.name).
func ParseAttr(s string) (qtree.Attr, error) {
	parts := strings.Split(s, ".")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
		if parts[i] == "" {
			return qtree.Attr{}, fmt.Errorf("qparse: empty attribute component in %q", s)
		}
	}
	var a qtree.Attr
	switch len(parts) {
	case 1:
		a.Name = parts[0]
	case 2:
		a.View, a.Name = parts[0], parts[1]
	case 3:
		a.View, a.Rel, a.Name = parts[0], parts[1], parts[2]
	default:
		return qtree.Attr{}, fmt.Errorf("qparse: too many components in attribute %q", s)
	}
	// Optional instance index on the view: fac[1]. Indexes are 1-based;
	// the view name before the bracket must be present.
	if i := strings.Index(a.View, "["); i >= 0 {
		if !strings.HasSuffix(a.View, "]") || i == 0 {
			return qtree.Attr{}, fmt.Errorf("qparse: malformed view index in %q", s)
		}
		idx, err := strconv.Atoi(a.View[i+1 : len(a.View)-1])
		if err != nil || idx < 1 {
			return qtree.Attr{}, fmt.Errorf("qparse: bad view index in %q", s)
		}
		a.Index = idx
		a.View = a.View[:i]
	}
	if !validIdent(a.Name) || (a.View != "" && !validIdent(a.View)) || (a.Rel != "" && !validIdent(a.Rel)) {
		return qtree.Attr{}, fmt.Errorf("qparse: invalid attribute %q", s)
	}
	return a, nil
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == '-' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func looksLikeAttr(s string) bool {
	if strings.HasPrefix(s, "\"") || s == "" {
		return false
	}
	if _, err := ParseAttr(s); err != nil {
		return false
	}
	// A bare single identifier could be either a string word or an attr; we
	// only treat dotted or indexed references as joins to avoid ambiguity.
	return strings.Contains(s, ".") || strings.Contains(s, "[")
}

// ParseValue interprets a value literal. The operator gives context: the
// value of a contains constraint is a text pattern; during takes a date.
func ParseValue(s, op string) (qtree.Value, error) {
	s = strings.TrimSpace(s)
	switch {
	case strings.HasPrefix(s, "\""):
		us, err := strconv.Unquote(s)
		if err != nil {
			return nil, fmt.Errorf("qparse: bad string literal %s: %v", s, err)
		}
		return values.String(us), nil
	case op == qtree.OpContains:
		return values.ParsePattern(s)
	case op == qtree.OpDuring:
		return ParseDate(s)
	}
	if r, ok := parseRange(s); ok {
		return r, nil
	}
	if p, ok := parsePoint(s); ok {
		return p, nil
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return values.Int(i), nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return values.Float(f), nil
	}
	if d, err := ParseDate(s); err == nil {
		return d, nil
	}
	// Bare word: a string value written without quotes (e.g. [dept = cs]).
	if validIdent(s) {
		return values.String(s), nil
	}
	return nil, fmt.Errorf("qparse: cannot interpret value %q", s)
}

// ParseDate parses the paper's date notations: 97, 1997, May/97, 12/May/97.
func ParseDate(s string) (values.Date, error) {
	parts := strings.Split(s, "/")
	switch len(parts) {
	case 1:
		y, err := strconv.Atoi(parts[0])
		if err != nil {
			return values.Date{}, fmt.Errorf("qparse: bad date %q", s)
		}
		return values.Date{Year: normYear(y)}, nil
	case 2:
		m, ok := values.ParseMonth(parts[0])
		if !ok {
			return values.Date{}, fmt.Errorf("qparse: bad month in date %q", s)
		}
		y, err := strconv.Atoi(parts[1])
		if err != nil {
			return values.Date{}, fmt.Errorf("qparse: bad year in date %q", s)
		}
		return values.Date{Year: normYear(y), Month: m}, nil
	case 3:
		d, err := strconv.Atoi(parts[0])
		if err != nil || d < 1 || d > 31 {
			return values.Date{}, fmt.Errorf("qparse: bad day in date %q", s)
		}
		m, ok := values.ParseMonth(parts[1])
		if !ok {
			return values.Date{}, fmt.Errorf("qparse: bad month in date %q", s)
		}
		y, err := strconv.Atoi(parts[2])
		if err != nil {
			return values.Date{}, fmt.Errorf("qparse: bad year in date %q", s)
		}
		return values.Date{Year: normYear(y), Month: m, Day: d}, nil
	default:
		return values.Date{}, fmt.Errorf("qparse: bad date %q", s)
	}
}

// normYear expands two-digit years with a 1950–2049 pivot.
func normYear(y int) int {
	switch {
	case y >= 100:
		return y
	case y >= 50:
		return 1900 + y
	default:
		return 2000 + y
	}
}

func parseRange(s string) (values.Range, bool) {
	if !strings.HasPrefix(s, "(") || !strings.HasSuffix(s, ")") {
		return values.Range{}, false
	}
	body := s[1 : len(s)-1]
	parts := strings.Split(body, ":")
	if len(parts) != 2 {
		return values.Range{}, false
	}
	lo, err1 := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	hi, err2 := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err1 != nil || err2 != nil {
		return values.Range{}, false
	}
	return values.Range{Lo: lo, Hi: hi}, true
}

func parsePoint(s string) (values.Point, bool) {
	if !strings.HasPrefix(s, "(") || !strings.HasSuffix(s, ")") {
		return values.Point{}, false
	}
	body := s[1 : len(s)-1]
	parts := strings.Split(body, ",")
	if len(parts) != 2 {
		return values.Point{}, false
	}
	x, err1 := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	y, err2 := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err1 != nil || err2 != nil {
		return values.Point{}, false
	}
	return values.Point{X: x, Y: y}, true
}
