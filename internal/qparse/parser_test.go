package qparse

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/qtree"
	"repro/internal/values"
)

func TestParseSimpleConstraint(t *testing.T) {
	q := MustParse(`[ln = "Clancy"]`)
	if q.Kind != qtree.KindLeaf {
		t.Fatalf("got %s, want leaf", q)
	}
	c := q.C
	if c.Attr != qtree.A("ln") || c.Op != qtree.OpEq {
		t.Errorf("constraint = %s", c)
	}
	if s, ok := c.Val.(values.String); !ok || s.Raw() != "Clancy" {
		t.Errorf("value = %v", c.Val)
	}
}

func TestParseBooleanStructure(t *testing.T) {
	q := MustParse(`([a = 1] or [b = 2]) and [c = 3]`)
	if q.Kind != qtree.KindAnd || len(q.Kids) != 2 {
		t.Fatalf("got %s", q)
	}
	if q.Kids[0].Kind != qtree.KindOr {
		t.Errorf("first conjunct %s, want disjunction", q.Kids[0])
	}
}

func TestParsePrecedence(t *testing.T) {
	// and binds tighter than or.
	q := MustParse(`[a = 1] or [b = 2] and [c = 3]`)
	if q.Kind != qtree.KindOr || len(q.Kids) != 2 {
		t.Fatalf("got %s", q)
	}
	if q.Kids[1].Kind != qtree.KindAnd {
		t.Errorf("second disjunct %s, want conjunction", q.Kids[1])
	}
}

func TestParseAttrForms(t *testing.T) {
	cases := map[string]qtree.Attr{
		"ln":               qtree.A("ln"),
		"fac.ln":           qtree.VA("fac", "ln"),
		"fac[2].ln":        qtree.VIA("fac", 2, "ln"),
		"fac.aubib.name":   qtree.RA("fac", "aubib", "name"),
		"ti-word":          qtree.A("ti-word"),
		"fac[1].prof.dept": {View: "fac", Index: 1, Rel: "prof", Name: "dept"},
	}
	for src, want := range cases {
		got, err := ParseAttr(src)
		if err != nil {
			t.Errorf("ParseAttr(%q): %v", src, err)
			continue
		}
		if got != want {
			t.Errorf("ParseAttr(%q) = %#v, want %#v", src, got, want)
		}
	}
}

func TestParseJoinConstraint(t *testing.T) {
	q := MustParse(`[fac.ln = pub.ln]`)
	c := q.C
	if !c.IsJoin() {
		t.Fatalf("%s not recognized as join", c)
	}
	if c.Attr != qtree.VA("fac", "ln") || *c.RAttr != qtree.VA("pub", "ln") {
		t.Errorf("join attrs wrong: %s", c)
	}
}

func TestParseValueKinds(t *testing.T) {
	cases := []struct {
		src  string
		kind string
	}{
		{`[a = "text"]`, "string"},
		{`[a = 42]`, "int"},
		{`[a = 4.5]`, "float"},
		{`[a = (10:30)]`, "range"},
		{`[a = (10,20)]`, "point"},
		{`[a during May/97]`, "date"},
		{`[a during 12/May/97]`, "date"},
		{`[a contains java(near)jdk]`, "pattern"},
		{`[a contains www]`, "pattern"},
		{`[a = cs]`, "string"}, // bare word value
	}
	for _, c := range cases {
		q, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		if got := q.C.Val.Kind(); got != c.kind {
			t.Errorf("Parse(%q) value kind = %s, want %s", c.src, got, c.kind)
		}
	}
}

func TestParseDates(t *testing.T) {
	d, err := ParseDate("May/97")
	if err != nil || d.Year != 1997 || d.Month != 5 || d.Day != 0 {
		t.Errorf("May/97 = %+v (%v)", d, err)
	}
	d, err = ParseDate("12/May/97")
	if err != nil || d.Day != 12 {
		t.Errorf("12/May/97 = %+v (%v)", d, err)
	}
	d, err = ParseDate("2001")
	if err != nil || d.Year != 2001 {
		t.Errorf("2001 = %+v (%v)", d, err)
	}
	d, err = ParseDate("49")
	if err != nil || d.Year != 2049 {
		t.Errorf("49 = %+v (%v), want 2049 pivot", d, err)
	}
	d, err = ParseDate("50")
	if err != nil || d.Year != 1950 {
		t.Errorf("50 = %+v (%v), want 1950 pivot", d, err)
	}
	if _, err := ParseDate("notadate"); err == nil {
		t.Error("notadate parsed without error")
	}
}

func TestParseComparisonOps(t *testing.T) {
	for _, op := range []string{"=", "!=", "<", "<=", ">", ">="} {
		q, err := Parse(`[a ` + op + ` 5]`)
		if err != nil {
			t.Errorf("op %s: %v", op, err)
			continue
		}
		if q.C.Op != op {
			t.Errorf("op parsed as %s, want %s", q.C.Op, op)
		}
	}
}

func TestParseTrue(t *testing.T) {
	if !MustParse(`TRUE`).IsTrue() {
		t.Error("TRUE did not parse to the trivial query")
	}
	if !MustParse(`true and true`).IsTrue() {
		t.Error("true∧true did not normalize to TRUE")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``, `[a = ]`, `[= 5]`, `[a 5]`, `[a = 5`, `(a = 5)`,
		`[a = 5] and`, `[a = 5] bogus [b = 2]`, `((([a=1])`, `[a..b = 1]`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	// Printing a parsed query and re-parsing yields the same canonical tree.
	exprs := []string{
		`[ln = "Clancy"] and ([fn = "Tom"] or [pyear = 1997])`,
		`[a = 1] or ([b = 2] and ([c = 3] or [d = 4]))`,
		`[fac.bib contains data(near)mining] and [fac.dept = cs]`,
		`[pdate during May/97] or [xrange = (10:30)]`,
		`[fac[1].ln = fac[2].ln]`,
	}
	f := func(i uint) bool {
		src := exprs[i%uint(len(exprs))]
		q := MustParse(src)
		rt, err := Parse(q.String())
		if err != nil {
			t.Logf("re-parse of %q failed: %v", q.String(), err)
			return false
		}
		return rt.EqualCanonical(q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitConstraintQuotedOperator(t *testing.T) {
	// Operators inside string literals must not split the constraint.
	lhs, op, rhs, err := SplitConstraint(`ti = "a = b"`)
	if err != nil || lhs != "ti" || op != "=" || rhs != `"a = b"` {
		t.Errorf("got %q %q %q (%v)", lhs, op, rhs, err)
	}
}

func TestParseLongQuery(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 100; i++ {
		if i > 0 {
			sb.WriteString(" and ")
		}
		sb.WriteString(`[a` + string(rune('0'+i%10)) + ` = ` + string(rune('0'+i%7)) + `]`)
	}
	q := MustParse(sb.String())
	if !q.IsSimpleConjunction() {
		t.Error("long conjunction not simple")
	}
}
