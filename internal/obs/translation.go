package obs

import "sync"

// TranslationMetrics is the metric set the translation core feeds: per-rule
// fire/suppress counters and per-spec algorithm work counters, all labeled
// by mapping specification. Attach one to a core.Translator (SetMetrics) or
// a mediator (Mediator.Metrics); the same instance may serve any number of
// translators concurrently.
//
// The hot path goes through a read-locked lookup cache so that a rule fire
// costs one RLock + one atomic add after first use, rather than a registry
// get-or-create.
type TranslationMetrics struct {
	reg *Registry

	mu    sync.RWMutex
	cache map[string]*Counter
}

// NewTranslationMetrics returns translation metrics registered on r.
func NewTranslationMetrics(r *Registry) *TranslationMetrics {
	return &TranslationMetrics{reg: r, cache: make(map[string]*Counter)}
}

// Registry returns the backing registry.
func (m *TranslationMetrics) Registry() *Registry { return m.reg }

// counter memoizes registry lookups under a composite key.
func (m *TranslationMetrics) counter(key, name, help string, kv ...string) *Counter {
	m.mu.RLock()
	c, ok := m.cache[key]
	m.mu.RUnlock()
	if ok {
		return c
	}
	c = m.reg.Counter(name, help, kv...)
	m.mu.Lock()
	m.cache[key] = c
	m.mu.Unlock()
	return c
}

// RuleFired counts a matching of the named rule retained after suppression
// (the rule contributed atoms to a translation).
func (m *TranslationMetrics) RuleFired(spec, rule string) {
	if m == nil {
		return
	}
	m.counter("f\x00"+spec+"\x00"+rule,
		"qmap_rule_fires_total", "Rule matchings retained after submatching suppression.",
		"spec", spec, "rule", rule).Inc()
}

// RuleSuppressed counts a matching of the named rule dropped as a
// submatching of a larger one (Algorithm SCM step 2).
func (m *TranslationMetrics) RuleSuppressed(spec, rule string) {
	if m == nil {
		return
	}
	m.counter("s\x00"+spec+"\x00"+rule,
		"qmap_rule_suppressed_total", "Rule matchings suppressed as submatchings of larger ones.",
		"spec", spec, "rule", rule).Inc()
}

// SCMCall counts one Algorithm SCM invocation for spec.
func (m *TranslationMetrics) SCMCall(spec string) {
	if m == nil {
		return
	}
	m.counter("scm\x00"+spec,
		"qmap_scm_calls_total", "Algorithm SCM invocations.", "spec", spec).Inc()
}

// PSafeCall counts one Algorithm PSafe invocation for spec.
func (m *TranslationMetrics) PSafeCall(spec string) {
	if m == nil {
		return
	}
	m.counter("psafe\x00"+spec,
		"qmap_psafe_calls_total", "Algorithm PSafe invocations.", "spec", spec).Inc()
}

// ProductTerms counts product terms examined during safety checking — the
// paper's 2^{ne} quantity, whose growth tracks the dependency degree e.
func (m *TranslationMetrics) ProductTerms(spec string, n int) {
	if m == nil || n <= 0 {
		return
	}
	m.counter("pt\x00"+spec,
		"qmap_product_terms_total", "Product terms examined during safety checks.",
		"spec", spec).Add(uint64(n))
}

// Disjunctivization counts one local structure rewrite (TDQM Case-2).
func (m *TranslationMetrics) Disjunctivization(spec string) {
	if m == nil {
		return
	}
	m.counter("dz\x00"+spec,
		"qmap_disjunctivizations_total", "Local Disjunctivize structure rewrites.",
		"spec", spec).Inc()
}

// ComposeChainBuilt counts one offline chain composition producing the
// named composed spec from hops mapping hops.
func (m *TranslationMetrics) ComposeChainBuilt(spec string, hops int) {
	if m == nil {
		return
	}
	m.counter("cc\x00"+spec,
		"qmap_compose_chains_total", "Offline spec-chain compositions performed.",
		"spec", spec).Inc()
	m.counter("ch\x00"+spec,
		"qmap_compose_hops_total", "Mapping hops folded into composed specs.",
		"spec", spec).Add(uint64(hops))
}

// ComposeTranslation counts one translation through a composed chain spec.
// mode is "composed" (single precomposed hop) or "sequential" (the chain
// debug path that re-translates hop by hop).
func (m *TranslationMetrics) ComposeTranslation(spec, mode string) {
	if m == nil {
		return
	}
	m.counter("ct\x00"+spec+"\x00"+mode,
		"qmap_compose_translations_total", "Translations through composed chain specs.",
		"spec", spec, "mode", mode).Inc()
}

// The N-variants below add a precomputed count in one call. core's
// translation plan records the metric activity of a translation fragment
// and replays it on a plan hit, so the cumulative counters are identical
// with the plan on or off; all are no-ops for n <= 0.

// RuleFiredN counts n retained matchings of the named rule.
func (m *TranslationMetrics) RuleFiredN(spec, rule string, n int) {
	if m == nil || n <= 0 {
		return
	}
	m.counter("f\x00"+spec+"\x00"+rule,
		"qmap_rule_fires_total", "Rule matchings retained after submatching suppression.",
		"spec", spec, "rule", rule).Add(uint64(n))
}

// RuleSuppressedN counts n suppressed matchings of the named rule.
func (m *TranslationMetrics) RuleSuppressedN(spec, rule string, n int) {
	if m == nil || n <= 0 {
		return
	}
	m.counter("s\x00"+spec+"\x00"+rule,
		"qmap_rule_suppressed_total", "Rule matchings suppressed as submatchings of larger ones.",
		"spec", spec, "rule", rule).Add(uint64(n))
}

// SCMCallN counts n Algorithm SCM invocations for spec.
func (m *TranslationMetrics) SCMCallN(spec string, n int) {
	if m == nil || n <= 0 {
		return
	}
	m.counter("scm\x00"+spec,
		"qmap_scm_calls_total", "Algorithm SCM invocations.", "spec", spec).Add(uint64(n))
}

// PSafeCallN counts n Algorithm PSafe invocations for spec.
func (m *TranslationMetrics) PSafeCallN(spec string, n int) {
	if m == nil || n <= 0 {
		return
	}
	m.counter("psafe\x00"+spec,
		"qmap_psafe_calls_total", "Algorithm PSafe invocations.", "spec", spec).Add(uint64(n))
}

// DisjunctivizationN counts n local structure rewrites for spec.
func (m *TranslationMetrics) DisjunctivizationN(spec string, n int) {
	if m == nil || n <= 0 {
		return
	}
	m.counter("dz\x00"+spec,
		"qmap_disjunctivizations_total", "Local Disjunctivize structure rewrites.",
		"spec", spec).Add(uint64(n))
}
