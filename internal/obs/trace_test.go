package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTracerBuildsTree(t *testing.T) {
	tr := NewTracer()
	root := tr.Start(KindTranslate, "q")
	tr.Start(KindSource, "amazon")
	scm := tr.Start(KindSCM, "[a = 1]")
	scm.Set(CtrCandidates, 2)
	tr.End()
	tr.End()
	tr.Start(KindSource, "clbooks")
	tr.End()
	tr.End()

	got := tr.Root()
	if got != root {
		t.Fatalf("Root() = %p, want the first started span %p", got, root)
	}
	if len(root.Children) != 2 {
		t.Fatalf("root has %d children, want 2", len(root.Children))
	}
	if root.Children[0].Kind != KindSource || root.Children[0].Name != "amazon" {
		t.Errorf("first child = %s %q", root.Children[0].Kind, root.Children[0].Name)
	}
	if len(root.Children[0].Children) != 1 || root.Children[0].Children[0] != scm {
		t.Errorf("scm span not nested under its source span")
	}
	if v, ok := scm.Counter(CtrCandidates); !ok || v != 2 {
		t.Errorf("scm candidates = %d, %v; want 2, true", v, ok)
	}
}

func TestNilTracerAndNilSpanInert(t *testing.T) {
	var tr *Tracer
	sp := tr.Start(KindSCM, "x")
	if sp != nil {
		t.Fatalf("nil tracer Start returned %v, want nil", sp)
	}
	tr.End() // must not panic
	if tr.Root() != nil {
		t.Errorf("nil tracer Root = %v, want nil", tr.Root())
	}
	sp.Add(CtrKept, 1) // nil span: no-ops
	sp.Set(CtrKept, 1)
	sp.Walk(func(*Span) { t.Error("walk visited a nil span") })
	if _, ok := sp.Counter(CtrKept); ok {
		t.Error("nil span reported a counter")
	}
}

func TestRootWrapsMultipleTopLevelSpans(t *testing.T) {
	tr := NewTracer()
	tr.Start(KindTDQM, "a")
	tr.End()
	tr.Start(KindTDQM, "b")
	tr.End()
	root := tr.Root()
	if root.Kind != "trace" || len(root.Children) != 2 {
		t.Fatalf("root = %s with %d children, want synthetic trace span with 2", root.Kind, len(root.Children))
	}
}

func TestSpanJSONRoundTripDeterministic(t *testing.T) {
	tr := NewTracer()
	sp := tr.Start(KindSCM, `[a = "1"]`)
	sp.Set(CtrCandidates, 3)
	sp.Set(CtrKept, 2)
	sp.Set(CtrSuppressed, 1)
	tr.Start(KindMatch, "R1")
	tr.End()
	tr.End()

	a, err := json.Marshal(tr.Root())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(tr.Root())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("marshal not deterministic:\n%s\n%s", a, b)
	}
	var back Span
	if err := json.Unmarshal(a, &back); err != nil {
		t.Fatal(err)
	}
	c, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, c) {
		t.Fatalf("round trip changed the span:\n%s\n%s", a, c)
	}
	if strings.Contains(string(a), "duration_ns") {
		t.Errorf("clockless trace serialized a duration: %s", a)
	}
}

func TestWriteText(t *testing.T) {
	tr := NewTracer()
	sp := tr.Start(KindSCM, "[a = 1]")
	sp.Set(CtrKept, 2)
	sp.Set(CtrCandidates, 2)
	tr.Start(KindMatch, "R1")
	tr.End()
	tr.End()

	var buf bytes.Buffer
	tr.Root().WriteText(&buf)
	want := "scm [a = 1]  [candidateMatchings=2 keptMatchings=2]\n  match R1\n"
	if buf.String() != want {
		t.Errorf("WriteText:\n%q\nwant:\n%q", buf.String(), want)
	}
}

func TestFindAll(t *testing.T) {
	tr := NewTracer()
	tr.Start(KindTranslate, "q")
	tr.Start(KindSCM, "a")
	tr.End()
	tr.Start(KindSCM, "b")
	tr.End()
	tr.End()
	if got := len(tr.Root().FindAll(KindSCM)); got != 2 {
		t.Errorf("FindAll(scm) = %d spans, want 2", got)
	}
}

// buildSpan is a test helper for Verify cases.
func buildSpan(kind, name string, ctrs map[string]int64, kids ...*Span) *Span {
	return &Span{Kind: kind, Name: name, Counters: ctrs, Children: kids}
}

func TestVerify(t *testing.T) {
	ok := buildSpan(KindTranslate, "q", map[string]int64{CtrEssentialDNFSize: 3},
		buildSpan(KindSCM, "s", map[string]int64{
			CtrCandidates: 3, CtrKept: 2, CtrSuppressed: 1, CtrEssentialDNFSize: 2,
		},
			buildSpan(KindMatch, "R1", map[string]int64{CtrCandidates: 1}),
			buildSpan(KindMatch, "R2", map[string]int64{CtrCandidates: 2}),
		))
	if err := Verify(ok); err != nil {
		t.Errorf("Verify(ok tree) = %v", err)
	}

	if err := Verify(nil); err == nil {
		t.Error("Verify(nil) = nil, want error")
	}

	badSum := buildSpan(KindSCM, "s", map[string]int64{
		CtrCandidates: 3, CtrKept: 1, CtrSuppressed: 1,
	})
	if err := Verify(badSum); err == nil {
		t.Error("Verify missed kept+suppressed != candidates")
	}

	badE := buildSpan(KindTDQM, "q", map[string]int64{CtrEssentialDNFSize: 1},
		buildSpan(KindSCM, "s", map[string]int64{CtrEssentialDNFSize: 2}))
	if err := Verify(badE); err == nil {
		t.Error("Verify missed child e > parent e")
	}

	badMatch := buildSpan(KindSCM, "s", map[string]int64{
		CtrCandidates: 3, CtrKept: 3, CtrSuppressed: 0,
	},
		buildSpan(KindMatch, "R1", map[string]int64{CtrCandidates: 1}))
	if err := Verify(badMatch); err == nil {
		t.Error("Verify missed match-span candidate sum mismatch")
	}
}
