package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Span kinds emitted by the translation pipeline. The golden trace tests
// pin the exact tree of kinds for fixed queries, so renaming one is a
// breaking change to the trace schema (docs/observability.md).
const (
	// KindTranslate is the root span of a mediator translation.
	KindTranslate = "translate"
	// KindSource wraps one source's translation inside a mediator span.
	KindSource = "source"
	// KindTDQM is one Algorithm TDQM node visit (Figure 8).
	KindTDQM = "tdqm"
	// KindDNF is one Algorithm DNF invocation (Figure 6).
	KindDNF = "dnf"
	// KindEDNF is one Procedure EDNF computation (Figure 10).
	KindEDNF = "ednf"
	// KindPSafe is one Algorithm PSafe partition (Figure 11).
	KindPSafe = "psafe"
	// KindSCM is one Algorithm SCM invocation (Figure 4).
	KindSCM = "scm"
	// KindMatch is one rule's matching attempt within an M(·, K) pass.
	KindMatch = "match"
	// KindStream is a streaming-execution summary span emitted by the
	// serving layer's per-shard pipeline (internal/stream). It appears only
	// on streaming requests, never inside translation traces, so the golden
	// translation trees are unaffected.
	KindStream = "stream"
	// KindAccess is an access-path span emitted by the serving layer when
	// index-backed execution is on: one span per source per request, whose
	// name records the planner's chosen path (e.g. "books eq(pyear):12" or
	// "books scan"). Like KindStream it never appears inside translation
	// traces.
	KindAccess = "access"
	// KindBreaker is a circuit-breaker summary span emitted by the serving
	// layer per source per request when breakers are on: the name carries
	// the source and its breaker state ("books closed"), counters carry the
	// trip count and whether this request was refused. Serving-layer only,
	// never inside translation traces.
	KindBreaker = "breaker"
	// KindHedge is a hedge/retry summary span emitted per source per
	// request when hedging or retry is on: counters carry whether a hedge
	// launched and won, and how many retries ran. Serving-layer only.
	KindHedge = "hedge"
)

// Counter keys used by the translation pipeline's spans.
const (
	// CtrCandidates counts matchings produced before suppression (per SCM
	// span) or by one rule (per match span).
	CtrCandidates = "candidateMatchings"
	// CtrKept counts matchings retained after submatching suppression.
	CtrKept = "keptMatchings"
	// CtrSuppressed counts suppressed submatchings. At every SCM span,
	// kept + suppressed = candidates (checked by Verify).
	CtrSuppressed = "suppressedMatchings"
	// CtrEmittedAtoms counts constraint atoms in the emitted translation.
	CtrEmittedAtoms = "emittedAtoms"
	// CtrUnmatched counts constraints no retained matching covers (their
	// mapping is True).
	CtrUnmatched = "unmatchedConstraints"
	// CtrEssentialDNFSize is e, the essential-DNF support of the span's
	// subquery: the number of distinct constraints that participate in some
	// multi-constraint potential matching — the paper's degree of constraint
	// dependency, which drives EDNF/TDQM safety-check cost (Section 8). By
	// construction a child span's subquery is a subset of its parent's, so
	// child e <= parent e at every edge (checked by Verify).
	CtrEssentialDNFSize = "essentialDNFSize"
	// CtrQuerySize is the node count k of the span's subquery, for reading
	// e against k per Section 8.
	CtrQuerySize = "querySize"
	// CtrConjuncts counts the conjuncts handed to PSafe.
	CtrConjuncts = "conjuncts"
	// CtrBlocks counts the blocks of a PSafe partition.
	CtrBlocks = "blocks"
	// CtrCrossMatchings counts cross-matching instances found by PSafe.
	CtrCrossMatchings = "crossMatchings"
	// CtrProductTerms counts product terms examined (the 2^{ne} quantity).
	CtrProductTerms = "productTerms"
	// CtrDisjuncts counts disjuncts of a DNF/EDNF expression.
	CtrDisjuncts = "disjuncts"
	// CtrSeparable is 1 when a PSafe partition was fully separable.
	CtrSeparable = "separable"
)

// Span is one node of a trace tree: a unit of translation work with its
// counters and nested children. Spans are built single-threaded by a Tracer
// and must not be mutated after the trace is read.
type Span struct {
	// Kind is one of the Kind* constants.
	Kind string
	// Name identifies the work deterministically (a query rendering, a rule
	// name, a source name).
	Name string
	// Counters holds the span's integer measurements, keyed by the Ctr*
	// constants.
	Counters map[string]int64
	// Children are the nested spans in execution order.
	Children []*Span
	// Duration is the span's wall-clock time. It stays zero unless the
	// tracer was built WithWallClock, keeping default traces deterministic.
	Duration time.Duration
}

// Add increments counter key by delta. A nil span is a no-op, so call sites
// can hold optional spans without guarding.
func (s *Span) Add(key string, delta int64) {
	if s == nil {
		return
	}
	if s.Counters == nil {
		s.Counters = make(map[string]int64)
	}
	s.Counters[key] += delta
}

// Set sets counter key to v. A nil span is a no-op.
func (s *Span) Set(key string, v int64) {
	if s == nil {
		return
	}
	if s.Counters == nil {
		s.Counters = make(map[string]int64)
	}
	s.Counters[key] = v
}

// Counter returns the value of counter key and whether it is present.
func (s *Span) Counter(key string) (int64, bool) {
	if s == nil {
		return 0, false
	}
	v, ok := s.Counters[key]
	return v, ok
}

// Walk visits s and every descendant in depth-first pre-order.
func (s *Span) Walk(f func(*Span)) {
	if s == nil {
		return
	}
	f(s)
	for _, c := range s.Children {
		c.Walk(f)
	}
}

// FindAll returns every span of the given kind in depth-first pre-order.
func (s *Span) FindAll(kind string) []*Span {
	var out []*Span
	s.Walk(func(sp *Span) {
		if sp.Kind == kind {
			out = append(out, sp)
		}
	})
	return out
}

// spanJSON fixes the serialized field order; map keys are sorted by
// encoding/json, so the rendering is deterministic.
type spanJSON struct {
	Kind       string           `json:"kind"`
	Name       string           `json:"name,omitempty"`
	Counters   map[string]int64 `json:"counters,omitempty"`
	DurationNS int64            `json:"duration_ns,omitempty"`
	Children   []*Span          `json:"children,omitempty"`
}

// MarshalJSON renders the span deterministically (counters sorted by key;
// duration omitted when zero, i.e. always for clockless tracers).
func (s *Span) MarshalJSON() ([]byte, error) {
	return json.Marshal(spanJSON{
		Kind:       s.Kind,
		Name:       s.Name,
		Counters:   s.Counters,
		DurationNS: int64(s.Duration),
		Children:   s.Children,
	})
}

// UnmarshalJSON restores a span serialized by MarshalJSON.
func (s *Span) UnmarshalJSON(b []byte) error {
	var sj spanJSON
	if err := json.Unmarshal(b, &sj); err != nil {
		return err
	}
	*s = Span{
		Kind:     sj.Kind,
		Name:     sj.Name,
		Counters: sj.Counters,
		Children: sj.Children,
		Duration: time.Duration(sj.DurationNS),
	}
	return nil
}

// WriteText renders the span tree as an indented outline, one span per
// line with its counters sorted by key — the human form of qmap -trace.
func (s *Span) WriteText(w io.Writer) {
	s.writeText(w, 0)
}

func (s *Span) writeText(w io.Writer, depth int) {
	if s == nil {
		return
	}
	indent := strings.Repeat("  ", depth)
	fmt.Fprintf(w, "%s%s", indent, s.Kind)
	if s.Name != "" {
		fmt.Fprintf(w, " %s", s.Name)
	}
	if len(s.Counters) > 0 {
		keys := make([]string, 0, len(s.Counters))
		for k := range s.Counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = fmt.Sprintf("%s=%d", k, s.Counters[k])
		}
		fmt.Fprintf(w, "  [%s]", strings.Join(parts, " "))
	}
	if s.Duration > 0 {
		fmt.Fprintf(w, "  (%s)", s.Duration)
	}
	fmt.Fprintln(w)
	for _, c := range s.Children {
		c.writeText(w, depth+1)
	}
}

// Tracer builds a span tree. It is not safe for concurrent use: attach one
// tracer per translation (the pipeline is single-threaded per request).
// A nil *Tracer is inert — Start returns nil and End is a no-op — which is
// the disabled hot path.
type Tracer struct {
	roots  []*Span
	stack  []*Span
	clock  func() time.Time
	starts []time.Time
}

// NewTracer returns a deterministic (clockless) tracer.
func NewTracer() *Tracer { return &Tracer{} }

// WithWallClock makes the tracer record span durations. Traces stop being
// byte-deterministic; use only for profiling output, never for goldens.
func (t *Tracer) WithWallClock() *Tracer {
	t.clock = time.Now
	return t
}

// Start opens a span as a child of the innermost open span (or as a root)
// and returns it. Every Start must be paired with an End.
func (t *Tracer) Start(kind, name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{Kind: kind, Name: name}
	if len(t.stack) == 0 {
		t.roots = append(t.roots, s)
	} else {
		p := t.stack[len(t.stack)-1]
		p.Children = append(p.Children, s)
	}
	t.stack = append(t.stack, s)
	if t.clock != nil {
		t.starts = append(t.starts, t.clock())
	}
	return s
}

// End closes the innermost open span.
func (t *Tracer) End() {
	if t == nil || len(t.stack) == 0 {
		return
	}
	s := t.stack[len(t.stack)-1]
	t.stack = t.stack[:len(t.stack)-1]
	if t.clock != nil {
		s.Duration = t.clock().Sub(t.starts[len(t.starts)-1])
		t.starts = t.starts[:len(t.starts)-1]
	}
}

// Root returns the trace: the single root span, or a synthetic "trace" span
// wrapping multiple top-level spans, or nil when nothing was recorded.
func (t *Tracer) Root() *Span {
	if t == nil || len(t.roots) == 0 {
		return nil
	}
	if len(t.roots) == 1 {
		return t.roots[0]
	}
	return &Span{Kind: "trace", Name: "root", Children: t.roots}
}
