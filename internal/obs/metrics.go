package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; register it in a Registry to expose it.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic gauge. The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative deltas decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram with lock-free observation.
// Buckets follow the Prometheus "le" convention: bucket i counts
// observations v <= Bounds[i]; the last bucket is unbounded (+Inf).
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1
	sum    atomic.Uint64   // float64 bits, CAS-updated
	count  atomic.Uint64
}

// NewHistogram returns a histogram over the given strictly ascending
// finite upper bounds (an implicit +Inf bucket is appended).
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending: %v", bounds))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	i := 0
	for ; i < len(h.bounds); i++ {
		if v <= h.bounds[i] {
			break
		}
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Bounds are the finite upper bounds; Counts has one extra entry for
	// the +Inf bucket. Counts are per-bucket (not cumulative).
	Bounds []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

// Snapshot copies the histogram's current state. The per-bucket counts are
// loaded individually, so a snapshot taken under concurrent observation is
// approximate bucket-by-bucket but never loses an observation that
// completed before the call.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
		Count:  h.count.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Metric types in the exposition format.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// child is one labeled instance of a metric family.
type child struct {
	labels  [][2]string // sorted by key
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

// family is one named metric with all its label combinations.
type family struct {
	name, help, typ string
	children        map[string]*child // keyed by canonical label string
	order           []string
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. All Register*/get-or-create methods are safe for
// concurrent use; updates to the returned primitives are lock-free.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter registered under name and the label pairs,
// creating it if needed. kv alternates label keys and values. Counters for
// the same (name, labels) are shared, which is how per-rule counter
// "vectors" work:
//
//	r.Counter("qmap_rule_fires_total", "…", "spec", "amazon", "rule", "ra")
func (r *Registry) Counter(name, help string, kv ...string) *Counter {
	c := r.child(name, help, typeCounter, kv, func() *child { return &child{counter: &Counter{}} })
	return c.counter
}

// Gauge returns the gauge registered under name and the label pairs,
// creating it if needed.
func (r *Registry) Gauge(name, help string, kv ...string) *Gauge {
	c := r.child(name, help, typeGauge, kv, func() *child { return &child{gauge: &Gauge{}} })
	return c.gauge
}

// Histogram returns the histogram registered under name and the label
// pairs, creating it with the given bounds if needed. Bounds of an existing
// histogram are not checked against the argument.
func (r *Registry) Histogram(name, help string, bounds []float64, kv ...string) *Histogram {
	c := r.child(name, help, typeHistogram, kv, func() *child { return &child{hist: NewHistogram(bounds)} })
	return c.hist
}

// RegisterCounter exposes an externally owned counter (e.g. a cache's
// internal counter) under name and the label pairs. Registering a second
// collector for the same (name, labels) panics.
func (r *Registry) RegisterCounter(name, help string, c *Counter, kv ...string) {
	r.registerOnce(name, help, typeCounter, kv, &child{counter: c})
}

// RegisterGauge exposes an externally owned gauge.
func (r *Registry) RegisterGauge(name, help string, g *Gauge, kv ...string) {
	r.registerOnce(name, help, typeGauge, kv, &child{gauge: g})
}

// RegisterHistogram exposes an externally owned histogram.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram, kv ...string) {
	r.registerOnce(name, help, typeHistogram, kv, &child{hist: h})
}

// CounterFunc exposes a counter sampled by fn at scrape time (for values
// already tracked elsewhere, e.g. cache evictions).
func (r *Registry) CounterFunc(name, help string, fn func() float64, kv ...string) {
	r.registerOnce(name, help, typeCounter, kv, &child{fn: fn})
}

// GaugeFunc exposes a gauge sampled by fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, kv ...string) {
	r.registerOnce(name, help, typeGauge, kv, &child{fn: fn})
}

// child gets or creates a labeled instance.
func (r *Registry) child(name, help, typ string, kv []string, build func() *child) *child {
	labels, key := canonLabels(kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, typ)
	if c, ok := f.children[key]; ok {
		return c
	}
	c := build()
	c.labels = labels
	f.children[key] = c
	f.order = append(f.order, key)
	return c
}

// registerOnce adds a labeled instance that must not already exist.
func (r *Registry) registerOnce(name, help, typ string, kv []string, c *child) {
	labels, key := canonLabels(kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, typ)
	if _, ok := f.children[key]; ok {
		panic(fmt.Sprintf("obs: %s{%s} registered twice", name, key))
	}
	c.labels = labels
	f.children[key] = c
	f.order = append(f.order, key)
}

// family gets or creates the named family, enforcing help/type agreement.
func (r *Registry) family(name, help, typ string) *family {
	if err := checkMetricName(name); err != nil {
		panic(err)
	}
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, children: make(map[string]*child)}
		r.families[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: %s registered as %s and %s", name, f.typ, typ))
	}
	return f
}

// canonLabels validates the key/value pairs and returns them sorted by key
// together with the canonical "k=v,k=v" identity string.
func canonLabels(kv []string) ([][2]string, string) {
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label key/value list %q", kv))
	}
	labels := make([][2]string, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		if err := checkLabelName(kv[i]); err != nil {
			panic(err)
		}
		labels = append(labels, [2]string{kv[i], kv[i+1]})
	}
	sort.Slice(labels, func(a, b int) bool { return labels[a][0] < labels[b][0] })
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l[0] + "=" + l[1]
	}
	return labels, strings.Join(parts, ",")
}

func checkMetricName(name string) error {
	if name == "" {
		return fmt.Errorf("obs: empty metric name")
	}
	for i, c := range name {
		if c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9') {
			continue
		}
		return fmt.Errorf("obs: invalid metric name %q", name)
	}
	return nil
}

func checkLabelName(name string) error {
	if name == "" {
		return fmt.Errorf("obs: empty label name")
	}
	if name == "le" {
		return fmt.Errorf("obs: label name %q is reserved for histogram buckets", name)
	}
	for i, c := range name {
		if c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9') {
			continue
		}
		return fmt.Errorf("obs: invalid label name %q", name)
	}
	return nil
}
