package obs_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/mediator"
	"repro/internal/obs"
	"repro/internal/qparse"
	"repro/internal/sources"
)

var update = flag.Bool("update", false, "rewrite the golden trace files")

// goldenCases pins the full serialized span tree of fixed workload queries.
// Any change to what the pipeline traces — span kinds, nesting, names,
// counters — shows up as a byte diff here; regenerate deliberately with
//
//	go test ./internal/obs/ -run TestGoldenTraces -update
var goldenCases = []struct {
	name  string
	med   func() *mediator.Mediator
	query string
}{
	{
		// Example 3's simple conjunction over the two library sources:
		// one SCM per source, no structural algorithms.
		name: "example3_conjunction",
		med:  libraryMediator,
		query: `[fac.ln = pub.ln] and [fac.fn = pub.fn] and ` +
			`[fac.bib contains data(near)mining] and [fac.dept = cs]`,
	},
	{
		// The serving benchmark's complex query: TDQM splits the top-level
		// conjunction, recursing per disjunct.
		name:  "library_tdqm",
		med:   libraryMediator,
		query: `([fac.dept = cs] or [fac.dept = ee]) and [fac.bib contains data(near)mining]`,
	},
	{
		// Q_book (Example 6) over the bookstore: PSafe partitions and a
		// Disjunctivize rewrite appear in the tree.
		name: "qbook_bookstore",
		med: func() *mediator.Mediator {
			return mediator.New(sources.NewAmazon(), sources.NewClbooks())
		},
		query: `(([ln = "Smith"] and [fn = "John"]) or [kwd contains web] or [kwd contains java]) ` +
			`and [pyear = 1997] and ([pmonth = 5] or [pmonth = 6])`,
	},
}

func libraryMediator() *mediator.Mediator {
	return mediator.New(sources.NewT1(), sources.NewT2())
}

// traceJSON renders q's translation trace the way qmap -trace does.
func traceJSON(t *testing.T, med *mediator.Mediator, query string) []byte {
	t.Helper()
	q, err := qparse.Parse(query)
	if err != nil {
		t.Fatalf("parsing %q: %v", query, err)
	}
	tracer := obs.NewTracer()
	ctx := obs.WithTracer(t.Context(), tracer)
	if _, err := med.TranslateContext(ctx, q); err != nil {
		t.Fatalf("translating %q: %v", query, err)
	}
	root := tracer.Root()
	if err := obs.Verify(root); err != nil {
		t.Fatalf("trace fails invariants: %v", err)
	}
	js, err := json.MarshalIndent(root, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(js, '\n')
}

func TestGoldenTraces(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			got := traceJSON(t, tc.med(), tc.query)

			// Determinism first: a second translation must trace
			// byte-identically, or a golden is meaningless.
			again := traceJSON(t, tc.med(), tc.query)
			if !bytes.Equal(got, again) {
				t.Fatalf("trace of %q not deterministic", tc.query)
			}

			path := filepath.Join("testdata", tc.name+".json")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create it)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("trace differs from %s:\n--- got ---\n%s\n--- want ---\n%s\n(re-run with -update if the change is intended)",
					path, got, want)
			}
		})
	}
}

// TestGoldenTraceShapes spot-checks structural facts the goldens encode, so
// a regenerated golden that silently lost instrumentation still fails.
func TestGoldenTraceShapes(t *testing.T) {
	q := qparse.MustParse(goldenCases[2].query)
	tracer := obs.NewTracer()
	ctx := obs.WithTracer(t.Context(), tracer)
	if _, err := goldenCases[2].med().TranslateContext(ctx, q); err != nil {
		t.Fatal(err)
	}
	root := tracer.Root()
	if root.Kind != obs.KindTranslate {
		t.Fatalf("root kind = %s, want %s", root.Kind, obs.KindTranslate)
	}
	if n := len(root.FindAll(obs.KindSource)); n != 2 {
		t.Errorf("%d source spans, want 2", n)
	}
	if n := len(root.FindAll(obs.KindPSafe)); n == 0 {
		t.Error("no psafe spans in the Q_book trace")
	}
	if n := len(root.FindAll(obs.KindSCM)); n == 0 {
		t.Error("no scm spans in the Q_book trace")
	}
	for _, sp := range root.FindAll(obs.KindSCM) {
		if _, ok := sp.Counter(obs.CtrEssentialDNFSize); !ok {
			t.Errorf("scm span %q lacks essentialDNFSize", sp.Name)
		}
	}
}
