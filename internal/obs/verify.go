package obs

import "fmt"

// Verify checks the structural accounting invariants every well-formed
// translation trace satisfies, regardless of query or specification:
//
//   - at every SCM span, keptMatchings + suppressedMatchings =
//     candidateMatchings (suppression only drops, never invents work);
//   - essentialDNFSize never grows downward: every span carrying the
//     counter reports a value <= that of its nearest ancestor carrying it,
//     because a child span's subquery constraints are a subset of its
//     parent's (the monotonicity that makes e, not k, the cost driver —
//     Section 8);
//   - every match span's candidateMatchings sums to its parent SCM/PSafe
//     pass's candidate count when the parent is an SCM span.
//
// The conformance-trace tests run Verify over every scenario query; a nil
// error means the trace is internally consistent.
func Verify(root *Span) error {
	if root == nil {
		return fmt.Errorf("obs: empty trace")
	}
	return verifySpan(root, -1)
}

// verifySpan walks the tree carrying the nearest ancestor's
// essentialDNFSize (-1 when no ancestor defines it).
func verifySpan(s *Span, ancestorE int64) error {
	if e, ok := s.Counter(CtrEssentialDNFSize); ok {
		if ancestorE >= 0 && e > ancestorE {
			return fmt.Errorf("obs: span %s %q has essentialDNFSize %d > ancestor's %d",
				s.Kind, s.Name, e, ancestorE)
		}
		ancestorE = e
	}
	if s.Kind == KindSCM {
		cand, _ := s.Counter(CtrCandidates)
		kept, _ := s.Counter(CtrKept)
		supp, _ := s.Counter(CtrSuppressed)
		if kept+supp != cand {
			return fmt.Errorf("obs: scm span %q: kept %d + suppressed %d != candidates %d",
				s.Name, kept, supp, cand)
		}
		var matchSum int64
		hasMatch := false
		for _, c := range s.Children {
			if c.Kind == KindMatch {
				hasMatch = true
				n, _ := c.Counter(CtrCandidates)
				matchSum += n
			}
		}
		if hasMatch && matchSum != cand {
			return fmt.Errorf("obs: scm span %q: match spans sum to %d candidates, span says %d",
				s.Name, matchSum, cand)
		}
	}
	for _, c := range s.Children {
		if err := verifySpan(c, ancestorE); err != nil {
			return err
		}
	}
	return nil
}
