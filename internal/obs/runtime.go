package obs

import "runtime"

// RegisterGoRuntime adds coarse Go runtime metrics to r, sampled at scrape
// time (reading memstats costs a brief stop-the-world, paid only when
// /metrics is hit).
func RegisterGoRuntime(r *Registry) {
	r.GaugeFunc("go_goroutines", "Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	r.CounterFunc("go_gc_cycles_total", "Completed GC cycles.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.NumGC)
		})
	r.GaugeFunc("go_gomaxprocs", "GOMAXPROCS setting.",
		func() float64 { return float64(runtime.GOMAXPROCS(0)) })
}
