package obs_test

import (
	"fmt"
	"testing"

	"repro/internal/conformance"
	"repro/internal/core"
	"repro/internal/obs"
)

// TestConformanceTraceInvariants runs the conformance harness's generated
// scenario queries under tracing and checks, for every case and algorithm:
//
//   - tracing is transparent: the translated query, filter, and Stats are
//     identical to an untraced run;
//   - the span tree satisfies obs.Verify — kept + suppressed = candidates
//     at every SCM span and child essentialDNFSize <= parent's everywhere.
func TestConformanceTraceInvariants(t *testing.T) {
	const cases = 40
	for seed := int64(1); seed <= cases; seed++ {
		c := conformance.NewCase(seed)
		for _, alg := range []string{core.AlgTDQM, core.AlgDNF} {
			name := fmt.Sprintf("%s/%s", c.SeedString(), alg)

			plain := core.NewTranslator(c.S.Spec)
			wantQ, wantF, wantErr := plain.TranslateWithFilter(c.Query, alg)

			traced := core.NewTranslator(c.S.Spec)
			tracer := obs.NewTracer()
			traced.SetTracer(tracer)
			traced.SetMetrics(obs.NewTranslationMetrics(obs.NewRegistry()))
			gotQ, gotF, gotErr := traced.TranslateWithFilter(c.Query, alg)

			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("%s: traced err = %v, untraced err = %v", name, gotErr, wantErr)
			}
			if wantErr != nil {
				continue
			}
			if gotQ.String() != wantQ.String() || gotF.String() != wantF.String() {
				t.Errorf("%s: tracing changed the translation:\n  traced   %s | %s\n  untraced %s | %s",
					name, gotQ, gotF, wantQ, wantF)
			}
			if traced.Stats != plain.Stats {
				t.Errorf("%s: tracing changed Stats: traced %+v, untraced %+v",
					name, traced.Stats, plain.Stats)
			}
			root := tracer.Root()
			if root == nil {
				t.Fatalf("%s: traced translation recorded no spans", name)
			}
			if err := obs.Verify(root); err != nil {
				t.Errorf("%s: %v", name, err)
			}
		}
	}
}
