package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	var g Gauge
	g.Set(7)
	g.Inc()
	g.Dec()
	g.Add(-3)
	if g.Value() != 4 {
		t.Errorf("gauge = %d, want 4", g.Value())
	}
}

func TestHistogramBucketsLeConvention(t *testing.T) {
	h := NewHistogram([]float64{1, 10})
	for _, v := range []float64{0.5, 1, 1.5, 10, 11} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// le convention: v <= bound. 0.5 and exactly-1 land in the first bucket,
	// 1.5 and exactly-10 in the second, 11 in +Inf.
	want := []uint64{2, 2, 1}
	for i, n := range want {
		if s.Counts[i] != n {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], n, s.Counts)
		}
	}
	if s.Count != 5 {
		t.Errorf("count = %d, want 5", s.Count)
	}
	if math.Abs(s.Sum-24) > 1e-9 {
		t.Errorf("sum = %g, want 24", s.Sum)
	}
	h.ObserveDuration(500 * time.Millisecond)
	if h.Count() != 6 {
		t.Errorf("count after ObserveDuration = %d, want 6", h.Count())
	}
}

func TestNewHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHistogram accepted non-ascending bounds")
		}
	}()
	NewHistogram([]float64{1, 1})
}

func TestRegistryVecSharing(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", "rule", "ra", "spec", "amazon")
	b := r.Counter("x_total", "help", "spec", "amazon", "rule", "ra") // label order irrelevant
	c := r.Counter("x_total", "help", "spec", "amazon", "rule", "rb")
	if a != b {
		t.Error("same (name, labels) did not share one counter")
	}
	if a == c {
		t.Error("different labels shared one counter")
	}
}

func TestRegistryPanics(t *testing.T) {
	r := NewRegistry()
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	r.RegisterCounter("dup_total", "h", &Counter{})
	mustPanic("duplicate RegisterCounter", func() { r.RegisterCounter("dup_total", "h", &Counter{}) })
	mustPanic("type conflict", func() { r.Gauge("dup_total", "h") })
	mustPanic("bad metric name", func() { r.Counter("1bad", "h") })
	mustPanic("bad label name", func() { r.Counter("ok_total", "h", "1bad", "v") })
	mustPanic("reserved le label", func() { r.Counter("ok2_total", "h", "le", "v") })
	mustPanic("odd label list", func() { r.Counter("ok3_total", "h", "k") })
}

// TestConcurrentHammer drives every primitive from 16 goroutines under the
// race detector and checks the exact totals: lock-free must still mean
// lossless.
func TestConcurrentHammer(t *testing.T) {
	const goroutines = 16
	const perG = 5000

	r := NewRegistry()
	c := r.Counter("hammer_total", "h")
	g := r.Gauge("hammer_gauge", "h")
	h := r.Histogram("hammer_seconds", "h", []float64{0.25, 0.5, 0.75})

	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				// Deterministic spread across all four buckets.
				h.Observe(float64(j%4) * 0.25)
				// Vec access races against other goroutines creating the
				// same child.
				r.Counter("hammer_vec_total", "h", "worker", "shared").Inc()
			}
		}(i)
	}
	wg.Wait()

	const total = goroutines * perG
	if c.Value() != total {
		t.Errorf("counter = %d, want %d", c.Value(), total)
	}
	if g.Value() != 0 {
		t.Errorf("gauge = %d, want 0", g.Value())
	}
	if v := r.Counter("hammer_vec_total", "h", "worker", "shared").Value(); v != total {
		t.Errorf("vec counter = %d, want %d", v, total)
	}
	s := h.Snapshot()
	if s.Count != total {
		t.Errorf("histogram count = %d, want %d", s.Count, total)
	}
	// j%4 * 0.25 ∈ {0, 0.25, 0.5, 0.75}: 0 and 0.25 land in the first
	// bucket (le convention), 0.5 and 0.75 in their own, +Inf stays empty.
	wantCounts := []uint64{total / 2, total / 4, total / 4, 0}
	for i, n := range wantCounts {
		if s.Counts[i] != n {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], n)
		}
	}
	wantSum := float64(total/4) * (0 + 0.25 + 0.5 + 0.75)
	if math.Abs(s.Sum-wantSum) > 1e-6 {
		t.Errorf("histogram sum = %g, want %g", s.Sum, wantSum)
	}
}

// TestTranslationMetricsNilReceiver checks the disabled path: every method
// of a nil *TranslationMetrics must be a no-op, which is what lets the
// translator call them unguarded.
func TestTranslationMetricsNilReceiver(t *testing.T) {
	var m *TranslationMetrics
	m.RuleFired("s", "r")
	m.RuleSuppressed("s", "r")
	m.SCMCall("s")
	m.PSafeCall("s")
	m.ProductTerms("s", 3)
	m.Disjunctivization("s")
}

func TestTranslationMetricsCounts(t *testing.T) {
	r := NewRegistry()
	m := NewTranslationMetrics(r)
	m.RuleFired("amazon", "ra")
	m.RuleFired("amazon", "ra")
	m.RuleSuppressed("amazon", "rb")
	m.SCMCall("amazon")
	m.ProductTerms("amazon", 5)
	m.ProductTerms("amazon", 0) // zero deltas must not be added

	if v := r.Counter("qmap_rule_fires_total", "", "spec", "amazon", "rule", "ra").Value(); v != 2 {
		t.Errorf("rule fires = %d, want 2", v)
	}
	if v := r.Counter("qmap_rule_suppressed_total", "", "spec", "amazon", "rule", "rb").Value(); v != 1 {
		t.Errorf("rule suppressed = %d, want 1", v)
	}
	if v := r.Counter("qmap_scm_calls_total", "", "spec", "amazon").Value(); v != 1 {
		t.Errorf("scm calls = %d, want 1", v)
	}
	if v := r.Counter("qmap_product_terms_total", "", "spec", "amazon").Value(); v != 5 {
		t.Errorf("product terms = %d, want 5", v)
	}
}
