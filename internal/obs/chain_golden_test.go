package obs_test

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/mediator"
	"repro/internal/obs"
	"repro/internal/qtree"
	"repro/internal/workload"
)

// chainMediator builds a deterministic two-hop chain mediator (workload
// scenario → chain layer, seed-pinned) and a fixed conjunction over the base
// vocabulary. With debug set, translation replays the hops sequentially.
func chainMediator(t *testing.T, debug bool) (*mediator.Mediator, *qtree.Node) {
	t.Helper()
	s := workload.New(workload.Config{Indep: 2, Pairs: 1})
	ch := workload.NewChain(s, rand.New(rand.NewSource(11)))
	chain, err := mediator.Chain(s.Spec, ch.Spec2)
	if err != nil {
		t.Fatalf("Chain: %v", err)
	}
	med := mediator.New()
	med.AddChainSource("chain", chain, s.Eval)
	med.ChainDebug = debug
	q := qtree.And(
		qtree.Leaf(s.Constraint(s.BaseAttrs[0], 0)),
		qtree.Leaf(s.Constraint(s.BaseAttrs[1], 1)),
	).Normalize()
	return med, q
}

// chainTraceJSON renders the chain translation's span tree, verifying the
// structural invariants first.
func chainTraceJSON(t *testing.T, debug bool) []byte {
	t.Helper()
	med, q := chainMediator(t, debug)
	tracer := obs.NewTracer()
	ctx := obs.WithTracer(t.Context(), tracer)
	if _, err := med.TranslateContext(ctx, q); err != nil {
		t.Fatalf("translating: %v", err)
	}
	root := tracer.Root()
	if err := obs.Verify(root); err != nil {
		t.Fatalf("trace fails invariants: %v", err)
	}
	js, err := json.MarshalIndent(root, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(js, '\n')
}

// TestGoldenChainTraces pins the span trees of the composed one-hop
// translation and the ChainDebug sequential two-hop replay of the same
// query. Regenerate deliberately with
//
//	go test ./internal/obs/ -run TestGoldenChainTraces -update
func TestGoldenChainTraces(t *testing.T) {
	for _, tc := range []struct {
		name  string
		debug bool
	}{
		{"chain_composed", false},
		{"chain_sequential", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := chainTraceJSON(t, tc.debug)
			again := chainTraceJSON(t, tc.debug)
			if !bytes.Equal(got, again) {
				t.Fatalf("chain trace (debug=%v) not deterministic", tc.debug)
			}
			path := filepath.Join("testdata", tc.name+".json")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create it)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("trace differs from %s:\n--- got ---\n%s\n--- want ---\n%s\n(re-run with -update if the change is intended)",
					path, got, want)
			}
		})
	}
}

// TestChainTraceShapes asserts the structural difference the goldens encode:
// the sequential replay traces one "source" span per hop (named hop:<spec>)
// under the source span, while the composed path traces the source span
// alone — same query, one hop of algorithm work.
func TestChainTraceShapes(t *testing.T) {
	shape := func(debug bool) (*obs.Span, []*obs.Span) {
		med, q := chainMediator(t, debug)
		tracer := obs.NewTracer()
		ctx := obs.WithTracer(t.Context(), tracer)
		if _, err := med.TranslateContext(ctx, q); err != nil {
			t.Fatal(err)
		}
		root := tracer.Root()
		if err := obs.Verify(root); err != nil {
			t.Fatalf("debug=%v: %v", debug, err)
		}
		return root, root.FindAll(obs.KindSource)
	}

	_, seqSources := shape(true)
	var hops []string
	for _, sp := range seqSources {
		if strings.HasPrefix(sp.Name, "hop:") {
			hops = append(hops, sp.Name)
		}
	}
	if len(hops) != 2 {
		t.Fatalf("sequential trace has %d hop spans, want 2: %v", len(hops), hops)
	}
	if !strings.HasPrefix(hops[1], "hop:K_chain") {
		t.Errorf("second hop span %q does not name the chain spec", hops[1])
	}

	compRoot, compSources := shape(false)
	for _, sp := range compSources {
		if strings.HasPrefix(sp.Name, "hop:") {
			t.Errorf("composed trace contains hop span %q", sp.Name)
		}
	}
	if len(compSources) != 1 {
		t.Errorf("composed trace has %d source spans, want 1", len(compSources))
	}
	if len(compRoot.FindAll(obs.KindSCM)) == 0 {
		t.Error("composed trace has no SCM spans")
	}
}
