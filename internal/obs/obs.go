// Package obs is the zero-dependency observability layer of the
// reproduction: span-tree tracing for the translation pipeline and an
// atomic metrics registry with Prometheus text exposition.
//
// # Tracing
//
// A Tracer collects a tree of Spans, one per unit of translation work —
// TDQM node visit, EDNF computation, PSafe partition, SCM invocation, rule
// matching attempt — each carrying integer counters (candidate matchings,
// suppressed submatchings, emitted atoms, essential-DNF support size e).
// Traces make the paper's Section 4.4 / Section 8 cost model directly
// observable per query: SCM work is linear in constraints and rules, while
// the safety-check work of EDNF/TDQM is driven by the dependency degree e,
// not the query size k. Traces are deterministic given a query (a Tracer
// records no wall-clock time unless WithWallClock is set), serialize to
// JSON, and attach to a context.Context so that the disabled hot path pays
// a single nil-check.
//
// # Metrics
//
// A Registry holds named counters, gauges, and histograms (all lock-free
// atomics on the update path) with optional label pairs, and renders them
// in the Prometheus text exposition format (WritePrometheus). cmd/mediatord
// serves a Registry at GET /metrics alongside net/http/pprof;
// TranslationMetrics adds the per-rule fire/suppress counters the
// translation core feeds.
//
// The package deliberately imports nothing outside the standard library and
// nothing from the rest of the repository, so every layer (qtree to HTTP
// daemon) can depend on it.
package obs

import "context"

type tracerKey struct{}

// WithTracer returns a context carrying t. A nil t returns ctx unchanged.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom returns the tracer attached to ctx, or nil. Callers on the hot
// path check the result against nil once and skip all tracing work.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}
