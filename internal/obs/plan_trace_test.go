package obs_test

import (
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/qparse"
	"repro/internal/sources"
)

// TestTracingWithPlanMatchesPlanFree pins the translation plan's
// bypass-or-record contract under tracing: for every golden query and source
// spec, the span tree of a traced translation with a warm shared Plan
// attached is byte-identical to a plan-free traced run. Traced lookups never
// consult the plan (every TDQM/SCM/PSafe/EDNF run must emit its spans), so
// the golden trace files stay stable with translation plans wired in by the
// serving layer.
func TestTracingWithPlanMatchesPlanFree(t *testing.T) {
	for _, tc := range goldenCases {
		q := qparse.MustParse(tc.query)
		for _, src := range []*sources.Source{
			sources.NewT1(), sources.NewT2(), sources.NewAmazon(), sources.NewClbooks(),
		} {
			plan := core.NewPlan(0)
			// Warm the plan with an untraced run so the traced run below
			// would hit on every lookup if it (incorrectly) consulted it.
			warm := core.NewTranslator(src.Spec, core.WithPlan(plan))
			if _, _, err := warm.TranslateWithFilter(q, core.AlgTDQM); err != nil {
				t.Fatalf("%s over %s: warming: %v", tc.name, src.Name, err)
			}

			trace := func(withPlan bool) []byte {
				var opts []core.Option
				if withPlan {
					opts = append(opts, core.WithPlan(plan))
				}
				tr := core.NewTranslator(src.Spec, opts...)
				tracer := obs.NewTracer()
				tr.SetTracer(tracer)
				if _, _, err := tr.TranslateWithFilter(q, core.AlgTDQM); err != nil {
					t.Fatalf("%s over %s: %v", tc.name, src.Name, err)
				}
				if err := obs.Verify(tracer.Root()); err != nil {
					t.Fatalf("%s over %s (plan=%v): trace fails invariants: %v",
						tc.name, src.Name, withPlan, err)
				}
				js, err := json.Marshal(tracer.Root())
				if err != nil {
					t.Fatal(err)
				}
				return js
			}
			on, off := trace(true), trace(false)
			if string(on) != string(off) {
				t.Errorf("%s over %s: plan-on trace differs from plan-free trace\n on: %s\noff: %s",
					tc.name, src.Name, on, off)
			}
		}
	}
}
