package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "counts b", "spec", "amazon").Add(3)
	r.Gauge("a_gauge", "a gauge").Set(-2)
	r.GaugeFunc("c_sampled", "sampled", func() float64 { return 1.5 })

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := `# HELP a_gauge a gauge
# TYPE a_gauge gauge
a_gauge -2
# HELP b_total counts b
# TYPE b_total counter
b_total{spec="amazon"} 3
# HELP c_sampled sampled
# TYPE c_sampled gauge
c_sampled 1.5
`
	if got != want {
		t.Errorf("exposition:\n%s\nwant:\n%s", got, want)
	}
}

func TestExpositionEscapingRoundTrip(t *testing.T) {
	r := NewRegistry()
	ugly := "back\\slash \"quoted\"\nnewline"
	r.Counter("escape_total", "help with\nnewline and back\\slash", "q", ugly).Inc()

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "\n") != 3 {
		t.Fatalf("escaped output must stay 3 lines:\n%q", out)
	}
	if !strings.Contains(out, `q="back\\slash \"quoted\"\nnewline"`) {
		t.Errorf("label not escaped per the exposition rules:\n%s", out)
	}

	samples, err := ParseExposition(strings.NewReader(out))
	if err != nil {
		t.Fatalf("ParseExposition: %v\n%s", err, out)
	}
	if len(samples) != 1 {
		t.Fatalf("parsed %d samples, want 1", len(samples))
	}
	if got := samples[0].Label("q"); got != ugly {
		t.Errorf("label round trip = %q, want %q", got, ugly)
	}
	if samples[0].Name != "escape_total" || samples[0].Value != 1 {
		t.Errorf("sample = %+v", samples[0])
	}
}

func TestHistogramExpositionCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.001, 0.01}, "source", "amazon")
	for _, v := range []float64{0.0005, 0.002, 0.002, 0.5} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := `# HELP lat_seconds latency
# TYPE lat_seconds histogram
lat_seconds_bucket{source="amazon",le="0.001"} 1
lat_seconds_bucket{source="amazon",le="0.01"} 3
lat_seconds_bucket{source="amazon",le="+Inf"} 4
lat_seconds_sum{source="amazon"} 0.5045
lat_seconds_count{source="amazon"} 4
`
	if got != want {
		t.Errorf("histogram exposition:\n%s\nwant:\n%s", got, want)
	}

	// The scrape must parse, buckets must be cumulative, and the +Inf
	// bucket must equal the count.
	samples, err := ParseExposition(strings.NewReader(got))
	if err != nil {
		t.Fatal(err)
	}
	var buckets []float64
	var count float64
	for _, s := range samples {
		switch s.Name {
		case "lat_seconds_bucket":
			buckets = append(buckets, s.Value)
		case "lat_seconds_count":
			count = s.Value
		}
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] < buckets[i-1] {
			t.Errorf("buckets not cumulative: %v", buckets)
		}
	}
	if len(buckets) == 0 || buckets[len(buckets)-1] != count {
		t.Errorf("+Inf bucket %v != count %v", buckets, count)
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total", "z", "b", "2").Inc()
	r.Counter("z_total", "z", "a", "1").Inc()
	r.Counter("a_total", "a").Inc()

	var first bytes.Buffer
	if err := r.WritePrometheus(&first); err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := r.WritePrometheus(&second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Errorf("two scrapes differ:\n%s\n%s", first.String(), second.String())
	}
	if !strings.HasPrefix(first.String(), "# HELP a_total") {
		t.Errorf("families not sorted by name:\n%s", first.String())
	}
}

func TestParseExpositionRejectsMalformed(t *testing.T) {
	bad := []string{
		"# BOGUS comment here",
		"# TYPE too few",
		"# TYPE x notatype",
		"novalue",
		`x{k="unterminated} 1`,
		`x{k="v"} notafloat`,
		`x{k="bad\escape"} 1`,
		`1name 2`,
	}
	for _, line := range bad {
		if _, err := ParseExposition(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("ParseExposition accepted %q", line)
		}
	}
}
