package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): a # HELP and # TYPE line per family,
// then one sample line per labeled instance, histograms expanded into
// cumulative le-buckets plus _sum and _count. Output is deterministic:
// families sorted by name, instances by canonical label order, label pairs
// sorted by key.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	// Snapshot family/child structure under the lock; values are read
	// atomically afterwards.
	type inst struct {
		labels [][2]string
		c      *child
	}
	type fam struct {
		name, help, typ string
		insts           []inst
	}
	fams := make([]fam, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		keys := append([]string(nil), f.order...)
		sort.Strings(keys)
		fm := fam{name: f.name, help: f.help, typ: f.typ}
		for _, k := range keys {
			c := f.children[k]
			fm.insts = append(fm.insts, inst{labels: c.labels, c: c})
		}
		fams = append(fams, fm)
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, in := range f.insts {
			c := in.c
			switch {
			case c.hist != nil:
				s := c.hist.Snapshot()
				cum := uint64(0)
				for i, n := range s.Counts {
					cum += n
					le := "+Inf"
					if i < len(s.Bounds) {
						le = formatFloat(s.Bounds[i])
					}
					fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, renderLabels(in.labels, le), cum)
				}
				fmt.Fprintf(bw, "%s_sum%s %s\n", f.name, renderLabels(in.labels, ""), formatFloat(s.Sum))
				fmt.Fprintf(bw, "%s_count%s %d\n", f.name, renderLabels(in.labels, ""), s.Count)
			case c.counter != nil:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, renderLabels(in.labels, ""), c.counter.Value())
			case c.gauge != nil:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, renderLabels(in.labels, ""), c.gauge.Value())
			case c.fn != nil:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, renderLabels(in.labels, ""), formatFloat(c.fn()))
			}
		}
	}
	return bw.Flush()
}

// renderLabels renders {k="v",…}, appending an le pair when non-empty.
// Returns "" for no labels at all.
func renderLabels(labels [][2]string, le string) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	parts := make([]string, 0, len(labels)+1)
	for _, l := range labels {
		parts = append(parts, l[0]+`="`+escapeLabel(l[1])+`"`)
	}
	if le != "" {
		parts = append(parts, `le="`+le+`"`)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// escapeHelp escapes backslash and newline in HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes backslash, double quote, and newline in a label
// value, per the exposition format's escaping rules.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// formatFloat renders a float the way Prometheus expects.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Sample is one parsed exposition line.
type Sample struct {
	// Name is the sample's metric name (for histograms, the expanded
	// _bucket/_sum/_count name).
	Name string
	// Labels holds the label pairs, including any "le".
	Labels map[string]string
	// Value is the sample value.
	Value float64
}

// Label returns the named label's value ("" when absent).
func (s Sample) Label(name string) string { return s.Labels[name] }

// ParseExposition is a minimal hand-rolled parser for the Prometheus text
// format as produced by WritePrometheus — enough for the repository's own
// tests and smoke checks to validate a scrape without depending on
// client_golang. It returns every sample line; # comments are checked for
// HELP/TYPE well-formedness and skipped.
func ParseExposition(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return nil, fmt.Errorf("obs: line %d: malformed comment %q", lineNo, line)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("obs: line %d: malformed TYPE %q", lineNo, line)
				}
				switch fields[3] {
				case typeCounter, typeGauge, typeHistogram, "summary", "untyped":
				default:
					return nil, fmt.Errorf("obs: line %d: unknown type %q", lineNo, fields[3])
				}
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseSample parses `name{k="v",…} value`.
func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("no value in %q", line)
	}
	s.Name = line[:i]
	if err := checkMetricName(s.Name); err != nil {
		return s, err
	}
	rest := line[i:]
	if rest[0] == '{' {
		rest = rest[1:]
		for {
			rest = strings.TrimLeft(rest, ",")
			if rest == "" {
				return s, fmt.Errorf("unterminated label set in %q", line)
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.Index(rest, "=")
			if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
				return s, fmt.Errorf("malformed label in %q", line)
			}
			key := rest[:eq]
			val, n, err := unescapeLabel(rest[eq+2:])
			if err != nil {
				return s, fmt.Errorf("%v in %q", err, line)
			}
			s.Labels[key] = val
			rest = rest[eq+2+n:]
		}
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %v", line, err)
	}
	s.Value = v
	return s, nil
}

// unescapeLabel consumes an escaped label value up to its closing quote,
// returning the value and the number of input bytes consumed (including
// the quote).
func unescapeLabel(in string) (string, int, error) {
	var b strings.Builder
	for i := 0; i < len(in); i++ {
		switch in[i] {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			if i+1 >= len(in) {
				return "", 0, fmt.Errorf("dangling escape")
			}
			i++
			switch in[i] {
			case 'n':
				b.WriteByte('\n')
			case '\\', '"':
				b.WriteByte(in[i])
			default:
				return "", 0, fmt.Errorf("unknown escape \\%c", in[i])
			}
		default:
			b.WriteByte(in[i])
		}
	}
	return "", 0, fmt.Errorf("unterminated label value")
}
