package obs_test

import (
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/qparse"
	"repro/internal/sources"
)

// TestTracingWithMemoMatchesMemoFree pins the memo's bypass-or-record
// contract under tracing: for every golden query and source spec, the span
// tree of a traced translation with the matching memo enabled (the default)
// is byte-identical to one with the memo disabled, and satisfies the trace
// invariants. This is what keeps the golden trace files of golden_test.go
// stable with the memo on by default.
func TestTracingWithMemoMatchesMemoFree(t *testing.T) {
	for _, tc := range goldenCases {
		q := qparse.MustParse(tc.query)
		for _, src := range []*sources.Source{
			sources.NewT1(), sources.NewT2(), sources.NewAmazon(), sources.NewClbooks(),
		} {
			trace := func(memo bool) []byte {
				tr := core.NewTranslator(src.Spec)
				tr.SetMemo(memo)
				tracer := obs.NewTracer()
				tr.SetTracer(tracer)
				if _, _, err := tr.TranslateWithFilter(q, core.AlgTDQM); err != nil {
					t.Fatalf("%s over %s: %v", tc.name, src.Name, err)
				}
				if err := obs.Verify(tracer.Root()); err != nil {
					t.Fatalf("%s over %s (memo=%v): trace fails invariants: %v",
						tc.name, src.Name, memo, err)
				}
				js, err := json.Marshal(tracer.Root())
				if err != nil {
					t.Fatal(err)
				}
				return js
			}
			on, off := trace(true), trace(false)
			if string(on) != string(off) {
				t.Errorf("%s over %s: memo-on trace differs from memo-off trace\n on: %s\noff: %s",
					tc.name, src.Name, on, off)
			}
		}
	}
}
