// Package mediator implements the mediation pipeline of Section 2: it holds
// the integrated views, translates a constraint query for every underlying
// source (Eq. 1 → Eq. 2), derives the filter query F of Eq. 3, executes the
// translated queries on the sources' data through each source's native
// evaluator, combines the results, and post-filters the false positives.
//
// Data model. Each source's relation holds "universe" tuples that carry the
// source's native attributes alongside the mediator-view attributes they
// derive from — the materialization of the conceptual conversion relations X
// of Section 2. This lets original and translated queries be evaluated on
// the same tuples, which is how the test suite verifies the subsumption
// guarantee of Definition 1 and the correctness property of Eq. 3.
package mediator

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/qtree"
	"repro/internal/sources"
)

// View documents one integrated mediator view: its attributes and the
// source relations it expands to (Example 3's fac and pub).
type View struct {
	Name  string
	Attrs []string
	// Expansions maps source name → the source relations contributing to
	// this view (e.g. fac → {t1: [aubib], t2: [prof]}).
	Expansions map[string][]string
}

// Mediator binds the integrated views and the underlying sources.
type Mediator struct {
	Views   []View
	Sources []*sources.Source
	// Algorithm selects the translation algorithm (core.AlgTDQM default).
	Algorithm string
	// Eval evaluates mediator-vocabulary queries (the filter F) over
	// universe tuples. Defaults to the standard evaluator.
	Eval *engine.Evaluator
	// Glue holds the view-definition constraints of Eq. 1 that relate the
	// sources' contributions (e.g. Example 3's join of aubib and prof on
	// person identity). ExecuteJoin applies it after the cross product,
	// before the filter. Nil means no glue.
	Glue *qtree.Node
	// Indexes optionally holds per-source equality indexes (by source
	// name); the executors then answer indexable translated queries with
	// probes instead of scans. Overridden operators always fall back.
	Indexes map[string]engine.IndexSet
	// Metrics, when non-nil, receives cumulative rule-level translation
	// counters (rule fires, suppressions, SCM/PSafe calls) for every
	// translation this mediator performs. Nil disables the accounting.
	Metrics *obs.TranslationMetrics
	// Parallelism bounds the worker pool each translator may use for
	// per-branch mapping (core.WithParallelism), and the fan-out width of
	// TranslateBatch. Zero or one keeps translation sequential; traced
	// translations are always sequential.
	Parallelism int
	// MatchCache, when non-nil, is the shared cross-request matchings cache
	// every translator this mediator creates consults (core.MatchCache).
	// Translations are identical with or without it; internal/serve wires
	// one in by default.
	MatchCache *core.MatchCache
	// Plan, when non-nil, is the shared cross-request translation plan every
	// translator this mediator creates consults (core.Plan): cached
	// TDQM/PSafe/EDNF/SCM fragments keyed by exact query shape. Results,
	// Stats, metrics, and traces are identical with or without it;
	// internal/serve wires one in by default.
	Plan *core.Plan
	// Chains maps source name → the offline-composed mapping chain behind
	// that source (see AddChainSource). Translation normally goes through
	// the single composed spec; ChainDebug replays the original hops.
	Chains map[string]*ChainSpec
	// ChainDebug switches chain-backed sources to sequential hop-by-hop
	// translation through the original specs. Filtered answers are identical
	// to the composed path's; the branch residue is conservatively Q and
	// translation does multi-hop work — a differential-checking mode, not a
	// serving mode.
	ChainDebug bool
}

// selectFrom runs a translated query against a source relation, using the
// source's indexes when available.
func (m *Mediator) selectFrom(sourceName string, rel *engine.Relation, q *qtree.Node, ev *engine.Evaluator) (*engine.Relation, error) {
	if ix, ok := m.Indexes[sourceName]; ok {
		return rel.SelectIndexed(q, ev, ix)
	}
	return rel.Select(q, ev)
}

// New returns a mediator over the given sources using Algorithm TDQM.
func New(srcs ...*sources.Source) *Mediator {
	return &Mediator{Sources: srcs, Algorithm: core.AlgTDQM, Eval: engine.NewEvaluator()}
}

// SourceTranslation is the per-source outcome of translating one query.
type SourceTranslation struct {
	Source *sources.Source
	// Query is S_i(Q), expressed in the source's native vocabulary.
	Query *qtree.Node
	// Residue is the part of Q this source realizes only inexactly
	// (True when the source's translation is exact).
	Residue *qtree.Node
	// Stats records the translation work performed.
	Stats core.Stats
}

// Translation is the full outcome: per-source mappings plus the global
// filter query F of Eq. 3.
type Translation struct {
	Query   *qtree.Node
	Sources []SourceTranslation
	// Filter is F: with join-style integration, Q = F ∧ S_1(Q) ∧ … ∧ S_n(Q).
	Filter *qtree.Node
}

// BranchFilter returns the union-integration post-filter for one branch:
// the branch residue when it is usable as-is (a tight residue from a simple
// conjunction, or an exact branch whose residue is True), otherwise the
// whole query — the safe fallback for complex queries whose residue is only
// sound branch-locally. ExecuteUnion, the serving layer, and the streaming
// pipeline all share this decision so the three paths cannot drift.
func (tr *Translation) BranchFilter(st *SourceTranslation) *qtree.Node {
	filter := st.Residue
	if !tr.Query.IsSimpleConjunction() && !filter.IsTrue() {
		filter = tr.Query
	}
	return filter
}

// Translate maps q for every source and computes the filter query.
//
// For a simple conjunction the filter is tight (Example 3): a constraint
// enters F only if no source realizes it exactly. For complex queries F is
// True when every source translated exactly, otherwise Q itself.
func (m *Mediator) Translate(q *qtree.Node) (*Translation, error) {
	return m.translate(q, nil)
}

// TranslateContext is Translate with observability: if the context carries
// an obs.Tracer (see obs.WithTracer), the translation emits a span tree —
// one "translate" root, one "source" span per source, and beneath each the
// algorithm spans recorded by the core translator. The translated queries
// and stats are identical to Translate's; tracing only observes.
func (m *Mediator) TranslateContext(ctx context.Context, q *qtree.Node) (*Translation, error) {
	return m.translate(q, obs.TracerFrom(ctx))
}

func (m *Mediator) translate(q *qtree.Node, tracer *obs.Tracer) (*Translation, error) {
	q = q.Normalize()
	out := &Translation{Query: q}
	alg := m.Algorithm
	if alg == "" {
		alg = core.AlgTDQM
	}
	if tracer != nil {
		root := tracer.Start(obs.KindTranslate, q.String())
		defer tracer.End()
		root.Set(obs.CtrQuerySize, int64(q.Size()))
	}
	newTranslator := func(src *sources.Source) *core.Translator {
		return core.NewTranslator(src.Spec,
			core.WithTracer(tracer),
			core.WithMetrics(m.Metrics),
			core.WithParallelism(m.Parallelism),
			core.WithMatchCache(m.MatchCache),
			core.WithPlan(m.Plan))
	}
	startSource := func(src *sources.Source) {
		if tracer != nil {
			tracer.Start(obs.KindSource, src.Name)
		}
	}
	endSource := func() {
		if tracer != nil {
			tracer.End()
		}
	}

	if q.IsSimpleConjunction() {
		cs := q.SimpleConjuncts()
		exact := qtree.NewConstraintSet()
		for _, src := range m.Sources {
			if st, ok, err := m.chainDebugTranslate(src, q, alg, tracer); err != nil {
				return nil, err
			} else if ok {
				// A chain-debug source contributes nothing to the exact set:
				// per-hop exactness does not decompose per constraint, so its
				// constraints stay in the filter.
				out.Sources = append(out.Sources, st)
				continue
			}
			tr := newTranslator(src)
			startSource(src)
			res, err := tr.SCM(cs)
			endSource()
			if err != nil {
				return nil, fmt.Errorf("mediator: translating for %s: %w", src.Name, err)
			}
			for _, mt := range res.Matchings {
				if mt.Rule.Exact {
					exact.AddAll(mt.Set)
				}
			}
			out.Sources = append(out.Sources, SourceTranslation{
				Source: src, Query: res.Query, Residue: res.Residue, Stats: tr.Stats,
			})
			m.noteComposed(src)
		}
		var residual []*qtree.Node
		for _, c := range cs {
			if !exact.Has(c) {
				residual = append(residual, qtree.Leaf(c))
			}
		}
		out.Filter = qtree.And(residual...).Normalize()
		return out, nil
	}

	allExact := true
	for _, src := range m.Sources {
		if st, ok, err := m.chainDebugTranslate(src, q, alg, tracer); err != nil {
			return nil, err
		} else if ok {
			allExact = false
			out.Sources = append(out.Sources, st)
			continue
		}
		tr := newTranslator(src)
		startSource(src)
		mapped, residue, err := tr.TranslateWithFilter(q, alg)
		endSource()
		if err != nil {
			return nil, fmt.Errorf("mediator: translating for %s: %w", src.Name, err)
		}
		if !residue.IsTrue() {
			allExact = false
		}
		out.Sources = append(out.Sources, SourceTranslation{
			Source: src, Query: mapped, Residue: residue, Stats: tr.Stats,
		})
		m.noteComposed(src)
	}
	if allExact {
		out.Filter = qtree.True()
	} else {
		out.Filter = q.Clone()
	}
	return out, nil
}

// TranslationResult is one query's outcome in a TranslateBatch call. Err
// is set per item: a query that fails to translate does not abort the
// batch.
type TranslationResult struct {
	Translation *Translation
	Err         error
}

// TranslateBatch maps every query in qs in a single call. Each item's
// Translation is identical to a per-query Translate loop — batching only
// amortizes shared work: every translator consults the mediator's shared
// MatchCache, so constraint groups recurring across the batch are derived
// once, and with Parallelism > 1 the queries fan out over that many worker
// goroutines (translators are per-call, the cache and metrics are
// concurrency-safe). A tracer carried by ctx forces the batch sequential,
// as with TranslateContext.
func (m *Mediator) TranslateBatch(ctx context.Context, qs []*qtree.Node) []TranslationResult {
	out := make([]TranslationResult, len(qs))
	tracer := obs.TracerFrom(ctx)
	workers := m.Parallelism
	if tracer != nil {
		workers = 1
	}
	if workers > len(qs) {
		workers = len(qs)
	}
	if workers <= 1 {
		for i, q := range qs {
			if err := ctx.Err(); err != nil {
				out[i] = TranslationResult{Err: err}
				continue
			}
			tr, err := m.translate(q, tracer)
			out[i] = TranslationResult{Translation: tr, Err: err}
		}
		return out
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := ctx.Err(); err != nil {
					out[i] = TranslationResult{Err: err}
					continue
				}
				tr, err := m.translate(qs[i], nil)
				out[i] = TranslationResult{Translation: tr, Err: err}
			}
		}()
	}
	for i := range qs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// ExecuteUnion runs q in union-style integration: every source materializes
// the same integrated view, each source's translated query selects its
// native relation, each branch is post-filtered with the *branch* residue
// (per Eq. 3 restricted to that source), and the results are unioned.
// data maps source name → that source's universe relation.
func (m *Mediator) ExecuteUnion(q *qtree.Node, data map[string]*engine.Relation) (*engine.Relation, *Translation, error) {
	tr, err := m.Translate(q)
	if err != nil {
		return nil, nil, err
	}
	out := engine.NewRelation("result")
	seen := make(map[string]bool)
	for _, st := range tr.Sources {
		rel, ok := data[st.Source.Name]
		if !ok {
			return nil, nil, fmt.Errorf("mediator: no data for source %s", st.Source.Name)
		}
		native, err := m.selectFrom(st.Source.Name, rel, st.Query, st.Source.Eval)
		if err != nil {
			return nil, nil, err
		}
		// Branch filter: for union integration each branch must satisfy Q
		// in full, so re-check the branch residue (tight) or Q (safe).
		filtered, err := native.Select(tr.BranchFilter(&st), m.Eval)
		if err != nil {
			return nil, nil, err
		}
		for _, t := range filtered.Tuples {
			key := t.String()
			if !seen[key] {
				seen[key] = true
				out.Tuples = append(out.Tuples, t)
			}
		}
	}
	sortRelation(out)
	return out, tr, nil
}

// ExecuteJoin runs q in join-style integration (Eq. 2): each source's
// translated query selects its universe relation, the selections are
// cross-multiplied, and the global filter F removes the false positives.
// Universe tuples of different sources are expected to use disjoint
// attribute keys (view/relation-qualified), as in Example 3.
func (m *Mediator) ExecuteJoin(q *qtree.Node, data map[string]*engine.Relation) (*engine.Relation, *Translation, error) {
	tr, err := m.Translate(q)
	if err != nil {
		return nil, nil, err
	}
	var combined *engine.Relation
	for _, st := range tr.Sources {
		rel, ok := data[st.Source.Name]
		if !ok {
			return nil, nil, fmt.Errorf("mediator: no data for source %s", st.Source.Name)
		}
		sel, err := m.selectFrom(st.Source.Name, rel, st.Query, st.Source.Eval)
		if err != nil {
			return nil, nil, err
		}
		if combined == nil {
			combined = sel
		} else {
			combined = engine.Product(combined, sel)
		}
	}
	if combined == nil {
		return engine.NewRelation("result"), tr, nil
	}
	if m.Glue != nil {
		combined, err = combined.Select(m.Glue, m.Eval)
		if err != nil {
			return nil, nil, err
		}
	}
	out, err := combined.Select(tr.Filter, m.Eval)
	if err != nil {
		return nil, nil, err
	}
	out.Name = "result"
	sortRelation(out)
	return out, tr, nil
}

// ExecuteUnionByDisjunct runs q in union-style integration with per-branch
// filtering: the query's top-level disjuncts are translated and filtered
// independently (σ_Q(D) = ∪ σ_Di(D)), so branches that are simple
// conjunctions get the tight residue of Example 3 instead of the whole-query
// fallback filter. The answer set is identical to ExecuteUnion's; the
// filtering work is smaller whenever some branch translates exactly.
func (m *Mediator) ExecuteUnionByDisjunct(q *qtree.Node, data map[string]*engine.Relation) (*engine.Relation, error) {
	q = q.Normalize()
	out := engine.NewRelation("result")
	seen := make(map[string]bool)
	for _, d := range q.Disjuncts() {
		branch, _, err := m.ExecuteUnion(d, data)
		if err != nil {
			return nil, err
		}
		for _, t := range branch.Tuples {
			key := t.String()
			if !seen[key] {
				seen[key] = true
				out.Tuples = append(out.Tuples, t)
			}
		}
	}
	sortRelation(out)
	return out, nil
}

func sortRelation(r *engine.Relation) {
	sort.Slice(r.Tuples, func(i, j int) bool {
		return r.Tuples[i].String() < r.Tuples[j].String()
	})
}
