package mediator

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/qparse"
	"repro/internal/qtree"
	"repro/internal/sources"
)

// example3Query is Q of Example 3: papers written by CS faculty interested
// in data mining.
const example3Query = `[fac.ln = pub.ln] and [fac.fn = pub.fn] and ` +
	`[fac.bib contains data(near)mining] and [fac.dept = cs]`

// TestExample3Translation reproduces Example 3's mappings:
// S1(Q) = [paper.au = aubib.name] ∧ [aubib.bib contains data(∧)mining],
// S2(Q) = [prof.dept = 230], and F = c (the only inexactly realized
// constraint).
func TestExample3Translation(t *testing.T) {
	med := New(sources.NewT1(), sources.NewT2())
	q := qparse.MustParse(example3Query)

	tr, err := med.Translate(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Sources) != 2 {
		t.Fatalf("got %d source translations", len(tr.Sources))
	}

	s1 := tr.Sources[0]
	wantS1 := qparse.MustParse(`[fac.aubib.name = pub.paper.au] and ` +
		`[fac.aubib.bib contains data(^)mining]`)
	if !s1.Query.EqualCanonical(wantS1) {
		t.Errorf("S1(Q)\n got: %s\nwant: %s", s1.Query, wantS1)
	}

	s2 := tr.Sources[1]
	wantS2 := qparse.MustParse(`[fac.prof.dept = 230]`)
	if !s2.Query.EqualCanonical(wantS2) {
		t.Errorf("S2(Q)\n got: %s\nwant: %s", s2.Query, wantS2)
	}

	wantF := qparse.MustParse(`[fac.bib contains data(near)mining]`)
	if !tr.Filter.EqualCanonical(wantF) {
		t.Errorf("F\n got: %s\nwant: %s", tr.Filter, wantF)
	}

	for _, st := range tr.Sources {
		if err := st.Source.Target().Expressible(st.Query); err != nil {
			t.Errorf("%s: %v", st.Source.Name, err)
		}
	}
}

// TestExample3EndToEnd executes Example 3's pipeline (Eq. 2) on synthetic
// library data and checks Eq. 3: the mediated result equals evaluating the
// original Q over the glued universe.
func TestExample3EndToEnd(t *testing.T) {
	people, papers := sources.GenLibrary(42, 12, 30)
	t1 := sources.T1Relation(people, papers)
	t2 := sources.T2Relation(people)
	data := map[string]*engine.Relation{"t1": t1, "t2": t2}

	med := New(sources.NewT1(), sources.NewT2())
	med.Glue = sources.LibraryGlue()
	q := qparse.MustParse(example3Query)

	got, _, err := med.ExecuteJoin(q, data)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: evaluate Q directly over the glued cross product.
	universe := engine.Product(t1, t2)
	glued, err := universe.Select(med.Glue, med.Eval)
	if err != nil {
		t.Fatal(err)
	}
	want, err := glued.Select(q, med.Eval)
	if err != nil {
		t.Fatal(err)
	}
	sortRelation(want)
	if got.Len() != want.Len() {
		t.Fatalf("mediated result has %d tuples, direct evaluation %d", got.Len(), want.Len())
	}
	if want.Len() == 0 {
		t.Fatalf("test data produced no matches; weak test")
	}
	for i := range want.Tuples {
		if got.Tuples[i].String() != want.Tuples[i].String() {
			t.Fatalf("tuple %d differs:\n got: %s\nwant: %s", i, got.Tuples[i], want.Tuples[i])
		}
	}
}

// TestExample3Subsumption checks Definition 1 on data: each source's
// translated query selects a superset of what Q selects (restricted to that
// source's part of the universe, witnessed on the full universe tuples).
func TestExample3Subsumption(t *testing.T) {
	people, papers := sources.GenLibrary(7, 10, 20)
	t1 := sources.T1Relation(people, papers)
	med := New(sources.NewT1(), sources.NewT2())
	q := qparse.MustParse(example3Query)
	tr, err := med.Translate(q)
	if err != nil {
		t.Fatal(err)
	}
	s1 := tr.Sources[0]

	// Build full universe tuples (T1 attrs + matching person's T2 attrs) so
	// Q itself is evaluable.
	t2 := sources.T2Relation(people)
	universe, err := engine.Product(t1, t2).Select(sources.LibraryGlue(), med.Eval)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, tup := range universe.Tuples {
		inQ, err := med.Eval.EvalQuery(q, tup)
		if err != nil {
			t.Fatal(err)
		}
		if !inQ {
			continue
		}
		count++
		inS1, err := s1.Source.Eval.EvalQuery(s1.Query, tup)
		if err != nil {
			t.Fatal(err)
		}
		if !inS1 {
			t.Fatalf("tuple satisfies Q but not S1(Q): %s", tup)
		}
	}
	if count == 0 {
		t.Fatal("no tuples satisfied Q; weak test")
	}
}

// TestSelfJoinRule exercises rule R8 of K2: a self-join over two fac
// instances maps to the corresponding prof self-join with instance indexes
// preserved.
func TestSelfJoinRule(t *testing.T) {
	tr := core.NewTranslator(sources.NewT2().Spec)
	q := qparse.MustParse(`[fac[1].ln = fac[2].ln]`)
	got, err := tr.Translate(q, core.AlgSCM)
	if err != nil {
		t.Fatal(err)
	}
	want := qparse.MustParse(`[fac[1].prof.ln = fac[2].prof.ln]`)
	if !got.EqualCanonical(want) {
		t.Errorf("got %s, want %s", got, want)
	}
}

// TestUnionIntegration exercises union-style mediation over the two
// bookstores of Example 1: Amazon answers exactly; Clbooks relaxes to word
// containment and the mediator's filter removes the false positives.
func TestUnionIntegration(t *testing.T) {
	am, cl := sources.NewAmazon(), sources.NewClbooks()
	med := New(am, cl)

	books := sources.GenBooks(3, 200)
	// Add the adversarial names from Example 1 that defeat a naive Clbooks
	// translation: "Tom, Clancy" (reversed) and "Clancy, Joe Tom".
	books = append(books,
		sources.Book{Title: "decoy one", Ln: "Tom", Fn: "Clancy", Year: 1997, Month: 1, Day: 1, Category: "D.3", Publisher: "oreilly", IDNo: "000000001A", Keywords: []string{"decoy"}},
		sources.Book{Title: "decoy two", Ln: "Clancy", Fn: "Joe Tom", Year: 1997, Month: 2, Day: 2, Category: "D.3", Publisher: "oreilly", IDNo: "000000002B", Keywords: []string{"decoy"}},
		sources.Book{Title: "the real thing", Ln: "Clancy", Fn: "Tom", Year: 1997, Month: 3, Day: 3, Category: "D.3", Publisher: "oreilly", IDNo: "000000003C", Keywords: []string{"real"}},
	)
	rel := sources.BookRelation("books", books)
	data := map[string]*engine.Relation{"amazon": rel, "clbooks": rel}

	q := qparse.MustParse(`[fn = "Tom"] and [ln = "Clancy"]`)
	got, tr, err := med.ExecuteUnion(q, data)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: direct evaluation of Q.
	want, err := rel.Select(q, med.Eval)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Len() {
		t.Fatalf("union result %d tuples, direct evaluation %d", got.Len(), want.Len())
	}
	if want.Len() == 0 {
		t.Fatal("no matching books; weak test")
	}

	// The Clbooks translation must be the relaxation of Example 1 — and it
	// must select the decoys before filtering (proving the filter matters).
	var clT *qtree.Node
	for _, st := range tr.Sources {
		if st.Source.Name == "clbooks" {
			clT = st.Query
		}
	}
	wantCl := qparse.MustParse(`[author contains "Tom"] and [author contains "Clancy"]`)
	if !clT.EqualCanonical(wantCl) {
		t.Errorf("Clbooks translation\n got: %s\nwant: %s", clT, wantCl)
	}
	raw, err := rel.Select(clT, cl.Eval)
	if err != nil {
		t.Fatal(err)
	}
	if raw.Len() <= want.Len() {
		t.Errorf("Clbooks raw result (%d) should exceed exact result (%d): relaxation must produce false positives",
			raw.Len(), want.Len())
	}
}
