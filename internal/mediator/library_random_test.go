package mediator

import (
	"math/rand"
	"testing"

	"repro/internal/boolex"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/qparse"
	"repro/internal/qtree"
	"repro/internal/sources"
)

// libraryPool is a pool of constraints (selections and joins) in the
// fac/pub mediator vocabulary of Example 3 from which random queries are
// assembled.
var libraryPool = []string{
	`[fac.ln = pub.ln]`,
	`[fac.fn = pub.fn]`,
	`[fac.bib contains data(near)mining]`,
	`[fac.bib contains web(^)search]`,
	`[fac.bib contains integration]`,
	`[fac.dept = cs]`,
	`[fac.dept = ee]`,
	`[fac.ln = "Ullman"]`,
	`[fac.fn = "Hector"]`,
	`[pub.ti = "a study of data mining"]`,
	`[pub.ln = "Chang"]`,
}

// randomLibraryQuery assembles a random ∧/∨ query from the pool.
func randomLibraryQuery(rng *rand.Rand) *qtree.Node {
	var pick func(depth int) *qtree.Node
	pick = func(depth int) *qtree.Node {
		if depth == 0 || rng.Float64() < 0.5 {
			return qparse.MustParse(libraryPool[rng.Intn(len(libraryPool))])
		}
		n := 2 + rng.Intn(2)
		kids := make([]*qtree.Node, n)
		for i := range kids {
			kids[i] = pick(depth - 1)
		}
		if rng.Intn(2) == 0 {
			return qtree.And(kids...)
		}
		return qtree.Or(kids...)
	}
	return qtree.And(pick(2), pick(2)).Normalize()
}

// TestLibraryRandomQueries runs random join+selection queries through the
// full mediation pipeline and checks the Eq. 3 identity against direct
// evaluation on the glued universe — exercising join-constraint rules under
// complex query structure, which the synthetic workload does not cover.
func TestLibraryRandomQueries(t *testing.T) {
	people, papers := sources.GenLibrary(31, 10, 20)
	t1 := sources.T1Relation(people, papers)
	t2 := sources.T2Relation(people)
	data := map[string]*engine.Relation{"t1": t1, "t2": t2}

	med := New(sources.NewT1(), sources.NewT2())
	med.Glue = sources.LibraryGlue()
	universe := engine.Product(t1, t2)
	glued, err := universe.Select(med.Glue, med.Eval)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(64))
	nonEmpty := 0
	for i := 0; i < 60; i++ {
		q := randomLibraryQuery(rng)
		got, _, err := med.ExecuteJoin(q, data)
		if err != nil {
			t.Fatalf("case %d (%s): %v", i, q, err)
		}
		want, err := glued.Select(q, med.Eval)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != want.Len() {
			t.Fatalf("case %d: mediated %d tuples, direct %d\nq = %s",
				i, got.Len(), want.Len(), q)
		}
		if want.Len() > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 10 {
		t.Fatalf("only %d/60 queries had answers; pool too selective", nonEmpty)
	}
}

// TestLibraryTDQMEqualsDNFOnJoins: TDQM and the DNF baseline agree for
// random queries with join constraints against both library sources.
func TestLibraryTDQMEqualsDNFOnJoins(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	specs := []*sources.Source{sources.NewT1(), sources.NewT2()}
	for i := 0; i < 80; i++ {
		q := randomLibraryQuery(rng)
		for _, src := range specs {
			tdqmTr := core.NewTranslator(src.Spec)
			viaTDQM, err := tdqmTr.TDQM(q)
			if err != nil {
				t.Fatal(err)
			}
			dnfTr := core.NewTranslator(src.Spec)
			viaDNF, err := dnfTr.DNFMap(q)
			if err != nil {
				t.Fatal(err)
			}
			eq, err := boolex.Equivalent(viaTDQM, viaDNF)
			if err != nil {
				continue // atom overflow; skip this case
			}
			if !eq {
				t.Fatalf("case %d source %s: TDQM and DNF disagree\nq = %s\ntdqm = %s\ndnf = %s",
					i, src.Name, q, viaTDQM, viaDNF)
			}
		}
	}
}
