package mediator

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/qparse"
	"repro/internal/sources"
)

// TestExecuteUnionByDisjunct checks the per-branch executor returns the
// same answers as whole-query union execution and as direct evaluation.
func TestExecuteUnionByDisjunct(t *testing.T) {
	med := New(sources.NewAmazon(), sources.NewClbooks())
	catalog := sources.BookRelation("catalog", sources.GenBooks(11, 250))
	data := map[string]*engine.Relation{"amazon": catalog, "clbooks": catalog}

	queries := []string{
		`([ln = "Clancy"] and [fn = "Tom"]) or [publisher = "oreilly"]`,
		`[kwd contains java] or ([pyear = 1997] and [pmonth = 5])`,
		`[ln = "Smith"]`,
	}
	for _, qs := range queries {
		q := qparse.MustParse(qs)
		whole, _, err := med.ExecuteUnion(q, data)
		if err != nil {
			t.Fatal(err)
		}
		perBranch, err := med.ExecuteUnionByDisjunct(q, data)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := catalog.Select(q, med.Eval)
		if err != nil {
			t.Fatal(err)
		}
		if whole.Len() != direct.Len() || perBranch.Len() != direct.Len() {
			t.Errorf("%s: whole=%d perBranch=%d direct=%d", qs, whole.Len(), perBranch.Len(), direct.Len())
		}
	}
}

// TestMediatorErrorPaths covers the misuse diagnostics.
func TestMediatorErrorPaths(t *testing.T) {
	med := New(sources.NewAmazon())
	q := qparse.MustParse(`[ln = "x"]`)

	// Missing data for a source.
	if _, _, err := med.ExecuteUnion(q, map[string]*engine.Relation{}); err == nil {
		t.Error("missing source data accepted by ExecuteUnion")
	}
	if _, _, err := med.ExecuteJoin(q, map[string]*engine.Relation{}); err == nil {
		t.Error("missing source data accepted by ExecuteJoin")
	}
}

// TestMediatorDNFAlgorithm runs the mediator with the DNF baseline and
// checks it agrees with TDQM end to end.
func TestMediatorDNFAlgorithm(t *testing.T) {
	catalog := sources.BookRelation("catalog", sources.GenBooks(13, 200))
	data := map[string]*engine.Relation{"amazon": catalog, "clbooks": catalog}
	q := qparse.MustParse(`([ln = "Clancy"] and [fn = "Tom"]) or [category = "D.3"]`)

	tdqmMed := New(sources.NewAmazon(), sources.NewClbooks())
	gotT, _, err := tdqmMed.ExecuteUnion(q, data)
	if err != nil {
		t.Fatal(err)
	}
	dnfMed := New(sources.NewAmazon(), sources.NewClbooks())
	dnfMed.Algorithm = core.AlgDNF
	gotD, _, err := dnfMed.ExecuteUnion(q, data)
	if err != nil {
		t.Fatal(err)
	}
	if gotT.Len() != gotD.Len() {
		t.Errorf("TDQM mediation %d answers, DNF mediation %d", gotT.Len(), gotD.Len())
	}
}

// TestTranslationResidueTightness: in a simple conjunction, exactly the
// inexactly-realized constraints survive into each source's residue.
func TestTranslationResidueTightness(t *testing.T) {
	med := New(sources.NewAmazon())
	q := qparse.MustParse(`[ti contains java(near)jdk] and [publisher = "oreilly"]`)
	tr, err := med.Translate(q)
	if err != nil {
		t.Fatal(err)
	}
	want := qparse.MustParse(`[ti contains java(near)jdk]`)
	if !tr.Sources[0].Residue.EqualCanonical(want) {
		t.Errorf("residue = %s, want %s", tr.Sources[0].Residue, want)
	}
	if !tr.Filter.EqualCanonical(want) {
		t.Errorf("filter = %s, want %s", tr.Filter, want)
	}
}

// TestGlueIsAppliedBeforeFilter verifies ExecuteJoin prunes inconsistent
// cross-product tuples with the view-definition glue.
func TestGlueIsAppliedBeforeFilter(t *testing.T) {
	people, papers := sources.GenLibrary(21, 8, 16)
	t1 := sources.T1Relation(people, papers)
	t2 := sources.T2Relation(people)
	data := map[string]*engine.Relation{"t1": t1, "t2": t2}
	q := qparse.MustParse(`[fac.dept = cs]`)

	with := New(sources.NewT1(), sources.NewT2())
	with.Glue = sources.LibraryGlue()
	glued, _, err := with.ExecuteJoin(q, data)
	if err != nil {
		t.Fatal(err)
	}
	without := New(sources.NewT1(), sources.NewT2())
	unglued, _, err := without.ExecuteJoin(q, data)
	if err != nil {
		t.Fatal(err)
	}
	if glued.Len() >= unglued.Len() {
		t.Errorf("glue did not prune: glued=%d unglued=%d", glued.Len(), unglued.Len())
	}
}

// TestExecuteUnionWithIndexes: indexed execution returns the same answers
// as scans, including with Amazon's overridden author equality.
func TestExecuteUnionWithIndexes(t *testing.T) {
	am, cl := sources.NewAmazon(), sources.NewClbooks()
	catalog := sources.BookRelation("catalog", sources.GenBooks(17, 400))
	data := map[string]*engine.Relation{"amazon": catalog, "clbooks": catalog}

	plain := New(am, cl)
	indexed := New(am, cl)
	indexed.Indexes = map[string]engine.IndexSet{
		"amazon":  engine.BuildIndexes(catalog, "author", "publisher", "isbn"),
		"clbooks": engine.BuildIndexes(catalog, "author"),
	}
	for _, qs := range []string{
		`[ln = "Clancy"] and [fn = "Tom"]`, // author '=' is overridden: must scan
		`[publisher = "oreilly"]`,          // indexable
		`[id-no = "000000001A"]`,
		`[publisher = "oreilly"] or [category = "D.3"]`,
	} {
		q := qparse.MustParse(qs)
		a, _, err := plain.ExecuteUnion(q, data)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := indexed.ExecuteUnion(q, data)
		if err != nil {
			t.Fatal(err)
		}
		if a.Len() != b.Len() {
			t.Errorf("%s: scan %d answers, indexed %d", qs, a.Len(), b.Len())
		}
	}
}
