// Chain support: a mediator whose mapping to some source goes through
// intermediate vocabularies (mediator→M1→M2→…→source) can either translate a
// query hop by hop at request time, or precompose the whole chain offline
// into one spec with rules.Compose and translate in a single hop. ChainSpec
// packages both: the composed spec serves requests, the retained hops back
// the ChainDebug differential mode that re-translates sequentially so the
// two paths can be compared answer-for-answer.
package mediator

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/qtree"
	"repro/internal/rules"
	"repro/internal/sources"
)

// ChainSpec is a multi-hop mapping chain precomposed offline into a single
// equivalent spec. Hops holds the original per-hop specs in mediator→source
// order; Composed is their left fold under rules.Compose; Infos records one
// ComposeInfo per fold step (len(Hops)-1 entries).
type ChainSpec struct {
	Hops     []*rules.Spec
	Composed *rules.Spec
	Infos    []*rules.ComposeInfo
}

// Chain composes specs left to right into a ChainSpec. A single spec is a
// valid (degenerate) chain: Composed is the spec itself and Infos is empty.
// Composition is offline work — do it once at deployment time, not per
// query. Errors are conservative: any hop pair Compose cannot prove sound
// fails the whole chain.
func Chain(specs ...*rules.Spec) (*ChainSpec, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("mediator: Chain needs at least one spec")
	}
	ch := &ChainSpec{
		Hops:     append([]*rules.Spec(nil), specs...),
		Composed: specs[0],
	}
	for _, next := range specs[1:] {
		comp, info, err := rules.ComposeDetail(ch.Composed, next)
		if err != nil {
			return nil, fmt.Errorf("mediator: composing %s with %s: %w",
				ch.Composed.Name, next.Name, err)
		}
		ch.Composed = comp
		ch.Infos = append(ch.Infos, info)
	}
	return ch, nil
}

// Source wraps the composed spec as a mediator source: translations against
// it cross the whole chain in one hop.
func (ch *ChainSpec) Source(name string, eval *engine.Evaluator) *sources.Source {
	return &sources.Source{Name: name, Spec: ch.Composed, Eval: eval}
}

// SequentialTranslate translates q through the chain hop by hop — the
// reference semantics the composed spec must agree with after filtering.
// Stats is the sum of per-hop translation work, directly comparable with
// the single composed hop's. A tracer carried by ctx (obs.WithTracer) gets
// one "source" span per hop, named "hop:<spec>", with the hop's algorithm
// spans beneath it.
func (ch *ChainSpec) SequentialTranslate(ctx context.Context, q *qtree.Node, alg string, opts ...core.Option) (*qtree.Node, core.Stats, error) {
	cur := q
	var total core.Stats
	tracer := obs.TracerFrom(ctx)
	for _, hop := range ch.Hops {
		if tracer != nil {
			tracer.Start(obs.KindSource, "hop:"+hop.Name)
		}
		res, err := core.NewTranslator(hop, opts...).Do(ctx, cur, alg)
		if tracer != nil {
			tracer.End()
		}
		if err != nil {
			return nil, total, fmt.Errorf("mediator: chain hop %s: %w", hop.Name, err)
		}
		total.Add(res.Stats)
		cur = res.Mapped
	}
	return cur, total, nil
}

// AddChainSource registers a chain-backed source on the mediator: the
// composed spec serves the source's translations, and the chain is recorded
// so ChainDebug can replay the original hops sequentially. Returns the
// source it appended.
func (m *Mediator) AddChainSource(name string, ch *ChainSpec, eval *engine.Evaluator) *sources.Source {
	src := ch.Source(name, eval)
	m.Sources = append(m.Sources, src)
	if m.Chains == nil {
		m.Chains = make(map[string]*ChainSpec)
	}
	m.Chains[name] = ch
	m.Metrics.ComposeChainBuilt(ch.Composed.Name, len(ch.Hops))
	return src
}

// chainDebugTranslate short-circuits one source's translation when
// ChainDebug is on and the source has a registered chain: the query is
// re-translated hop by hop through the original specs instead of through
// the composed one. The residue is conservatively the whole query — per-hop
// exactness does not decompose into the per-constraint exact set the tight
// filter needs — so executors re-check Q on the branch; filtered answers
// equal the composed path's, which is exactly the differential the
// conformance compose oracle asserts.
func (m *Mediator) chainDebugTranslate(src *sources.Source, q *qtree.Node, alg string, tracer *obs.Tracer) (SourceTranslation, bool, error) {
	if !m.ChainDebug {
		return SourceTranslation{}, false, nil
	}
	ch, ok := m.Chains[src.Name]
	if !ok {
		return SourceTranslation{}, false, nil
	}
	if tracer != nil {
		tracer.Start(obs.KindSource, src.Name)
		defer tracer.End()
	}
	opts := []core.Option{
		core.WithMetrics(m.Metrics),
		core.WithParallelism(m.Parallelism),
		core.WithMatchCache(m.MatchCache),
		core.WithPlan(m.Plan),
	}
	ctx := obs.WithTracer(context.Background(), tracer)
	mapped, stats, err := ch.SequentialTranslate(ctx, q, alg, opts...)
	if err != nil {
		return SourceTranslation{}, false, fmt.Errorf("mediator: chain debug for %s: %w", src.Name, err)
	}
	m.Metrics.ComposeTranslation(ch.Composed.Name, "sequential")
	return SourceTranslation{Source: src, Query: mapped, Residue: q.Clone(), Stats: stats}, true, nil
}

// noteComposed records a composed-path translation for metrics when the
// source is chain-backed.
func (m *Mediator) noteComposed(src *sources.Source) {
	if ch, ok := m.Chains[src.Name]; ok {
		m.Metrics.ComposeTranslation(ch.Composed.Name, "composed")
	}
}
