package mediator_test

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mediator"
	"repro/internal/qtree"
	"repro/internal/workload"
)

// chainCase derives a deterministic two-hop chain scenario, a query batch,
// and an extended dataset for one seed, mirroring the conformance
// generator's configuration.
func chainCase(t *testing.T, seed int64) (*workload.Scenario, *workload.ChainScenario, []*qtree.Node, *engine.Relation) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s := workload.New(workload.Config{
		Indep:        1 + rng.Intn(3),
		Pairs:        1 + rng.Intn(2),
		InexactPairs: rng.Intn(2),
		Triples:      rng.Intn(2),
	})
	ch := workload.NewChain(s, rand.New(rand.NewSource(seed*7919)))
	qcfg := workload.QueryConfig{MaxDepth: 2 + rng.Intn(3), MaxFanout: 2 + rng.Intn(2), LeafProb: 0.4}
	var qs []*qtree.Node
	for i := 0; i < 6; i++ {
		qs = append(qs, s.RandomQuery(rng, qcfg))
	}
	rel := ch.ExtendRelation(s.Relation("d", rng, 40))
	return s, ch, qs, rel
}

func renderRel(r *engine.Relation) string {
	keys := make([]string, len(r.Tuples))
	for i, t := range r.Tuples {
		keys[i] = t.String()
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

func dedupRender(r *engine.Relation) string {
	seen := make(map[string]bool)
	var keys []string
	for _, t := range r.Tuples {
		k := t.String()
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

func subsetRel(t *testing.T, label string, small, big *engine.Relation) {
	t.Helper()
	in := make(map[string]bool, len(big.Tuples))
	for _, tu := range big.Tuples {
		in[tu.String()] = true
	}
	for _, tu := range small.Tuples {
		if !in[tu.String()] {
			t.Fatalf("%s: tuple %s missing from superset", label, tu)
		}
	}
}

// TestChainGridEquivalence is the composed-vs-sequential equivalence grid:
// 40 seeds × {baseline, memo off, shared MatchCache, shared Plan,
// parallelism}, each checking on every query that the sequential two-hop
// translation and the composed one-hop translation nest raw
// (σ_seq ⊆ σ_comp), both subsume the truth, and both are byte-identical to
// the truth after filtering with Q. CI runs this under -race.
func TestChainGridEquivalence(t *testing.T) {
	type variant struct {
		name string
		opts func() []core.Option
	}
	variants := []variant{
		{"baseline", func() []core.Option { return nil }},
		{"memo-off", func() []core.Option { return []core.Option{core.WithMemo(false)} }},
		{"matchcache", func() []core.Option { return []core.Option{core.WithMatchCache(core.NewMatchCache(0))} }},
		{"plan", func() []core.Option { return []core.Option{core.WithPlan(core.NewPlan(0))} }},
		{"par", func() []core.Option { return []core.Option{core.WithParallelism(4)} }},
	}
	for seed := int64(1); seed <= 40; seed++ {
		s, ch, qs, rel := chainCase(t, seed)
		chain, err := mediator.Chain(s.Spec, ch.Spec2)
		if err != nil {
			t.Fatalf("seed %d: Chain: %v", seed, err)
		}
		var baseline []string
		for _, v := range variants {
			opts := v.opts()
			var renders []string
			for qi, q := range qs {
				label := fmt.Sprintf("seed %d %s q%d", seed, v.name, qi)
				truth, err := rel.Select(q, s.Eval)
				if err != nil {
					t.Fatalf("%s: truth: %v", label, err)
				}
				seqQ, _, err := chain.SequentialTranslate(context.Background(), q, core.AlgTDQM, opts...)
				if err != nil {
					t.Fatalf("%s: sequential: %v", label, err)
				}
				res, err := core.NewTranslator(chain.Composed, opts...).Do(context.Background(), q, core.AlgTDQM)
				if err != nil {
					t.Fatalf("%s: composed: %v", label, err)
				}
				seqRel, err := rel.Select(seqQ, s.Eval)
				if err != nil {
					t.Fatalf("%s: eval seq: %v", label, err)
				}
				compRel, err := rel.Select(res.Mapped, s.Eval)
				if err != nil {
					t.Fatalf("%s: eval comp: %v", label, err)
				}
				subsetRel(t, label+" truth⊆seq", truth, seqRel)
				subsetRel(t, label+" seq⊆comp", seqRel, compRel)
				seqF, err := seqRel.Select(q, s.Eval)
				if err != nil {
					t.Fatalf("%s: filter seq: %v", label, err)
				}
				compF, err := compRel.Select(q, s.Eval)
				if err != nil {
					t.Fatalf("%s: filter comp: %v", label, err)
				}
				want := renderRel(truth)
				if got := renderRel(seqF); got != want {
					t.Fatalf("%s: filtered sequential differs from truth", label)
				}
				if got := renderRel(compF); got != want {
					t.Fatalf("%s: filtered composed differs from truth", label)
				}
				renders = append(renders, res.Mapped.String())
			}
			joined := strings.Join(renders, "\n---\n")
			if v.name == "baseline" {
				baseline = renders
			} else {
				if joined != strings.Join(baseline, "\n---\n") {
					t.Fatalf("seed %d: variant %s produced different composed translations", seed, v.name)
				}
			}
		}
	}
}

// TestChainDebugExecuteUnion runs the mediator-level differential: a
// composed-spec source and the same mediator in ChainDebug mode must return
// byte-identical filtered answers, both equal to the deduplicated truth.
func TestChainDebugExecuteUnion(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		s, ch, qs, rel := chainCase(t, seed)
		chain, err := mediator.Chain(s.Spec, ch.Spec2)
		if err != nil {
			t.Fatalf("seed %d: Chain: %v", seed, err)
		}
		data := map[string]*engine.Relation{"chain": rel}

		medC := mediator.New()
		medC.AddChainSource("chain", chain, s.Eval)

		medD := mediator.New()
		medD.AddChainSource("chain", chain, s.Eval)
		medD.ChainDebug = true

		for qi, q := range qs {
			truth, err := rel.Select(q, s.Eval)
			if err != nil {
				t.Fatalf("seed %d q%d: truth: %v", seed, qi, err)
			}
			ansC, _, err := medC.ExecuteUnion(q, data)
			if err != nil {
				t.Fatalf("seed %d q%d: composed union: %v", seed, qi, err)
			}
			ansD, _, err := medD.ExecuteUnion(q, data)
			if err != nil {
				t.Fatalf("seed %d q%d: chain-debug union: %v", seed, qi, err)
			}
			want := dedupRender(truth)
			if got := renderRel(ansC); got != want {
				t.Fatalf("seed %d q%d: composed answer differs from truth\nq = %s", seed, qi, q)
			}
			if got := renderRel(ansD); got != want {
				t.Fatalf("seed %d q%d: chain-debug answer differs from truth\nq = %s", seed, qi, q)
			}
		}
	}
}

// TestChainDegenerateAndStats covers the degenerate single-spec chain and
// the summed sequential stats.
func TestChainDegenerateAndStats(t *testing.T) {
	s, ch, qs, _ := chainCase(t, 3)
	single, err := mediator.Chain(s.Spec)
	if err != nil {
		t.Fatalf("single-spec Chain: %v", err)
	}
	if single.Composed != s.Spec || len(single.Infos) != 0 {
		t.Fatalf("degenerate chain altered the spec")
	}
	if _, err := mediator.Chain(); err == nil {
		t.Fatalf("empty Chain did not error")
	}

	chain, err := mediator.Chain(s.Spec, ch.Spec2)
	if err != nil {
		t.Fatalf("Chain: %v", err)
	}
	if len(chain.Infos) != 1 || chain.Infos[0].RulesComposed != len(s.Spec.Rules) {
		t.Fatalf("ComposeInfo not threaded: %+v", chain.Infos)
	}
	_, stats, err := chain.SequentialTranslate(context.Background(), qs[0], core.AlgTDQM)
	if err != nil {
		t.Fatalf("SequentialTranslate: %v", err)
	}
	if stats.RuleAttempts == 0 {
		t.Fatalf("summed sequential stats recorded no rule attempts: %+v", stats)
	}
}
