package sources

import (
	"repro/internal/engine"
	"repro/internal/qtree"
	"repro/internal/rules"
	"repro/internal/values"
)

// The map scenario of Example 8 / Figure 9. The mediator F speaks in the
// four bound attributes xmin, xmax, ymin, ymax; the target G speaks in
// xrange, yrange (coordinate ranges) and cll, cur (lower-left / upper-right
// corners, selecting open regions). G's attribute pairs are interdependent —
// a pair of ranges describes the same rectangle as a pair of corners — which
// is precisely the situation where redundant cross-matchings arise and the
// safety test of Definition 5 is conservative (the precise Theorem 3 test
// recognizes the separability).
//
// Native tuple semantics: a map object is a point (x, y). The mediator
// attributes xmin/xmax/ymin/ymax denote half-plane bounds, evaluated as
// x ≥ v, x ≤ v, y ≥ v, y ≤ v. G's [xrange = (lo:hi)] means lo ≤ x ≤ hi;
// [cll = (a,b)] means x ≥ a ∧ y ≥ b; [cur = (a,b)] means x ≤ a ∧ y ≤ b.
const mapRules = `
# K_G — mapping rules for the map target G (Example 8).

rule G1 {
  match [xmin = A], [xmax = B];
  where Value(A), Value(B);
  let R = MakeRange(A, B);
  emit exact [xrange = R];
}

rule G2 {
  match [ymin = A], [ymax = B];
  where Value(A), Value(B);
  let R = MakeRange(A, B);
  emit exact [yrange = R];
}

rule G3 {
  match [xmin = A], [ymin = B];
  where Value(A), Value(B);
  let P = MakePoint(A, B);
  emit exact [cll = P];
}

rule G4 {
  match [xmax = A], [ymax = B];
  where Value(A), Value(B);
  let P = MakePoint(A, B);
  emit exact [cur = P];
}
`

// NewMapSource constructs Example 8's map source G.
func NewMapSource() *Source {
	reg := baseRegistry()
	reg.RegisterAction("MakeRange", func(b rules.Binding, args []string) (rules.BoundVal, error) {
		lo, err := floatArg(b, args, 0)
		if err != nil {
			return rules.BoundVal{}, err
		}
		hi, err := floatArg(b, args, 1)
		if err != nil {
			return rules.BoundVal{}, err
		}
		return rules.ValueOf(values.Range{Lo: lo, Hi: hi}), nil
	})
	reg.RegisterAction("MakePoint", func(b rules.Binding, args []string) (rules.BoundVal, error) {
		x, err := floatArg(b, args, 0)
		if err != nil {
			return rules.BoundVal{}, err
		}
		y, err := floatArg(b, args, 1)
		if err != nil {
			return rules.BoundVal{}, err
		}
		return rules.ValueOf(values.Point{X: x, Y: y}), nil
	})

	target := rules.NewTarget("mapsource",
		rules.Capability{Attr: "xrange", Op: qtree.OpEq, ValueKinds: []string{"range"}},
		rules.Capability{Attr: "yrange", Op: qtree.OpEq, ValueKinds: []string{"range"}},
		rules.Capability{Attr: "cll", Op: qtree.OpEq, ValueKinds: []string{"point"}},
		rules.Capability{Attr: "cur", Op: qtree.OpEq, ValueKinds: []string{"point"}},
	)

	spec := rules.MustSpec("K_G", target, reg, rules.MustParseRules(mapRules)...)
	return &Source{Name: "mapsource", Spec: spec, Eval: NewMapEvaluator()}
}

// NewMapEvaluator returns an evaluator implementing both the mediator-F and
// target-G attribute semantics over point tuples (see package comment).
func NewMapEvaluator() *engine.Evaluator {
	ev := engine.NewEvaluator()
	geq := func(tv, cv qtree.Value) (bool, error) {
		x, _ := values.Numeric(tv)
		v, _ := values.Numeric(cv)
		return x >= v, nil
	}
	leq := func(tv, cv qtree.Value) (bool, error) {
		x, _ := values.Numeric(tv)
		v, _ := values.Numeric(cv)
		return x <= v, nil
	}
	ev.Override("xmin", qtree.OpEq, geq)
	ev.Override("ymin", qtree.OpEq, geq)
	ev.Override("xmax", qtree.OpEq, leq)
	ev.Override("ymax", qtree.OpEq, leq)
	ev.Override("xrange", qtree.OpEq, rangeContains)
	ev.Override("yrange", qtree.OpEq, rangeContains)
	ev.Override("cll", qtree.OpEq, func(tv, cv qtree.Value) (bool, error) {
		p, ok1 := tv.(values.Point)
		c, ok2 := cv.(values.Point)
		if !ok1 || !ok2 {
			return false, errInapplicable("cll comparison needs points")
		}
		return p.X >= c.X && p.Y >= c.Y, nil
	})
	ev.Override("cur", qtree.OpEq, func(tv, cv qtree.Value) (bool, error) {
		p, ok1 := tv.(values.Point)
		c, ok2 := cv.(values.Point)
		if !ok1 || !ok2 {
			return false, errInapplicable("cur comparison needs points")
		}
		return p.X <= c.X && p.Y <= c.Y, nil
	})
	return ev
}

func rangeContains(tv, cv qtree.Value) (bool, error) {
	x, ok1 := values.Numeric(tv)
	r, ok2 := cv.(values.Range)
	if !ok1 || !ok2 {
		return false, errInapplicable("range comparison needs number and range")
	}
	return r.Contains(x), nil
}

// MapTuple builds a point tuple carrying both vocabularies: the mediator's
// bound attributes and G's range/corner attributes all derive from (x, y).
func MapTuple(x, y float64) engine.Tuple {
	t := make(engine.Tuple)
	t.Set(qtree.A("xmin"), values.Float(x))
	t.Set(qtree.A("xmax"), values.Float(x))
	t.Set(qtree.A("ymin"), values.Float(y))
	t.Set(qtree.A("ymax"), values.Float(y))
	t.Set(qtree.A("xrange"), values.Float(x))
	t.Set(qtree.A("yrange"), values.Float(y))
	t.Set(qtree.A("cll"), values.Point{X: x, Y: y})
	t.Set(qtree.A("cur"), values.Point{X: x, Y: y})
	return t
}

func floatArg(b rules.Binding, args []string, i int) (float64, error) {
	v, err := argValue(b, args, i)
	if err != nil {
		return 0, err
	}
	f, ok := values.Numeric(v)
	if !ok {
		return 0, errInapplicable("expected numeric argument")
	}
	return f, nil
}
