package sources

import (
	"math/rand"
	"strings"

	"repro/internal/engine"
	"repro/internal/qtree"
	"repro/internal/values"
)

// The synthetic data for the digital-library scenario of Example 3.
//
// Source T1 holds paper(ti, au) and aubib(name, bib); source T2 holds
// prof(ln, fn, dept). The universe tuples carry both the mediator view
// attributes (fac.ln, fac.fn, fac.bib, fac.dept, pub.ti, pub.ln, pub.fn)
// and the native relation attributes they expand to.

// Person is a synthetic researcher.
type Person struct {
	Ln, Fn string
	Dept   string
	Bib    string // bibliography text searched by fac.bib contains
}

// Paper is a synthetic publication.
type Paper struct {
	Title  string
	Ln, Fn string // author
}

var (
	libLastNames  = []string{"Ullman", "Garcia", "Chang", "Widom", "Motwani", "Aiken", "Smith"}
	libFirstNames = []string{"Jeff", "Hector", "Kevin", "Jennifer", "Rajeev", "Alex", "Ann"}
	libTopics     = []string{"data mining", "query optimization", "web search", "data integration", "stream processing", "information retrieval"}
	libDepts      = []string{"cs", "ee", "math"}
)

// GenLibrary deterministically generates people and their papers.
func GenLibrary(seed int64, nPeople, nPapers int) ([]Person, []Paper) {
	rng := rand.New(rand.NewSource(seed))
	people := make([]Person, nPeople)
	for i := range people {
		topics := make([]string, 1+rng.Intn(3))
		for j := range topics {
			topics[j] = libTopics[rng.Intn(len(libTopics))]
		}
		people[i] = Person{
			Ln:   libLastNames[rng.Intn(len(libLastNames))],
			Fn:   libFirstNames[rng.Intn(len(libFirstNames))],
			Dept: libDepts[rng.Intn(len(libDepts))],
			Bib:  "research on " + strings.Join(topics, " and "),
		}
	}
	papers := make([]Paper, nPapers)
	for i := range papers {
		p := people[rng.Intn(len(people))]
		papers[i] = Paper{
			Title: "a study of " + libTopics[rng.Intn(len(libTopics))],
			Ln:    p.Ln,
			Fn:    p.Fn,
		}
	}
	return people, papers
}

// T1Relation builds source T1's universe relation: the cross product of
// aubib (via fac) and paper (via pub), with both the native and the derived
// mediator attributes. realistic mediation would enumerate aubib × paper;
// the generator does the same, bounded by the input sizes.
func T1Relation(people []Person, papers []Paper) *engine.Relation {
	r := engine.NewRelation("t1")
	for _, pe := range people {
		for _, pa := range papers {
			t := make(engine.Tuple)
			// fac expands to aubib at T1.
			name := values.LnFnToName(pe.Ln, pe.Fn)
			t.Set(qtree.RA("fac", "aubib", "name"), values.String(name))
			t.Set(qtree.RA("fac", "aubib", "bib"), values.String(pe.Bib))
			t.Set(qtree.VA("fac", "ln"), values.String(pe.Ln))
			t.Set(qtree.VA("fac", "fn"), values.String(pe.Fn))
			t.Set(qtree.VA("fac", "bib"), values.String(pe.Bib))
			// pub expands to paper at T1.
			au := values.LnFnToName(pa.Ln, pa.Fn)
			t.Set(qtree.RA("pub", "paper", "ti"), values.String(pa.Title))
			t.Set(qtree.RA("pub", "paper", "au"), values.String(au))
			t.Set(qtree.VA("pub", "ti"), values.String(pa.Title))
			t.Set(qtree.VA("pub", "ln"), values.String(pa.Ln))
			t.Set(qtree.VA("pub", "fn"), values.String(pa.Fn))
			r.Tuples = append(r.Tuples, t)
		}
	}
	return r
}

// T2Relation builds source T2's universe relation from prof rows.
func T2Relation(people []Person) *engine.Relation {
	r := engine.NewRelation("t2")
	for _, pe := range people {
		t := make(engine.Tuple)
		code, err := values.DeptCode(pe.Dept)
		if err != nil {
			continue
		}
		t.Set(qtree.RA("fac", "prof", "ln"), values.String(pe.Ln))
		t.Set(qtree.RA("fac", "prof", "fn"), values.String(pe.Fn))
		t.Set(qtree.RA("fac", "prof", "dept"), values.Int(code))
		t.Set(qtree.VA("fac", "dept"), values.String(pe.Dept))
		r.Tuples = append(r.Tuples, t)
	}
	return r
}

// LibraryGlue returns the view-definition constraints tying T1's person
// identity (via fac.aubib.name) to T2's prof row: the fac view joins aubib
// and prof on last and first name.
func LibraryGlue() *qtree.Node {
	return qtree.AndOf(
		qtree.Leaf(qtree.Join(qtree.VA("fac", "ln"), qtree.OpEq, qtree.RA("fac", "prof", "ln"))),
		qtree.Leaf(qtree.Join(qtree.VA("fac", "fn"), qtree.OpEq, qtree.RA("fac", "prof", "fn"))),
	)
}
