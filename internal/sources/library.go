package sources

import (
	"repro/internal/engine"
	"repro/internal/qtree"
	"repro/internal/rules"
)

// The digital-library scenario of Example 3 and Figure 5: a mediator exports
// views fac(ln, fn, bib, dept) and pub(ti, ln, fn). Source T1 contributes
// paper(ti, au) and aubib(name, bib); source T2 contributes
// prof(ln, fn, dept) with coded departments.

// t1Rules is K1 of Figure 5.
const t1Rules = `
# K1 — mapping rules for source T1 (Figure 5).

rule R1 {
  match [fac.bib contains P1];
  let P2 = RewriteTextPat(P1);
  emit [fac.aubib.bib contains P2];
}

rule R2 {
  match [pub.ti = T];
  where Value(T);
  emit exact [pub.paper.ti = T];
}

rule R3 {
  match [A1 = N];
  where LnOrFn(A1), Value(N);
  let A2 = AttrNameMapping(A1);
  emit [A2 contains N];
}

rule R4 {
  match [AL = L], [AF = F];
  where LnFnAttrs(AL, AF), Value(L), Value(F);
  let A = CombinedNameAttr(AL);
  let N = LnFnToName(L, F);
  emit exact [A = N];
}

rule R5 {
  match [V1.ln = V2.ln], [V1.fn = V2.fn];
  let A1 = NameAttrForView(V1);
  let A2 = NameAttrForView(V2);
  emit exact [A1 = A2];
}
`

// t2Rules is K2 of Figure 5.
const t2Rules = `
# K2 — mapping rules for source T2 (Figure 5).

rule R6 {
  match [fac.A1 = N];
  where LnOrFnName(A1), Value(N);
  let A2 = ProfAttr(A1);
  emit exact [A2 = N];
}

rule R7 {
  match [fac.dept = D];
  where Value(D);
  let C = DeptCode(D);
  emit exact [fac.prof.dept = C];
}

rule R8 {
  match [fac[i].A = fac[j].A];
  where LnOrFnName(A);
  emit exact [fac[i].prof.A = fac[j].prof.A];
}
`

// nameAttrByView maps a view to the source-T1 attribute holding the
// combined author/person name: fac expands to aubib.name, pub to paper.au.
var nameAttrByView = map[string]qtree.Attr{
	"fac": qtree.RA("fac", "aubib", "name"),
	"pub": qtree.RA("pub", "paper", "au"),
}

// NewT1 constructs source T1 of Example 3 (relations paper and aubib).
func NewT1() *Source {
	reg := baseRegistry()

	// LnOrFn(A1): A1 is bound to a whole attribute named ln or fn.
	reg.RegisterCond("LnOrFn", func(b rules.Binding, args []string) (bool, error) {
		a, err := b.AttrVal(args[0])
		if err != nil {
			return false, nil
		}
		return a.Name == "ln" || a.Name == "fn", nil
	})
	// LnFnAttrs(AL, AF): AL and AF are the ln and fn attributes of the same
	// view instance.
	reg.RegisterCond("LnFnAttrs", func(b rules.Binding, args []string) (bool, error) {
		al, err1 := b.AttrVal(args[0])
		af, err2 := b.AttrVal(args[1])
		if err1 != nil || err2 != nil {
			return false, nil
		}
		return al.Name == "ln" && af.Name == "fn" &&
			al.View == af.View && al.Index == af.Index, nil
	})
	// AttrNameMapping(A1): the combined-name attribute for A1's view.
	reg.RegisterAction("AttrNameMapping", func(b rules.Binding, args []string) (rules.BoundVal, error) {
		a, err := b.AttrVal(args[0])
		if err != nil {
			return rules.BoundVal{}, err
		}
		na, ok := nameAttrByView[a.View]
		if !ok {
			return rules.BoundVal{}, errInapplicable("no name attribute for view " + a.View)
		}
		na.Index = a.Index
		return rules.AttrOf(na), nil
	})
	// CombinedNameAttr(AL): same mapping given the ln attribute.
	reg.RegisterAction("CombinedNameAttr", func(b rules.Binding, args []string) (rules.BoundVal, error) {
		a, err := b.AttrVal(args[0])
		if err != nil {
			return rules.BoundVal{}, err
		}
		na, ok := nameAttrByView[a.View]
		if !ok {
			return rules.BoundVal{}, errInapplicable("no name attribute for view " + a.View)
		}
		na.Index = a.Index
		return rules.AttrOf(na), nil
	})
	// NameAttrForView(V1): the combined-name attribute for a view bound by
	// name.
	reg.RegisterAction("NameAttrForView", func(b rules.Binding, args []string) (rules.BoundVal, error) {
		v, ok := b[args[0]]
		if !ok || v.Kind != rules.BindName {
			return rules.BoundVal{}, errInapplicable("view variable unbound")
		}
		na, ok := nameAttrByView[v.Name]
		if !ok {
			return rules.BoundVal{}, errInapplicable("no name attribute for view " + v.Name)
		}
		return rules.AttrOf(na), nil
	})

	target := rules.NewTarget("t1",
		rules.Capability{Attr: "bib", Op: qtree.OpContains},
		rules.Capability{Attr: "ti", Op: qtree.OpEq, ValueKinds: []string{"string"}},
		rules.Capability{Attr: "name", Op: qtree.OpEq, ValueKinds: []string{"string"}},
		rules.Capability{Attr: "name", Op: qtree.OpContains},
		rules.Capability{Attr: "au", Op: qtree.OpEq, ValueKinds: []string{"string"}},
		rules.Capability{Attr: "au", Op: qtree.OpContains},
		rules.Capability{Attr: "name", Op: qtree.OpEq, Join: true, RAttr: "*"},
		rules.Capability{Attr: "au", Op: qtree.OpEq, Join: true, RAttr: "*"},
	)

	spec := rules.MustSpec("K1", target, reg, rules.MustParseRules(t1Rules)...)
	return &Source{Name: "t1", Spec: spec, Eval: engine.NewEvaluator()}
}

// NewT2 constructs source T2 of Example 3 (relation prof with coded
// departments).
func NewT2() *Source {
	reg := baseRegistry()
	// LnOrFnName(A): A is an attribute-name variable equal to ln or fn.
	reg.RegisterCond("LnOrFnName", func(b rules.Binding, args []string) (bool, error) {
		v, ok := b[args[0]]
		if !ok || v.Kind != rules.BindName {
			return false, nil
		}
		return v.Name == "ln" || v.Name == "fn", nil
	})
	// ProfAttr(A1): the prof-relation attribute with the same name.
	reg.RegisterAction("ProfAttr", func(b rules.Binding, args []string) (rules.BoundVal, error) {
		v, ok := b[args[0]]
		if !ok || v.Kind != rules.BindName {
			return rules.BoundVal{}, errInapplicable("attribute name unbound")
		}
		return rules.AttrOf(qtree.RA("fac", "prof", v.Name)), nil
	})

	target := rules.NewTarget("t2",
		rules.Capability{Attr: "ln", Op: qtree.OpEq, ValueKinds: []string{"string"}},
		rules.Capability{Attr: "fn", Op: qtree.OpEq, ValueKinds: []string{"string"}},
		rules.Capability{Attr: "dept", Op: qtree.OpEq, ValueKinds: []string{"int"}},
		rules.Capability{Attr: "ln", Op: qtree.OpEq, Join: true, RAttr: "ln"},
		rules.Capability{Attr: "fn", Op: qtree.OpEq, Join: true, RAttr: "fn"},
	)

	spec := rules.MustSpec("K2", target, reg, rules.MustParseRules(t2Rules)...)
	return &Source{Name: "t2", Spec: spec, Eval: engine.NewEvaluator()}
}
