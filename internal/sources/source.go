// Package sources provides the simulated heterogeneous information sources
// the reproduction translates against, each with the schema, operators and
// capability restrictions the paper describes:
//
//   - Amazon — the "power search" bookstore of Figure 3/Figure 2: structured
//     author names, ti-word / subject-word keyword search without proximity,
//     pdate periods, title prefix search, subjects, ISBNs.
//   - Clbooks — Computer Literacy (Example 1): author search restricted to
//     the contains operator over name words.
//   - T1 / T2 — the digital-library sources of Example 3 and Figure 5:
//     paper(ti, au) and aubib(name, bib) at T1, prof(ln, fn, dept) at T2.
//   - MapSource G — Example 8's map server with interdependent rectangle
//     attributes (Xrange/Yrange vs Cll/Cur).
//
// The paper evaluated against live web services; these in-memory equivalents
// preserve the behaviours that matter — vocabulary differences, capability
// limits, observable false positives — while making every experiment
// deterministic (see DESIGN.md, "Substitutions").
package sources

import (
	"repro/internal/engine"
	"repro/internal/qtree"
	"repro/internal/rules"
	"repro/internal/values"
)

// Source bundles everything the mediator needs to talk to one simulated
// source: its mapping specification (rules + target capabilities), and an
// evaluator implementing the native semantics of its vocabulary.
type Source struct {
	Name string
	Spec *rules.Spec
	Eval *engine.Evaluator
}

// Target returns the source's capability description.
func (s *Source) Target() *rules.Target { return s.Spec.Target }

// BaseRegistry returns a registry pre-loaded with the generic conversion
// functions and conditions the built-in specifications share
// (LnFnToName, RewriteTextPat, RewriteWordsOnly, MonthYearToDate,
// YearToDate, SubjectForCategory, DeptCode, HasNear, NoNear, plus the rules
// package's built-ins). User rule files loaded with cmd/qmap resolve
// against it.
func BaseRegistry() *rules.Registry { return baseRegistry() }

// baseRegistry returns a registry pre-loaded with the conversion functions
// shared by several sources.
func baseRegistry() *rules.Registry {
	reg := rules.NewRegistry()

	reg.RegisterAction("LnFnToName", func(b rules.Binding, args []string) (rules.BoundVal, error) {
		ln, err := stringArg(b, args, 0)
		if err != nil {
			return rules.BoundVal{}, err
		}
		fn, err := stringArg(b, args, 1)
		if err != nil {
			return rules.BoundVal{}, err
		}
		return rules.ValueOf(values.String(values.LnFnToName(ln, fn))), nil
	})

	reg.RegisterAction("RewriteTextPat", func(b rules.Binding, args []string) (rules.BoundVal, error) {
		p, err := patternArg(b, args, 0)
		if err != nil {
			return rules.BoundVal{}, err
		}
		return rules.ValueOf(p.RewriteNoNear()), nil
	})

	reg.RegisterAction("RewriteWordsOnly", func(b rules.Binding, args []string) (rules.BoundVal, error) {
		p, err := patternArg(b, args, 0)
		if err != nil {
			return rules.BoundVal{}, err
		}
		ws := p.RewriteWordsOnly()
		if len(ws) == 0 {
			return rules.BoundVal{}, errInapplicable("pattern has no required words")
		}
		return rules.ValueOf(values.PatternAnd(ws...)), nil
	})

	reg.RegisterAction("MonthYearToDate", func(b rules.Binding, args []string) (rules.BoundVal, error) {
		m, err := intArg(b, args, 0)
		if err != nil {
			return rules.BoundVal{}, err
		}
		y, err := intArg(b, args, 1)
		if err != nil {
			return rules.BoundVal{}, err
		}
		d, err := values.MonthYearToDate(m, y)
		if err != nil {
			return rules.BoundVal{}, err
		}
		return rules.ValueOf(d), nil
	})

	reg.RegisterAction("YearToDate", func(b rules.Binding, args []string) (rules.BoundVal, error) {
		y, err := intArg(b, args, 0)
		if err != nil {
			return rules.BoundVal{}, err
		}
		d, err := values.YearToDate(y)
		if err != nil {
			return rules.BoundVal{}, err
		}
		return rules.ValueOf(d), nil
	})

	reg.RegisterAction("SubjectForCategory", func(b rules.Binding, args []string) (rules.BoundVal, error) {
		c, err := stringArg(b, args, 0)
		if err != nil {
			return rules.BoundVal{}, err
		}
		s, err := values.SubjectForCategory(c)
		if err != nil {
			return rules.BoundVal{}, err
		}
		return rules.ValueOf(values.String(s)), nil
	})

	reg.RegisterAction("DeptCode", func(b rules.Binding, args []string) (rules.BoundVal, error) {
		d, err := stringArg(b, args, 0)
		if err != nil {
			return rules.BoundVal{}, err
		}
		c, err := values.DeptCode(d)
		if err != nil {
			return rules.BoundVal{}, err
		}
		return rules.ValueOf(values.Int(c)), nil
	})

	reg.RegisterCond("HasNear", func(b rules.Binding, args []string) (bool, error) {
		p, err := patternArg(b, args, 0)
		if err != nil {
			return false, err
		}
		return p.HasNear(), nil
	})

	reg.RegisterCond("NoNear", func(b rules.Binding, args []string) (bool, error) {
		p, err := patternArg(b, args, 0)
		if err != nil {
			return false, err
		}
		return !p.HasNear(), nil
	})

	return reg
}

type inapplicableError string

func errInapplicable(msg string) error { return inapplicableError(msg) }

func (e inapplicableError) Error() string { return "sources: conversion inapplicable: " + string(e) }

func stringArg(b rules.Binding, args []string, i int) (string, error) {
	v, err := argValue(b, args, i)
	if err != nil {
		return "", err
	}
	s, ok := v.(values.String)
	if !ok {
		return "", errInapplicable("expected string argument")
	}
	return s.Raw(), nil
}

func intArg(b rules.Binding, args []string, i int) (int, error) {
	v, err := argValue(b, args, i)
	if err != nil {
		return 0, err
	}
	n, ok := v.(values.Int)
	if !ok {
		return 0, errInapplicable("expected integer argument")
	}
	return int(n), nil
}

func patternArg(b rules.Binding, args []string, i int) (*values.Pattern, error) {
	v, err := argValue(b, args, i)
	if err != nil {
		return nil, err
	}
	switch p := v.(type) {
	case *values.Pattern:
		return p, nil
	case values.String:
		return values.Word(p.Raw()), nil
	default:
		return nil, errInapplicable("expected pattern argument")
	}
}

func argValue(b rules.Binding, args []string, i int) (qtree.Value, error) {
	if i >= len(args) {
		return nil, errInapplicable("missing argument")
	}
	return b.Value(args[i])
}

// wordsPattern converts free text into the conjunction of its word tokens —
// the weakest containment relaxation of an exact-match string.
func wordsPattern(s string) (*values.Pattern, error) {
	toks := values.Tokenize(s)
	if len(toks) == 0 {
		return nil, errInapplicable("no words in text")
	}
	ws := make([]*values.Pattern, len(toks))
	for i, t := range toks {
		ws[i] = values.Word(t)
	}
	if len(ws) == 1 {
		return ws[0], nil
	}
	return values.PatternAnd(ws...), nil
}
