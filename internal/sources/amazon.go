package sources

import (
	"strings"

	"repro/internal/engine"
	"repro/internal/qtree"
	"repro/internal/rules"
	"repro/internal/values"
)

// amazonRules is the mapping specification K_Amazon of Figure 3, written in
// the rule DSL. Rule numbering follows the paper. R4 is split into an exact
// variant (no proximity in the pattern) and a relaxing variant (near → ∧),
// which lets the residue computation know when a filter is needed.
const amazonRules = `
# K_Amazon — mapping rules for target Amazon (Figure 3).

rule R1 {
  match [A1 = N];
  where SimpleMapping(A1), Value(N);
  let A2 = AttrNameMapping(A1);
  emit exact [A2 = N];
}

rule R2 {
  match [ln = L], [fn = F];
  where Value(L), Value(F);
  let A = LnFnToName(L, F);
  emit exact [author = A];
}

rule R3 {
  match [ln = L];
  where Value(L);
  emit exact [author = L];
}

rule R4 {
  match [ti contains P1];
  where NoNear(P1);
  emit exact [ti-word contains P1];
}

rule R4n {
  match [ti contains P1];
  where HasNear(P1);
  let P2 = RewriteTextPat(P1);
  emit [ti-word contains P2];
}

rule R5 {
  match [ti = T];
  where Value(T);
  emit [title starts T];
}

rule R6 {
  match [pyear = Y], [pmonth = M];
  where Value(Y), Value(M);
  let D = MonthYearToDate(M, Y);
  emit exact [pdate during D];
}

rule R7 {
  match [pyear = Y];
  where Value(Y);
  let D = YearToDate(Y);
  emit exact [pdate during D];
}

rule R8 {
  match [kwd contains P1];
  let P2 = RewriteTextPat(P1);
  emit [ti-word contains P2] or [subject-word contains P2];
}

rule R9 {
  match [category = C];
  where Value(C);
  let S = SubjectForCategory(C);
  emit [subject = S];
}
`

// amazonSimpleAttrs are the attributes rule R1's SimpleMapping condition
// accepts, with their native names.
var amazonSimpleAttrs = map[string]string{
	"publisher": "publisher",
	"id-no":     "isbn",
}

// NewAmazon constructs the Amazon source: specification K_Amazon, the
// target's capability description, and the native evaluator (structured
// author matching).
func NewAmazon() *Source {
	reg := baseRegistry()
	reg.RegisterCond("SimpleMapping", func(b rules.Binding, args []string) (bool, error) {
		a, err := b.AttrVal(args[0])
		if err != nil {
			return false, nil
		}
		_, ok := amazonSimpleAttrs[a.Name]
		return ok, nil
	})
	reg.RegisterAction("AttrNameMapping", func(b rules.Binding, args []string) (rules.BoundVal, error) {
		a, err := b.AttrVal(args[0])
		if err != nil {
			return rules.BoundVal{}, err
		}
		native, ok := amazonSimpleAttrs[a.Name]
		if !ok {
			return rules.BoundVal{}, errInapplicable("no simple mapping for " + a.Name)
		}
		return rules.AttrOf(qtree.A(native)), nil
	})

	target := rules.NewTarget("amazon",
		rules.Capability{Attr: "author", Op: qtree.OpEq, ValueKinds: []string{"string"}},
		rules.Capability{Attr: "ti-word", Op: qtree.OpContains},
		rules.Capability{Attr: "subject-word", Op: qtree.OpContains},
		rules.Capability{Attr: "title", Op: qtree.OpStarts, ValueKinds: []string{"string"}},
		rules.Capability{Attr: "pdate", Op: qtree.OpDuring, ValueKinds: []string{"date"}},
		rules.Capability{Attr: "subject", Op: qtree.OpEq, ValueKinds: []string{"string"}},
		rules.Capability{Attr: "publisher", Op: qtree.OpEq, ValueKinds: []string{"string"}},
		rules.Capability{Attr: "isbn", Op: qtree.OpEq, ValueKinds: []string{"string"}},
	)

	spec := rules.MustSpec("K_Amazon", target, reg, rules.MustParseRules(amazonRules)...)

	ev := engine.NewEvaluator()
	ev.Override("author", qtree.OpEq, authorMatch)

	return &Source{Name: "amazon", Spec: spec, Eval: ev}
}

// authorMatch implements Amazon's structured author equality: the query
// name "Last" or "Last, First" matches a stored "Last, First" when the last
// names agree and, if the query gives a first name, the first names agree
// too (Example 1/2: Amazon requires the last name, the first is optional).
func authorMatch(tv, cv qtree.Value) (bool, error) {
	stored, ok1 := tv.(values.String)
	queried, ok2 := cv.(values.String)
	if !ok1 || !ok2 {
		return false, errInapplicable("author comparison needs strings")
	}
	sLn, sFn := values.NameToLnFn(stored.Raw())
	qLn, qFn := values.NameToLnFn(queried.Raw())
	if !strings.EqualFold(sLn, qLn) {
		return false, nil
	}
	return qFn == "" || strings.EqualFold(sFn, qFn), nil
}
