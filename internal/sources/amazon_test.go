package sources

import (
	"testing"

	"repro/internal/core"
	"repro/internal/qparse"
	"repro/internal/qtree"
)

// TestFigure2Q1 reproduces the first row of Figure 2 (via Example 4):
// Algorithm SCM maps Q̂1 = fl ∧ ft1 ∧ fy ∧ fm ∧ fk to
// S1 = aa ∧ at1 ∧ ad ∧ (at2 ∨ as1).
func TestFigure2Q1(t *testing.T) {
	az := NewAmazon()
	tr := core.NewTranslator(az.Spec)

	q1 := qparse.MustParse(`[ln = "Smith"] and [ti contains java(near)jdk] and ` +
		`[pyear = 1997] and [pmonth = 5] and [kwd contains www]`)
	got, err := tr.Translate(q1, core.AlgSCM)
	if err != nil {
		t.Fatalf("SCM(Q1): %v", err)
	}
	want := qparse.MustParse(`[author = "Smith"] and [ti-word contains java(^)jdk] and ` +
		`[pdate during May/97] and ([ti-word contains www] or [subject-word contains www])`)
	if !got.EqualCanonical(want) {
		t.Errorf("SCM(Q1)\n got: %s\nwant: %s", got, want)
	}
	if err := az.Target().Expressible(got); err != nil {
		t.Errorf("S1 not expressible: %v", err)
	}
}

// TestFigure2Q2 reproduces the second row of Figure 2: Q̂2 = fp ∧ ft2 ∧ fc ∧ fi
// maps to S2 = ap ∧ at3 ∧ as2 ∧ ai.
func TestFigure2Q2(t *testing.T) {
	az := NewAmazon()
	tr := core.NewTranslator(az.Spec)

	q2 := qparse.MustParse(`[publisher = "oreilly"] and [ti = "jdkforjava"] and ` +
		`[category = "D.3"] and [id-no = "081815181Y"]`)
	got, err := tr.Translate(q2, core.AlgSCM)
	if err != nil {
		t.Fatalf("SCM(Q2): %v", err)
	}
	want := qparse.MustParse(`[publisher = "oreilly"] and [title starts "jdkforjava"] and ` +
		`[subject = "programming"] and [isbn = "081815181Y"]`)
	if !got.EqualCanonical(want) {
		t.Errorf("SCM(Q2)\n got: %s\nwant: %s", got, want)
	}
	if err := az.Target().Expressible(got); err != nil {
		t.Errorf("S2 not expressible: %v", err)
	}
}

// TestExample4Matchings verifies the matching bookkeeping of Example 4:
// the submatching {fy} of R7 is suppressed in favor of {fy, fm} of R6.
func TestExample4Matchings(t *testing.T) {
	az := NewAmazon()
	tr := core.NewTranslator(az.Spec)

	q1 := qparse.MustParse(`[ln = "Smith"] and [ti contains java(near)jdk] and ` +
		`[pyear = 1997] and [pmonth = 5] and [kwd contains www]`)
	res, err := tr.SCMQuery(q1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matchings) != 4 {
		for _, m := range res.Matchings {
			t.Logf("retained: %s", m)
		}
		t.Fatalf("retained %d matchings, want 4 (R3, R4n, R6, R8)", len(res.Matchings))
	}
	rulesSeen := make(map[string]bool)
	for _, m := range res.Matchings {
		rulesSeen[m.Rule.Name] = true
	}
	for _, name := range []string{"R3", "R4n", "R6", "R8"} {
		if !rulesSeen[name] {
			t.Errorf("rule %s did not fire", name)
		}
	}
	if rulesSeen["R7"] {
		t.Errorf("submatching of R7 was not suppressed")
	}
	if len(res.Unmatched) != 0 {
		t.Errorf("unexpected unmatched constraints: %v", res.Unmatched)
	}
}

// TestExample2 reproduces Example 2: translating
// Q = (f1 ∨ f2) ∧ f3 with f1=[ln="Clancy"], f2=[ln="Klancy"], f3=[fn="Tom"].
// Separating conjuncts yields the suboptimal Qa; Algorithm TDQM must produce
// the minimal mapping Qb = [author="Clancy, Tom"] ∨ [author="Klancy, Tom"].
func TestExample2(t *testing.T) {
	az := NewAmazon()
	tr := core.NewTranslator(az.Spec)

	q := qparse.MustParse(`([ln = "Clancy"] or [ln = "Klancy"]) and [fn = "Tom"]`)
	want := qparse.MustParse(`[author = "Clancy, Tom"] or [author = "Klancy, Tom"]`)

	for _, alg := range []string{core.AlgTDQM, core.AlgDNF} {
		got, err := tr.Translate(q, alg)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if !got.EqualCanonical(want) {
			t.Errorf("%s\n got: %s\nwant: %s", alg, got, want)
		}
	}

	// fn alone has no mapping at Amazon: S(f3) = True.
	res, err := tr.SCMQuery(qparse.MustParse(`[fn = "Tom"]`))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Query.IsTrue() {
		t.Errorf("S(fn alone) = %s, want TRUE", res.Query)
	}
}

// TestQBookTDQM reproduces Example 6 / Figure 7: TDQM on Q_book produces
// (S(flff) ∨ S(fk1) ∨ S(fk2)) ∧ (S(fy fm1) ∨ S(fy fm2)) — structure
// preserved where separable, Disjunctivize only for the {Č2, Č3} block.
func TestQBookTDQM(t *testing.T) {
	az := NewAmazon()
	tr := core.NewTranslator(az.Spec)

	qbook := qparse.MustParse(
		`(([ln = "Smith"] and [fn = "John"]) or [kwd contains web] or [kwd contains java]) ` +
			`and [pyear = 1997] and ([pmonth = 5] or [pmonth = 6])`)

	got, err := tr.TDQM(qbook)
	if err != nil {
		t.Fatal(err)
	}
	want := qparse.MustParse(
		`([author = "Smith, John"] or ` +
			` [ti-word contains web] or [subject-word contains web] or ` +
			` [ti-word contains java] or [subject-word contains java]) and ` +
			`([pdate during May/97] or [pdate during Jun/97])`)
	if !got.EqualCanonical(want) {
		t.Errorf("TDQM(Q_book)\n got: %s\nwant: %s", got, want)
	}

	// The DNF baseline must be logically equivalent but larger.
	dnfTr := core.NewTranslator(az.Spec)
	viaDNF, err := dnfTr.DNFMap(qbook)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() >= viaDNF.Size() {
		t.Errorf("TDQM output (size %d) not more compact than DNF output (size %d)",
			got.Size(), viaDNF.Size())
	}
}

// TestQBookPartition verifies the PSafe partition of Example 6:
// blocks {Č1} and {Č2, Č3}.
func TestQBookPartition(t *testing.T) {
	az := NewAmazon()
	tr := core.NewTranslator(az.Spec)

	qbook := qparse.MustParse(
		`(([ln = "Smith"] and [fn = "John"]) or [kwd contains web] or [kwd contains java]) ` +
			`and [pyear = 1997] and ([pmonth = 5] or [pmonth = 6])`).Normalize()
	if qbook.Kind != qtree.KindAnd || len(qbook.Kids) != 3 {
		t.Fatalf("unexpected query shape: %s", qbook)
	}
	p, err := tr.PSafe(qbook.Kids)
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "{{0}, {1,2}}" {
		t.Errorf("partition = %s, want {{0}, {1,2}}", p)
	}
	if p.Separable {
		t.Errorf("Q_book conjunction reported separable")
	}
}
