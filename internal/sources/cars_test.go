package sources

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/qparse"
)

// TestSection1CarMapping reproduces the many-to-many mapping of Section 1:
// [car-type = "ford-taurus"] ∧ [year = 1994] ↦ [make = "ford"] ∧
// [model = "taurus-94"].
func TestSection1CarMapping(t *testing.T) {
	cars := NewCars()
	tr := core.NewTranslator(cars.Spec)

	q := qparse.MustParse(`[car-type = "ford-taurus"] and [year = 1994]`)
	got, err := tr.Translate(q, core.AlgSCM)
	if err != nil {
		t.Fatal(err)
	}
	want := qparse.MustParse(`[make = "ford"] and [model = "taurus-94"]`)
	if !got.EqualCanonical(want) {
		t.Errorf("got %s, want %s", got, want)
	}
}

// TestCarTypeAloneMapping checks the partial mapping: car-type without a
// year maps to make plus a model prefix (rule CR2), and CR2's submatching is
// suppressed when the year is present.
func TestCarTypeAloneMapping(t *testing.T) {
	cars := NewCars()
	tr := core.NewTranslator(cars.Spec)

	got, err := tr.Translate(qparse.MustParse(`[car-type = "ford-taurus"]`), core.AlgSCM)
	if err != nil {
		t.Fatal(err)
	}
	want := qparse.MustParse(`[make = "ford"] and [model starts "taurus-"]`)
	if !got.EqualCanonical(want) {
		t.Errorf("got %s, want %s", got, want)
	}

	res, err := tr.SCMQuery(qparse.MustParse(`[car-type = "ford-taurus"] and [year = 1994]`))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Matchings {
		if m.Rule.Name == "CR2" {
			t.Error("CR2 submatching not suppressed when year is present")
		}
	}
}

// TestYearAloneHasNoMapping: like pmonth at Amazon, a year alone cannot be
// expressed at the dealer.
func TestYearAloneHasNoMapping(t *testing.T) {
	tr := core.NewTranslator(NewCars().Spec)
	got, err := tr.Translate(qparse.MustParse(`[year = 1994]`), core.AlgSCM)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsTrue() {
		t.Errorf("S([year = 1994]) = %s, want TRUE", got)
	}
}

// TestCarMappingOnData checks exactness on data: the translated query
// selects exactly the listings Q selects.
func TestCarMappingOnData(t *testing.T) {
	cars := NewCars()
	tr := core.NewTranslator(cars.Spec)
	rel := CarRelation("lot", GenCars(5, 300))

	for _, qs := range []string{
		`[car-type = "ford-taurus"] and [year = 1994]`,
		`[car-type = "honda-civic"]`,
		`([car-type = "ford-taurus"] or [car-type = "vw-golf"]) and [year = 1995]`,
	} {
		q := qparse.MustParse(qs)
		mapped, filter, err := tr.TranslateWithFilter(q, core.AlgTDQM)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := rel.Select(q, cars.Eval)
		if err != nil {
			t.Fatal(err)
		}
		viaSource, err := rel.Select(mapped, cars.Eval)
		if err != nil {
			t.Fatal(err)
		}
		filtered, err := viaSource.Select(filter, cars.Eval)
		if err != nil {
			t.Fatal(err)
		}
		if filtered.Len() != direct.Len() {
			t.Errorf("%s: mediated %d, direct %d", qs, filtered.Len(), direct.Len())
		}
		if viaSource.Len() < direct.Len() {
			t.Errorf("%s: translation missed answers (%d < %d)", qs, viaSource.Len(), direct.Len())
		}
	}
}

// TestMetricConversions checks unit conversion across every comparison
// operator, including Section 1's 3in = 7.62cm example.
func TestMetricConversions(t *testing.T) {
	m := NewMetric()
	tr := core.NewTranslator(m.Spec)

	cases := []struct{ q, want string }{
		{`[length = 3]`, `[length-cm = 7.62]`},
		{`[length <= 10]`, `[length-cm <= 25.4]`},
		{`[length > 2]`, `[length-cm > 5.08]`},
		{`[cost = 100]`, `[price-cents = 10000]`},
		{`[cost <= 99]`, `[price-cents <= 9900]`},
		{`[cost >= 10] and [length < 4]`, `[price-cents >= 1000] and [length-cm < 10.16]`},
	}
	for _, c := range cases {
		got, err := tr.Translate(qparse.MustParse(c.q), core.AlgSCM)
		if err != nil {
			t.Errorf("%s: %v", c.q, err)
			continue
		}
		if !got.EqualCanonical(qparse.MustParse(c.want)) {
			t.Errorf("%s -> %s, want %s", c.q, got, c.want)
		}
	}
}

// TestMetricOnData checks the conversions are exact on data.
func TestMetricOnData(t *testing.T) {
	m := NewMetric()
	tr := core.NewTranslator(m.Spec)
	var tuples []engine.Tuple
	for l := 1.0; l <= 12; l++ {
		for d := 10.0; d <= 200; d += 37 {
			tuples = append(tuples, MetricTuple(l, d))
		}
	}

	q := qparse.MustParse(`[length <= 3] and [cost < 100]`)
	mapped, err := tr.Translate(q, core.AlgSCM)
	if err != nil {
		t.Fatal(err)
	}
	for _, tup := range tuples {
		inQ, err := m.Eval.EvalQuery(q, tup)
		if err != nil {
			t.Fatal(err)
		}
		inS, err := m.Eval.EvalQuery(mapped, tup)
		if err != nil {
			t.Fatal(err)
		}
		if inQ != inS {
			t.Fatalf("exact conversion differs on %s: Q=%v S=%v", tup, inQ, inS)
		}
	}
}
