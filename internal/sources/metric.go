package sources

import (
	"repro/internal/engine"
	"repro/internal/qtree"
	"repro/internal/rules"
	"repro/internal/values"
)

// The metric-catalog scenario generalizes Section 1's unit-conversion
// example ("3 inches to 7.62 centimeters") and the cost → price attribute
// mapping: the mediator speaks in inches and whole dollars; the source
// stores lengths in centimeters and prices in cents. Every comparison
// operator must be carried through the conversion — constraint mapping is
// not mere data conversion precisely because inexact, non-equality
// constraints like [cost <= 100] must translate too (Section 3).
// Operator variables (OP below) let one rule cover the whole comparison
// family: the pattern binds the constraint's operator, OneOf restricts it
// to order comparisons, and the emission re-uses it — monotone unit
// conversions preserve every comparison exactly.
const metricRules = `
# K_Metric — unit/scale conversion rules for the metric catalog.

rule M1 {
  match [length OP L];
  where OneOf(OP, "=", "<", "<=", ">", ">="), Value(L);
  let C = InchesToCm(L);
  emit exact [length-cm OP C];
}

rule M2 {
  match [cost OP D];
  where OneOf(OP, "=", "<", "<=", ">", ">="), Value(D);
  let C = DollarsToCents(D);
  emit exact [price-cents OP C];
}
`

// NewMetric constructs the metric-catalog source.
func NewMetric() *Source {
	reg := baseRegistry()
	reg.RegisterAction("InchesToCm", func(b rules.Binding, args []string) (rules.BoundVal, error) {
		in, err := floatArg(b, args, 0)
		if err != nil {
			return rules.BoundVal{}, err
		}
		return rules.ValueOf(values.Float(values.InchesToCentimeters(in))), nil
	})
	reg.RegisterAction("DollarsToCents", func(b rules.Binding, args []string) (rules.BoundVal, error) {
		d, err := floatArg(b, args, 0)
		if err != nil {
			return rules.BoundVal{}, err
		}
		return rules.ValueOf(values.Int(int64(d*100 + 0.5))), nil
	})

	numOps := []string{qtree.OpEq, qtree.OpLe, qtree.OpGe, qtree.OpLt, qtree.OpGt}
	var caps []rules.Capability
	for _, op := range numOps {
		caps = append(caps,
			rules.Capability{Attr: "length-cm", Op: op},
			rules.Capability{Attr: "price-cents", Op: op},
		)
	}
	target := rules.NewTarget("metric", caps...)
	spec := rules.MustSpec("K_Metric", target, reg, rules.MustParseRules(metricRules)...)
	return &Source{Name: "metric", Spec: spec, Eval: engine.NewEvaluator()}
}

// MetricTuple builds a catalog tuple from a length in inches and a cost in
// dollars, carrying both vocabularies.
func MetricTuple(lengthInches, costDollars float64) engine.Tuple {
	t := make(engine.Tuple)
	t.Set(qtree.A("length"), values.Float(lengthInches))
	t.Set(qtree.A("cost"), values.Float(costDollars))
	t.Set(qtree.A("length-cm"), values.Float(values.InchesToCentimeters(lengthInches)))
	t.Set(qtree.A("price-cents"), values.Int(int64(costDollars*100+0.5)))
	return t
}
