package sources

import (
	"testing"

	"repro/internal/rules"
)

// TestBuiltinSpecsLintClean: every shipped specification must be free of
// lint errors (warnings are reported for visibility).
func TestBuiltinSpecsLintClean(t *testing.T) {
	for _, src := range []*Source{
		NewAmazon(), NewClbooks(), NewT1(), NewT2(), NewMapSource(), NewCars(), NewMetric(),
	} {
		for _, p := range rules.Lint(src.Spec) {
			if p.Level == rules.LintError {
				t.Errorf("%s: %v", src.Name, p)
			} else {
				t.Logf("%s: %v", src.Name, p)
			}
		}
	}
}
