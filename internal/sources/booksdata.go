package sources

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/engine"
	"repro/internal/qtree"
	"repro/internal/values"
)

// Book is a synthetic catalog record carrying the mediator vocabulary
// (title, ln, fn, pyear, pmonth, kwd, category, publisher, id-no) from which
// the source vocabularies derive.
type Book struct {
	Title     string
	Ln, Fn    string
	Year      int
	Month     int
	Day       int
	Keywords  []string
	Category  string
	Publisher string
	IDNo      string
}

// Tuple renders the book as an engine tuple carrying both the mediator
// attributes and the derived Amazon/Clbooks native attributes — the
// conceptual-relation view of Section 2 (one tuple relates all
// vocabularies, so original and translated queries are evaluated on the
// same data).
//
// Soundness invariant: every keyword of a book occurs in its title or its
// subject heading. This is the domain property rule R8 of K_Amazon relies
// on when it relaxes [kwd contains P] into title-word/subject-word search;
// the generator maintains it by construction.
func (bk Book) Tuple() engine.Tuple {
	t := make(engine.Tuple)
	subject, _ := values.SubjectForCategory(bk.Category)
	t.Set(qtree.A("ti"), values.String(bk.Title))
	t.Set(qtree.A("ln"), values.String(bk.Ln))
	t.Set(qtree.A("fn"), values.String(bk.Fn))
	t.Set(qtree.A("pyear"), values.Int(bk.Year))
	t.Set(qtree.A("pmonth"), values.Int(bk.Month))
	t.Set(qtree.A("kwd"), values.String(strings.Join(bk.Keywords, " ")))
	t.Set(qtree.A("category"), values.String(bk.Category))
	t.Set(qtree.A("publisher"), values.String(bk.Publisher))
	t.Set(qtree.A("id-no"), values.String(bk.IDNo))
	// Derived native attributes.
	t.Set(qtree.A("author"), values.String(values.LnFnToName(bk.Ln, bk.Fn)))
	t.Set(qtree.A("title"), values.String(bk.Title))
	t.Set(qtree.A("ti-word"), values.String(bk.Title))
	t.Set(qtree.A("pdate"), values.Date{Year: bk.Year, Month: bk.Month, Day: bk.Day})
	t.Set(qtree.A("subject"), values.String(subject))
	t.Set(qtree.A("subject-word"), values.String(subject))
	t.Set(qtree.A("isbn"), values.String(bk.IDNo))
	return t
}

var (
	bookLastNames  = []string{"Smith", "Clancy", "Klancy", "Ullman", "Garcia", "Chang", "Jones", "Widom", "Knuth", "Date"}
	bookFirstNames = []string{"Tom", "John", "Joe Tom", "Hector", "Kevin", "Jennifer", "Mary", "Ann"}
	bookTitleWords = []string{"java", "jdk", "www", "data", "mining", "query", "systems", "web", "internet", "database", "networks", "compilers", "programming"}
	bookPublishers = []string{"oreilly", "addison-wesley", "prentice-hall", "mit-press", "morgan-kaufmann"}
	bookCategories = []string{"D.3", "D.4", "H.2", "H.3", "I.2", "C.2"}
)

// GenBooks deterministically generates n synthetic books from seed.
func GenBooks(seed int64, n int) []Book {
	rng := rand.New(rand.NewSource(seed))
	books := make([]Book, n)
	for i := range books {
		nw := 2 + rng.Intn(3)
		tw := make([]string, nw)
		for j := range tw {
			tw[j] = bookTitleWords[rng.Intn(len(bookTitleWords))]
		}
		bk := Book{
			Title:     strings.Join(tw, " "),
			Ln:        bookLastNames[rng.Intn(len(bookLastNames))],
			Year:      1994 + rng.Intn(5),
			Month:     1 + rng.Intn(12),
			Day:       1 + rng.Intn(28),
			Category:  bookCategories[rng.Intn(len(bookCategories))],
			Publisher: bookPublishers[rng.Intn(len(bookPublishers))],
			IDNo:      fmt.Sprintf("%09d%c", rng.Intn(1e9), 'A'+rune(rng.Intn(26))),
		}
		if rng.Intn(10) > 0 { // some authors have no recorded first name
			bk.Fn = bookFirstNames[rng.Intn(len(bookFirstNames))]
		}
		// Keywords drawn from the title, plus possibly a subject word —
		// maintaining the kwd ⊆ title ∪ subject invariant (see Tuple).
		bk.Keywords = append(bk.Keywords, tw[rng.Intn(len(tw))])
		if rng.Intn(2) == 0 {
			subject, _ := values.SubjectForCategory(bk.Category)
			sw := values.Tokenize(subject)
			bk.Keywords = append(bk.Keywords, sw[rng.Intn(len(sw))])
		}
		books[i] = bk
	}
	return books
}

// BookRelation renders books as an engine relation.
func BookRelation(name string, books []Book) *engine.Relation {
	r := engine.NewRelation(name)
	for _, b := range books {
		r.Tuples = append(r.Tuples, b.Tuple())
	}
	return r
}
