package sources

import (
	"repro/internal/engine"
	"repro/internal/qtree"
	"repro/internal/rules"
)

// clbooksRules is the mapping specification for Computer Literacy
// (Example 1): the source supports only the contains operator over author
// name words, so both name components relax to word containment. The two
// constraints are independent here (unlike at Amazon): S(ln ∧ fn) =
// S(ln) ∧ S(fn), so no pair rule is needed — completeness (Definition 4)
// only demands rules for indecomposable combinations.
const clbooksRules = `
# K_Clbooks — mapping rules for target Clbooks (Example 1).

rule C1 {
  match [ln = L];
  where Value(L);
  emit [author contains L];
}

rule C2 {
  match [fn = F];
  where Value(F);
  emit [author contains F];
}

rule C3 {
  match [ti contains P1];
  let P2 = RewriteWordsOnly(P1);
  emit [ti-word contains P2];
}

rule C4 {
  match [ti = T];
  where Value(T);
  let P = TitleWords(T);
  emit [ti-word contains P];
}
`

// NewClbooks constructs the Clbooks source of Example 1.
func NewClbooks() *Source {
	reg := baseRegistry()
	reg.RegisterAction("TitleWords", func(b rules.Binding, args []string) (rules.BoundVal, error) {
		s, err := stringArg(b, args, 0)
		if err != nil {
			return rules.BoundVal{}, err
		}
		p, err := wordsPattern(s)
		if err != nil {
			return rules.BoundVal{}, err
		}
		return rules.ValueOf(p), nil
	})

	target := rules.NewTarget("clbooks",
		rules.Capability{Attr: "author", Op: qtree.OpContains},
		rules.Capability{Attr: "ti-word", Op: qtree.OpContains},
	)

	spec := rules.MustSpec("K_Clbooks", target, reg, rules.MustParseRules(clbooksRules)...)
	return &Source{Name: "clbooks", Spec: spec, Eval: engine.NewEvaluator()}
}
