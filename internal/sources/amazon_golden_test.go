package sources

import (
	"testing"

	"repro/internal/boolex"
	"repro/internal/core"
	"repro/internal/qparse"
)

// TestAmazonGoldenTranslations pins the translation of a broad range of
// query shapes against K_Amazon under Algorithm TDQM. Each case exercises a
// distinct interaction: submatching suppression, partial mappings, dropped
// constraints, dependency-aware restructuring, relaxations, and their
// combinations. "TRUE" means the whole query is unsupported at the target.
func TestAmazonGoldenTranslations(t *testing.T) {
	cases := []struct{ name, q, want string }{
		{
			"name pair",
			`[ln = "Clancy"] and [fn = "Tom"]`,
			`[author = "Clancy, Tom"]`,
		},
		{
			"last name alone",
			`[ln = "Clancy"]`,
			`[author = "Clancy"]`,
		},
		{
			"first name alone drops",
			`[fn = "Tom"]`,
			`TRUE`,
		},
		{
			"year and month combine",
			`[pyear = 1997] and [pmonth = 5]`,
			`[pdate during May/97]`,
		},
		{
			"year alone, partial date",
			`[pyear = 1997]`,
			`[pdate during 97]`,
		},
		{
			"month alone drops",
			`[pmonth = 5]`,
			`TRUE`,
		},
		{
			"title proximity relaxes",
			`[ti contains java(near)jdk]`,
			`[ti-word contains java(^)jdk]`,
		},
		{
			"title conjunction passes through",
			`[ti contains java(^)jdk]`,
			`[ti-word contains java(^)jdk]`,
		},
		{
			"exact title becomes prefix",
			`[ti = "jdkforjava"]`,
			`[title starts "jdkforjava"]`,
		},
		{
			"keyword fans out",
			`[kwd contains www]`,
			`[ti-word contains www] or [subject-word contains www]`,
		},
		{
			"category to subject",
			`[category = "D.3"]`,
			`[subject = "programming"]`,
		},
		{
			"unknown category drops",
			`[category = "Z.99"]`,
			`TRUE`,
		},
		{
			"simple renames",
			`[publisher = "oreilly"] and [id-no = "081815181Y"]`,
			`[publisher = "oreilly"] and [isbn = "081815181Y"]`,
		},
		{
			"dependency across disjunction (Example 2)",
			`([ln = "Clancy"] or [ln = "Klancy"]) and [fn = "Tom"]`,
			`[author = "Clancy, Tom"] or [author = "Klancy, Tom"]`,
		},
		{
			"date dependency across disjunction",
			`[pyear = 1997] and ([pmonth = 5] or [pmonth = 6])`,
			`[pdate during May/97] or [pdate during Jun/97]`,
		},
		{
			"independent disjunction stays in place",
			`[publisher = "oreilly"] and ([category = "D.3"] or [category = "H.2"])`,
			`[publisher = "oreilly"] and ([subject = "programming"] or [subject = "databases"])`,
		},
		{
			"unsupported disjunct broadens to TRUE",
			`[ln = "Clancy"] or [fn = "Tom"]`,
			`TRUE`,
		},
		{
			"dropped branch inside conjunction",
			`[fn = "Tom"] and [publisher = "oreilly"]`,
			`[publisher = "oreilly"]`,
		},
		{
			"deep nesting",
			`[publisher = "oreilly"] and ([category = "D.3"] or ([pyear = 1997] and ([pmonth = 5] or [pmonth = 6])))`,
			`[publisher = "oreilly"] and ([subject = "programming"] or [pdate during May/97] or [pdate during Jun/97])`,
		},
		{
			"two independent dependencies in one query",
			`[ln = "Chang"] and [fn = "Kevin"] and [pyear = 1999] and [pmonth = 6]`,
			`[author = "Chang, Kevin"] and [pdate during Jun/99]`,
		},
		{
			// Four implicit disjuncts: ln·fn → combined author; ln·pmonth →
			// author alone (a month without a year has no date mapping);
			// pyear·fn → partial date; pyear·pmonth → full month date.
			"pair split across disjunction both ways",
			`([ln = "A"] or [pyear = 1997]) and ([fn = "B"] or [pmonth = 5])`,
			`[author = "A, B"] or [author = "A"] or [pdate during 97] or [pdate during May/97]`,
		},
		{
			"repeated constraint",
			`[ln = "Clancy"] and ([ln = "Clancy"] or [ln = "Klancy"])`,
			`[author = "Clancy"]`,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tr := core.NewTranslator(NewAmazon().Spec)
			q := qparse.MustParse(c.q)
			got, err := tr.TDQM(q)
			if err != nil {
				t.Fatal(err)
			}
			want := qparse.MustParse(c.want)
			if got.EqualCanonical(want) {
				return
			}
			// Allow logically equivalent alternatives (tree shapes may
			// differ when structure conversion interleaves).
			eq, err := boolex.Equivalent(got, want)
			if err != nil || !eq {
				t.Errorf("query %s\n got: %s\nwant: %s", c.q, got, want)
			}
		})
	}
}
