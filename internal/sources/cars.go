package sources

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/engine"
	"repro/internal/qtree"
	"repro/internal/rules"
	"repro/internal/values"
)

// The car-dealer scenario of Section 1: the mediator describes cars with a
// combined car-type attribute and a year, the source with separate make and
// model attributes whose model values embed the year —
//
//	[car-type = "ford-taurus"] ∧ [year = 1994]
//	  ↦ [make = "ford"] ∧ [model = "taurus-94"]
//
// a genuinely many-to-many constraint mapping: two original constraints map
// together to two target constraints, and neither pair decomposes.
const carsRules = `
# K_Cars — mapping rules for the car-dealer source (Section 1).

rule CR1 {
  match [car-type = C], [year = Y];
  where Value(C), Value(Y);
  let MK = CarMake(C);
  let MD = CarModel(C, Y);
  emit exact [make = MK] and [model = MD];
}

rule CR2 {
  match [car-type = C];
  where Value(C);
  let MK = CarMake(C);
  let MP = CarModelPrefix(C);
  emit exact [make = MK] and [model starts MP];
}
`

// NewCars constructs the car-dealer source.
func NewCars() *Source {
	reg := baseRegistry()
	carArgs := func(b rules.Binding, args []string) (carType string, err error) {
		return stringArg(b, args, 0)
	}
	reg.RegisterAction("CarMake", func(b rules.Binding, args []string) (rules.BoundVal, error) {
		c, err := carArgs(b, args)
		if err != nil {
			return rules.BoundVal{}, err
		}
		mk, _, err := values.CarTypeSplit(c, 0)
		if err != nil {
			return rules.BoundVal{}, err
		}
		return rules.ValueOf(values.String(mk)), nil
	})
	reg.RegisterAction("CarModel", func(b rules.Binding, args []string) (rules.BoundVal, error) {
		c, err := carArgs(b, args)
		if err != nil {
			return rules.BoundVal{}, err
		}
		y, err := intArg(b, args, 1)
		if err != nil {
			return rules.BoundVal{}, err
		}
		_, md, err := values.CarTypeSplit(c, y)
		if err != nil {
			return rules.BoundVal{}, err
		}
		return rules.ValueOf(values.String(md)), nil
	})
	reg.RegisterAction("CarModelPrefix", func(b rules.Binding, args []string) (rules.BoundVal, error) {
		c, err := carArgs(b, args)
		if err != nil {
			return rules.BoundVal{}, err
		}
		i := strings.Index(c, "-")
		if i <= 0 {
			return rules.BoundVal{}, errInapplicable("car type not in make-model form")
		}
		return rules.ValueOf(values.String(c[i+1:] + "-")), nil
	})

	target := rules.NewTarget("cars",
		rules.Capability{Attr: "make", Op: qtree.OpEq, ValueKinds: []string{"string"}},
		rules.Capability{Attr: "model", Op: qtree.OpEq, ValueKinds: []string{"string"}},
		rules.Capability{Attr: "model", Op: qtree.OpStarts, ValueKinds: []string{"string"}},
	)
	spec := rules.MustSpec("K_Cars", target, reg, rules.MustParseRules(carsRules)...)
	return &Source{Name: "cars", Spec: spec, Eval: engine.NewEvaluator()}
}

// Car is a synthetic dealer listing.
type Car struct {
	Make  string
	Model string // bare model name, without the year suffix
	Year  int
}

// Tuple renders the car carrying both vocabularies: the mediator's
// car-type/year and the source's make/model (with embedded year).
func (c Car) Tuple() engine.Tuple {
	t := make(engine.Tuple)
	t.Set(qtree.A("car-type"), values.String(c.Make+"-"+c.Model))
	t.Set(qtree.A("year"), values.Int(c.Year))
	t.Set(qtree.A("make"), values.String(c.Make))
	t.Set(qtree.A("model"), values.String(fmt.Sprintf("%s-%02d", c.Model, c.Year%100)))
	return t
}

var (
	carMakes  = []string{"ford", "honda", "toyota", "vw"}
	carModels = map[string][]string{
		"ford":   {"taurus", "escort", "mustang"},
		"honda":  {"civic", "accord"},
		"toyota": {"corolla", "camry"},
		"vw":     {"golf", "passat"},
	}
)

// GenCars deterministically generates n synthetic listings.
func GenCars(seed int64, n int) []Car {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Car, n)
	for i := range out {
		mk := carMakes[rng.Intn(len(carMakes))]
		mds := carModels[mk]
		out[i] = Car{
			Make:  mk,
			Model: mds[rng.Intn(len(mds))],
			Year:  1990 + rng.Intn(10),
		}
	}
	return out
}

// CarRelation renders listings as an engine relation.
func CarRelation(name string, cars []Car) *engine.Relation {
	r := engine.NewRelation(name)
	for _, c := range cars {
		r.Tuples = append(r.Tuples, c.Tuple())
	}
	return r
}
