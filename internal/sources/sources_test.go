package sources

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/qparse"
	"repro/internal/qtree"
	"repro/internal/rules"
	"repro/internal/values"
)

// TestAuthorMatchSemantics pins Amazon's structured author equality.
func TestAuthorMatchSemantics(t *testing.T) {
	cases := []struct {
		stored, queried string
		want            bool
	}{
		{"Clancy, Tom", "Clancy, Tom", true},
		{"Clancy, Tom", "Clancy", true}, // last name alone matches
		{"Clancy, Tom", "clancy", true}, // case-insensitive
		{"Clancy, Tom", "Clancy, Joe", false},
		{"Tom, Clancy", "Clancy, Tom", false}, // reversed names differ
		{"Clancy, Joe Tom", "Clancy, Tom", false},
		{"Clancy", "Clancy, Tom", false}, // queried first name unmatched
		{"Clancy", "Clancy", true},
	}
	for _, c := range cases {
		got, err := authorMatch(values.String(c.stored), values.String(c.queried))
		if err != nil {
			t.Fatalf("%q vs %q: %v", c.stored, c.queried, err)
		}
		if got != c.want {
			t.Errorf("authorMatch(%q, %q) = %v, want %v", c.stored, c.queried, got, c.want)
		}
	}
	if _, err := authorMatch(values.Int(1), values.String("x")); err == nil {
		t.Error("non-string author accepted")
	}
}

// TestBooksKeywordInvariant: every generated book's keywords occur in its
// title or subject — the soundness precondition of rule R8.
func TestBooksKeywordInvariant(t *testing.T) {
	for _, bk := range GenBooks(123, 500) {
		subject, _ := values.SubjectForCategory(bk.Category)
		hay := strings.ToLower(bk.Title + " " + subject)
		for _, kw := range bk.Keywords {
			if !strings.Contains(hay, strings.ToLower(kw)) {
				t.Fatalf("book %+v: keyword %q not in title or subject", bk, kw)
			}
		}
	}
}

// TestBookTupleCarriesBothVocabularies: the derived native attributes agree
// with the mediator attributes on every generated book.
func TestBookTupleCarriesBothVocabularies(t *testing.T) {
	for _, bk := range GenBooks(5, 100) {
		tup := bk.Tuple()
		author, _ := tup.Get(qtree.A("author"))
		if want := values.LnFnToName(bk.Ln, bk.Fn); author.String() != values.String(want).String() {
			t.Fatalf("author = %s, want %q", author, want)
		}
		pdate, _ := tup.Get(qtree.A("pdate"))
		d := pdate.(values.Date)
		if d.Year != bk.Year || d.Month != bk.Month || d.Day != bk.Day {
			t.Fatalf("pdate = %v, want %d-%d-%d", d, bk.Year, bk.Month, bk.Day)
		}
		isbn, _ := tup.Get(qtree.A("isbn"))
		idno, _ := tup.Get(qtree.A("id-no"))
		if !isbn.Equal(idno) {
			t.Fatalf("isbn %s != id-no %s", isbn, idno)
		}
	}
}

// TestClbooksWordsOnlyTitle: rule C3 flattens a near pattern into required
// words; an OR pattern cannot be relaxed to required words and maps to True.
func TestClbooksWordsOnlyTitle(t *testing.T) {
	cl := NewClbooks()
	tr := core.NewTranslator(cl.Spec)

	got, err := tr.Translate(qparse.MustParse(`[ti contains java(near)jdk]`), core.AlgSCM)
	if err != nil {
		t.Fatal(err)
	}
	want := qparse.MustParse(`[ti-word contains java(^)jdk]`)
	if !got.EqualCanonical(want) {
		t.Errorf("got %s, want %s", got, want)
	}

	got, err = tr.Translate(qparse.MustParse(`[ti contains java(v)python]`), core.AlgSCM)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsTrue() {
		t.Errorf("OR pattern mapped to %s, want TRUE (no required words)", got)
	}

	// Rule C4: exact title becomes word containment of all title words.
	got, err = tr.Translate(qparse.MustParse(`[ti = "the jdk handbook"]`), core.AlgSCM)
	if err != nil {
		t.Fatal(err)
	}
	want = qparse.MustParse(`[ti-word contains the(^)jdk(^)handbook]`)
	if !got.EqualCanonical(want) {
		t.Errorf("got %s, want %s", got, want)
	}
}

// TestT1NameWordRelaxation: rule R3 relaxes a bare ln/fn equality into word
// containment on the combined name attribute.
func TestT1NameWordRelaxation(t *testing.T) {
	tr := core.NewTranslator(NewT1().Spec)
	got, err := tr.Translate(qparse.MustParse(`[fac.ln = "Ullman"]`), core.AlgSCM)
	if err != nil {
		t.Fatal(err)
	}
	want := qparse.MustParse(`[fac.aubib.name contains "Ullman"]`)
	if !got.EqualCanonical(want) {
		t.Errorf("got %s, want %s", got, want)
	}
	// With both components, rule R4 produces the exact combined name and
	// suppresses the per-component relaxations.
	got, err = tr.Translate(qparse.MustParse(`[pub.ln = "Ullman"] and [pub.fn = "Jeff"]`), core.AlgSCM)
	if err != nil {
		t.Fatal(err)
	}
	want = qparse.MustParse(`[pub.paper.au = "Ullman, Jeff"]`)
	if !got.EqualCanonical(want) {
		t.Errorf("got %s, want %s", got, want)
	}
}

// TestT2UnknownDeptDropsRule: an unknown department makes rule R7's
// conversion inapplicable; the constraint maps to True and must be filtered.
func TestT2UnknownDeptDropsRule(t *testing.T) {
	tr := core.NewTranslator(NewT2().Spec)
	mapped, filter, err := tr.TranslateWithFilter(
		qparse.MustParse(`[fac.dept = astrology]`), core.AlgTDQM)
	if err != nil {
		t.Fatal(err)
	}
	if !mapped.IsTrue() {
		t.Errorf("unknown dept mapped to %s, want TRUE", mapped)
	}
	if filter.IsTrue() {
		t.Error("unknown dept must stay in the filter")
	}
}

// TestGenLibraryDeterminism and relation shapes.
func TestGenLibraryShapes(t *testing.T) {
	people, papers := GenLibrary(9, 6, 10)
	if len(people) != 6 || len(papers) != 10 {
		t.Fatalf("generated %d people, %d papers", len(people), len(papers))
	}
	t1 := T1Relation(people, papers)
	if t1.Len() != 60 {
		t.Errorf("T1 universe = %d tuples, want people×papers = 60", t1.Len())
	}
	t2 := T2Relation(people)
	if t2.Len() != 6 {
		t.Errorf("T2 universe = %d tuples, want 6", t2.Len())
	}
	// Same seed reproduces.
	p2, q2 := GenLibrary(9, 6, 10)
	if p2[0] != people[0] || q2[0] != papers[0] {
		t.Error("GenLibrary not deterministic")
	}
}

// TestBaseRegistryArgErrors: conversion functions reject wrong-kind and
// missing arguments rather than panicking.
func TestBaseRegistryArgErrors(t *testing.T) {
	reg := BaseRegistry()
	for _, name := range []string{"MonthYearToDate", "YearToDate", "LnFnToName",
		"RewriteTextPat", "RewriteWordsOnly", "SubjectForCategory", "DeptCode"} {
		fn, err := reg.Action(name)
		if err != nil {
			t.Fatal(err)
		}
		// Unbound variables must error, not panic.
		if _, err := fn(make(rules.Binding), []string{"M", "Y"}); err == nil {
			t.Errorf("%s accepted unbound arguments", name)
		}
		// Missing arguments must error, not panic.
		if _, err := fn(make(rules.Binding), nil); err == nil {
			t.Errorf("%s accepted missing arguments", name)
		}
	}
	// Wrong-kind argument.
	fn, _ := reg.Action("MonthYearToDate")
	b := rules.Binding{"M": rules.ValueOf(values.String("may")), "Y": rules.ValueOf(values.Int(1997))}
	if _, err := fn(b, []string{"M", "Y"}); err == nil {
		t.Error("MonthYearToDate accepted a string month")
	}
}
