// Package values provides the concrete value types appearing in constraint
// queries — strings, integers, floats, dates, text patterns, numeric ranges,
// coordinate points, and generic tuples — together with the human-written
// conversion functions the paper's mapping rules call (Section 4.1):
// name composition (LnFnToName), text-pattern rewriting (RewriteTextPat),
// date assembly (MonthYearToDate), department-code lookup, and unit
// conversions.
package values

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/qtree"
)

// String is a string constant.
type String string

// Kind implements qtree.Value.
func (String) Kind() string { return "string" }

// String implements qtree.Value; it renders with surrounding quotes.
func (s String) String() string { return strconv.Quote(string(s)) }

// Raw returns the unquoted string.
func (s String) Raw() string { return string(s) }

// Equal implements qtree.Value.
func (s String) Equal(v qtree.Value) bool {
	t, ok := v.(String)
	return ok && s == t
}

// Int is an integer constant.
type Int int64

// Kind implements qtree.Value.
func (Int) Kind() string { return "int" }

// String implements qtree.Value.
func (i Int) String() string { return strconv.FormatInt(int64(i), 10) }

// Equal implements qtree.Value. Integers and floats compare numerically
// across kinds (3 equals 3.0), matching the engine's comparison semantics.
func (i Int) Equal(v qtree.Value) bool {
	f, ok := Numeric(v)
	return ok && float64(i) == f
}

// Float is a floating-point constant.
type Float float64

// Kind implements qtree.Value.
func (Float) Kind() string { return "float" }

// String implements qtree.Value. Negative zero prints as "0": the two
// zeros are Equal, so they must render identically for print→reparse and
// canonical keys to agree with value equality.
func (f Float) String() string {
	v := float64(f)
	if v == 0 {
		v = 0
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Equal implements qtree.Value. Floats and integers compare numerically
// across kinds (3.0 equals 3), matching the engine's comparison semantics.
func (f Float) Equal(v qtree.Value) bool {
	g, ok := Numeric(v)
	return ok && float64(f) == g
}

// Numeric extracts a float64 from Int or Float values.
func Numeric(v qtree.Value) (float64, bool) {
	switch t := v.(type) {
	case Int:
		return float64(t), true
	case Float:
		return float64(t), true
	default:
		return 0, false
	}
}

// Date is a (possibly partial) calendar date: Year is required; Month and
// Day may be zero, meaning "unspecified" — a partial date denotes the whole
// period (the paper's [pdate during 97] vs [pdate during May/97]).
type Date struct {
	Year, Month, Day int
}

// Kind implements qtree.Value.
func (Date) Kind() string { return "date" }

var monthNames = [...]string{"", "Jan", "Feb", "Mar", "Apr", "May", "Jun",
	"Jul", "Aug", "Sep", "Oct", "Nov", "Dec"}

// String renders in the paper's style: 97, May/97, or 12/May/97.
func (d Date) String() string {
	yy := d.Year % 100
	switch {
	case d.Month == 0:
		return fmt.Sprintf("%02d", yy)
	case d.Day == 0:
		return fmt.Sprintf("%s/%02d", monthNames[d.Month], yy)
	default:
		return fmt.Sprintf("%d/%s/%02d", d.Day, monthNames[d.Month], yy)
	}
}

// Equal implements qtree.Value.
func (d Date) Equal(v qtree.Value) bool {
	t, ok := v.(Date)
	return ok && d == t
}

// Contains reports whether the period denoted by d contains the period
// denoted by e. A partial date denotes its whole year or month.
func (d Date) Contains(e Date) bool {
	if d.Year != e.Year {
		return false
	}
	if d.Month == 0 {
		return true
	}
	if d.Month != e.Month {
		return false
	}
	if d.Day == 0 {
		return true
	}
	return d.Day == e.Day
}

// ParseMonth resolves a month name (full or 3-letter, any case) or number.
func ParseMonth(s string) (int, bool) {
	if n, err := strconv.Atoi(s); err == nil && n >= 1 && n <= 12 {
		return n, true
	}
	p := strings.ToLower(s)
	if len(p) > 3 {
		p = p[:3]
	}
	for i := 1; i <= 12; i++ {
		if strings.ToLower(monthNames[i]) == p {
			return i, true
		}
	}
	return 0, false
}

// Range is a closed numeric interval lo:hi (Example 8's Xrange/Yrange).
type Range struct {
	Lo, Hi float64
}

// Kind implements qtree.Value.
func (Range) Kind() string { return "range" }

// String renders as (lo:hi).
func (r Range) String() string {
	return fmt.Sprintf("(%g:%g)", r.Lo, r.Hi)
}

// Equal implements qtree.Value.
func (r Range) Equal(v qtree.Value) bool {
	t, ok := v.(Range)
	return ok && r == t
}

// Contains reports lo ≤ x ≤ hi.
func (r Range) Contains(x float64) bool { return r.Lo <= x && x <= r.Hi }

// Point is a 2-D coordinate (Example 8's Cll/Cur corner values).
type Point struct {
	X, Y float64
}

// Kind implements qtree.Value.
func (Point) Kind() string { return "point" }

// String renders as (x,y).
func (p Point) String() string { return fmt.Sprintf("(%g,%g)", p.X, p.Y) }

// Equal implements qtree.Value.
func (p Point) Equal(v qtree.Value) bool {
	t, ok := v.(Point)
	return ok && p == t
}

// Tuple is a generic composite value: an ordered list of component values.
// The synthetic workload generator uses tuples as the target-side "combined"
// attribute values (mirroring how author combines ln and fn).
type Tuple []qtree.Value

// Kind implements qtree.Value.
func (Tuple) Kind() string { return "tuple" }

// String renders as <v1, v2, ...>.
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "<" + strings.Join(parts, ", ") + ">"
}

// Equal implements qtree.Value.
func (t Tuple) Equal(v qtree.Value) bool {
	u, ok := v.(Tuple)
	if !ok || len(t) != len(u) {
		return false
	}
	for i := range t {
		if !t[i].Equal(u[i]) {
			return false
		}
	}
	return true
}
