package values

// This file collects the human-written value-conversion functions that the
// paper's mapping rules call in their tails (Section 4.1): name composition,
// date assembly, department-code translation, and unit conversions. They are
// ordinary Go functions; the rule system exposes them through a function
// registry (internal/rules).

import (
	"fmt"
	"strings"
)

// LnFnToName combines a last and first name into the "Last, First" format
// required by Amazon's author attribute (rule R2 of Figure 3).
func LnFnToName(ln, fn string) string {
	if fn == "" {
		return ln
	}
	return ln + ", " + fn
}

// NameToLnFn splits an author name in "Last, First" (or bare "Last") format
// back into components — the inverse conversion used in view definitions
// (the paper's NameLnFn conceptual relation).
func NameToLnFn(name string) (ln, fn string) {
	if i := strings.Index(name, ","); i >= 0 {
		return strings.TrimSpace(name[:i]), strings.TrimSpace(name[i+1:])
	}
	return strings.TrimSpace(name), ""
}

// MonthYearToDate assembles a month/year pair into a partial Date — the
// conversion of rule R6 (pyear ∧ pmonth ↦ pdate during May/97).
func MonthYearToDate(month, year int) (Date, error) {
	if month < 1 || month > 12 {
		return Date{}, fmt.Errorf("values: month %d out of range", month)
	}
	if year < 0 {
		return Date{}, fmt.Errorf("values: negative year %d", year)
	}
	return Date{Year: year, Month: month}, nil
}

// YearToDate assembles a year-only partial Date — the conversion of rule R7
// (pyear alone ↦ pdate during 97).
func YearToDate(year int) (Date, error) {
	if year < 0 {
		return Date{}, fmt.Errorf("values: negative year %d", year)
	}
	return Date{Year: year}, nil
}

// DeptCodes is the department-name → native-code table of Example 3's
// source T2 (CS is code 230).
var DeptCodes = map[string]int{
	"cs":   230,
	"ee":   231,
	"me":   232,
	"math": 240,
	"phys": 241,
	"chem": 242,
	"bio":  250,
}

// DeptCode translates a mediator department name to the native code of
// source T2 (rule R7 of Figure 5). Unknown departments are an error: the
// rule then does not fire and the constraint is handled by the filter.
func DeptCode(dept string) (int, error) {
	if c, ok := DeptCodes[strings.ToLower(dept)]; ok {
		return c, nil
	}
	return 0, fmt.Errorf("values: unknown department %q", dept)
}

// InchesToCentimeters converts a length — the unit-conversion example from
// Section 1 (3 inches to 7.62 centimeters).
func InchesToCentimeters(in float64) float64 { return in * 2.54 }

// CentimetersToInches is the inverse of InchesToCentimeters.
func CentimetersToInches(cm float64) float64 { return cm / 2.54 }

// CategoryToSubject maps ACM-style category codes to bookstore subject
// headings — the conversion behind rule R9 of Figure 3 ([category = "D.3"]
// ↦ [subject = "programming"]).
var CategoryToSubject = map[string]string{
	"D.3": "programming",
	"D.4": "operating systems",
	"H.2": "databases",
	"H.3": "information retrieval",
	"I.2": "artificial intelligence",
	"C.2": "networking",
}

// SubjectForCategory performs the category → subject lookup.
func SubjectForCategory(cat string) (string, error) {
	if s, ok := CategoryToSubject[strings.ToUpper(strings.TrimSpace(cat))]; ok {
		return s, nil
	}
	return "", fmt.Errorf("values: unknown category %q", cat)
}

// CarTypeSplit splits a combined car-type value like "ford-taurus" into
// make and model — the many-to-many mapping example from Section 1
// ([car-type = "ford-taurus"] ∧ [year = 1994] ↦ [make = "ford"] ∧
// [model = "taurus-94"]).
func CarTypeSplit(carType string, year int) (make, model string, err error) {
	i := strings.Index(carType, "-")
	if i <= 0 || i == len(carType)-1 {
		return "", "", fmt.Errorf("values: car type %q not in make-model form", carType)
	}
	return carType[:i], fmt.Sprintf("%s-%02d", carType[i+1:], year%100), nil
}
