package values

import (
	"testing"
	"testing/quick"
)

func TestDateString(t *testing.T) {
	cases := []struct {
		d    Date
		want string
	}{
		{Date{Year: 1997}, "97"},
		{Date{Year: 1997, Month: 5}, "May/97"},
		{Date{Year: 1997, Month: 5, Day: 12}, "12/May/97"},
		{Date{Year: 2003, Month: 12}, "Dec/03"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestDateContains(t *testing.T) {
	full := Date{Year: 1997, Month: 5, Day: 12}
	if !(Date{Year: 1997}).Contains(full) {
		t.Error("year period should contain the date")
	}
	if !(Date{Year: 1997, Month: 5}).Contains(full) {
		t.Error("month period should contain the date")
	}
	if (Date{Year: 1997, Month: 6}).Contains(full) {
		t.Error("wrong month should not contain")
	}
	if (Date{Year: 1996}).Contains(full) {
		t.Error("wrong year should not contain")
	}
	if !full.Contains(full) {
		t.Error("a date contains itself")
	}
	if full.Contains(Date{Year: 1997, Month: 5, Day: 13}) {
		t.Error("a full date should not contain a different day")
	}
}

func TestQuickDateContainmentIsOrdered(t *testing.T) {
	// Containment is monotone in specificity: if the month period contains
	// a date, so does the year period.
	f := func(y, m, d uint8) bool {
		date := Date{Year: 1990 + int(y%20), Month: 1 + int(m%12), Day: 1 + int(d%28)}
		monthPeriod := Date{Year: date.Year, Month: date.Month}
		yearPeriod := Date{Year: date.Year}
		return monthPeriod.Contains(date) && yearPeriod.Contains(date) &&
			yearPeriod.Contains(monthPeriod)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseMonth(t *testing.T) {
	for _, c := range []struct {
		in   string
		want int
		ok   bool
	}{
		{"May", 5, true}, {"may", 5, true}, {"MAY", 5, true},
		{"December", 12, true}, {"5", 5, true}, {"13", 0, false},
		{"0", 0, false}, {"xyz", 0, false},
	} {
		got, ok := ParseMonth(c.in)
		if ok != c.ok || got != c.want {
			t.Errorf("ParseMonth(%q) = %d,%v want %d,%v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestNameConversions(t *testing.T) {
	if got := LnFnToName("Clancy", "Tom"); got != "Clancy, Tom" {
		t.Errorf("LnFnToName = %q", got)
	}
	if got := LnFnToName("Clancy", ""); got != "Clancy" {
		t.Errorf("LnFnToName no fn = %q", got)
	}
	ln, fn := NameToLnFn("Clancy, Tom")
	if ln != "Clancy" || fn != "Tom" {
		t.Errorf("NameToLnFn = %q,%q", ln, fn)
	}
	ln, fn = NameToLnFn("Clancy")
	if ln != "Clancy" || fn != "" {
		t.Errorf("NameToLnFn bare = %q,%q", ln, fn)
	}
}

func TestQuickNameRoundTrip(t *testing.T) {
	names := [][2]string{{"Clancy", "Tom"}, {"Smith", "Joe Tom"}, {"Garcia", ""}, {"Chang", "Kevin"}}
	f := func(i uint) bool {
		p := names[i%uint(len(names))]
		ln, fn := NameToLnFn(LnFnToName(p[0], p[1]))
		return ln == p[0] && fn == p[1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPatternParseAndString(t *testing.T) {
	p, err := ParsePattern("java(near)jdk")
	if err != nil || p.Op != PatNear || len(p.Subs) != 2 {
		t.Fatalf("ParsePattern: %v %+v", err, p)
	}
	if got := p.String(); got != "java(near)jdk" {
		t.Errorf("String = %q", got)
	}
	p, err = ParsePattern("data(^)mining")
	if err != nil || p.Op != PatAnd {
		t.Fatalf("ParsePattern and: %v", err)
	}
	p, err = ParsePattern("www")
	if err != nil || p.Op != PatWord {
		t.Fatalf("ParsePattern word: %v", err)
	}
	if _, err := ParsePattern(""); err == nil {
		t.Error("empty pattern accepted")
	}
	if _, err := ParsePattern("a(near)"); err == nil {
		t.Error("trailing connective accepted")
	}
}

func TestPatternMatch(t *testing.T) {
	near := PatternNear(Word("data"), Word("mining"))
	if !near.Match("a study of data mining techniques") {
		t.Error("adjacent words should match near")
	}
	if !near.Match("data on coal mining") {
		t.Error("words 2 apart should match near (window 5)")
	}
	if near.Match("data is great. one two three four five six seven mining") {
		t.Error("words 9 apart should not match near")
	}
	if near.Match("data everywhere") {
		t.Error("missing word should not match")
	}

	and := PatternAnd(Word("data"), Word("mining"))
	if !and.Match("mining first, data later, far far away apart") {
		t.Error("co-occurrence should match (^) regardless of distance")
	}

	or := PatternOr(Word("cat"), Word("dog"))
	if !or.Match("a dog barks") || or.Match("a bird sings") {
		t.Error("or-pattern misbehaves")
	}
}

func TestQuickNearImpliesAnd(t *testing.T) {
	// Relaxation soundness: whenever (near) matches, the (∧) rewriting
	// matches too — the basis of rule R4n / Example 3.
	texts := []string{
		"data mining systems",
		"data on coal mining",
		"mining data",
		"data one two three four five mining",
		"nothing relevant here",
		"data without the other word",
	}
	f := func(i uint) bool {
		text := texts[i%uint(len(texts))]
		near := PatternNear(Word("data"), Word("mining"))
		relaxed := near.RewriteNoNear()
		return !near.Match(text) || relaxed.Match(text)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRewriteWordsOnly(t *testing.T) {
	p := PatternNear(Word("a"), PatternAnd(Word("b"), Word("c")))
	ws := p.RewriteWordsOnly()
	if len(ws) != 3 {
		t.Fatalf("got %d words, want 3", len(ws))
	}
	// OR patterns yield no required words.
	if got := PatternOr(Word("a"), Word("b")).RewriteWordsOnly(); got != nil {
		t.Errorf("or-pattern words = %v, want nil", got)
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Hello, World! data-mining 42")
	want := []string{"hello", "world", "data", "mining", "42"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestDeptCode(t *testing.T) {
	if c, err := DeptCode("cs"); err != nil || c != 230 {
		t.Errorf("DeptCode(cs) = %d, %v", c, err)
	}
	if c, err := DeptCode("CS"); err != nil || c != 230 {
		t.Errorf("DeptCode(CS) = %d, %v (case-insensitive)", c, err)
	}
	if _, err := DeptCode("underwater-basket-weaving"); err == nil {
		t.Error("unknown department accepted")
	}
}

func TestUnitConversion(t *testing.T) {
	if got := InchesToCentimeters(3); got != 7.62 {
		t.Errorf("3in = %gcm, want 7.62 (Section 1's example)", got)
	}
	if got := CentimetersToInches(7.62); got != 3 {
		t.Errorf("7.62cm = %gin, want 3", got)
	}
}

func TestCarTypeSplit(t *testing.T) {
	mk, md, err := CarTypeSplit("ford-taurus", 1994)
	if err != nil || mk != "ford" || md != "taurus-94" {
		t.Errorf("CarTypeSplit = %q,%q,%v (Section 1's example)", mk, md, err)
	}
	if _, _, err := CarTypeSplit("nodash", 1994); err == nil {
		t.Error("malformed car type accepted")
	}
}

func TestMonthYearToDate(t *testing.T) {
	d, err := MonthYearToDate(5, 1997)
	if err != nil || d.String() != "May/97" {
		t.Errorf("MonthYearToDate = %s, %v", d, err)
	}
	if _, err := MonthYearToDate(13, 1997); err == nil {
		t.Error("month 13 accepted")
	}
	if _, err := YearToDate(-5); err == nil {
		t.Error("negative year accepted")
	}
}

func TestValueEquality(t *testing.T) {
	if !String("a").Equal(String("a")) || String("a").Equal(String("b")) {
		t.Error("String.Equal misbehaves")
	}
	if String("1").Equal(Int(1)) {
		t.Error("cross-kind equality should be false")
	}
	if !(Range{1, 2}).Equal(Range{1, 2}) || (Range{1, 2}).Equal(Range{1, 3}) {
		t.Error("Range.Equal misbehaves")
	}
	if !(Tuple{String("a"), Int(1)}).Equal(Tuple{String("a"), Int(1)}) {
		t.Error("Tuple.Equal misbehaves")
	}
	if (Tuple{String("a")}).Equal(Tuple{String("a"), Int(1)}) {
		t.Error("Tuple length mismatch should be unequal")
	}
}

func TestSubjectForCategory(t *testing.T) {
	s, err := SubjectForCategory("D.3")
	if err != nil || s != "programming" {
		t.Errorf("SubjectForCategory(D.3) = %q, %v", s, err)
	}
	if s, err := SubjectForCategory(" d.3 "); err != nil || s != "programming" {
		t.Errorf("SubjectForCategory normalization: %q, %v", s, err)
	}
	if _, err := SubjectForCategory("Z.9"); err == nil {
		t.Error("unknown category accepted")
	}
}
