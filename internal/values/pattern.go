package values

import (
	"fmt"
	"strings"

	"repro/internal/qtree"
)

// PatOp is a text-pattern connective.
type PatOp int

const (
	// PatWord is a single keyword.
	PatWord PatOp = iota
	// PatAnd requires all sub-patterns to occur.
	PatAnd
	// PatOr requires some sub-pattern to occur.
	PatOr
	// PatNear requires all sub-patterns to occur within NearWindow words of
	// each other (the paper's proximity operator, e.g. data(near)mining).
	PatNear
)

// NearWindow is the proximity window, in words, of the (near) connective.
const NearWindow = 5

// Pattern is an IR text-pattern value, e.g. java(near)jdk or
// data(∧)mining. It appears as the constant of contains constraints.
type Pattern struct {
	Op   PatOp
	Word string     // for PatWord
	Subs []*Pattern // for connectives
}

// Word returns a single-keyword pattern.
func Word(w string) *Pattern { return &Pattern{Op: PatWord, Word: w} }

// PatternAnd returns the conjunction of sub-patterns.
func PatternAnd(subs ...*Pattern) *Pattern { return &Pattern{Op: PatAnd, Subs: subs} }

// PatternOr returns the disjunction of sub-patterns.
func PatternOr(subs ...*Pattern) *Pattern { return &Pattern{Op: PatOr, Subs: subs} }

// PatternNear returns the proximity combination of sub-patterns.
func PatternNear(subs ...*Pattern) *Pattern { return &Pattern{Op: PatNear, Subs: subs} }

// Kind implements qtree.Value.
func (*Pattern) Kind() string { return "pattern" }

// String renders in the paper's inline syntax: w1(near)w2, w1(^)w2, w1(v)w2.
func (p *Pattern) String() string {
	switch p.Op {
	case PatWord:
		return p.Word
	case PatAnd, PatOr, PatNear:
		conn := map[PatOp]string{PatAnd: "(^)", PatOr: "(v)", PatNear: "(near)"}[p.Op]
		parts := make([]string, len(p.Subs))
		for i, s := range p.Subs {
			parts[i] = s.String()
		}
		return strings.Join(parts, conn)
	default:
		return fmt.Sprintf("<pattern op %d>", int(p.Op))
	}
}

// Equal implements qtree.Value.
func (p *Pattern) Equal(v qtree.Value) bool {
	q, ok := v.(*Pattern)
	if !ok || p.Op != q.Op || p.Word != q.Word || len(p.Subs) != len(q.Subs) {
		return false
	}
	for i := range p.Subs {
		if !p.Subs[i].Equal(q.Subs[i]) {
			return false
		}
	}
	return true
}

// Words returns every keyword occurring in the pattern.
func (p *Pattern) Words() []string {
	var out []string
	var walk func(*Pattern)
	walk = func(q *Pattern) {
		if q.Op == PatWord {
			out = append(out, q.Word)
			return
		}
		for _, s := range q.Subs {
			walk(s)
		}
	}
	walk(p)
	return out
}

// HasNear reports whether the pattern uses the proximity connective.
func (p *Pattern) HasNear() bool {
	if p.Op == PatNear {
		return true
	}
	for _, s := range p.Subs {
		if s.HasNear() {
			return true
		}
	}
	return false
}

// Match evaluates the pattern against a text, tokenized on non-letter/digit
// boundaries and compared case-insensitively.
func (p *Pattern) Match(text string) bool {
	toks := Tokenize(text)
	pos := make(map[string][]int)
	for i, t := range toks {
		pos[t] = append(pos[t], i)
	}
	return p.match(pos)
}

func (p *Pattern) match(pos map[string][]int) bool {
	switch p.Op {
	case PatWord:
		return len(pos[strings.ToLower(p.Word)]) > 0
	case PatAnd:
		for _, s := range p.Subs {
			if !s.match(pos) {
				return false
			}
		}
		return true
	case PatOr:
		for _, s := range p.Subs {
			if s.match(pos) {
				return true
			}
		}
		return false
	case PatNear:
		// All sub-patterns must match, and for word leaves there must be an
		// occurrence assignment within the proximity window. For composite
		// sub-patterns we approximate by requiring each to match (the paper
		// only nears words).
		var spans [][]int
		for _, s := range p.Subs {
			if !s.match(pos) {
				return false
			}
			if s.Op == PatWord {
				spans = append(spans, pos[strings.ToLower(s.Word)])
			}
		}
		return withinWindow(spans, NearWindow)
	default:
		return false
	}
}

// withinWindow reports whether one position can be chosen from every list
// such that max−min ≤ window. The lists are small; exhaustive search with
// pruning is adequate.
func withinWindow(lists [][]int, window int) bool {
	if len(lists) <= 1 {
		return true
	}
	var rec func(i, lo, hi int) bool
	rec = func(i, lo, hi int) bool {
		if hi-lo > window {
			return false
		}
		if i == len(lists) {
			return true
		}
		for _, p := range lists[i] {
			nlo, nhi := lo, hi
			if p < nlo {
				nlo = p
			}
			if p > nhi {
				nhi = p
			}
			if rec(i+1, nlo, nhi) {
				return true
			}
		}
		return false
	}
	for _, p := range lists[0] {
		if rec(1, p, p) {
			return true
		}
	}
	return false
}

// Tokenize splits text into lowercase word tokens.
func Tokenize(text string) []string {
	f := func(r rune) bool {
		return !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9')
	}
	raw := strings.FieldsFunc(text, f)
	out := make([]string, len(raw))
	for i, t := range raw {
		out[i] = strings.ToLower(t)
	}
	return out
}

// RewriteNoNear rewrites the pattern for targets without the proximity
// operator by relaxing every (near) into (∧) — the semantic relaxation of
// Example 3 and rule R4 of Figure 3. The result subsumes the original:
// keyword co-occurrence is implied by proximity.
func (p *Pattern) RewriteNoNear() *Pattern {
	if p.Op == PatWord {
		return p
	}
	subs := make([]*Pattern, len(p.Subs))
	for i, s := range p.Subs {
		subs[i] = s.RewriteNoNear()
	}
	op := p.Op
	if op == PatNear {
		op = PatAnd
	}
	return &Pattern{Op: op, Subs: subs}
}

// RewriteWordsOnly flattens the pattern into a conjunction of its keywords —
// the weakest Boolean relaxation, for targets that support only single-word
// containment. OR sub-patterns are dropped entirely (any disjunction is
// subsumed by True; keeping one branch would not subsume).
func (p *Pattern) RewriteWordsOnly() []*Pattern {
	switch p.Op {
	case PatWord:
		return []*Pattern{p}
	case PatAnd, PatNear:
		var out []*Pattern
		for _, s := range p.Subs {
			out = append(out, s.RewriteWordsOnly()...)
		}
		return out
	default: // PatOr: cannot relax to a conjunction of required words
		return nil
	}
}

// ParsePattern parses the inline pattern syntax used by the paper:
// words joined by (near), (^) or (v), with no precedence mixing — a single
// connective per pattern, e.g. "java(near)jdk", "data(^)mining", "www".
func ParsePattern(s string) (*Pattern, error) {
	for _, conn := range []struct {
		tok string
		op  PatOp
	}{{"(near)", PatNear}, {"(^)", PatAnd}, {"(v)", PatOr}} {
		if strings.Contains(s, conn.tok) {
			parts := strings.Split(s, conn.tok)
			subs := make([]*Pattern, 0, len(parts))
			for _, w := range parts {
				w = strings.TrimSpace(w)
				if w == "" {
					return nil, fmt.Errorf("values: empty word in pattern %q", s)
				}
				if strings.ContainsAny(w, "()") {
					return nil, fmt.Errorf("values: mixed connectives in pattern %q", s)
				}
				subs = append(subs, Word(w))
			}
			return &Pattern{Op: conn.op, Subs: subs}, nil
		}
	}
	w := strings.TrimSpace(s)
	if w == "" {
		return nil, fmt.Errorf("values: empty pattern")
	}
	return Word(w), nil
}
