package values

import (
	"testing"

	"repro/internal/qtree"
)

// TestKindsAndStrings pins every value type's Kind tag and rendering.
func TestKindsAndStrings(t *testing.T) {
	cases := []struct {
		v    qtree.Value
		kind string
		str  string
	}{
		{String("x"), "string", `"x"`},
		{Int(42), "int", "42"},
		{Float(2.5), "float", "2.5"},
		{Float(3), "float", "3"},
		{Date{Year: 1997, Month: 5}, "date", "May/97"},
		{Range{10, 30}, "range", "(10:30)"},
		{Point{10, 20}, "point", "(10,20)"},
		{Word("www"), "pattern", "www"},
		{PatternAnd(Word("a"), Word("b")), "pattern", "a(^)b"},
		{PatternOr(Word("a"), Word("b")), "pattern", "a(v)b"},
		{PatternNear(Word("a"), Word("b")), "pattern", "a(near)b"},
		{Tuple{String("a"), Int(1)}, "tuple", `<"a", 1>`},
	}
	for _, c := range cases {
		if got := c.v.Kind(); got != c.kind {
			t.Errorf("%v Kind = %q, want %q", c.v, got, c.kind)
		}
		if got := c.v.String(); got != c.str {
			t.Errorf("Kind %s String = %q, want %q", c.kind, got, c.str)
		}
	}
}

func TestStringRaw(t *testing.T) {
	if String("abc").Raw() != "abc" {
		t.Error("Raw misbehaves")
	}
}

func TestNumericCrossKind(t *testing.T) {
	if !Int(3).Equal(Float(3)) || !Float(3).Equal(Int(3)) {
		t.Error("3 and 3.0 should be equal across kinds")
	}
	if Int(3).Equal(Float(3.5)) {
		t.Error("3 != 3.5")
	}
	if Int(3).Equal(String("3")) {
		t.Error("numbers should not equal strings")
	}
	if _, ok := Numeric(String("3")); ok {
		t.Error("Numeric should reject strings")
	}
	if f, ok := Numeric(Float(2.5)); !ok || f != 2.5 {
		t.Error("Numeric(Float) misbehaves")
	}
}

func TestRangeAndPoint(t *testing.T) {
	r := Range{10, 30}
	if !r.Contains(10) || !r.Contains(30) || !r.Contains(20) {
		t.Error("Range.Contains should be inclusive")
	}
	if r.Contains(9.999) || r.Contains(30.001) {
		t.Error("Range.Contains out of bounds")
	}
	if !r.Equal(Range{10, 30}) || r.Equal(Range{10, 31}) || r.Equal(Int(1)) {
		t.Error("Range.Equal misbehaves")
	}
	p := Point{1, 2}
	if !p.Equal(Point{1, 2}) || p.Equal(Point{2, 1}) || p.Equal(Int(1)) {
		t.Error("Point.Equal misbehaves")
	}
}

func TestPatternEqualAndWords(t *testing.T) {
	p := PatternNear(Word("data"), Word("mining"))
	if !p.Equal(PatternNear(Word("data"), Word("mining"))) {
		t.Error("identical patterns unequal")
	}
	if p.Equal(PatternAnd(Word("data"), Word("mining"))) {
		t.Error("different connectives equal")
	}
	if p.Equal(Word("data")) || p.Equal(String("data")) {
		t.Error("pattern equality across shapes/kinds")
	}
	ws := p.Words()
	if len(ws) != 2 || ws[0] != "data" || ws[1] != "mining" {
		t.Errorf("Words = %v", ws)
	}
	if !p.HasNear() || PatternAnd(Word("a"), Word("b")).HasNear() {
		t.Error("HasNear misbehaves")
	}
	nested := PatternAnd(Word("x"), PatternNear(Word("a"), Word("b")))
	if !nested.HasNear() {
		t.Error("nested near not detected")
	}
}

func TestRewriteNoNearDeep(t *testing.T) {
	p := PatternOr(PatternNear(Word("a"), Word("b")), Word("c"))
	r := p.RewriteNoNear()
	if r.HasNear() {
		t.Error("RewriteNoNear left a near connective")
	}
	if r.Op != PatOr || r.Subs[0].Op != PatAnd {
		t.Errorf("rewritten structure wrong: %s", r)
	}
	// Word passthrough.
	if Word("x").RewriteNoNear().Word != "x" {
		t.Error("word rewriting misbehaves")
	}
}

func TestYearToDateValid(t *testing.T) {
	d, err := YearToDate(1997)
	if err != nil || d.Year != 1997 || d.Month != 0 {
		t.Errorf("YearToDate = %v, %v", d, err)
	}
}

func TestTupleString(t *testing.T) {
	tup := Tuple{String("v1"), String("v2")}
	if got := tup.String(); got != `<"v1", "v2">` {
		t.Errorf("Tuple String = %q", got)
	}
}
