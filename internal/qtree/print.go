package qtree

import (
	"fmt"
	"strings"
)

// TreeString renders the query as an indented tree, one node per line —
// the presentation style of the paper's Figure 7.
func (n *Node) TreeString() string {
	var b strings.Builder
	var rec func(n *Node, prefix, connector, childPrefix string)
	rec = func(n *Node, prefix, connector, childPrefix string) {
		fmt.Fprintf(&b, "%s%s%s\n", prefix, connector, nodeLabel(n))
		for i, k := range n.Kids {
			if i == len(n.Kids)-1 {
				rec(k, childPrefix, "└─ ", childPrefix+"   ")
			} else {
				rec(k, childPrefix, "├─ ", childPrefix+"│  ")
			}
		}
	}
	rec(n, "", "", "")
	return b.String()
}

func nodeLabel(n *Node) string {
	switch n.Kind {
	case KindTrue:
		return "TRUE"
	case KindLeaf:
		return n.C.String()
	case KindAnd:
		return "AND"
	case KindOr:
		return "OR"
	default:
		return "<invalid>"
	}
}
