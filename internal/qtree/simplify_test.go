package qtree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestImpliesBasics(t *testing.T) {
	a, b := leaf("a", "1"), leaf("b", "1")
	ab := And(a, b).Normalize()
	aOrB := Or(a, b).Normalize()

	cases := []struct {
		y, x *Node
		want bool
	}{
		{a, a, true},
		{a, b, false},
		{ab, a, true},                    // a∧b ⇒ a
		{a, ab, false},                   // a ⇏ a∧b
		{a, aOrB, true},                  // a ⇒ a∨b
		{aOrB, a, false},                 // a∨b ⇏ a
		{ab, aOrB, true},                 // a∧b ⇒ a∨b
		{aOrB, ab, false},                //
		{a, True(), true},                // anything ⇒ TRUE
		{True(), a, false},               // TRUE ⇏ a
		{aOrB, aOrB, true},               // reflexive on disjunctions
		{Or(a, ab).Normalize(), a, true}, // (a ∨ a∧b) ⇒ a
	}
	for _, c := range cases {
		if got := Implies(c.y, c.x); got != c.want {
			t.Errorf("Implies(%s, %s) = %v, want %v", c.y, c.x, got, c.want)
		}
	}
}

func TestSimplifyAbsorption(t *testing.T) {
	a, b, c := leaf("a", "1"), leaf("b", "1"), leaf("c", "1")

	// a ∨ (a ∧ b) = a
	got := Simplify(Or(a, And(a, b)))
	if !got.EqualCanonical(a) {
		t.Errorf("a ∨ (a∧b) simplified to %s, want a", got)
	}
	// a ∧ (a ∨ b) = a
	got = Simplify(And(a, Or(a, b)))
	if !got.EqualCanonical(a) {
		t.Errorf("a ∧ (a∨b) simplified to %s, want a", got)
	}
	// (a∧b) ∨ (a∧b∧c) = a∧b
	got = Simplify(Or(And(a, b), And(a, b, c)))
	if !got.EqualCanonical(And(a, b).Normalize()) {
		t.Errorf("(a∧b) ∨ (a∧b∧c) simplified to %s", got)
	}
	// No false simplification: a ∨ (b ∧ c) unchanged.
	q := Or(a, And(b, c)).Normalize()
	if got := Simplify(q); !got.EqualCanonical(q) {
		t.Errorf("a ∨ (b∧c) wrongly simplified to %s", got)
	}
}

func TestSimplifyAnomalyShape(t *testing.T) {
	// The Section 7.1.2 anomaly output: tz ∨ (tyz ∧ tz) collapses to tz.
	tz, tyz := leaf("tz", "1"), leaf("tyz", "1")
	got := Simplify(Or(tz, And(tyz, tz)))
	if !got.EqualCanonical(tz) {
		t.Errorf("tz ∨ (tyz∧tz) simplified to %s, want tz", got)
	}
}

// TestQuickSimplifyEquivalent: Simplify is a logical no-op and never grows
// the tree.
func TestQuickSimplifyEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := genTree(r, 4)
		s := Simplify(q)
		if s.Size() > q.Normalize().Size() {
			return false
		}
		return equivUnderRandomAssignments(rng, q, s, 50)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickImpliesSound: whenever Implies reports true, every satisfying
// assignment of y satisfies x.
func TestQuickImpliesSound(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		y, x := genTree(r, 3), genTree(r, 3)
		if !Implies(y, x) {
			return true // inconclusive is fine
		}
		keys := map[string]bool{}
		for _, c := range y.Constraints() {
			keys[c.Key()] = true
		}
		for _, c := range x.Constraints() {
			keys[c.Key()] = true
		}
		for i := 0; i < 60; i++ {
			asg := map[string]bool{}
			for k := range keys {
				asg[k] = rng.Intn(2) == 0
			}
			if evalBool(y, asg) && !evalBool(x, asg) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
