// Package qtree defines the constraint-query representation used throughout
// the library: attributes, typed values, constraints, and Boolean query trees
// with alternating ∧/∨ interior nodes (the paper's query-tree model,
// Section 6). It also provides the structural operations the mapping
// algorithms rely on: normalization, Disjunctivize, full DNF conversion, and
// compactness metrics.
package qtree

import (
	"fmt"
	"strings"
)

// Attr identifies an attribute occurrence in a query. An attribute may be
// qualified by a mediator view (with an optional instance index to
// distinguish multiple instances of the same view, as in fac[1].ln), and —
// after mapping — by the source relation the view expands to (written
// fac.aubib.name in the paper).
type Attr struct {
	// View is the mediator view name, e.g. "fac". Empty when the query is
	// over a single implicit view (as in the paper's Section 4.1 examples).
	View string
	// Index distinguishes instances of the same view, e.g. 1 and 2 in
	// [fac[1].ln = fac[2].ln]. Zero means "unspecified": it matches any
	// index during rule matching and prints without brackets.
	Index int
	// Rel is the source relation the attribute belongs to after mapping,
	// e.g. "aubib" in fac.aubib.name. Empty for mediator-side attributes.
	Rel string
	// Name is the attribute name proper, e.g. "ln".
	Name string
}

// A returns an unqualified attribute with the given name. It is the common
// constructor for single-view scenarios.
func A(name string) Attr { return Attr{Name: name} }

// VA returns a view-qualified attribute, e.g. VA("fac", "ln") for fac.ln.
func VA(view, name string) Attr { return Attr{View: view, Name: name} }

// VIA returns a view-qualified attribute with an explicit instance index,
// e.g. VIA("fac", 1, "ln") for fac[1].ln.
func VIA(view string, index int, name string) Attr {
	return Attr{View: view, Index: index, Name: name}
}

// RA returns a relation-qualified attribute in a source vocabulary,
// e.g. RA("fac", "aubib", "name") for fac.aubib.name.
func RA(view, rel, name string) Attr { return Attr{View: view, Rel: rel, Name: name} }

// String renders the attribute in the paper's notation:
// name, view.name, view[i].name, or view.rel.name.
func (a Attr) String() string {
	var b strings.Builder
	if a.View != "" {
		b.WriteString(a.View)
		if a.Index != 0 {
			fmt.Fprintf(&b, "[%d]", a.Index)
		}
		b.WriteByte('.')
	}
	if a.Rel != "" {
		b.WriteString(a.Rel)
		b.WriteByte('.')
	}
	b.WriteString(a.Name)
	return b.String()
}

// Key returns a canonical identity string for the attribute. Two attributes
// with the same Key refer to the same attribute occurrence class.
func (a Attr) Key() string { return a.String() }

// Equal reports whether two attributes are identical in all components.
func (a Attr) Equal(b Attr) bool { return a == b }

// SameColumn reports whether two attributes name the same column ignoring
// the instance index. It is used when normalizing join constraints.
func (a Attr) SameColumn(b Attr) bool {
	return a.View == b.View && a.Rel == b.Rel && a.Name == b.Name
}

// WithRel returns a copy of the attribute qualified by source relation rel.
func (a Attr) WithRel(rel string) Attr {
	a.Rel = rel
	return a
}

// IsZero reports whether the attribute is the zero Attr.
func (a Attr) IsZero() bool { return a == Attr{} }
