package qtree

import "sort"

// Canonical returns the canonical representative of the query's equivalence
// class under ∧/∨ commutativity, associativity, and idempotence: the tree is
// normalized (nested same-kind operators collapsed, True identities applied,
// duplicate siblings eliminated) and every interior node's children are
// sorted by canonical key. Permuted-but-equivalent queries canonicalize to
// structurally identical trees, so Canonical().String() — and the cheaper
// CanonicalKey() — are stable cache keys for translation memoization.
//
// The result shares no interior nodes with the receiver; leaves' constraints
// may be shared (they are treated as immutable).
func (n *Node) Canonical() *Node {
	return n.Normalize().sortChildren()
}

// sortChildren recursively orders the children of interior nodes by their
// canonical keys. The receiver is assumed normalized (so siblings are
// already deduplicated); leaves and True pass through unchanged.
func (n *Node) sortChildren() *Node {
	if len(n.Kids) == 0 {
		return n
	}
	kids := make([]*Node, len(n.Kids))
	keys := make([]string, len(n.Kids))
	for i, k := range n.Kids {
		kids[i] = k.sortChildren()
		keys[i] = kids[i].canonKey()
	}
	sort.Sort(&byKey{kids: kids, keys: keys})
	return &Node{Kind: n.Kind, Kids: kids}
}

// byKey sorts kids by their precomputed canonical keys in lockstep.
type byKey struct {
	kids []*Node
	keys []string
}

func (s *byKey) Len() int           { return len(s.kids) }
func (s *byKey) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *byKey) Swap(i, j int) {
	s.kids[i], s.kids[j] = s.kids[j], s.kids[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}
