package qtree

import (
	"math/rand"
	"testing"
)

// permute returns a deep copy of q with every interior node's children
// randomly reordered — an equivalent query under ∧/∨ commutativity.
func permute(rng *rand.Rand, q *Node) *Node {
	cp := q.Clone()
	var shuffle func(n *Node)
	shuffle = func(n *Node) {
		rng.Shuffle(len(n.Kids), func(i, j int) { n.Kids[i], n.Kids[j] = n.Kids[j], n.Kids[i] })
		for _, k := range n.Kids {
			shuffle(k)
		}
	}
	shuffle(cp)
	return cp
}

func TestCanonicalDeterminism(t *testing.T) {
	q := And(
		Or(leaf("b", "1"), leaf("a", "1"), And(leaf("c", "1"), leaf("d", "2"))),
		leaf("a", "2"),
		Or(leaf("e", "1"), leaf("f", "1")),
	)
	want := q.Canonical().String()
	wantKey := q.CanonicalKey()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		p := permute(rng, q)
		if got := p.Canonical().String(); got != want {
			t.Fatalf("permutation %d: Canonical() = %q, want %q\npermuted = %s", i, got, want, p)
		}
		if got := p.CanonicalKey(); got != wantKey {
			t.Fatalf("permutation %d: CanonicalKey = %q, want %q", i, got, wantKey)
		}
	}
}

func TestCanonicalSortsAndDeduplicates(t *testing.T) {
	// Duplicate siblings collapse: (a ∧ a) ≡ a.
	dup := And(leaf("a", "1"), leaf("a", "1")).Canonical()
	if dup.Kind != KindLeaf {
		t.Errorf("(a and a).Canonical() = %s, want single leaf", dup)
	}
	// Nested same-kind operators collapse and the children come out sorted.
	q := And(leaf("b", "1"), And(leaf("a", "1"), leaf("c", "1"))).Canonical()
	if q.Kind != KindAnd || len(q.Kids) != 3 {
		t.Fatalf("Canonical() = %s, want flat 3-way conjunction", q)
	}
	for i := 1; i < len(q.Kids); i++ {
		if q.Kids[i-1].canonKey() >= q.Kids[i].canonKey() {
			t.Errorf("children not strictly sorted: %s", q)
		}
	}
}

func TestCanonicalDistinguishesInequivalent(t *testing.T) {
	cases := [][2]*Node{
		{leaf("a", "1"), leaf("a", "2")},
		{leaf("a", "1"), leaf("b", "1")},
		{And(leaf("a", "1"), leaf("b", "1")), Or(leaf("a", "1"), leaf("b", "1"))},
		// (a ∧ b) ∨ c vs a ∧ (b ∨ c): same leaves, different structure.
		{
			Or(And(leaf("a", "1"), leaf("b", "1")), leaf("c", "1")),
			And(leaf("a", "1"), Or(leaf("b", "1"), leaf("c", "1"))),
		},
	}
	for i, c := range cases {
		if c[0].CanonicalKey() == c[1].CanonicalKey() {
			t.Errorf("case %d: inequivalent queries share key %q: %s vs %s",
				i, c[0].CanonicalKey(), c[0], c[1])
		}
	}
}

func TestCanonicalDoesNotMutateReceiver(t *testing.T) {
	q := And(leaf("b", "1"), leaf("a", "1"))
	before := q.String()
	q.Canonical()
	if q.String() != before {
		t.Errorf("Canonical mutated receiver: %s -> %s", before, q)
	}
}

func TestCanonicalKeyMatchesCanonicalTree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := And(
		Or(leaf("x", "1"), leaf("y", "2")),
		Or(leaf("z", "1"), And(leaf("w", "1"), leaf("v", "1"))),
		leaf("u", "3"),
	)
	for i := 0; i < 20; i++ {
		p := permute(rng, base)
		if p.CanonicalKey() != p.Canonical().canonKey() {
			t.Fatalf("CanonicalKey and Canonical().canonKey diverge for %s", p)
		}
	}
}
