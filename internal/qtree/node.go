package qtree

import (
	"fmt"
	"sort"
	"strings"
)

// NodeKind discriminates query-tree nodes.
type NodeKind int

const (
	// KindLeaf is a single constraint.
	KindLeaf NodeKind = iota
	// KindAnd is an n-ary conjunction.
	KindAnd
	// KindOr is an n-ary disjunction.
	KindOr
	// KindTrue is the trivial query True — "no constraint". It arises when
	// a constraint has no mapping in the target context (Section 2).
	KindTrue
)

func (k NodeKind) String() string {
	switch k {
	case KindLeaf:
		return "leaf"
	case KindAnd:
		return "and"
	case KindOr:
		return "or"
	case KindTrue:
		return "true"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node is a query-tree node. Interior nodes alternate between ∧ and ∨ after
// Normalize; leaves carry a single constraint. The zero value is not a valid
// node: use the constructors.
type Node struct {
	Kind NodeKind
	Kids []*Node     // children of And/Or nodes
	C    *Constraint // constraint of a Leaf node
}

// Leaf returns a leaf node wrapping constraint c.
func Leaf(c *Constraint) *Node { return &Node{Kind: KindLeaf, C: c} }

// True returns the trivial query True.
func True() *Node { return &Node{Kind: KindTrue} }

// And returns the conjunction of the given subqueries (un-normalized).
func And(kids ...*Node) *Node { return &Node{Kind: KindAnd, Kids: kids} }

// Or returns the disjunction of the given subqueries (un-normalized).
func Or(kids ...*Node) *Node { return &Node{Kind: KindOr, Kids: kids} }

// AndOf normalizes on construction: collapses nested conjunctions, drops
// True conjuncts, and unwraps single-child conjunctions.
func AndOf(kids ...*Node) *Node { return And(kids...).Normalize() }

// OrOf normalizes on construction: collapses nested disjunctions, absorbs
// True (True ∨ X = True), and unwraps single-child disjunctions.
func OrOf(kids ...*Node) *Node { return Or(kids...).Normalize() }

// IsTrue reports whether the node is the trivial query.
func (n *Node) IsTrue() bool { return n != nil && n.Kind == KindTrue }

// Clone returns a deep copy of the tree. Constraints are cloned; Values are
// shared (immutable).
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	cp := &Node{Kind: n.Kind}
	if n.C != nil {
		cp.C = n.C.Clone()
	}
	if n.Kids != nil {
		cp.Kids = make([]*Node, len(n.Kids))
		for i, k := range n.Kids {
			cp.Kids[i] = k.Clone()
		}
	}
	return cp
}

// Normalize returns an equivalent tree in canonical form:
//
//   - nested operators of the same kind are collapsed (∧{a, ∧{b,c}} = ∧{a,b,c}),
//     so ∧ and ∨ alternate along every path (Section 6);
//   - True is the identity of ∧ and absorbs ∨;
//   - single-child interior nodes are unwrapped;
//   - structurally duplicate children are deduplicated (x∧x = x, x∨x = x).
//
// The result shares no structure with the receiver's interior nodes but may
// share leaves' constraints.
func (n *Node) Normalize() *Node {
	switch n.Kind {
	case KindLeaf, KindTrue:
		return n
	case KindAnd, KindOr:
		var flat []*Node
		seen := make(map[string]bool)
		sawTrue := false
		var add func(k *Node)
		add = func(k *Node) {
			k = k.Normalize()
			switch {
			case k.Kind == KindTrue:
				sawTrue = true
			case k.Kind == n.Kind:
				for _, kk := range k.Kids {
					add(kk)
				}
			default:
				key := k.canonKey()
				if !seen[key] {
					seen[key] = true
					flat = append(flat, k)
				}
			}
		}
		for _, k := range n.Kids {
			add(k)
		}
		if n.Kind == KindOr && sawTrue {
			return True() // True ∨ X = True
		}
		if len(flat) == 0 {
			return True() // empty conjunction, or Or consisting only of True
		}
		if len(flat) == 1 {
			return flat[0]
		}
		return &Node{Kind: n.Kind, Kids: flat}
	default:
		panic("qtree: invalid node kind " + n.Kind.String())
	}
}

// canonKey returns a canonical string for structural deduplication. Child
// order is ignored for interior nodes.
func (n *Node) canonKey() string {
	switch n.Kind {
	case KindTrue:
		return "T"
	case KindLeaf:
		return n.C.Key()
	default:
		keys := make([]string, len(n.Kids))
		for i, k := range n.Kids {
			keys[i] = k.canonKey()
		}
		sort.Strings(keys)
		op := "&"
		if n.Kind == KindOr {
			op = "|"
		}
		return op + "(" + strings.Join(keys, ",") + ")"
	}
}

// EqualCanonical reports whether two trees are structurally identical up to
// child reordering and duplicate children.
func (n *Node) EqualCanonical(m *Node) bool {
	return n.Normalize().canonKey() == m.Normalize().canonKey()
}

// CanonicalKey returns a canonical identity string for the normalized tree:
// child order, duplicate children, and join-constraint orientation are all
// abstracted away.
func (n *Node) CanonicalKey() string { return n.Normalize().canonKey() }

// Size returns the number of nodes in the parse tree — the paper's
// compactness measure (Section 8).
func (n *Node) Size() int {
	if n == nil {
		return 0
	}
	s := 1
	for _, k := range n.Kids {
		s += k.Size()
	}
	return s
}

// Depth returns the height of the tree (a leaf has depth 1).
func (n *Node) Depth() int {
	if n == nil {
		return 0
	}
	d := 0
	for _, k := range n.Kids {
		if kd := k.Depth(); kd > d {
			d = kd
		}
	}
	return d + 1
}

// Constraints returns the distinct constraints at the leaves, keyed and
// ordered canonically.
func (n *Node) Constraints() []*Constraint {
	set := NewConstraintSet()
	n.walkLeaves(func(c *Constraint) { set.Add(c) })
	return set.Slice()
}

func (n *Node) walkLeaves(f func(*Constraint)) {
	if n == nil {
		return
	}
	if n.Kind == KindLeaf {
		f(n.C)
		return
	}
	for _, k := range n.Kids {
		k.walkLeaves(f)
	}
}

// IsSimpleConjunction reports whether the (normalized) query is a simple
// conjunction of constraints: a True node, a single leaf, or an ∧-node with
// only leaf children (Section 4).
func (n *Node) IsSimpleConjunction() bool {
	switch n.Kind {
	case KindTrue, KindLeaf:
		return true
	case KindAnd:
		for _, k := range n.Kids {
			if k.Kind != KindLeaf {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// SimpleConjuncts returns the constraints of a simple conjunction. It panics
// if the query is not a simple conjunction; callers check first. A True node
// yields nil.
func (n *Node) SimpleConjuncts() []*Constraint {
	switch n.Kind {
	case KindTrue:
		return nil
	case KindLeaf:
		return []*Constraint{n.C}
	case KindAnd:
		cs := make([]*Constraint, 0, len(n.Kids))
		for _, k := range n.Kids {
			if k.Kind != KindLeaf {
				panic("qtree: SimpleConjuncts on non-simple conjunction")
			}
			cs = append(cs, k.C)
		}
		return cs
	default:
		panic("qtree: SimpleConjuncts on disjunction")
	}
}

// DisjunctConjuncts decomposes a normalized query into probe shape: one
// constraint list per top-level disjunct, each disjunct a simple conjunction.
// ok is false when any disjunct nests further structure (an ∧ with ∨
// children), in which case per-disjunct index probing is not applicable. A
// True query returns (nil, true): zero disjuncts, every tuple matches.
func (n *Node) DisjunctConjuncts() ([][]*Constraint, bool) {
	if n.Kind == KindTrue {
		return nil, true
	}
	djs := n.Disjuncts()
	out := make([][]*Constraint, 0, len(djs))
	for _, d := range djs {
		if !d.IsSimpleConjunction() {
			return nil, false
		}
		out = append(out, d.SimpleConjuncts())
	}
	return out, true
}

// Conjuncts returns the children of an ∧-node, or the node itself as a
// single conjunct otherwise.
func (n *Node) Conjuncts() []*Node {
	if n.Kind == KindAnd {
		return n.Kids
	}
	return []*Node{n}
}

// Disjuncts returns the children of an ∨-node, or the node itself as a
// single disjunct otherwise.
func (n *Node) Disjuncts() []*Node {
	if n.Kind == KindOr {
		return n.Kids
	}
	return []*Node{n}
}

// String renders the query with infix ∧/∨ in ASCII ("and"/"or"), fully
// parenthesized except at the top level.
func (n *Node) String() string {
	return n.render(false)
}

func (n *Node) render(paren bool) string {
	switch n.Kind {
	case KindTrue:
		return "TRUE"
	case KindLeaf:
		return n.C.String()
	case KindAnd, KindOr:
		op := " and "
		if n.Kind == KindOr {
			op = " or "
		}
		parts := make([]string, len(n.Kids))
		for i, k := range n.Kids {
			parts[i] = k.render(true)
		}
		s := strings.Join(parts, op)
		if paren {
			return "(" + s + ")"
		}
		return s
	default:
		return "<invalid>"
	}
}
