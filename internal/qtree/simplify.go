package qtree

// This file implements structural Boolean simplification of query trees:
// idempotency (handled by Normalize), absorption (a ∨ (a ∧ b) = a,
// a ∧ (a ∨ b) = a) and elimination of implied children. The paper notes
// (Section 8) that term minimization is possible on top of the mapping
// algorithms; Simplify is the practical subset of it — sound, linearithmic,
// and sufficient to collapse the redundancies that arise when suppressed or
// masked emissions survive in disjunctive output (e.g. the Section 7.1.2
// anomaly).

// Implies reports y ⇒ x by structural analysis. It is sound but incomplete:
// a true result guarantees the implication; a false result is inconclusive.
// Constraints are compared by canonical key only (no semantic reasoning
// about operators).
func Implies(y, x *Node) bool {
	if x.Kind == KindTrue {
		return true
	}
	switch x.Kind {
	case KindLeaf:
		return impliesLeaf(y, x.C.Key())
	case KindOr:
		// y ⇒ x if y implies some disjunct... or, when y is itself a
		// disjunction, if every disjunct of y implies x.
		if y.Kind == KindOr {
			for _, d := range y.Kids {
				if !Implies(d, x) {
					return false
				}
			}
			return true
		}
		for _, d := range x.Kids {
			if Implies(y, d) {
				return true
			}
		}
		return false
	case KindAnd:
		for _, c := range x.Kids {
			if !Implies(y, c) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// impliesLeaf reports y ⇒ the constraint with canonical key k.
func impliesLeaf(y *Node, k string) bool {
	switch y.Kind {
	case KindTrue:
		return false
	case KindLeaf:
		return y.C.Key() == k
	case KindAnd:
		for _, c := range y.Kids {
			if impliesLeaf(c, k) {
				return true
			}
		}
		return false
	case KindOr:
		for _, d := range y.Kids {
			if !impliesLeaf(d, k) {
				return false
			}
		}
		return len(y.Kids) > 0
	default:
		return false
	}
}

// Simplify returns a logically equivalent query with absorbed and implied
// children removed, bottom-up to a fixpoint. The result is normalized and
// never larger than Normalize's output.
func Simplify(q *Node) *Node {
	q = q.Normalize()
	for {
		next := simplifyOnce(q).Normalize()
		if next.Size() >= q.Size() {
			return q
		}
		q = next
	}
}

func simplifyOnce(q *Node) *Node {
	switch q.Kind {
	case KindTrue, KindLeaf:
		return q
	}
	kids := make([]*Node, len(q.Kids))
	for i, k := range q.Kids {
		kids[i] = simplifyOnce(k)
	}
	keep := make([]bool, len(kids))
	for i := range keep {
		keep[i] = true
	}
	for i, x := range kids {
		for j, y := range kids {
			if i == j || !keep[j] {
				continue
			}
			var redundant bool
			if q.Kind == KindOr {
				// x is absorbed when it implies a surviving sibling.
				redundant = Implies(x, y) && (!Implies(y, x) || j < i)
			} else {
				// x is implied by a stricter surviving sibling.
				redundant = Implies(y, x) && (!Implies(x, y) || j < i)
			}
			if redundant {
				keep[i] = false
				break
			}
		}
	}
	var out []*Node
	for i, k := range kids {
		if keep[i] {
			out = append(out, k)
		}
	}
	return &Node{Kind: q.Kind, Kids: out}
}
