package qtree

// This file implements the structural rewritings the mapping algorithms use:
// the one-level Disjunctivize of Algorithm TDQM (Figure 8, bottom) and full
// DNF conversion for the baseline Algorithm DNF (Figure 6).

// Disjunctivize rewrites the conjunction of the given conjuncts into a
// disjunctive query by distributing the ∧ at the root over the ∨ at the next
// level (Figure 8, function Disjunctivize). With a single conjunct the
// conjunct itself is returned. The result is normalized.
//
// For example ∧{(D11 ∨ D12), (D21 ∨ D22)} becomes
// ∨{D11·D21, D11·D22, D12·D21, D12·D22}.
func Disjunctivize(conjuncts []*Node) *Node {
	if len(conjuncts) == 0 {
		return True()
	}
	if len(conjuncts) == 1 {
		return conjuncts[0].Normalize()
	}
	// Cartesian product of each conjunct's disjunct lists.
	terms := [][]*Node{nil} // each element: the ∧-operands of one product term
	for _, c := range conjuncts {
		ds := c.Normalize().Disjuncts()
		next := make([][]*Node, 0, len(terms)*len(ds))
		for _, t := range terms {
			for _, d := range ds {
				nt := make([]*Node, len(t), len(t)+1)
				copy(nt, t)
				nt = append(nt, d)
				next = append(next, nt)
			}
		}
		terms = next
	}
	kids := make([]*Node, len(terms))
	for i, t := range terms {
		kids[i] = And(t...)
	}
	return Or(kids...).Normalize()
}

// ToDNF converts q into full disjunctive normal form: a disjunction of
// simple conjunctions (Algorithm DNF, step 1). Duplicate disjuncts and
// duplicate constraints within a disjunct are removed; disjuncts that are a
// superset of another disjunct are NOT absorbed (the paper's DNF conversion
// is purely structural).
func ToDNF(q *Node) *Node {
	q = q.Normalize()
	switch q.Kind {
	case KindTrue, KindLeaf:
		return q
	case KindOr:
		kids := make([]*Node, len(q.Kids))
		for i, k := range q.Kids {
			kids[i] = ToDNF(k)
		}
		return Or(kids...).Normalize()
	case KindAnd:
		kids := make([]*Node, len(q.Kids))
		for i, k := range q.Kids {
			kids[i] = ToDNF(k)
		}
		return Disjunctivize(kids) // children are DNF ⇒ one distribution suffices
	default:
		panic("qtree: invalid node kind in ToDNF")
	}
}

// DNFDisjuncts returns the disjuncts of ToDNF(q) as constraint sets, in
// canonical order. True yields a single empty set.
func DNFDisjuncts(q *Node) []*ConstraintSet {
	d := ToDNF(q)
	var out []*ConstraintSet
	for _, k := range d.Disjuncts() {
		out = append(out, SetOfConstraints(k))
	}
	return out
}

// ToCNF converts q into conjunctive normal form: a conjunction of clauses,
// each a disjunction of constraints. It is the dual of ToDNF, provided for
// the Garlic-style CNF baseline (the paper's related work notes Garlic
// "processes complex queries in CNF and is not aware of dependencies").
func ToCNF(q *Node) *Node {
	q = q.Normalize()
	switch q.Kind {
	case KindTrue, KindLeaf:
		return q
	case KindAnd:
		kids := make([]*Node, len(q.Kids))
		for i, k := range q.Kids {
			kids[i] = ToCNF(k)
		}
		return And(kids...).Normalize()
	case KindOr:
		// Distribute ∨ over the children's clauses: the clauses of
		// (A ∨ B) are the pairwise disjunctions of A's and B's clauses.
		clauses := []*Node{nil} // nil means the empty (always-false) clause so far
		grow := func(existing []*Node, kid *Node) []*Node {
			kidClauses := ToCNF(kid).Conjuncts()
			next := make([]*Node, 0, len(existing)*len(kidClauses))
			for _, e := range existing {
				for _, c := range kidClauses {
					if e == nil {
						next = append(next, c)
					} else {
						next = append(next, Or(e, c))
					}
				}
			}
			return next
		}
		for _, k := range q.Kids {
			clauses = grow(clauses, k)
		}
		return And(clauses...).Normalize()
	default:
		panic("qtree: invalid node kind in ToCNF")
	}
}
