package qtree

import (
	"testing"
)

// fuzzVal is a tiny Value for fuzz-built constraints; the canonical key only
// consults Kind and String, so a plain string value suffices.
type fuzzVal string

func (v fuzzVal) Kind() string       { return "string" }
func (v fuzzVal) String() string     { return string(v) }
func (v fuzzVal) Equal(o Value) bool { w, ok := o.(fuzzVal); return ok && v == w }

// buildTree interprets program bytes as a post-order tree builder over a
// small constraint vocabulary: low opcodes push leaves, high opcodes fold
// the top of the stack into ∧/∨ nodes. Every byte string yields a valid
// tree, so the fuzzer explores shapes, not parse errors.
func buildTree(prog []byte) *Node {
	ops := []string{OpEq, OpStarts, OpContains, OpLt}
	var stack []*Node
	for _, b := range prog {
		switch {
		case b < 128:
			attr := A([]string{"a", "b", "c", "d"}[int(b)%4])
			op := ops[int(b>>2)%len(ops)]
			val := fuzzVal([]string{"x", "y", "z"}[int(b>>4)%3])
			stack = append(stack, Leaf(Sel(attr, op, val)))
		default:
			take := 2 + int(b)%3
			if take > len(stack) {
				take = len(stack)
			}
			if take < 2 {
				continue
			}
			kids := make([]*Node, take)
			copy(kids, stack[len(stack)-take:])
			stack = stack[:len(stack)-take]
			kind := KindAnd
			if b%2 == 1 {
				kind = KindOr
			}
			stack = append(stack, &Node{Kind: kind, Kids: kids})
		}
	}
	switch len(stack) {
	case 0:
		return True()
	case 1:
		return stack[0]
	default:
		return &Node{Kind: KindAnd, Kids: stack}
	}
}

// reverseKids returns a deep copy with every interior node's children
// reversed (∧/∨ commutativity).
func reverseKids(n *Node) *Node {
	cp := n.Clone()
	var rev func(*Node)
	rev = func(m *Node) {
		for i, j := 0, len(m.Kids)-1; i < j; i, j = i+1, j-1 {
			m.Kids[i], m.Kids[j] = m.Kids[j], m.Kids[i]
		}
		for _, k := range m.Kids {
			rev(k)
		}
	}
	rev(cp)
	return cp
}

// regroup returns a deep copy in which every interior node with three or
// more children has its first two grouped into a nested node of the same
// kind (associativity).
func regroup(n *Node) *Node {
	if n == nil || n.Kind == KindLeaf || n.Kind == KindTrue {
		return n.Clone()
	}
	kids := make([]*Node, len(n.Kids))
	for i, k := range n.Kids {
		kids[i] = regroup(k)
	}
	if len(kids) >= 3 {
		nested := &Node{Kind: n.Kind, Kids: []*Node{kids[0], kids[1]}}
		kids = append([]*Node{nested}, kids[2:]...)
	}
	return &Node{Kind: n.Kind, Kids: kids}
}

// duplicateFirst returns a deep copy with every interior node's first child
// appended again (idempotence: x ∧ x = x, x ∨ x = x).
func duplicateFirst(n *Node) *Node {
	if n == nil || n.Kind == KindLeaf || n.Kind == KindTrue {
		return n.Clone()
	}
	kids := make([]*Node, 0, len(n.Kids)+1)
	for _, k := range n.Kids {
		kids = append(kids, duplicateFirst(k))
	}
	kids = append(kids, kids[0].Clone())
	return &Node{Kind: n.Kind, Kids: kids}
}

// FuzzCanonicalKey checks that CanonicalKey is invariant under the
// equivalences it abstracts: child commutation, associative regrouping of
// same-kind nodes, and duplicate-branch insertion. It also pins down that
// normalization is stable (normalizing twice changes nothing).
func FuzzCanonicalKey(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{0, 5, 200})
	f.Add([]byte{0, 5, 9, 201})
	f.Add([]byte{0, 5, 200, 17, 33, 201, 131})
	f.Add([]byte{7, 7, 7, 7, 202, 42, 203, 130})
	f.Fuzz(func(t *testing.T, prog []byte) {
		q := buildTree(prog)
		key := q.CanonicalKey()
		if got := reverseKids(q).CanonicalKey(); got != key {
			t.Fatalf("CanonicalKey not commutation-invariant:\nq = %s\nkey %q vs %q", q, key, got)
		}
		if got := regroup(q).CanonicalKey(); got != key {
			t.Fatalf("CanonicalKey not associativity-invariant:\nq = %s\nkey %q vs %q", q, key, got)
		}
		if got := duplicateFirst(q).CanonicalKey(); got != key {
			t.Fatalf("CanonicalKey not idempotence-invariant:\nq = %s\nkey %q vs %q", q, key, got)
		}
		n1 := q.Normalize()
		if n2 := n1.Normalize(); n1.canonKey() != n2.canonKey() {
			t.Fatalf("Normalize not stable:\n%s\nvs\n%s", n1, n2)
		}
	})
}
