package qtree

import (
	"strings"
	"testing"
)

func TestAttrHelpers(t *testing.T) {
	a := VA("fac", "ln")
	if !a.Equal(VA("fac", "ln")) || a.Equal(VA("pub", "ln")) {
		t.Error("Attr.Equal misbehaves")
	}
	if !a.SameColumn(VIA("fac", 2, "ln")) {
		t.Error("SameColumn should ignore the instance index")
	}
	if a.SameColumn(VA("fac", "fn")) {
		t.Error("SameColumn should compare names")
	}
	if got := a.WithRel("aubib"); got.Rel != "aubib" || a.Rel != "" {
		t.Error("WithRel should return a modified copy")
	}
	if !(Attr{}).IsZero() || a.IsZero() {
		t.Error("IsZero misbehaves")
	}
	if a.Key() != "fac.ln" {
		t.Errorf("Key = %q", a.Key())
	}
}

func TestInverseOp(t *testing.T) {
	cases := map[string]string{
		OpEq: OpEq, OpNe: OpNe, OpLt: OpGt, OpLe: OpGe, OpGt: OpLt, OpGe: OpLe,
	}
	for op, want := range cases {
		got, ok := InverseOp(op)
		if !ok || got != want {
			t.Errorf("InverseOp(%s) = %s,%v want %s", op, got, ok, want)
		}
	}
	if _, ok := InverseOp(OpContains); ok {
		t.Error("contains should have no inverse")
	}
}

func TestConstraintStringAndEqual(t *testing.T) {
	sel := cstr("ln", "Clancy")
	if got := sel.String(); got != "[ln = Clancy]" {
		t.Errorf("String = %q", got)
	}
	join := Join(VA("fac", "ln"), OpEq, VA("pub", "ln"))
	if got := join.String(); got != "[fac.ln = pub.ln]" {
		t.Errorf("join String = %q", got)
	}
	flipped := Join(VA("pub", "ln"), OpEq, VA("fac", "ln"))
	if !join.Equal(flipped) {
		t.Error("symmetric joins should be Equal under normalization")
	}
	if join.Equal(sel) || sel.Equal(nil) {
		t.Error("Equal misbehaves on mixed/nil")
	}
	var nilC *Constraint
	if !nilC.Equal(nil) {
		t.Error("nil constraints should be Equal")
	}
}

func TestConstraintCloneJoin(t *testing.T) {
	join := Join(VA("fac", "ln"), OpEq, VA("pub", "ln"))
	cp := join.Clone()
	cp.RAttr.Name = "fn"
	if join.RAttr.Name != "ln" {
		t.Error("Clone shares RAttr storage")
	}
}

func TestAndOfOrOf(t *testing.T) {
	a, b := leaf("a", "1"), leaf("b", "1")
	if got := AndOf(a, AndOf(b)); got.Kind != KindAnd || len(got.Kids) != 2 {
		t.Errorf("AndOf = %s", got)
	}
	if got := OrOf(a, True()); !got.IsTrue() {
		t.Errorf("OrOf with TRUE = %s", got)
	}
}

func TestConjunctsDisjuncts(t *testing.T) {
	a, b := leaf("a", "1"), leaf("b", "1")
	and := And(a, b).Normalize()
	if got := and.Conjuncts(); len(got) != 2 {
		t.Errorf("Conjuncts = %d", len(got))
	}
	if got := a.Conjuncts(); len(got) != 1 || got[0] != a {
		t.Error("Conjuncts of a leaf should be itself")
	}
	or := Or(a, b).Normalize()
	if got := or.Disjuncts(); len(got) != 2 {
		t.Errorf("Disjuncts = %d", len(got))
	}
	if got := and.Disjuncts(); len(got) != 1 {
		t.Error("Disjuncts of a conjunction should be itself")
	}
}

func TestNodeString(t *testing.T) {
	q := And(leaf("a", "1"), Or(leaf("b", "1"), leaf("c", "1"))).Normalize()
	s := q.String()
	if !strings.Contains(s, " and ") || !strings.Contains(s, "(") {
		t.Errorf("String = %q", s)
	}
	if got := True().String(); got != "TRUE" {
		t.Errorf("TRUE String = %q", got)
	}
}

func TestTreeString(t *testing.T) {
	q := And(leaf("a", "1"), Or(leaf("b", "1"), leaf("c", "1"))).Normalize()
	ts := q.TreeString()
	lines := strings.Split(strings.TrimRight(ts, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("TreeString has %d lines:\n%s", len(lines), ts)
	}
	if lines[0] != "AND" {
		t.Errorf("root line = %q", lines[0])
	}
	if !strings.Contains(ts, "└─") || !strings.Contains(ts, "├─") {
		t.Errorf("TreeString missing connectors:\n%s", ts)
	}
	if got := True().TreeString(); !strings.Contains(got, "TRUE") {
		t.Errorf("TRUE TreeString = %q", got)
	}
}

func TestDNFDisjuncts(t *testing.T) {
	q := And(Or(leaf("a", "1"), leaf("b", "1")), leaf("c", "1"))
	ds := DNFDisjuncts(q)
	if len(ds) != 2 {
		t.Fatalf("DNFDisjuncts = %d", len(ds))
	}
	for _, d := range ds {
		if d.Len() != 2 {
			t.Errorf("disjunct %s should have 2 constraints", d)
		}
	}
	if ds := DNFDisjuncts(True()); len(ds) != 1 || !ds[0].IsEmpty() {
		t.Errorf("DNFDisjuncts(TRUE) = %v", ds)
	}
}

func TestConstraintSetHasAndString(t *testing.T) {
	a, b := cstr("a", "1"), cstr("b", "1")
	s := NewConstraintSet(a)
	if !s.Has(a) || s.Has(b) {
		t.Error("Has misbehaves")
	}
	if got := s.String(); got != "{[a = 1]}" {
		t.Errorf("String = %q", got)
	}
	cl := s.Clone()
	cl.Add(b)
	if s.Has(b) {
		t.Error("Clone shares storage")
	}
}

func TestDepthEdge(t *testing.T) {
	var nilNode *Node
	if nilNode.Depth() != 0 || nilNode.Size() != 0 {
		t.Error("nil node should have zero depth/size")
	}
	if leaf("a", "1").Depth() != 1 {
		t.Error("leaf depth should be 1")
	}
}

func TestSimpleConjunctsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SimpleConjuncts on a disjunction should panic")
		}
	}()
	Or(leaf("a", "1"), leaf("b", "1")).Normalize().SimpleConjuncts()
}
