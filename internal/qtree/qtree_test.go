package qtree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// testValue is a minimal Value for qtree-local tests.
type testValue string

func (testValue) Kind() string          { return "test" }
func (v testValue) String() string      { return string(v) }
func (v testValue) Equal(o Value) bool  { t, ok := o.(testValue); return ok && v == t }
func tv(s string) Value                 { return testValue(s) }
func leaf(attr, val string) *Node       { return Leaf(Sel(A(attr), OpEq, tv(val))) }
func cstr(attr, val string) *Constraint { return Sel(A(attr), OpEq, tv(val)) }

func TestAttrString(t *testing.T) {
	cases := []struct {
		a    Attr
		want string
	}{
		{A("ln"), "ln"},
		{VA("fac", "ln"), "fac.ln"},
		{VIA("fac", 2, "ln"), "fac[2].ln"},
		{RA("fac", "aubib", "name"), "fac.aubib.name"},
		{Attr{View: "fac", Index: 1, Rel: "prof", Name: "dept"}, "fac[1].prof.dept"},
	}
	for _, c := range cases {
		if got := c.a.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.a, got, c.want)
		}
	}
}

func TestConstraintNormalizeJoin(t *testing.T) {
	a, b := VA("v", "x"), VA("w", "y")
	lt := Join(b, OpLt, a)
	n := lt.Normalize()
	if n.Op != OpGt || n.Attr != a || *n.RAttr != b {
		t.Errorf("normalize [w.y < v.x] = %s, want [v.x > w.y]", n)
	}
	// Symmetric operators order attributes lexicographically.
	eq1 := Join(a, OpEq, b)
	eq2 := Join(b, OpEq, a)
	if eq1.Key() != eq2.Key() {
		t.Errorf("symmetric join keys differ: %q vs %q", eq1.Key(), eq2.Key())
	}
	// Selection constraints are untouched.
	sel := cstr("x", "1")
	if sel.Normalize() != sel {
		t.Error("selection constraint was rewritten by Normalize")
	}
}

func TestNormalizeCollapsesAndDedupes(t *testing.T) {
	q := And(leaf("a", "1"), And(leaf("b", "2"), leaf("c", "3")), leaf("a", "1"))
	n := q.Normalize()
	if n.Kind != KindAnd || len(n.Kids) != 3 {
		t.Fatalf("normalize = %s, want flat 3-way conjunction", n)
	}
	for _, k := range n.Kids {
		if k.Kind != KindLeaf {
			t.Fatalf("child %s not a leaf", k)
		}
	}
}

func TestNormalizeTrueIdentities(t *testing.T) {
	if got := And(True(), leaf("a", "1")).Normalize(); got.Kind != KindLeaf {
		t.Errorf("True ∧ a = %s, want leaf", got)
	}
	if got := Or(True(), leaf("a", "1")).Normalize(); !got.IsTrue() {
		t.Errorf("True ∨ a = %s, want TRUE", got)
	}
	if got := And().Normalize(); !got.IsTrue() {
		t.Errorf("empty ∧ = %s, want TRUE", got)
	}
	if got := And(leaf("a", "1")).Normalize(); got.Kind != KindLeaf {
		t.Errorf("singleton ∧ = %s, want unwrapped leaf", got)
	}
}

func TestNormalizeAlternation(t *testing.T) {
	q := Or(leaf("a", "1"), Or(leaf("b", "1"), Or(leaf("c", "1"), And(leaf("d", "1")))))
	n := q.Normalize()
	if n.Kind != KindOr || len(n.Kids) != 4 {
		t.Fatalf("normalize = %s, want flat 4-way disjunction", n)
	}
	var check func(n *Node, parent NodeKind)
	check = func(n *Node, parent NodeKind) {
		if n.Kind == parent && (n.Kind == KindAnd || n.Kind == KindOr) {
			t.Fatalf("adjacent %v nodes survive normalization", n.Kind)
		}
		for _, k := range n.Kids {
			check(k, n.Kind)
		}
	}
	check(n, KindLeaf)
}

func TestSizeAndDepth(t *testing.T) {
	q := And(leaf("a", "1"), Or(leaf("b", "1"), leaf("c", "1")))
	if got := q.Size(); got != 5 {
		t.Errorf("Size = %d, want 5", got)
	}
	if got := q.Depth(); got != 3 {
		t.Errorf("Depth = %d, want 3", got)
	}
}

func TestSimpleConjunction(t *testing.T) {
	sc := And(leaf("a", "1"), leaf("b", "2")).Normalize()
	if !sc.IsSimpleConjunction() {
		t.Error("flat conjunction of leaves not recognized")
	}
	if got := len(sc.SimpleConjuncts()); got != 2 {
		t.Errorf("SimpleConjuncts len = %d, want 2", got)
	}
	complexQ := And(leaf("a", "1"), Or(leaf("b", "1"), leaf("c", "1"))).Normalize()
	if complexQ.IsSimpleConjunction() {
		t.Error("complex conjunction misrecognized as simple")
	}
	if !True().IsSimpleConjunction() || True().SimpleConjuncts() != nil {
		t.Error("True should be an empty simple conjunction")
	}
}

func TestDisjunctivize(t *testing.T) {
	q := Disjunctivize([]*Node{
		Or(leaf("a", "1"), leaf("b", "1")),
		Or(leaf("c", "1"), leaf("d", "1")),
	})
	if q.Kind != KindOr || len(q.Kids) != 4 {
		t.Fatalf("Disjunctivize = %s, want 4 disjuncts", q)
	}
	for _, d := range q.Kids {
		if !d.IsSimpleConjunction() || len(d.SimpleConjuncts()) != 2 {
			t.Fatalf("disjunct %s should be a 2-constraint conjunction", d)
		}
	}
	// Single conjunct: returned unchanged.
	single := Or(leaf("a", "1"), leaf("b", "1"))
	if got := Disjunctivize([]*Node{single}); !got.EqualCanonical(single) {
		t.Errorf("Disjunctivize single = %s, want %s", got, single)
	}
}

func TestToDNFShape(t *testing.T) {
	// (a ∨ b) ∧ (c ∨ d) ∧ e → 4 disjuncts of 3 constraints.
	q := And(
		Or(leaf("a", "1"), leaf("b", "1")),
		Or(leaf("c", "1"), leaf("d", "1")),
		leaf("e", "1"),
	)
	d := ToDNF(q)
	if d.Kind != KindOr || len(d.Kids) != 4 {
		t.Fatalf("DNF = %s, want 4 disjuncts", d)
	}
	for _, k := range d.Kids {
		if !k.IsSimpleConjunction() || len(k.SimpleConjuncts()) != 3 {
			t.Fatalf("disjunct %s should have 3 constraints", k)
		}
	}
}

// genTree builds a random tree for property tests, with constraints drawn
// from a small pool so that duplicates and absorption cases occur.
func genTree(rng *rand.Rand, depth int) *Node {
	if depth == 0 || rng.Intn(3) == 0 {
		return leaf(string(rune('a'+rng.Intn(5))), string(rune('0'+rng.Intn(3))))
	}
	n := 2 + rng.Intn(2)
	kids := make([]*Node, n)
	for i := range kids {
		kids[i] = genTree(rng, depth-1)
	}
	if rng.Intn(2) == 0 {
		return And(kids...)
	}
	return Or(kids...)
}

// evalBool evaluates a tree under an assignment keyed by constraint key.
func evalBool(n *Node, asg map[string]bool) bool {
	switch n.Kind {
	case KindTrue:
		return true
	case KindLeaf:
		return asg[n.C.Key()]
	case KindAnd:
		for _, k := range n.Kids {
			if !evalBool(k, asg) {
				return false
			}
		}
		return true
	default:
		for _, k := range n.Kids {
			if evalBool(k, asg) {
				return true
			}
		}
		return false
	}
}

// equivUnderRandomAssignments probes logical equivalence with random
// assignments over the union of constraint keys.
func equivUnderRandomAssignments(rng *rand.Rand, p, q *Node, probes int) bool {
	keys := map[string]bool{}
	for _, c := range p.Constraints() {
		keys[c.Key()] = true
	}
	for _, c := range q.Constraints() {
		keys[c.Key()] = true
	}
	for i := 0; i < probes; i++ {
		asg := map[string]bool{}
		for k := range keys {
			asg[k] = rng.Intn(2) == 0
		}
		if evalBool(p, asg) != evalBool(q, asg) {
			return false
		}
	}
	return true
}

// TestQuickNormalizePreservesSemantics: Normalize is a logical no-op.
func TestQuickNormalizePreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := genTree(r, 4)
		return equivUnderRandomAssignments(rng, q, q.Normalize(), 40)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickToDNFPreservesSemantics: DNF conversion is a logical no-op.
func TestQuickToDNFPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := genTree(r, 4)
		return equivUnderRandomAssignments(rng, q, ToDNF(q), 40)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickNormalizeIdempotent: Normalize(Normalize(q)) ≡ Normalize(q)
// structurally.
func TestQuickNormalizeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := genTree(r, 4)
		n1 := q.Normalize()
		n2 := n1.Normalize()
		return n1.CanonicalKey() == n2.CanonicalKey()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickDisjunctivizeEquivalence: Disjunctivize of a conjunction's
// conjuncts preserves logic.
func TestQuickDisjunctivizeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(3)
		conj := make([]*Node, n)
		for i := range conj {
			conj[i] = genTree(r, 2)
		}
		return equivUnderRandomAssignments(rng, And(conj...), Disjunctivize(conj), 40)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestConstraintSetOps(t *testing.T) {
	a, b, c := cstr("a", "1"), cstr("b", "1"), cstr("c", "1")
	s := NewConstraintSet(a, b)
	u := NewConstraintSet(b, c)
	if !s.Intersects(u) || s.Equal(u) {
		t.Error("Intersects/Equal misbehave")
	}
	if got := s.Union(u).Len(); got != 3 {
		t.Errorf("union len = %d, want 3", got)
	}
	if got := s.Minus(u).Len(); got != 1 {
		t.Errorf("minus len = %d, want 1", got)
	}
	if !NewConstraintSet(a).ProperSubsetOf(s) || s.ProperSubsetOf(s) {
		t.Error("ProperSubsetOf misbehaves")
	}
	if s.ID() == u.ID() {
		t.Error("distinct sets share ID")
	}
	if got := NewConstraintSet().Conjunction(); !got.IsTrue() {
		t.Errorf("empty conjunction = %s, want TRUE", got)
	}
	if got := s.Conjunction(); got.Kind != KindAnd || len(got.Kids) != 2 {
		t.Errorf("conjunction = %s, want 2-way ∧", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	q := And(leaf("a", "1"), Or(leaf("b", "1"), leaf("c", "1")))
	cp := q.Clone()
	cp.Kids[0].C.Op = OpNe
	if q.Kids[0].C.Op != OpEq {
		t.Error("Clone shares constraint storage")
	}
}
