package qtree

import (
	"strings"
)

// Operator names used across the library. Rules and targets may introduce
// additional operators; these are the ones the paper's examples use.
const (
	OpEq       = "="
	OpNe       = "!="
	OpLt       = "<"
	OpLe       = "<="
	OpGt       = ">"
	OpGe       = ">="
	OpContains = "contains"
	OpStarts   = "starts"
	OpDuring   = "during"
)

// InverseOp returns the operator op2 such that [a op b] ≡ [b op2 a], and
// whether such an inverse exists. Symmetric operators are their own inverse.
func InverseOp(op string) (string, bool) {
	switch op {
	case OpEq, OpNe:
		return op, true
	case OpLt:
		return OpGt, true
	case OpLe:
		return OpGe, true
	case OpGt:
		return OpLt, true
	case OpGe:
		return OpLe, true
	default:
		return "", false
	}
}

// Constraint is a single selection condition [attr op value] or join
// condition [attr1 op attr2] (Section 2). Exactly one of Val and RAttr is
// set: Val for selections, RAttr for joins.
type Constraint struct {
	Attr  Attr
	Op    string
	Val   Value // selection constant; nil for join constraints
	RAttr *Attr // right-hand attribute; nil for selection constraints

	// key caches the canonical identity computed by the constructors.
	// Constraints assembled as raw composite literals leave it empty and
	// Key() falls back to a stateless computation, so a missing cache can
	// never be wrong — only slower.
	key string
	// valOff is the byte offset of the value-key component inside key for
	// cached selection constraints; zero means "not cached" (the minimal
	// real offset is 4).
	valOff int
}

// Sel constructs a selection constraint [attr op val].
func Sel(attr Attr, op string, val Value) *Constraint {
	c := &Constraint{Attr: attr, Op: op, Val: val}
	c.key = c.computeKey()
	c.valOff = 1 + len(attr.Key()) + 1 + len(op) + 1
	return c
}

// Join constructs a join constraint [left op right].
func Join(left Attr, op string, right Attr) *Constraint {
	r := right
	c := &Constraint{Attr: left, Op: op, RAttr: &r}
	c.key = c.computeKey()
	return c
}

// IsJoin reports whether c is a join constraint.
func (c *Constraint) IsJoin() bool { return c.RAttr != nil }

// String renders the constraint in the paper's bracketed syntax,
// e.g. [ln = "Clancy"] or [fac.ln = pub.ln].
func (c *Constraint) String() string {
	var b strings.Builder
	b.WriteByte('[')
	b.WriteString(c.Attr.String())
	b.WriteByte(' ')
	b.WriteString(c.Op)
	b.WriteByte(' ')
	if c.IsJoin() {
		b.WriteString(c.RAttr.String())
	} else if c.Val != nil {
		b.WriteString(c.Val.String())
	}
	b.WriteByte(']')
	return b.String()
}

// Key returns a canonical identity string. Two constraints with equal keys
// are treated as the same constraint by the matching machinery (matchings
// are sets of constraints, Section 4.1). Join constraints are normalized so
// that [a op b] and [b inv(op) a] share a key.
func (c *Constraint) Key() string {
	if c.key != "" {
		return c.key
	}
	return c.computeKey()
}

// computeKey derives the canonical key from scratch. The join branch inlines
// Normalize's operator-direction rules rather than calling it, so constructor
// key caching cannot recurse through the intermediate Join allocation.
func (c *Constraint) computeKey() string {
	if !c.IsJoin() {
		return "[" + c.Attr.Key() + " " + c.Op + " " + valueKey(c.Val) + "]"
	}
	l, r, op := c.Attr, *c.RAttr, c.Op
	switch op {
	case OpLt: // prefer ">"
		op = OpGt
		l, r = r, l
	case OpLe: // prefer ">="
		op = OpGe
		l, r = r, l
	case OpEq, OpNe:
		if l.Key() > r.Key() {
			l, r = r, l
		}
	}
	return "[" + l.Key() + " " + op + " " + r.Key() + "]"
}

// ValueKey returns the canonical identity of the constraint's constant: the
// value-key component of Key(). For constructor-built selection constraints
// it slices the cached key without allocating, which keeps index probes off
// the allocator. Join constraints have no constant and return "".
func (c *Constraint) ValueKey() string {
	if c.IsJoin() {
		return ""
	}
	if c.key != "" && c.valOff > 0 {
		return c.key[c.valOff : len(c.key)-1]
	}
	return valueKey(c.Val)
}

// ValueKey returns the canonical identity string of a constant value — the
// same identity constraint keys embed (numeric kinds share one identity), so
// engine-side value buckets and constraint probes agree byte-for-byte.
func ValueKey(v Value) string { return valueKey(v) }

func valueKey(v Value) string {
	if v == nil {
		return "<nil>"
	}
	kind := v.Kind()
	// Integers and floats share one numeric identity (3 ≡ 3.0), matching
	// Value.Equal and the engine's comparison semantics.
	if kind == "int" || kind == "float" {
		kind = "num"
	}
	return kind + ":" + v.String()
}

// Equal reports whether two constraints are identical under normalization.
func (c *Constraint) Equal(d *Constraint) bool {
	if c == nil || d == nil {
		return c == d
	}
	return c.Key() == d.Key()
}

// Normalize returns a canonical form of the constraint (Section 4.2): join
// constraints written with the preferred operator direction, and symmetric
// operators with attributes in lexicographic order. Selection constraints
// are returned unchanged.
func (c *Constraint) Normalize() *Constraint {
	if !c.IsJoin() {
		return c
	}
	l, r, op := c.Attr, *c.RAttr, c.Op
	flip := false
	switch op {
	case OpLt: // prefer ">"
		op, flip = OpGt, true
	case OpLe: // prefer ">="
		op, flip = OpGe, true
	case OpEq, OpNe:
		if l.Key() > r.Key() {
			flip = true
		}
	}
	if flip {
		l, r = r, l
	}
	if l == c.Attr && op == c.Op {
		return c
	}
	return Join(l, op, r)
}

// Clone returns a deep copy of the constraint. Values are immutable and
// shared.
func (c *Constraint) Clone() *Constraint {
	cp := *c
	if c.RAttr != nil {
		r := *c.RAttr
		cp.RAttr = &r
	}
	return &cp
}
