package qtree

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestMarshalJSONLeaf(t *testing.T) {
	q := leaf("ln", "Clancy")
	b, err := json.Marshal(q)
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, want := range []string{`"attr":"ln"`, `"cmp":"="`, `"kind":"test"`} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON %s missing %s", s, want)
		}
	}
}

func TestMarshalJSONTree(t *testing.T) {
	q := And(leaf("a", "1"), Or(leaf("b", "1"), leaf("c", "1"))).Normalize()
	b, err := json.Marshal(q)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["op"] != "and" {
		t.Errorf("root op = %v", decoded["op"])
	}
	kids, ok := decoded["kids"].([]any)
	if !ok || len(kids) != 2 {
		t.Fatalf("kids = %v", decoded["kids"])
	}
}

func TestMarshalJSONJoinAndTrue(t *testing.T) {
	j := Leaf(Join(VA("fac", "ln"), OpEq, VA("pub", "ln")))
	b, err := json.Marshal(j)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"rattr":"pub.ln"`) {
		t.Errorf("join JSON = %s", b)
	}
	b, err = json.Marshal(True())
	if err != nil || !strings.Contains(string(b), `"op":"true"`) {
		t.Errorf("TRUE JSON = %s (%v)", b, err)
	}
}
