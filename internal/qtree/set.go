package qtree

import (
	"sort"
	"strings"
	"sync/atomic"
)

// ConstraintSet is a set of constraints identified by canonical key. It is
// the representation of a rule matching (Section 4.1) and of DNF disjuncts
// inside the EDNF machinery. The zero value is not usable; call
// NewConstraintSet.
//
// Mutation (Add/AddAll) is not safe concurrently with any other use, but a
// set that is no longer being mutated may be read from many goroutines:
// the lazily computed key/ID view is published atomically.
type ConstraintSet struct {
	m map[string]*Constraint

	// view caches the sorted keys and canonical ID of the current contents;
	// mutators drop it when the key set changes. Stored atomically because
	// matchings reached through the translation memo are read — and their
	// views lazily filled in — from concurrent translation branches.
	view atomic.Pointer[setView]
}

type setView struct {
	keys []string
	id   string
}

// NewConstraintSet returns an empty set, optionally seeded with constraints.
func NewConstraintSet(cs ...*Constraint) *ConstraintSet {
	s := &ConstraintSet{m: make(map[string]*Constraint, len(cs))}
	for _, c := range cs {
		s.Add(c)
	}
	return s
}

// Add inserts c into the set.
func (s *ConstraintSet) Add(c *Constraint) {
	k := c.Key()
	if _, ok := s.m[k]; !ok {
		s.view.Store(nil)
	}
	s.m[k] = c
}

// AddAll inserts every constraint of t into s.
func (s *ConstraintSet) AddAll(t *ConstraintSet) {
	for k, c := range t.m {
		if _, ok := s.m[k]; !ok {
			s.view.Store(nil)
		}
		s.m[k] = c
	}
}

// Reset empties the set in place, retaining the allocated map so hot loops
// (the PSafe product-term scan) can reuse one set instead of allocating one
// per iteration. Like the mutators, it must not race with concurrent reads.
func (s *ConstraintSet) Reset() {
	clear(s.m)
	s.view.Store(nil)
}

// Has reports whether c is in the set.
func (s *ConstraintSet) Has(c *Constraint) bool { _, ok := s.m[c.Key()]; return ok }

// HasKey reports whether a constraint with canonical key k is in the set.
func (s *ConstraintSet) HasKey(k string) bool { _, ok := s.m[k]; return ok }

// Len returns the number of constraints in the set.
func (s *ConstraintSet) Len() int { return len(s.m) }

// IsEmpty reports whether the set has no constraints. An empty set plays the
// role of the ε placeholder in Procedure EDNF.
func (s *ConstraintSet) IsEmpty() bool { return len(s.m) == 0 }

// Slice returns the constraints ordered by canonical key.
func (s *ConstraintSet) Slice() []*Constraint {
	keys := s.Keys()
	out := make([]*Constraint, len(keys))
	for i, k := range keys {
		out[i] = s.m[k]
	}
	return out
}

// Keys returns the sorted canonical keys. The returned slice is shared with
// the set's cached view and must not be modified by the caller.
func (s *ConstraintSet) Keys() []string {
	if v := s.view.Load(); v != nil {
		return v.keys
	}
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s.view.Store(&setView{keys: keys})
	return keys
}

// ID returns a canonical identity string for the whole set, usable as a map
// key for set-of-sets bookkeeping.
func (s *ConstraintSet) ID() string {
	if v := s.view.Load(); v != nil && (v.id != "" || len(v.keys) == 0) {
		return v.id
	}
	keys := s.Keys()
	id := strings.Join(keys, ";")
	s.view.Store(&setView{keys: keys, id: id})
	return id
}

// Equal reports set equality.
func (s *ConstraintSet) Equal(t *ConstraintSet) bool {
	if s.Len() != t.Len() {
		return false
	}
	for k := range s.m {
		if !t.HasKey(k) {
			return false
		}
	}
	return true
}

// SubsetOf reports whether s ⊆ t.
func (s *ConstraintSet) SubsetOf(t *ConstraintSet) bool {
	if s.Len() > t.Len() {
		return false
	}
	for k := range s.m {
		if !t.HasKey(k) {
			return false
		}
	}
	return true
}

// ProperSubsetOf reports whether s ⊂ t.
func (s *ConstraintSet) ProperSubsetOf(t *ConstraintSet) bool {
	return s.Len() < t.Len() && s.SubsetOf(t)
}

// Intersects reports whether s ∩ t ≠ ∅.
func (s *ConstraintSet) Intersects(t *ConstraintSet) bool {
	small, big := s, t
	if big.Len() < small.Len() {
		small, big = big, small
	}
	for k := range small.m {
		if big.HasKey(k) {
			return true
		}
	}
	return false
}

// Union returns s ∪ t as a new set.
func (s *ConstraintSet) Union(t *ConstraintSet) *ConstraintSet {
	u := NewConstraintSet()
	u.AddAll(s)
	u.AddAll(t)
	return u
}

// Minus returns s − t as a new set.
func (s *ConstraintSet) Minus(t *ConstraintSet) *ConstraintSet {
	u := NewConstraintSet()
	for k, c := range s.m {
		if !t.HasKey(k) {
			u.m[k] = c
		}
	}
	return u
}

// Clone returns a copy of the set.
func (s *ConstraintSet) Clone() *ConstraintSet {
	u := NewConstraintSet()
	u.AddAll(s)
	return u
}

// Conjunction returns the set as a simple-conjunction query ∧(m). An empty
// set yields True.
func (s *ConstraintSet) Conjunction() *Node {
	cs := s.Slice()
	if len(cs) == 0 {
		return True()
	}
	kids := make([]*Node, len(cs))
	for i, c := range cs {
		kids[i] = Leaf(c)
	}
	return And(kids...).Normalize()
}

// String renders the set as {c1, c2, ...} in canonical order.
func (s *ConstraintSet) String() string {
	cs := s.Slice()
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = c.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// SetOfConstraints collects the leaves of q into a set — the paper's C(Q).
func SetOfConstraints(q *Node) *ConstraintSet {
	s := NewConstraintSet()
	q.walkLeaves(func(c *Constraint) { s.Add(c) })
	return s
}
