package qtree

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchTree(n int) *Node {
	rng := rand.New(rand.NewSource(int64(n)))
	return genTree(rng, n)
}

func BenchmarkNormalize(b *testing.B) {
	for _, depth := range []int{3, 5, 7} {
		q := benchTree(depth)
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q.Normalize()
			}
		})
	}
}

func BenchmarkToDNF(b *testing.B) {
	for _, k := range []int{4, 8} {
		kids := make([]*Node, k)
		for i := range kids {
			kids[i] = Or(leaf(fmt.Sprintf("a%d", 2*i), "0"), leaf(fmt.Sprintf("a%d", 2*i+1), "1"))
		}
		q := And(kids...).Normalize()
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ToDNF(q)
			}
		})
	}
}

func BenchmarkDisjunctivize(b *testing.B) {
	conj := []*Node{
		Or(leaf("a", "0"), leaf("b", "0"), leaf("c", "0")),
		Or(leaf("d", "0"), leaf("e", "0")),
		leaf("f", "0"),
	}
	for i := 0; i < b.N; i++ {
		Disjunctivize(conj)
	}
}

func BenchmarkSimplify(b *testing.B) {
	q := Or(
		And(leaf("a", "0"), leaf("b", "0")),
		And(leaf("a", "0"), leaf("b", "0"), leaf("c", "0")),
		leaf("d", "0"),
		And(leaf("d", "0"), leaf("e", "0")),
	)
	for i := 0; i < b.N; i++ {
		Simplify(q)
	}
}

func BenchmarkCanonicalKey(b *testing.B) {
	q := benchTree(6)
	for i := 0; i < b.N; i++ {
		q.CanonicalKey()
	}
}
