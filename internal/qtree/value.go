package qtree

// Value is a typed constant that may appear on the right-hand side of a
// selection constraint. Concrete implementations live in internal/values
// (strings, ints, dates, text patterns, ranges, points, ...); qtree only
// needs identity and printing, so the interface is deliberately small.
type Value interface {
	// Kind returns a short type tag such as "string", "int", "date",
	// "pattern", "range", "point". Capability checks use it to validate
	// value formats against a target context.
	Kind() string
	// String renders the value in the paper's surface syntax, e.g.
	// "Clancy", 1997, May/97, java(near)jdk.
	String() string
	// Equal reports semantic equality with another value.
	Equal(Value) bool
}
