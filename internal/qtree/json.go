package qtree

import (
	"encoding/json"
	"fmt"
)

// The JSON representation of a query tree, used by the HTTP mediation
// service so that clients get structure rather than only surface text:
//
//	{"op":"and","kids":[
//	  {"constraint":{"attr":"ln","cmp":"=","value":{"kind":"string","text":"\"Clancy\""}}},
//	  {"op":"or","kids":[...]}]}
//
// Values are serialized by kind and surface text: the textual query
// language is the round-trip format (see internal/qparse), so JSON decoding
// of values is intentionally not provided — parse the "text" field.

type jsonNode struct {
	Op         string          `json:"op,omitempty"` // "and", "or", "true"
	Kids       []*Node         `json:"kids,omitempty"`
	Constraint *jsonConstraint `json:"constraint,omitempty"`
}

type jsonConstraint struct {
	Attr  string     `json:"attr"`
	Cmp   string     `json:"cmp"`
	Value *jsonValue `json:"value,omitempty"`
	RAttr string     `json:"rattr,omitempty"`
}

type jsonValue struct {
	Kind string `json:"kind"`
	Text string `json:"text"`
}

// MarshalJSON implements json.Marshaler.
func (n *Node) MarshalJSON() ([]byte, error) {
	switch n.Kind {
	case KindTrue:
		return json.Marshal(jsonNode{Op: "true"})
	case KindAnd:
		return json.Marshal(jsonNode{Op: "and", Kids: n.Kids})
	case KindOr:
		return json.Marshal(jsonNode{Op: "or", Kids: n.Kids})
	case KindLeaf:
		jc := &jsonConstraint{Attr: n.C.Attr.String(), Cmp: n.C.Op}
		if n.C.IsJoin() {
			jc.RAttr = n.C.RAttr.String()
		} else if n.C.Val != nil {
			jc.Value = &jsonValue{Kind: n.C.Val.Kind(), Text: n.C.Val.String()}
		}
		return json.Marshal(jsonNode{Constraint: jc})
	default:
		return nil, fmt.Errorf("qtree: cannot marshal node kind %v", n.Kind)
	}
}
