package boolex

import (
	"testing"

	"repro/internal/qparse"
	"repro/internal/qtree"
)

func TestEquivalentBasics(t *testing.T) {
	cases := []struct {
		p, q string
		want bool
	}{
		{`[a = 1] and [b = 1]`, `[b = 1] and [a = 1]`, true},
		{`[a = 1] and ([b = 1] or [c = 1])`, `([a = 1] and [b = 1]) or ([a = 1] and [c = 1])`, true},
		{`[a = 1]`, `[a = 1] or ([a = 1] and [b = 1])`, true}, // absorption
		{`[a = 1]`, `[b = 1]`, false},
		{`[a = 1] and [b = 1]`, `[a = 1] or [b = 1]`, false},
		{`TRUE`, `[a = 1] or TRUE`, true},
	}
	for _, c := range cases {
		got := MustEquivalent(qparse.MustParse(c.p), qparse.MustParse(c.q))
		if got != c.want {
			t.Errorf("Equivalent(%s, %s) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestSubsumesDirection(t *testing.T) {
	broad := qparse.MustParse(`[a = 1]`)
	narrow := qparse.MustParse(`[a = 1] and [b = 1]`)
	if !MustSubsumes(broad, narrow) {
		t.Error("a should subsume a∧b")
	}
	if MustSubsumes(narrow, broad) {
		t.Error("a∧b should not subsume a")
	}
	// True subsumes everything.
	if !MustSubsumes(qtree.True(), narrow) {
		t.Error("TRUE should subsume everything")
	}
	if MustSubsumes(narrow, qtree.True()) {
		t.Error("a∧b should not subsume TRUE")
	}
}

func TestAtomLimit(t *testing.T) {
	kids := make([]*qtree.Node, MaxAtoms+1)
	for i := range kids {
		kids[i] = qparse.MustParse(`[a` + itoa(i) + ` = 1]`)
	}
	big := qtree.AndOf(kids...)
	if _, err := Equivalent(big, big); err == nil {
		t.Error("expected atom-limit error")
	}
}

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return itoa(i/10) + itoa(i%10)
}

func TestAtoms(t *testing.T) {
	p := qparse.MustParse(`[a = 1] and [b = 1]`)
	q := qparse.MustParse(`[b = 1] or [c = 1]`)
	atoms := Atoms(p, q)
	if len(atoms) != 3 {
		t.Errorf("Atoms = %v, want 3 distinct", atoms)
	}
}

func TestEvalAssignment(t *testing.T) {
	q := qparse.MustParse(`([a = 1] or [b = 1]) and [c = 1]`)
	keyA := qparse.MustParse(`[a = 1]`).C.Key()
	keyC := qparse.MustParse(`[c = 1]`).C.Key()
	if !Eval(q, Assignment{keyA: true, keyC: true}) {
		t.Error("satisfying assignment rejected")
	}
	if Eval(q, Assignment{keyA: true}) {
		t.Error("c missing (false) but query satisfied")
	}
}
