// Package boolex provides Boolean-level semantics for constraint queries:
// evaluation under truth assignments to constraint atoms, and equivalence /
// subsumption testing by exhausting assignments. It treats each distinct
// constraint (by canonical key) as an independent propositional atom.
//
// Atom-level subsumption is sound but conservative for *semantic*
// subsumption (two different atoms may be semantically dependent); the
// library uses boolex to validate structural theorems — e.g. that Algorithm
// TDQM and Algorithm DNF produce logically equivalent results over the same
// emission atoms (Theorem 2) — and uses internal/engine for data-level
// subsumption (Definition 1).
package boolex

import (
	"fmt"
	"sort"

	"repro/internal/qtree"
)

// MaxAtoms bounds exhaustive assignment enumeration (2^MaxAtoms cases).
const MaxAtoms = 22

// Assignment maps constraint keys to truth values. Missing keys are false.
type Assignment map[string]bool

// Eval evaluates q under the assignment.
func Eval(q *qtree.Node, a Assignment) bool {
	switch q.Kind {
	case qtree.KindTrue:
		return true
	case qtree.KindLeaf:
		return a[q.C.Key()]
	case qtree.KindAnd:
		for _, k := range q.Kids {
			if !Eval(k, a) {
				return false
			}
		}
		return true
	case qtree.KindOr:
		for _, k := range q.Kids {
			if Eval(k, a) {
				return true
			}
		}
		return false
	default:
		panic("boolex: invalid node kind")
	}
}

// Atoms returns the sorted union of constraint keys in the given queries.
func Atoms(qs ...*qtree.Node) []string {
	set := make(map[string]bool)
	for _, q := range qs {
		for _, c := range q.Constraints() {
			set[c.Key()] = true
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Equivalent reports whether p and q evaluate identically under every truth
// assignment to their combined atoms. It returns an error if the atom count
// exceeds MaxAtoms.
func Equivalent(p, q *qtree.Node) (bool, error) {
	return forAll(p, q, func(ep, eq bool) bool { return ep == eq })
}

// Subsumes reports whether q ⊆ p at the Boolean level: every assignment
// satisfying q also satisfies p (p is "broader"). This matches the paper's
// "p subsumes q".
func Subsumes(p, q *qtree.Node) (bool, error) {
	return forAll(p, q, func(ep, eq bool) bool { return !eq || ep })
}

func forAll(p, q *qtree.Node, ok func(ep, eq bool) bool) (bool, error) {
	atoms := Atoms(p, q)
	if len(atoms) > MaxAtoms {
		return false, fmt.Errorf("boolex: %d atoms exceeds limit %d", len(atoms), MaxAtoms)
	}
	a := make(Assignment, len(atoms))
	n := uint(len(atoms))
	for bits := uint64(0); bits < 1<<n; bits++ {
		for i, k := range atoms {
			a[k] = bits&(1<<uint(i)) != 0
		}
		if !ok(Eval(p, a), Eval(q, a)) {
			return false, nil
		}
	}
	return true, nil
}

// MustEquivalent panics on atom overflow; for tests.
func MustEquivalent(p, q *qtree.Node) bool {
	ok, err := Equivalent(p, q)
	if err != nil {
		panic(err)
	}
	return ok
}

// MustSubsumes panics on atom overflow; for tests.
func MustSubsumes(p, q *qtree.Node) bool {
	ok, err := Subsumes(p, q)
	if err != nil {
		panic(err)
	}
	return ok
}
