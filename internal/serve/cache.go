package serve

import (
	"container/list"
	"sync"

	"repro/internal/mediator"
	"repro/internal/resilience"
)

// lruCache is a bounded, mutex-guarded LRU map of canonical query key →
// translation, optionally guarded by a TinyLFU admission sketch. Values are
// shared between callers and treated as immutable.
type lruCache struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List               // front = most recently used
	items     map[string]*list.Element // key → element whose Value is *lruEntry
	evictions uint64
	// admit, when non-nil, is the TinyLFU admission sketch: every Get
	// touches it (hits and misses both build frequency), and a full cache
	// only admits an insert whose estimated frequency strictly exceeds the
	// eviction victim's.
	admit    *resilience.Sketch
	rejected uint64
}

type lruEntry struct {
	key string
	val *mediator.Translation
}

func newLRU(capacity int, admission bool) *lruCache {
	c := &lruCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
	if admission {
		c.admit = resilience.NewSketch(capacity)
	}
	return c
}

// Get returns the cached translation for key, promoting it to most
// recently used. With admission on, every lookup — hit or miss — feeds the
// frequency sketch, so a recurring key that keeps missing accumulates the
// estimate it needs to eventually displace a colder resident.
func (c *lruCache) Get(key string) (*mediator.Translation, bool) {
	if c.admit != nil {
		c.admit.Touch(key)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Add inserts (or refreshes) key, evicting the least recently used entries
// beyond capacity. With admission on, a full cache refuses the insert when
// the candidate's estimated frequency does not strictly exceed the
// would-be victim's — the caller still gets its value, it just isn't
// cached — so one-off scan keys cannot evict the hot working set.
func (c *lruCache) Add(key string, v *mediator.Translation) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).val = v
		return
	}
	if c.admit != nil && c.ll.Len() >= c.cap {
		victim := c.ll.Back().Value.(*lruEntry).key
		if !c.admit.Admit(key, victim) {
			c.rejected++
			return
		}
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: v})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
		c.evictions++
	}
}

// Rejected returns the number of inserts refused by admission.
func (c *lruCache) Rejected() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rejected
}

// Len returns the number of resident entries.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Evictions returns the total number of entries evicted for capacity.
func (c *lruCache) Evictions() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// flightCall is one in-flight translation shared by concurrent callers.
type flightCall struct {
	done    chan struct{} // closed when val/err are set
	val     *mediator.Translation
	err     error
	waiters int // callers blocked on done; guarded by flightGroup.mu
}

// flightGroup collapses concurrent computations for the same key into a
// single execution — the singleflight pattern, hand-rolled because the
// module is stdlib-only. It suppresses cache stampedes: N concurrent misses
// for one canonical key run one translation.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

// Do runs fn at most once per key among concurrent callers and hands every
// caller the same result. shared is true for callers that waited on another
// caller's execution instead of running fn themselves.
func (g *flightGroup) Do(key string, fn func() (*mediator.Translation, error)) (v *mediator.Translation, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		c.waiters++
		g.mu.Unlock()
		<-c.done
		return c.val, c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, false
}
