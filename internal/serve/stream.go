package serve

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/engine"
	"repro/internal/mediator"
	"repro/internal/obs"
	"repro/internal/qtree"
	"repro/internal/stream"
)

// DefaultBuildBudget bounds the materialized build side of a streaming join
// (in tuples) when Config leaves BuildBudget unset. The probe side always
// streams; the budget is what keeps "bounded memory" honest for joins, whose
// build side has no streaming formulation.
const DefaultBuildBudget = 1 << 20

// ErrBuildBudget is returned by a streaming QueryJoin whose build side
// (the cross product of all sources but the probe) exceeds the configured
// BuildBudget. Callers can errors.Is for it and fall back to the
// materialized path or a narrower query.
var ErrBuildBudget = errors.New("serve: streaming join build side exceeds budget")

// streamMetrics wires the pipeline's callbacks to the server's registry:
// a total and per-shard emit counter, a live in-flight gauge with a
// high-water mark, and a merge-wait counter. One instance is shared by all
// requests; callbacks run on shard goroutines and the merging consumer.
func (s *Server) streamMetrics() *stream.Metrics {
	return &stream.Metrics{
		OnEmit: func(source string, shard int) {
			s.streamEmitted.Add(1)
			n := s.streamInFlight.Add(1)
			for {
				p := s.streamPeak.Load()
				if n <= p || s.streamPeak.CompareAndSwap(p, n) {
					break
				}
			}
			if cs := s.shardEmits[source]; shard < len(cs) {
				cs[shard].Inc()
			}
		},
		OnDeliver:   func() { s.streamInFlight.Add(-1) },
		OnMergeWait: func() { s.streamMergeWaits.Inc() },
		OnShardDone: func(source string, shard int, err error) {
			s.recordShardOutcome(source, err)
		},
	}
}

// streamOptions assembles one pipeline run's options from the server's
// configuration. Shard executors deliberately bypass the materialized
// path's worker-pool semaphore: the k-way merge needs one tuple from every
// shard before it can emit, so admission-controlling shards against each
// other could deadlock a single request against itself. The per-request
// memory bound (shards × buffer) is the streaming path's admission control.
func (s *Server) streamOptions(dedup bool) stream.Options {
	return stream.Options{
		Buffer:       s.streamBuf,
		ShardTimeout: s.timeout,
		Hook:         s.shardHook,
		Metrics:      s.streamMet,
		Dedup:        dedup,
	}
}

// sourceShards appends the shard work orders for one source to out:
// contiguous slices of its presorted universe, each evaluating the
// translated query with the source's evaluator and the given
// mediator-vocabulary filter inline. Shard indices are per-source (they
// name metrics and fault streams); global merge determinism comes from
// channel order in stream.Run, which follows append order here.
func (s *Server) sourceShards(st *mediator.SourceTranslation, filter *qtree.Node, out []stream.Shard) ([]stream.Shard, error) {
	sorted, ok := s.presorted[st.Source.Name]
	if !ok {
		return nil, fmt.Errorf("serve: no data for source %s", st.Source.Name)
	}
	acc := s.access[st.Source.Name] // nil when indexing is off
	base := 0
	for j, part := range sorted.Split(s.shards) {
		out = append(out, stream.Shard{
			Source:     st.Source.Name,
			Index:      j,
			Entries:    part,
			Query:      st.Query,
			Eval:       st.Source.Eval,
			Filter:     filter,
			FilterEval: s.med.Eval,
			Access:     acc,
			Base:       base,
		})
		base += len(part)
	}
	return out, nil
}

// streamUnion answers a union-style query on the streaming path: every
// source's shards feed the deterministic k-way merge with the branch filter
// applied inline, and the deduplicated merged stream is — by the pipeline's
// determinism contract — byte-identical in content and order to the
// relation the materialized Query/ExecuteUnion path produces.
func (s *Server) streamUnion(ctx context.Context, tr *mediator.Translation) (*engine.Relation, error) {
	s.streamReqs.Inc()
	var shards []stream.Shard
	var err error
	for i := range tr.Sources {
		st := &tr.Sources[i]
		shards, err = s.sourceShards(st, tr.BranchFilter(st), shards)
		if err != nil {
			return nil, err
		}
	}
	pipe := stream.Run(ctx, shards, s.streamOptions(true))
	defer pipe.Close()
	out := engine.NewRelation("result")
	for {
		e, ok := pipe.Next()
		if !ok {
			break
		}
		out.Tuples = append(out.Tuples, e.Tuple)
	}
	if err := pipe.Err(); err != nil {
		return nil, s.streamFail(err)
	}
	s.streamSpan(ctx, "union", len(shards), len(out.Tuples))
	s.accessSpan(ctx, tr)
	return out, nil
}

// streamSelect materializes one source's bare selection (no dedup, no
// filter) through the pipeline — the build side of a streaming join. budget
// caps the collected tuples; budget <= 0 means unbounded.
func (s *Server) streamSelect(ctx context.Context, st *mediator.SourceTranslation, budget int) (*engine.Relation, error) {
	shards, err := s.sourceShards(st, nil, nil)
	if err != nil {
		return nil, err
	}
	pipe := stream.Run(ctx, shards, s.streamOptions(false))
	defer pipe.Close()
	out := engine.NewRelation(st.Source.Name)
	for {
		e, ok := pipe.Next()
		if !ok {
			break
		}
		out.Tuples = append(out.Tuples, e.Tuple)
		if budget > 0 && len(out.Tuples) > budget {
			return nil, fmt.Errorf("serve: source %s build side over %d tuples: %w",
				st.Source.Name, budget, ErrBuildBudget)
		}
	}
	return out, pipe.Err()
}

// streamJoin answers a join-style query on the streaming path: the first
// n-1 sources are collected into a build relation under BuildBudget, and
// the last source streams as the probe side — each probe tuple is merged
// against every build tuple, glue- and filter-checked inline, and survivors
// are collected and sorted. Selection distributes over the product bag, so
// the result is byte-identical to QueryJoin/ExecuteJoin.
func (s *Server) streamJoin(ctx context.Context, tr *mediator.Translation) (*engine.Relation, error) {
	s.streamReqs.Inc()
	n := len(tr.Sources)
	if n == 0 {
		return engine.NewRelation("result"), nil
	}
	var build *engine.Relation
	for i := 0; i < n-1; i++ {
		// The budget applies while collecting: only tuples matching the
		// translated build-side query count (with indexing on, the shard
		// executors probe instead of scanning, so non-matching universe
		// tuples never even reach the pipeline), and an over-budget build
		// fails during the stream instead of after materializing it.
		sel, err := s.streamSelect(ctx, &tr.Sources[i], s.buildBudget)
		if err != nil {
			return nil, s.streamFail(err)
		}
		if build == nil {
			build = sel
		} else {
			build = engine.Product(build, sel)
		}
		if len(build.Tuples) > s.buildBudget {
			return nil, fmt.Errorf("serve: join build side after source %s: %d tuples over budget %d: %w",
				tr.Sources[i].Source.Name, len(build.Tuples), s.buildBudget, ErrBuildBudget)
		}
	}

	probe := &tr.Sources[n-1]
	shards, err := s.sourceShards(probe, nil, nil)
	if err != nil {
		return nil, err
	}
	pipe := stream.Run(ctx, shards, s.streamOptions(false))
	defer pipe.Close()
	out := engine.NewRelation("result")
	check := func(t engine.Tuple) error {
		if s.med.Glue != nil {
			ok, err := s.med.Eval.EvalQuery(s.med.Glue, t)
			if err != nil || !ok {
				return err
			}
		}
		ok, err := s.med.Eval.EvalQuery(tr.Filter, t)
		if err != nil || !ok {
			return err
		}
		out.Tuples = append(out.Tuples, t)
		return nil
	}
	for {
		e, ok := pipe.Next()
		if !ok {
			break
		}
		if build == nil {
			if err := check(e.Tuple); err != nil {
				return nil, err
			}
			continue
		}
		for _, bt := range build.Tuples {
			if err := check(bt.Merge(e.Tuple)); err != nil {
				return nil, err
			}
		}
	}
	if err := pipe.Err(); err != nil {
		return nil, s.streamFail(err)
	}
	sortRelation(out)
	s.streamSpan(ctx, "join", len(shards), len(out.Tuples))
	s.accessSpan(ctx, tr)
	return out, nil
}

// streamFail keeps the server's timeout accounting consistent across the
// two execution paths: a shard deadline surfaces in qmap_serve_timeouts
// just like a materialized per-source deadline would.
func (s *Server) streamFail(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		s.timeouts.Inc()
	}
	return err
}

// streamSpan emits the post-run summary span when the request context
// carries a tracer. The merge is single-threaded in the caller, so the
// tracer's single-writer contract holds.
func (s *Server) streamSpan(ctx context.Context, mode string, shards, tuples int) {
	t := obs.TracerFrom(ctx)
	if t == nil {
		return
	}
	sp := t.Start(obs.KindStream, mode)
	sp.Set("shards", int64(shards))
	sp.Set("tuples", int64(tuples))
	sp.Set("emitted", int64(s.streamEmitted.Load()))
	t.End()
}
