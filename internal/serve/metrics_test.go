package serve

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/qparse"
)

// TestStatsInvariantUnderConcurrency hammers a server from 16 goroutines and
// checks the cache accounting identity the registry re-base must preserve:
// every request resolves its translation exactly one way, so
// hits + misses + shared == requests.
func TestStatsInvariantUnderConcurrency(t *testing.T) {
	const goroutines = 16
	const perG = 200

	srv, _, _ := bookstoreServer(Config{CacheSize: 64, Workers: 8})
	ctx := context.Background()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				q := qparse.MustParse(mixedWorkload[(g+i)%len(mixedWorkload)])
				if _, err := srv.Query(ctx, q); err != nil {
					t.Errorf("query failed: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	st := srv.Stats()
	const total = goroutines * perG
	if st.Requests != total {
		t.Errorf("requests = %d, want %d", st.Requests, total)
	}
	if got := st.CacheHits + st.CacheMisses + st.CacheShared; got != st.Requests {
		t.Errorf("hits %d + misses %d + shared %d = %d, want requests %d",
			st.CacheHits, st.CacheMisses, st.CacheShared, got, st.Requests)
	}
	if st.InFlight != 0 {
		t.Errorf("in_flight = %d after all queries returned, want 0", st.InFlight)
	}
	if st.Errors != 0 || st.Timeouts != 0 {
		t.Errorf("errors = %d, timeouts = %d, want 0", st.Errors, st.Timeouts)
	}
	// Executions come from the latency histograms now: every request fans
	// out to both sources, so each source completed exactly `total` phases.
	for name, sc := range st.Sources {
		if sc.Executions != total {
			t.Errorf("source %s executions = %d, want %d", name, sc.Executions, total)
		}
		var sum uint64
		for _, n := range sc.LatencyBuckets {
			sum += n
		}
		if sum != sc.Executions {
			t.Errorf("source %s latency buckets sum to %d, executions %d", name, sum, sc.Executions)
		}
	}
}

// TestServerMetricsExposition checks that a served workload is visible on
// the server's registry in the exposition format and agrees with Stats().
func TestServerMetricsExposition(t *testing.T) {
	reg := obs.NewRegistry()
	srv, med, _ := bookstoreServer(Config{CacheSize: 16, Metrics: reg})
	med.Metrics = obs.NewTranslationMetrics(reg)
	if srv.Metrics() != reg {
		t.Fatal("Metrics() did not return the configured registry")
	}

	ctx := context.Background()
	q := qparse.MustParse(`[ln = "Clancy"] and [fn = "Tom"]`)
	for i := 0; i < 3; i++ {
		if _, err := srv.Query(ctx, q); err != nil {
			t.Fatal(err)
		}
	}

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseExposition(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("scrape does not parse: %v\n%s", err, buf.String())
	}
	byName := func(name string, labels ...string) (float64, bool) {
		for _, s := range samples {
			if s.Name != name {
				continue
			}
			match := true
			for i := 0; i+1 < len(labels); i += 2 {
				if s.Label(labels[i]) != labels[i+1] {
					match = false
					break
				}
			}
			if match {
				return s.Value, true
			}
		}
		return 0, false
	}

	st := srv.Stats()
	for _, check := range []struct {
		name string
		want float64
	}{
		{"qmap_serve_requests_total", float64(st.Requests)},
		{"qmap_cache_hits_total", float64(st.CacheHits)},
		{"qmap_cache_misses_total", float64(st.CacheMisses)},
		{"qmap_cache_entries", float64(st.CacheEntries)},
		{"qmap_plan_hits_total", float64(st.PlanHits)},
		{"qmap_plan_misses_total", float64(st.PlanMisses)},
		{"qmap_plan_entries", float64(st.PlanEntries)},
		{"qmap_serve_in_flight", 0},
	} {
		got, ok := byName(check.name)
		if !ok {
			t.Errorf("metric %s missing from scrape", check.name)
			continue
		}
		if got != check.want {
			t.Errorf("%s = %v, want %v", check.name, got, check.want)
		}
	}
	if v, ok := byName("qmap_source_latency_seconds_count", "source", "amazon"); !ok || v != float64(st.Sources["amazon"].Executions) {
		t.Errorf("amazon latency count = %v (present %v), want %d", v, ok, st.Sources["amazon"].Executions)
	}
	if v, ok := byName("qmap_source_latency_seconds_bucket", "source", "amazon", "le", "+Inf"); !ok || v != float64(st.Sources["amazon"].Executions) {
		t.Errorf("amazon +Inf bucket = %v (present %v), want %d", v, ok, st.Sources["amazon"].Executions)
	}
	// The mediator's rule-level counters share the registry (the spec label
	// is the mapping-knowledge name, K_Amazon): the cached repeats must not
	// re-count, so exactly one translation ran SCM.
	if v, ok := byName("qmap_scm_calls_total", "spec", "K_Amazon"); !ok || v != 1 {
		t.Errorf("qmap_scm_calls_total{spec=K_Amazon} = %v (present %v), want 1 (one uncached translation)", v, ok)
	}
}
