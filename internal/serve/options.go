package serve

import (
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mediator"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/stream"
)

// Option configures a Server at construction time; pass options to
// NewServer. Each option corresponds to one Config field, and
// NewServer(med, data) with no options is equivalent to
// New(med, data, Config{}).
type Option func(*Config)

// WithCacheSize bounds the translation cache in entries
// (DefaultCacheSize if n <= 0).
func WithCacheSize(n int) Option {
	return func(c *Config) { c.Cache.Size = n }
}

// WithWorkers bounds concurrently executing source selections across all
// requests (2×GOMAXPROCS if n <= 0).
func WithWorkers(n int) Option {
	return func(c *Config) { c.Workers = n }
}

// WithSourceTimeout bounds each per-source select+filter execution
// (no timeout if d == 0).
func WithSourceTimeout(d time.Duration) Option {
	return func(c *Config) { c.SourceTimeout = d }
}

// WithExecutor overrides the per-source selection phase
// (DefaultExecutor if nil).
func WithExecutor(exec SourceExecutor) Option {
	return func(c *Config) { c.Executor = exec }
}

// WithRegistry registers the server's metrics in reg instead of a private
// registry. A registry must back at most one server.
func WithRegistry(reg *obs.Registry) Option {
	return func(c *Config) { c.Metrics = reg }
}

// WithMatchCache installs mc as the shared cross-request matchings cache,
// overriding WithMatchCacheSize. Use it to share one cache between several
// servers over the same rule specs.
func WithMatchCache(mc *core.MatchCache) Option {
	return func(c *Config) { c.Cache.MatchCache = mc }
}

// WithMatchCacheSize bounds the shared matchings cache built by the server
// (core.DefaultMatchCacheSize if n == 0); a negative n disables
// cross-request matching reuse entirely.
func WithMatchCacheSize(n int) Option {
	return func(c *Config) { c.Cache.MatchCacheSize = n }
}

// WithPlan installs p as the shared cross-request translation plan,
// overriding WithPlanSize. Use it to share one plan between several servers
// over the same rule specs.
func WithPlan(p *core.Plan) Option {
	return func(c *Config) { c.Cache.Plan = p }
}

// WithPlanSize bounds the shared translation plan built by the server
// (core.DefaultPlanSize if n == 0); a negative n disables cross-request
// translation-plan reuse entirely.
func WithPlanSize(n int) Option {
	return func(c *Config) { c.Cache.PlanSize = n }
}

// WithStreaming enables the tuple-at-a-time execution pipeline with the
// given shard count per source (1 if shards <= 0). Answers are identical to
// the materialized path; per-request memory is bounded by shards × buffer.
func WithStreaming(shards int) Option {
	return func(c *Config) { c.Streaming.Enabled = true; c.Streaming.Shards = shards }
}

// WithStreamBuffer sets the per-shard channel capacity on the streaming
// path (stream.DefaultBuffer if n <= 0).
func WithStreamBuffer(n int) Option {
	return func(c *Config) { c.Streaming.Buffer = n }
}

// WithBuildBudget bounds the materialized build side of a streaming join in
// tuples (DefaultBuildBudget if n <= 0).
func WithBuildBudget(n int) Option {
	return func(c *Config) { c.Streaming.BuildBudget = n }
}

// WithShardHook runs h at the start of every shard execution on the
// streaming path — the per-shard seam for fault injection and admission
// checks.
func WithShardHook(h stream.Hook) Option {
	return func(c *Config) { c.Streaming.Hook = h }
}

// WithIndex builds a cost-based access path per source at construction time
// and routes both execution paths through selectivity-ranked index probes.
// Answers are byte-identical to the scan paths.
func WithIndex(on bool) Option {
	return func(c *Config) { c.Index = on }
}

// WithChainDebug switches the mediator's chain-backed sources to sequential
// hop-by-hop translation through the original specs (differential-checking
// mode; filtered answers are identical to the composed path's).
func WithChainDebug(on bool) Option {
	return func(c *Config) { c.ChainDebug = on }
}

// WithCacheAdmission puts a TinyLFU frequency sketch in front of the
// translation cache and the shared matchings cache: full caches only admit
// entries estimated more frequent than their eviction victim, so scan-like
// traffic cannot wash out the hot working set. Answers are unchanged.
func WithCacheAdmission(on bool) Option {
	return func(c *Config) { c.Cache.Admission = on }
}

// WithBreaker enables per-source circuit breakers with the package-default
// sizing (window 32, ratio 0.5, min samples 8, open 1s, 1 probe). A source
// whose breaker is open fails its requests fast with the typed
// ErrBreakerOpen — never a silently smaller answer.
func WithBreaker(on bool) Option {
	return func(c *Config) { c.Resilience.Breaker = on }
}

// WithBreakerConfig enables per-source circuit breakers sized by bc (zero
// fields take the package defaults).
func WithBreakerConfig(bc resilience.BreakerConfig) Option {
	return func(c *Config) { c.Resilience.Breaker = true; c.Resilience.BreakerConfig = bc }
}

// WithRetries allows up to n total executions per source request (the
// first included; n <= 1 disables retry), re-running only typed transient
// faults with full-jitter exponential backoff.
func WithRetries(n int) Option {
	return func(c *Config) { c.Resilience.Retries = n }
}

// WithRetryConfig tunes the backoff between retry attempts (zero fields
// take the package defaults). Pair with WithRetries, which sets the
// attempt bound.
func WithRetryConfig(rc resilience.RetryConfig) Option {
	return func(c *Config) { c.Resilience.RetryConfig = rc }
}

// WithHedge launches a duplicate of a straggling source execution after
// that source's tracked latency-quantile delay and takes the first result,
// cancelling the loser. Materialized fan-out only; see
// ResilienceConfig.Hedge.
func WithHedge(on bool) Option {
	return func(c *Config) { c.Resilience.Hedge = on }
}

// WithHedgeConfig enables hedging tuned by hc (zero fields take the
// package defaults: p95 delay, 1ms floor, 1s cap).
func WithHedgeConfig(hc resilience.HedgeConfig) Option {
	return func(c *Config) { c.Resilience.Hedge = true; c.Resilience.HedgeConfig = hc }
}

// WithResilienceSeed seeds the retry jitter stream, making backoff
// schedules replayable (a fixed default seed if 0).
func WithResilienceSeed(seed int64) Option {
	return func(c *Config) { c.Resilience.Seed = seed }
}

// WithResilience replaces the whole resilience group at once — the Config
// form for callers that already hold a ResilienceConfig.
func WithResilience(rc ResilienceConfig) Option {
	return func(c *Config) { c.Resilience = rc }
}

// NewServer is the options form of New: it applies opts to a zero Config
// and builds the server.
func NewServer(med *mediator.Mediator, data map[string]*engine.Relation, opts ...Option) *Server {
	var cfg Config
	for _, opt := range opts {
		opt(&cfg)
	}
	return New(med, data, cfg)
}
