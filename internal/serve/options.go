package serve

import (
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mediator"
	"repro/internal/obs"
	"repro/internal/stream"
)

// Option configures a Server at construction time; pass options to
// NewServer. Each option corresponds to one Config field, and
// NewServer(med, data) with no options is equivalent to
// New(med, data, Config{}).
type Option func(*Config)

// WithCacheSize bounds the translation cache in entries
// (DefaultCacheSize if n <= 0).
func WithCacheSize(n int) Option {
	return func(c *Config) { c.CacheSize = n }
}

// WithWorkers bounds concurrently executing source selections across all
// requests (2×GOMAXPROCS if n <= 0).
func WithWorkers(n int) Option {
	return func(c *Config) { c.Workers = n }
}

// WithSourceTimeout bounds each per-source select+filter execution
// (no timeout if d == 0).
func WithSourceTimeout(d time.Duration) Option {
	return func(c *Config) { c.SourceTimeout = d }
}

// WithExecutor overrides the per-source selection phase
// (DefaultExecutor if nil).
func WithExecutor(exec SourceExecutor) Option {
	return func(c *Config) { c.Executor = exec }
}

// WithRegistry registers the server's metrics in reg instead of a private
// registry. A registry must back at most one server.
func WithRegistry(reg *obs.Registry) Option {
	return func(c *Config) { c.Metrics = reg }
}

// WithMatchCache installs mc as the shared cross-request matchings cache,
// overriding WithMatchCacheSize. Use it to share one cache between several
// servers over the same rule specs.
func WithMatchCache(mc *core.MatchCache) Option {
	return func(c *Config) { c.MatchCache = mc }
}

// WithMatchCacheSize bounds the shared matchings cache built by the server
// (core.DefaultMatchCacheSize if n == 0); a negative n disables
// cross-request matching reuse entirely.
func WithMatchCacheSize(n int) Option {
	return func(c *Config) { c.MatchCacheSize = n }
}

// WithPlan installs p as the shared cross-request translation plan,
// overriding WithPlanSize. Use it to share one plan between several servers
// over the same rule specs.
func WithPlan(p *core.Plan) Option {
	return func(c *Config) { c.Plan = p }
}

// WithPlanSize bounds the shared translation plan built by the server
// (core.DefaultPlanSize if n == 0); a negative n disables cross-request
// translation-plan reuse entirely.
func WithPlanSize(n int) Option {
	return func(c *Config) { c.PlanSize = n }
}

// WithStreaming enables the tuple-at-a-time execution pipeline with the
// given shard count per source (1 if shards <= 0). Answers are identical to
// the materialized path; per-request memory is bounded by shards × buffer.
func WithStreaming(shards int) Option {
	return func(c *Config) { c.Stream = true; c.Shards = shards }
}

// WithStreamBuffer sets the per-shard channel capacity on the streaming
// path (stream.DefaultBuffer if n <= 0).
func WithStreamBuffer(n int) Option {
	return func(c *Config) { c.StreamBuffer = n }
}

// WithBuildBudget bounds the materialized build side of a streaming join in
// tuples (DefaultBuildBudget if n <= 0).
func WithBuildBudget(n int) Option {
	return func(c *Config) { c.BuildBudget = n }
}

// WithShardHook runs h at the start of every shard execution on the
// streaming path — the per-shard seam for fault injection and admission
// checks.
func WithShardHook(h stream.Hook) Option {
	return func(c *Config) { c.ShardHook = h }
}

// WithIndex builds a cost-based access path per source at construction time
// and routes both execution paths through selectivity-ranked index probes.
// Answers are byte-identical to the scan paths.
func WithIndex(on bool) Option {
	return func(c *Config) { c.Index = on }
}

// WithChainDebug switches the mediator's chain-backed sources to sequential
// hop-by-hop translation through the original specs (differential-checking
// mode; filtered answers are identical to the composed path's).
func WithChainDebug(on bool) Option {
	return func(c *Config) { c.ChainDebug = on }
}

// NewServer is the options form of New: it applies opts to a zero Config
// and builds the server.
func NewServer(med *mediator.Mediator, data map[string]*engine.Relation, opts ...Option) *Server {
	var cfg Config
	for _, opt := range opts {
		opt(&cfg)
	}
	return New(med, data, cfg)
}
