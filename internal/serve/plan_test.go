package serve

import (
	"context"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/qparse"
	"repro/internal/qtree"
)

// TestServePlanGrid re-runs the mixed workload against the sequential
// plan-free mediator baseline across shared-translation-plan on/off and
// translation parallelism 0/4: the plan must be answer-invariant, alone and
// combined with the worker pool, and invisible when disabled.
func TestServePlanGrid(t *testing.T) {
	baseMed, baseData := newBookstoreMediator()
	qs := make([]*qtree.Node, len(mixedWorkload))
	want := make([]string, len(mixedWorkload))
	for i, s := range mixedWorkload {
		qs[i] = qparse.MustParse(s)
		rel, _, err := baseMed.ExecuteUnion(qs[i], baseData)
		if err != nil {
			t.Fatalf("sequential baseline %q: %v", s, err)
		}
		want[i] = render(rel)
	}

	for _, g := range []struct {
		name string
		plan int // Config.PlanSize
		par  int // mediator.Parallelism
	}{
		{"plan-off/seq", -1, 0},
		{"plan-on/seq", 0, 0},
		{"plan-off/par4", -1, 4},
		{"plan-on/par4", 0, 4},
	} {
		t.Run(g.name, func(t *testing.T) {
			med, data := newBookstoreMediator()
			med.Parallelism = g.par
			// CacheSize 1 keeps the translation cache from absorbing the
			// workload, so repeated queries actually consult the plan.
			srv := New(med, data, Config{CacheSize: 1, PlanSize: g.plan})
			if (srv.Plan() != nil) != (g.plan >= 0) {
				t.Fatalf("Plan() nil-ness wrong for PlanSize %d", g.plan)
			}

			ctx := context.Background()
			const goroutines = 8
			var wg sync.WaitGroup
			for w := 0; w < goroutines; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 3*len(qs); i++ {
						k := (w + i) % len(qs)
						rel, err := srv.Query(ctx, qs[k])
						if err != nil {
							t.Errorf("Query(%q): %v", mixedWorkload[k], err)
							return
						}
						if render(rel) != want[k] {
							t.Errorf("Query(%q) diverged from plan-free sequential baseline", mixedWorkload[k])
							return
						}
					}
				}(w)
			}
			wg.Wait()

			st := srv.Stats()
			if g.plan < 0 {
				if st.PlanHits != 0 || st.PlanMisses != 0 || st.PlanEntries != 0 {
					t.Errorf("disabled plan reported activity: %+v", st)
				}
			} else if st.PlanHits == 0 {
				t.Error("enabled plan recorded no hits across a repeated workload")
			}
		})
	}
}

// TestServeKeepsMediatorPlan pins the install precedence: a mediator that
// already carries a translation plan keeps it, and the server exposes that
// same plan.
func TestServeKeepsMediatorPlan(t *testing.T) {
	pl := core.NewPlan(64)
	med, data := newBookstoreMediator()
	med.Plan = pl
	srv := New(med, data, Config{})
	if srv.Plan() != pl {
		t.Error("New replaced the mediator's existing translation plan")
	}

	med2, data2 := newBookstoreMediator()
	srv2 := New(med2, data2, Config{})
	if srv2.Plan() == nil || med2.Plan != srv2.Plan() {
		t.Error("New did not install its default plan on the mediator")
	}
}
