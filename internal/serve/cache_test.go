package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mediator"
)

func tr() *mediator.Translation { return &mediator.Translation{} }

func TestLRUEvictsOldest(t *testing.T) {
	c := newLRU(2, false)
	a, b, d := tr(), tr(), tr()
	c.Add("a", a)
	c.Add("b", b)
	if _, ok := c.Get("a"); !ok { // promote a; b becomes LRU
		t.Fatal("a missing before eviction")
	}
	c.Add("d", d)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted as least recently used")
	}
	if got, ok := c.Get("a"); !ok || got != a {
		t.Error("a should have survived eviction")
	}
	if got, ok := c.Get("d"); !ok || got != d {
		t.Error("d should be resident")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	if c.Evictions() != 1 {
		t.Errorf("Evictions = %d, want 1", c.Evictions())
	}
}

func TestLRURefreshDoesNotGrow(t *testing.T) {
	c := newLRU(2, false)
	v1, v2 := tr(), tr()
	c.Add("a", v1)
	c.Add("a", v2)
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1 after refresh", c.Len())
	}
	if got, _ := c.Get("a"); got != v2 {
		t.Error("refresh should replace the value")
	}
}

func TestFlightGroupCollapsesConcurrentCalls(t *testing.T) {
	var g flightGroup
	var calls atomic.Int32
	running := make(chan struct{})
	release := make(chan struct{})
	want := tr()

	results := make(chan *mediator.Translation, 16)
	sharedCount := atomic.Int32{}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, err, _ := g.Do("k", func() (*mediator.Translation, error) {
			calls.Add(1)
			close(running)
			<-release
			return want, nil
		})
		if err != nil {
			t.Error(err)
		}
		results <- v
	}()
	<-running // the computation is in flight; joiners must wait on it
	for i := 0; i < 15; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err, shared := g.Do("k", func() (*mediator.Translation, error) {
				calls.Add(1)
				return tr(), nil
			})
			if err != nil {
				t.Error(err)
			}
			if shared {
				sharedCount.Add(1)
			}
			results <- v
		}()
	}
	// Release only once all 15 joiners are blocked on the in-flight call,
	// so the collapse assertion is deterministic.
	for deadline := time.Now().Add(10 * time.Second); ; {
		g.mu.Lock()
		w := 0
		if c := g.m["k"]; c != nil {
			w = c.waiters
		}
		g.mu.Unlock()
		if w >= 15 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out with %d of 15 joiners blocked", w)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	close(results)

	if calls.Load() != 1 {
		t.Errorf("fn ran %d times, want 1", calls.Load())
	}
	if sharedCount.Load() != 15 {
		t.Errorf("shared callers = %d, want 15", sharedCount.Load())
	}
	for v := range results {
		if v != want {
			t.Error("caller received a different translation instance")
		}
	}
}

func TestFlightGroupErrorsShared(t *testing.T) {
	var g flightGroup
	boom := errors.New("boom")
	_, err, _ := g.Do("k", func() (*mediator.Translation, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
	// The key is released after completion: a later call runs fn again.
	v, err, shared := g.Do("k", func() (*mediator.Translation, error) { return tr(), nil })
	if err != nil || v == nil || shared {
		t.Errorf("retry after error = (%v, %v, shared=%v)", v, err, shared)
	}
}
