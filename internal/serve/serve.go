// Package serve wraps the mediation pipeline behind a production-shaped
// serving layer, turning the single-threaded mediator of Section 2 into a
// concurrent service:
//
//   - a canonical translation cache: translations are pure functions of
//     (canonical query, source specs), so queries that are equivalent under
//     ∧/∨ commutativity, associativity, and idempotence share one bounded-LRU
//     entry keyed by qtree's canonical form, and concurrent identical misses
//     are collapsed singleflight-style into one computation;
//   - concurrent per-source fan-out: the per-source select+filter phases of
//     union- and join-style integration run in parallel goroutines under a
//     bounded worker pool (admission control via semaphore) with an optional
//     per-source timeout, and results are merged in deterministic source
//     order so answers are identical to the sequential Execute* paths;
//   - a stats layer: lock-free counters (requests, cache hits/misses/
//     evictions, singleflight suppressions, timeouts, per-source latency
//     histograms) backed by an obs.Registry, exposed both as a Stats
//     snapshot and in the Prometheus text format via Server.Metrics().
package serve

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mediator"
	"repro/internal/obs"
	"repro/internal/qtree"
	"repro/internal/resilience"
	"repro/internal/stream"
)

// DefaultCacheSize is the translation-cache capacity used when Config (or
// NewCachingTranslator) leaves it unset.
const DefaultCacheSize = 1024

// CachingTranslator memoizes mediator translations keyed by the canonical
// form of the query (qtree.Node.CanonicalKey): permuted-but-equivalent
// queries compute once and then hit. Misses for the same key are collapsed
// singleflight-style, so a stampede of N concurrent identical queries runs
// one translation. It is safe for concurrent use.
//
// Cached *mediator.Translation values are shared between callers and must
// be treated as immutable.
type CachingTranslator struct {
	translate func(*qtree.Node) (*mediator.Translation, error)
	cache     *lruCache
	flight    flightGroup

	hits, misses, shared obs.Counter
}

// NewCachingTranslator wraps med.Translate in a canonical LRU cache holding
// up to capacity translations (DefaultCacheSize if capacity <= 0).
func NewCachingTranslator(med *mediator.Mediator, capacity int) *CachingTranslator {
	return newCachingTranslator(med.Translate, capacity, false)
}

func newCachingTranslator(fn func(*qtree.Node) (*mediator.Translation, error), capacity int, admission bool) *CachingTranslator {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &CachingTranslator{translate: fn, cache: newLRU(capacity, admission)}
}

// Translate returns the translation of q, computing it at most once per
// canonical equivalence class while the entry stays resident. Errors are
// not cached.
func (ct *CachingTranslator) Translate(q *qtree.Node) (*mediator.Translation, error) {
	key := q.CanonicalKey()
	if tr, ok := ct.cache.Get(key); ok {
		ct.hits.Inc()
		return tr, nil
	}
	tr, err, shared := ct.flight.Do(key, func() (*mediator.Translation, error) {
		tr, err := ct.translate(q)
		if err != nil {
			return nil, err
		}
		ct.cache.Add(key, tr)
		return tr, nil
	})
	if shared {
		ct.shared.Inc()
	} else {
		ct.misses.Inc()
	}
	return tr, err
}

// Hits returns the number of lookups served from the resident cache.
func (ct *CachingTranslator) Hits() uint64 { return ct.hits.Value() }

// Misses returns the number of translations actually computed.
func (ct *CachingTranslator) Misses() uint64 { return ct.misses.Value() }

// Shared returns the number of duplicate concurrent misses collapsed onto
// another caller's in-flight computation.
func (ct *CachingTranslator) Shared() uint64 { return ct.shared.Value() }

// Len returns the number of resident cache entries.
func (ct *CachingTranslator) Len() int { return ct.cache.Len() }

// Evictions returns the number of entries evicted for capacity.
func (ct *CachingTranslator) Evictions() uint64 { return ct.cache.Evictions() }

// AdmissionRejected returns the number of inserts the TinyLFU admission
// policy refused (always 0 without admission).
func (ct *CachingTranslator) AdmissionRejected() uint64 { return ct.cache.Rejected() }

// SourceExecutor runs one source's native selection phase: evaluate the
// translated query q over the source's relation rel with the source's
// evaluator ev, using ix (may be nil) to accelerate equality probes and acc
// (may be nil) for full cost-based access-path selection. Custom executors
// wrap DefaultExecutor to add fault injection, tracing, or remote
// transports; they must honor ctx, whose deadline carries the server's
// per-source timeout.
type SourceExecutor func(ctx context.Context, source string, rel *engine.Relation, q *qtree.Node, ev *engine.Evaluator, ix engine.IndexSet, acc *engine.Access) (*engine.Relation, error)

// DefaultExecutor is the in-memory selection phase: a cost-based
// access-path select when the source has an Access, an indexed select when
// it has equality indexes, a scan otherwise.
func DefaultExecutor(ctx context.Context, _ string, rel *engine.Relation, q *qtree.Node, ev *engine.Evaluator, ix engine.IndexSet, acc *engine.Access) (*engine.Relation, error) {
	if acc != nil {
		return rel.SelectAccess(ctx, q, ev, acc)
	}
	if ix != nil {
		return rel.SelectIndexed(q, ev, ix)
	}
	return rel.Select(q, ev)
}

// Server serves mediated queries concurrently: cached translation, parallel
// per-source execution under admission control, deterministic merging, and
// atomic stats. It is safe for concurrent use; the mediator, its sources,
// and the data relations must not be mutated while the server is live.
type Server struct {
	med     *mediator.Mediator
	data    map[string]*engine.Relation
	tr      *CachingTranslator
	mc      *core.MatchCache
	pl      *core.Plan
	sem     chan struct{}
	workers int
	timeout time.Duration
	exec    SourceExecutor

	stream      bool
	shards      int
	streamBuf   int
	buildBudget int
	shardHook   stream.Hook
	presorted   map[string]*stream.Sorted
	streamMet   *stream.Metrics
	// access holds each source's cost-based access path when Config.Index
	// is on: built over the presorted universe on the streaming path (so
	// probe positions align with shard slices) and over the raw data
	// relation otherwise. Nil map when indexing is off.
	access map[string]*engine.Access

	reg      *obs.Registry
	requests *obs.Counter
	inFlight *obs.Gauge
	timeouts *obs.Counter
	errors   *obs.Counter
	sources  map[string]*sourceCounters

	streamReqs       *obs.Counter
	streamMergeWaits *obs.Counter
	streamEmitted    atomic.Uint64
	streamInFlight   atomic.Int64
	streamPeak       atomic.Int64
	shardEmits       map[string][]*obs.Counter

	// Resilience layer (nil/zero when ResilienceConfig is all-off).
	resCfg        ResilienceConfig
	retrier       *resilience.Retrier
	res           map[string]*sourceResilience
	hedgeLaunched *obs.Counter
	hedgeWon      *obs.Counter
	retriesCtr    *obs.Counter
}

// New returns a server over med and the per-source data relations. data
// maps source name → that source's universe relation, as in the mediator's
// Execute* methods.
//
// Unless disabled (MatchCacheSize < 0), New installs a shared cross-request
// matchings cache on the mediator (med.MatchCache) so distinct requests
// reuse SCM matching work; a cache the mediator already carries is kept.
// Likewise, unless disabled (PlanSize < 0), New installs a shared
// translation plan on the mediator (med.Plan) so recurring query shapes
// replay precomputed TDQM/PSafe/EDNF/SCM fragments.
func New(med *mediator.Mediator, data map[string]*engine.Relation, cfg Config) *Server {
	cfg = cfg.normalized()
	workers := cfg.Workers
	if workers <= 0 {
		workers = 2 * runtime.GOMAXPROCS(0)
	}
	exec := cfg.Executor
	if exec == nil {
		exec = DefaultExecutor
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	mc := cfg.Cache.MatchCache
	if mc == nil && cfg.Cache.MatchCacheSize >= 0 {
		mc = core.NewMatchCacheAdmission(cfg.Cache.MatchCacheSize, cfg.Cache.Admission)
	}
	if med.MatchCache != nil {
		mc = med.MatchCache
	} else if mc != nil {
		med.MatchCache = mc
	}
	pl := cfg.Cache.Plan
	if pl == nil && cfg.Cache.PlanSize >= 0 {
		pl = core.NewPlan(cfg.Cache.PlanSize)
	}
	if med.Plan != nil {
		pl = med.Plan
	} else if pl != nil {
		med.Plan = pl
	}
	if cfg.ChainDebug {
		med.ChainDebug = true
	}
	shards := cfg.Streaming.Shards
	if shards <= 0 {
		shards = 1
	}
	streamBuf := cfg.Streaming.Buffer
	if streamBuf <= 0 {
		streamBuf = stream.DefaultBuffer
	}
	budget := cfg.Streaming.BuildBudget
	if budget <= 0 {
		budget = DefaultBuildBudget
	}
	s := &Server{
		med:     med,
		data:    data,
		tr:      newCachingTranslator(med.Translate, cfg.Cache.Size, cfg.Cache.Admission),
		mc:      mc,
		pl:      pl,
		sem:     make(chan struct{}, workers),
		workers: workers,
		timeout: cfg.SourceTimeout,
		exec:    exec,
		reg:     reg,
		sources: make(map[string]*sourceCounters, len(med.Sources)),

		stream:      cfg.Streaming.Enabled,
		shards:      shards,
		streamBuf:   streamBuf,
		buildBudget: budget,
		resCfg:      cfg.Resilience,
	}
	s.initResilience(cfg.Resilience)
	s.shardHook = s.wrapShardHook(cfg.Streaming.Hook)
	if cfg.Streaming.Enabled {
		s.presorted = make(map[string]*stream.Sorted, len(data))
		for name, rel := range data {
			s.presorted[name] = stream.Presort(rel)
		}
	}
	if cfg.Index {
		s.access = make(map[string]*engine.Access, len(data))
		for name, rel := range data {
			if cfg.Streaming.Enabled {
				// The streaming executors probe in presorted position
				// space, so the access path must be built over the
				// presorted universe, not the raw relation.
				rel = s.presorted[name].Relation()
			}
			s.access[name] = engine.BuildAccess(rel)
		}
	}
	s.requests = reg.Counter("qmap_serve_requests_total",
		"Translate and Query/QueryJoin calls.")
	s.errors = reg.Counter("qmap_serve_errors_total",
		"Requests that returned an error.")
	s.timeouts = reg.Counter("qmap_serve_timeouts_total",
		"Per-source executions cut off by a deadline.")
	s.inFlight = reg.Gauge("qmap_serve_in_flight",
		"Query/QueryJoin calls currently executing.")
	reg.RegisterCounter("qmap_cache_hits_total",
		"Translations served from the resident cache.", &s.tr.hits)
	reg.RegisterCounter("qmap_cache_misses_total",
		"Translations actually computed.", &s.tr.misses)
	reg.RegisterCounter("qmap_cache_shared_total",
		"Duplicate concurrent misses collapsed singleflight-style.", &s.tr.shared)
	reg.GaugeFunc("qmap_cache_entries",
		"Resident translation-cache entries.",
		func() float64 { return float64(s.tr.Len()) })
	reg.CounterFunc("qmap_cache_evictions_total",
		"Translation-cache entries evicted for capacity.",
		func() float64 { return float64(s.tr.Evictions()) })
	if mc != nil {
		reg.CounterFunc("qmap_matchcache_hits_total",
			"Matching lookups served from the shared cross-request cache.",
			func() float64 { return float64(mc.Stats().Hits) })
		reg.CounterFunc("qmap_matchcache_misses_total",
			"Matching lookups that derived fresh matchings (incl. traced bypasses).",
			func() float64 { return float64(mc.Stats().Misses) })
		reg.CounterFunc("qmap_matchcache_evictions_total",
			"Shared matchings-cache entries evicted for capacity.",
			func() float64 { return float64(mc.Stats().Evictions) })
		reg.GaugeFunc("qmap_matchcache_entries",
			"Resident shared matchings-cache entries.",
			func() float64 { return float64(mc.Len()) })
	}
	if pl != nil {
		reg.CounterFunc("qmap_plan_hits_total",
			"Translation fragments replayed from the shared plan.",
			func() float64 { return float64(pl.Stats().Hits) })
		reg.CounterFunc("qmap_plan_misses_total",
			"Plan lookups that ran the algorithm (incl. traced bypasses).",
			func() float64 { return float64(pl.Stats().Misses) })
		reg.CounterFunc("qmap_plan_evictions_total",
			"Shared translation-plan entries evicted for capacity.",
			func() float64 { return float64(pl.Stats().Evictions) })
		reg.GaugeFunc("qmap_plan_entries",
			"Resident shared translation-plan entries.",
			func() float64 { return float64(pl.Len()) })
	}
	if cfg.Index {
		reg.CounterFunc("qmap_index_probes_total",
			"Index probes executed by the access-path planner (one per planned disjunct).",
			func() float64 { return float64(s.accessStats().Probes) })
		reg.CounterFunc("qmap_index_fallbacks_total",
			"Selections answered by a full scan because no sound probe existed.",
			func() float64 { return float64(s.accessStats().Fallbacks) })
		reg.CounterFunc("qmap_index_scanned_tuples_total",
			"Tuples evaluated by selections: probe candidates when indexed, whole universes on fallback.",
			func() float64 { return float64(s.accessStats().Scanned) })
	}
	s.streamReqs = reg.Counter("qmap_stream_requests_total",
		"Requests answered by the streaming pipeline.")
	s.streamMergeWaits = reg.Counter("qmap_stream_merge_waits_total",
		"Times the k-way merge blocked waiting for a shard to produce.")
	reg.CounterFunc("qmap_stream_emitted_total",
		"Tuples emitted by shard executors across all sources.",
		func() float64 { return float64(s.streamEmitted.Load()) })
	reg.GaugeFunc("qmap_stream_in_flight",
		"Tuples currently in flight in streaming pipelines (buffered or in a sender's hand).",
		func() float64 { return float64(s.streamInFlight.Load()) })
	reg.GaugeFunc("qmap_stream_peak_in_flight",
		"High-water mark of in-flight streaming tuples (peak buffer occupancy).",
		func() float64 { return float64(s.streamPeak.Load()) })
	if cfg.Streaming.Enabled {
		s.shardEmits = make(map[string][]*obs.Counter, len(med.Sources))
		for _, src := range med.Sources {
			cs := make([]*obs.Counter, shards)
			for j := range cs {
				cs[j] = reg.Counter("qmap_stream_shard_emitted_total",
					"Tuples emitted by one shard executor.",
					"source", src.Name, "shard", strconv.Itoa(j))
			}
			s.shardEmits[src.Name] = cs
		}
	}
	s.hedgeLaunched = reg.Counter("qmap_hedge_launched_total",
		"Hedged source attempts launched after the latency-quantile delay.")
	s.hedgeWon = reg.Counter("qmap_hedge_won_total",
		"Hedged attempts whose result was the one returned.")
	s.retriesCtr = reg.Counter("qmap_retry_total",
		"Source execution retries after typed transient faults.")
	reg.CounterFunc("qmap_breaker_trips_total",
		"Circuit-breaker transitions to the open state across all sources.",
		func() float64 { return float64(s.breakerTrips()) })
	reg.CounterFunc("qmap_admission_rejected_total",
		"Cache inserts rejected by the TinyLFU admission policy (translation and matchings caches).",
		func() float64 { return float64(s.admissionRejected()) })
	s.streamMet = s.streamMetrics()
	for _, src := range med.Sources {
		s.sources[src.Name] = &sourceCounters{
			timeouts: reg.Counter("qmap_source_timeouts_total",
				"Source executions abandoned to a deadline.", "source", src.Name),
			lat: reg.Histogram("qmap_source_latency_seconds",
				"Completed source select+filter latency in seconds.",
				LatencyBounds(), "source", src.Name),
		}
		name := src.Name
		reg.GaugeFunc("qmap_breaker_state",
			"Circuit-breaker state per source: 0 closed, 1 open, 2 half-open.",
			func() float64 { return float64(s.breakerState(name)) },
			"source", name)
	}
	return s
}

// accessStats sums the cumulative access-path counters across all sources.
// Zero when indexing is off.
func (s *Server) accessStats() engine.AccessStats {
	var out engine.AccessStats
	for _, acc := range s.access {
		st := acc.Stats()
		out.Probes += st.Probes
		out.Fallbacks += st.Fallbacks
		out.Scanned += st.Scanned
	}
	return out
}

// Access returns the named source's cost-based access path, or nil when
// indexing is off (or the source is unknown).
func (s *Server) Access(source string) *engine.Access { return s.access[source] }

// Translator returns the server's translation cache.
func (s *Server) Translator() *CachingTranslator { return s.tr }

// MatchCache returns the shared cross-request matchings cache the server
// installed on its mediator, or nil when disabled.
func (s *Server) MatchCache() *core.MatchCache { return s.mc }

// Plan returns the shared cross-request translation plan the server
// installed on its mediator, or nil when disabled.
func (s *Server) Plan() *core.Plan { return s.pl }

// Metrics returns the registry backing the server's counters, for mounting
// a /metrics endpoint (obs.Registry.WritePrometheus) or registering further
// collectors alongside the server's.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Translate returns the (cached) translation of q.
func (s *Server) Translate(ctx context.Context, q *qtree.Node) (*mediator.Translation, error) {
	s.requests.Inc()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tr, err := s.tr.Translate(q)
	if err != nil {
		s.errors.Inc()
	}
	return tr, err
}

// BatchResult is one query's outcome from Server.TranslateBatch,
// index-aligned with the input slice.
type BatchResult struct {
	Translation *mediator.Translation
	Err         error
}

// TranslateBatch translates qs[i] for every i, returning results
// index-aligned with qs. Lookups go through the same canonical translation
// cache and shared matchings cache as Translate; distinct misses run
// concurrently under the server's worker bound, so a batch of cold queries
// amortizes spec compilation and matching work across one call. A canceled
// ctx fails the not-yet-started remainder with ctx.Err().
func (s *Server) TranslateBatch(ctx context.Context, qs []*qtree.Node) []BatchResult {
	s.requests.Add(uint64(len(qs)))
	out := make([]BatchResult, len(qs))
	workers := s.workers
	if workers > len(qs) {
		workers = len(qs)
	}
	if workers <= 1 {
		for i, q := range qs {
			if err := ctx.Err(); err != nil {
				out[i] = BatchResult{Err: err}
				s.errors.Inc()
				continue
			}
			tr, err := s.tr.Translate(q)
			out[i] = BatchResult{Translation: tr, Err: err}
			if err != nil {
				s.errors.Inc()
			}
		}
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				tr, err := s.tr.Translate(qs[i])
				out[i] = BatchResult{Translation: tr, Err: err}
				if err != nil {
					s.errors.Inc()
				}
			}
		}()
	}
feed:
	for i := range qs {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		for i := range out {
			if out[i].Translation == nil && out[i].Err == nil {
				out[i] = BatchResult{Err: err}
				s.errors.Inc()
			}
		}
	}
	return out
}

// Query answers q in union-style integration, producing the same relation
// as mediator.ExecuteUnion: each source's translated query selects its
// native relation and each branch is post-filtered with the branch residue.
// Translation comes from the cache; the per-source phases run in parallel
// under the worker pool; branches are merged (deduplicated) in
// deterministic source order and sorted.
func (s *Server) Query(ctx context.Context, q *qtree.Node) (*engine.Relation, error) {
	s.requests.Inc()
	s.inFlight.Inc()
	defer s.inFlight.Dec()

	tr, err := s.tr.Translate(q)
	if err != nil {
		s.errors.Inc()
		return nil, err
	}
	if s.stream {
		out, err := s.streamUnion(ctx, tr)
		if err != nil {
			s.errors.Inc()
		}
		return out, err
	}
	rels, events, err := s.fanOut(ctx, tr, true)
	if err != nil {
		s.errors.Inc()
		return nil, err
	}
	out := engine.NewRelation("result")
	var keys []string
	seen := make(map[string]bool)
	for _, rel := range rels {
		for _, t := range rel.Tuples {
			key := t.String()
			if !seen[key] {
				seen[key] = true
				out.Tuples = append(out.Tuples, t)
				keys = append(keys, key)
			}
		}
	}
	sortTuplesByKey(out.Tuples, keys)
	s.accessSpan(ctx, tr)
	s.resilienceSpan(ctx, tr, events)
	return out, nil
}

// QueryJoin answers q in join-style integration (Eq. 2), producing the same
// relation as mediator.ExecuteJoin: the parallel per-source selections are
// cross-multiplied in source order, the mediator's glue constraint is
// applied, and the global filter F removes the false positives.
func (s *Server) QueryJoin(ctx context.Context, q *qtree.Node) (*engine.Relation, error) {
	s.requests.Inc()
	s.inFlight.Inc()
	defer s.inFlight.Dec()

	tr, err := s.tr.Translate(q)
	if err != nil {
		s.errors.Inc()
		return nil, err
	}
	if s.stream {
		out, err := s.streamJoin(ctx, tr)
		if err != nil {
			s.errors.Inc()
		}
		return out, err
	}
	rels, events, err := s.fanOut(ctx, tr, false)
	if err != nil {
		s.errors.Inc()
		return nil, err
	}
	var combined *engine.Relation
	for _, sel := range rels {
		if combined == nil {
			combined = sel
		} else {
			combined = engine.Product(combined, sel)
		}
	}
	if combined == nil {
		return engine.NewRelation("result"), nil
	}
	if s.med.Glue != nil {
		combined, err = combined.Select(s.med.Glue, s.med.Eval)
		if err != nil {
			s.errors.Inc()
			return nil, err
		}
	}
	out, err := combined.Select(tr.Filter, s.med.Eval)
	if err != nil {
		s.errors.Inc()
		return nil, err
	}
	out.Name = "result"
	sortRelation(out)
	s.accessSpan(ctx, tr)
	s.resilienceSpan(ctx, tr, events)
	return out, nil
}

// accessSpan records the planner's chosen access path per source when the
// request context carries a tracer and indexing is on. The path description
// rides in the span name (deterministic for a fixed query and universe);
// counters carry whether the plan probed and how many candidate tuples the
// probes admit. Called after the merge, on the single request goroutine.
func (s *Server) accessSpan(ctx context.Context, tr *mediator.Translation) {
	if s.access == nil {
		return
	}
	t := obs.TracerFrom(ctx)
	if t == nil {
		return
	}
	for i := range tr.Sources {
		st := &tr.Sources[i]
		acc := s.access[st.Source.Name]
		if acc == nil {
			continue
		}
		plan := acc.PlanQuery(st.Query, st.Source.Eval)
		sp := t.Start(obs.KindAccess, st.Source.Name+" "+plan.Describe())
		probed := int64(0)
		if plan.Probed() {
			probed = 1
		}
		sp.Set("probed", probed)
		t.End()
	}
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Requests:       s.requests.Value(),
		InFlight:       s.inFlight.Value(),
		CacheHits:      s.tr.Hits(),
		CacheMisses:    s.tr.Misses(),
		CacheShared:    s.tr.Shared(),
		CacheEntries:   s.tr.Len(),
		CacheEvictions: s.tr.Evictions(),
		Timeouts:       s.timeouts.Value(),
		Errors:         s.errors.Value(),

		StreamRequests:     s.streamReqs.Value(),
		StreamInFlight:     s.streamInFlight.Load(),
		StreamPeakInFlight: s.streamPeak.Load(),
		StreamEmitted:      s.streamEmitted.Load(),
		StreamMergeWaits:   s.streamMergeWaits.Value(),

		BreakerTrips:      s.breakerTrips(),
		HedgesLaunched:    s.hedgeLaunched.Value(),
		HedgesWon:         s.hedgeWon.Value(),
		Retries:           s.retriesCtr.Value(),
		AdmissionRejected: s.admissionRejected(),
	}
	if s.access != nil {
		as := s.accessStats()
		st.IndexProbes = as.Probes
		st.IndexFallbacks = as.Fallbacks
		st.IndexScanned = as.Scanned
	}
	if s.mc != nil {
		mcs := s.mc.Stats()
		st.MatchCacheHits = mcs.Hits
		st.MatchCacheMisses = mcs.Misses
		st.MatchCacheEvictions = mcs.Evictions
		st.MatchCacheEntries = mcs.Entries
	}
	if s.pl != nil {
		pls := s.pl.Stats()
		st.PlanHits = pls.Hits
		st.PlanMisses = pls.Misses
		st.PlanEvictions = pls.Evictions
		st.PlanEntries = pls.Entries
	}
	st.Sources = make(map[string]SourceStats, len(s.sources))
	st.LatencyLabels = LatencyBucketLabels()
	for name, sc := range s.sources {
		st.Sources[name] = SourceStats{
			Executions:     sc.lat.Count(),
			Timeouts:       sc.timeouts.Value(),
			LatencyBuckets: sc.latencyBuckets(),
			BreakerState:   resilience.BreakerState(s.breakerState(name)).String(),
		}
	}
	return st
}

// fanOut executes every source's phase concurrently and returns the
// per-source relations in tr.Sources order, plus each source's resilience
// events for the post-merge spans. branchFilter selects the union-style
// post-filtering (true) or the bare selection of join-style integration
// (false).
func (s *Server) fanOut(ctx context.Context, tr *mediator.Translation, branchFilter bool) ([]*engine.Relation, []sourceEvents, error) {
	rels := make([]*engine.Relation, len(tr.Sources))
	errs := make([]error, len(tr.Sources))
	events := make([]sourceEvents, len(tr.Sources))
	var wg sync.WaitGroup
	for i := range tr.Sources {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rels[i], errs[i] = s.runSource(ctx, tr, &tr.Sources[i], branchFilter, &events[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, events, err
		}
	}
	return rels, events, nil
}

// evalSource is the sequential per-source phase, mirroring the loop bodies
// of mediator.ExecuteUnion / ExecuteJoin.
func (s *Server) evalSource(ctx context.Context, tr *mediator.Translation, st *mediator.SourceTranslation, branchFilter bool) (*engine.Relation, error) {
	rel, ok := s.data[st.Source.Name]
	if !ok {
		return nil, fmt.Errorf("serve: no data for source %s", st.Source.Name)
	}
	native, err := s.exec(ctx, st.Source.Name, rel, st.Query, st.Source.Eval, s.med.Indexes[st.Source.Name], s.access[st.Source.Name])
	if err != nil || !branchFilter {
		return native, err
	}
	return native.Select(tr.BranchFilter(st), s.med.Eval)
}

func sortRelation(r *engine.Relation) {
	keys := make([]string, len(r.Tuples))
	for i, t := range r.Tuples {
		keys[i] = t.String()
	}
	sortTuplesByKey(r.Tuples, keys)
}

// sortTuplesByKey orders tuples by precomputed render keys — the same order
// as the mediator's sort-by-String, without re-rendering every tuple
// O(n log n) times in the comparator.
func sortTuplesByKey(tuples []engine.Tuple, keys []string) {
	sort.Sort(&tuplesByKey{tuples: tuples, keys: keys})
}

type tuplesByKey struct {
	tuples []engine.Tuple
	keys   []string
}

func (s *tuplesByKey) Len() int           { return len(s.tuples) }
func (s *tuplesByKey) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *tuplesByKey) Swap(i, j int) {
	s.tuples[i], s.tuples[j] = s.tuples[j], s.tuples[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}
