// Package serve wraps the mediation pipeline behind a production-shaped
// serving layer, turning the single-threaded mediator of Section 2 into a
// concurrent service:
//
//   - a canonical translation cache: translations are pure functions of
//     (canonical query, source specs), so queries that are equivalent under
//     ∧/∨ commutativity, associativity, and idempotence share one bounded-LRU
//     entry keyed by qtree's canonical form, and concurrent identical misses
//     are collapsed singleflight-style into one computation;
//   - concurrent per-source fan-out: the per-source select+filter phases of
//     union- and join-style integration run in parallel goroutines under a
//     bounded worker pool (admission control via semaphore) with an optional
//     per-source timeout, and results are merged in deterministic source
//     order so answers are identical to the sequential Execute* paths;
//   - a stats layer: lock-free counters (requests, cache hits/misses/
//     evictions, singleflight suppressions, timeouts, per-source latency
//     histograms) backed by an obs.Registry, exposed both as a Stats
//     snapshot and in the Prometheus text format via Server.Metrics().
package serve

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mediator"
	"repro/internal/obs"
	"repro/internal/qtree"
	"repro/internal/stream"
)

// DefaultCacheSize is the translation-cache capacity used when Config (or
// NewCachingTranslator) leaves it unset.
const DefaultCacheSize = 1024

// CachingTranslator memoizes mediator translations keyed by the canonical
// form of the query (qtree.Node.CanonicalKey): permuted-but-equivalent
// queries compute once and then hit. Misses for the same key are collapsed
// singleflight-style, so a stampede of N concurrent identical queries runs
// one translation. It is safe for concurrent use.
//
// Cached *mediator.Translation values are shared between callers and must
// be treated as immutable.
type CachingTranslator struct {
	translate func(*qtree.Node) (*mediator.Translation, error)
	cache     *lruCache
	flight    flightGroup

	hits, misses, shared obs.Counter
}

// NewCachingTranslator wraps med.Translate in a canonical LRU cache holding
// up to capacity translations (DefaultCacheSize if capacity <= 0).
func NewCachingTranslator(med *mediator.Mediator, capacity int) *CachingTranslator {
	return newCachingTranslator(med.Translate, capacity)
}

func newCachingTranslator(fn func(*qtree.Node) (*mediator.Translation, error), capacity int) *CachingTranslator {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &CachingTranslator{translate: fn, cache: newLRU(capacity)}
}

// Translate returns the translation of q, computing it at most once per
// canonical equivalence class while the entry stays resident. Errors are
// not cached.
func (ct *CachingTranslator) Translate(q *qtree.Node) (*mediator.Translation, error) {
	key := q.CanonicalKey()
	if tr, ok := ct.cache.Get(key); ok {
		ct.hits.Inc()
		return tr, nil
	}
	tr, err, shared := ct.flight.Do(key, func() (*mediator.Translation, error) {
		tr, err := ct.translate(q)
		if err != nil {
			return nil, err
		}
		ct.cache.Add(key, tr)
		return tr, nil
	})
	if shared {
		ct.shared.Inc()
	} else {
		ct.misses.Inc()
	}
	return tr, err
}

// Hits returns the number of lookups served from the resident cache.
func (ct *CachingTranslator) Hits() uint64 { return ct.hits.Value() }

// Misses returns the number of translations actually computed.
func (ct *CachingTranslator) Misses() uint64 { return ct.misses.Value() }

// Shared returns the number of duplicate concurrent misses collapsed onto
// another caller's in-flight computation.
func (ct *CachingTranslator) Shared() uint64 { return ct.shared.Value() }

// Len returns the number of resident cache entries.
func (ct *CachingTranslator) Len() int { return ct.cache.Len() }

// Evictions returns the number of entries evicted for capacity.
func (ct *CachingTranslator) Evictions() uint64 { return ct.cache.Evictions() }

// SourceExecutor runs one source's native selection phase: evaluate the
// translated query q over the source's relation rel with the source's
// evaluator ev, using ix (may be nil) to accelerate equality probes and acc
// (may be nil) for full cost-based access-path selection. Custom executors
// wrap DefaultExecutor to add fault injection, tracing, or remote
// transports; they must honor ctx, whose deadline carries the server's
// per-source timeout.
type SourceExecutor func(ctx context.Context, source string, rel *engine.Relation, q *qtree.Node, ev *engine.Evaluator, ix engine.IndexSet, acc *engine.Access) (*engine.Relation, error)

// DefaultExecutor is the in-memory selection phase: a cost-based
// access-path select when the source has an Access, an indexed select when
// it has equality indexes, a scan otherwise.
func DefaultExecutor(ctx context.Context, _ string, rel *engine.Relation, q *qtree.Node, ev *engine.Evaluator, ix engine.IndexSet, acc *engine.Access) (*engine.Relation, error) {
	if acc != nil {
		return rel.SelectAccess(ctx, q, ev, acc)
	}
	if ix != nil {
		return rel.SelectIndexed(q, ev, ix)
	}
	return rel.Select(q, ev)
}

// Config sizes a Server. The zero value is a working default; NewServer
// offers the same knobs as functional options.
type Config struct {
	// CacheSize bounds the translation cache in entries
	// (DefaultCacheSize if <= 0).
	CacheSize int
	// MatchCache, when non-nil, is the shared cross-request matchings cache
	// the server installs on its mediator. Nil builds one sized by
	// MatchCacheSize.
	MatchCache *core.MatchCache
	// MatchCacheSize bounds the shared matchings cache in entries when
	// MatchCache is nil (core.DefaultMatchCacheSize if 0); a negative size
	// disables cross-request matching reuse entirely.
	MatchCacheSize int
	// Plan, when non-nil, is the shared cross-request translation plan the
	// server installs on its mediator. Nil builds one sized by PlanSize.
	Plan *core.Plan
	// PlanSize bounds the shared translation plan in entries when Plan is
	// nil (core.DefaultPlanSize if 0); a negative size disables
	// cross-request translation-plan reuse entirely.
	PlanSize int
	// Workers bounds concurrently executing source selections across all
	// requests (2×GOMAXPROCS if <= 0).
	Workers int
	// SourceTimeout bounds each per-source select+filter execution
	// (no timeout if 0).
	SourceTimeout time.Duration
	// Executor overrides the per-source selection phase
	// (DefaultExecutor if nil).
	Executor SourceExecutor
	// Metrics is the registry the server's counters, gauges, and histograms
	// are registered in (a private registry if nil). A registry must back at
	// most one server: the server registers fixed metric names and duplicate
	// registration panics.
	Metrics *obs.Registry
	// Stream switches Query/QueryJoin to the tuple-at-a-time pipeline of
	// internal/stream: per-shard executors over presorted universes, bounded
	// channels, and a deterministic k-way merge. Answers are byte-identical
	// to the materialized path; per-request memory is bounded by
	// Shards × StreamBuffer in-flight tuples instead of result size. Shard
	// executors bypass the Workers pool (the merge needs one tuple from
	// every shard before emitting, so cross-shard admission control could
	// deadlock a request against itself); SourceTimeout applies per shard.
	Stream bool
	// Shards is the number of shards each source's universe splits into on
	// the streaming path (1 if <= 0).
	Shards int
	// StreamBuffer is the per-shard channel capacity on the streaming path
	// (stream.DefaultBuffer if <= 0).
	StreamBuffer int
	// BuildBudget bounds the materialized build side of a streaming join in
	// tuples (DefaultBuildBudget if <= 0); exceeding it fails the request
	// with ErrBuildBudget.
	BuildBudget int
	// ShardHook, when non-nil, runs at the start of every shard execution on
	// the streaming path — the per-shard analogue of wrapping Executor, used
	// for fault injection (engine.Injector.ApplyShard) and admission checks.
	ShardHook stream.Hook
	// Index builds a cost-based access path (engine.Access) per source at
	// construction time — hash, sorted-array, and inverted-token indexes
	// plus per-attribute statistics — and routes both execution paths
	// through selectivity-ranked index probes. Answers are byte-identical
	// (content, order, and errors) to the scan paths; queries the planner
	// cannot probe soundly fall back to scanning automatically.
	Index bool
	// ChainDebug switches the mediator's chain-backed sources (see
	// mediator.AddChainSource) to sequential hop-by-hop translation through
	// the original specs instead of the precomposed one. Filtered answers
	// are identical; this is the differential-checking mode, not a serving
	// optimization.
	ChainDebug bool
}

// Server serves mediated queries concurrently: cached translation, parallel
// per-source execution under admission control, deterministic merging, and
// atomic stats. It is safe for concurrent use; the mediator, its sources,
// and the data relations must not be mutated while the server is live.
type Server struct {
	med     *mediator.Mediator
	data    map[string]*engine.Relation
	tr      *CachingTranslator
	mc      *core.MatchCache
	pl      *core.Plan
	sem     chan struct{}
	workers int
	timeout time.Duration
	exec    SourceExecutor

	stream      bool
	shards      int
	streamBuf   int
	buildBudget int
	shardHook   stream.Hook
	presorted   map[string]*stream.Sorted
	streamMet   *stream.Metrics
	// access holds each source's cost-based access path when Config.Index
	// is on: built over the presorted universe on the streaming path (so
	// probe positions align with shard slices) and over the raw data
	// relation otherwise. Nil map when indexing is off.
	access map[string]*engine.Access

	reg      *obs.Registry
	requests *obs.Counter
	inFlight *obs.Gauge
	timeouts *obs.Counter
	errors   *obs.Counter
	sources  map[string]*sourceCounters

	streamReqs       *obs.Counter
	streamMergeWaits *obs.Counter
	streamEmitted    atomic.Uint64
	streamInFlight   atomic.Int64
	streamPeak       atomic.Int64
	shardEmits       map[string][]*obs.Counter
}

// New returns a server over med and the per-source data relations. data
// maps source name → that source's universe relation, as in the mediator's
// Execute* methods.
//
// Unless disabled (MatchCacheSize < 0), New installs a shared cross-request
// matchings cache on the mediator (med.MatchCache) so distinct requests
// reuse SCM matching work; a cache the mediator already carries is kept.
// Likewise, unless disabled (PlanSize < 0), New installs a shared
// translation plan on the mediator (med.Plan) so recurring query shapes
// replay precomputed TDQM/PSafe/EDNF/SCM fragments.
func New(med *mediator.Mediator, data map[string]*engine.Relation, cfg Config) *Server {
	workers := cfg.Workers
	if workers <= 0 {
		workers = 2 * runtime.GOMAXPROCS(0)
	}
	exec := cfg.Executor
	if exec == nil {
		exec = DefaultExecutor
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	mc := cfg.MatchCache
	if mc == nil && cfg.MatchCacheSize >= 0 {
		mc = core.NewMatchCache(cfg.MatchCacheSize)
	}
	if med.MatchCache != nil {
		mc = med.MatchCache
	} else if mc != nil {
		med.MatchCache = mc
	}
	pl := cfg.Plan
	if pl == nil && cfg.PlanSize >= 0 {
		pl = core.NewPlan(cfg.PlanSize)
	}
	if med.Plan != nil {
		pl = med.Plan
	} else if pl != nil {
		med.Plan = pl
	}
	if cfg.ChainDebug {
		med.ChainDebug = true
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = 1
	}
	streamBuf := cfg.StreamBuffer
	if streamBuf <= 0 {
		streamBuf = stream.DefaultBuffer
	}
	budget := cfg.BuildBudget
	if budget <= 0 {
		budget = DefaultBuildBudget
	}
	s := &Server{
		med:     med,
		data:    data,
		tr:      NewCachingTranslator(med, cfg.CacheSize),
		mc:      mc,
		pl:      pl,
		sem:     make(chan struct{}, workers),
		workers: workers,
		timeout: cfg.SourceTimeout,
		exec:    exec,
		reg:     reg,
		sources: make(map[string]*sourceCounters, len(med.Sources)),

		stream:      cfg.Stream,
		shards:      shards,
		streamBuf:   streamBuf,
		buildBudget: budget,
		shardHook:   cfg.ShardHook,
	}
	if cfg.Stream {
		s.presorted = make(map[string]*stream.Sorted, len(data))
		for name, rel := range data {
			s.presorted[name] = stream.Presort(rel)
		}
	}
	if cfg.Index {
		s.access = make(map[string]*engine.Access, len(data))
		for name, rel := range data {
			if cfg.Stream {
				// The streaming executors probe in presorted position
				// space, so the access path must be built over the
				// presorted universe, not the raw relation.
				rel = s.presorted[name].Relation()
			}
			s.access[name] = engine.BuildAccess(rel)
		}
	}
	s.requests = reg.Counter("qmap_serve_requests_total",
		"Translate and Query/QueryJoin calls.")
	s.errors = reg.Counter("qmap_serve_errors_total",
		"Requests that returned an error.")
	s.timeouts = reg.Counter("qmap_serve_timeouts_total",
		"Per-source executions cut off by a deadline.")
	s.inFlight = reg.Gauge("qmap_serve_in_flight",
		"Query/QueryJoin calls currently executing.")
	reg.RegisterCounter("qmap_cache_hits_total",
		"Translations served from the resident cache.", &s.tr.hits)
	reg.RegisterCounter("qmap_cache_misses_total",
		"Translations actually computed.", &s.tr.misses)
	reg.RegisterCounter("qmap_cache_shared_total",
		"Duplicate concurrent misses collapsed singleflight-style.", &s.tr.shared)
	reg.GaugeFunc("qmap_cache_entries",
		"Resident translation-cache entries.",
		func() float64 { return float64(s.tr.Len()) })
	reg.CounterFunc("qmap_cache_evictions_total",
		"Translation-cache entries evicted for capacity.",
		func() float64 { return float64(s.tr.Evictions()) })
	if mc != nil {
		reg.CounterFunc("qmap_matchcache_hits_total",
			"Matching lookups served from the shared cross-request cache.",
			func() float64 { return float64(mc.Stats().Hits) })
		reg.CounterFunc("qmap_matchcache_misses_total",
			"Matching lookups that derived fresh matchings (incl. traced bypasses).",
			func() float64 { return float64(mc.Stats().Misses) })
		reg.CounterFunc("qmap_matchcache_evictions_total",
			"Shared matchings-cache entries evicted for capacity.",
			func() float64 { return float64(mc.Stats().Evictions) })
		reg.GaugeFunc("qmap_matchcache_entries",
			"Resident shared matchings-cache entries.",
			func() float64 { return float64(mc.Len()) })
	}
	if pl != nil {
		reg.CounterFunc("qmap_plan_hits_total",
			"Translation fragments replayed from the shared plan.",
			func() float64 { return float64(pl.Stats().Hits) })
		reg.CounterFunc("qmap_plan_misses_total",
			"Plan lookups that ran the algorithm (incl. traced bypasses).",
			func() float64 { return float64(pl.Stats().Misses) })
		reg.CounterFunc("qmap_plan_evictions_total",
			"Shared translation-plan entries evicted for capacity.",
			func() float64 { return float64(pl.Stats().Evictions) })
		reg.GaugeFunc("qmap_plan_entries",
			"Resident shared translation-plan entries.",
			func() float64 { return float64(pl.Len()) })
	}
	if cfg.Index {
		reg.CounterFunc("qmap_index_probes_total",
			"Index probes executed by the access-path planner (one per planned disjunct).",
			func() float64 { return float64(s.accessStats().Probes) })
		reg.CounterFunc("qmap_index_fallbacks_total",
			"Selections answered by a full scan because no sound probe existed.",
			func() float64 { return float64(s.accessStats().Fallbacks) })
		reg.CounterFunc("qmap_index_scanned_tuples_total",
			"Tuples evaluated by selections: probe candidates when indexed, whole universes on fallback.",
			func() float64 { return float64(s.accessStats().Scanned) })
	}
	s.streamReqs = reg.Counter("qmap_stream_requests_total",
		"Requests answered by the streaming pipeline.")
	s.streamMergeWaits = reg.Counter("qmap_stream_merge_waits_total",
		"Times the k-way merge blocked waiting for a shard to produce.")
	reg.CounterFunc("qmap_stream_emitted_total",
		"Tuples emitted by shard executors across all sources.",
		func() float64 { return float64(s.streamEmitted.Load()) })
	reg.GaugeFunc("qmap_stream_in_flight",
		"Tuples currently in flight in streaming pipelines (buffered or in a sender's hand).",
		func() float64 { return float64(s.streamInFlight.Load()) })
	reg.GaugeFunc("qmap_stream_peak_in_flight",
		"High-water mark of in-flight streaming tuples (peak buffer occupancy).",
		func() float64 { return float64(s.streamPeak.Load()) })
	if cfg.Stream {
		s.shardEmits = make(map[string][]*obs.Counter, len(med.Sources))
		for _, src := range med.Sources {
			cs := make([]*obs.Counter, shards)
			for j := range cs {
				cs[j] = reg.Counter("qmap_stream_shard_emitted_total",
					"Tuples emitted by one shard executor.",
					"source", src.Name, "shard", strconv.Itoa(j))
			}
			s.shardEmits[src.Name] = cs
		}
	}
	s.streamMet = s.streamMetrics()
	for _, src := range med.Sources {
		s.sources[src.Name] = &sourceCounters{
			timeouts: reg.Counter("qmap_source_timeouts_total",
				"Source executions abandoned to a deadline.", "source", src.Name),
			lat: reg.Histogram("qmap_source_latency_seconds",
				"Completed source select+filter latency in seconds.",
				LatencyBounds(), "source", src.Name),
		}
	}
	return s
}

// accessStats sums the cumulative access-path counters across all sources.
// Zero when indexing is off.
func (s *Server) accessStats() engine.AccessStats {
	var out engine.AccessStats
	for _, acc := range s.access {
		st := acc.Stats()
		out.Probes += st.Probes
		out.Fallbacks += st.Fallbacks
		out.Scanned += st.Scanned
	}
	return out
}

// Access returns the named source's cost-based access path, or nil when
// indexing is off (or the source is unknown).
func (s *Server) Access(source string) *engine.Access { return s.access[source] }

// Translator returns the server's translation cache.
func (s *Server) Translator() *CachingTranslator { return s.tr }

// MatchCache returns the shared cross-request matchings cache the server
// installed on its mediator, or nil when disabled.
func (s *Server) MatchCache() *core.MatchCache { return s.mc }

// Plan returns the shared cross-request translation plan the server
// installed on its mediator, or nil when disabled.
func (s *Server) Plan() *core.Plan { return s.pl }

// Metrics returns the registry backing the server's counters, for mounting
// a /metrics endpoint (obs.Registry.WritePrometheus) or registering further
// collectors alongside the server's.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Translate returns the (cached) translation of q.
func (s *Server) Translate(ctx context.Context, q *qtree.Node) (*mediator.Translation, error) {
	s.requests.Inc()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tr, err := s.tr.Translate(q)
	if err != nil {
		s.errors.Inc()
	}
	return tr, err
}

// BatchResult is one query's outcome from Server.TranslateBatch,
// index-aligned with the input slice.
type BatchResult struct {
	Translation *mediator.Translation
	Err         error
}

// TranslateBatch translates qs[i] for every i, returning results
// index-aligned with qs. Lookups go through the same canonical translation
// cache and shared matchings cache as Translate; distinct misses run
// concurrently under the server's worker bound, so a batch of cold queries
// amortizes spec compilation and matching work across one call. A canceled
// ctx fails the not-yet-started remainder with ctx.Err().
func (s *Server) TranslateBatch(ctx context.Context, qs []*qtree.Node) []BatchResult {
	s.requests.Add(uint64(len(qs)))
	out := make([]BatchResult, len(qs))
	workers := s.workers
	if workers > len(qs) {
		workers = len(qs)
	}
	if workers <= 1 {
		for i, q := range qs {
			if err := ctx.Err(); err != nil {
				out[i] = BatchResult{Err: err}
				s.errors.Inc()
				continue
			}
			tr, err := s.tr.Translate(q)
			out[i] = BatchResult{Translation: tr, Err: err}
			if err != nil {
				s.errors.Inc()
			}
		}
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				tr, err := s.tr.Translate(qs[i])
				out[i] = BatchResult{Translation: tr, Err: err}
				if err != nil {
					s.errors.Inc()
				}
			}
		}()
	}
feed:
	for i := range qs {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		for i := range out {
			if out[i].Translation == nil && out[i].Err == nil {
				out[i] = BatchResult{Err: err}
				s.errors.Inc()
			}
		}
	}
	return out
}

// Query answers q in union-style integration, producing the same relation
// as mediator.ExecuteUnion: each source's translated query selects its
// native relation and each branch is post-filtered with the branch residue.
// Translation comes from the cache; the per-source phases run in parallel
// under the worker pool; branches are merged (deduplicated) in
// deterministic source order and sorted.
func (s *Server) Query(ctx context.Context, q *qtree.Node) (*engine.Relation, error) {
	s.requests.Inc()
	s.inFlight.Inc()
	defer s.inFlight.Dec()

	tr, err := s.tr.Translate(q)
	if err != nil {
		s.errors.Inc()
		return nil, err
	}
	if s.stream {
		out, err := s.streamUnion(ctx, tr)
		if err != nil {
			s.errors.Inc()
		}
		return out, err
	}
	rels, err := s.fanOut(ctx, tr, true)
	if err != nil {
		s.errors.Inc()
		return nil, err
	}
	out := engine.NewRelation("result")
	var keys []string
	seen := make(map[string]bool)
	for _, rel := range rels {
		for _, t := range rel.Tuples {
			key := t.String()
			if !seen[key] {
				seen[key] = true
				out.Tuples = append(out.Tuples, t)
				keys = append(keys, key)
			}
		}
	}
	sortTuplesByKey(out.Tuples, keys)
	s.accessSpan(ctx, tr)
	return out, nil
}

// QueryJoin answers q in join-style integration (Eq. 2), producing the same
// relation as mediator.ExecuteJoin: the parallel per-source selections are
// cross-multiplied in source order, the mediator's glue constraint is
// applied, and the global filter F removes the false positives.
func (s *Server) QueryJoin(ctx context.Context, q *qtree.Node) (*engine.Relation, error) {
	s.requests.Inc()
	s.inFlight.Inc()
	defer s.inFlight.Dec()

	tr, err := s.tr.Translate(q)
	if err != nil {
		s.errors.Inc()
		return nil, err
	}
	if s.stream {
		out, err := s.streamJoin(ctx, tr)
		if err != nil {
			s.errors.Inc()
		}
		return out, err
	}
	rels, err := s.fanOut(ctx, tr, false)
	if err != nil {
		s.errors.Inc()
		return nil, err
	}
	var combined *engine.Relation
	for _, sel := range rels {
		if combined == nil {
			combined = sel
		} else {
			combined = engine.Product(combined, sel)
		}
	}
	if combined == nil {
		return engine.NewRelation("result"), nil
	}
	if s.med.Glue != nil {
		combined, err = combined.Select(s.med.Glue, s.med.Eval)
		if err != nil {
			s.errors.Inc()
			return nil, err
		}
	}
	out, err := combined.Select(tr.Filter, s.med.Eval)
	if err != nil {
		s.errors.Inc()
		return nil, err
	}
	out.Name = "result"
	sortRelation(out)
	s.accessSpan(ctx, tr)
	return out, nil
}

// accessSpan records the planner's chosen access path per source when the
// request context carries a tracer and indexing is on. The path description
// rides in the span name (deterministic for a fixed query and universe);
// counters carry whether the plan probed and how many candidate tuples the
// probes admit. Called after the merge, on the single request goroutine.
func (s *Server) accessSpan(ctx context.Context, tr *mediator.Translation) {
	if s.access == nil {
		return
	}
	t := obs.TracerFrom(ctx)
	if t == nil {
		return
	}
	for i := range tr.Sources {
		st := &tr.Sources[i]
		acc := s.access[st.Source.Name]
		if acc == nil {
			continue
		}
		plan := acc.PlanQuery(st.Query, st.Source.Eval)
		sp := t.Start(obs.KindAccess, st.Source.Name+" "+plan.Describe())
		probed := int64(0)
		if plan.Probed() {
			probed = 1
		}
		sp.Set("probed", probed)
		t.End()
	}
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Requests:       s.requests.Value(),
		InFlight:       s.inFlight.Value(),
		CacheHits:      s.tr.Hits(),
		CacheMisses:    s.tr.Misses(),
		CacheShared:    s.tr.Shared(),
		CacheEntries:   s.tr.Len(),
		CacheEvictions: s.tr.Evictions(),
		Timeouts:       s.timeouts.Value(),
		Errors:         s.errors.Value(),

		StreamRequests:     s.streamReqs.Value(),
		StreamInFlight:     s.streamInFlight.Load(),
		StreamPeakInFlight: s.streamPeak.Load(),
		StreamEmitted:      s.streamEmitted.Load(),
		StreamMergeWaits:   s.streamMergeWaits.Value(),
	}
	if s.access != nil {
		as := s.accessStats()
		st.IndexProbes = as.Probes
		st.IndexFallbacks = as.Fallbacks
		st.IndexScanned = as.Scanned
	}
	if s.mc != nil {
		mcs := s.mc.Stats()
		st.MatchCacheHits = mcs.Hits
		st.MatchCacheMisses = mcs.Misses
		st.MatchCacheEvictions = mcs.Evictions
		st.MatchCacheEntries = mcs.Entries
	}
	if s.pl != nil {
		pls := s.pl.Stats()
		st.PlanHits = pls.Hits
		st.PlanMisses = pls.Misses
		st.PlanEvictions = pls.Evictions
		st.PlanEntries = pls.Entries
	}
	st.Sources = make(map[string]SourceStats, len(s.sources))
	st.LatencyLabels = LatencyBucketLabels()
	for name, sc := range s.sources {
		st.Sources[name] = SourceStats{
			Executions:     sc.lat.Count(),
			Timeouts:       sc.timeouts.Value(),
			LatencyBuckets: sc.latencyBuckets(),
		}
	}
	return st
}

// fanOut executes every source's phase concurrently and returns the
// per-source relations in tr.Sources order. branchFilter selects the
// union-style post-filtering (true) or the bare selection of join-style
// integration (false).
func (s *Server) fanOut(ctx context.Context, tr *mediator.Translation, branchFilter bool) ([]*engine.Relation, error) {
	rels := make([]*engine.Relation, len(tr.Sources))
	errs := make([]error, len(tr.Sources))
	var wg sync.WaitGroup
	for i := range tr.Sources {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rels[i], errs[i] = s.runSource(ctx, tr, &tr.Sources[i], branchFilter)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rels, nil
}

// runSource admits one source execution to the worker pool, runs it in a
// goroutine, and waits for completion or deadline.
func (s *Server) runSource(ctx context.Context, tr *mediator.Translation, st *mediator.SourceTranslation, branchFilter bool) (*engine.Relation, error) {
	name := st.Source.Name
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, fmt.Errorf("serve: source %s: %w", name, ctx.Err())
	}
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	sc := s.sources[name]
	start := time.Now()
	type result struct {
		rel *engine.Relation
		err error
	}
	ch := make(chan result, 1)
	go func() {
		defer func() { <-s.sem }()
		rel, err := s.evalSource(ctx, tr, st, branchFilter)
		ch <- result{rel, err}
	}()
	select {
	case r := <-ch:
		if sc != nil {
			sc.lat.ObserveDuration(time.Since(start))
		}
		return r.rel, r.err
	case <-ctx.Done():
		// The engine has no cancellation points: the worker keeps its pool
		// slot until the abandoned scan finishes, and its result is
		// discarded. Admission control stays accurate.
		s.timeouts.Inc()
		if sc != nil {
			sc.timeouts.Inc()
		}
		return nil, fmt.Errorf("serve: source %s: %w", name, ctx.Err())
	}
}

// evalSource is the sequential per-source phase, mirroring the loop bodies
// of mediator.ExecuteUnion / ExecuteJoin.
func (s *Server) evalSource(ctx context.Context, tr *mediator.Translation, st *mediator.SourceTranslation, branchFilter bool) (*engine.Relation, error) {
	rel, ok := s.data[st.Source.Name]
	if !ok {
		return nil, fmt.Errorf("serve: no data for source %s", st.Source.Name)
	}
	native, err := s.exec(ctx, st.Source.Name, rel, st.Query, st.Source.Eval, s.med.Indexes[st.Source.Name], s.access[st.Source.Name])
	if err != nil || !branchFilter {
		return native, err
	}
	return native.Select(tr.BranchFilter(st), s.med.Eval)
}

func sortRelation(r *engine.Relation) {
	keys := make([]string, len(r.Tuples))
	for i, t := range r.Tuples {
		keys[i] = t.String()
	}
	sortTuplesByKey(r.Tuples, keys)
}

// sortTuplesByKey orders tuples by precomputed render keys — the same order
// as the mediator's sort-by-String, without re-rendering every tuple
// O(n log n) times in the comparator.
func sortTuplesByKey(tuples []engine.Tuple, keys []string) {
	sort.Sort(&tuplesByKey{tuples: tuples, keys: keys})
}

type tuplesByKey struct {
	tuples []engine.Tuple
	keys   []string
}

func (s *tuplesByKey) Len() int           { return len(s.tuples) }
func (s *tuplesByKey) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *tuplesByKey) Swap(i, j int) {
	s.tuples[i], s.tuples[j] = s.tuples[j], s.tuples[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}
