package serve

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/mediator"
	"repro/internal/qparse"
	"repro/internal/qtree"
	"repro/internal/resilience"
)

// injectedExecutor wraps DefaultExecutor with an engine.Injector, the same
// seam the conformance harness uses.
func injectedExecutor(inj *engine.Injector) SourceExecutor {
	return func(ctx context.Context, source string, rel *engine.Relation, q *qtree.Node, ev *engine.Evaluator, ix engine.IndexSet, acc *engine.Access) (*engine.Relation, error) {
		if err := inj.Apply(ctx, source); err != nil {
			return nil, err
		}
		return DefaultExecutor(ctx, source, rel, q, ev, ix, acc)
	}
}

// TestBreakerTripAndRecovery drives one source through a deterministic error
// burst and asserts the full breaker lifecycle at the serving surface:
// failures accumulate, the breaker trips, requests fail fast with the typed
// ErrBreakerOpen (degraded-answer contract), and after the cool-down a
// half-open probe closes the breaker and answers are correct again.
func TestBreakerTripAndRecovery(t *testing.T) {
	inj := engine.NewInjector(1, engine.FaultPlan{})
	bc := resilience.BreakerConfig{
		Window: 8, FailureRatio: 0.5, MinSamples: 4,
		OpenFor: 150 * time.Millisecond, HalfOpenProbes: 1,
	}
	srv, med, data := bookstoreServer(Config{
		Cache:      CacheConfig{Size: 8},
		Executor:   injectedExecutor(inj),
		Resilience: ResilienceConfig{Breaker: true, BreakerConfig: bc},
	})
	ctx := context.Background()
	q := qparse.MustParse(`[publisher = "aw"]`)
	want, _, err := med.ExecuteUnion(q, data)
	if err != nil {
		t.Fatal(err)
	}

	// Burst: the next 4 amazon executions fail, reaching MinSamples at 100%
	// failure rate — the 4th Record must trip the breaker.
	inj.SetErrorBurst("amazon", 4)
	for i := 0; i < 4; i++ {
		if _, err := srv.Query(ctx, q); !errors.Is(err, engine.ErrInjected) {
			t.Fatalf("query %d: err = %v, want ErrInjected", i, err)
		}
	}
	st := srv.Stats()
	if st.BreakerTrips != 1 {
		t.Fatalf("BreakerTrips = %d, want 1", st.BreakerTrips)
	}
	if got := st.Sources["amazon"].BreakerState; got != "open" {
		t.Fatalf("amazon breaker state = %q, want open", got)
	}
	if got := st.Sources["clbooks"].BreakerState; got != "closed" {
		t.Fatalf("clbooks breaker state = %q, want closed (cross-source isolation)", got)
	}

	// Open: the request must fail fast with the typed error, never return a
	// silently amazon-less answer.
	_, err = srv.Query(ctx, q)
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open-state err = %v, want ErrBreakerOpen", err)
	}
	if !errors.Is(err, resilience.ErrBreakerOpen) {
		t.Fatal("serve.ErrBreakerOpen must alias resilience.ErrBreakerOpen")
	}

	// Recovery: source healthy again; after the cool-down the first request
	// is the half-open probe, succeeds, and closes the breaker.
	time.Sleep(bc.OpenFor + 50*time.Millisecond)
	got, err := srv.Query(ctx, q)
	if err != nil {
		t.Fatalf("post-cooldown query: %v", err)
	}
	if render(got) != render(want) {
		t.Fatal("post-recovery answer differs from baseline")
	}
	if got := srv.Stats().Sources["amazon"].BreakerState; got != "closed" {
		t.Fatalf("post-recovery breaker state = %q, want closed", got)
	}
}

// TestBreakerStreamingPath runs the same trip/fast-fail/recover cycle on the
// streaming pipeline: shard-hook failures feed the breaker via the
// pipeline's OnShardDone seam, an open breaker refuses shard admission with
// the typed error, and a healthy probe closes it.
func TestBreakerStreamingPath(t *testing.T) {
	inj := engine.NewInjector(1, engine.FaultPlan{})
	bc := resilience.BreakerConfig{
		Window: 8, FailureRatio: 0.5, MinSamples: 4,
		OpenFor: 150 * time.Millisecond, HalfOpenProbes: 1,
	}
	srv, med, data := bookstoreServer(Config{
		Cache:      CacheConfig{Size: 8},
		Streaming:  StreamConfig{Enabled: true, Shards: 1, Hook: inj.ApplyShard},
		Resilience: ResilienceConfig{Breaker: true, BreakerConfig: bc},
	})
	ctx := context.Background()
	q := qparse.MustParse(`[publisher = "aw"]`)
	want, _, err := med.ExecuteUnion(q, data)
	if err != nil {
		t.Fatal(err)
	}

	inj.SetErrorBurst("amazon", 4) // shard streams inherit the base pin
	for i := 0; i < 4; i++ {
		if _, err := srv.Query(ctx, q); !errors.Is(err, engine.ErrInjected) {
			t.Fatalf("query %d: err = %v, want ErrInjected", i, err)
		}
	}
	st := srv.Stats()
	if st.BreakerTrips != 1 {
		t.Fatalf("BreakerTrips = %d, want 1", st.BreakerTrips)
	}
	if _, err := srv.Query(ctx, q); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open-state err = %v, want ErrBreakerOpen", err)
	}

	time.Sleep(bc.OpenFor + 50*time.Millisecond)
	got, err := srv.Query(ctx, q)
	if err != nil {
		t.Fatalf("post-cooldown query: %v", err)
	}
	if render(got) != render(want) {
		t.Fatal("post-recovery streaming answer differs from baseline")
	}
	if got := srv.Stats().Sources["amazon"].BreakerState; got != "closed" {
		t.Fatalf("post-recovery breaker state = %q, want closed", got)
	}
}

// TestRetryRecoversTransientFault asserts bounded retry absorbs a typed
// transient burst shorter than the attempt budget — and surfaces the typed
// error, not an untyped one, when the burst outlasts it.
func TestRetryRecoversTransientFault(t *testing.T) {
	inj := engine.NewInjector(1, engine.FaultPlan{})
	srv, med, data := bookstoreServer(Config{
		Cache:    CacheConfig{Size: 8},
		Executor: injectedExecutor(inj),
		Resilience: ResilienceConfig{
			Retries:     3,
			RetryConfig: resilience.RetryConfig{BaseDelay: time.Microsecond, MaxDelay: time.Millisecond},
		},
	})
	ctx := context.Background()
	q := qparse.MustParse(`[publisher = "aw"]`)
	want, _, err := med.ExecuteUnion(q, data)
	if err != nil {
		t.Fatal(err)
	}

	// Two failures fit inside three attempts: the request succeeds.
	inj.SetErrorBurst("amazon", 2)
	got, err := srv.Query(ctx, q)
	if err != nil {
		t.Fatalf("query under 2-burst with 3 attempts: %v", err)
	}
	if render(got) != render(want) {
		t.Fatal("retried answer differs from baseline")
	}
	if st := srv.Stats(); st.Retries != 2 {
		t.Fatalf("Retries = %d, want 2", st.Retries)
	}

	// Three failures exhaust the budget: typed failure, retries counted.
	inj.SetErrorBurst("amazon", 3)
	if _, err := srv.Query(ctx, q); !errors.Is(err, engine.ErrInjected) {
		t.Fatalf("exhausted-budget err = %v, want ErrInjected", err)
	}
	if st := srv.Stats(); st.Retries != 4 {
		t.Fatalf("Retries = %d, want 4", st.Retries)
	}
}

// TestHedgeWinsOnSlowSource pins a one-shot tail latency on a source and
// asserts the hedge launches after the delay, its fast duplicate wins, and
// the request completes far below the straggler's latency with the correct
// answer — the p99-cutting behavior hedging exists for.
func TestHedgeWinsOnSlowSource(t *testing.T) {
	const stall = 300 * time.Millisecond
	var slow atomic.Bool
	exec := func(ctx context.Context, source string, rel *engine.Relation, q *qtree.Node, ev *engine.Evaluator, ix engine.IndexSet, acc *engine.Access) (*engine.Relation, error) {
		if source == "amazon" && slow.CompareAndSwap(true, false) {
			select {
			case <-time.After(stall):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return DefaultExecutor(ctx, source, rel, q, ev, ix, acc)
	}
	srv, med, data := bookstoreServer(Config{
		Cache:    CacheConfig{Size: 8},
		Executor: exec,
		Resilience: ResilienceConfig{
			Hedge:       true,
			HedgeConfig: resilience.HedgeConfig{MinDelay: 5 * time.Millisecond, MaxDelay: 20 * time.Millisecond},
		},
	})
	ctx := context.Background()
	q := qparse.MustParse(`[publisher = "aw"]`)
	want, _, err := med.ExecuteUnion(q, data)
	if err != nil {
		t.Fatal(err)
	}

	slow.Store(true) // the next amazon execution (the primary) stalls
	start := time.Now()
	got, err := srv.Query(ctx, q)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("hedged query: %v", err)
	}
	if render(got) != render(want) {
		t.Fatal("hedged answer differs from baseline")
	}
	if elapsed >= stall {
		t.Errorf("request took %v, want well under the %v straggler (hedge did not cut the tail)", elapsed, stall)
	}
	st := srv.Stats()
	if st.HedgesLaunched == 0 {
		t.Error("HedgesLaunched = 0, want > 0")
	}
	if st.HedgesWon == 0 {
		t.Error("HedgesWon = 0, want > 0")
	}
	// The cancelled straggler must not pollute health accounting: it is
	// neither a timeout nor a breaker-relevant failure.
	if st.Timeouts != 0 {
		t.Errorf("Timeouts = %d, want 0 (hedge loser counted as timeout)", st.Timeouts)
	}
	if st.Errors != 0 {
		t.Errorf("Errors = %d, want 0", st.Errors)
	}
}

// TestHedgeLoses asserts the accounting on the common path: the primary
// finishes before the (floored) hedge delay, so no hedge launches at all.
func TestHedgeLoses(t *testing.T) {
	srv, _, _ := bookstoreServer(Config{
		Cache: CacheConfig{Size: 8},
		Resilience: ResilienceConfig{
			Hedge:       true,
			HedgeConfig: resilience.HedgeConfig{MinDelay: time.Second},
		},
	})
	if _, err := srv.Query(context.Background(), qparse.MustParse(`[publisher = "aw"]`)); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.HedgesLaunched != 0 || st.HedgesWon != 0 {
		t.Errorf("launched/won = %d/%d, want 0/0 for a fast primary", st.HedgesLaunched, st.HedgesWon)
	}
}

// TestAdmissionProtectsHotSet floods an admission-guarded translation cache
// with one-off scan queries and asserts the hot working set stays resident:
// the TinyLFU sketch rejects cold inserts whose estimated frequency cannot
// beat the eviction victim's.
func TestAdmissionProtectsHotSet(t *testing.T) {
	var computed atomic.Int32
	fn := func(*qtree.Node) (*mediator.Translation, error) {
		computed.Add(1)
		return &mediator.Translation{}, nil
	}
	// Sized to the sketch's design point (slots = 8× capacity, aging every
	// 10× capacity touches): 6 warm rounds plus the scan stay inside one
	// aging period, so hot estimates sit well above any scan key's.
	ct := newCachingTranslator(fn, 16, true)

	hot := make([]*qtree.Node, 16)
	for i := range hot {
		hot[i] = qparse.MustParse(fmt.Sprintf(`[publisher = "hot%d"]`, i))
	}
	for round := 0; round < 6; round++ {
		for _, q := range hot {
			if _, err := ct.Translate(q); err != nil {
				t.Fatal(err)
			}
		}
	}
	// A scan: 48 distinct one-off queries, each seen exactly once.
	for i := 0; i < 48; i++ {
		q := qparse.MustParse(fmt.Sprintf(`[publisher = "scan%d"]`, i))
		if _, err := ct.Translate(q); err != nil {
			t.Fatal(err)
		}
	}
	// Sketch collisions allow a few false admissions; the overwhelming
	// majority of scan inserts must be refused.
	if rej := ct.AdmissionRejected(); rej < 40 {
		t.Errorf("AdmissionRejected = %d, want >= 40 of 48 scan inserts refused", rej)
	}
	if n := ct.Len(); n != 16 {
		t.Errorf("cache holds %d entries, want 16", n)
	}
	// The hot working set must survive the scan essentially intact.
	before := computed.Load()
	for _, q := range hot {
		if _, err := ct.Translate(q); err != nil {
			t.Fatal(err)
		}
	}
	if d := computed.Load() - before; d > 4 {
		t.Errorf("%d of 16 hot keys recomputed after the scan, want <= 4 (working set washed out)", d)
	}
}

// TestAdmissionCleanAnswers asserts admission is invisible in answers: a
// server with admission on returns byte-identical results to one without,
// across the mixed workload, twice (cold then warm).
func TestAdmissionCleanAnswers(t *testing.T) {
	plain, _, _ := bookstoreServer(Config{Cache: CacheConfig{Size: 2}})
	guarded, _, _ := bookstoreServer(Config{Cache: CacheConfig{Size: 2, Admission: true}})
	ctx := context.Background()
	for round := 0; round < 2; round++ {
		for _, s := range mixedWorkload {
			q := qparse.MustParse(s)
			a, err := plain.Query(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			b, err := guarded.Query(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			if render(a) != render(b) {
				t.Fatalf("admission changed the answer for %q", s)
			}
		}
	}
}

// TestConfigNormalized pins the deprecation shim's folding rules: flat
// fields apply only when the grouped counterpart is unset, and the grouped
// field wins on conflict.
func TestConfigNormalized(t *testing.T) {
	flat := Config{
		CacheSize:      64,
		MatchCacheSize: 128,
		PlanSize:       256,
		Stream:         true,
		Shards:         4,
		StreamBuffer:   16,
		BuildBudget:    1000,
	}
	n := flat.normalized()
	if n.Cache.Size != 64 || n.Cache.MatchCacheSize != 128 || n.Cache.PlanSize != 256 {
		t.Errorf("cache group = %+v, want flat values folded in", n.Cache)
	}
	if !n.Streaming.Enabled || n.Streaming.Shards != 4 || n.Streaming.Buffer != 16 || n.Streaming.BuildBudget != 1000 {
		t.Errorf("stream group = %+v, want flat values folded in", n.Streaming)
	}

	conflict := Config{
		CacheSize: 64,
		Cache:     CacheConfig{Size: 32},
		Shards:    4,
		Streaming: StreamConfig{Shards: 2},
	}
	n = conflict.normalized()
	if n.Cache.Size != 32 {
		t.Errorf("Cache.Size = %d, want the grouped 32 to win over flat 64", n.Cache.Size)
	}
	if n.Streaming.Shards != 2 {
		t.Errorf("Streaming.Shards = %d, want the grouped 2 to win over flat 4", n.Streaming.Shards)
	}
}

// TestFlatGroupedEquivalence builds one server from an old-style flat Config
// and one from the grouped form of the same values, runs the mixed workload
// on both, and demands identical answers and identical cache/stream
// accounting — the regrouping's source-compatibility contract.
func TestFlatGroupedEquivalence(t *testing.T) {
	flat, _, _ := bookstoreServer(Config{
		CacheSize:    16,
		Workers:      4,
		Stream:       true,
		Shards:       2,
		StreamBuffer: 4,
	})
	grouped, _, _ := bookstoreServer(Config{
		Cache:     CacheConfig{Size: 16},
		Workers:   4,
		Streaming: StreamConfig{Enabled: true, Shards: 2, Buffer: 4},
	})
	ctx := context.Background()
	for round := 0; round < 2; round++ {
		for _, s := range mixedWorkload {
			q := qparse.MustParse(s)
			a, err := flat.Query(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			b, err := grouped.Query(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			if render(a) != render(b) {
				t.Fatalf("flat and grouped servers disagree on %q", s)
			}
		}
	}
	fs, gs := flat.Stats(), grouped.Stats()
	if fs.CacheHits != gs.CacheHits || fs.CacheMisses != gs.CacheMisses || fs.CacheEntries != gs.CacheEntries {
		t.Errorf("cache accounting diverged: flat hits/misses/entries %d/%d/%d vs grouped %d/%d/%d",
			fs.CacheHits, fs.CacheMisses, fs.CacheEntries, gs.CacheHits, gs.CacheMisses, gs.CacheEntries)
	}
	if fs.StreamRequests != gs.StreamRequests {
		t.Errorf("StreamRequests: flat %d vs grouped %d", fs.StreamRequests, gs.StreamRequests)
	}
	if fs.StreamRequests == 0 {
		t.Error("flat Stream field did not enable the streaming path")
	}
}
