package serve

import (
	"sync/atomic"
	"time"
)

// latencyBounds are the upper bounds of the coarse per-source latency
// histogram; the last bucket is unbounded.
var latencyBounds = [...]time.Duration{
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
}

// NumLatencyBuckets is the number of histogram buckets (len(bounds)+1 for
// the unbounded tail).
const NumLatencyBuckets = len(latencyBounds) + 1

// LatencyBucketLabels returns human-readable labels for the histogram
// buckets, index-aligned with SourceStats.LatencyBuckets.
func LatencyBucketLabels() []string {
	return []string{"<100us", "<1ms", "<10ms", "<100ms", "<1s", ">=1s"}
}

// hist is a lock-free coarse latency histogram.
type hist struct {
	counts [NumLatencyBuckets]atomic.Uint64
}

func (h *hist) observe(d time.Duration) {
	for i, ub := range latencyBounds {
		if d < ub {
			h.counts[i].Add(1)
			return
		}
	}
	h.counts[NumLatencyBuckets-1].Add(1)
}

func (h *hist) snapshot() [NumLatencyBuckets]uint64 {
	var out [NumLatencyBuckets]uint64
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// sourceCounters holds one source's atomic execution counters.
type sourceCounters struct {
	executions atomic.Uint64
	timeouts   atomic.Uint64
	lat        hist
}

// SourceStats is a snapshot of one source's execution counters.
type SourceStats struct {
	// Executions counts completed select+filter phases (successes and
	// evaluation errors; not admissions lost to timeouts).
	Executions uint64 `json:"executions"`
	// Timeouts counts executions abandoned because the per-source deadline
	// or the request context fired first.
	Timeouts uint64 `json:"timeouts"`
	// LatencyBuckets is the coarse completion-latency histogram,
	// index-aligned with LatencyBucketLabels.
	LatencyBuckets [NumLatencyBuckets]uint64 `json:"latency_buckets"`
}

// Stats is a point-in-time snapshot of a Server's counters. All counters
// are cumulative since construction.
type Stats struct {
	// Requests counts Translate and Query/QueryJoin calls.
	Requests uint64 `json:"requests"`
	// InFlight is the number of Query/QueryJoin calls currently executing.
	InFlight int64 `json:"in_flight"`
	// CacheHits counts translations served from the resident cache.
	CacheHits uint64 `json:"cache_hits"`
	// CacheMisses counts translations actually computed.
	CacheMisses uint64 `json:"cache_misses"`
	// CacheShared counts duplicate concurrent misses collapsed onto another
	// caller's in-flight computation (singleflight suppression).
	CacheShared uint64 `json:"cache_shared"`
	// CacheEntries is the number of resident cache entries.
	CacheEntries int `json:"cache_entries"`
	// CacheEvictions counts entries evicted for capacity.
	CacheEvictions uint64 `json:"cache_evictions"`
	// Timeouts counts per-source executions cut off by a deadline.
	Timeouts uint64 `json:"timeouts"`
	// Errors counts requests that returned an error.
	Errors uint64 `json:"errors"`
	// Sources holds per-source execution counters by source name.
	Sources map[string]SourceStats `json:"sources"`
	// LatencyLabels labels the histogram buckets.
	LatencyLabels []string `json:"latency_labels"`
}

// HitRate returns the fraction of translation lookups that skipped a fresh
// computation (resident hits plus singleflight-shared results).
func (s Stats) HitRate() float64 {
	total := s.CacheHits + s.CacheMisses + s.CacheShared
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits+s.CacheShared) / float64(total)
}
