package serve

import (
	"repro/internal/obs"
)

// LatencyBounds are the finite upper bounds (in seconds) of the per-source
// latency histogram, following the Prometheus "le" convention: bucket i
// counts executions taking <= LatencyBounds[i] seconds; the last bucket is
// unbounded (+Inf).
func LatencyBounds() []float64 {
	return []float64{100e-6, 1e-3, 10e-3, 100e-3, 1}
}

// NumLatencyBuckets is the number of histogram buckets (len(bounds)+1 for
// the unbounded tail).
const NumLatencyBuckets = 6

// LatencyBucketLabels returns human-readable labels for the histogram
// buckets, index-aligned with SourceStats.LatencyBuckets.
func LatencyBucketLabels() []string {
	return []string{"<=100us", "<=1ms", "<=10ms", "<=100ms", "<=1s", ">1s"}
}

// sourceCounters holds one source's registry-backed execution collectors.
// Executions and latency come from the histogram (its count is the number
// of completed executions); timeouts are a separate counter.
type sourceCounters struct {
	timeouts *obs.Counter
	lat      *obs.Histogram
}

// latencyBuckets converts the histogram snapshot to the fixed per-bucket
// array of the Stats JSON shape.
func (sc *sourceCounters) latencyBuckets() [NumLatencyBuckets]uint64 {
	var out [NumLatencyBuckets]uint64
	s := sc.lat.Snapshot()
	for i := 0; i < len(s.Counts) && i < NumLatencyBuckets; i++ {
		out[i] = s.Counts[i]
	}
	return out
}

// SourceStats is a snapshot of one source's execution counters.
type SourceStats struct {
	// Executions counts completed select+filter phases (successes and
	// evaluation errors; not admissions lost to timeouts).
	Executions uint64 `json:"executions"`
	// Timeouts counts executions abandoned because the per-source deadline
	// or the request context fired first.
	Timeouts uint64 `json:"timeouts"`
	// LatencyBuckets is the coarse completion-latency histogram,
	// index-aligned with LatencyBucketLabels.
	LatencyBuckets [NumLatencyBuckets]uint64 `json:"latency_buckets"`
	// BreakerState is the source's circuit-breaker state ("closed", "open",
	// "half-open") — "closed" when breakers are off.
	BreakerState string `json:"breaker_state"`
}

// Stats is a point-in-time snapshot of a Server's counters. All counters
// are cumulative since construction.
type Stats struct {
	// Requests counts Translate and Query/QueryJoin calls.
	Requests uint64 `json:"requests"`
	// InFlight is the number of Query/QueryJoin calls currently executing.
	InFlight int64 `json:"in_flight"`
	// CacheHits counts translations served from the resident cache.
	CacheHits uint64 `json:"cache_hits"`
	// CacheMisses counts translations actually computed.
	CacheMisses uint64 `json:"cache_misses"`
	// CacheShared counts duplicate concurrent misses collapsed onto another
	// caller's in-flight computation (singleflight suppression).
	CacheShared uint64 `json:"cache_shared"`
	// CacheEntries is the number of resident cache entries.
	CacheEntries int `json:"cache_entries"`
	// CacheEvictions counts entries evicted for capacity.
	CacheEvictions uint64 `json:"cache_evictions"`
	// MatchCacheHits counts matching lookups served from the shared
	// cross-request matchings cache (zero when the cache is disabled).
	MatchCacheHits uint64 `json:"matchcache_hits"`
	// MatchCacheMisses counts matching lookups that derived fresh matchings,
	// including traced bypasses.
	MatchCacheMisses uint64 `json:"matchcache_misses"`
	// MatchCacheEvictions counts shared matchings-cache entries evicted for
	// capacity.
	MatchCacheEvictions uint64 `json:"matchcache_evictions"`
	// MatchCacheEntries is the number of resident shared matchings-cache
	// entries.
	MatchCacheEntries int `json:"matchcache_entries"`
	// PlanHits counts translation fragments replayed from the shared
	// cross-request translation plan (zero when the plan is disabled).
	PlanHits uint64 `json:"plan_hits"`
	// PlanMisses counts plan lookups that ran the algorithm, including
	// traced bypasses.
	PlanMisses uint64 `json:"plan_misses"`
	// PlanEvictions counts shared translation-plan entries evicted for
	// capacity.
	PlanEvictions uint64 `json:"plan_evictions"`
	// PlanEntries is the number of resident shared translation-plan entries.
	PlanEntries int `json:"plan_entries"`
	// StreamRequests counts Query/QueryJoin calls answered by the streaming
	// pipeline (zero when streaming is disabled).
	StreamRequests uint64 `json:"stream_requests"`
	// StreamInFlight is the number of tuples currently in flight in
	// streaming pipelines (buffered in shard channels or in a blocked
	// sender's hand).
	StreamInFlight int64 `json:"stream_in_flight"`
	// StreamPeakInFlight is the high-water mark of StreamInFlight — the peak
	// buffer occupancy, bounded by shards × (buffer + 2) per request.
	StreamPeakInFlight int64 `json:"stream_peak_in_flight"`
	// StreamEmitted counts tuples emitted by shard executors.
	StreamEmitted uint64 `json:"stream_emitted"`
	// StreamMergeWaits counts the times the k-way merge blocked waiting for
	// a shard to produce.
	StreamMergeWaits uint64 `json:"stream_merge_waits"`
	// IndexProbes counts index probes executed by the access-path planner,
	// one per planned disjunct (zero when indexing is off).
	IndexProbes uint64 `json:"index_probes"`
	// IndexFallbacks counts selections answered by a full scan because no
	// sound probe existed for the query.
	IndexFallbacks uint64 `json:"index_fallbacks"`
	// IndexScanned counts tuples evaluated by selections: probe candidates
	// on indexed executions, whole universes on fallbacks.
	IndexScanned uint64 `json:"index_scanned_tuples"`
	// BreakerTrips counts circuit-breaker transitions to the open state
	// across all sources (zero when breakers are off).
	BreakerTrips uint64 `json:"breaker_trips"`
	// HedgesLaunched counts hedged source attempts launched after the
	// latency-quantile delay (zero when hedging is off).
	HedgesLaunched uint64 `json:"hedges_launched"`
	// HedgesWon counts hedged attempts whose result was the one returned.
	HedgesWon uint64 `json:"hedges_won"`
	// Retries counts source execution re-runs after typed transient faults
	// (zero when retry is off).
	Retries uint64 `json:"retries"`
	// AdmissionRejected counts cache inserts refused by the TinyLFU
	// admission policy, translation and matchings caches combined (zero
	// when admission is off).
	AdmissionRejected uint64 `json:"admission_rejected"`
	// Timeouts counts per-source executions cut off by a deadline.
	Timeouts uint64 `json:"timeouts"`
	// Errors counts requests that returned an error.
	Errors uint64 `json:"errors"`
	// Sources holds per-source execution counters by source name.
	Sources map[string]SourceStats `json:"sources"`
	// LatencyLabels labels the histogram buckets.
	LatencyLabels []string `json:"latency_labels"`
}

// HitRate returns the fraction of translation lookups that skipped a fresh
// computation (resident hits plus singleflight-shared results).
func (s Stats) HitRate() float64 {
	total := s.CacheHits + s.CacheMisses + s.CacheShared
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits+s.CacheShared) / float64(total)
}
