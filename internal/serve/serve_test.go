package serve

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/mediator"
	"repro/internal/qparse"
	"repro/internal/qtree"
	"repro/internal/sources"
)

// bookstoreServer builds a union-style serving stack over the Examples 1–2
// bookstore (Amazon + Clbooks over one catalog), mirroring cmd/mediatord.
func bookstoreServer(cfg Config) (*Server, *mediator.Mediator, map[string]*engine.Relation) {
	med := mediator.New(sources.NewAmazon(), sources.NewClbooks())
	catalog := sources.BookRelation("catalog", sources.GenBooks(11, 240))
	med.Indexes = map[string]engine.IndexSet{
		"amazon":  engine.BuildIndexes(catalog, "publisher", "isbn", "subject"),
		"clbooks": engine.BuildIndexes(catalog, "publisher"),
	}
	data := map[string]*engine.Relation{"amazon": catalog, "clbooks": catalog}
	return New(med, data, cfg), med, data
}

// mixedWorkload is a mixed bag of simple conjunctions (SCM path), complex
// trees (TDQM path), permuted duplicates (canonical-cache sharing), and an
// empty-answer query.
var mixedWorkload = []string{
	`[ln = "Clancy"] and [fn = "Tom"]`,
	`[fn = "Tom"] and [ln = "Clancy"]`,
	`[publisher = "aw"]`,
	`[pyear = 1997] and [pmonth = 5]`,
	`[ti contains java(near)jdk]`,
	`([ln = "Clancy"] and [fn = "Tom"]) or [kwd contains web]`,
	`[kwd contains web] or ([fn = "Tom"] and [ln = "Clancy"])`,
	`(([ln = "Smith"] and [fn = "John"]) or [kwd contains web] or [kwd contains java]) and [pyear = 1997] and ([pmonth = 5] or [pmonth = 6])`,
	`[kwd contains java] and ([pyear = 1996] or [pyear = 1997])`,
}

func render(r *engine.Relation) string {
	var b strings.Builder
	for _, t := range r.Tuples {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestConcurrentEquivalence hammers one Server from 8 goroutines with the
// mixed workload and asserts every parallel answer is byte-identical to the
// sequential mediator.ExecuteUnion result. Run under -race this is the
// concurrency-correctness check of the serving layer.
func TestConcurrentEquivalence(t *testing.T) {
	srv, med, data := bookstoreServer(Config{CacheSize: 32, Workers: 4})

	queries := make([]*qtree.Node, len(mixedWorkload))
	want := make([]string, len(mixedWorkload))
	for i, s := range mixedWorkload {
		queries[i] = qparse.MustParse(s)
		rel, _, err := med.ExecuteUnion(queries[i], data)
		if err != nil {
			t.Fatalf("sequential %s: %v", s, err)
		}
		want[i] = render(rel)
	}

	const goroutines, rounds = 8, 40
	ctx := context.Background()
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				k := (g + i) % len(queries)
				rel, err := srv.Query(ctx, queries[k])
				if err != nil {
					errCh <- err
					return
				}
				if got := render(rel); got != want[k] {
					t.Errorf("goroutine %d: parallel result for %q diverged from sequential", g, mixedWorkload[k])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	st := srv.Stats()
	if st.Requests != goroutines*rounds {
		t.Errorf("Requests = %d, want %d", st.Requests, goroutines*rounds)
	}
	if st.CacheHits == 0 {
		t.Error("expected cache hits under a repeating workload")
	}
	if st.Errors != 0 || st.Timeouts != 0 {
		t.Errorf("Errors = %d, Timeouts = %d, want 0", st.Errors, st.Timeouts)
	}
	for _, name := range []string{"amazon", "clbooks"} {
		if st.Sources[name].Executions == 0 {
			t.Errorf("source %s recorded no executions", name)
		}
	}
}

// TestQueryJoinEquivalence checks the join-style fan-out against the
// sequential ExecuteJoin on the Example 3 library scenario.
func TestQueryJoinEquivalence(t *testing.T) {
	med := mediator.New(sources.NewT1(), sources.NewT2())
	med.Glue = sources.LibraryGlue()
	people, papers := sources.GenLibrary(42, 10, 25)
	data := map[string]*engine.Relation{
		"t1": sources.T1Relation(people, papers),
		"t2": sources.T2Relation(people),
	}
	srv := New(med, data, Config{CacheSize: 8})
	queries := []string{
		`[fac.ln = pub.ln] and [fac.fn = pub.fn] and [fac.bib contains data(near)mining] and [fac.dept = cs]`,
		`([fac.dept = cs] or [fac.dept = ee]) and [fac.bib contains data(near)mining]`,
	}
	for _, s := range queries {
		q := qparse.MustParse(s)
		wantRel, _, err := med.ExecuteJoin(q, data)
		if err != nil {
			t.Fatal(err)
		}
		got, err := srv.QueryJoin(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if render(got) != render(wantRel) {
			t.Errorf("QueryJoin(%q) diverged from ExecuteJoin", s)
		}
	}
}

// TestCacheStampede asserts singleflight duplicate-suppression: N
// concurrent misses for one canonical key run exactly one translation.
func TestCacheStampede(t *testing.T) {
	var calls atomic.Int32
	running := make(chan struct{})
	release := make(chan struct{})
	want := &mediator.Translation{}
	ct := newCachingTranslator(func(*qtree.Node) (*mediator.Translation, error) {
		if calls.Add(1) == 1 {
			close(running)
		}
		<-release
		return want, nil
	}, 8, false)

	q1 := qparse.MustParse(`[ln = "Clancy"] and [fn = "Tom"]`)
	q2 := qparse.MustParse(`[fn = "Tom"] and [ln = "Clancy"]`) // same canonical key

	const stampede = 16
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if tr, err := ct.Translate(q1); err != nil || tr != want {
			t.Errorf("leader: (%v, %v)", tr, err)
		}
	}()
	<-running // translation in flight: every duplicate below must join it
	for i := 0; i < stampede-1; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := q1
			if i%2 == 0 {
				q = q2
			}
			if tr, err := ct.Translate(q); err != nil || tr != want {
				t.Errorf("follower: (%v, %v)", tr, err)
			}
		}(i)
	}
	// Followers either join the in-flight call (shared) or, if scheduled
	// after completion, hit the cache; none may recompute.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if calls.Load() != 1 {
		t.Errorf("translation ran %d times under stampede, want 1", calls.Load())
	}
	if got := ct.Hits() + ct.Misses() + ct.Shared(); got != stampede {
		t.Errorf("hits+misses+shared = %d, want %d", got, stampede)
	}
	if ct.Misses() != 1 {
		t.Errorf("Misses = %d, want 1", ct.Misses())
	}
	if ct.Shared() == 0 {
		t.Error("expected at least one singleflight-shared caller")
	}
}

// TestCanonicalCacheSharing asserts permuted-but-equivalent queries share
// one cache entry (and return the identical translation instance).
func TestCanonicalCacheSharing(t *testing.T) {
	srv, _, _ := bookstoreServer(Config{CacheSize: 8})
	ctx := context.Background()
	a, err := srv.Translate(ctx, qparse.MustParse(`[ln = "Clancy"] and [fn = "Tom"]`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := srv.Translate(ctx, qparse.MustParse(`[fn = "Tom"] and [ln = "Clancy"]`))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("permuted query missed the canonical cache entry")
	}
	ct := srv.Translator()
	if ct.Misses() != 1 || ct.Hits() != 1 || ct.Len() != 1 {
		t.Errorf("misses=%d hits=%d len=%d, want 1/1/1", ct.Misses(), ct.Hits(), ct.Len())
	}
}

// TestSourceTimeout asserts the per-source deadline cuts off slow scans and
// is recorded in the stats.
func TestSourceTimeout(t *testing.T) {
	med := mediator.New(sources.NewAmazon(), sources.NewClbooks())
	catalog := sources.BookRelation("catalog", sources.GenBooks(5, 4000))
	data := map[string]*engine.Relation{"amazon": catalog, "clbooks": catalog}
	srv := New(med, data, Config{CacheSize: 8, SourceTimeout: time.Nanosecond})

	_, err := srv.Query(context.Background(), qparse.MustParse(`[ti contains java(near)jdk]`))
	if err == nil {
		t.Fatal("expected a deadline error")
	}
	st := srv.Stats()
	if st.Timeouts == 0 {
		t.Errorf("Timeouts = 0, want > 0 (err = %v)", err)
	}
	if st.Errors == 0 {
		t.Error("Errors = 0, want > 0")
	}
}

// TestCanceledContext asserts a pre-canceled request context fails fast.
func TestCanceledContext(t *testing.T) {
	srv, _, _ := bookstoreServer(Config{CacheSize: 8, Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := srv.Query(ctx, qparse.MustParse(`[publisher = "aw"]`)); err == nil {
		t.Error("expected context.Canceled from the fan-out")
	}
}

// TestCacheEvictionUnderPressure runs more distinct queries than the cache
// holds and checks evictions are counted while answers stay correct.
func TestCacheEvictionUnderPressure(t *testing.T) {
	srv, med, data := bookstoreServer(Config{CacheSize: 2})
	ctx := context.Background()
	for round := 0; round < 2; round++ {
		for _, s := range mixedWorkload {
			q := qparse.MustParse(s)
			got, err := srv.Query(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			wantRel, _, err := med.ExecuteUnion(q, data)
			if err != nil {
				t.Fatal(err)
			}
			if render(got) != render(wantRel) {
				t.Fatalf("eviction pressure broke correctness for %q", s)
			}
		}
	}
	st := srv.Stats()
	if st.CacheEvictions == 0 {
		t.Error("expected evictions with capacity 2 and 8 distinct keys")
	}
	if st.CacheEntries > 2 {
		t.Errorf("CacheEntries = %d exceeds capacity 2", st.CacheEntries)
	}
}
