package serve

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/mediator"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/stream"
)

// ErrBreakerOpen is re-exported from package resilience so serve callers
// can errors.Is a degraded answer without importing it: a request that
// touched a tripped source fails with this typed error, never with a
// silently smaller answer.
var ErrBreakerOpen = resilience.ErrBreakerOpen

// defaultResilienceSeed seeds the retry jitter when ResilienceConfig.Seed
// is 0, keeping backoff schedules replayable by default.
const defaultResilienceSeed = 1

// sourceResilience is one source's fault-absorption state: its circuit
// breaker (nil when breakers are off) and the latency tracker feeding the
// hedge delay (nil when hedging is off). The retrier is shared server-wide
// (backoff jitter need not be source-scoped).
type sourceResilience struct {
	breaker *resilience.Breaker
	lat     *resilience.LatencyTracker
}

// initResilience builds the per-source resilience state for rc. With the
// zero config it leaves everything nil and the serving paths run exactly
// as before the layer existed.
func (s *Server) initResilience(rc ResilienceConfig) {
	if !rc.enabled() {
		return
	}
	if rc.Retries > 1 {
		cfg := rc.RetryConfig
		cfg.MaxAttempts = rc.Retries
		seed := rc.Seed
		if seed == 0 {
			seed = defaultResilienceSeed
		}
		s.retrier = resilience.NewRetrier(seed, cfg)
	}
	s.res = make(map[string]*sourceResilience, len(s.med.Sources))
	for _, src := range s.med.Sources {
		rs := &sourceResilience{}
		if rc.Breaker {
			rs.breaker = resilience.NewBreaker(rc.BreakerConfig)
		}
		if rc.Hedge {
			rs.lat = &resilience.LatencyTracker{}
		}
		s.res[src.Name] = rs
	}
}

// breakerState returns the numeric breaker state for the named source
// (0 closed, 1 open, 2 half-open) — 0 when breakers are off, so the
// qmap_breaker_state gauge always exports.
func (s *Server) breakerState(source string) int {
	rs := s.res[source]
	if rs == nil || rs.breaker == nil {
		return 0
	}
	return int(rs.breaker.State())
}

// breakerTrips sums breaker trips across all sources.
func (s *Server) breakerTrips() uint64 {
	var n uint64
	for _, rs := range s.res {
		if rs.breaker != nil {
			n += rs.breaker.Trips()
		}
	}
	return n
}

// admissionRejected sums TinyLFU admission rejections across the
// translation cache and the shared matchings cache.
func (s *Server) admissionRejected() uint64 {
	n := s.tr.AdmissionRejected()
	if s.mc != nil {
		n += s.mc.AdmissionRejected()
	}
	return n
}

// retryableFault reports whether a source error is worth re-executing:
// only typed transient faults. Evaluation errors are deterministic (the
// retry would fail identically), and a blown deadline has no time left to
// retry in.
func retryableFault(err error) bool {
	return errors.Is(err, engine.ErrInjected)
}

// sourceFailure reports whether a source outcome should count against its
// breaker. Cancellation is excluded: a request abandoned by its caller (or
// a hedge loser cancelled by the winner) says nothing about the source's
// health.
func sourceFailure(err error) bool {
	return err != nil && !errors.Is(err, context.Canceled)
}

// sourceEvents collects one source's resilience activity during a request,
// for the post-merge trace spans. Each fan-out goroutine writes its own
// index-aligned entry; the request goroutine reads them after wg.Wait.
type sourceEvents struct {
	breakerDenied bool
	retries       int
	hedgeLaunched bool
	hedgeWon      bool
}

// runSource is the per-source operation of the materialized fan-out with
// the full resilience stack applied, layered breaker → retry → hedge:
//
//	breaker.Allow gates the whole operation (typed ErrBreakerOpen when
//	open — the degraded-answer contract), each retry attempt is a hedged
//	execution, and the breaker records the operation's final outcome, so
//	Allow/Record stay paired exactly once per request per source.
func (s *Server) runSource(ctx context.Context, tr *mediator.Translation, st *mediator.SourceTranslation, branchFilter bool, ev *sourceEvents) (*engine.Relation, error) {
	name := st.Source.Name
	rs := s.res[name]
	if rs != nil && rs.breaker != nil {
		if err := rs.breaker.Allow(); err != nil {
			if ev != nil {
				ev.breakerDenied = true
			}
			return nil, fmt.Errorf("serve: source %s: %w", name, err)
		}
	}
	rel, err := s.runSourceAttempts(ctx, tr, st, branchFilter, rs, ev)
	if rs != nil && rs.breaker != nil {
		rs.breaker.Record(sourceFailure(err))
	}
	return rel, err
}

// runSourceAttempts runs the bounded-retry loop whose attempts are hedged
// executions (or plain ones when hedging is off).
func (s *Server) runSourceAttempts(ctx context.Context, tr *mediator.Translation, st *mediator.SourceTranslation, branchFilter bool, rs *sourceResilience, ev *sourceEvents) (*engine.Relation, error) {
	attempt := func(ctx context.Context) (*engine.Relation, error) {
		return s.execSourceOnce(ctx, tr, st, branchFilter, rs)
	}
	if rs != nil && rs.lat != nil {
		single := attempt
		attempt = func(ctx context.Context) (*engine.Relation, error) {
			delay := resilience.HedgeDelay(rs.lat, s.resCfg.HedgeConfig)
			rel, err, launched, won := resilience.Hedge(ctx, delay, single)
			if launched {
				s.hedgeLaunched.Inc()
				if ev != nil {
					ev.hedgeLaunched = true
				}
			}
			if won {
				s.hedgeWon.Inc()
				if ev != nil {
					ev.hedgeWon = true
				}
			}
			return rel, err
		}
	}
	if s.retrier == nil {
		return attempt(ctx)
	}
	rel, retries, err := resilience.Do(ctx, s.retrier, retryableFault, attempt)
	if retries > 0 {
		s.retriesCtr.Add(uint64(retries))
		if ev != nil {
			ev.retries = retries
		}
	}
	return rel, err
}

// execSourceOnce admits one source execution to the worker pool, runs it in
// a goroutine, and waits for completion or deadline — one attempt of the
// resilience stack, and the entire per-source path when the stack is off.
func (s *Server) execSourceOnce(ctx context.Context, tr *mediator.Translation, st *mediator.SourceTranslation, branchFilter bool, rs *sourceResilience) (*engine.Relation, error) {
	name := st.Source.Name
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, fmt.Errorf("serve: source %s: %w", name, ctx.Err())
	}
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	sc := s.sources[name]
	start := time.Now()
	type result struct {
		rel *engine.Relation
		err error
	}
	ch := make(chan result, 1)
	go func() {
		defer func() { <-s.sem }()
		rel, err := s.evalSource(ctx, tr, st, branchFilter)
		ch <- result{rel, err}
	}()
	select {
	case r := <-ch:
		elapsed := time.Since(start)
		if sc != nil {
			sc.lat.ObserveDuration(elapsed)
		}
		if rs != nil && rs.lat != nil && r.err == nil {
			rs.lat.Observe(elapsed)
		}
		return r.rel, r.err
	case <-ctx.Done():
		// The engine has no cancellation points: the worker keeps its pool
		// slot until the abandoned scan finishes, and its result is
		// discarded. Admission control stays accurate. Only deadlines count
		// as timeouts — a cancelled context (caller gone, or a hedge loser
		// cancelled by the winner) is not a slow source.
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			s.timeouts.Inc()
			if sc != nil {
				sc.timeouts.Inc()
			}
		}
		return nil, fmt.Errorf("serve: source %s: %w", name, ctx.Err())
	}
}

// wrapShardHook layers the streaming path's resilience onto the configured
// shard hook: breaker admission first (Allow per shard execution; the
// matching Record comes from the pipeline's OnShardDone callback, so the
// outcome covers the whole shard scan, not just the hook), then bounded
// retry of the hook itself. The hook runs before any tuple is emitted, so
// retrying it never duplicates output — which is also why shard executions
// are not hedged: a shard's output is an ordered channel feeding the
// deterministic merge, and racing two copies of it would forfeit the
// determinism contract.
func (s *Server) wrapShardHook(hook stream.Hook) stream.Hook {
	if !s.resCfg.enabled() {
		return hook
	}
	return func(ctx context.Context, source string, shard int) error {
		rs := s.res[source]
		if rs != nil && rs.breaker != nil {
			if err := rs.breaker.Allow(); err != nil {
				return err
			}
		}
		if hook == nil {
			return nil
		}
		if s.retrier == nil {
			return hook(ctx, source, shard)
		}
		_, retries, err := resilience.Do(ctx, s.retrier, retryableFault,
			func(ctx context.Context) (struct{}, error) {
				return struct{}{}, hook(ctx, source, shard)
			})
		if retries > 0 {
			s.retriesCtr.Add(uint64(retries))
		}
		return err
	}
}

// recordShardOutcome feeds one finished shard execution back into its
// source's breaker. Executions the breaker itself refused are skipped
// (they were never admitted, so there is no Record to pair), and
// cancellation does not count as failure.
func (s *Server) recordShardOutcome(source string, err error) {
	rs := s.res[source]
	if rs == nil || rs.breaker == nil {
		return
	}
	if errors.Is(err, resilience.ErrBreakerOpen) {
		return
	}
	rs.breaker.Record(sourceFailure(err))
}

// resilienceSpan emits the per-source breaker and hedge summary spans when
// the request context carries a tracer and the resilience layer is on.
// Called after the merge, on the single request goroutine (the tracer's
// single-writer contract), mirroring accessSpan.
func (s *Server) resilienceSpan(ctx context.Context, tr *mediator.Translation, events []sourceEvents) {
	if !s.resCfg.enabled() {
		return
	}
	t := obs.TracerFrom(ctx)
	if t == nil {
		return
	}
	for i := range tr.Sources {
		name := tr.Sources[i].Source.Name
		rs := s.res[name]
		if rs == nil {
			continue
		}
		var ev sourceEvents
		if i < len(events) {
			ev = events[i]
		}
		if rs.breaker != nil {
			sp := t.Start(obs.KindBreaker, name+" "+rs.breaker.State().String())
			sp.Set("trips", int64(rs.breaker.Trips()))
			denied := int64(0)
			if ev.breakerDenied {
				denied = 1
			}
			sp.Set("denied", denied)
			t.End()
		}
		if s.resCfg.Hedge || s.retrier != nil {
			sp := t.Start(obs.KindHedge, name)
			launched, won := int64(0), int64(0)
			if ev.hedgeLaunched {
				launched = 1
			}
			if ev.hedgeWon {
				won = 1
			}
			sp.Set("launched", launched)
			sp.Set("won", won)
			sp.Set("retries", int64(ev.retries))
			t.End()
		}
	}
}
