package serve

import (
	"context"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mediator"
	"repro/internal/qparse"
	"repro/internal/qtree"
	"repro/internal/sources"
)

// newBookstoreMediator builds the two-source bookstore stack serve_test.go's
// bookstoreServer wraps, without constructing a Server — so tests can take a
// cache-free sequential baseline or set Parallelism before New installs the
// shared matchings cache.
func newBookstoreMediator() (*mediator.Mediator, map[string]*engine.Relation) {
	med := mediator.New(sources.NewAmazon(), sources.NewClbooks())
	catalog := sources.BookRelation("catalog", sources.GenBooks(11, 240))
	med.Indexes = map[string]engine.IndexSet{
		"amazon":  engine.BuildIndexes(catalog, "publisher", "isbn", "subject"),
		"clbooks": engine.BuildIndexes(catalog, "publisher"),
	}
	return med, map[string]*engine.Relation{"amazon": catalog, "clbooks": catalog}
}

// TestServeMatchCacheGrid re-runs the mixed workload against the sequential
// cache-free mediator baseline across shared-matchings-cache on/off and
// translation parallelism 0/4: the cross-request cache and the branch worker
// pool must both be answer-invariant, alone and combined.
func TestServeMatchCacheGrid(t *testing.T) {
	baseMed, baseData := newBookstoreMediator()
	qs := make([]*qtree.Node, len(mixedWorkload))
	want := make([]string, len(mixedWorkload))
	for i, s := range mixedWorkload {
		qs[i] = qparse.MustParse(s)
		rel, _, err := baseMed.ExecuteUnion(qs[i], baseData)
		if err != nil {
			t.Fatalf("sequential baseline %q: %v", s, err)
		}
		want[i] = render(rel)
	}

	for _, g := range []struct {
		name       string
		matchcache int // Config.MatchCacheSize
		par        int // mediator.Parallelism
	}{
		{"cache-off/seq", -1, 0},
		{"cache-on/seq", 0, 0},
		{"cache-off/par4", -1, 4},
		{"cache-on/par4", 0, 4},
	} {
		t.Run(g.name, func(t *testing.T) {
			med, data := newBookstoreMediator()
			med.Parallelism = g.par
			srv := New(med, data, Config{MatchCacheSize: g.matchcache})
			if (srv.MatchCache() != nil) != (g.matchcache >= 0) {
				t.Fatalf("MatchCache() nil-ness wrong for MatchCacheSize %d", g.matchcache)
			}

			ctx := context.Background()
			const goroutines = 8
			var wg sync.WaitGroup
			for w := 0; w < goroutines; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 3*len(qs); i++ {
						k := (w + i) % len(qs)
						rel, err := srv.Query(ctx, qs[k])
						if err != nil {
							t.Errorf("Query(%q): %v", mixedWorkload[k], err)
							return
						}
						if render(rel) != want[k] {
							t.Errorf("Query(%q) diverged from cache-free sequential baseline", mixedWorkload[k])
							return
						}
					}
				}(w)
			}
			wg.Wait()

			st := srv.Stats()
			if g.matchcache < 0 {
				if st.MatchCacheHits != 0 || st.MatchCacheMisses != 0 || st.MatchCacheEntries != 0 {
					t.Errorf("disabled cache reported activity: %+v", st)
				}
			}
		})
	}
}

// TestServeMatchCacheChurnSoak mirrors the translation-cache churn soak one
// level down: a 2-entry shared matchings cache under a distinct-query
// workload must evict continuously while every answer stays byte-identical
// to the sequential baseline and the resident count respects capacity.
func TestServeMatchCacheChurnSoak(t *testing.T) {
	baseMed, baseData := newBookstoreMediator()
	qs := make([]*qtree.Node, len(mixedWorkload))
	want := make([]string, len(mixedWorkload))
	for i, s := range mixedWorkload {
		qs[i] = qparse.MustParse(s)
		rel, _, err := baseMed.ExecuteUnion(qs[i], baseData)
		if err != nil {
			t.Fatalf("sequential baseline %q: %v", s, err)
		}
		want[i] = render(rel)
	}

	const capacity = 2
	med, data := newBookstoreMediator()
	// CacheSize 1 keeps the translation cache from absorbing the workload:
	// almost every request re-translates and so re-consults the match cache.
	srv := New(med, data, Config{CacheSize: 1, MatchCacheSize: capacity})

	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4*len(qs); i++ {
				k := (w + i) % len(qs)
				rel, err := srv.Query(ctx, qs[k])
				if err != nil {
					t.Errorf("Query(%q): %v", mixedWorkload[k], err)
					return
				}
				if render(rel) != want[k] {
					t.Errorf("Query(%q) diverged under match-cache churn", mixedWorkload[k])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	st := srv.MatchCache().Stats()
	if st.Evictions == 0 {
		t.Error("expected eviction churn with a 2-entry match cache over a wider working set")
	}
	if st.Entries > capacity {
		t.Errorf("Entries = %d exceeds capacity %d", st.Entries, capacity)
	}
	if st.Misses == 0 {
		t.Error("no match-cache misses recorded; cache appears bypassed")
	}
	srvStats := srv.Stats()
	if srvStats.MatchCacheEvictions != st.Evictions || srvStats.MatchCacheHits != st.Hits {
		t.Errorf("server Stats %+v disagrees with MatchCacheStats %+v", srvStats, st)
	}
}

// TestServerTranslateBatch checks batch translation matches per-query
// Translate result-for-result, counts one request per query, and fails the
// whole remainder on a canceled context.
func TestServerTranslateBatch(t *testing.T) {
	med, data := newBookstoreMediator()
	srv := New(med, data, Config{})
	ctx := context.Background()

	qs := make([]*qtree.Node, 0, 2*len(mixedWorkload))
	for _, s := range mixedWorkload {
		qs = append(qs, qparse.MustParse(s))
	}
	qs = append(qs, qs[:len(mixedWorkload)]...) // duplicates: cache + singleflight territory

	before := srv.Stats().Requests
	results := srv.TranslateBatch(ctx, qs)
	if len(results) != len(qs) {
		t.Fatalf("%d results for %d queries", len(results), len(qs))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		single, err := srv.Translate(ctx, qs[i])
		if err != nil {
			t.Fatalf("single Translate %d: %v", i, err)
		}
		if r.Translation.Filter.String() != single.Filter.String() {
			t.Errorf("item %d: batch filter %s != single %s", i, r.Translation.Filter, single.Filter)
		}
		for j := range r.Translation.Sources {
			if got, want := r.Translation.Sources[j].Query.String(), single.Sources[j].Query.String(); got != want {
				t.Errorf("item %d source %d: batch %s != single %s", i, j, got, want)
			}
		}
	}
	if got := srv.Stats().Requests - before; got < uint64(len(qs)) {
		t.Errorf("batch recorded %d requests, want at least %d", got, len(qs))
	}

	canceled, cancel := context.WithCancel(ctx)
	cancel()
	errBefore := srv.Stats().Errors
	for i, r := range srv.TranslateBatch(canceled, qs) {
		// Duplicates may still resolve from the resident cache before the
		// worker observes cancellation; an item must either fail with the
		// context error or carry a real translation.
		if r.Err == nil && r.Translation == nil {
			t.Errorf("item %d: neither translation nor error under canceled context", i)
		}
	}
	if srv.Stats().Errors == errBefore {
		t.Error("canceled batch recorded no errors")
	}

	if got := srv.TranslateBatch(ctx, nil); len(got) != 0 {
		t.Errorf("empty batch returned %d results", len(got))
	}
}

// TestServeSharesOneMatchCacheAcrossRequests pins the tentpole claim: two
// requests for distinct queries sharing constraint groups reuse matchings
// through the server's cache, visible as hits without any Stats divergence.
func TestServeSharesOneMatchCacheAcrossRequests(t *testing.T) {
	med, data := newBookstoreMediator()
	// The translation plan would replay the recurring {ln, fn} SCM fragment
	// before the matcher ever runs; disable it so this test observes the
	// match-cache layer in isolation.
	srv := New(med, data, Config{CacheSize: 1, PlanSize: -1})
	ctx := context.Background()

	// The {ln, fn} conjunction appears as q1's whole constraint set and as
	// one Or-branch of q2: same canonical constraint-group key, but the two
	// queries canonicalize differently, so the translation cache cannot
	// serve the second — only the match cache carries work across.
	q1 := qparse.MustParse(`[ln = "Clancy"] and [fn = "Tom"]`)
	q2 := qparse.MustParse(`([ln = "Clancy"] and [fn = "Tom"]) or [kwd contains web]`)
	if _, err := srv.Translate(ctx, q1); err != nil {
		t.Fatal(err)
	}
	h0 := srv.MatchCache().Stats().Hits
	if _, err := srv.Translate(ctx, q2); err != nil {
		t.Fatal(err)
	}
	if srv.MatchCache().Stats().Hits == h0 {
		t.Error("second request with overlapping constraint groups recorded no match-cache hits")
	}

	// A mediator that already carries a cache keeps it.
	mc := core.NewMatchCache(64)
	med2, data2 := newBookstoreMediator()
	med2.MatchCache = mc
	srv2 := New(med2, data2, Config{})
	if srv2.MatchCache() != mc {
		t.Error("New replaced the mediator's existing match cache")
	}
}
