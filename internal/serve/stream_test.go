package serve

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/mediator"
	"repro/internal/obs"
	"repro/internal/qparse"
	"repro/internal/sources"
)

// libraryServer builds the Example 3 join-style stack (T1 + T2 with glue).
func libraryServer(cfg Config) (*Server, *mediator.Mediator, map[string]*engine.Relation) {
	med := mediator.New(sources.NewT1(), sources.NewT2())
	med.Glue = sources.LibraryGlue()
	people, papers := sources.GenLibrary(42, 10, 25)
	data := map[string]*engine.Relation{
		"t1": sources.T1Relation(people, papers),
		"t2": sources.T2Relation(people),
	}
	return New(med, data, cfg), med, data
}

// TestStreamUnionEquivalence checks that the streaming path answers every
// mixed-workload query byte-identically — content and order — to the
// sequential ExecuteUnion, across shard counts and buffer sizes.
func TestStreamUnionEquivalence(t *testing.T) {
	_, med, data := bookstoreServer(Config{})
	for _, shards := range []int{1, 2, 8} {
		for _, buf := range []int{1, 8, 64} {
			srv := New(med, data, Config{Stream: true, Shards: shards, StreamBuffer: buf})
			for _, s := range mixedWorkload {
				q := qparse.MustParse(s)
				wantRel, _, err := med.ExecuteUnion(q, data)
				if err != nil {
					t.Fatal(err)
				}
				got, err := srv.Query(context.Background(), q)
				if err != nil {
					t.Fatalf("shards=%d buf=%d %q: %v", shards, buf, s, err)
				}
				if render(got) != render(wantRel) {
					t.Errorf("shards=%d buf=%d: streaming Query(%q) diverged from ExecuteUnion", shards, buf, s)
				}
			}
		}
	}
}

// TestStreamJoinEquivalence checks the streaming join path (build side +
// streamed probe) against the sequential ExecuteJoin on Example 3.
func TestStreamJoinEquivalence(t *testing.T) {
	_, med, data := libraryServer(Config{})
	queries := []string{
		`[fac.ln = pub.ln] and [fac.fn = pub.fn] and [fac.bib contains data(near)mining] and [fac.dept = cs]`,
		`([fac.dept = cs] or [fac.dept = ee]) and [fac.bib contains data(near)mining]`,
	}
	for _, shards := range []int{1, 2, 8} {
		srv := New(med, data, Config{Stream: true, Shards: shards, StreamBuffer: 4})
		for _, s := range queries {
			q := qparse.MustParse(s)
			wantRel, _, err := med.ExecuteJoin(q, data)
			if err != nil {
				t.Fatal(err)
			}
			got, err := srv.QueryJoin(context.Background(), q)
			if err != nil {
				t.Fatalf("shards=%d %q: %v", shards, s, err)
			}
			if render(got) != render(wantRel) {
				t.Errorf("shards=%d: streaming QueryJoin(%q) diverged from ExecuteJoin", shards, s)
			}
		}
	}
}

// TestStreamConcurrentEquivalence is the -race hammer for the streaming
// path: 8 goroutines against one streaming server, every answer compared to
// the sequential baseline.
func TestStreamConcurrentEquivalence(t *testing.T) {
	srv, med, data := bookstoreServer(Config{Stream: true, Shards: 4, StreamBuffer: 8, CacheSize: 32})
	queries := make([]string, len(mixedWorkload))
	want := make([]string, len(mixedWorkload))
	for i, s := range mixedWorkload {
		queries[i] = s
		rel, _, err := med.ExecuteUnion(qparse.MustParse(s), data)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = render(rel)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				k := (g + i) % len(queries)
				rel, err := srv.Query(context.Background(), qparse.MustParse(queries[k]))
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if render(rel) != want[k] {
					t.Errorf("goroutine %d: streaming result for %q diverged", g, queries[k])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := srv.Stats()
	if st.StreamRequests == 0 || st.StreamEmitted == 0 {
		t.Errorf("stream counters flat: requests=%d emitted=%d", st.StreamRequests, st.StreamEmitted)
	}
	if st.StreamInFlight != 0 {
		t.Errorf("stream in-flight = %d after all queries returned, want 0", st.StreamInFlight)
	}
}

// TestStreamBuildBudget forces a streaming join whose build side exceeds a
// tiny budget and expects the typed error.
func TestStreamBuildBudget(t *testing.T) {
	_, med, data := libraryServer(Config{})
	srv := New(med, data, Config{Stream: true, Shards: 2, BuildBudget: 1})
	q := qparse.MustParse(`([fac.dept = cs] or [fac.dept = ee]) and [fac.bib contains data(near)mining]`)
	_, err := srv.QueryJoin(context.Background(), q)
	if !errors.Is(err, ErrBuildBudget) {
		t.Fatalf("err = %v, want ErrBuildBudget", err)
	}
	if srv.Stats().Errors == 0 {
		t.Error("budget failure not counted in Errors")
	}
}

// TestStreamJoinIndexedBuildBudget: with access paths on, the join's build
// side collects through index probes, the budget still counts matching
// tuples, and an over-budget build fails with the typed error during the
// stream. With an adequate budget the indexed join must stay byte-identical
// to the sequential materialized join.
func TestStreamJoinIndexedBuildBudget(t *testing.T) {
	_, med, data := libraryServer(Config{})
	q := qparse.MustParse(`([fac.dept = cs] or [fac.dept = ee]) and [fac.bib contains data(near)mining]`)

	srv := New(med, data, Config{Stream: true, Shards: 2, Index: true, BuildBudget: 1})
	_, err := srv.QueryJoin(context.Background(), q)
	if !errors.Is(err, ErrBuildBudget) {
		t.Fatalf("err = %v, want ErrBuildBudget", err)
	}
	if st := srv.Stats(); st.IndexProbes+st.IndexFallbacks == 0 {
		t.Error("indexed build side planned no access paths")
	}

	srv = New(med, data, Config{Stream: true, Shards: 2, Index: true})
	want, _, err := med.ExecuteJoin(q, data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := srv.QueryJoin(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if render(got) != render(want) {
		t.Error("indexed streaming QueryJoin diverged from ExecuteJoin")
	}
}

// TestStreamShardHookFault injects a typed failure through the per-shard
// hook and expects it to surface wrapped from Query.
func TestStreamShardHookFault(t *testing.T) {
	_, med, data := bookstoreServer(Config{})
	inj := engine.NewInjector(3, engine.FaultPlan{ErrProb: 1})
	srv := New(med, data, Config{Stream: true, Shards: 2, ShardHook: inj.ApplyShard})
	_, err := srv.Query(context.Background(), qparse.MustParse(`[publisher = "aw"]`))
	if !errors.Is(err, engine.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
}

// TestStreamShardTimeout stalls every shard past the per-shard deadline and
// expects a deadline error plus timeout accounting.
func TestStreamShardTimeout(t *testing.T) {
	_, med, data := bookstoreServer(Config{})
	hook := func(ctx context.Context, _ string, _ int) error {
		select {
		case <-time.After(time.Second):
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	srv := New(med, data, Config{Stream: true, Shards: 2, SourceTimeout: 2 * time.Millisecond, ShardHook: hook})
	_, err := srv.Query(context.Background(), qparse.MustParse(`[publisher = "aw"]`))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if srv.Stats().Timeouts == 0 {
		t.Error("shard deadline not counted in Timeouts")
	}
}

// TestStreamCancelNoLeak cancels streaming requests at several points and
// checks the goroutine count settles back — the serve-level half of the
// leak test (the pipeline-level half lives in internal/stream).
func TestStreamCancelNoLeak(t *testing.T) {
	med := mediator.New(sources.NewAmazon(), sources.NewClbooks())
	catalog := sources.BookRelation("catalog", sources.GenBooks(3, 4000))
	data := map[string]*engine.Relation{"amazon": catalog, "clbooks": catalog}
	srv := New(med, data, Config{Stream: true, Shards: 8, StreamBuffer: 1})
	q := qparse.MustParse(`[pyear = 1997] or [pyear = 1996] or [pyear = 1995]`)

	base := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		if i%2 == 0 {
			cancel() // cancelled before the shards start
		} else {
			go func() {
				time.Sleep(time.Duration(i%5) * 100 * time.Microsecond)
				cancel() // cancelled mid-emit / mid-merge
			}()
		}
		_, _ = srv.Query(ctx, q)
		cancel()
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines did not settle to %d (now %d)\n%s",
				base, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st := srv.Stats(); st.StreamInFlight != 0 {
		t.Fatalf("stream in-flight = %d after cancellations, want 0", st.StreamInFlight)
	}
}

// TestStreamSpan checks the streaming path emits its summary span when the
// request context carries a tracer.
func TestStreamSpan(t *testing.T) {
	srv, _, _ := bookstoreServer(Config{Stream: true, Shards: 2})
	tr := obs.NewTracer()
	ctx := obs.WithTracer(context.Background(), tr)
	if _, err := srv.Query(ctx, qparse.MustParse(`[publisher = "aw"]`)); err != nil {
		t.Fatal(err)
	}
	root := tr.Root()
	if root == nil {
		t.Fatal("no trace recorded")
	}
	spans := root.FindAll(obs.KindStream)
	if len(spans) != 1 {
		t.Fatalf("got %d stream spans, want 1", len(spans))
	}
	if v, ok := spans[0].Counter("shards"); !ok || v != 4 {
		t.Errorf("stream span shards = %d (ok=%v), want 4 (2 sources × 2 shards)", v, ok)
	}
}

// statsMetricFor maps a Stats JSON field name to the registry metric that
// must back it. The stats-drift test below fails when a field is added to
// one surface only.
var statsMetricFor = map[string]string{
	"requests":              "qmap_serve_requests_total",
	"in_flight":             "qmap_serve_in_flight",
	"cache_hits":            "qmap_cache_hits_total",
	"cache_misses":          "qmap_cache_misses_total",
	"cache_shared":          "qmap_cache_shared_total",
	"cache_entries":         "qmap_cache_entries",
	"cache_evictions":       "qmap_cache_evictions_total",
	"matchcache_hits":       "qmap_matchcache_hits_total",
	"matchcache_misses":     "qmap_matchcache_misses_total",
	"matchcache_evictions":  "qmap_matchcache_evictions_total",
	"matchcache_entries":    "qmap_matchcache_entries",
	"plan_hits":             "qmap_plan_hits_total",
	"plan_misses":           "qmap_plan_misses_total",
	"plan_evictions":        "qmap_plan_evictions_total",
	"plan_entries":          "qmap_plan_entries",
	"stream_requests":       "qmap_stream_requests_total",
	"stream_in_flight":      "qmap_stream_in_flight",
	"stream_peak_in_flight": "qmap_stream_peak_in_flight",
	"stream_emitted":        "qmap_stream_emitted_total",
	"stream_merge_waits":    "qmap_stream_merge_waits_total",
	"index_probes":          "qmap_index_probes_total",
	"index_fallbacks":       "qmap_index_fallbacks_total",
	"index_scanned_tuples":  "qmap_index_scanned_tuples_total",
	"breaker_trips":         "qmap_breaker_trips_total",
	"hedges_launched":       "qmap_hedge_launched_total",
	"hedges_won":            "qmap_hedge_won_total",
	"retries":               "qmap_retry_total",
	"admission_rejected":    "qmap_admission_rejected_total",
	"timeouts":              "qmap_serve_timeouts_total",
	"errors":                "qmap_serve_errors_total",
	// Per-source maps and display labels have labeled/derived backing:
	"sources":        "qmap_source_latency_seconds",
	"latency_labels": "", // presentation-only: names the histogram buckets
}

// TestStatsMetricsDrift asserts every field of the GET /stats JSON shape has
// a matching metric in the server's registry (or an explicit presentation
// exemption), so a counter can't be added to one surface and forgotten on
// the other.
func TestStatsMetricsDrift(t *testing.T) {
	srv, _, _ := bookstoreServer(Config{Stream: true, Shards: 2, Index: true})
	// Touch both paths so functional collectors have live backing state.
	if _, err := srv.Query(context.Background(), qparse.MustParse(`[publisher = "aw"]`)); err != nil {
		t.Fatal(err)
	}

	var buf strings.Builder
	if err := srv.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseExposition(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	exported := make(map[string]bool, len(samples))
	for _, s := range samples {
		exported[s.Name] = true
		// Histograms expand to _bucket/_sum/_count; credit the base name.
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			exported[strings.TrimSuffix(s.Name, suffix)] = true
		}
	}

	st := reflect.TypeOf(Stats{})
	for i := 0; i < st.NumField(); i++ {
		tag := strings.Split(st.Field(i).Tag.Get("json"), ",")[0]
		if tag == "" {
			t.Errorf("Stats field %s has no json tag", st.Field(i).Name)
			continue
		}
		metric, known := statsMetricFor[tag]
		if !known {
			t.Errorf("Stats field %q has no entry in statsMetricFor: add the backing metric and map it", tag)
			continue
		}
		if metric == "" {
			continue // explicit presentation-only exemption
		}
		if !exported[metric] {
			t.Errorf("Stats field %q maps to metric %q, which the registry does not export", tag, metric)
		}
	}

	// The reverse direction: every mapped metric name must actually exist,
	// so the table can't rot either.
	for tag, metric := range statsMetricFor {
		if metric != "" && !exported[metric] {
			t.Errorf("statsMetricFor[%q] = %q not present in exposition", tag, metric)
		}
	}

	// SourceStats fields are label-backed; check them explicitly.
	for field, metric := range map[string]string{
		"executions":      "qmap_source_latency_seconds", // histogram count
		"timeouts":        "qmap_source_timeouts_total",
		"latency_buckets": "qmap_source_latency_seconds",
		"breaker_state":   "qmap_breaker_state",
	} {
		if !exported[metric] {
			t.Errorf("SourceStats field %q maps to metric %q, which the registry does not export", field, metric)
		}
	}
	sst := reflect.TypeOf(SourceStats{})
	for i := 0; i < sst.NumField(); i++ {
		tag := strings.Split(sst.Field(i).Tag.Get("json"), ",")[0]
		switch tag {
		case "executions", "timeouts", "latency_buckets", "breaker_state":
		default:
			t.Errorf("SourceStats field %q has no metric mapping in TestStatsMetricsDrift", tag)
		}
	}
}

// TestStreamPeakBounded runs a streaming query with a large answer and
// checks the peak in-flight gauge respects the shards × (buffer+2) bound —
// the memory-bound claim of the subsystem, at the serve level.
func TestStreamPeakBounded(t *testing.T) {
	med := mediator.New(sources.NewAmazon(), sources.NewClbooks())
	catalog := sources.BookRelation("catalog", sources.GenBooks(5, 6000))
	data := map[string]*engine.Relation{"amazon": catalog, "clbooks": catalog}
	const shards, buf = 4, 8
	srv := New(med, data, Config{Stream: true, Shards: shards, StreamBuffer: buf})
	rel, err := srv.Query(context.Background(), qparse.MustParse(`[pyear = 1997] or [pyear = 1996]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Tuples) == 0 {
		t.Fatal("expected a large answer")
	}
	st := srv.Stats()
	bound := int64(2 * shards * (buf + 2)) // two sources
	if st.StreamPeakInFlight > bound {
		t.Fatalf("peak in-flight %d exceeds %d (= sources × shards × (buffer+2)); answer had %d tuples",
			st.StreamPeakInFlight, bound, len(rel.Tuples))
	}
	if st.StreamPeakInFlight == 0 {
		t.Fatal("peak in-flight stayed zero on a streaming request")
	}
	_ = fmt.Sprintf("%d", st.StreamEmitted)
}
