package serve

import (
	"context"
	"sync"
	"testing"

	"repro/internal/qparse"
	"repro/internal/qtree"
)

// TestParallelTranslationUnderCache is the cache-interplay check for
// translator-level parallelism: a serving stack whose mediator fans out
// per-branch mapping (Mediator.Parallelism) must answer the mixed workload
// byte-identically to a fully sequential stack, with identical per-source
// translations — the translation cache stores whatever the parallel
// translator produced, so any nondeterminism would surface as a divergent
// cached answer. Run under -race in CI this also exercises intra-translation
// parallelism nested inside serve's own request/source fan-out.
func TestParallelTranslationUnderCache(t *testing.T) {
	seqSrv, _, _ := bookstoreServer(Config{CacheSize: 32, Workers: 4})
	parSrv, parMed, _ := bookstoreServer(Config{CacheSize: 32, Workers: 4})
	parMed.Parallelism = 4

	queries := make([]*qtree.Node, len(mixedWorkload))
	want := make([]string, len(mixedWorkload))
	ctx := context.Background()
	for i, s := range mixedWorkload {
		queries[i] = qparse.MustParse(s)
		rel, err := seqSrv.Query(ctx, queries[i])
		if err != nil {
			t.Fatalf("sequential %s: %v", s, err)
		}
		want[i] = render(rel)

		// Translation-level equivalence, branch by branch.
		seqTr, err := seqSrv.Translate(ctx, queries[i])
		if err != nil {
			t.Fatal(err)
		}
		parTr, err := parSrv.Translate(ctx, queries[i])
		if err != nil {
			t.Fatal(err)
		}
		if len(seqTr.Sources) != len(parTr.Sources) {
			t.Fatalf("%s: source count differs", s)
		}
		for j := range seqTr.Sources {
			if !parTr.Sources[j].Query.EqualCanonical(seqTr.Sources[j].Query) {
				t.Errorf("%s: parallel translation for %s differs\n got: %s\nwant: %s",
					s, seqTr.Sources[j].Source.Name, parTr.Sources[j].Query, seqTr.Sources[j].Query)
			}
			if !parTr.Sources[j].Residue.EqualCanonical(seqTr.Sources[j].Residue) {
				t.Errorf("%s: parallel residue for %s differs", s, seqTr.Sources[j].Source.Name)
			}
		}
		if !parTr.Filter.EqualCanonical(seqTr.Filter) {
			t.Errorf("%s: parallel filter differs\n got: %s\nwant: %s", s, parTr.Filter, seqTr.Filter)
		}
	}

	// Hammer the parallel stack concurrently; answers must match the
	// sequential baseline and the cache must still be effective.
	const goroutines, rounds = 8, 30
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				k := (g + i) % len(queries)
				rel, err := parSrv.Query(ctx, queries[k])
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if got := render(rel); got != want[k] {
					t.Errorf("goroutine %d: parallel-translation result for %q diverged", g, mixedWorkload[k])
					return
				}
			}
		}(g)
	}
	wg.Wait()

	if parSrv.Translator().Hits() == 0 {
		t.Error("expected translation-cache hits under a repeating workload")
	}
}
