package serve

import (
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/stream"
)

// CacheConfig groups the server's cache sizing: the canonical translation
// cache, the shared cross-request matchings cache, the shared translation
// plan, and the TinyLFU admission policy guarding the first two.
type CacheConfig struct {
	// Size bounds the translation cache in entries
	// (DefaultCacheSize if <= 0).
	Size int
	// Admission puts a TinyLFU frequency sketch in front of the translation
	// cache and the shared matchings cache: a full cache only admits a new
	// entry whose estimated access frequency strictly exceeds the eviction
	// victim's, so scan-like traffic (a flood of one-off queries) cannot
	// wash out the hot working set. Rejections are counted in
	// qmap_admission_rejected_total. Admission never changes answers — a
	// rejected insert is still returned to its caller, just not cached.
	Admission bool
	// MatchCache, when non-nil, is the shared cross-request matchings cache
	// the server installs on its mediator. Nil builds one sized by
	// MatchCacheSize.
	MatchCache *core.MatchCache
	// MatchCacheSize bounds the shared matchings cache in entries when
	// MatchCache is nil (core.DefaultMatchCacheSize if 0); a negative size
	// disables cross-request matching reuse entirely.
	MatchCacheSize int
	// Plan, when non-nil, is the shared cross-request translation plan the
	// server installs on its mediator. Nil builds one sized by PlanSize.
	Plan *core.Plan
	// PlanSize bounds the shared translation plan in entries when Plan is
	// nil (core.DefaultPlanSize if 0); a negative size disables
	// cross-request translation-plan reuse entirely.
	PlanSize int
}

// StreamConfig groups the streaming execution pipeline's knobs.
type StreamConfig struct {
	// Enabled switches Query/QueryJoin to the tuple-at-a-time pipeline of
	// internal/stream: per-shard executors over presorted universes, bounded
	// channels, and a deterministic k-way merge. Answers are byte-identical
	// to the materialized path; per-request memory is bounded by
	// Shards × Buffer in-flight tuples instead of result size. Shard
	// executors bypass the Workers pool (the merge needs one tuple from
	// every shard before emitting, so cross-shard admission control could
	// deadlock a request against itself); SourceTimeout applies per shard.
	Enabled bool
	// Shards is the number of shards each source's universe splits into
	// (1 if <= 0).
	Shards int
	// Buffer is the per-shard channel capacity (stream.DefaultBuffer
	// if <= 0).
	Buffer int
	// BuildBudget bounds the materialized build side of a streaming join in
	// tuples (DefaultBuildBudget if <= 0); exceeding it fails the request
	// with ErrBuildBudget.
	BuildBudget int
	// Hook, when non-nil, runs at the start of every shard execution — the
	// per-shard analogue of wrapping Executor, used for fault injection
	// (engine.Injector.ApplyShard) and admission checks. When resilience is
	// on, the server wraps it with breaker admission and bounded retry.
	Hook stream.Hook
}

// ResilienceConfig groups the per-source fault-absorption layer (package
// resilience). The zero value disables everything — the server behaves
// exactly as without the layer. All three mechanisms are semantics-
// preserving on clean runs: answers are byte-identical to the unprotected
// path, because breakers only trip on errors, retries only re-run pure
// failed executions, and hedges duplicate pure executions.
//
// Degraded-answer contract: a source whose breaker is open fails its
// requests fast with resilience.ErrBreakerOpen (wrapped with the source
// name). The request as a whole fails with that typed error — a tripped
// source is never silently omitted from a union or join answer.
type ResilienceConfig struct {
	// Breaker enables a per-source circuit breaker over a sliding
	// error-rate window, on both the materialized fan-out and the streaming
	// shard path.
	Breaker bool
	// BreakerConfig tunes the breakers (zero fields take the package
	// defaults: window 32, ratio 0.5, min samples 8, open 1s, 1 probe).
	BreakerConfig resilience.BreakerConfig
	// Retries is the total number of executions allowed per source request,
	// the first included; <= 1 disables retry. Only typed transient faults
	// (engine.ErrInjected) are retried — evaluation errors and deadlines
	// are not.
	Retries int
	// RetryConfig tunes the full-jitter exponential backoff between
	// attempts (zero fields take the package defaults). Its MaxAttempts is
	// overridden by Retries.
	RetryConfig resilience.RetryConfig
	// Hedge launches a duplicate of a straggling source execution after
	// that source's tracked latency-quantile delay and takes whichever
	// attempt completes first, cancelling the loser. Hedging applies to the
	// materialized fan-out only: a streaming shard's output is an ordered
	// channel feeding the deterministic merge, so duplicating it cannot be
	// raced without forfeiting the determinism contract.
	Hedge bool
	// HedgeConfig tunes the hedge delay policy (zero fields take the
	// package defaults: p95, 1ms floor, 1s cap).
	HedgeConfig resilience.HedgeConfig
	// Seed seeds the retry jitter stream (a fixed default if 0), making
	// backoff schedules replayable in tests.
	Seed int64
}

// enabled reports whether any resilience mechanism is on.
func (r ResilienceConfig) enabled() bool {
	return r.Breaker || r.Retries > 1 || r.Hedge
}

// Config sizes a Server. The zero value is a working default; NewServer
// offers the same knobs as functional options.
//
// The grouped sub-structs (Cache, Streaming, Resilience) are the primary
// surface. The flat fields marked Deprecated are a source-compatibility
// shim for configurations written before the regrouping: each one feeds
// the corresponding grouped field when that field is unset, and the
// grouped field wins when both are set. New code should set the groups.
type Config struct {
	// Cache groups the translation-cache, matchings-cache, translation-plan,
	// and admission-policy knobs.
	Cache CacheConfig
	// Streaming groups the tuple-at-a-time pipeline knobs.
	Streaming StreamConfig
	// Resilience groups the per-source breaker/retry/hedge layer.
	Resilience ResilienceConfig

	// Workers bounds concurrently executing source selections across all
	// requests (2×GOMAXPROCS if <= 0).
	Workers int
	// SourceTimeout bounds each per-source select+filter execution
	// (no timeout if 0).
	SourceTimeout time.Duration
	// Executor overrides the per-source selection phase
	// (DefaultExecutor if nil).
	Executor SourceExecutor
	// Metrics is the registry the server's counters, gauges, and histograms
	// are registered in (a private registry if nil). A registry must back at
	// most one server: the server registers fixed metric names and duplicate
	// registration panics.
	Metrics *obs.Registry
	// Index builds a cost-based access path (engine.Access) per source at
	// construction time — hash, sorted-array, and inverted-token indexes
	// plus per-attribute statistics — and routes both execution paths
	// through selectivity-ranked index probes. Answers are byte-identical
	// (content, order, and errors) to the scan paths; queries the planner
	// cannot probe soundly fall back to scanning automatically.
	Index bool
	// ChainDebug switches the mediator's chain-backed sources (see
	// mediator.AddChainSource) to sequential hop-by-hop translation through
	// the original specs instead of the precomposed one. Filtered answers
	// are identical; this is the differential-checking mode, not a serving
	// optimization.
	ChainDebug bool

	// CacheSize bounds the translation cache in entries.
	//
	// Deprecated: set Cache.Size. Applied only when Cache.Size is 0.
	CacheSize int
	// MatchCache is the shared cross-request matchings cache.
	//
	// Deprecated: set Cache.MatchCache. Applied only when Cache.MatchCache
	// is nil.
	MatchCache *core.MatchCache
	// MatchCacheSize bounds the shared matchings cache.
	//
	// Deprecated: set Cache.MatchCacheSize. Applied only when
	// Cache.MatchCacheSize is 0.
	MatchCacheSize int
	// Plan is the shared cross-request translation plan.
	//
	// Deprecated: set Cache.Plan. Applied only when Cache.Plan is nil.
	Plan *core.Plan
	// PlanSize bounds the shared translation plan.
	//
	// Deprecated: set Cache.PlanSize. Applied only when Cache.PlanSize is 0.
	PlanSize int
	// Stream enables the streaming pipeline.
	//
	// Deprecated: set Streaming.Enabled. Applied only when
	// Streaming.Enabled is false.
	Stream bool
	// Shards is the per-source shard count on the streaming path.
	//
	// Deprecated: set Streaming.Shards. Applied only when Streaming.Shards
	// is 0.
	Shards int
	// StreamBuffer is the per-shard channel capacity.
	//
	// Deprecated: set Streaming.Buffer. Applied only when Streaming.Buffer
	// is 0.
	StreamBuffer int
	// BuildBudget bounds the build side of a streaming join.
	//
	// Deprecated: set Streaming.BuildBudget. Applied only when
	// Streaming.BuildBudget is 0.
	BuildBudget int
	// ShardHook runs at the start of every shard execution.
	//
	// Deprecated: set Streaming.Hook. Applied only when Streaming.Hook is
	// nil.
	ShardHook stream.Hook
}

// normalized folds the deprecated flat fields into the grouped sub-structs
// and returns the canonical configuration New actually reads: each flat
// field applies only when its grouped counterpart is unset, so old-style
// and new-style configurations of the same values build identical servers
// (proved by the equivalence tests), and the groups win on conflict.
func (c Config) normalized() Config {
	if c.Cache.Size == 0 {
		c.Cache.Size = c.CacheSize
	}
	if c.Cache.MatchCache == nil {
		c.Cache.MatchCache = c.MatchCache
	}
	if c.Cache.MatchCacheSize == 0 {
		c.Cache.MatchCacheSize = c.MatchCacheSize
	}
	if c.Cache.Plan == nil {
		c.Cache.Plan = c.Plan
	}
	if c.Cache.PlanSize == 0 {
		c.Cache.PlanSize = c.PlanSize
	}
	if !c.Streaming.Enabled {
		c.Streaming.Enabled = c.Stream
	}
	if c.Streaming.Shards == 0 {
		c.Streaming.Shards = c.Shards
	}
	if c.Streaming.Buffer == 0 {
		c.Streaming.Buffer = c.StreamBuffer
	}
	if c.Streaming.BuildBudget == 0 {
		c.Streaming.BuildBudget = c.BuildBudget
	}
	if c.Streaming.Hook == nil {
		c.Streaming.Hook = c.ShardHook
	}
	return c
}
