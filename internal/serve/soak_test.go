package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/mediator"
	"repro/internal/qparse"
	"repro/internal/qtree"
	"repro/internal/sources"
)

// soakDuration bounds the wall-clock of TestSoakMixedWorkload; run under
// -race it is the serving layer's data-race soak.
func soakDuration() time.Duration {
	if testing.Short() {
		return 200 * time.Millisecond
	}
	return 2 * time.Second
}

// librarySoakQueries exercises the join-style path, including a permuted
// duplicate sharing one canonical cache entry.
var librarySoakQueries = []string{
	`[fac.ln = pub.ln] and [fac.fn = pub.fn] and [fac.bib contains data(near)mining] and [fac.dept = cs]`,
	`[fac.dept = cs] and [fac.bib contains data(near)mining] and [fac.fn = pub.fn] and [fac.ln = pub.ln]`,
	`([fac.dept = cs] or [fac.dept = ee]) and [fac.bib contains data(near)mining]`,
}

// TestSoakMixedWorkload hammers two serving stacks — union-style bookstore
// Query and join-style library QueryJoin — from 16 goroutines for ~2s with a
// deliberately tiny translation cache, so entries churn through eviction the
// whole time. Every answer must stay byte-identical to its sequential
// baseline, and the cache accounting must balance: every request is exactly
// one cache lookup, so hits + misses + shared == requests on both servers.
func TestSoakMixedWorkload(t *testing.T) {
	tiny := Config{CacheSize: 2, Workers: 4}
	union, med, data := bookstoreServer(tiny)

	jmed := mediator.New(sources.NewT1(), sources.NewT2())
	jmed.Glue = sources.LibraryGlue()
	people, papers := sources.GenLibrary(42, 10, 25)
	jdata := map[string]*engine.Relation{
		"t1": sources.T1Relation(people, papers),
		"t2": sources.T2Relation(people),
	}
	join := New(jmed, jdata, tiny)

	unionQs := make([]*qtree.Node, len(mixedWorkload))
	unionWant := make([]string, len(mixedWorkload))
	for i, s := range mixedWorkload {
		unionQs[i] = qparse.MustParse(s)
		rel, _, err := med.ExecuteUnion(unionQs[i], data)
		if err != nil {
			t.Fatalf("sequential union baseline %q: %v", s, err)
		}
		unionWant[i] = render(rel)
	}
	joinQs := make([]*qtree.Node, len(librarySoakQueries))
	joinWant := make([]string, len(librarySoakQueries))
	for i, s := range librarySoakQueries {
		joinQs[i] = qparse.MustParse(s)
		rel, _, err := jmed.ExecuteJoin(joinQs[i], jdata)
		if err != nil {
			t.Fatalf("sequential join baseline %q: %v", s, err)
		}
		joinWant[i] = render(rel)
	}

	const goroutines = 16
	deadline := time.Now().Add(soakDuration())
	ctx := context.Background()
	var unionReqs, joinReqs atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				if (g+i)%3 == 0 { // mixed workload: every third request joins
					k := (g + i) % len(joinQs)
					rel, err := join.QueryJoin(ctx, joinQs[k])
					if err != nil {
						t.Errorf("goroutine %d: QueryJoin(%q): %v", g, librarySoakQueries[k], err)
						return
					}
					joinReqs.Add(1)
					if render(rel) != joinWant[k] {
						t.Errorf("goroutine %d: QueryJoin(%q) diverged from sequential baseline", g, librarySoakQueries[k])
						return
					}
				} else {
					k := (g + i) % len(unionQs)
					rel, err := union.Query(ctx, unionQs[k])
					if err != nil {
						t.Errorf("goroutine %d: Query(%q): %v", g, mixedWorkload[k], err)
						return
					}
					unionReqs.Add(1)
					if render(rel) != unionWant[k] {
						t.Errorf("goroutine %d: Query(%q) diverged from sequential baseline", g, mixedWorkload[k])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	for _, sv := range []struct {
		name string
		srv  *Server
		reqs uint64
	}{{"union", union, unionReqs.Load()}, {"join", join, joinReqs.Load()}} {
		st := sv.srv.Stats()
		if st.Requests != sv.reqs {
			t.Errorf("%s server: Requests = %d, want %d", sv.name, st.Requests, sv.reqs)
		}
		if got := st.CacheHits + st.CacheMisses + st.CacheShared; got != sv.reqs {
			t.Errorf("%s server: hits+misses+shared = %d, want %d (hits=%d misses=%d shared=%d)",
				sv.name, got, sv.reqs, st.CacheHits, st.CacheMisses, st.CacheShared)
		}
		if st.Errors != 0 || st.Timeouts != 0 {
			t.Errorf("%s server: Errors = %d, Timeouts = %d, want 0", sv.name, st.Errors, st.Timeouts)
		}
		if st.CacheEntries > tiny.CacheSize {
			t.Errorf("%s server: CacheEntries = %d exceeds capacity %d", sv.name, st.CacheEntries, tiny.CacheSize)
		}
	}
	// The tiny cache must have churned: more distinct canonical keys exist
	// than capacity on the union side (8 keys, capacity 2).
	if st := union.Stats(); st.CacheEvictions == 0 {
		t.Error("union server: expected eviction churn with capacity 2")
	}
}
