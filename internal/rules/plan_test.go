package rules

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/qtree"
	"repro/internal/values"
)

// TestTranslationPlanAdjacency pins the static cross-matching adjacency on
// the varied fixture: single-pattern rules contribute no pairs, multi-pattern
// rules contribute theirs exactly once, and CrossFeasible separates groups
// that only single-pattern rules can match from groups straddling a
// multi-pattern rule's head.
func TestTranslationPlanAdjacency(t *testing.T) {
	s := variedSpec(t)
	p := s.TranslationPlan()
	if p.Spec() != s {
		t.Fatal("TranslationPlan().Spec() is not the owning spec")
	}
	if p != s.TranslationPlan() {
		t.Error("TranslationPlan() not cached: second call built a new plan")
	}
	// variedSpec's only multi-pattern rule is Pair ([a2 = V], [a3 = W]); the
	// AnyAttr wildcard pattern keeps masks busy but adds no second position.
	if p.Pairs() == 0 {
		t.Fatal("plan for a spec with a two-pattern rule recorded no feature pairs")
	}

	mask := func(cs ...*qtree.Constraint) []uint64 { return p.SatMask(cs) }
	a2 := qtree.Sel(qtree.A("a2"), qtree.OpEq, values.String("x"))
	a3 := qtree.Sel(qtree.A("a3"), qtree.OpEq, values.String("y"))
	a0 := qtree.Sel(qtree.A("a0"), qtree.OpEq, values.String("z"))

	if !p.CrossFeasible(mask(a2), mask(a3)) {
		t.Error("a2 | a3 groups straddle rule Pair's head but CrossFeasible = false")
	}
	// A cross-matching needs two distinct pattern positions of one rule; two
	// groups that only satisfy a0 (single-pattern SelEq, plus the wildcard
	// AnyAttr's lone position) can never host one — unless they both also
	// reach a multi-pattern head, which a0 does not.
	if p.CrossFeasible(mask(a0), mask(a0)) {
		t.Error("two a0-only groups cannot straddle any multi-pattern rule, got CrossFeasible = true")
	}
	if got := p.SatMask(nil); len(got) != len(mask(a2)) {
		t.Errorf("SatMask(nil) length %d, want %d words", len(got), len(mask(a2)))
	} else {
		for _, w := range got {
			if w != 0 {
				t.Error("SatMask of an empty group set bits")
			}
		}
	}
}

// TestTranslationPlanSoundVsMatcher checks the plan's central soundness claim
// against the real matcher on randomized constraint splits: whenever a
// matching spans both halves of a split, CrossFeasible over the halves' masks
// must be true. (The converse may fail — the check is an over-approximation —
// so only the sound direction is asserted.)
func TestTranslationPlanSoundVsMatcher(t *testing.T) {
	s := variedSpec(t)
	p := s.TranslationPlan()
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		cs := randomConstraints(rng, 2+rng.Intn(5))
		cut := 1 + rng.Intn(len(cs)-1)
		left, right := cs[:cut], cs[cut:]
		if p.CrossFeasible(p.SatMask(left), p.SatMask(right)) {
			continue // feasible: nothing to verify, the dynamic scan decides
		}
		leftKeys := map[string]bool{}
		for _, c := range left {
			leftKeys[c.Key()] = true
		}
		ambiguous := false
		for _, c := range right {
			if leftKeys[c.Key()] {
				ambiguous = true // duplicate constraint on both sides: spanning undecidable by key
			}
		}
		if ambiguous {
			continue
		}
		ms, err := s.Matchings(cs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, m := range ms {
			spansLeft, spansRight := false, false
			for _, c := range m.Set.Slice() {
				if leftKeys[c.Key()] {
					spansLeft = true
				} else {
					spansRight = true
				}
			}
			if spansLeft && spansRight {
				t.Fatalf("trial %d: CrossFeasible=false but matching %s spans the split", trial, m.ID())
			}
		}
	}
}

// TestSpecCompiledMutationGuard pins the immutability contract: mutating a
// spec's rule set after the first compilation panics on the next Compiled()
// call instead of serving a stale index.
func TestSpecCompiledMutationGuard(t *testing.T) {
	expectPanic := func(name string, mutate func(s *Spec)) {
		s := variedSpec(t)
		if s.Compiled() == nil {
			t.Fatalf("%s: first compile returned nil", name)
		}
		mutate(s)
		defer func() {
			r := recover()
			if r == nil {
				t.Errorf("%s: Compiled() after mutation did not panic", name)
				return
			}
			msg, ok := r.(string)
			if !ok || !strings.Contains(msg, "mutated after compilation") {
				t.Errorf("%s: panic %v, want an immutability-contract message", name, r)
			}
		}()
		s.Compiled()
	}

	expectPanic("append rule", func(s *Spec) {
		s.Rules = append(s.Rules, MustParseRules(`rule Late { match [zz = V]; where Value(V); emit exact [t0 = V]; }`)...)
	})
	expectPanic("swap rule", func(s *Spec) {
		s.Rules[0] = MustParseRules(`rule Swapped { match [zz = V]; where Value(V); emit exact [t0 = V]; }`)[0]
	})
}
