package rules

// Spec containment checking (spec algebra, part 2 of 2 — see compose.go).
//
// Contains(a, b) reports whether a's translation always subsumes b's: for
// every query Q, σ_a(Q) ⊇ σ_b(Q) — a is the *weaker* (more permissive)
// spec. That is the safe direction for spec-upgrade rollouts: upgrading a
// source from spec b to spec a can only widen the pre-filter answer set, so
// the mediator's residue filter keeps final answers correct and no answer a
// client saw under b disappears mid-rollout.
//
// The check is structural, in the spirit of Calì/Torlone, "Containment of
// Schema Mappings for Data Exchange": a translation is the conjunction of
// fired-rule emissions, so σ_a(Q) ⊇ σ_b(Q) holds whenever every conjunct a
// can contribute is implied by a conjunct b contributes on the same firing.
// Concretely, every a-rule with a non-trivial emission must be *covered* by
// some b-rule that (1) fires whenever the a-rule fires — its patterns map
// injectively onto the a-rule's patterns under a consistent variable
// renaming, its conditions and lets are a subset of the a-rule's — and
// (2) emits at least as tight a fragment (emission implication). Pattern
// pairing is pruned with the same patternFeature fingerprints that power
// CompiledSpec dispatch and TranslationPlan adjacency.
//
// The check is SOUND but INCOMPLETE: a true result is a proof of
// containment (the execute-and-check conformance probes verify this on
// random workloads), while a false result only means no structural witness
// was found — semantically contained spec pairs with syntactically unrelated
// rules are reported as not contained. docs/spec-algebra.md discusses the
// incompleteness boundary.

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/qtree"
)

// Contains reports whether spec a's translation subsumes spec b's for every
// query: σ_a(Q) ⊇ σ_b(Q). Sound, not complete (see the file comment).
func Contains(a, b *Spec) bool {
	ok, _ := ContainsReport(a, b)
	return ok
}

// ContainsReport is Contains plus, when containment cannot be shown, one
// diagnostic line per a-rule lacking a covering b-rule.
func ContainsReport(a, b *Spec) (bool, []string) {
	if a == nil || b == nil {
		return false, []string{"containment requires two specifications"}
	}
	var missing []string
	for _, ra := range a.Rules {
		if ra.Emit == nil || ra.Emit.Kind == qtree.KindTrue {
			// A True emission contributes no conjunct; trivially covered.
			continue
		}
		if !coveredBy(ra, b) {
			missing = append(missing, fmt.Sprintf("rule %s of %s has no covering rule in %s", ra.Name, a.Name, b.Name))
		}
	}
	return len(missing) == 0, missing
}

func coveredBy(ra *Rule, b *Spec) bool {
	for _, rb := range b.Rules {
		if covers(rb, ra) {
			return true
		}
	}
	return false
}

// covers reports whether rb fires whenever ra fires (on a subset of ra's
// matched constraints) and rb's emission implies ra's.
func covers(rb, ra *Rule) bool {
	if len(rb.Patterns) > len(ra.Patterns) {
		return false
	}
	// Feature fingerprints prune the pattern pairing: rb's pattern i can
	// only stand in for ra's pattern j when both impose exactly the same
	// quickReject-visible structure (equal features); anything looser would
	// need a variable-to-literal correspondence that the renaming below
	// rejects anyway.
	fa := make([]feature, len(ra.Patterns))
	for i, p := range ra.Patterns {
		fa[i] = patternFeature(p)
	}
	used := make([]bool, len(ra.Patterns))

	var rec func(i int, ren map[string]string) bool
	rec = func(i int, ren map[string]string) bool {
		if i == len(rb.Patterns) {
			return condsCovered(rb, ra, ren) && finishCovers(rb, ra, ren)
		}
		fb := patternFeature(rb.Patterns[i])
		for j := range ra.Patterns {
			if used[j] || fb != fa[j] {
				continue
			}
			next := cloneRenaming(ren)
			if !patCorresponds(rb.Patterns[i], ra.Patterns[j], next) {
				continue
			}
			used[j] = true
			if rec(i+1, next) {
				return true
			}
			used[j] = false
		}
		return false
	}
	return rec(0, map[string]string{})
}

// finishCovers extends the renaming over rb's lets and then checks emission
// implication. Split from the pattern search so backtracking retries other
// pattern pairings when the lets or emissions don't line up.
func finishCovers(rb, ra *Rule, ren map[string]string) bool {
	for _, lb := range rb.Lets {
		matched := false
		for _, la := range ra.Lets {
			if lb.Func != la.Func || len(lb.Args) != len(la.Args) {
				continue
			}
			ok := true
			for i, ab := range lb.Args {
				if renameArg(ab, ren) != la.Args[i] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			if prev, bound := ren[lb.Var]; bound && prev != la.Var {
				continue
			}
			ren[lb.Var] = la.Var
			matched = true
			break
		}
		if !matched {
			return false
		}
	}
	return emissionImplies(rb.Emit, ra.Emit, ren)
}

// condsCovered checks rb.Conds ⊆ ra.Conds under the renaming: every
// condition rb imposes, ra imposes too, so rb's conditions hold whenever
// ra fired.
func condsCovered(rb, ra *Rule, ren map[string]string) bool {
	for _, cb := range rb.Conds {
		found := false
		for _, ca := range ra.Conds {
			if cb.Name != ca.Name || len(cb.Args) != len(ca.Args) {
				continue
			}
			ok := true
			for i, ab := range cb.Args {
				if renameArg(ab, ren) != ca.Args[i] {
					ok = false
					break
				}
			}
			if ok {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// renameArg maps an rb-side function argument into ra's variable space.
// Literal arguments pass through; unmapped variables render as themselves
// (and will simply fail the comparison against ra's argument when they
// differ).
func renameArg(arg string, ren map[string]string) string {
	if isLiteralArg(arg) {
		return arg
	}
	if to, ok := ren[arg]; ok {
		return to
	}
	return arg
}

// patCorresponds extends ren so that rb-pattern pb is, under the renaming,
// the same pattern as ra-pattern pa. Variable-to-variable components extend
// the renaming; literal components must be equal (features already
// guaranteed this for the quickReject-visible ones); a variable on one side
// against a literal on the other is rejected — correspondence, not
// generalization, keeps the check simple and sound.
func patCorresponds(pb, pa ConstraintPat, ren map[string]string) bool {
	if (pb.OpVar == "") != (pa.OpVar == "") {
		return false
	}
	if pb.OpVar != "" {
		if !bindRen(pb.OpVar, pa.OpVar, ren) {
			return false
		}
	} else if pb.Op != pa.Op {
		return false
	}
	if !attrCorresponds(pb.Attr, pa.Attr, ren) {
		return false
	}
	switch {
	case pb.RHS.Var != "" || pa.RHS.Var != "":
		return pb.RHS.Var != "" && pa.RHS.Var != "" && bindRen(pb.RHS.Var, pa.RHS.Var, ren)
	case pb.RHS.Lit != nil || pa.RHS.Lit != nil:
		return pb.RHS.Lit != nil && pa.RHS.Lit != nil && pb.RHS.Lit.Equal(pa.RHS.Lit)
	case pb.RHS.Attr != nil || pa.RHS.Attr != nil:
		return pb.RHS.Attr != nil && pa.RHS.Attr != nil && attrCorresponds(*pb.RHS.Attr, *pa.RHS.Attr, ren)
	default:
		return true
	}
}

func attrCorresponds(ab, aa AttrPat, ren map[string]string) bool {
	if (ab.WholeVar == "") != (aa.WholeVar == "") {
		return false
	}
	if ab.WholeVar != "" {
		return bindRen(ab.WholeVar, aa.WholeVar, ren)
	}
	if (ab.ViewVar == "") != (aa.ViewVar == "") || (ab.NameVar == "") != (aa.NameVar == "") || (ab.IndexVar == "") != (aa.IndexVar == "") {
		return false
	}
	if ab.ViewVar != "" && !bindRen(ab.ViewVar, aa.ViewVar, ren) {
		return false
	}
	if ab.NameVar != "" && !bindRen(ab.NameVar, aa.NameVar, ren) {
		return false
	}
	if ab.IndexVar != "" && !bindRen(ab.IndexVar, aa.IndexVar, ren) {
		return false
	}
	if ab.ViewVar == "" && ab.View != aa.View {
		return false
	}
	if ab.NameVar == "" && ab.Name != aa.Name {
		return false
	}
	return ab.Rel == aa.Rel
}

// bindRen records from↦to, rejecting inconsistent re-mappings. Empty names
// are vacuously fine. Non-injective renamings are allowed — two rb variables
// standing for the same ra variable only make rb more general.
func bindRen(from, to string, ren map[string]string) bool {
	if from == "" {
		return to == ""
	}
	if prev, ok := ren[from]; ok {
		return prev == to
	}
	ren[from] = to
	return true
}

// emissionImplies reports eb ⇒ ea under the renaming. For purely
// conjunctive emissions, implication is atom containment: every atom of ea
// appears among eb's (eb constrains at least as much). Any disjunction on
// either side falls back to exact rendered equality — sound, and all this
// incomplete check needs.
func emissionImplies(eb, ea *EmitNode, ren map[string]string) bool {
	if ea == nil || ea.Kind == qtree.KindTrue {
		return true
	}
	if eb == nil {
		return false
	}
	if hasOrEmit(ea) || hasOrEmit(eb) {
		return renderEmit(eb, ren) == renderEmit(ea, nil)
	}
	atomsA := emitAtoms(ea, nil)
	atomsB := make(map[string]bool)
	for _, at := range emitAtoms(eb, ren) {
		atomsB[at] = true
	}
	for _, at := range atomsA {
		if !atomsB[at] {
			return false
		}
	}
	return true
}

func hasOrEmit(e *EmitNode) bool {
	if e.Kind == qtree.KindOr {
		return true
	}
	for _, k := range e.Kids {
		if hasOrEmit(k) {
			return true
		}
	}
	return false
}

// emitAtoms renders the leaf patterns of a conjunctive emission template,
// with variables renamed through ren.
func emitAtoms(e *EmitNode, ren map[string]string) []string {
	switch e.Kind {
	case qtree.KindTrue:
		return nil
	case qtree.KindLeaf:
		return []string{renamePat(*e.Pat, ren).String()}
	default:
		var out []string
		for _, k := range e.Kids {
			out = append(out, emitAtoms(k, ren)...)
		}
		return out
	}
}

// renderEmit canonically renders a full emission template (sorting And/Or
// operand renderings so structurally equal trees render equal).
func renderEmit(e *EmitNode, ren map[string]string) string {
	switch e.Kind {
	case qtree.KindTrue:
		return "True"
	case qtree.KindLeaf:
		return renamePat(*e.Pat, ren).String()
	default:
		parts := make([]string, len(e.Kids))
		for i, k := range e.Kids {
			parts[i] = renderEmit(k, ren)
		}
		sort.Strings(parts)
		op := "and"
		if e.Kind == qtree.KindOr {
			op = "or"
		}
		return op + "(" + strings.Join(parts, ",") + ")"
	}
}

func renamePat(p ConstraintPat, ren map[string]string) ConstraintPat {
	if ren == nil {
		return p
	}
	rn := func(v string) string {
		if v == "" {
			return ""
		}
		if to, ok := ren[v]; ok {
			return to
		}
		return v
	}
	rnAttr := func(a AttrPat) AttrPat {
		a.WholeVar = rn(a.WholeVar)
		a.ViewVar = rn(a.ViewVar)
		a.IndexVar = rn(a.IndexVar)
		a.NameVar = rn(a.NameVar)
		return a
	}
	p.OpVar = rn(p.OpVar)
	p.Attr = rnAttr(p.Attr)
	p.RHS.Var = rn(p.RHS.Var)
	if p.RHS.Attr != nil {
		ra := rnAttr(*p.RHS.Attr)
		p.RHS.Attr = &ra
	}
	return p
}

func cloneRenaming(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
