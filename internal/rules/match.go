package rules

import (
	"fmt"

	"repro/internal/qtree"
)

// Matching is one match of a rule's head against a subset of a query's
// constraints (Section 4.1): the constraint set, the variable binding, and
// the instantiated emission S(∧(m)).
type Matching struct {
	Rule     *Rule
	Set      *qtree.ConstraintSet
	Binding  Binding
	Emission *qtree.Node
}

// ID is a canonical identity for deduplication across enumeration orders.
func (m *Matching) ID() string {
	return m.Rule.Name + "|" + m.Set.ID() + "|" + m.Emission.CanonicalKey()
}

// String renders the matching for diagnostics.
func (m *Matching) String() string {
	return fmt.Sprintf("%s%s -> %s", m.Rule.Name, m.Set, m.Emission)
}

// matchRule enumerates all matchings of rule r against the given
// constraints. Patterns are assigned to distinct constraints; for join
// constraints with symmetric or invertible operators the flipped orientation
// is also tried. Matchings whose lets fail are dropped (the conversion is
// inapplicable, so the rule provides no mapping for that combination).
func matchRule(r *Rule, cs []*qtree.Constraint, reg *Registry) ([]*Matching, error) {
	// Candidate constraints per pattern, pre-filtered on operator and
	// literal attribute components to keep the search linear in practice.
	cands := make([][]*qtree.Constraint, len(r.Patterns))
	for i, p := range r.Patterns {
		for _, c := range cs {
			for _, v := range orientations(c) {
				if quickReject(p, v) {
					continue
				}
				cands[i] = append(cands[i], v)
			}
		}
		if len(cands[i]) == 0 {
			return nil, nil
		}
	}

	var out []*Matching
	seen := make(map[string]bool)
	used := make(map[string]bool) // constraint keys already taken
	assign := make([]*qtree.Constraint, len(r.Patterns))

	var rec func(i int, b Binding) error
	rec = func(i int, b Binding) error {
		if i == len(r.Patterns) {
			m, err := finishMatch(r, assign, b, reg)
			if err != nil {
				return err
			}
			if m != nil && !seen[m.ID()] {
				seen[m.ID()] = true
				out = append(out, m)
			}
			return nil
		}
		for _, c := range cands[i] {
			k := c.Key()
			if used[k] {
				continue
			}
			nb := b.Clone()
			if !r.Patterns[i].Match(c, nb) {
				continue
			}
			used[k] = true
			assign[i] = c
			if err := rec(i+1, nb); err != nil {
				return err
			}
			used[k] = false
		}
		return nil
	}
	if err := rec(0, make(Binding)); err != nil {
		return nil, err
	}
	return out, nil
}

// orientations returns the constraint and, for join constraints with an
// invertible operator, its flipped form, so that patterns match either
// writing direction (the normalization discussion of Section 4.2).
func orientations(c *qtree.Constraint) []*qtree.Constraint {
	if !c.IsJoin() {
		return []*qtree.Constraint{c}
	}
	inv, ok := qtree.InverseOp(c.Op)
	if !ok {
		return []*qtree.Constraint{c}
	}
	flipped := qtree.Join(*c.RAttr, inv, c.Attr)
	return []*qtree.Constraint{c, flipped}
}

// quickReject rules out obviously incompatible pattern/constraint pairs
// without building bindings.
func quickReject(p ConstraintPat, c *qtree.Constraint) bool {
	if p.OpVar == "" && p.Op != c.Op {
		return true
	}
	a := p.Attr
	if a.WholeVar == "" {
		if a.ViewVar == "" && a.View != c.Attr.View {
			return true
		}
		if a.NameVar == "" && a.Name != c.Attr.Name {
			return true
		}
		if a.Rel != "" && a.Rel != c.Attr.Rel {
			return true
		}
	}
	if p.RHS.Attr != nil && !c.IsJoin() {
		return true
	}
	if p.RHS.Lit != nil && (c.IsJoin() || c.Val == nil || !p.RHS.Lit.Equal(c.Val)) {
		return true
	}
	return false
}

// finishMatch checks conditions, applies lets, and instantiates the
// emission. It returns (nil, nil) when a condition fails or a let is
// inapplicable.
func finishMatch(r *Rule, assign []*qtree.Constraint, b Binding, reg *Registry) (*Matching, error) {
	for _, cond := range r.Conds {
		fn, err := reg.Cond(cond.Name)
		if err != nil {
			return nil, err
		}
		ok, err := fn(b, cond.Args)
		if err != nil {
			return nil, fmt.Errorf("rules: rule %s condition %s: %w", r.Name, cond, err)
		}
		if !ok {
			return nil, nil
		}
	}
	for _, let := range r.Lets {
		fn, err := reg.Action(let.Func)
		if err != nil {
			return nil, err
		}
		v, err := fn(b, let.Args)
		if err != nil {
			// Inapplicable conversion: the rule provides no mapping here.
			return nil, nil
		}
		if !b.Bind(let.Var, v) {
			return nil, nil
		}
	}
	em, err := r.Emit.Instantiate(b)
	if err != nil {
		return nil, fmt.Errorf("rules: rule %s emission: %w", r.Name, err)
	}
	// Record the matched constraints under their canonical keys.
	set := qtree.NewConstraintSet(assign...)
	return &Matching{Rule: r, Set: set, Binding: b, Emission: em.Normalize()}, nil
}
