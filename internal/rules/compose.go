package rules

// Offline spec composition (spec algebra, part 1 of 2 — see contains.go).
//
// Compose(a, b) precomposes a two-hop mediation chain mediator→M1→M2 into a
// single spec K = a∘b: for every rule of a, the rule's emission — the query
// fragment a would hand to the intermediate vocabulary — is translated
// through b *at composition time*, so a multi-tier federation pays one
// translation per request instead of one per hop. The construction follows
// the rule-level composition of Arenas/Pérez/Reutter/Riveros, "Composition
// and Inversion of Schema Mappings": treat each source-to-intermediate rule
// as a dependency, chase its right-hand side with the intermediate-to-target
// dependencies, and keep the chased head.
//
// Mechanically: the emission template of an a-rule mentions variables whose
// values are only known at request time. We instantiate the template with
// private *symbolic marker* values (one per emission variable), run the
// B-side matcher (the same matchRule/SuppressSubmatchings machinery that
// Algorithm SCM uses) on the marker-instantiated conjunctions of the DNF of
// the emission, and lift the resulting b-emissions — with markers flowing
// through them — back into an emission template for the composed rule.
// Conversion functions of b applied to a marker cannot run at composition
// time; they are *recorded* as extra let-clauses of the composed rule
// ("zc1 = b.F(K)") and re-played at request time.
//
// Semantics (documented divergence from naive equivalence): per-disjunct,
// the sequential two-hop translation runs b's matcher on the *conjunction of
// all of a's emissions* and may therefore find cross-emission matchings that
// span fragments emitted by two different a-rules. Per-rule composition
// cannot see those, so the composed translation is a (still subsuming)
// superset predicate: σ_Q ⊆ σ_sequential ⊆ σ_composed. Both subsume the
// original query, so after the mediator's residue filter (Section 2, Eq. 3)
// the final answers are identical — the conformance compose oracle checks
// exactly this, and the equivalence grid additionally asserts the subset
// chain on raw pre-filter answers. Exactness is compensated the same way:
// a composed rule is marked Exact only when the a-rule was exact AND every
// marker-instantiated constraint of its emission was covered by exact
// b-matchings in every disjunct; otherwise the constraint stays in the
// filter.
//
// Compose must be *conservative*: whenever the B-side matcher's outcome
// could depend on the concrete value a marker stands for (value-sensitive
// literal patterns, value unification across repeated pattern variables,
// custom conditions inspecting values), composition fails with an error
// rather than silently producing an unsound spec.

import (
	"fmt"
	"strings"

	"repro/internal/qtree"
)

// symValue is a composition-time placeholder for a request-time value: the
// emission variable X of an a-rule is instantiated as symValue{"X"} so that
// b's matcher can bind, unify, and re-emit it without knowing the value.
// Markers never escape Compose — lifted templates turn them back into
// emission variables.
type symValue struct{ name string }

func (s symValue) Kind() string   { return "sym" }
func (s symValue) String() string { return "?" + s.name }
func (s symValue) Equal(v qtree.Value) bool {
	o, ok := v.(symValue)
	return ok && o.name == s.name
}

func asSym(v qtree.Value) (symValue, bool) {
	s, ok := v.(symValue)
	return s, ok
}

// ComposeInfo reports what ComposeDetail did, for lint surfaces and the
// qmap -compose CLI.
type ComposeInfo struct {
	// RulesComposed counts a-rules carried into the composed spec.
	RulesComposed int
	// ConversionLets counts recorded b-side conversion lets kept after GC.
	ConversionLets int
	// ConstLets counts injected constant-closure lets (concrete bound
	// values that had to be passed into a recorded conversion).
	ConstLets int
	// ExactRules counts composed rules that remained exact.
	ExactRules int
	// FiredB counts, per b-rule name, how many matchings of that rule
	// survived suppression while composing. A b-rule absent from the map
	// was never fired by any composed head — an offline dead rule
	// (surfaced by LintComposition and qmap -compose).
	FiredB map[string]int
}

// Compose precomposes the chain a→b into one equivalent spec targeting
// b.Target. See the package comment at the top of this file for semantics;
// errors mean the pair is not composable offline (the outcome would depend
// on request-time values) and the chain must keep translating sequentially.
func Compose(a, b *Spec) (*Spec, error) {
	s, _, err := composeSpecs(a, b, false)
	return s, err
}

// ComposeDetail is Compose plus a report of the composition.
func ComposeDetail(a, b *Spec) (*Spec, *ComposeInfo, error) {
	return composeSpecs(a, b, false)
}

// ComposeTightened is a deliberately unsound compose variant used by the
// conformance harness's planted-bug mode (cmd/qcheck -plant badcompose):
// it rewrites prefix (starts) selections in the mapped emissions into
// equalities, producing a composed spec that is too tight and misses
// answers. The compose oracle must catch it and shrink to a small witness.
func ComposeTightened(a, b *Spec) (*Spec, error) {
	s, _, err := composeSpecs(a, b, true)
	return s, err
}

func composeSpecs(a, b *Spec, tighten bool) (*Spec, *ComposeInfo, error) {
	if a == nil || b == nil {
		return nil, nil, fmt.Errorf("rules: Compose requires two specifications")
	}
	c := newComposer(a, b, tighten)
	out := make([]*Rule, 0, len(a.Rules))
	for _, ra := range a.Rules {
		rc, err := c.composeRule(ra)
		if err != nil {
			return nil, nil, fmt.Errorf("rules: compose %s∘%s: rule %s: %w", a.Name, b.Name, ra.Name, err)
		}
		out = append(out, rc)
	}
	spec, err := NewSpec(a.Name+"∘"+b.Name, b.Target, c.reg, out...)
	if err != nil {
		return nil, nil, fmt.Errorf("rules: compose %s∘%s: %w", a.Name, b.Name, err)
	}
	return spec, c.info, nil
}

// composer carries the per-composition state: the merged registry of the
// composed spec, the shadow registry that intercepts b's functions during
// marker matching, and the lets recorded for the rule being composed.
type composer struct {
	a, b    *Spec
	reg     *Registry // composed spec's registry: a's entries + b-aliases + const closures
	shadow  *Registry // b's registry with conds/actions wrapped for marker safety
	tighten bool
	info    *ComposeInfo

	// err is a side channel for fatal errors raised inside wrapped action
	// functions: finishMatch treats an ActionFunc error as "conversion
	// inapplicable" and silently drops the matching, which would turn a
	// compose-time soundness violation into a silently-too-tight spec.
	// Wrapped actions therefore record fatal errors here, and composeRule
	// checks the channel after every matchRule call.
	err error

	// Per-rule recording state, reset by beginRule.
	lets    []LetClause
	letMemo map[string]string // "fn(arg,arg)" -> output var, dedups recorded lets
	avoid   map[string]bool   // variable names taken in the rule being composed
	seq     int               // fresh-variable counter (monotonic across rules)

	aliased  map[string]string // b action name -> alias in c.reg
	constFns map[string]string // const value key -> zero-arg closure name in c.reg
}

func newComposer(a, b *Spec, tighten bool) *composer {
	reg := NewRegistry()
	for k, v := range a.Reg.conds {
		reg.conds[k] = v
	}
	for k, v := range a.Reg.actions {
		reg.actions[k] = v
	}
	for k, v := range a.Reg.kinds {
		reg.kinds[k] = v
	}
	c := &composer{
		a: a, b: b, reg: reg, tighten: tighten,
		aliased:  make(map[string]string),
		constFns: make(map[string]string),
		info:     &ComposeInfo{FiredB: make(map[string]int)},
	}
	c.buildShadow()
	return c
}

// buildShadow wraps b's registry so that marker values flow through the
// matcher safely: built-in conditions only inspect binding kinds (a marker
// is an ordinary BindValue), custom conditions fail composition when handed
// a marker (their request-time outcome is unknowable), and actions applied
// to a marker are recorded as lets instead of being executed.
func (c *composer) buildShadow() {
	sh := &Registry{
		conds:   make(map[string]CondFunc),
		actions: make(map[string]ActionFunc),
		kinds:   make(map[string]BoundKind),
	}
	for name, fn := range c.b.Reg.conds {
		switch name {
		case "Value", "IsAttr", "OneOf", "DistinctIndex":
			// The builtins dispatch on binding kind and attribute/name
			// structure only, which markers carry faithfully: Value(marker)
			// is true, OneOf(marker, ...) is false, exactly as they would
			// answer for the concrete value at request time.
			sh.conds[name] = fn
		default:
			sh.conds[name] = c.wrapCond(name, fn)
		}
	}
	for name, fn := range c.b.Reg.actions {
		sh.actions[name] = c.wrapAction(name, fn)
	}
	for name, k := range c.b.Reg.kinds {
		sh.kinds[name] = k
	}
	c.shadow = sh
}

// fail records a fatal composition error on the side channel (see
// composer.err) and returns it for the immediate caller.
func (c *composer) fail(err error) error {
	if c.err == nil {
		c.err = err
	}
	return err
}

func (c *composer) takeErr() error {
	err := c.err
	c.err = nil
	return err
}

// wrapCond makes a custom b-condition marker-safe: if any argument is bound
// to a symbolic value the condition's request-time outcome is unknowable
// (answering true would over-fire b-rules and could wrongly mark constraints
// exact; answering false would under-fire them and lose answers), so the
// composition must fail. Condition errors propagate out of matchRule
// directly, no side channel needed.
func (c *composer) wrapCond(name string, fn CondFunc) CondFunc {
	return func(b Binding, args []string) (bool, error) {
		for _, a := range args {
			v, ok := b[a]
			if !ok || v.Kind != BindValue {
				continue
			}
			if _, isSym := asSym(v.Val); isSym {
				return false, fmt.Errorf("condition %s inspects a request-time value (argument %s); the pair is not composable offline", name, a)
			}
		}
		return fn(b, args)
	}
}

// wrapAction intercepts b's conversion functions. Calls whose arguments are
// all concrete run the real function (constant folding). Calls involving a
// marker are recorded as a let-clause of the composed rule and return a
// fresh marker standing for the let's result — which requires the function's
// result kind to be declared BindValue via RegisterActionKind, since the
// recorded let must produce an emission value at request time.
func (c *composer) wrapAction(name string, fn ActionFunc) ActionFunc {
	return func(b Binding, args []string) (BoundVal, error) {
		symbolic := false
		for _, a := range args {
			if isLiteralArg(a) {
				continue
			}
			if v, ok := b[a]; ok && v.Kind == BindValue {
				if _, isSym := asSym(v.Val); isSym {
					symbolic = true
					break
				}
			}
		}
		if !symbolic {
			return fn(b, args)
		}
		if k, ok := c.b.Reg.ActionKind(name); !ok || k != BindValue {
			return BoundVal{}, c.fail(fmt.Errorf("function %s is applied to a request-time value but has no declared value result kind; declare it with RegisterActionKind(%q, BindValue)", name, name))
		}
		mapped := make([]string, len(args))
		for i, a := range args {
			if isLiteralArg(a) {
				mapped[i] = a
				continue
			}
			v, ok := b[a]
			if !ok {
				return BoundVal{}, c.fail(fmt.Errorf("function %s: argument %s unbound", name, a))
			}
			if v.Kind == BindValue {
				if s, isSym := asSym(v.Val); isSym {
					mapped[i] = s.name
					continue
				}
			}
			// A concrete bound value (e.g. a b-pattern matched a literal
			// emitted by a). It has no name in the composed rule's scope, so
			// inject a zero-arg constant closure let to carry it.
			mapped[i] = c.constLet(v)
		}
		alias := c.alias(name, fn)
		key := alias + "(" + strings.Join(mapped, ",") + ")"
		if out, ok := c.letMemo[key]; ok {
			return ValueOf(symValue{name: out}), nil
		}
		out := c.freshVar()
		c.lets = append(c.lets, LetClause{Var: out, Func: alias, Args: mapped})
		c.letMemo[key] = out
		return ValueOf(symValue{name: out}), nil
	}
}

// alias registers b's action function in the composed registry under a
// "b."-prefixed name (a's own functions keep their names; collisions get a
// numeric suffix) and returns the alias.
func (c *composer) alias(name string, fn ActionFunc) string {
	if al, ok := c.aliased[name]; ok {
		return al
	}
	al := "b." + name
	for i := 2; ; i++ {
		if _, exists := c.reg.actions[al]; !exists {
			break
		}
		al = fmt.Sprintf("b%d.%s", i, name)
	}
	c.reg.actions[al] = fn
	c.reg.kinds[al] = BindValue
	c.aliased[name] = al
	return al
}

// constLet carries a concrete bound value into the composed rule's scope as
// a zero-argument closure let, returning the let's variable. Closures are
// shared across rules; lets are memoized per rule.
func (c *composer) constLet(v BoundVal) string {
	key := fmt.Sprintf("%d|%s", v.Kind, v.String())
	fnName, ok := c.constFns[key]
	if !ok {
		fnName = fmt.Sprintf("b.const%d", len(c.constFns))
		cv := v
		c.reg.actions[fnName] = func(Binding, []string) (BoundVal, error) { return cv, nil }
		c.reg.kinds[fnName] = cv.Kind
		c.constFns[key] = fnName
	}
	memoKey := fnName + "()"
	if out, ok := c.letMemo[memoKey]; ok {
		return out
	}
	out := c.freshVar()
	c.lets = append(c.lets, LetClause{Var: out, Func: fnName})
	c.letMemo[memoKey] = out
	return out
}

func (c *composer) freshVar() string {
	for {
		c.seq++
		name := fmt.Sprintf("zc%d", c.seq)
		if !c.avoid[name] {
			c.avoid[name] = true
			return name
		}
	}
}

func (c *composer) beginRule(ra *Rule) {
	c.lets = nil
	c.letMemo = make(map[string]string)
	c.avoid = make(map[string]bool)
	for v := range ra.patternVars() {
		c.avoid[v] = true
	}
	for _, l := range ra.Lets {
		c.avoid[l.Var] = true
	}
}

// composeRule translates one a-rule's emission through b and returns the
// composed rule: a's head (patterns + conds + lets) with the lifted b-side
// emission and the recorded conversion lets appended.
func (c *composer) composeRule(ra *Rule) (*Rule, error) {
	kinds := emissionVarKinds(ra, c.a.Reg)
	if err := checkComposable(ra.Emit, kinds); err != nil {
		return nil, err
	}
	c.beginRule(ra)

	// Instantiate the emission template with a marker per emission variable.
	bind := make(Binding)
	emitVars := make(map[string]bool)
	collectEmitValueVars(ra.Emit, emitVars)
	for v := range emitVars {
		bind[v] = ValueOf(symValue{name: v})
	}
	em, err := ra.Emit.Instantiate(bind)
	if err != nil {
		return nil, err
	}

	mapped, exact, err := c.translate(em)
	if err != nil {
		return nil, err
	}
	if c.tighten {
		mapped = tightenStarts(mapped)
	}
	tmpl, err := liftTemplate(mapped)
	if err != nil {
		return nil, err
	}

	kept := gcLets(c.lets, tmpl)
	for _, l := range kept {
		if strings.HasPrefix(l.Func, "b.const") {
			c.info.ConstLets++
		} else {
			c.info.ConversionLets++
		}
	}
	lets := make([]LetClause, 0, len(ra.Lets)+len(kept))
	lets = append(lets, ra.Lets...)
	lets = append(lets, kept...)

	out := &Rule{
		Name:     ra.Name,
		Patterns: append([]ConstraintPat(nil), ra.Patterns...),
		Conds:    append([]CondRef(nil), ra.Conds...),
		Lets:     lets,
		Emit:     tmpl,
		Exact:    ra.Exact && exact,
	}
	if out.Exact {
		c.info.ExactRules++
	}
	c.info.RulesComposed++
	return out, nil
}

// translate maps a marker-instantiated emission through b: DNF-convert, map
// each simple conjunction with the SCM matching core, and re-assemble the
// disjunction. It mirrors Algorithm DNF over b (the emission trees rules
// produce are tiny, so the baseline conversion is fine here; the request-time
// hot path still runs TDQM — composition happens once, offline).
func (c *composer) translate(n *qtree.Node) (*qtree.Node, bool, error) {
	n = n.Normalize()
	if n.IsTrue() {
		return qtree.True(), true, nil
	}
	disjuncts := qtree.ToDNF(n).Disjuncts()
	outs := make([]*qtree.Node, 0, len(disjuncts))
	exact := true
	for _, d := range disjuncts {
		m, ex, err := c.mapConjunction(d)
		if err != nil {
			return nil, false, err
		}
		outs = append(outs, m)
		exact = exact && ex
	}
	if len(outs) == 1 {
		return outs[0], exact, nil
	}
	return qtree.Or(outs...).Normalize(), exact, nil
}

// mapConjunction is SCM over one marker-bearing simple conjunction: find all
// b-matchings, suppress submatchings, conjoin the surviving emissions. The
// boolean result reports whether every constraint was covered by exact
// matchings (the condition for the composed rule to stay exact).
func (c *composer) mapConjunction(d *qtree.Node) (*qtree.Node, bool, error) {
	if d.IsTrue() {
		return qtree.True(), true, nil
	}
	cs := d.SimpleConjuncts()
	if err := c.soundnessScan(cs); err != nil {
		return nil, false, err
	}
	var ms []*Matching
	for _, r := range c.b.Rules {
		rms, err := matchRule(r, cs, c.shadow)
		if err != nil {
			return nil, false, err
		}
		if err := c.takeErr(); err != nil {
			return nil, false, err
		}
		ms = append(ms, rms...)
	}
	ms = SuppressSubmatchings(ms)

	exactCover := qtree.NewConstraintSet()
	ems := make([]*qtree.Node, 0, len(ms))
	for _, m := range ms {
		ems = append(ems, m.Emission)
		c.info.FiredB[m.Rule.Name]++
		if m.Rule.Exact {
			exactCover.AddAll(m.Set)
		}
	}
	exact := true
	for _, con := range cs {
		if !exactCover.Has(con) {
			exact = false
			break
		}
	}
	return qtree.And(ems...).Normalize(), exact, nil
}

// soundnessScan rejects compositions whose b-side matching outcome depends
// on the concrete value a marker stands for. Two hazards:
//
//  1. A b-pattern with a literal right-hand side ([attr = "val"]) matches a
//     marker constraint or not depending on the request-time value — the
//     marker matcher would always reject it (markers never Equal literals),
//     silently losing the b-rule for exactly the requests it applies to.
//  2. A b-rule repeating a value variable across patterns unifies two
//     constraints' values; with distinct markers unification fails at
//     composition time but might succeed at request time.
//
// Both are detected structurally: the scan errs whenever such a pattern is
// feasible for a marker constraint modulo the value itself.
func (c *composer) soundnessScan(cs []*qtree.Constraint) error {
	for _, con := range cs {
		if con.IsJoin() {
			continue
		}
		sv, ok := asSym(con.Val)
		if !ok {
			continue
		}
		for _, r := range c.b.Rules {
			counts := make(map[string]int)
			for _, p := range r.Patterns {
				if p.RHS.Var != "" {
					counts[p.RHS.Var]++
				}
			}
			for _, p := range r.Patterns {
				if !structurallyFeasible(p, con) {
					continue
				}
				if p.RHS.Lit != nil {
					return fmt.Errorf("pattern %s of rule %s matches on the constant value, which is unknown at composition time (variable %s); the pair is not composable offline", p, r.Name, sv.name)
				}
				if p.RHS.Var != "" && counts[p.RHS.Var] > 1 {
					return fmt.Errorf("rule %s repeats value variable %s across patterns; unification with the request-time value of %s cannot be decided at composition time", r.Name, p.RHS.Var, sv.name)
				}
			}
		}
	}
	return nil
}

// structurallyFeasible mirrors quickReject minus the literal value-equality
// clause: could this pattern match this (selection) constraint for SOME
// request-time value?
func structurallyFeasible(p ConstraintPat, c *qtree.Constraint) bool {
	if p.OpVar == "" && p.Op != c.Op {
		return false
	}
	a := p.Attr
	if a.WholeVar == "" {
		if a.ViewVar == "" && a.View != c.Attr.View {
			return false
		}
		if a.NameVar == "" && a.Name != c.Attr.Name {
			return false
		}
		if a.Rel != "" && a.Rel != c.Attr.Rel {
			return false
		}
	}
	if p.RHS.Attr != nil {
		return false // c is a selection
	}
	return true
}

// emissionVarKinds types the variables an a-rule's emission may mention:
// structural pattern variables, condition-narrowed variables, and
// let-defined variables with declared result kinds.
func emissionVarKinds(r *Rule, reg *Registry) map[string]BoundKind {
	kinds := make(map[string]BoundKind)
	addAttr := func(a AttrPat) {
		if a.WholeVar != "" {
			kinds[a.WholeVar] = BindAttr
		}
		if a.ViewVar != "" {
			kinds[a.ViewVar] = BindName
		}
		if a.IndexVar != "" {
			kinds[a.IndexVar] = BindIndex
		}
		if a.NameVar != "" {
			kinds[a.NameVar] = BindName
		}
	}
	for _, p := range r.Patterns {
		addAttr(p.Attr)
		if p.OpVar != "" {
			kinds[p.OpVar] = BindName
		}
		if p.RHS.Attr != nil {
			addAttr(*p.RHS.Attr)
		}
		// p.RHS.Var stays untyped here: it binds a value on selections but
		// an attribute on joins. A Value(X)/IsAttr(X) condition narrows it.
	}
	for _, c := range r.Conds {
		if len(c.Args) != 1 {
			continue
		}
		switch c.Name {
		case "Value":
			kinds[c.Args[0]] = BindValue
		case "IsAttr":
			kinds[c.Args[0]] = BindAttr
		}
	}
	for _, l := range r.Lets {
		if k, ok := reg.ActionKind(l.Func); ok {
			kinds[l.Var] = k
		}
	}
	return kinds
}

// checkComposable verifies an a-rule emission template can be instantiated
// symbolically: attributes must be literal (the intermediate vocabulary is
// fixed at composition time) and every value position must be a literal or a
// variable statically known to carry a value.
func checkComposable(e *EmitNode, kinds map[string]BoundKind) error {
	switch e.Kind {
	case qtree.KindTrue:
		return nil
	case qtree.KindLeaf:
		p := e.Pat
		if p.OpVar != "" {
			return fmt.Errorf("emission operator variable %s is not statically known; only literal-operator emissions compose", p.OpVar)
		}
		if err := attrGround(p.Attr); err != nil {
			return err
		}
		if p.RHS.Attr != nil {
			return attrGround(*p.RHS.Attr)
		}
		if v := p.RHS.Var; v != "" {
			k, ok := kinds[v]
			if !ok {
				return fmt.Errorf("emission variable %s has no statically known kind; add a Value(%s) condition or declare its producing function with RegisterActionKind", v, v)
			}
			if k != BindValue {
				return fmt.Errorf("emission variable %s is not value-kinded; only value emissions compose symbolically", v)
			}
		}
		return nil
	case qtree.KindAnd, qtree.KindOr:
		for _, k := range e.Kids {
			if err := checkComposable(k, kinds); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown emission node kind %d", e.Kind)
	}
}

func attrGround(a AttrPat) error {
	if a.WholeVar != "" || a.ViewVar != "" || a.IndexVar != "" || a.NameVar != "" {
		return fmt.Errorf("emission attribute %s contains variables; only literal-attribute emissions compose", a.String())
	}
	return nil
}

// collectEmitValueVars gathers the RHS value variables of an emission
// template into out.
func collectEmitValueVars(e *EmitNode, out map[string]bool) {
	switch e.Kind {
	case qtree.KindLeaf:
		if e.Pat.RHS.Var != "" {
			out[e.Pat.RHS.Var] = true
		}
	case qtree.KindAnd, qtree.KindOr:
		for _, k := range e.Kids {
			collectEmitValueVars(k, out)
		}
	}
}

// liftTemplate turns a mapped (marker-bearing) query tree back into an
// emission template: markers become emission variables, concrete values
// become literals, joins become attribute terms.
func liftTemplate(n *qtree.Node) (*EmitNode, error) {
	switch n.Kind {
	case qtree.KindTrue:
		return EmitTrue(), nil
	case qtree.KindLeaf:
		con := n.C
		if con.Attr.Index != 0 {
			return nil, fmt.Errorf("mapped emission attribute %s carries a view index, which emission templates cannot express", con.Attr)
		}
		ap := LitAttr(con.Attr)
		if con.IsJoin() {
			if con.RAttr.Index != 0 {
				return nil, fmt.Errorf("mapped emission attribute %s carries a view index, which emission templates cannot express", con.RAttr)
			}
			return EmitLeaf(ConstraintPat{Attr: ap, Op: con.Op, RHS: AttrTerm(LitAttr(*con.RAttr))}), nil
		}
		if s, ok := asSym(con.Val); ok {
			return EmitLeaf(ConstraintPat{Attr: ap, Op: con.Op, RHS: VarTerm(s.name)}), nil
		}
		return EmitLeaf(ConstraintPat{Attr: ap, Op: con.Op, RHS: LitTerm(con.Val)}), nil
	case qtree.KindAnd, qtree.KindOr:
		kids := make([]*EmitNode, len(n.Kids))
		for i, k := range n.Kids {
			e, err := liftTemplate(k)
			if err != nil {
				return nil, err
			}
			kids[i] = e
		}
		if n.Kind == qtree.KindAnd {
			return EmitAnd(kids...), nil
		}
		return EmitOr(kids...), nil
	default:
		return nil, fmt.Errorf("unknown query node kind %d in mapped emission", n.Kind)
	}
}

// gcLets keeps only the recorded lets the lifted template (transitively)
// references, in their original order. Lets recorded for matchings that were
// later suppressed or for disjuncts whose markers didn't survive are pruned.
func gcLets(lets []LetClause, tmpl *EmitNode) []LetClause {
	needed := make(map[string]bool)
	collectEmitValueVars(tmpl, needed)
	kept := make([]LetClause, 0, len(lets))
	for i := len(lets) - 1; i >= 0; i-- {
		l := lets[i]
		if !needed[l.Var] {
			continue
		}
		for _, a := range l.Args {
			if !isLiteralArg(a) {
				needed[a] = true
			}
		}
		kept = append(kept, l)
	}
	for i, j := 0, len(kept)-1; i < j; i, j = i+1, j-1 {
		kept[i], kept[j] = kept[j], kept[i]
	}
	return kept
}

// tightenStarts is the planted-bug rewrite behind ComposeTightened: prefix
// selections become equalities, making the composed spec unsoundly tight.
func tightenStarts(n *qtree.Node) *qtree.Node {
	switch n.Kind {
	case qtree.KindLeaf:
		if !n.C.IsJoin() && n.C.Op == qtree.OpStarts {
			return qtree.Leaf(qtree.Sel(n.C.Attr, qtree.OpEq, n.C.Val))
		}
		return n
	case qtree.KindAnd, qtree.KindOr:
		kids := make([]*qtree.Node, len(n.Kids))
		for i, k := range n.Kids {
			kids[i] = tightenStarts(k)
		}
		if n.Kind == qtree.KindAnd {
			return qtree.And(kids...)
		}
		return qtree.Or(kids...)
	default:
		return n
	}
}
