package rules

import (
	"testing"

	"repro/internal/qtree"
	"repro/internal/values"
)

func TestAttrPatMatchForms(t *testing.T) {
	cases := []struct {
		pat  AttrPat
		attr qtree.Attr
		want bool
		// binding expectations (var → rendered value), checked when non-nil
		binds map[string]string
	}{
		{WholeAttr("A1"), qtree.A("ln"), true, map[string]string{"A1": "ln"}},
		{AttrPat{Name: "ln"}, qtree.A("ln"), true, nil},
		{AttrPat{Name: "ln"}, qtree.A("fn"), false, nil},
		{AttrPat{View: "fac", NameVar: "A"}, qtree.VA("fac", "ln"), true, map[string]string{"A": "ln"}},
		{AttrPat{View: "fac", NameVar: "A"}, qtree.VA("pub", "ln"), false, nil},
		{AttrPat{ViewVar: "V", Name: "ln"}, qtree.VA("fac", "ln"), true, map[string]string{"V": "fac"}},
		{AttrPat{View: "fac", IndexVar: "i", NameVar: "A"}, qtree.VIA("fac", 2, "ln"), true,
			map[string]string{"i": "#2", "A": "ln"}},
		// Unindexed literal view matches any instance (fac.bib ≡ fac[i].bib).
		{AttrPat{View: "fac", Name: "bib"}, qtree.VIA("fac", 3, "bib"), true, nil},
		// Relation qualifier must match when present.
		{AttrPat{View: "fac", Rel: "aubib", Name: "name"}, qtree.RA("fac", "aubib", "name"), true, nil},
		{AttrPat{View: "fac", Rel: "prof", Name: "name"}, qtree.RA("fac", "aubib", "name"), false, nil},
	}
	for _, c := range cases {
		b := make(Binding)
		got := c.pat.Match(c.attr, b)
		if got != c.want {
			t.Errorf("pattern %s vs %s = %v, want %v", c.pat, c.attr, got, c.want)
			continue
		}
		for v, want := range c.binds {
			if b[v].String() != want {
				t.Errorf("pattern %s: binding %s = %s, want %s", c.pat, v, b[v], want)
			}
		}
	}
}

func TestAttrPatUnification(t *testing.T) {
	// Same name variable across two patterns must unify.
	p := AttrPat{View: "fac", IndexVar: "i", NameVar: "A"}
	q := AttrPat{View: "fac", IndexVar: "j", NameVar: "A"}
	b := make(Binding)
	if !p.Match(qtree.VIA("fac", 1, "ln"), b) {
		t.Fatal("first match failed")
	}
	if q.Match(qtree.VIA("fac", 2, "fn"), b) {
		t.Error("name variable unified with a different name")
	}
	if !q.Match(qtree.VIA("fac", 2, "ln"), b) {
		t.Error("consistent second match failed")
	}
}

func TestAttrPatInstantiate(t *testing.T) {
	b := Binding{
		"A": AttrOf(qtree.RA("fac", "aubib", "name")),
		"N": NameOf("ln"),
		"i": IndexOf(2),
	}
	got, err := (AttrPat{WholeVar: "A"}).Instantiate(b)
	if err != nil || !got.Equal(qtree.RA("fac", "aubib", "name")) {
		t.Errorf("whole-var instantiate = %v, %v", got, err)
	}
	got, err = (AttrPat{View: "fac", IndexVar: "i", Rel: "prof", NameVar: "N"}).Instantiate(b)
	if err != nil {
		t.Fatal(err)
	}
	want := qtree.Attr{View: "fac", Index: 2, Rel: "prof", Name: "ln"}
	if got != want {
		t.Errorf("instantiate = %v, want %v", got, want)
	}
	// Unbound variables error.
	if _, err := (AttrPat{NameVar: "Missing"}).Instantiate(b); err == nil {
		t.Error("unbound name variable accepted")
	}
	if _, err := (AttrPat{WholeVar: "Missing"}).Instantiate(b); err == nil {
		t.Error("unbound whole variable accepted")
	}
	if _, err := (AttrPat{IndexVar: "Missing", Name: "x"}).Instantiate(b); err == nil {
		t.Error("unbound index variable accepted")
	}
	// A name variable bound to an attribute contributes its Name.
	got, err = (AttrPat{View: "x", NameVar: "A"}).Instantiate(b)
	if err != nil || got.Name != "name" {
		t.Errorf("attr-bound name variable = %v, %v", got, err)
	}
}

func TestConstraintPatLiteralRHS(t *testing.T) {
	pat := ConstraintPat{Attr: AttrPat{Name: "dept"}, Op: qtree.OpEq,
		RHS: LitTerm(values.String("cs"))}
	b := make(Binding)
	if !pat.Match(qtree.Sel(qtree.A("dept"), qtree.OpEq, values.String("cs")), b) {
		t.Error("literal RHS should match equal value")
	}
	if pat.Match(qtree.Sel(qtree.A("dept"), qtree.OpEq, values.String("ee")), b) {
		t.Error("literal RHS matched different value")
	}
	if pat.Match(qtree.Join(qtree.A("dept"), qtree.OpEq, qtree.A("other")), b) {
		t.Error("literal RHS matched a join")
	}
}

func TestBoundValEqualAndString(t *testing.T) {
	cases := []struct {
		a, b  BoundVal
		equal bool
	}{
		{ValueOf(values.Int(1)), ValueOf(values.Int(1)), true},
		{ValueOf(values.Int(1)), ValueOf(values.Int(2)), false},
		{AttrOf(qtree.A("x")), AttrOf(qtree.A("x")), true},
		{AttrOf(qtree.A("x")), AttrOf(qtree.A("y")), false},
		{IndexOf(1), IndexOf(1), true},
		{NameOf("a"), NameOf("a"), true},
		{NameOf("a"), IndexOf(1), false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.equal {
			t.Errorf("Equal(%s, %s) = %v, want %v", c.a, c.b, got, c.equal)
		}
	}
	if IndexOf(3).String() != "#3" || NameOf("x").String() != "x" {
		t.Error("BoundVal.String misbehaves")
	}
}

func TestBindingAccessors(t *testing.T) {
	b := Binding{"V": ValueOf(values.Int(1)), "A": AttrOf(qtree.A("ln"))}
	if _, err := b.Value("A"); err == nil {
		t.Error("Value on attr binding accepted")
	}
	if _, err := b.Value("Missing"); err == nil {
		t.Error("Value on missing binding accepted")
	}
	if a, err := b.AttrVal("A"); err != nil || a != qtree.A("ln") {
		t.Errorf("AttrVal = %v, %v", a, err)
	}
	if _, err := b.AttrVal("V"); err == nil {
		t.Error("AttrVal on value binding accepted")
	}
	if b.ID() == "" || b.Clone().ID() != b.ID() {
		t.Error("ID/Clone misbehave")
	}
}

func TestMatchingString(t *testing.T) {
	s := testSpec(t)
	ms, err := s.Matchings(parseConstraints(t, `[ln = "Clancy"] and [fn = "Tom"]`))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if m.String() == "" || m.ID() == "" {
			t.Error("Matching String/ID empty")
		}
	}
}

func TestMatchingsOfSet(t *testing.T) {
	s := testSpec(t)
	set := qtree.NewConstraintSet(parseConstraints(t, `[ln = "Clancy"] and [fn = "Tom"]`)...)
	ms, err := s.MatchingsOfSet(set)
	if err != nil || len(ms) == 0 {
		t.Errorf("MatchingsOfSet = %d matchings, %v", len(ms), err)
	}
}

func TestEmitComplexTemplates(t *testing.T) {
	rs := MustParseRules(`
rule X {
  match [a = V], [b = W];
  where Value(V), Value(W);
  emit ([p = V] and [q = W]) or TRUE;
}
`)
	b := Binding{"V": ValueOf(values.Int(1)), "W": ValueOf(values.Int(2))}
	got, err := rs[0].Emit.Instantiate(b)
	if err != nil {
		t.Fatal(err)
	}
	// (p ∧ q) ∨ TRUE normalizes to TRUE.
	if !got.IsTrue() {
		t.Errorf("instantiated emission = %s, want TRUE", got)
	}
	if s := rs[0].Emit.String(); s == "" {
		t.Error("EmitNode.String empty")
	}
}

func TestLintProblemString(t *testing.T) {
	p := Problem{Rule: "R", Level: LintError, Message: "boom"}
	if p.String() != "error: rule R: boom" {
		t.Errorf("Problem.String = %q", p.String())
	}
}
