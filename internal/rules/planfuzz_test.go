package rules_test

import (
	"testing"

	"repro/internal/conformance"
	"repro/internal/core"
	"repro/internal/workload"
)

// FuzzPlanEquivalence cross-checks the compiled translation plan against the
// interpretive path over random query shapes: a conformance case picked by a
// qcheck replay string plus a dependency-conjunction sweep shape picked by
// (e, k). For each shape the warm-plan translation must reproduce the
// plan-free mapped query, residue filter, and Stats byte-for-byte — the same
// contract the differential suite pins on fixed seeds, explored here over an
// open-ended shape space.
func FuzzPlanEquivalence(f *testing.F) {
	for _, seed := range []string{"qc1:1", "qc1:7", "qc1:5k", "qc1:12", "qc1:2s"} {
		f.Add(seed, uint8(0), uint8(2))
		f.Add(seed, uint8(2), uint8(8))
	}
	f.Add("qc1:3", uint8(1), uint8(4))

	f.Fuzz(func(t *testing.T, replay string, e, k uint8) {
		// Shape 1: conformance case from the replay string, if it parses.
		if seed, err := conformance.ParseSeedString(replay); err == nil {
			c := conformance.NewCase(seed)
			base := core.NewTranslator(c.S.Spec)
			wantQ, wantF, wantErr := base.TranslateWithFilter(c.Query, core.AlgTDQM)

			plan := core.NewPlan(0)
			for pass := 0; pass < 2; pass++ {
				tr := core.NewTranslator(c.S.Spec, core.WithPlan(plan))
				gotQ, gotF, gotErr := tr.TranslateWithFilter(c.Query, core.AlgTDQM)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("%s pass %d: err=%v, plan-free err=%v", replay, pass, gotErr, wantErr)
				}
				if wantErr != nil {
					break
				}
				if gotQ.String() != wantQ.String() || gotF.String() != wantF.String() {
					t.Errorf("%s pass %d: planned translation diverged\n got: %s | %s\nwant: %s | %s",
						replay, pass, gotQ, gotF, wantQ, wantF)
				}
				if tr.Stats != base.Stats {
					t.Errorf("%s pass %d: Stats diverged\n got: %+v\nwant: %+v",
						replay, pass, tr.Stats, base.Stats)
				}
			}
		}

		// Shape 2: dependency-conjunction sweep shape from (e, k), the
		// workload family whose e>0 corner the plan was built to accelerate.
		n := 2 + int(k%3)
		s, q := workload.DependencyConjunction(n, 2+int(k%7), int(e%4))
		base := core.NewTranslator(s.Spec)
		wantQ, err := base.TDQM(q)
		if err != nil {
			t.Fatalf("e=%d k=%d: plan-free TDQM: %v", e, k, err)
		}
		plan := core.NewPlan(0)
		tr := core.NewTranslator(s.Spec, core.WithPlan(plan))
		for pass := 0; pass < 2; pass++ {
			tr.ResetStats()
			gotQ, err := tr.TDQM(q)
			if err != nil {
				t.Fatalf("e=%d k=%d pass %d: %v", e, k, pass, err)
			}
			if gotQ.String() != wantQ.String() {
				t.Errorf("e=%d k=%d pass %d: planned TDQM diverged\n got: %s\nwant: %s",
					e, k, pass, gotQ, wantQ)
			}
			if tr.Stats != base.Stats {
				t.Errorf("e=%d k=%d pass %d: Stats diverged\n got: %+v\nwant: %+v",
					e, k, pass, tr.Stats, base.Stats)
			}
		}
	})
}
