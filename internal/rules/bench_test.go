package rules

import (
	"fmt"
	"testing"

	"repro/internal/qtree"
	"repro/internal/values"
)

// benchSpec builds a spec with one 1-, 2-, and 3-pattern rule over distinct
// attributes.
func benchSpec(b *testing.B) *Spec {
	b.Helper()
	rs := MustParseRules(`
rule One {
  match [a0 = V];
  where Value(V);
  emit exact [t0 = V];
}
rule Two {
  match [a1 = V], [a2 = W];
  where Value(V), Value(W);
  emit exact [t1 = V];
}
rule Three {
  match [a3 = V], [a4 = W], [a5 = X];
  where Value(V), Value(W), Value(X);
  emit exact [t2 = V];
}
`)
	target := NewTarget("bench",
		Capability{Attr: "t0", Op: qtree.OpEq},
		Capability{Attr: "t1", Op: qtree.OpEq},
		Capability{Attr: "t2", Op: qtree.OpEq},
	)
	return MustSpec("K_bench", target, NewRegistry(), rs...)
}

func benchConstraints(n int) []*qtree.Constraint {
	cs := make([]*qtree.Constraint, n)
	for i := range cs {
		cs[i] = qtree.Sel(qtree.A(fmt.Sprintf("a%d", i%8)), qtree.OpEq,
			values.String(fmt.Sprintf("v%d", i)))
	}
	return cs
}

func BenchmarkMatchings(b *testing.B) {
	s := benchSpec(b)
	for _, n := range []int{8, 32, 128} {
		cs := benchConstraints(n)
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.Matchings(cs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSuppressSubmatchings(b *testing.B) {
	s := benchSpec(b)
	cs := benchConstraints(64)
	ms, err := s.Matchings(cs)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SuppressSubmatchings(ms)
	}
}

func BenchmarkParseRulesDSL(b *testing.B) {
	text := FormatSpec(benchSpec(&testing.B{}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseRules(text); err != nil {
			b.Fatal(err)
		}
	}
}
