package rules

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/qtree"
	"repro/internal/values"
)

// variedSpec exercises every dispatch dimension the compiler indexes:
// literal and variable operators, literal / view-variable / whole-variable
// attributes, selection-forcing literal RHS, join-forcing attribute RHS,
// and multi-pattern heads.
func variedSpec(t testing.TB) *Spec {
	t.Helper()
	rs := MustParseRules(`
rule SelEq {
  match [a0 = V];
  where Value(V);
  emit exact [t0 = V];
}
rule SelAnyOp {
  match [a1 P V];
  where Value(V);
  emit [t1 P V];
}
rule Pair {
  match [a2 = V], [a3 = W];
  where Value(V), Value(W);
  emit exact [t2 = V];
}
rule JoinIds {
  match [X.id = Y.id];
  emit exact [t3 = "joined"];
}
rule AnyAttr {
  match [A contains V];
  where Value(V);
  emit [t4 contains V];
}
rule LitVal {
  match [a4 = "magic"];
  emit exact [t5 = "magic"];
}
`)
	target := NewTarget("varied",
		Capability{Attr: "t0", Op: qtree.OpEq},
		Capability{Attr: "t1", Op: qtree.OpEq},
		Capability{Attr: "t1", Op: qtree.OpLt},
		Capability{Attr: "t1", Op: qtree.OpGt},
		Capability{Attr: "t2", Op: qtree.OpEq},
		Capability{Attr: "t3", Op: qtree.OpEq},
		Capability{Attr: "t4", Op: qtree.OpContains},
		Capability{Attr: "t5", Op: qtree.OpEq},
	)
	return MustSpec("K_varied", target, NewRegistry(), rs...)
}

// randomConstraints draws n constraints over a small attribute/value pool,
// mixing selections (several operators, including the "magic" literal) and
// joins.
func randomConstraints(rng *rand.Rand, n int) []*qtree.Constraint {
	ops := []string{qtree.OpEq, qtree.OpLt, qtree.OpGt, qtree.OpContains}
	cs := make([]*qtree.Constraint, 0, n)
	for i := 0; i < n; i++ {
		if rng.Intn(5) == 0 {
			l := qtree.Attr{View: fmt.Sprintf("v%d", rng.Intn(3)), Name: "id"}
			r := qtree.Attr{View: fmt.Sprintf("v%d", rng.Intn(3)), Name: "id"}
			cs = append(cs, qtree.Join(l, qtree.OpEq, r))
			continue
		}
		attr := qtree.A(fmt.Sprintf("a%d", rng.Intn(7)))
		op := ops[rng.Intn(len(ops))]
		val := values.String(fmt.Sprintf("v%d", rng.Intn(4)))
		if rng.Intn(6) == 0 {
			val = values.String("magic")
		}
		cs = append(cs, qtree.Sel(attr, op, val))
	}
	return cs
}

func matchingIDs(ms []*Matching) []string {
	ids := make([]string, len(ms))
	for i, m := range ms {
		ids[i] = m.ID()
	}
	return ids
}

// TestCompiledMatchingsEquivalent is the compiled engine's contract: on
// randomized constraint sets it returns exactly Spec.Matchings — same
// matchings, same order — while probing no more rules.
func TestCompiledMatchingsEquivalent(t *testing.T) {
	s := variedSpec(t)
	c := s.Compiled()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		cs := randomConstraints(rng, 1+rng.Intn(8))
		want, err := s.Matchings(cs)
		if err != nil {
			t.Fatal(err)
		}
		got, probed, err := c.MatchingsCounted(cs)
		if err != nil {
			t.Fatal(err)
		}
		wantIDs, gotIDs := matchingIDs(want), matchingIDs(got)
		if fmt.Sprint(wantIDs) != fmt.Sprint(gotIDs) {
			t.Fatalf("trial %d: compiled matchings differ\ninput: %v\n got: %v\nwant: %v",
				trial, cs, gotIDs, wantIDs)
		}
		if probed > len(s.Rules) {
			t.Fatalf("trial %d: probed %d rules, spec has %d", trial, probed, len(s.Rules))
		}
	}
}

// TestCompiledSkipsUnrelatedRules checks the index actually rejects: a
// single-attribute query must not probe rules over disjoint attributes.
func TestCompiledSkipsUnrelatedRules(t *testing.T) {
	s := variedSpec(t)
	c := s.Compiled()
	cs := []*qtree.Constraint{qtree.Sel(qtree.A("a0"), qtree.OpEq, values.String("x"))}
	cands := c.CandidateRules(cs)
	for _, r := range cands {
		switch r.Name {
		case "SelEq", "AnyAttr": // a0's rule, plus the name-variable rule
		default:
			t.Errorf("rule %s probed for an a0-only query", r.Name)
		}
	}
	if len(cands) == 0 {
		t.Fatal("no candidate rules for an a0 query")
	}
	ms, probed, err := c.MatchingsCounted(cs)
	if err != nil {
		t.Fatal(err)
	}
	if probed >= len(s.Rules) {
		t.Errorf("probed %d of %d rules; index rejected nothing", probed, len(s.Rules))
	}
	want, err := s.Matchings(cs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(want) {
		t.Errorf("compiled found %d matchings, uncompiled %d", len(ms), len(want))
	}
}

// suppressBrute is the O(n²) reference implementation of submatching
// suppression.
func suppressBrute(ms []*Matching) []*Matching {
	out := ms[:0:0]
	for _, m := range ms {
		redundant := false
		for _, n := range ms {
			if n != m && m.Set.ProperSubsetOf(n.Set) {
				redundant = true
				break
			}
		}
		if !redundant {
			out = append(out, m)
		}
	}
	return out
}

// skewedMatchings builds n matchings that all share one popular constraint —
// the shape the fixed-first-key index degraded quadratically on — plus one
// strict supermatching so suppression has real work to do.
func skewedMatchings(t testing.TB, n int) []*Matching {
	t.Helper()
	s := variedSpec(t)
	shared := qtree.Sel(qtree.A("a9"), qtree.OpEq, values.String("hot"))
	ms := make([]*Matching, 0, n+1)
	for i := 0; i < n; i++ {
		own := qtree.Sel(qtree.A(fmt.Sprintf("b%d", i)), qtree.OpEq, values.String("x"))
		ms = append(ms, &Matching{
			Rule:     s.Rules[0],
			Set:      qtree.NewConstraintSet(shared, own),
			Emission: qtree.Leaf(own.Clone()),
		})
	}
	// A supermatching of matching 0: {shared, b0, extra}.
	extra := qtree.Sel(qtree.A("extra"), qtree.OpEq, values.String("y"))
	super := qtree.NewConstraintSet(shared, qtree.Sel(qtree.A("b0"), qtree.OpEq, values.String("x")), extra)
	ms = append(ms, &Matching{Rule: s.Rules[1], Set: super, Emission: qtree.Leaf(extra.Clone())})
	return ms
}

// TestSuppressSubmatchingsSkewed pins the least-frequent-key pass to the
// brute-force semantics on the adversarial shape (and on random sets).
func TestSuppressSubmatchingsSkewed(t *testing.T) {
	ms := skewedMatchings(t, 50)
	got := matchingIDs(SuppressSubmatchings(ms))
	want := matchingIDs(suppressBrute(ms))
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("suppression differs from brute force:\n got: %v\nwant: %v", got, want)
	}

	s := variedSpec(t)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		cs := randomConstraints(rng, 2+rng.Intn(8))
		all, err := s.Matchings(cs)
		if err != nil {
			t.Fatal(err)
		}
		got := matchingIDs(SuppressSubmatchings(all))
		want := matchingIDs(suppressBrute(all))
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("trial %d: suppression differs\n got: %v\nwant: %v", trial, got, want)
		}
	}
}

// wideSpec builds one single-pattern rule per attribute a0..a{r-1} — the
// many-rules regime where dispatch indexing pays off.
func wideSpec(t testing.TB, r int) *Spec {
	t.Helper()
	rs := make([]*Rule, 0, r)
	caps := make([]Capability, 0, r)
	for i := 0; i < r; i++ {
		text := fmt.Sprintf(`
rule R%d {
  match [a%d = V];
  where Value(V);
  emit exact [t%d = V];
}`, i, i, i)
		rs = append(rs, MustParseRules(text)...)
		caps = append(caps, Capability{Attr: fmt.Sprintf("t%d", i), Op: qtree.OpEq})
	}
	return MustSpec(fmt.Sprintf("K_wide%d", r), NewTarget("wide", caps...), NewRegistry(), rs...)
}

// BenchmarkMatchingsCompiled compares the compiled dispatch engine against
// the scan-every-rule path on a wide spec (R rules) probed with a narrow
// query (m constraints): the uncompiled path attempts all R rules per run,
// the compiled path only the rules whose head attributes intersect the
// query. attempts/op reports the measured rule-probe count.
func BenchmarkMatchingsCompiled(b *testing.B) {
	for _, r := range []int{32, 128} {
		s := wideSpec(b, r)
		cs := make([]*qtree.Constraint, 0, 8)
		for i := 0; i < 8; i++ {
			cs = append(cs, qtree.Sel(qtree.A(fmt.Sprintf("a%d", i*r/8)), qtree.OpEq,
				values.String(fmt.Sprintf("v%d", i))))
		}
		b.Run(fmt.Sprintf("uncompiled/R=%d", r), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.Matchings(cs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(r), "attempts/op")
		})
		b.Run(fmt.Sprintf("compiled/R=%d", r), func(b *testing.B) {
			c := s.Compiled()
			var probed int
			for i := 0; i < b.N; i++ {
				var err error
				if _, probed, err = c.MatchingsCounted(cs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(probed), "attempts/op")
		})
	}
}

// BenchmarkSuppressSubmatchingsSkewed measures suppression on the
// all-share-one-constraint shape. Under the old fixed-first-key index every
// matching scanned the full shared bucket (quadratic); the least-frequent
// bucket is size O(1) here.
func BenchmarkSuppressSubmatchingsSkewed(b *testing.B) {
	for _, n := range []int{100, 400, 1600} {
		ms := skewedMatchings(b, n)
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				SuppressSubmatchings(ms)
			}
		})
	}
}
