package rules

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/qtree"
)

// LintLevel grades lint findings.
type LintLevel int

const (
	// LintWarning marks suspicious but possibly intentional constructs.
	LintWarning LintLevel = iota
	// LintError marks constructs that will misbehave at translation time.
	LintError
)

func (l LintLevel) String() string {
	if l == LintError {
		return "error"
	}
	return "warning"
}

// Problem is one lint finding.
type Problem struct {
	Rule    string
	Level   LintLevel
	Message string
}

func (p Problem) String() string {
	return fmt.Sprintf("%s: rule %s: %s", p.Level, p.Rule, p.Message)
}

// Lint statically checks a specification for common rule-authoring
// mistakes beyond what NewSpec validates:
//
//   - pattern variables bound but never used (likely a typo);
//   - let variables shadowing pattern variables (the binding will fail to
//     unify at match time unless the values coincide);
//   - emissions whose literal attribute/operator combination the target
//     does not support (the translated query would be inexpressible,
//     violating Definition 1 condition 1);
//   - two rules with identical heads (the second is either redundant or a
//     conflicting opinion about the same matching);
//   - a trivial TRUE emission marked exact (TRUE is only equivalent to the
//     matched conjunction if that conjunction is itself trivial).
func Lint(s *Spec) []Problem {
	var out []Problem
	heads := make(map[string]string)
	for _, r := range s.Rules {
		out = append(out, lintRule(s, r)...)
		key := headKey(r)
		if prev, ok := heads[key]; ok {
			out = append(out, Problem{
				Rule:  r.Name,
				Level: LintWarning,
				Message: fmt.Sprintf("head is identical to rule %s's (same patterns and conditions)",
					prev),
			})
		} else {
			heads[key] = r.Name
		}
	}
	return out
}

func headKey(r *Rule) string {
	pats := make([]string, len(r.Patterns))
	for i, p := range r.Patterns {
		pats[i] = p.String()
	}
	sort.Strings(pats)
	conds := make([]string, len(r.Conds))
	for i, c := range r.Conds {
		conds[i] = c.String()
	}
	sort.Strings(conds)
	return strings.Join(pats, ";") + "|" + strings.Join(conds, ";")
}

func lintRule(s *Spec, r *Rule) []Problem {
	var out []Problem

	bound := make(map[string]bool)
	addAttrVars := func(a AttrPat) {
		for _, v := range []string{a.WholeVar, a.ViewVar, a.IndexVar, a.NameVar} {
			if v != "" {
				bound[v] = true
			}
		}
	}
	for _, p := range r.Patterns {
		addAttrVars(p.Attr)
		if p.OpVar != "" {
			bound[p.OpVar] = true
		}
		if p.RHS.Var != "" {
			bound[p.RHS.Var] = true
		}
		if p.RHS.Attr != nil {
			addAttrVars(*p.RHS.Attr)
		}
	}

	used := make(map[string]bool)
	for _, c := range r.Conds {
		for _, a := range c.Args {
			used[a] = true
		}
	}
	for _, l := range r.Lets {
		for _, a := range l.Args {
			used[a] = true
		}
		if bound[l.Var] {
			out = append(out, Problem{
				Rule:  r.Name,
				Level: LintWarning,
				Message: fmt.Sprintf("let %s shadows a pattern variable; the binding must unify or the matching is dropped",
					l.Var),
			})
		}
	}
	markEmitVars(r.Emit, used)

	var unused []string
	for v := range bound {
		if !used[v] {
			unused = append(unused, v)
		}
	}
	sort.Strings(unused)
	for _, v := range unused {
		out = append(out, Problem{
			Rule:    r.Name,
			Level:   LintWarning,
			Message: fmt.Sprintf("pattern variable %s is never used", v),
		})
	}

	out = append(out, lintEmissionCaps(s, r, r.Emit)...)

	if r.Exact && r.Emit.Kind == qtree.KindTrue {
		out = append(out, Problem{
			Rule:    r.Name,
			Level:   LintWarning,
			Message: "TRUE emission marked exact; the matched constraints would be silently dropped from the filter",
		})
	}
	return out
}

// LintComposition statically detects b-rules made unreachable by composing
// the chain a→b: a b-rule pattern that no emission leaf of any a-rule could
// ever satisfy can never fire on a's output, so the rule is dead in the
// composed deployment. The check reuses the patternFeature fingerprints
// behind CompiledSpec/TranslationPlan: a pattern is reachable when some
// a-emission template may produce a constraint satisfying its feature
// (template variables are wildcards, so the check is conservative — it only
// reports rules that are provably unreachable). Complementary to the dynamic
// ComposeInfo.FiredB counts, which report rules that merely *happened* not
// to fire for a given pair.
func LintComposition(a, b *Spec) []Problem {
	var out []Problem
	for _, rb := range b.Rules {
		for _, p := range rb.Patterns {
			f := patternFeature(p)
			reachable := false
			for _, ra := range a.Rules {
				if emitMaySatisfy(ra.Emit, f) {
					reachable = true
					break
				}
			}
			if !reachable {
				out = append(out, Problem{
					Rule:  rb.Name,
					Level: LintWarning,
					Message: fmt.Sprintf("pattern %s cannot be satisfied by any emission of %s; the rule is unreachable under composition %s∘%s",
						p.String(), a.Name, a.Name, b.Name),
				})
				break
			}
		}
	}
	return out
}

// emitMaySatisfy reports whether some leaf of emission template e could
// instantiate to a constraint satisfying feature f. Variable template
// components are wildcards.
func emitMaySatisfy(e *EmitNode, f feature) bool {
	switch e.Kind {
	case qtree.KindLeaf:
		p := e.Pat
		if f.hasOp && p.OpVar == "" && p.Op != f.op {
			return false
		}
		a := p.Attr
		if a.WholeVar == "" {
			if f.hasView && a.ViewVar == "" && a.View != f.view {
				return false
			}
			if f.hasName && a.NameVar == "" && a.Name != f.name {
				return false
			}
			if f.hasRel && a.Rel != f.rel {
				return false
			}
		}
		// An RHS variable may instantiate to a value or an attribute, so it
		// is compatible with either constraint kind.
		if f.kind == 1 && p.RHS.Attr != nil {
			return false
		}
		if f.kind == 2 && (p.RHS.Lit != nil || (p.RHS.Attr == nil && p.RHS.Var == "")) {
			return false
		}
		return true
	case qtree.KindAnd, qtree.KindOr:
		for _, k := range e.Kids {
			if emitMaySatisfy(k, f) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

func markEmitVars(e *EmitNode, used map[string]bool) {
	switch e.Kind {
	case qtree.KindLeaf:
		for _, v := range []string{e.Pat.Attr.WholeVar, e.Pat.Attr.ViewVar, e.Pat.Attr.IndexVar,
			e.Pat.Attr.NameVar, e.Pat.OpVar, e.Pat.RHS.Var} {
			if v != "" {
				used[v] = true
			}
		}
		if e.Pat.RHS.Attr != nil {
			for _, v := range []string{e.Pat.RHS.Attr.WholeVar, e.Pat.RHS.Attr.ViewVar,
				e.Pat.RHS.Attr.IndexVar, e.Pat.RHS.Attr.NameVar} {
				if v != "" {
					used[v] = true
				}
			}
		}
	case qtree.KindAnd, qtree.KindOr:
		for _, k := range e.Kids {
			markEmitVars(k, used)
		}
	}
}

// lintEmissionCaps flags emission leaves with fully literal attributes whose
// attribute/operator pair the target does not support. Variable attributes
// cannot be checked statically.
func lintEmissionCaps(s *Spec, r *Rule, e *EmitNode) []Problem {
	if s.Target == nil || len(s.Target.Caps) == 0 {
		return nil
	}
	var out []Problem
	switch e.Kind {
	case qtree.KindLeaf:
		a := e.Pat.Attr
		if a.WholeVar != "" || a.ViewVar != "" || a.NameVar != "" || e.Pat.OpVar != "" {
			return nil
		}
		supported := false
		for _, cap := range s.Target.Caps {
			if cap.Op != e.Pat.Op {
				continue
			}
			if cap.Attr == "*" || cap.Attr == a.Name {
				supported = true
				break
			}
		}
		if !supported {
			out = append(out, Problem{
				Rule:  r.Name,
				Level: LintError,
				Message: fmt.Sprintf("emission [%s %s ...] is not supported by target %s",
					a.String(), e.Pat.Op, s.Target.Name),
			})
		}
	case qtree.KindAnd, qtree.KindOr:
		for _, k := range e.Kids {
			out = append(out, lintEmissionCaps(s, r, k)...)
		}
	}
	return out
}
