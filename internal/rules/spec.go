package rules

import (
	"fmt"
	"sync"

	"repro/internal/qtree"
)

// Spec is a mapping specification K for one target context: the rule set,
// the function registry resolving its conditions and actions, and the
// target's capability description. Rules are required to be sound and the
// specification complete (Definitions 3 and 4) — properties of the human
// author that the library's targets uphold and the test suite verifies
// empirically.
//
// Immutability contract: a Spec must not be modified after its first use.
// The compiled dispatch engine (Compiled), the translation plan
// (TranslationPlan), core's cross-request MatchCache, and core's Plan all
// key cached work to the Spec pointer on the assumption that the rule set
// is frozen; mutating Rules after any of them has observed the spec would
// silently serve stale matchings. Compiled snapshots the rule slice on
// first compilation and panics if a later call finds it changed, turning
// that silent corruption into an immediate, attributable failure. To vary a
// rule set, build a new Spec (see NewSpec, WithoutRelaxations).
type Spec struct {
	Name   string
	Target *Target
	Rules  []*Rule
	Reg    *Registry

	compileOnce sync.Once
	compiled    *CompiledSpec
	// compiledRules snapshots Rules at compile time; Compiled verifies the
	// live slice still matches it (the immutability guard above).
	compiledRules []*Rule

	planOnce sync.Once
	plan     *TranslationPlan
}

// Compiled returns the spec's compiled matching engine, built lazily on
// first use. The rule set must not be modified after the first call (see
// the Spec immutability contract); a detected mutation panics.
func (s *Spec) Compiled() *CompiledSpec {
	s.compileOnce.Do(func() {
		s.compiledRules = append([]*Rule(nil), s.Rules...)
		s.compiled = compile(s)
	})
	if len(s.Rules) != len(s.compiledRules) {
		panic("rules: spec " + s.Name + " mutated after compilation (rule count changed); specs are immutable after first use")
	}
	for i, r := range s.Rules {
		if r != s.compiledRules[i] {
			panic("rules: spec " + s.Name + " mutated after compilation (rule " + r.Name + " changed); specs are immutable after first use")
		}
	}
	return s.compiled
}

// TranslationPlan returns the spec's static translation plan — the
// precomputed cross-matching feature adjacency — built lazily on first use
// from the compiled engine. Like Compiled, it requires the spec to be
// immutable after first use.
func (s *Spec) TranslationPlan() *TranslationPlan {
	s.planOnce.Do(func() { s.plan = buildTranslationPlan(s.Compiled()) })
	return s.plan
}

// NewSpec assembles and validates a specification.
func NewSpec(name string, target *Target, reg *Registry, rs ...*Rule) (*Spec, error) {
	if reg == nil {
		reg = NewRegistry()
	}
	s := &Spec{Name: name, Target: target, Rules: rs, Reg: reg}
	names := make(map[string]bool, len(rs))
	for _, r := range rs {
		if names[r.Name] {
			return nil, fmt.Errorf("rules: duplicate rule name %s in spec %s", r.Name, name)
		}
		names[r.Name] = true
		if err := r.Validate(reg); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// MustSpec is NewSpec that panics on error; for fixtures.
func MustSpec(name string, target *Target, reg *Registry, rs ...*Rule) *Spec {
	s, err := NewSpec(name, target, reg, rs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Matchings computes M(Q̂, K): all matchings of any rule against the given
// constraints (Algorithm SCM, step 1). The result is deterministic: rules
// are evaluated in specification order and matchings deduplicated.
func (s *Spec) Matchings(cs []*qtree.Constraint) ([]*Matching, error) {
	var out []*Matching
	for _, r := range s.Rules {
		ms, err := matchRule(r, cs, s.Reg)
		if err != nil {
			return nil, err
		}
		out = append(out, ms...)
	}
	return out, nil
}

// MatchRule computes the matchings of a single rule against the given
// constraints. Iterating the spec's rules with MatchRule in order yields
// exactly the matchings of Matchings; the tracing layer uses this to
// attribute matchings to the rule that produced them.
func (s *Spec) MatchRule(r *Rule, cs []*qtree.Constraint) ([]*Matching, error) {
	return matchRule(r, cs, s.Reg)
}

// MatchingsOfSet is Matchings over a constraint set.
func (s *Spec) MatchingsOfSet(set *qtree.ConstraintSet) ([]*Matching, error) {
	return s.Matchings(set.Slice())
}

// SuppressSubmatchings removes every matching whose constraint set is a
// proper subset of another matching's set (Algorithm SCM, step 2): the
// larger matching yields a stricter mapping (Lemma 1), so the submatching is
// redundant. Matchings over the *same* set are all kept — distinct rules may
// each contribute to the mapping.
//
// Only matchings sharing a constraint can be in a subset relation, and any
// superset of m contains every key of m — so each matching is compared only
// against the candidates indexed under its least-frequent constraint key.
// Scanning the smallest bucket (rather than a fixed one) keeps the pass
// near-linear even when many matchings share one popular constraint, the
// skew the fixed-key variant degraded quadratically on.
func SuppressSubmatchings(ms []*Matching) []*Matching {
	byConstraint := make(map[string][]*Matching)
	for _, m := range ms {
		for _, k := range m.Set.Keys() {
			byConstraint[k] = append(byConstraint[k], m)
		}
	}
	out := ms[:0:0]
	for _, m := range ms {
		redundant := false
		keys := m.Set.Keys()
		if len(keys) > 0 {
			rarest := keys[0]
			for _, k := range keys[1:] {
				if len(byConstraint[k]) < len(byConstraint[rarest]) {
					rarest = k
				}
			}
			for _, n := range byConstraint[rarest] {
				if n != m && m.Set.ProperSubsetOf(n.Set) {
					redundant = true
					break
				}
			}
		}
		if !redundant {
			out = append(out, m)
		}
	}
	return out
}

// RuleByName returns the named rule, or nil.
func (s *Spec) RuleByName(name string) *Rule {
	for _, r := range s.Rules {
		if r.Name == name {
			return r
		}
	}
	return nil
}
