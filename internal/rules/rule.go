package rules

import (
	"fmt"
	"strings"

	"repro/internal/qtree"
)

// CondRef is a named condition application in a rule head, e.g.
// LnOrFn(A1) or Value(N).
type CondRef struct {
	Name string
	Args []string
}

func (c CondRef) String() string {
	return c.Name + "(" + strings.Join(c.Args, ", ") + ")"
}

// LetClause is a rule-tail action: Var = Func(Args...).
type LetClause struct {
	Var  string
	Func string
	Args []string
}

func (l LetClause) String() string {
	return l.Var + " = " + l.Func + "(" + strings.Join(l.Args, ", ") + ")"
}

// EmitNode is a template query tree for rule emissions: leaves are
// constraint templates, interior nodes are ∧/∨. (An emission can be a
// complex query — rule R8 of Figure 3 emits a disjunction.)
type EmitNode struct {
	Kind qtree.NodeKind // KindAnd, KindOr, KindLeaf, KindTrue
	Kids []*EmitNode
	Pat  *ConstraintPat // for KindLeaf: attr/op/rhs template
}

// EmitLeaf returns a leaf emission template.
func EmitLeaf(p ConstraintPat) *EmitNode { return &EmitNode{Kind: qtree.KindLeaf, Pat: &p} }

// EmitAnd returns a conjunction emission template.
func EmitAnd(kids ...*EmitNode) *EmitNode { return &EmitNode{Kind: qtree.KindAnd, Kids: kids} }

// EmitOr returns a disjunction emission template.
func EmitOr(kids ...*EmitNode) *EmitNode { return &EmitNode{Kind: qtree.KindOr, Kids: kids} }

// EmitTrue returns the trivial emission (the rule maps its matching to True;
// useful to state explicitly that a constraint is understood but
// unsupported).
func EmitTrue() *EmitNode { return &EmitNode{Kind: qtree.KindTrue} }

// Instantiate builds the concrete emitted query from the template and a
// binding.
func (e *EmitNode) Instantiate(b Binding) (*qtree.Node, error) {
	switch e.Kind {
	case qtree.KindTrue:
		return qtree.True(), nil
	case qtree.KindLeaf:
		c, err := e.Pat.InstantiateConstraint(b)
		if err != nil {
			return nil, err
		}
		return qtree.Leaf(c), nil
	case qtree.KindAnd, qtree.KindOr:
		kids := make([]*qtree.Node, len(e.Kids))
		for i, k := range e.Kids {
			n, err := k.Instantiate(b)
			if err != nil {
				return nil, err
			}
			kids[i] = n
		}
		if e.Kind == qtree.KindAnd {
			return qtree.And(kids...).Normalize(), nil
		}
		return qtree.Or(kids...).Normalize(), nil
	default:
		return nil, fmt.Errorf("rules: invalid emission node kind %v", e.Kind)
	}
}

func (e *EmitNode) String() string {
	switch e.Kind {
	case qtree.KindTrue:
		return "TRUE"
	case qtree.KindLeaf:
		return e.Pat.String()
	case qtree.KindAnd, qtree.KindOr:
		op := " and "
		if e.Kind == qtree.KindOr {
			op = " or "
		}
		parts := make([]string, len(e.Kids))
		for i, k := range e.Kids {
			parts[i] = k.String()
		}
		return "(" + strings.Join(parts, op) + ")"
	default:
		return "<invalid>"
	}
}

// InstantiateConstraint builds a concrete constraint from a template.
func (p *ConstraintPat) InstantiateConstraint(b Binding) (*qtree.Constraint, error) {
	attr, err := p.Attr.Instantiate(b)
	if err != nil {
		return nil, err
	}
	op := p.Op
	if p.OpVar != "" {
		v, ok := b[p.OpVar]
		if !ok || v.Kind != BindName {
			return nil, fmt.Errorf("rules: operator variable %s unbound", p.OpVar)
		}
		op = v.Name
	}
	p = &ConstraintPat{Attr: p.Attr, Op: op, RHS: p.RHS}
	switch {
	case p.RHS.Var != "":
		bv, ok := b[p.RHS.Var]
		if !ok {
			return nil, fmt.Errorf("rules: emission variable %s unbound", p.RHS.Var)
		}
		switch bv.Kind {
		case BindValue:
			return qtree.Sel(attr, p.Op, bv.Val), nil
		case BindAttr:
			return qtree.Join(attr, p.Op, bv.Attr), nil
		default:
			return nil, fmt.Errorf("rules: emission variable %s has no value", p.RHS.Var)
		}
	case p.RHS.Attr != nil:
		rattr, err := p.RHS.Attr.Instantiate(b)
		if err != nil {
			return nil, err
		}
		return qtree.Join(attr, p.Op, rattr), nil
	case p.RHS.Lit != nil:
		return qtree.Sel(attr, p.Op, p.RHS.Lit), nil
	default:
		return nil, fmt.Errorf("rules: emission constraint %s has no right-hand side", p)
	}
}

// Rule is a mapping rule (Figure 3): patterns and conditions in the head,
// lets (value conversions) and an emission in the tail.
type Rule struct {
	// Name identifies the rule in diagnostics (R1, R2, ...).
	Name string
	// Patterns are the constraint patterns of the head. A matching assigns
	// each pattern to a distinct constraint of the query.
	Patterns []ConstraintPat
	// Conds are the head conditions restricting matchings.
	Conds []CondRef
	// Lets are the tail conversions, applied in order.
	Lets []LetClause
	// Emit is the emission template. By rule soundness (Definition 3) the
	// instantiated emission is the minimal subsuming mapping of the matched
	// conjunction.
	Emit *EmitNode
	// Exact records whether the emission is logically *equivalent* to the
	// matched conjunction (not merely minimally subsuming). Inexact rules —
	// semantic relaxations like near→∧ — leave a residue for the filter
	// query (Section 2); exact ones do not.
	Exact bool
}

// String renders the rule in DSL syntax.
func (r *Rule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rule %s {\n", r.Name)
	pats := make([]string, len(r.Patterns))
	for i, p := range r.Patterns {
		pats[i] = p.String()
	}
	fmt.Fprintf(&b, "  match %s;\n", strings.Join(pats, ", "))
	if len(r.Conds) > 0 {
		conds := make([]string, len(r.Conds))
		for i, c := range r.Conds {
			conds[i] = c.String()
		}
		fmt.Fprintf(&b, "  where %s;\n", strings.Join(conds, ", "))
	}
	for _, l := range r.Lets {
		fmt.Fprintf(&b, "  let %s;\n", l.String())
	}
	kw := "emit"
	if r.Exact {
		kw = "emit exact"
	}
	fmt.Fprintf(&b, "  %s %s;\n}", kw, r.Emit.String())
	return b.String()
}

// Vars returns the set of variables introduced by the rule's patterns.
func (r *Rule) patternVars() map[string]bool {
	vars := make(map[string]bool)
	addAttr := func(a AttrPat) {
		for _, v := range []string{a.WholeVar, a.ViewVar, a.IndexVar, a.NameVar} {
			if v != "" {
				vars[v] = true
			}
		}
	}
	for _, p := range r.Patterns {
		addAttr(p.Attr)
		if p.OpVar != "" {
			vars[p.OpVar] = true
		}
		if p.RHS.Var != "" {
			vars[p.RHS.Var] = true
		}
		if p.RHS.Attr != nil {
			addAttr(*p.RHS.Attr)
		}
	}
	return vars
}

// Validate performs static checks: patterns present, conditions and
// functions resolvable, emission variables defined by patterns or lets.
func (r *Rule) Validate(reg *Registry) error {
	if r.Name == "" {
		return fmt.Errorf("rules: rule with empty name")
	}
	if len(r.Patterns) == 0 {
		return fmt.Errorf("rules: rule %s has no patterns", r.Name)
	}
	if r.Emit == nil {
		return fmt.Errorf("rules: rule %s has no emission", r.Name)
	}
	defined := r.patternVars()
	for _, c := range r.Conds {
		if _, err := reg.Cond(c.Name); err != nil {
			return fmt.Errorf("rules: rule %s: %w", r.Name, err)
		}
	}
	for _, l := range r.Lets {
		if _, err := reg.Action(l.Func); err != nil {
			return fmt.Errorf("rules: rule %s: %w", r.Name, err)
		}
		for _, a := range l.Args {
			if !defined[a] && !isLiteralArg(a) {
				return fmt.Errorf("rules: rule %s: let %s uses undefined variable %s", r.Name, l.Var, a)
			}
		}
		defined[l.Var] = true
	}
	return validateEmitVars(r.Name, r.Emit, defined)
}

func validateEmitVars(rule string, e *EmitNode, defined map[string]bool) error {
	switch e.Kind {
	case qtree.KindLeaf:
		for _, v := range []string{e.Pat.Attr.WholeVar, e.Pat.Attr.ViewVar, e.Pat.Attr.IndexVar, e.Pat.Attr.NameVar, e.Pat.OpVar, e.Pat.RHS.Var} {
			if v != "" && !defined[v] {
				return fmt.Errorf("rules: rule %s: emission uses undefined variable %s", rule, v)
			}
		}
	case qtree.KindAnd, qtree.KindOr:
		for _, k := range e.Kids {
			if err := validateEmitVars(rule, k, defined); err != nil {
				return err
			}
		}
	}
	return nil
}

// isLiteralArg reports whether a let/cond argument is a literal (quoted
// string or number) rather than a variable reference.
func isLiteralArg(s string) bool {
	if s == "" {
		return false
	}
	c := s[0]
	return c == '"' || c >= '0' && c <= '9' || c == '-'
}
