package rules

import (
	"fmt"
	"strings"

	"repro/internal/qtree"
)

// AttrPat is a pattern over an attribute reference. It doubles as a template
// in emissions: Instantiate fills variables from a binding. The zero value
// matches nothing; construct the fields explicitly or via the DSL.
//
// Variable fields follow the paper's conventions: capitalized symbols are
// variables. Examples:
//
//	[A1 = N]               → AttrPat{WholeVar: "A1"}
//	[fac.A1 = N]           → AttrPat{View: "fac", NameVar: "A1"}
//	[ti contains P1]       → AttrPat{Name: "ti"}
//	[V1.ln = ...]          → AttrPat{ViewVar: "V1", Name: "ln"}
//	[fac[i].A = fac[j].A]  → AttrPat{View: "fac", IndexVar: "i", NameVar: "A"}
type AttrPat struct {
	// WholeVar binds the entire attribute; all other fields must be empty.
	WholeVar string
	// View is a literal view name; ViewVar binds the view name instead.
	View    string
	ViewVar string
	// IndexVar binds the instance index. When empty, any index matches and
	// nothing is bound (fac.bib abbreviates fac[i].bib for any i).
	IndexVar string
	// Rel is a literal source-relation qualifier (used in emissions).
	Rel string
	// Name is a literal attribute name; NameVar binds the name instead.
	Name    string
	NameVar string
}

// WholeAttr returns a pattern binding the entire attribute to var.
func WholeAttr(v string) AttrPat { return AttrPat{WholeVar: v} }

// LitAttr returns a pattern/template for a literal attribute.
func LitAttr(a qtree.Attr) AttrPat {
	return AttrPat{View: a.View, Rel: a.Rel, Name: a.Name}
}

// Match attempts to match the pattern against attribute a, extending b.
// It reports success; on failure b may be partially extended (callers clone).
func (p AttrPat) Match(a qtree.Attr, b Binding) bool {
	if p.WholeVar != "" {
		return b.Bind(p.WholeVar, AttrOf(a))
	}
	switch {
	case p.ViewVar != "":
		if !b.Bind(p.ViewVar, NameOf(a.View)) {
			return false
		}
	case p.View != a.View:
		return false
	}
	if p.IndexVar != "" && !b.Bind(p.IndexVar, IndexOf(a.Index)) {
		return false
	}
	if p.Rel != "" && p.Rel != a.Rel {
		return false
	}
	switch {
	case p.NameVar != "":
		if !b.Bind(p.NameVar, NameOf(a.Name)) {
			return false
		}
	case p.Name != a.Name:
		return false
	}
	return true
}

// Instantiate builds a concrete attribute from the template and binding.
func (p AttrPat) Instantiate(b Binding) (qtree.Attr, error) {
	if p.WholeVar != "" {
		return b.AttrVal(p.WholeVar)
	}
	a := qtree.Attr{View: p.View, Rel: p.Rel, Name: p.Name}
	if p.ViewVar != "" {
		v, ok := b[p.ViewVar]
		if !ok || v.Kind != BindName {
			return qtree.Attr{}, fmt.Errorf("rules: view variable %s unbound", p.ViewVar)
		}
		a.View = v.Name
	}
	if p.IndexVar != "" {
		v, ok := b[p.IndexVar]
		if !ok || v.Kind != BindIndex {
			return qtree.Attr{}, fmt.Errorf("rules: index variable %s unbound", p.IndexVar)
		}
		a.Index = v.Idx
	}
	if p.NameVar != "" {
		v, ok := b[p.NameVar]
		switch {
		case !ok:
			return qtree.Attr{}, fmt.Errorf("rules: name variable %s unbound", p.NameVar)
		case v.Kind == BindName:
			a.Name = v.Name
		case v.Kind == BindAttr:
			a.Name = v.Attr.Name
		default:
			return qtree.Attr{}, fmt.Errorf("rules: name variable %s has kind %d", p.NameVar, v.Kind)
		}
	}
	return a, nil
}

// String renders the pattern in DSL syntax.
func (p AttrPat) String() string {
	if p.WholeVar != "" {
		return p.WholeVar
	}
	var b strings.Builder
	switch {
	case p.ViewVar != "":
		b.WriteString(p.ViewVar)
	case p.View != "":
		b.WriteString(p.View)
	}
	if p.IndexVar != "" {
		fmt.Fprintf(&b, "[%s]", p.IndexVar)
	}
	if b.Len() > 0 {
		b.WriteByte('.')
	}
	if p.Rel != "" {
		b.WriteString(p.Rel)
		b.WriteByte('.')
	}
	if p.NameVar != "" {
		b.WriteString(p.NameVar)
	} else {
		b.WriteString(p.Name)
	}
	return b.String()
}

// Term is the right-hand side of a constraint pattern or template: a
// variable, a literal value, or an attribute pattern (for joins).
type Term struct {
	Var  string
	Lit  qtree.Value
	Attr *AttrPat
}

// VarTerm returns a variable term.
func VarTerm(v string) Term { return Term{Var: v} }

// LitTerm returns a literal-value term.
func LitTerm(v qtree.Value) Term { return Term{Lit: v} }

// AttrTerm returns an attribute-pattern term.
func AttrTerm(p AttrPat) Term { return Term{Attr: &p} }

// String renders the term in DSL syntax.
func (t Term) String() string {
	switch {
	case t.Var != "":
		return t.Var
	case t.Attr != nil:
		return t.Attr.String()
	case t.Lit != nil:
		return t.Lit.String()
	default:
		return "<empty term>"
	}
}

// ConstraintPat matches one constraint: an attribute pattern, an operator
// (literal, or a variable binding the operator name — an extension that
// lets one rule cover a family like =, <, <=, >, >=), and a right-hand-side
// term. A variable RHS binds the selection constant or, when the constraint
// is a join, the right attribute — rule conditions such as Value(N) /
// IsAttr(N) narrow this (Section 4.2).
type ConstraintPat struct {
	Attr  AttrPat
	Op    string
	OpVar string // binds the operator name; mutually exclusive with Op
	RHS   Term
}

// Match attempts to match the pattern against constraint c, extending b.
func (p ConstraintPat) Match(c *qtree.Constraint, b Binding) bool {
	if p.OpVar != "" {
		if !b.Bind(p.OpVar, NameOf(c.Op)) {
			return false
		}
	} else if p.Op != c.Op {
		return false
	}
	if !p.Attr.Match(c.Attr, b) {
		return false
	}
	switch {
	case p.RHS.Var != "":
		if c.IsJoin() {
			return b.Bind(p.RHS.Var, AttrOf(*c.RAttr))
		}
		return b.Bind(p.RHS.Var, ValueOf(c.Val))
	case p.RHS.Attr != nil:
		return c.IsJoin() && p.RHS.Attr.Match(*c.RAttr, b)
	case p.RHS.Lit != nil:
		return !c.IsJoin() && c.Val != nil && p.RHS.Lit.Equal(c.Val)
	default:
		return false
	}
}

// String renders the constraint pattern in DSL syntax.
func (p ConstraintPat) String() string {
	op := p.Op
	if p.OpVar != "" {
		op = p.OpVar
	}
	return fmt.Sprintf("[%s %s %s]", p.Attr.String(), op, p.RHS.String())
}
