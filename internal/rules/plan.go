package rules

import (
	"repro/internal/qtree"
)

// TranslationPlan is the static half of translation-plan compilation: a
// per-spec precomputation, one step beyond CompiledSpec, of the
// cross-matching adjacency between rule head features. Where CompiledSpec
// answers "which rules can match this constraint set", the plan answers the
// question Algorithm PSafe really asks — "can any rule match *across* two
// groups of constraints at once?" — without running the matcher.
//
// The adjacency is derived from the same interned pattern features the
// dispatch index uses (patternFeature, kept in lockstep with quickReject):
// for every rule, every ordered pair of distinct pattern positions
// contributes the unordered pair of their feature indices. A matching that
// spans two constraint groups assigns constraints of both groups to
// distinct patterns of one rule, and a constraint only matches a pattern
// whose feature some orientation of it satisfies — so if no recorded pair
// has one feature satisfied in group A and the other in group B, no
// cross-matching between A and B can exist, under any bindings. The reverse
// is not true (the check is a sound over-approximation): feasible pairs may
// still fail on conditions or bindings, which is exactly when the dynamic
// scan must run.
//
// A TranslationPlan is immutable after construction and safe for concurrent
// use. Build one with Spec.TranslationPlan (lazy, cached).
type TranslationPlan struct {
	c     *CompiledSpec
	pairs [][2]int // unordered feature-index pairs co-occurring in one rule
}

// buildTranslationPlan derives the feature-pair adjacency from a compiled
// spec's per-rule feature lists.
func buildTranslationPlan(c *CompiledSpec) *TranslationPlan {
	p := &TranslationPlan{c: c}
	seen := make(map[[2]int]bool)
	for _, bits := range c.bits {
		for i := 0; i < len(bits); i++ {
			for j := i + 1; j < len(bits); j++ {
				a, b := bits[i], bits[j]
				if a > b {
					a, b = b, a
				}
				pr := [2]int{a, b}
				if !seen[pr] {
					seen[pr] = true
					p.pairs = append(p.pairs, pr)
				}
			}
		}
	}
	return p
}

// Spec returns the specification the plan was built for.
func (p *TranslationPlan) Spec() *Spec { return p.c.spec }

// Pairs returns the number of distinct cross-feasible feature pairs.
func (p *TranslationPlan) Pairs() int { return len(p.pairs) }

// SatMask computes the satisfied-feature bitmask of a constraint group: bit
// f is set when some orientation of some constraint satisfies feature f.
// The mask is the group's shape summary for CrossFeasible.
func (p *TranslationPlan) SatMask(cs []*qtree.Constraint) []uint64 {
	mask := make([]uint64, p.c.words)
	for _, q := range cs {
		for _, v := range orientations(q) {
			for fi := range p.c.feats {
				if mask[fi>>6]&(1<<(fi&63)) != 0 {
					continue
				}
				if p.c.feats[fi].satisfiedBy(v) {
					mask[fi>>6] |= 1 << (fi & 63)
				}
			}
		}
	}
	return mask
}

// CrossFeasible reports whether any rule could produce a matching spanning
// the two constraint groups summarized by masks a and b: some recorded
// feature pair has one side satisfied in a and the other in b. A false
// return is a proof that no cross-matching between the groups exists; a
// true return only means the dynamic scan cannot be skipped.
func (p *TranslationPlan) CrossFeasible(a, b []uint64) bool {
	for _, pr := range p.pairs {
		x, y := pr[0], pr[1]
		ax := a[x>>6]&(1<<(x&63)) != 0
		ay := a[y>>6]&(1<<(y&63)) != 0
		bx := b[x>>6]&(1<<(x&63)) != 0
		by := b[y>>6]&(1<<(y&63)) != 0
		if (ax && by) || (bx && ay) {
			return true
		}
	}
	return false
}
