package rules

import (
	"fmt"
	"sort"
)

// CondFunc is a rule-head condition (predicate function, Section 4.1): it
// inspects bound variables and reports whether the matching is acceptable.
// args are the variable names from the rule text.
type CondFunc func(b Binding, args []string) (bool, error)

// ActionFunc is a rule-tail conversion function ("let X = F(args)"): it
// computes a new bound value from bound variables. A returned error means
// the conversion is inapplicable (e.g. an unknown department code); the
// matching then produces no emission and is dropped.
type ActionFunc func(b Binding, args []string) (BoundVal, error)

// Registry resolves the externally supplied condition and action functions
// a mapping specification refers to by name. A Registry is immutable after
// construction from the caller's perspective: register everything up front.
type Registry struct {
	conds   map[string]CondFunc
	actions map[string]ActionFunc
	// kinds records the declared result kind of action functions (see
	// RegisterActionKind). Compose consults it to type let-defined variables
	// when translating rule emissions symbolically.
	kinds map[string]BoundKind
}

// NewRegistry returns an empty registry pre-loaded with the built-in
// conditions (Value, IsAttr, OneOf).
func NewRegistry() *Registry {
	r := &Registry{
		conds:   make(map[string]CondFunc),
		actions: make(map[string]ActionFunc),
		kinds:   make(map[string]BoundKind),
	}
	r.RegisterCond("Value", condValue)
	r.RegisterCond("IsAttr", condIsAttr)
	r.RegisterCond("OneOf", condOneOf)
	r.RegisterCond("DistinctIndex", condDistinctIndex)
	return r
}

// RegisterCond installs a condition function under name.
func (r *Registry) RegisterCond(name string, fn CondFunc) { r.conds[name] = fn }

// RegisterAction installs an action function under name.
func (r *Registry) RegisterAction(name string, fn ActionFunc) { r.actions[name] = fn }

// RegisterActionKind declares the result kind of the action function
// registered under name. The declaration is optional at match time but
// required by Compose: a let-defined variable can only appear in a composed
// emission when its producing function's result kind is statically known
// (and is BindValue).
func (r *Registry) RegisterActionKind(name string, k BoundKind) { r.kinds[name] = k }

// ActionKind reports the declared result kind of an action function, if one
// was declared with RegisterActionKind.
func (r *Registry) ActionKind(name string) (BoundKind, bool) {
	k, ok := r.kinds[name]
	return k, ok
}

// Cond resolves a condition function.
func (r *Registry) Cond(name string) (CondFunc, error) {
	fn, ok := r.conds[name]
	if !ok {
		return nil, fmt.Errorf("rules: unknown condition %q (known: %v)", name, keys(r.conds))
	}
	return fn, nil
}

// Action resolves an action function.
func (r *Registry) Action(name string) (ActionFunc, error) {
	fn, ok := r.actions[name]
	if !ok {
		return nil, fmt.Errorf("rules: unknown function %q (known: %v)", name, keys(r.actions))
	}
	return fn, nil
}

func keys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// condValue implements Value(X): X is bound to a constant, not an attribute
// (restricts a pattern to selection constraints, Section 4.2).
func condValue(b Binding, args []string) (bool, error) {
	if len(args) != 1 {
		return false, fmt.Errorf("rules: Value takes 1 argument, got %d", len(args))
	}
	v, ok := b[args[0]]
	if !ok {
		return false, fmt.Errorf("rules: Value(%s): variable unbound", args[0])
	}
	return v.Kind == BindValue, nil
}

// condIsAttr implements IsAttr(X): X is bound to an attribute (restricts a
// pattern to join constraints).
func condIsAttr(b Binding, args []string) (bool, error) {
	if len(args) != 1 {
		return false, fmt.Errorf("rules: IsAttr takes 1 argument, got %d", len(args))
	}
	v, ok := b[args[0]]
	if !ok {
		return false, fmt.Errorf("rules: IsAttr(%s): variable unbound", args[0])
	}
	return v.Kind == BindAttr, nil
}

// condOneOf implements OneOf(X, n1, n2, ...): the attribute, name, or
// operator bound to X is one of the listed names. It is the generic
// building block behind paper conditions like LnOrFn(A1), and restricts
// operator variables ("OneOf(OP, \"<\", \"<=\")"). Quoted list entries are
// unquoted before comparison.
func condOneOf(b Binding, args []string) (bool, error) {
	if len(args) < 2 {
		return false, fmt.Errorf("rules: OneOf takes a variable and at least one name")
	}
	v, ok := b[args[0]]
	if !ok {
		return false, fmt.Errorf("rules: OneOf(%s, ...): variable unbound", args[0])
	}
	var name string
	switch v.Kind {
	case BindAttr:
		name = v.Attr.Name
	case BindName:
		name = v.Name
	default:
		return false, nil
	}
	for _, n := range args[1:] {
		if len(n) >= 2 && n[0] == '"' && n[len(n)-1] == '"' {
			n = n[1 : len(n)-1]
		}
		if n == name {
			return true, nil
		}
	}
	return false, nil
}

// condDistinctIndex implements DistinctIndex(i, j): two index variables are
// bound to different view instances (for self-join rules like R8).
func condDistinctIndex(b Binding, args []string) (bool, error) {
	if len(args) != 2 {
		return false, fmt.Errorf("rules: DistinctIndex takes 2 arguments, got %d", len(args))
	}
	x, ok1 := b[args[0]]
	y, ok2 := b[args[1]]
	if !ok1 || !ok2 {
		return false, fmt.Errorf("rules: DistinctIndex: variable unbound")
	}
	if x.Kind != BindIndex || y.Kind != BindIndex {
		return false, nil
	}
	return x.Idx != y.Idx, nil
}
