package rules

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/qparse"
	"repro/internal/values"
)

// This file implements the textual rule DSL. A rule file is a sequence of
// rule blocks; '#' starts a line comment. Following the paper's notational
// convention, capitalized symbols are variables and lowercase identifiers
// are literal view/attribute names. Example (rule R6 of Figure 3):
//
//	rule R6 {
//	  match [pyear = Y], [pmonth = M];
//	  where Value(Y), Value(M);
//	  let D = MonthYearToDate(M, Y);
//	  emit exact [pdate during D];
//	}
//
// An emission may be a complex template: `emit [a = X] or [b = Y];`.

// ParseRules parses all rule blocks in src.
func ParseRules(src string) ([]*Rule, error) {
	p := &dslParser{toks: dslLex(src)}
	var out []*Rule
	for !p.at(dEOF) {
		r, err := p.rule()
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("rules: no rules in input")
	}
	return out, nil
}

// MustParseRules is ParseRules that panics on error; for fixtures.
func MustParseRules(src string) []*Rule {
	rs, err := ParseRules(src)
	if err != nil {
		panic(err)
	}
	return rs
}

type dKind int

const (
	dEOF dKind = iota
	dIdent
	dLBrace
	dRBrace
	dLParen
	dRParen
	dComma
	dSemi
	dEq
	dConstraint // raw bracketed constraint text
	dString
	dNumber
)

type dTok struct {
	kind dKind
	text string
}

func dslLex(src string) []dTok {
	var toks []dTok
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case unicode.IsSpace(rune(c)):
			i++
		case c == '{':
			toks = append(toks, dTok{dLBrace, "{"})
			i++
		case c == '}':
			toks = append(toks, dTok{dRBrace, "}"})
			i++
		case c == '(':
			toks = append(toks, dTok{dLParen, "("})
			i++
		case c == ')':
			toks = append(toks, dTok{dRParen, ")"})
			i++
		case c == ',':
			toks = append(toks, dTok{dComma, ","})
			i++
		case c == ';':
			toks = append(toks, dTok{dSemi, ";"})
			i++
		case c == '=':
			toks = append(toks, dTok{dEq, "="})
			i++
		case c == '[':
			depth, j, inStr := 1, i+1, false
			for ; j < len(src); j++ {
				ch := src[j]
				if inStr {
					if ch == '"' {
						inStr = false
					}
					continue
				}
				switch ch {
				case '"':
					inStr = true
				case '[':
					depth++
				case ']':
					depth--
				}
				if depth == 0 {
					break
				}
			}
			toks = append(toks, dTok{dConstraint, src[i+1 : min(j, len(src))]})
			i = j + 1
		case c == '"':
			j := i + 1
			for j < len(src) && src[j] != '"' {
				j++
			}
			toks = append(toks, dTok{dString, src[i:min(j+1, len(src))]})
			i = j + 1
		case c >= '0' && c <= '9' || c == '-':
			j := i + 1
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
				j++
			}
			toks = append(toks, dTok{dNumber, src[i:j]})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i + 1
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_' || src[j] == '-') {
				j++
			}
			toks = append(toks, dTok{dIdent, src[i:j]})
			i = j
		default:
			toks = append(toks, dTok{dIdent, string(c)})
			i++
		}
	}
	toks = append(toks, dTok{dEOF, ""})
	return toks
}

type dslParser struct {
	toks []dTok
	pos  int
}

func (p *dslParser) peek() dTok { return p.toks[p.pos] }

func (p *dslParser) next() dTok {
	t := p.toks[p.pos]
	if t.kind != dEOF {
		p.pos++
	}
	return t
}

func (p *dslParser) at(k dKind) bool { return p.peek().kind == k }

func (p *dslParser) expect(k dKind, what string) (dTok, error) {
	t := p.next()
	if t.kind != k {
		return t, fmt.Errorf("rules: expected %s, got %q", what, t.text)
	}
	return t, nil
}

func (p *dslParser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != dIdent || t.text != kw {
		return fmt.Errorf("rules: expected %q, got %q", kw, t.text)
	}
	return nil
}

// rule parses one rule block.
func (p *dslParser) rule() (*Rule, error) {
	if err := p.expectKeyword("rule"); err != nil {
		return nil, err
	}
	nameTok, err := p.expect(dIdent, "rule name")
	if err != nil {
		return nil, err
	}
	r := &Rule{Name: nameTok.text}
	if _, err := p.expect(dLBrace, "{"); err != nil {
		return nil, err
	}
	for !p.at(dRBrace) {
		kw, err := p.expect(dIdent, "clause keyword")
		if err != nil {
			return nil, fmt.Errorf("rules: in rule %s: %w", r.Name, err)
		}
		switch kw.text {
		case "match":
			if err := p.matchClause(r); err != nil {
				return nil, fmt.Errorf("rules: in rule %s: %w", r.Name, err)
			}
		case "where":
			if err := p.whereClause(r); err != nil {
				return nil, fmt.Errorf("rules: in rule %s: %w", r.Name, err)
			}
		case "let":
			if err := p.letClause(r); err != nil {
				return nil, fmt.Errorf("rules: in rule %s: %w", r.Name, err)
			}
		case "emit":
			if err := p.emitClause(r); err != nil {
				return nil, fmt.Errorf("rules: in rule %s: %w", r.Name, err)
			}
		default:
			return nil, fmt.Errorf("rules: in rule %s: unknown clause %q", r.Name, kw.text)
		}
	}
	p.next() // consume }
	if r.Emit == nil {
		return nil, fmt.Errorf("rules: rule %s has no emit clause", r.Name)
	}
	if len(r.Patterns) == 0 {
		return nil, fmt.Errorf("rules: rule %s has no match clause", r.Name)
	}
	return r, nil
}

func (p *dslParser) matchClause(r *Rule) error {
	for {
		t, err := p.expect(dConstraint, "constraint pattern")
		if err != nil {
			return err
		}
		pat, err := parseConstraintPat(t.text)
		if err != nil {
			return err
		}
		r.Patterns = append(r.Patterns, pat)
		if p.at(dComma) {
			p.next()
			continue
		}
		break
	}
	_, err := p.expect(dSemi, ";")
	return err
}

func (p *dslParser) whereClause(r *Rule) error {
	for {
		name, err := p.expect(dIdent, "condition name")
		if err != nil {
			return err
		}
		args, err := p.argList()
		if err != nil {
			return err
		}
		r.Conds = append(r.Conds, CondRef{Name: name.text, Args: args})
		if p.at(dComma) {
			p.next()
			continue
		}
		break
	}
	_, err := p.expect(dSemi, ";")
	return err
}

func (p *dslParser) letClause(r *Rule) error {
	v, err := p.expect(dIdent, "let variable")
	if err != nil {
		return err
	}
	if _, err := p.expect(dEq, "="); err != nil {
		return err
	}
	fn, err := p.expect(dIdent, "function name")
	if err != nil {
		return err
	}
	args, err := p.argList()
	if err != nil {
		return err
	}
	if _, err := p.expect(dSemi, ";"); err != nil {
		return err
	}
	r.Lets = append(r.Lets, LetClause{Var: v.text, Func: fn.text, Args: args})
	return nil
}

func (p *dslParser) argList() ([]string, error) {
	if _, err := p.expect(dLParen, "("); err != nil {
		return nil, err
	}
	var args []string
	for !p.at(dRParen) {
		t := p.next()
		switch t.kind {
		case dIdent, dString, dNumber:
			args = append(args, t.text)
		default:
			return nil, fmt.Errorf("rules: unexpected %q in argument list", t.text)
		}
		if p.at(dComma) {
			p.next()
		}
	}
	p.next() // consume )
	return args, nil
}

func (p *dslParser) emitClause(r *Rule) error {
	if p.at(dIdent) && p.peek().text == "exact" {
		p.next()
		r.Exact = true
	}
	e, err := p.emitOr()
	if err != nil {
		return err
	}
	if _, err := p.expect(dSemi, ";"); err != nil {
		return err
	}
	r.Emit = e
	return nil
}

func (p *dslParser) emitOr() (*EmitNode, error) {
	left, err := p.emitAnd()
	if err != nil {
		return nil, err
	}
	kids := []*EmitNode{left}
	for p.at(dIdent) && p.peek().text == "or" {
		p.next()
		k, err := p.emitAnd()
		if err != nil {
			return nil, err
		}
		kids = append(kids, k)
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return EmitOr(kids...), nil
}

func (p *dslParser) emitAnd() (*EmitNode, error) {
	left, err := p.emitUnary()
	if err != nil {
		return nil, err
	}
	kids := []*EmitNode{left}
	for p.at(dIdent) && p.peek().text == "and" {
		p.next()
		k, err := p.emitUnary()
		if err != nil {
			return nil, err
		}
		kids = append(kids, k)
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return EmitAnd(kids...), nil
}

func (p *dslParser) emitUnary() (*EmitNode, error) {
	switch t := p.peek(); {
	case t.kind == dLParen:
		p.next()
		e, err := p.emitOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(dRParen, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == dIdent && (t.text == "TRUE" || t.text == "true"):
		p.next()
		return EmitTrue(), nil
	case t.kind == dConstraint:
		p.next()
		pat, err := parseConstraintPat(t.text)
		if err != nil {
			return nil, err
		}
		return EmitLeaf(pat), nil
	default:
		return nil, fmt.Errorf("rules: expected emission constraint, got %q", t.text)
	}
}

// parseConstraintPat parses a bracketed pattern/template body such as
// "fac[i].A = fac[j].A" or "ti contains P1". An operator variable —
// a capitalized identifier in operator position, e.g. "length OP L" —
// makes the pattern match any operator and binds its name.
func parseConstraintPat(body string) (ConstraintPat, error) {
	lhs, op, rhs, err := qparse.SplitConstraint(body)
	if err != nil {
		// Operator-variable form: "lhs OPVAR rhs".
		fields := strings.Fields(strings.TrimSpace(body))
		if len(fields) >= 3 && isVarName(fields[1]) && !strings.ContainsAny(fields[1], ".([") {
			attr, aerr := parseAttrPat(fields[0])
			if aerr != nil {
				return ConstraintPat{}, aerr
			}
			term, terr := parseTerm(strings.Join(fields[2:], " "), "")
			if terr != nil {
				return ConstraintPat{}, terr
			}
			return ConstraintPat{Attr: attr, OpVar: fields[1], RHS: term}, nil
		}
		return ConstraintPat{}, err
	}
	attr, err := parseAttrPat(lhs)
	if err != nil {
		return ConstraintPat{}, err
	}
	term, err := parseTerm(rhs, op)
	if err != nil {
		return ConstraintPat{}, err
	}
	return ConstraintPat{Attr: attr, Op: op, RHS: term}, nil
}

// isVarName reports the paper's convention: capitalized symbols are
// variables.
func isVarName(s string) bool {
	return s != "" && unicode.IsUpper(rune(s[0]))
}

// parseAttrPat parses an attribute pattern: a dotted path whose components
// are literals (lowercase) or variables (capitalized), with an optional
// [index-variable] on the first component.
func parseAttrPat(s string) (AttrPat, error) {
	parts := strings.Split(s, ".")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
		if parts[i] == "" {
			return AttrPat{}, fmt.Errorf("rules: empty component in attribute pattern %q", s)
		}
	}
	var pat AttrPat
	head := parts[0]
	if i := strings.Index(head, "["); i >= 0 {
		if !strings.HasSuffix(head, "]") {
			return AttrPat{}, fmt.Errorf("rules: malformed index in pattern %q", s)
		}
		pat.IndexVar = head[i+1 : len(head)-1]
		head = head[:i]
		if pat.IndexVar == "" {
			return AttrPat{}, fmt.Errorf("rules: empty index variable in pattern %q", s)
		}
	}
	switch len(parts) {
	case 1:
		if pat.IndexVar != "" {
			return AttrPat{}, fmt.Errorf("rules: index without attribute in pattern %q", s)
		}
		if isVarName(head) {
			return AttrPat{WholeVar: head}, nil
		}
		pat.Name = head
	case 2:
		if isVarName(head) {
			pat.ViewVar = head
		} else {
			pat.View = head
		}
		if isVarName(parts[1]) {
			pat.NameVar = parts[1]
		} else {
			pat.Name = parts[1]
		}
	case 3:
		if isVarName(head) {
			pat.ViewVar = head
		} else {
			pat.View = head
		}
		if isVarName(parts[1]) {
			return AttrPat{}, fmt.Errorf("rules: relation component must be literal in pattern %q", s)
		}
		pat.Rel = parts[1]
		if isVarName(parts[2]) {
			pat.NameVar = parts[2]
		} else {
			pat.Name = parts[2]
		}
	default:
		return AttrPat{}, fmt.Errorf("rules: too many components in attribute pattern %q", s)
	}
	return pat, nil
}

// parseTerm parses a right-hand-side term: a variable, a literal value, or
// an attribute pattern.
func parseTerm(s, op string) (Term, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "":
		return Term{}, fmt.Errorf("rules: empty term")
	case strings.HasPrefix(s, "\""):
		us, err := strconv.Unquote(s)
		if err != nil {
			return Term{}, fmt.Errorf("rules: bad string literal %s: %v", s, err)
		}
		return LitTerm(values.String(us)), nil
	case isVarName(s) && !strings.ContainsAny(s, ".(["):
		return VarTerm(s), nil
	case strings.Contains(s, ".") || strings.Contains(s, "["):
		if looksLikePatternValue(s) {
			break
		}
		ap, err := parseAttrPat(s)
		if err == nil {
			return AttrTerm(ap), nil
		}
	}
	v, err := qparse.ParseValue(s, op)
	if err != nil {
		return Term{}, err
	}
	return LitTerm(v), nil
}

func looksLikePatternValue(s string) bool {
	return strings.Contains(s, "(near)") || strings.Contains(s, "(^)") || strings.Contains(s, "(v)")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// FormatSpec renders a whole specification back to DSL text.
func FormatSpec(s *Spec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# mapping specification %s (target %s)\n", s.Name, s.Target.Name)
	for _, r := range s.Rules {
		b.WriteString(r.String())
		b.WriteString("\n\n")
	}
	return b.String()
}
