package rules

import (
	"strings"
	"testing"

	"repro/internal/qparse"
	"repro/internal/qtree"
	"repro/internal/values"
)

func parseConstraints(t *testing.T, src string) []*qtree.Constraint {
	t.Helper()
	return qparse.MustParse(src).SimpleConjuncts()
}

// testSpec builds a small spec: a pair rule (ln+fn → author), a singleton
// rule (ln → author), and a simple attr rename rule.
func testSpec(t *testing.T) *Spec {
	t.Helper()
	reg := NewRegistry()
	reg.RegisterAction("Combine", func(b Binding, args []string) (BoundVal, error) {
		l, err := b.Value(args[0])
		if err != nil {
			return BoundVal{}, err
		}
		f, err := b.Value(args[1])
		if err != nil {
			return BoundVal{}, err
		}
		ls, _ := l.(values.String)
		fs, _ := f.(values.String)
		return ValueOf(values.String(values.LnFnToName(ls.Raw(), fs.Raw()))), nil
	})
	rs := MustParseRules(`
# pair rule
rule P {
  match [ln = L], [fn = F];
  where Value(L), Value(F);
  let A = Combine(L, F);
  emit exact [author = A];
}
rule S {
  match [ln = L];
  where Value(L);
  emit exact [author = L];
}
rule T {
  match [id = N];
  where Value(N);
  emit exact [isbn = N];
}
`)
	target := NewTarget("test",
		Capability{Attr: "author", Op: qtree.OpEq},
		Capability{Attr: "isbn", Op: qtree.OpEq},
	)
	return MustSpec("K_test", target, reg, rs...)
}

func TestDSLParsesClauses(t *testing.T) {
	s := testSpec(t)
	if len(s.Rules) != 3 {
		t.Fatalf("parsed %d rules, want 3", len(s.Rules))
	}
	p := s.RuleByName("P")
	if p == nil || len(p.Patterns) != 2 || len(p.Conds) != 2 || len(p.Lets) != 1 || !p.Exact {
		t.Fatalf("rule P misparsed: %+v", p)
	}
	if p.Emit.Kind != qtree.KindLeaf {
		t.Errorf("rule P emission kind = %v", p.Emit.Kind)
	}
}

func TestDSLVariableConvention(t *testing.T) {
	rs := MustParseRules(`
rule V {
  match [V1.ln = V2.ln];
  emit exact [V1.ln = V2.ln];
}
`)
	pat := rs[0].Patterns[0]
	if pat.Attr.ViewVar != "V1" || pat.Attr.Name != "ln" {
		t.Errorf("lhs pattern = %+v", pat.Attr)
	}
	if pat.RHS.Attr == nil || pat.RHS.Attr.ViewVar != "V2" {
		t.Errorf("rhs pattern = %+v", pat.RHS)
	}
}

func TestDSLIndexVariables(t *testing.T) {
	rs := MustParseRules(`
rule I {
  match [fac[i].A = fac[j].A];
  emit exact [fac[i].prof.A = fac[j].prof.A];
}
`)
	pat := rs[0].Patterns[0]
	if pat.Attr.View != "fac" || pat.Attr.IndexVar != "i" || pat.Attr.NameVar != "A" {
		t.Errorf("pattern attr = %+v", pat.Attr)
	}
	em := rs[0].Emit.Pat
	if em.Attr.Rel != "prof" || em.Attr.IndexVar != "i" {
		t.Errorf("emission attr = %+v", em.Attr)
	}
}

func TestDSLErrors(t *testing.T) {
	bad := []string{
		``,                                      // no rules
		`rule X { }`,                            // no emit
		`rule X { match [a = V]; }`,             // still no emit
		`rule X { emit [a = V]; }`,              // V undefined (no pattern)
		`bogus Y { match [a = V]; emit TRUE; }`, // bad keyword
		`rule X { match [a = V]; emit [b = W]; }`, // W undefined
	}
	for _, src := range bad {
		rs, err := ParseRules(src)
		if err != nil {
			continue
		}
		// Some errors surface at validation time.
		reg := NewRegistry()
		ok := true
		for _, r := range rs {
			if err := r.Validate(reg); err != nil {
				ok = false
				break
			}
		}
		if ok {
			t.Errorf("rule text %q accepted, want error", src)
		}
	}
}

func TestMatchingPairAndSuppression(t *testing.T) {
	s := testSpec(t)
	cs := parseConstraints(t, `[ln = "Clancy"] and [fn = "Tom"] and [id = "X1"]`)
	ms, err := s.Matchings(cs)
	if err != nil {
		t.Fatal(err)
	}
	// Expect: P{ln,fn}, S{ln}, T{id}.
	if len(ms) != 3 {
		for _, m := range ms {
			t.Logf("%s", m)
		}
		t.Fatalf("got %d matchings, want 3", len(ms))
	}
	kept := SuppressSubmatchings(ms)
	if len(kept) != 2 {
		t.Fatalf("after suppression %d matchings, want 2", len(kept))
	}
	for _, m := range kept {
		if m.Rule.Name == "S" {
			t.Error("submatching {ln} of S not suppressed")
		}
	}
}

func TestMatchingEmission(t *testing.T) {
	s := testSpec(t)
	ms, err := s.Matchings(parseConstraints(t, `[ln = "Clancy"] and [fn = "Tom"]`))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if m.Rule.Name != "P" {
			continue
		}
		want := qparse.MustParse(`[author = "Clancy, Tom"]`)
		if !m.Emission.EqualCanonical(want) {
			t.Errorf("P emission = %s, want %s", m.Emission, want)
		}
	}
}

func TestMatchingMultipleBindings(t *testing.T) {
	// Two ln constraints: the pair rule P fires once per (ln, fn) combo.
	s := testSpec(t)
	ms, err := s.Matchings(parseConstraints(t, `[ln = "A"] and [ln = "B"] and [fn = "C"]`))
	if err != nil {
		t.Fatal(err)
	}
	var pCount, sCount int
	for _, m := range ms {
		switch m.Rule.Name {
		case "P":
			pCount++
		case "S":
			sCount++
		}
	}
	if pCount != 2 || sCount != 2 {
		t.Errorf("P fired %d times (want 2), S fired %d times (want 2)", pCount, sCount)
	}
}

func TestConditionRestrictsJoin(t *testing.T) {
	// Value(L) must prevent rule S from matching a join constraint.
	s := testSpec(t)
	join := qtree.Join(qtree.A("ln"), qtree.OpEq, qtree.A("other"))
	ms, err := s.Matchings([]*qtree.Constraint{join})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 0 {
		t.Errorf("join constraint matched %d rules, want 0 (Value cond)", len(ms))
	}
}

func TestFailedLetDropsMatching(t *testing.T) {
	reg := NewRegistry()
	reg.RegisterAction("AlwaysFails", func(b Binding, args []string) (BoundVal, error) {
		return BoundVal{}, errTest
	})
	rs := MustParseRules(`
rule F {
  match [a = V];
  let X = AlwaysFails(V);
  emit [b = X];
}
`)
	s := MustSpec("K", NewTarget("t"), reg, rs...)
	ms, err := s.Matchings(parseConstraints(t, `[a = 1]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 0 {
		t.Errorf("matching with failing let survived: %v", ms)
	}
}

var errTest = errTestType{}

type errTestType struct{}

func (errTestType) Error() string { return "test failure" }

func TestBindingUnification(t *testing.T) {
	b := make(Binding)
	if !b.Bind("X", ValueOf(values.Int(1))) {
		t.Fatal("first bind failed")
	}
	if !b.Bind("X", ValueOf(values.Int(1))) {
		t.Error("re-bind with equal value failed")
	}
	if b.Bind("X", ValueOf(values.Int(2))) {
		t.Error("re-bind with different value succeeded")
	}
}

// TestSharedVariableAcrossPatterns checks unification across patterns: the
// rule matches only constraints sharing the same value.
func TestSharedVariableAcrossPatterns(t *testing.T) {
	rs := MustParseRules(`
rule EQ {
  match [a = V], [b = V];
  where Value(V);
  emit exact [ab = V];
}
`)
	s := MustSpec("K", NewTarget("t", Capability{Attr: "ab", Op: qtree.OpEq}), NewRegistry(), rs...)
	ms, err := s.Matchings(parseConstraints(t, `[a = 1] and [b = 1]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("equal values: %d matchings, want 1", len(ms))
	}
	ms, err = s.Matchings(parseConstraints(t, `[a = 1] and [b = 2]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 0 {
		t.Fatalf("unequal values: %d matchings, want 0", len(ms))
	}
}

func TestCapabilityChecks(t *testing.T) {
	target := NewTarget("t",
		Capability{Attr: "author", Op: qtree.OpEq, ValueKinds: []string{"string"}},
		Capability{Attr: "*", Op: qtree.OpContains},
		Capability{Attr: "name", Op: qtree.OpEq, Join: true, RAttr: "au"},
	)
	ok := []*qtree.Constraint{
		qtree.Sel(qtree.A("author"), qtree.OpEq, values.String("x")),
		qtree.Sel(qtree.A("anything"), qtree.OpContains, values.Word("w")),
		qtree.Join(qtree.A("name"), qtree.OpEq, qtree.A("au")),
	}
	for _, c := range ok {
		if !target.Supports(c) {
			t.Errorf("%s unsupported, want supported", c)
		}
	}
	bad := []*qtree.Constraint{
		qtree.Sel(qtree.A("author"), qtree.OpEq, values.Int(5)), // wrong kind
		qtree.Sel(qtree.A("author"), qtree.OpStarts, values.String("x")),
		qtree.Join(qtree.A("author"), qtree.OpEq, qtree.A("au")),
	}
	for _, c := range bad {
		if target.Supports(c) {
			t.Errorf("%s supported, want unsupported", c)
		}
	}
	if err := target.Expressible(qparse.MustParse(`[author = "x"] and [other contains w]`)); err != nil {
		t.Errorf("Expressible: %v", err)
	}
	if err := target.Expressible(qparse.MustParse(`[other = "x"]`)); err == nil {
		t.Error("inexpressible query accepted")
	}
}

func TestBuiltinConds(t *testing.T) {
	b := Binding{
		"V": ValueOf(values.Int(1)),
		"A": AttrOf(qtree.A("ln")),
		"N": NameOf("fn"),
		"I": IndexOf(1),
		"J": IndexOf(2),
	}
	reg := NewRegistry()
	check := func(name string, args []string, want bool) {
		t.Helper()
		fn, err := reg.Cond(name)
		if err != nil {
			t.Fatal(err)
		}
		got, err := fn(b, args)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got != want {
			t.Errorf("%s(%v) = %v, want %v", name, args, got, want)
		}
	}
	check("Value", []string{"V"}, true)
	check("Value", []string{"A"}, false)
	check("IsAttr", []string{"A"}, true)
	check("IsAttr", []string{"V"}, false)
	check("OneOf", []string{"A", "ln", "fn"}, true)
	check("OneOf", []string{"A", "ti"}, false)
	check("OneOf", []string{"N", "fn"}, true)
	check("DistinctIndex", []string{"I", "J"}, true)
	check("DistinctIndex", []string{"I", "I"}, false)
}

func TestSpecValidation(t *testing.T) {
	reg := NewRegistry()
	r := &Rule{
		Name:     "X",
		Patterns: []ConstraintPat{{Attr: AttrPat{Name: "a"}, Op: qtree.OpEq, RHS: VarTerm("V")}},
		Conds:    []CondRef{{Name: "NoSuchCond", Args: []string{"V"}}},
		Emit:     EmitLeaf(ConstraintPat{Attr: AttrPat{Name: "b"}, Op: qtree.OpEq, RHS: VarTerm("V")}),
	}
	if _, err := NewSpec("K", NewTarget("t"), reg, r); err == nil {
		t.Error("unknown condition accepted")
	}
	dup := &Rule{Name: "D", Patterns: r.Patterns, Emit: r.Emit}
	if _, err := NewSpec("K", NewTarget("t"), reg, dup, dup); err == nil {
		t.Error("duplicate rule names accepted")
	}
}

func TestFormatSpecRoundTrips(t *testing.T) {
	s := testSpec(t)
	text := FormatSpec(s)
	if !strings.Contains(text, "rule P") || !strings.Contains(text, "emit exact") {
		t.Errorf("FormatSpec output incomplete:\n%s", text)
	}
	// Reparse the formatted rules; they must validate against the registry.
	rs, err := ParseRules(text)
	if err != nil {
		t.Fatalf("reparsing formatted spec: %v", err)
	}
	if len(rs) != len(s.Rules) {
		t.Errorf("reparsed %d rules, want %d", len(rs), len(s.Rules))
	}
}

// TestOperatorVariables: a pattern with an operator variable matches the
// whole comparison family, binds the operator, and re-emits it.
func TestOperatorVariables(t *testing.T) {
	rs := MustParseRules(`
rule Fam {
  match [len OP V];
  where OneOf(OP, "=", "<", "<="), Value(V);
  emit exact [len-cm OP V];
}
`)
	if rs[0].Patterns[0].OpVar != "OP" {
		t.Fatalf("pattern = %+v, want operator variable OP", rs[0].Patterns[0])
	}
	target := NewTarget("t",
		Capability{Attr: "len-cm", Op: qtree.OpEq},
		Capability{Attr: "len-cm", Op: qtree.OpLt},
		Capability{Attr: "len-cm", Op: qtree.OpLe},
	)
	s := MustSpec("K", target, NewRegistry(), rs...)

	for _, op := range []string{"=", "<", "<="} {
		cs := parseConstraints(t, `[len `+op+` 5]`)
		ms, err := s.Matchings(cs)
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) != 1 {
			t.Fatalf("op %s: %d matchings, want 1", op, len(ms))
		}
		if got := ms[0].Emission.C.Op; got != op {
			t.Errorf("op %s: emission op = %s", op, got)
		}
	}
	// Excluded operator: no matching.
	ms, err := s.Matchings(parseConstraints(t, `[len > 5]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 0 {
		t.Errorf("excluded operator matched: %v", ms)
	}

	// Round trip through FormatSpec.
	back, err := ParseRules(FormatSpec(s))
	if err != nil {
		t.Fatalf("op-var spec does not reparse: %v", err)
	}
	if back[0].Patterns[0].OpVar != "OP" {
		t.Error("operator variable lost in round trip")
	}
}

// TestOperatorVariableUnification: the same operator variable across two
// patterns requires the same operator.
func TestOperatorVariableUnification(t *testing.T) {
	rs := MustParseRules(`
rule Pair {
  match [a OP V], [b OP W];
  where Value(V), Value(W);
  emit exact [ab OP V];
}
`)
	s := MustSpec("K", NewTarget("t", Capability{Attr: "ab", Op: "*"}), NewRegistry(), rs...)
	ms, err := s.Matchings(parseConstraints(t, `[a < 1] and [b < 2]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("same-op pair: %d matchings, want 1", len(ms))
	}
	ms, err = s.Matchings(parseConstraints(t, `[a < 1] and [b > 2]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 0 {
		t.Fatalf("mixed-op pair matched: %v", ms)
	}
}
