package rules

import (
	"repro/internal/qtree"
)

// CompiledSpec is a precompiled dispatch structure over a Spec's rules: the
// Rete-style index that lets Matchings visit only rules whose head patterns
// can possibly match the query's constraints, instead of probing every rule.
//
// Compilation extracts from each head pattern the requirements that
// quickReject checks per constraint — literal operator, literal view /
// relation / name components of the left attribute, and whether the
// right-hand side forces a selection or a join. Each distinct requirement
// combination becomes a feature bit; a rule's mask is the set of features its
// patterns demand. At query time one pass over the constraint orientations
// marks every feature some orientation satisfies, and a rule is probed only
// when its mask is a subset of the satisfied set. Because matchRule returns
// no matchings as soon as any pattern has an empty candidate list, skipping a
// rule with an unsatisfied feature never loses a matching.
//
// A first-pattern attribute-name index narrows the scan further: rules whose
// first pattern names a literal attribute are reached only through the names
// appearing in the query.
//
// The engine is immutable after construction and safe for concurrent use.
type CompiledSpec struct {
	spec  *Spec
	feats []feature
	rules []compiledRule
	words int     // len of each rule mask, ⌈len(feats)/64⌉
	bits  [][]int // per-rule feature indices in pattern order (TranslationPlan input)

	// byFirstName maps a first-pattern literal attribute name to the rules
	// (by index) requiring it; alwaysProbe lists rules whose first pattern
	// binds the name, which every query must consider.
	byFirstName map[string][]int
	alwaysProbe []int
}

type compiledRule struct {
	rule *Rule
	mask []uint64
}

// feature is one requirement combination a head pattern imposes on the
// constraint it matches. Empty literal components are real requirements
// (e.g. View == ""), so each carries an explicit has flag rather than
// treating "" as a wildcard.
type feature struct {
	hasOp   bool
	op      string
	hasView bool
	view    string
	hasRel  bool
	rel     string
	hasName bool
	name    string
	kind    int8 // 0 = either, 1 = selection only, 2 = join only
}

// patternFeature mirrors quickReject: it records exactly the checks that
// function applies, so quickReject(p, v) == false implies v satisfies the
// feature. Keeping the two in lockstep is what makes index rejection sound.
func patternFeature(p ConstraintPat) feature {
	var f feature
	if p.OpVar == "" {
		f.hasOp, f.op = true, p.Op
	}
	a := p.Attr
	if a.WholeVar == "" {
		if a.ViewVar == "" {
			f.hasView, f.view = true, a.View
		}
		if a.NameVar == "" {
			f.hasName, f.name = true, a.Name
		}
		if a.Rel != "" {
			f.hasRel, f.rel = true, a.Rel
		}
	}
	switch {
	case p.RHS.Attr != nil:
		f.kind = 2
	case p.RHS.Lit != nil:
		f.kind = 1
	}
	return f
}

// satisfiedBy reports whether constraint orientation v meets the
// requirement.
func (f feature) satisfiedBy(v *qtree.Constraint) bool {
	if f.hasOp && f.op != v.Op {
		return false
	}
	if f.hasView && f.view != v.Attr.View {
		return false
	}
	if f.hasRel && f.rel != v.Attr.Rel {
		return false
	}
	if f.hasName && f.name != v.Attr.Name {
		return false
	}
	switch f.kind {
	case 1:
		return !v.IsJoin()
	case 2:
		return v.IsJoin()
	}
	return true
}

// compile builds the dispatch structure for s.
func compile(s *Spec) *CompiledSpec {
	c := &CompiledSpec{spec: s, byFirstName: make(map[string][]int)}
	featIndex := make(map[feature]int)
	ruleBits := make([][]int, len(s.Rules))
	for ri, r := range s.Rules {
		for _, p := range r.Patterns {
			f := patternFeature(p)
			fi, ok := featIndex[f]
			if !ok {
				fi = len(c.feats)
				featIndex[f] = fi
				c.feats = append(c.feats, f)
			}
			ruleBits[ri] = append(ruleBits[ri], fi)
		}
	}
	c.words = (len(c.feats) + 63) / 64
	c.bits = ruleBits
	c.rules = make([]compiledRule, len(s.Rules))
	for ri, r := range s.Rules {
		cr := compiledRule{rule: r, mask: make([]uint64, c.words)}
		for _, fi := range ruleBits[ri] {
			cr.mask[fi>>6] |= 1 << (fi & 63)
		}
		c.rules[ri] = cr
		if len(r.Patterns) > 0 {
			a := r.Patterns[0].Attr
			if a.WholeVar == "" && a.NameVar == "" {
				c.byFirstName[a.Name] = append(c.byFirstName[a.Name], ri)
				continue
			}
		}
		c.alwaysProbe = append(c.alwaysProbe, ri)
	}
	return c
}

// Spec returns the specification the engine was compiled from.
func (c *CompiledSpec) Spec() *Spec { return c.spec }

// visit calls fn for every rule the index cannot reject, in specification
// order, stopping at the first error.
func (c *CompiledSpec) visit(cs []*qtree.Constraint, fn func(*Rule) error) error {
	orients := make([]*qtree.Constraint, 0, 2*len(cs))
	for _, q := range cs {
		orients = append(orients, orientations(q)...)
	}

	qmask := make([]uint64, c.words)
	for fi, f := range c.feats {
		for _, v := range orients {
			if f.satisfiedBy(v) {
				qmask[fi>>6] |= 1 << (fi & 63)
				break
			}
		}
	}

	cand := make([]bool, len(c.rules))
	mark := func(ri int) {
		for w, bits := range c.rules[ri].mask {
			if bits&^qmask[w] != 0 {
				return
			}
		}
		cand[ri] = true
	}
	for _, ri := range c.alwaysProbe {
		mark(ri)
	}
	seen := make(map[string]bool, len(orients))
	for _, v := range orients {
		n := v.Attr.Name
		if seen[n] {
			continue
		}
		seen[n] = true
		for _, ri := range c.byFirstName[n] {
			mark(ri)
		}
	}

	for ri := range c.rules {
		if !cand[ri] {
			continue
		}
		if err := fn(c.rules[ri].rule); err != nil {
			return err
		}
	}
	return nil
}

// CandidateRules returns the rules the index cannot reject for the given
// constraints, in specification order. The tracing layer iterates these so
// traced and untraced translations probe the same rules.
func (c *CompiledSpec) CandidateRules(cs []*qtree.Constraint) []*Rule {
	var out []*Rule
	c.visit(cs, func(r *Rule) error {
		out = append(out, r)
		return nil
	})
	return out
}

// Matchings computes exactly Spec.Matchings — the same matchings in the same
// order — visiting only candidate rules.
func (c *CompiledSpec) Matchings(cs []*qtree.Constraint) ([]*Matching, error) {
	ms, _, err := c.MatchingsCounted(cs)
	return ms, err
}

// MatchingsCounted is Matchings plus the number of rules actually probed,
// for cost accounting: the uncompiled path always probes len(Spec.Rules).
func (c *CompiledSpec) MatchingsCounted(cs []*qtree.Constraint) ([]*Matching, int, error) {
	var out []*Matching
	probed := 0
	err := c.visit(cs, func(r *Rule) error {
		probed++
		ms, err := matchRule(r, cs, c.spec.Reg)
		if err != nil {
			return err
		}
		out = append(out, ms...)
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return out, probed, nil
}
