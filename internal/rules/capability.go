package rules

import (
	"fmt"

	"repro/internal/qtree"
)

// Capability describes one class of constraint a target supports: an
// attribute name (or "*" for any), an operator, and optionally the value
// kinds accepted. Join support is expressed with Join=true and the two
// attribute names (RAttr "*" for any).
type Capability struct {
	Attr       string
	Op         string
	ValueKinds []string // empty = any kind
	Join       bool
	RAttr      string
}

// Target models a target context's native vocabulary (Section 2's
// "expressible in T" requirement): the set of constraints the source
// understands. Definition 1 condition (1) is checked against it.
type Target struct {
	Name string
	Caps []Capability
}

// NewTarget constructs a target context.
func NewTarget(name string, caps ...Capability) *Target {
	return &Target{Name: name, Caps: caps}
}

// Supports reports whether the target can evaluate constraint c natively.
func (t *Target) Supports(c *qtree.Constraint) bool {
	for _, cap := range t.Caps {
		if cap.Op != c.Op {
			continue
		}
		if cap.Attr != "*" && cap.Attr != c.Attr.Name {
			continue
		}
		if c.IsJoin() {
			if !cap.Join {
				continue
			}
			if cap.RAttr != "*" && cap.RAttr != c.RAttr.Name {
				continue
			}
			return true
		}
		if cap.Join {
			continue
		}
		if len(cap.ValueKinds) > 0 {
			ok := false
			for _, k := range cap.ValueKinds {
				if c.Val != nil && c.Val.Kind() == k {
					ok = true
					break
				}
			}
			if !ok {
				continue
			}
		}
		return true
	}
	return false
}

// Expressible checks that every constraint of q is supported by the target
// (Definition 1, condition 1). True is always expressible.
func (t *Target) Expressible(q *qtree.Node) error {
	for _, c := range q.Constraints() {
		if !t.Supports(c) {
			return fmt.Errorf("rules: constraint %s not expressible in target %s", c, t.Name)
		}
	}
	return nil
}
