package rules_test

// Differential tests for the spec algebra: composed chains against the
// sequential two-hop translation on random workloads, associativity of
// composition, containment soundness probes, and the Compiled()/Plan
// interaction satellites. The heavyweight 40-seed × option grid lives in
// internal/conformance; these are the rules-level checks.

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/qtree"
	"repro/internal/rules"
	"repro/internal/workload"
)

func chainScenario(t *testing.T, seed int64) (*workload.Scenario, *workload.ChainScenario) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s := workload.New(workload.Config{
		Indep:        1 + rng.Intn(3),
		Pairs:        1 + rng.Intn(2),
		InexactPairs: rng.Intn(2),
		Triples:      rng.Intn(2),
	})
	ch := workload.NewChain(s, rng)
	return s, ch
}

func render(r *engine.Relation) string {
	lines := make([]string, 0, len(r.Tuples))
	for _, tu := range r.Tuples {
		lines = append(lines, tu.String())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func renderSet(r *engine.Relation) map[string]bool {
	out := make(map[string]bool, len(r.Tuples))
	for _, tu := range r.Tuples {
		out[tu.String()] = true
	}
	return out
}

func subsetOf(sub, super map[string]bool) bool {
	for k := range sub {
		if !super[k] {
			return false
		}
	}
	return true
}

func translate(t *testing.T, spec *rules.Spec, q *qtree.Node) *qtree.Node {
	t.Helper()
	out, err := core.NewTranslator(spec).Translate(q, core.AlgTDQM)
	if err != nil {
		t.Fatalf("translate with %s: %v", spec.Name, err)
	}
	return out
}

func mustSelect(t *testing.T, r *engine.Relation, q *qtree.Node, ev *engine.Evaluator) *engine.Relation {
	t.Helper()
	out, err := r.Select(q, ev)
	if err != nil {
		t.Fatalf("select: %v", err)
	}
	return out
}

// TestComposeChainDifferential checks the core compose contract on random
// chains: the composed one-hop translation subsumes the original query, is
// weaker than (a superset of) the sequential two-hop translation, and after
// filtering with the original query yields byte-identical answers equal to
// ground truth.
func TestComposeChainDifferential(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		s, ch := chainScenario(t, seed)
		composed, info, err := rules.ComposeDetail(s.Spec, ch.Spec2)
		if err != nil {
			t.Fatalf("seed %d: compose: %v", seed, err)
		}
		if info.RulesComposed != len(s.Spec.Rules) {
			t.Fatalf("seed %d: composed %d of %d rules", seed, info.RulesComposed, len(s.Spec.Rules))
		}

		rng := rand.New(rand.NewSource(seed * 7919))
		rel := ch.ExtendRelation(s.Relation("universe", rng, 40))

		for i := 0; i < 8; i++ {
			q := s.RandomQuery(rng, workload.DefaultQueryConfig())
			truth := mustSelect(t, rel, q, s.Eval)

			seq := translate(t, ch.Spec2, translate(t, s.Spec, q))
			comp := translate(t, composed, q)

			selSeq := mustSelect(t, rel, seq, s.Eval)
			selComp := mustSelect(t, rel, comp, s.Eval)

			truthSet, seqSet, compSet := renderSet(truth), renderSet(selSeq), renderSet(selComp)
			if !subsetOf(truthSet, seqSet) {
				t.Fatalf("seed %d query %s: sequential translation lost answers", seed, q)
			}
			if !subsetOf(truthSet, compSet) {
				t.Fatalf("seed %d query %s: composed translation lost answers", seed, q)
			}
			if !subsetOf(seqSet, compSet) {
				t.Fatalf("seed %d query %s: composed is not a superset of sequential", seed, q)
			}

			fSeq := render(mustSelect(t, selSeq, q, s.Eval))
			fComp := render(mustSelect(t, selComp, q, s.Eval))
			if fSeq != fComp {
				t.Fatalf("seed %d query %s: filtered answers diverge\nseq:\n%s\ncomposed:\n%s", seed, q, fSeq, fComp)
			}
			if fSeq != render(truth) {
				t.Fatalf("seed %d query %s: filtered answers != truth", seed, q)
			}
		}
	}
}

// TestComposeAssociativity checks Compose(Compose(a,b),c) against
// Compose(a,Compose(b,c)) on 3-hop chains: both orders must produce
// subsuming translations with byte-identical filtered answers.
func TestComposeAssociativity(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		s, ch2 := chainScenario(t, seed)
		rng := rand.New(rand.NewSource(seed ^ 0x5ca1e))
		ch3 := ch2.Next(rng)

		ab, err := rules.Compose(s.Spec, ch2.Spec2)
		if err != nil {
			t.Fatalf("seed %d: a∘b: %v", seed, err)
		}
		left, err := rules.Compose(ab, ch3.Spec2)
		if err != nil {
			t.Fatalf("seed %d: (a∘b)∘c: %v", seed, err)
		}
		bc, err := rules.Compose(ch2.Spec2, ch3.Spec2)
		if err != nil {
			t.Fatalf("seed %d: b∘c: %v", seed, err)
		}
		right, err := rules.Compose(s.Spec, bc)
		if err != nil {
			t.Fatalf("seed %d: a∘(b∘c): %v", seed, err)
		}

		rel := ch3.ExtendRelation(ch2.ExtendRelation(s.Relation("universe", rng, 40)))
		for i := 0; i < 6; i++ {
			q := s.RandomQuery(rng, workload.DefaultQueryConfig())
			truth := mustSelect(t, rel, q, s.Eval)

			selL := mustSelect(t, rel, translate(t, left, q), s.Eval)
			selR := mustSelect(t, rel, translate(t, right, q), s.Eval)
			if !subsetOf(renderSet(truth), renderSet(selL)) || !subsetOf(renderSet(truth), renderSet(selR)) {
				t.Fatalf("seed %d query %s: associativity variant lost answers", seed, q)
			}
			fL := render(mustSelect(t, selL, q, s.Eval))
			fR := render(mustSelect(t, selR, q, s.Eval))
			if fL != fR || fL != render(truth) {
				t.Fatalf("seed %d query %s: (a∘b)∘c and a∘(b∘c) filtered answers diverge from truth", seed, q)
			}
		}
	}
}

// TestComposeInfoFiredB checks the offline dead-rule report: pair-group
// joint rules need two targets in one conjunction, which per-rule
// composition never produces, so they must be absent from FiredB.
func TestComposeInfoFiredB(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		s, ch := chainScenario(t, seed)
		_, info, err := rules.ComposeDetail(s.Spec, ch.Spec2)
		if err != nil {
			t.Fatalf("seed %d: compose: %v", seed, err)
		}
		if len(info.FiredB) == 0 {
			t.Fatalf("seed %d: no b-rules fired during composition", seed)
		}
		for _, g := range ch.Groups {
			if g.Kind != workload.ChainPair {
				continue
			}
			joint := "C_" + g.U + "_joint"
			if info.FiredB[joint] != 0 {
				t.Fatalf("seed %d: joint rule %s fired during per-rule composition", seed, joint)
			}
		}
	}
}

// TestComposeTightenedDiverges sanity-checks the planted-bug variant: the
// tightened composition must lose answers on some chain (the conformance
// harness asserts the oracle catches and shrinks it).
func TestComposeTightenedDiverges(t *testing.T) {
	diverged := false
	for seed := int64(1); seed <= 30 && !diverged; seed++ {
		s, ch := chainScenario(t, seed)
		good, err := rules.Compose(s.Spec, ch.Spec2)
		if err != nil {
			t.Fatalf("seed %d: compose: %v", seed, err)
		}
		bad, err := rules.ComposeTightened(s.Spec, ch.Spec2)
		if err != nil {
			t.Fatalf("seed %d: tightened compose: %v", seed, err)
		}
		rng := rand.New(rand.NewSource(seed * 31337))
		rel := ch.ExtendRelation(s.Relation("universe", rng, 60))
		for i := 0; i < 10; i++ {
			q := s.RandomQuery(rng, workload.DefaultQueryConfig())
			selGood := mustSelect(t, rel, translate(t, good, q), s.Eval)
			selBad := mustSelect(t, rel, translate(t, bad, q), s.Eval)
			if render(selGood) != render(selBad) {
				diverged = true
				break
			}
		}
	}
	if !diverged {
		t.Fatal("ComposeTightened never diverged from Compose; the planted bug is unreachable")
	}
}

// TestContainsStructural checks the structural containment verdicts:
// dropping rules from a spec makes it weaker, so the reduced spec contains
// the full one, and (with a non-trivial dropped rule) not vice versa.
func TestContainsStructural(t *testing.T) {
	s, _ := chainScenario(t, 3)
	full := s.Spec
	if !rules.Contains(full, full) {
		t.Fatal("spec does not contain itself")
	}
	reduced := rules.MustSpec("K_reduced", full.Target, full.Reg, full.Rules[:len(full.Rules)-1]...)
	if !rules.Contains(reduced, full) {
		t.Fatal("rule-subset spec must contain the full spec (fewer conjuncts = weaker)")
	}
	ok, report := rules.ContainsReport(full, reduced)
	if ok {
		t.Fatal("full spec should not contain the reduced one (dropped rule is uncovered)")
	}
	if len(report) == 0 {
		t.Fatal("ContainsReport returned no diagnostics for a failed containment")
	}
}

// TestContainsExecuteAndCheck probes containment soundness: whenever
// Contains(a, b) reports true, no query on random data may produce a
// b-answer outside a's.
func TestContainsExecuteAndCheck(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := workload.New(workload.Config{
			Indep:        1 + rng.Intn(2),
			Pairs:        1 + rng.Intn(2),
			InexactPairs: rng.Intn(2),
			Triples:      rng.Intn(2),
		})
		full := s.Spec
		// Random rule-subset spec: always weaker than the full one.
		var kept []*rules.Rule
		for _, r := range full.Rules {
			if rng.Float64() < 0.7 {
				kept = append(kept, r)
			}
		}
		if len(kept) == 0 {
			kept = full.Rules[:1]
		}
		sub := rules.MustSpec("K_sub", full.Target, full.Reg, kept...)

		for _, pair := range [][2]*rules.Spec{{sub, full}, {full, sub}, {full, full}} {
			a, b := pair[0], pair[1]
			if !rules.Contains(a, b) {
				continue
			}
			rel := s.Relation("universe", rng, 40)
			for i := 0; i < 5; i++ {
				q := s.RandomQuery(rng, workload.DefaultQueryConfig())
				selA := mustSelect(t, rel, translate(t, a, q), s.Eval)
				selB := mustSelect(t, rel, translate(t, b, q), s.Eval)
				if !subsetOf(renderSet(selB), renderSet(selA)) {
					t.Fatalf("seed %d: Contains(%s,%s) holds but a %s-answer escaped %s on %s",
						seed, a.Name, b.Name, b.Name, a.Name, q)
				}
			}
		}
		// The trivial sanity on every seed: sub ⊆ full must be provable.
		if !rules.Contains(sub, full) {
			t.Fatalf("seed %d: structural containment missed the rule-subset witness", seed)
		}
	}
}

// TestComposeAfterCompiled covers the Spec.Compiled() interaction satellite:
// composing specs that have already been compiled (and compiling the
// composition) must not trip the rule-slice mutation guard.
func TestComposeAfterCompiled(t *testing.T) {
	s, ch := chainScenario(t, 5)
	s.Spec.Compiled()
	ch.Spec2.Compiled()
	composed, err := rules.Compose(s.Spec, ch.Spec2)
	if err != nil {
		t.Fatalf("compose after Compiled: %v", err)
	}
	composed.Compiled()
	composed.TranslationPlan()
	// The originals must still pass their own guard.
	s.Spec.Compiled()
	ch.Spec2.Compiled()

	q := s.SimpleConjunction(rand.New(rand.NewSource(9)), 3)
	if _, err := core.NewTranslator(composed).Translate(q, core.AlgTDQM); err != nil {
		t.Fatalf("translate with compiled composed spec: %v", err)
	}
}

// TestLintComposition checks the composition dead-rule linter: a b-rule
// whose pattern no a-emission can satisfy is flagged; reachable rules are
// not.
func TestLintComposition(t *testing.T) {
	s, ch := chainScenario(t, 7)
	if probs := rules.LintComposition(s.Spec, ch.Spec2); len(probs) != 0 {
		t.Fatalf("chain spec rules should all be reachable, got %v", probs)
	}

	reg := rules.NewRegistry()
	tgt := rules.NewTarget("toy", rules.Capability{Attr: "*", Op: qtree.OpEq})
	dead := rules.MustSpec("K_dead", tgt, reg, &rules.Rule{
		Name:     "R_dead",
		Patterns: []rules.ConstraintPat{{Attr: rules.AttrPat{Name: "nosuch"}, Op: qtree.OpEq, RHS: rules.VarTerm("A")}},
		Conds:    []rules.CondRef{{Name: "Value", Args: []string{"A"}}},
		Emit:     rules.EmitLeaf(rules.ConstraintPat{Attr: rules.AttrPat{Name: "z"}, Op: qtree.OpEq, RHS: rules.VarTerm("A")}),
	})
	probs := rules.LintComposition(s.Spec, dead)
	if len(probs) != 1 || probs[0].Rule != "R_dead" {
		t.Fatalf("expected one unreachable-rule warning for R_dead, got %v", probs)
	}
}
