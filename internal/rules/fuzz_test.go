package rules

import (
	"testing"
)

// FuzzParseRules checks the DSL parser never panics, and that successfully
// parsed rules print back to parseable text.
func FuzzParseRules(f *testing.F) {
	seeds := []string{
		`rule R { match [a = V]; emit exact [b = V]; }`,
		`rule R { match [a = V], [b = W]; where Value(V); let X = F(V, W); emit [c = X] or TRUE; }`,
		`rule R { match [fac[i].A = fac[j].A]; emit [fac[i].prof.A = fac[j].prof.A]; }`,
		"# comment\nrule R { match [x contains P]; emit [y contains P]; }",
		`rule Broken {`,
		`rule R { emit TRUE; }`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		rs, err := ParseRules(src)
		if err != nil {
			return
		}
		for _, r := range rs {
			text := r.String()
			back, err := ParseRules(text)
			if err != nil {
				t.Fatalf("re-parse of printed rule failed: %v\n%s", err, text)
			}
			if len(back) != 1 || back[0].Name != r.Name {
				t.Fatalf("round trip changed rule identity: %s", text)
			}
		}
	})
}
