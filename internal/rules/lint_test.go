package rules

import (
	"strings"
	"testing"

	"repro/internal/qtree"
)

func lintOf(t *testing.T, ruleText string, caps ...Capability) []Problem {
	t.Helper()
	rs := MustParseRules(ruleText)
	target := NewTarget("t", caps...)
	s := MustSpec("K", target, NewRegistry(), rs...)
	return Lint(s)
}

func hasProblem(ps []Problem, level LintLevel, substr string) bool {
	for _, p := range ps {
		if p.Level == level && strings.Contains(p.Message, substr) {
			return true
		}
	}
	return false
}

func TestLintCleanSpec(t *testing.T) {
	ps := lintOf(t, `
rule R {
  match [a = V];
  where Value(V);
  emit exact [b = V];
}
`, Capability{Attr: "b", Op: qtree.OpEq})
	if len(ps) != 0 {
		t.Errorf("clean spec produced findings: %v", ps)
	}
}

func TestLintUnusedVariable(t *testing.T) {
	ps := lintOf(t, `
rule R {
  match [a = V], [c = W];
  emit exact [b = V];
}
`, Capability{Attr: "b", Op: qtree.OpEq})
	if !hasProblem(ps, LintWarning, "variable W is never used") {
		t.Errorf("unused variable not reported: %v", ps)
	}
}

func TestLintUnsupportedEmission(t *testing.T) {
	ps := lintOf(t, `
rule R {
  match [a = V];
  emit exact [b starts V];
}
`, Capability{Attr: "b", Op: qtree.OpEq})
	if !hasProblem(ps, LintError, "not supported by target") {
		t.Errorf("unsupported emission not reported: %v", ps)
	}
}

func TestLintDuplicateHeads(t *testing.T) {
	ps := lintOf(t, `
rule R1 {
  match [a = V];
  emit exact [b = V];
}
rule R2 {
  match [a = V];
  emit [c = V];
}
`, Capability{Attr: "b", Op: qtree.OpEq}, Capability{Attr: "c", Op: qtree.OpEq})
	if !hasProblem(ps, LintWarning, "identical to rule R1") {
		t.Errorf("duplicate heads not reported: %v", ps)
	}
}

func TestLintExactTrue(t *testing.T) {
	ps := lintOf(t, `
rule R {
  match [a = V];
  where Value(V);
  emit exact TRUE;
}
`)
	if !hasProblem(ps, LintWarning, "TRUE emission marked exact") {
		t.Errorf("exact TRUE not reported: %v", ps)
	}
}

func TestLintShadowingLet(t *testing.T) {
	reg := NewRegistry()
	reg.RegisterAction("Id", func(b Binding, args []string) (BoundVal, error) {
		return b[args[0]], nil
	})
	rs := MustParseRules(`
rule R {
  match [a = V];
  let V = Id(V);
  emit exact [b = V];
}
`)
	s := MustSpec("K", NewTarget("t", Capability{Attr: "b", Op: qtree.OpEq}), reg, rs...)
	ps := Lint(s)
	if !hasProblem(ps, LintWarning, "shadows a pattern variable") {
		t.Errorf("shadowing let not reported: %v", ps)
	}
}

func TestLintBuiltinSpecsMostlyClean(t *testing.T) {
	// The shipped specifications should produce no lint errors (warnings
	// are tolerated — e.g. intentionally duplicated heads).
	// This is exercised thoroughly in the sources package tests; here we
	// just confirm Lint runs on a multi-rule spec.
	ps := lintOf(t, `
rule A {
  match [x = V], [y = W];
  where Value(V), Value(W);
  emit exact [t = V];
}
rule B {
  match [x = V];
  where Value(V);
  emit [t = V];
}
`, Capability{Attr: "t", Op: qtree.OpEq})
	for _, p := range ps {
		if p.Level == LintError {
			t.Errorf("unexpected lint error: %v", p)
		}
	}
}
