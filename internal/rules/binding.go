// Package rules implements the paper's rule-based mapping framework
// (Section 4): constraint patterns with variables, match conditions,
// value-transformation actions, emissions, mapping specifications, and the
// matching machinery M(Q̂, K) that the translation algorithms build on.
// A text DSL for writing rule files is provided in dsl.go, and a capability
// model for target contexts in capability.go.
package rules

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/qtree"
)

// BoundKind discriminates what a rule variable is bound to.
type BoundKind int

const (
	// BindValue binds a constant value (the usual case, e.g. L in [ln = L]).
	BindValue BoundKind = iota
	// BindAttr binds an attribute (e.g. A1 in [A1 = N], or N itself when the
	// pattern matched a join constraint).
	BindAttr
	// BindIndex binds a view-instance index (e.g. i in fac[i].A).
	BindIndex
	// BindName binds a bare identifier such as an attribute name matched by
	// a name variable (e.g. A in [fac[i].A = fac[j].A]).
	BindName
)

// BoundVal is the value of a rule variable in a binding.
type BoundVal struct {
	Kind BoundKind
	Val  qtree.Value // BindValue
	Attr qtree.Attr  // BindAttr
	Idx  int         // BindIndex
	Name string      // BindName
}

// ValueOf wraps a constant value.
func ValueOf(v qtree.Value) BoundVal { return BoundVal{Kind: BindValue, Val: v} }

// AttrOf wraps an attribute.
func AttrOf(a qtree.Attr) BoundVal { return BoundVal{Kind: BindAttr, Attr: a} }

// IndexOf wraps an instance index.
func IndexOf(i int) BoundVal { return BoundVal{Kind: BindIndex, Idx: i} }

// NameOf wraps a bare identifier.
func NameOf(s string) BoundVal { return BoundVal{Kind: BindName, Name: s} }

// Equal reports whether two bound values are identical.
func (b BoundVal) Equal(c BoundVal) bool {
	if b.Kind != c.Kind {
		return false
	}
	switch b.Kind {
	case BindValue:
		return b.Val.Equal(c.Val)
	case BindAttr:
		return b.Attr == c.Attr
	case BindIndex:
		return b.Idx == c.Idx
	case BindName:
		return b.Name == c.Name
	default:
		return false
	}
}

// String renders the bound value for diagnostics.
func (b BoundVal) String() string {
	switch b.Kind {
	case BindValue:
		return b.Val.String()
	case BindAttr:
		return b.Attr.String()
	case BindIndex:
		return fmt.Sprintf("#%d", b.Idx)
	case BindName:
		return b.Name
	default:
		return "<unbound>"
	}
}

// Binding maps rule-variable names to bound values.
type Binding map[string]BoundVal

// Bind unifies var name with v: it fails (returns false) if name is already
// bound to a different value.
func (b Binding) Bind(name string, v BoundVal) bool {
	if old, ok := b[name]; ok {
		return old.Equal(v)
	}
	b[name] = v
	return true
}

// Clone copies the binding.
func (b Binding) Clone() Binding {
	c := make(Binding, len(b))
	for k, v := range b {
		c[k] = v
	}
	return c
}

// Value returns the constant bound to name, or an error if name is unbound
// or bound to a non-value.
func (b Binding) Value(name string) (qtree.Value, error) {
	v, ok := b[name]
	if !ok {
		return nil, fmt.Errorf("rules: variable %s unbound", name)
	}
	if v.Kind != BindValue {
		return nil, fmt.Errorf("rules: variable %s is not bound to a value", name)
	}
	return v.Val, nil
}

// AttrVal returns the attribute bound to name.
func (b Binding) AttrVal(name string) (qtree.Attr, error) {
	v, ok := b[name]
	if !ok {
		return qtree.Attr{}, fmt.Errorf("rules: variable %s unbound", name)
	}
	if v.Kind != BindAttr {
		return qtree.Attr{}, fmt.Errorf("rules: variable %s is not bound to an attribute", name)
	}
	return v.Attr, nil
}

// ID returns a canonical string for deduplicating matchings that differ only
// in internal enumeration order.
func (b Binding) ID() string {
	keys := make([]string, 0, len(b))
	for k := range b {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + b[k].String()
	}
	return strings.Join(parts, ",")
}
