package stream

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/qtree"
	"repro/internal/values"
)

// testUniverse builds n tuples over attributes a (0..9) and b (0..4).
func testUniverse(n int, seed int64) *engine.Relation {
	rng := rand.New(rand.NewSource(seed))
	rel := engine.NewRelation("u")
	for i := 0; i < n; i++ {
		t := engine.Tuple{}
		t.Set(qtree.A("a"), values.Int(int64(rng.Intn(10))))
		t.Set(qtree.A("b"), values.Int(int64(rng.Intn(5))))
		t.Set(qtree.A("id"), values.Int(int64(i)))
		rel.Tuples = append(rel.Tuples, t)
	}
	return rel
}

// dupUniverse builds a universe where every tuple appears twice.
func dupUniverse(n int, seed int64) *engine.Relation {
	rel := testUniverse(n, seed)
	for _, t := range rel.Tuples[:n] {
		rel.Tuples = append(rel.Tuples, t.Clone())
	}
	return rel
}

func q(attr string, v int64) *qtree.Node {
	return qtree.Leaf(qtree.Sel(qtree.A(attr), qtree.OpLt, values.Int(v)))
}

// baseline materializes the reference answer: select, dedup by key, sort.
func baseline(t *testing.T, rel *engine.Relation, query, filter *qtree.Node, dedup bool) []string {
	t.Helper()
	ev := engine.NewEvaluator()
	sel, err := rel.Select(query, ev)
	if err != nil {
		t.Fatal(err)
	}
	if filter != nil {
		sel, err = sel.Select(filter, ev)
		if err != nil {
			t.Fatal(err)
		}
	}
	var keys []string
	seen := map[string]bool{}
	for _, tu := range sel.Tuples {
		k := tu.String()
		if dedup {
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// collect runs a pipeline over rel split into shards and returns the merged
// key sequence.
func collect(t *testing.T, rel *engine.Relation, shards int, query, filter *qtree.Node, opt Options) ([]string, error) {
	t.Helper()
	ev := engine.NewEvaluator()
	sorted := Presort(rel)
	var ss []Shard
	for i, part := range sorted.Split(shards) {
		ss = append(ss, Shard{
			Source: rel.Name, Index: i, Entries: part,
			Query: query, Eval: ev, Filter: filter, FilterEval: ev,
		})
	}
	st := Run(context.Background(), ss, opt)
	defer st.Close()
	var keys []string
	for {
		e, ok := st.Next()
		if !ok {
			break
		}
		keys = append(keys, e.Key)
	}
	return keys, st.Err()
}

func TestPresortSplit(t *testing.T) {
	rel := testUniverse(1000, 1)
	sorted := Presort(rel)
	if !sort.SliceIsSorted(sorted.Entries, func(i, j int) bool {
		return sorted.Entries[i].Key < sorted.Entries[j].Key
	}) {
		t.Fatal("Presort output not key-sorted")
	}
	for _, n := range []int{1, 2, 3, 8, 1001} {
		parts := sorted.Split(n)
		total := 0
		for _, p := range parts {
			total += len(p)
			if !sort.SliceIsSorted(p, func(i, j int) bool { return p[i].Key < p[j].Key }) {
				t.Fatalf("split %d: shard not sorted", n)
			}
		}
		if total != len(sorted.Entries) {
			t.Fatalf("split %d covers %d of %d entries", n, total, len(sorted.Entries))
		}
	}
}

func TestMergeMatchesMaterialized(t *testing.T) {
	for _, size := range []int{0, 1, 7, 500} {
		rel := dupUniverse(size, int64(size)+3)
		query := q("a", 7)
		filter := q("b", 3)
		want := baseline(t, rel, query, filter, true)
		for _, shards := range []int{1, 2, 8} {
			for _, buf := range []int{1, 4, 64} {
				got, err := collect(t, rel, shards, query, filter, Options{Buffer: buf, Dedup: true})
				if err != nil {
					t.Fatalf("size=%d shards=%d buf=%d: %v", size, shards, buf, err)
				}
				if strings.Join(got, "\n") != strings.Join(want, "\n") {
					t.Fatalf("size=%d shards=%d buf=%d: merged stream differs from materialized baseline:\ngot %d keys, want %d",
						size, shards, buf, len(got), len(want))
				}
			}
		}
	}
}

func TestNoDedupKeepsBag(t *testing.T) {
	rel := dupUniverse(200, 11)
	query := q("a", 7)
	want := baseline(t, rel, query, nil, false)
	got, err := collect(t, rel, 4, query, nil, Options{Dedup: false})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("bag stream differs: got %d keys, want %d", len(got), len(want))
	}
}

func TestHookErrorFailsStream(t *testing.T) {
	rel := testUniverse(100, 5)
	sentinel := errors.New("injected")
	hook := func(_ context.Context, source string, shard int) error {
		if shard == 1 {
			return fmt.Errorf("hook %s/%d: %w", source, shard, sentinel)
		}
		return nil
	}
	_, err := collect(t, rel, 4, q("a", 10), nil, Options{Hook: hook})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
}

func TestShardTimeout(t *testing.T) {
	rel := testUniverse(100, 6)
	hook := func(ctx context.Context, _ string, _ int) error {
		select {
		case <-time.After(time.Second):
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	_, err := collect(t, rel, 2, q("a", 10), nil, Options{ShardTimeout: 5 * time.Millisecond, Hook: hook})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestEvalErrorFailsStream(t *testing.T) {
	rel := testUniverse(50, 7)
	// Constraint on a missing attribute: the default evaluator errors.
	bad := qtree.Leaf(qtree.Sel(qtree.A("nosuch"), qtree.OpEq, values.Int(1)))
	_, err := collect(t, rel, 3, bad, nil, Options{})
	if err == nil || !strings.Contains(err.Error(), "lacks attribute") {
		t.Fatalf("err = %v, want missing-attribute failure", err)
	}
}

func TestMetricsBalanceAndBound(t *testing.T) {
	rel := testUniverse(4000, 8)
	var emits, delivers, waits atomic.Int64
	var inflight, peak atomic.Int64
	met := &Metrics{
		OnEmit: func(string, int) {
			emits.Add(1)
			n := inflight.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
		},
		OnDeliver:   func() { delivers.Add(1); inflight.Add(-1) },
		OnMergeWait: func() { waits.Add(1) },
	}
	const shards, buf = 4, 8
	got, err := collect(t, rel, shards, q("a", 9), nil, Options{Buffer: buf, Dedup: true, Metrics: met})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("expected matches")
	}
	if emits.Load() != delivers.Load() {
		t.Fatalf("emits %d != delivers %d after Close", emits.Load(), delivers.Load())
	}
	if n := inflight.Load(); n != 0 {
		t.Fatalf("in-flight %d after Close, want 0", n)
	}
	if bound := int64(shards * (buf + 2)); peak.Load() > bound {
		t.Fatalf("peak in-flight %d exceeds shards*(buffer+2) = %d", peak.Load(), bound)
	}
}

func TestOnShardDoneReportsOutcomes(t *testing.T) {
	rel := testUniverse(300, 11)
	type done struct {
		source string
		shard  int
		failed bool
	}
	var mu sync.Mutex
	var outcomes []done
	met := &Metrics{
		OnShardDone: func(source string, shard int, err error) {
			mu.Lock()
			outcomes = append(outcomes, done{source, shard, err != nil})
			mu.Unlock()
		},
	}

	// Clean run: one nil-error outcome per shard.
	keys, err := collect(t, rel, 4, q("a", 5), nil, Options{Dedup: true, Metrics: met})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) == 0 {
		t.Fatal("no results")
	}
	if len(outcomes) != 4 {
		t.Fatalf("outcomes = %d, want one per shard", len(outcomes))
	}
	for _, o := range outcomes {
		if o.source != rel.Name || o.failed {
			t.Fatalf("clean shard outcome = %+v", o)
		}
	}

	// Failing hook: the failed shard reports its error.
	outcomes = nil
	boom := errors.New("boom")
	opt := Options{
		Dedup:   true,
		Metrics: met,
		Hook: func(ctx context.Context, source string, shard int) error {
			if shard == 2 {
				return boom
			}
			return nil
		},
	}
	_, err = collect(t, rel, 4, q("a", 5), nil, opt)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	mu.Lock()
	defer mu.Unlock()
	var sawFailure bool
	for _, o := range outcomes {
		if o.shard == 2 && o.failed {
			sawFailure = true
		}
	}
	if !sawFailure {
		t.Fatal("failed shard never reported through OnShardDone")
	}
}
