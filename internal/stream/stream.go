// Package stream is a tuple-at-a-time execution pipeline for the serving
// layer: the second execution engine next to the materialized
// mediator.ExecuteUnion / ExecuteJoin paths, built so that per-request
// memory is bounded by the pipeline shape — O(shards × buffer) in-flight
// tuples — instead of growing with the result size.
//
// The pipeline has three stages:
//
//   - presort: each source's universe relation is sorted once (not per
//     request) by the stable tuple key engine.Tuple.String — the same key
//     the materialized paths sort and deduplicate by — and split into N
//     contiguous, individually key-sorted shards;
//   - shard executors: one goroutine per shard scans its slice, evaluates
//     the translated source query and the branch residue filter inline per
//     tuple, and emits survivors through a bounded channel. Sends select on
//     the pipeline context, so backpressure never turns into a goroutine
//     leak: cancelling the context releases every blocked sender;
//   - merge: a k-way heap merge over the shard channels, keyed by
//     (tuple key, shard index). Because every shard stream is key-sorted,
//     the merged stream is globally key-sorted, and union deduplication
//     degenerates to skipping runs of equal keys — O(1) state instead of a
//     seen-set over the whole result.
//
// Determinism contract: for union-style integration the merged, deduplicated
// stream is byte-identical — content and order — to the relation
// mediator.ExecuteUnion materializes, because both orders are "sorted by
// engine.Tuple.String with one representative per key".
package stream

import (
	"sort"

	"repro/internal/engine"
)

// DefaultBuffer is the per-shard channel capacity used when Options leaves
// Buffer unset. Together with the shard count it bounds the tuples a request
// can hold in flight: shards × (Buffer + 2) — one tuple may rest in a
// blocked sender's hand and one in the merge heap.
const DefaultBuffer = 64

// Entry is one streamed tuple together with its precomputed stable sort key
// (engine.Tuple.String). Keys are rendered once at presort time, so neither
// the shard executors nor the merge re-render tuples on the hot path.
type Entry struct {
	Key   string
	Tuple engine.Tuple
}

// Sorted is a source universe presorted by tuple key. It is built once per
// relation (Presort) and shared read-only by every request; splitting it
// into shards is a cheap slicing operation.
type Sorted struct {
	Name    string
	Entries []Entry

	rel *engine.Relation
}

// Presort renders and sorts rel's tuples by their stable key. The relation
// must not be mutated afterwards (the entries alias its tuples).
func Presort(rel *engine.Relation) *Sorted {
	entries := make([]Entry, len(rel.Tuples))
	for i, t := range rel.Tuples {
		entries[i] = Entry{Key: t.String(), Tuple: t}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	s := &Sorted{Name: rel.Name, Entries: entries}
	s.rel = &engine.Relation{Name: rel.Name, Tuples: make([]engine.Tuple, len(entries))}
	for i := range entries {
		s.rel.Tuples[i] = entries[i].Tuple
	}
	return s
}

// Relation returns the presorted universe as a relation snapshot: tuple i is
// Entries[i].Tuple. An engine.Access built over it speaks the same position
// space as the shard slices (Shard.Base + offset), which is what lets index
// probes reproduce each shard's key-sorted emission order exactly.
func (s *Sorted) Relation() *engine.Relation { return s.rel }

// Split cuts the sorted universe into n contiguous ranges of near-equal
// size. Each range is itself key-sorted, which is what lets a k-way merge
// of the per-shard streams reproduce the global sort order. n <= 1 returns
// the whole universe as one shard; equal keys may straddle a cut, which the
// merge's dedup handles.
func (s *Sorted) Split(n int) [][]Entry {
	if n <= 1 {
		return [][]Entry{s.Entries}
	}
	out := make([][]Entry, n)
	total := len(s.Entries)
	for i := 0; i < n; i++ {
		out[i] = s.Entries[i*total/n : (i+1)*total/n]
	}
	return out
}
