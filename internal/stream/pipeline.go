package stream

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/qtree"
)

// Shard is one shard executor's work order: a contiguous key-sorted slice
// of a source's presorted universe, the translated query to evaluate in the
// source's native vocabulary, and an optional mediator-vocabulary filter
// applied inline per tuple (the union branch residue). A nil or True Filter
// skips the filter stage.
type Shard struct {
	Source     string
	Index      int
	Entries    []Entry
	Query      *qtree.Node
	Eval       *engine.Evaluator
	Filter     *qtree.Node
	FilterEval *engine.Evaluator

	// Access, when non-nil, routes the shard's query evaluation through the
	// cost-based access-path planner instead of the tuple-at-a-time scan. It
	// must be built over the source's presorted universe (Sorted.Relation),
	// with Base the shard's starting offset into it, so that probe positions
	// map onto Entries. The residue Filter is still evaluated inline per
	// surviving tuple. Emission order and errors are identical either way.
	Access *engine.Access
	Base   int
}

// Hook runs at the start of every shard execution, before any tuple is
// scanned. It is the streaming analogue of serve.SourceExecutor wrapping:
// fault injectors, admission checks, and remote handshakes plug in here. A
// non-nil error fails the shard (and with it the request) without emitting.
type Hook func(ctx context.Context, source string, shard int) error

// Metrics receives pipeline instrumentation callbacks. All callbacks may be
// invoked concurrently from shard goroutines and the merging consumer; nil
// callbacks (or a nil *Metrics) disable the corresponding accounting.
type Metrics struct {
	// OnEmit fires when a shard hands a tuple to its channel (just before
	// the send, so in-flight gauges include the sender's hand).
	OnEmit func(source string, shard int)
	// OnDeliver fires when a tuple leaves the pipeline: merged into the
	// output stream, drained at Close, or abandoned by a cancelled sender.
	// Emits and delivers balance exactly once the stream is closed.
	OnDeliver func()
	// OnMergeWait fires when the k-way merge must block waiting for a shard
	// to produce — the signal that the consumer outruns the executors.
	OnMergeWait func()
	// OnShardDone fires once per shard when its executor goroutine finishes,
	// with the error it closed on (nil on clean exhaustion). This is the
	// per-shard outcome feed the serving layer's circuit breakers record.
	OnShardDone func(source string, shard int, err error)
}

// Options configures one pipeline run.
type Options struct {
	// Buffer is the per-shard channel capacity (DefaultBuffer if <= 0).
	Buffer int
	// ShardTimeout bounds each shard's execution, scan start to last emit
	// (no timeout if 0).
	ShardTimeout time.Duration
	// Hook, when non-nil, runs at the start of every shard execution.
	Hook Hook
	// Metrics, when non-nil, receives instrumentation callbacks.
	Metrics *Metrics
	// Dedup collapses runs of equal keys in the merged stream to their
	// first representative — union semantics. Leave false for bag-semantics
	// consumers (the join probe side).
	Dedup bool
}

// Stream is a running pipeline: shard executors feeding a deterministic
// k-way merge. Next/Err/Close must be called from a single consumer
// goroutine; the shard side is internally concurrent.
type Stream struct {
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	chans  []chan Entry
	// errs has one slot per shard, written by the shard goroutine before it
	// closes its channel (the close is the happens-before edge the merge
	// reads across).
	errs []error
	met  *Metrics

	dedup   bool
	heap    []cursor
	primed  bool
	last    string
	hasLast bool
	failed  bool
	err     error
	closed  bool
}

// cursor is one shard's head-of-stream inside the merge heap.
type cursor struct {
	ch  chan Entry
	idx int
	cur Entry
}

// Run starts one pipeline: a goroutine per shard emitting into a bounded
// channel, merged on demand by Stream.Next. The caller must Close the
// stream (normally via defer) — Close cancels the executors, waits for
// them, and drains the channels, so no goroutine or buffered tuple outlives
// the request, whatever state the consumer stopped in.
func Run(ctx context.Context, shards []Shard, opt Options) *Stream {
	buf := opt.Buffer
	if buf <= 0 {
		buf = DefaultBuffer
	}
	cctx, cancel := context.WithCancel(ctx)
	st := &Stream{
		ctx:    cctx,
		cancel: cancel,
		chans:  make([]chan Entry, len(shards)),
		errs:   make([]error, len(shards)),
		met:    opt.Metrics,
		dedup:  opt.Dedup,
	}
	for i := range shards {
		ch := make(chan Entry, buf)
		st.chans[i] = ch
		st.wg.Add(1)
		go func(i int, sh Shard) {
			defer st.wg.Done()
			defer close(ch)
			err := runShard(cctx, sh, ch, opt)
			st.errs[i] = err
			if opt.Metrics != nil && opt.Metrics.OnShardDone != nil {
				opt.Metrics.OnShardDone(sh.Source, sh.Index, err)
			}
		}(i, shards[i])
	}
	return st
}

// runShard scans one shard tuple-at-a-time: evaluate the translated query,
// apply the inline filter, emit survivors with backpressure. Sends select
// on the shard context, so a cancelled or timed-out pipeline releases a
// blocked sender immediately.
func runShard(ctx context.Context, sh Shard, out chan<- Entry, opt Options) error {
	if opt.ShardTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.ShardTimeout)
		defer cancel()
	}
	wrap := func(err error) error {
		return fmt.Errorf("stream: source %s shard %d: %w", sh.Source, sh.Index, err)
	}
	if opt.Hook != nil {
		if err := opt.Hook(ctx, sh.Source, sh.Index); err != nil {
			return wrap(err)
		}
	}
	filter := sh.Filter
	if filter != nil && filter.IsTrue() {
		filter = nil
	}
	met := opt.Metrics
	if sh.Access != nil {
		plan := sh.Access.PlanQuery(sh.Query, sh.Eval)
		err := plan.Scan(ctx, sh.Base, sh.Base+len(sh.Entries), func(pos int) error {
			e := sh.Entries[pos-sh.Base]
			if filter != nil {
				ok, ferr := sh.FilterEval.EvalQuery(filter, e.Tuple)
				if ferr != nil {
					return ferr
				}
				if !ok {
					return nil
				}
			}
			if met != nil && met.OnEmit != nil {
				met.OnEmit(sh.Source, sh.Index)
			}
			select {
			case out <- e:
				return nil
			case <-ctx.Done():
				if met != nil && met.OnDeliver != nil {
					met.OnDeliver() // the tuple in hand never entered the channel
				}
				return ctx.Err()
			}
		})
		if err != nil {
			return wrap(err)
		}
		return nil
	}
	for i := range sh.Entries {
		// Long runs of non-matching tuples never reach the cancellable
		// send, so poll the context on a stride.
		if i&63 == 0 {
			if err := ctx.Err(); err != nil {
				return wrap(err)
			}
		}
		e := sh.Entries[i]
		ok, err := sh.Eval.EvalQuery(sh.Query, e.Tuple)
		if err != nil {
			return wrap(err)
		}
		if !ok {
			continue
		}
		if filter != nil {
			ok, err = sh.FilterEval.EvalQuery(filter, e.Tuple)
			if err != nil {
				return wrap(err)
			}
			if !ok {
				continue
			}
		}
		if met != nil && met.OnEmit != nil {
			met.OnEmit(sh.Source, sh.Index)
		}
		select {
		case out <- e:
		case <-ctx.Done():
			if met != nil && met.OnDeliver != nil {
				met.OnDeliver() // the tuple in hand never entered the channel
			}
			return wrap(ctx.Err())
		}
	}
	return nil
}

// Next returns the next entry of the merged stream. It returns ok=false
// when the stream is exhausted, failed, or closed; the caller distinguishes
// the cases with Err.
func (st *Stream) Next() (Entry, bool) {
	if st.closed || st.failed {
		return Entry{}, false
	}
	if !st.primed {
		st.primed = true
		for i, ch := range st.chans {
			c, ok := st.recv(ch, i)
			if st.failed {
				return Entry{}, false
			}
			if ok {
				st.heap = append(st.heap, c)
			}
		}
		for i := len(st.heap)/2 - 1; i >= 0; i-- {
			st.siftDown(i)
		}
	}
	for len(st.heap) > 0 {
		e := st.heap[0].cur
		c, ok := st.recv(st.heap[0].ch, st.heap[0].idx)
		if st.failed {
			return Entry{}, false
		}
		if ok {
			st.heap[0].cur = c.cur
			st.siftDown(0)
		} else {
			n := len(st.heap) - 1
			st.heap[0] = st.heap[n]
			st.heap = st.heap[:n]
			if n > 0 {
				st.siftDown(0)
			}
		}
		if st.dedup && st.hasLast && e.Key == st.last {
			continue
		}
		st.last, st.hasLast = e.Key, true
		return e, true
	}
	return Entry{}, false
}

// recv pulls shard i's next entry, counting a merge wait when it must
// block. ok=false means the shard is exhausted; a shard that closed with an
// error fails the whole stream.
func (st *Stream) recv(ch chan Entry, i int) (cursor, bool) {
	var e Entry
	var ok bool
	select {
	case e, ok = <-ch:
	default:
		if st.met != nil && st.met.OnMergeWait != nil {
			st.met.OnMergeWait()
		}
		e, ok = <-ch
	}
	if !ok {
		if err := st.errs[i]; err != nil {
			st.fail(err)
		}
		return cursor{}, false
	}
	if st.met != nil && st.met.OnDeliver != nil {
		st.met.OnDeliver()
	}
	return cursor{ch: ch, idx: i, cur: e}, true
}

// fail records the first shard error and cancels the executors.
func (st *Stream) fail(err error) {
	if !st.failed {
		st.failed = true
		st.err = err
	}
	st.cancel()
}

// Err returns the error that failed the stream, or nil after a clean
// exhaustion (or before one).
func (st *Stream) Err() error { return st.err }

// Close cancels the shard executors, waits for every goroutine to exit,
// and drains what they had buffered, so the pipeline's in-flight
// accounting returns to zero. It is idempotent and must be called exactly
// however the consume loop ends.
func (st *Stream) Close() {
	if st.closed {
		return
	}
	st.closed = true
	st.cancel()
	st.wg.Wait()
	for _, ch := range st.chans {
		for range ch {
			if st.met != nil && st.met.OnDeliver != nil {
				st.met.OnDeliver()
			}
		}
	}
}

// heap ordering: by key, shard index breaking ties — a total, stable order
// that makes the merged stream deterministic.
func (st *Stream) less(a, b int) bool {
	if st.heap[a].cur.Key != st.heap[b].cur.Key {
		return st.heap[a].cur.Key < st.heap[b].cur.Key
	}
	return st.heap[a].idx < st.heap[b].idx
}

func (st *Stream) siftDown(i int) {
	n := len(st.heap)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && st.less(l, min) {
			min = l
		}
		if r < n && st.less(r, min) {
			min = r
		}
		if min == i {
			return
		}
		st.heap[i], st.heap[min] = st.heap[min], st.heap[i]
		i = min
	}
}
