package stream

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
)

// settleGoroutines polls until the goroutine count drops back to at most
// base (exited goroutines are reaped asynchronously).
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines did not settle to %d (now %d)\n%s",
				base, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// balancedMetrics tracks emits vs delivers so a test can assert the
// pipeline's in-flight accounting returned to zero after Close.
type balancedMetrics struct {
	emits    atomic.Int64
	delivers atomic.Int64
}

func (m *balancedMetrics) metrics() *Metrics {
	return &Metrics{
		OnEmit:    func(string, int) { m.emits.Add(1) },
		OnDeliver: func() { m.delivers.Add(1) },
	}
}

func (m *balancedMetrics) check(t *testing.T) {
	t.Helper()
	if e, d := m.emits.Load(), m.delivers.Load(); e != d {
		t.Fatalf("in-flight accounting leaked: %d emits, %d delivers", e, d)
	}
}

// runCancelled starts a pipeline over a large universe with a tiny buffer
// (so shard senders block on backpressure), consumes n entries, then
// tears down via cancel and/or Close and verifies nothing leaked.
func runCancelled(t *testing.T, consume int, cancelFirst bool) {
	t.Helper()
	rel := testUniverse(20000, 42)
	ev := engine.NewEvaluator()
	sorted := Presort(rel)
	var shards []Shard
	for i, part := range sorted.Split(8) {
		shards = append(shards, Shard{
			Source: rel.Name, Index: i, Entries: part,
			Query: q("a", 10), Eval: ev,
		})
	}
	bm := &balancedMetrics{}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	base := runtime.NumGoroutine()
	st := Run(ctx, shards, Options{Buffer: 1, Dedup: true, Metrics: bm.metrics()})
	for i := 0; i < consume; i++ {
		if _, ok := st.Next(); !ok {
			break
		}
	}
	if cancelFirst {
		cancel()
		// Give blocked senders a moment to observe the cancellation; Close
		// must still be the thing that makes teardown complete.
		time.Sleep(time.Millisecond)
	}
	st.Close()
	settleGoroutines(t, base)
	bm.check(t)
}

// TestCancelDuringShardEmit cancels while shard senders are blocked on full
// channels, before the consumer has taken anything.
func TestCancelDuringShardEmit(t *testing.T) {
	runCancelled(t, 0, true)
}

// TestCancelDuringMerge cancels mid-merge, with the heap primed and entries
// buffered in every channel.
func TestCancelDuringMerge(t *testing.T) {
	runCancelled(t, 100, true)
}

// TestCloseWithoutCancel abandons the stream mid-consumption relying on
// Close alone for teardown (the serve-path shape: defer st.Close()).
func TestCloseWithoutCancel(t *testing.T) {
	runCancelled(t, 50, false)
}

// TestCloseBeforeFirstNext closes a stream that was never consumed.
func TestCloseBeforeFirstNext(t *testing.T) {
	runCancelled(t, 0, false)
}

// TestCloseIsIdempotent double-closes and keeps using Next/Err safely.
func TestCloseIsIdempotent(t *testing.T) {
	rel := testUniverse(100, 43)
	ev := engine.NewEvaluator()
	sorted := Presort(rel)
	st := Run(context.Background(), []Shard{{
		Source: rel.Name, Entries: sorted.Entries, Query: q("a", 10), Eval: ev,
	}}, Options{})
	st.Close()
	st.Close()
	if _, ok := st.Next(); ok {
		t.Fatal("Next returned an entry after Close")
	}
	if err := st.Err(); err != nil {
		t.Fatalf("Err after clean Close = %v", err)
	}
}

// TestExhaustedStreamNoLeak runs a pipeline to completion (no early
// cancellation) and verifies the shard goroutines are gone even before
// Close, with Close then draining nothing.
func TestExhaustedStreamNoLeak(t *testing.T) {
	rel := testUniverse(5000, 44)
	ev := engine.NewEvaluator()
	sorted := Presort(rel)
	var shards []Shard
	for i, part := range sorted.Split(4) {
		shards = append(shards, Shard{
			Source: rel.Name, Index: i, Entries: part, Query: q("a", 10), Eval: ev,
		})
	}
	bm := &balancedMetrics{}
	base := runtime.NumGoroutine()
	st := Run(context.Background(), shards, Options{Buffer: 4, Dedup: true, Metrics: bm.metrics()})
	n := 0
	for {
		if _, ok := st.Next(); !ok {
			break
		}
		n++
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 5000 {
		t.Fatalf("consumed %d entries, want 5000", n)
	}
	st.Close()
	settleGoroutines(t, base)
	bm.check(t)
}
