package engine

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the typed root of every transient fault an Injector
// produces. Callers that must distinguish injected chaos from real
// evaluation failures test errors.Is(err, ErrInjected); the conformance
// harness uses it to assert that a fault-injected serving stack fails only
// with *typed* errors and otherwise returns answers identical to the
// fault-free baseline.
var ErrInjected = errors.New("engine: injected transient source fault")

// FaultPlan configures the fault mix an Injector draws from on every source
// execution. Probabilities are independent and evaluated in order: error,
// stall, delay; at most one fault fires per execution. The zero plan injects
// nothing.
type FaultPlan struct {
	// ErrProb is the probability of failing the execution immediately with
	// an error wrapping ErrInjected.
	ErrProb float64
	// StallProb is the probability of sleeping for Stall before proceeding —
	// sized above the server's per-source timeout, this models a hung source
	// and surfaces as a context deadline error.
	StallProb float64
	// Stall is the stall duration.
	Stall time.Duration
	// DelayProb is the probability of a benign delay, uniform in
	// [Delay/2, Delay] — long enough to reorder goroutine completion, short
	// enough to stay under any timeout.
	DelayProb float64
	// Delay is the upper bound of the benign delay.
	Delay time.Duration
}

// Injector draws deterministic faults for named sources. Each source name
// gets its own seeded random stream, so the k-th execution against a given
// source sees the same fault decision regardless of how executions against
// other sources interleave — which is what makes fault-injected runs
// replayable from a single case seed.
//
// Beyond the probabilistic plan, two deterministic modes exist for tests
// that need exact fault schedules rather than distributions: SetLatency pins
// a fixed extra delay on every execution of a source (a reproducibly slow
// source, the scenario hedging exists for), and SetErrorBurst fails the
// source's next n executions outright (the trip-then-recover schedule
// breaker tests need).
//
// Injector is safe for concurrent use.
type Injector struct {
	plan FaultPlan
	seed int64

	mu      sync.Mutex
	streams map[string]*rand.Rand
	latency map[string]time.Duration
	burst   map[string]int

	errs, stalls, delays, lats atomic.Uint64
}

// NewInjector returns an injector drawing from plan, with per-source streams
// derived from seed.
func NewInjector(seed int64, plan FaultPlan) *Injector {
	return &Injector{
		plan:    plan,
		seed:    seed,
		streams: make(map[string]*rand.Rand),
		latency: make(map[string]time.Duration),
		burst:   make(map[string]int),
	}
}

// SetLatency pins a deterministic extra latency on every execution of the
// named source (its shard executions included — shard streams inherit the
// base source's pinned latency). A non-positive d clears the pin. Pinned
// latency composes with the probabilistic plan: the sleep happens first,
// then the plan draw proceeds as usual.
func (in *Injector) SetLatency(source string, d time.Duration) {
	in.mu.Lock()
	if d <= 0 {
		delete(in.latency, source)
	} else {
		in.latency[source] = d
	}
	in.mu.Unlock()
}

// SetErrorBurst makes the named source's next n executions fail with
// ErrInjected before any plan draw — a deterministic failure run that trips
// a circuit breaker at an exact execution count and then lets the source
// recover. A non-positive n clears the burst.
func (in *Injector) SetErrorBurst(source string, n int) {
	in.mu.Lock()
	if n <= 0 {
		delete(in.burst, source)
	} else {
		in.burst[source] = n
	}
	in.mu.Unlock()
}

// deterministic resolves the pinned fault decision for one execution of
// source: the remaining burst error (consuming it) and the pinned latency.
// Shard names ("source#shard") fall back to the base source's pins.
func (in *Injector) deterministic(source string) (failNow bool, extra time.Duration) {
	base := source
	if i := strings.IndexByte(source, '#'); i >= 0 {
		base = source[:i]
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, name := range []string{source, base} {
		if n, ok := in.burst[name]; ok {
			if n <= 1 {
				delete(in.burst, name)
			} else {
				in.burst[name] = n - 1
			}
			failNow = true
			break
		}
	}
	if d, ok := in.latency[source]; ok {
		extra = d
	} else if d, ok := in.latency[base]; ok {
		extra = d
	}
	return failNow, extra
}

// draw advances the named source's stream by one decision.
func (in *Injector) draw(source string) (kind int, frac float64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	rng, ok := in.streams[source]
	if !ok {
		h := fnv.New64a()
		h.Write([]byte(source))
		rng = rand.New(rand.NewSource(in.seed ^ int64(h.Sum64())))
		in.streams[source] = rng
	}
	p := rng.Float64()
	switch {
	case p < in.plan.ErrProb:
		return 1, 0
	case p < in.plan.ErrProb+in.plan.StallProb:
		return 2, 0
	case p < in.plan.ErrProb+in.plan.StallProb+in.plan.DelayProb:
		return 3, rng.Float64()
	default:
		return 0, 0
	}
}

// Apply draws the next fault for the named source and enacts it: it returns
// an error wrapping ErrInjected, sleeps (respecting ctx), or does nothing.
// A stall or delay interrupted by ctx returns ctx.Err(). Deterministic pins
// run first: a pending error burst fails immediately; a pinned latency
// sleeps before the probabilistic draw.
func (in *Injector) Apply(ctx context.Context, source string) error {
	if failNow, extra := in.deterministic(source); failNow {
		in.errs.Add(1)
		return fmt.Errorf("source %s: %w", source, ErrInjected)
	} else if extra > 0 {
		in.lats.Add(1)
		if err := sleepCtx(ctx, extra); err != nil {
			return err
		}
	}
	kind, frac := in.draw(source)
	switch kind {
	case 1:
		in.errs.Add(1)
		return fmt.Errorf("source %s: %w", source, ErrInjected)
	case 2:
		in.stalls.Add(1)
		return sleepCtx(ctx, in.plan.Stall)
	case 3:
		in.delays.Add(1)
		d := in.plan.Delay/2 + time.Duration(frac*float64(in.plan.Delay/2))
		return sleepCtx(ctx, d)
	default:
		return nil
	}
}

// ApplyShard draws the next fault for one shard of the named source, from
// the shard's own deterministic stream (named "source#shard"). Shard streams
// are independent of each other and of the plain per-source stream, so the
// k-th execution of a given (source, shard) pair sees the same fault
// decision regardless of how shards interleave — the property that makes
// fault-injected streaming runs replayable from a single case seed.
func (in *Injector) ApplyShard(ctx context.Context, source string, shard int) error {
	return in.Apply(ctx, fmt.Sprintf("%s#%d", source, shard))
}

// Errors returns the number of transient errors injected so far.
func (in *Injector) Errors() uint64 { return in.errs.Load() }

// Stalls returns the number of stalls injected so far.
func (in *Injector) Stalls() uint64 { return in.stalls.Load() }

// Delays returns the number of benign delays injected so far.
func (in *Injector) Delays() uint64 { return in.delays.Load() }

// Latencies returns the number of pinned-latency sleeps injected so far.
func (in *Injector) Latencies() uint64 { return in.lats.Load() }

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
