package engine

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the typed root of every transient fault an Injector
// produces. Callers that must distinguish injected chaos from real
// evaluation failures test errors.Is(err, ErrInjected); the conformance
// harness uses it to assert that a fault-injected serving stack fails only
// with *typed* errors and otherwise returns answers identical to the
// fault-free baseline.
var ErrInjected = errors.New("engine: injected transient source fault")

// FaultPlan configures the fault mix an Injector draws from on every source
// execution. Probabilities are independent and evaluated in order: error,
// stall, delay; at most one fault fires per execution. The zero plan injects
// nothing.
type FaultPlan struct {
	// ErrProb is the probability of failing the execution immediately with
	// an error wrapping ErrInjected.
	ErrProb float64
	// StallProb is the probability of sleeping for Stall before proceeding —
	// sized above the server's per-source timeout, this models a hung source
	// and surfaces as a context deadline error.
	StallProb float64
	// Stall is the stall duration.
	Stall time.Duration
	// DelayProb is the probability of a benign delay, uniform in
	// [Delay/2, Delay] — long enough to reorder goroutine completion, short
	// enough to stay under any timeout.
	DelayProb float64
	// Delay is the upper bound of the benign delay.
	Delay time.Duration
}

// Injector draws deterministic faults for named sources. Each source name
// gets its own seeded random stream, so the k-th execution against a given
// source sees the same fault decision regardless of how executions against
// other sources interleave — which is what makes fault-injected runs
// replayable from a single case seed.
//
// Injector is safe for concurrent use.
type Injector struct {
	plan FaultPlan
	seed int64

	mu      sync.Mutex
	streams map[string]*rand.Rand

	errs, stalls, delays atomic.Uint64
}

// NewInjector returns an injector drawing from plan, with per-source streams
// derived from seed.
func NewInjector(seed int64, plan FaultPlan) *Injector {
	return &Injector{plan: plan, seed: seed, streams: make(map[string]*rand.Rand)}
}

// draw advances the named source's stream by one decision.
func (in *Injector) draw(source string) (kind int, frac float64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	rng, ok := in.streams[source]
	if !ok {
		h := fnv.New64a()
		h.Write([]byte(source))
		rng = rand.New(rand.NewSource(in.seed ^ int64(h.Sum64())))
		in.streams[source] = rng
	}
	p := rng.Float64()
	switch {
	case p < in.plan.ErrProb:
		return 1, 0
	case p < in.plan.ErrProb+in.plan.StallProb:
		return 2, 0
	case p < in.plan.ErrProb+in.plan.StallProb+in.plan.DelayProb:
		return 3, rng.Float64()
	default:
		return 0, 0
	}
}

// Apply draws the next fault for the named source and enacts it: it returns
// an error wrapping ErrInjected, sleeps (respecting ctx), or does nothing.
// A stall or delay interrupted by ctx returns ctx.Err().
func (in *Injector) Apply(ctx context.Context, source string) error {
	kind, frac := in.draw(source)
	switch kind {
	case 1:
		in.errs.Add(1)
		return fmt.Errorf("source %s: %w", source, ErrInjected)
	case 2:
		in.stalls.Add(1)
		return sleepCtx(ctx, in.plan.Stall)
	case 3:
		in.delays.Add(1)
		d := in.plan.Delay/2 + time.Duration(frac*float64(in.plan.Delay/2))
		return sleepCtx(ctx, d)
	default:
		return nil
	}
}

// ApplyShard draws the next fault for one shard of the named source, from
// the shard's own deterministic stream (named "source#shard"). Shard streams
// are independent of each other and of the plain per-source stream, so the
// k-th execution of a given (source, shard) pair sees the same fault
// decision regardless of how shards interleave — the property that makes
// fault-injected streaming runs replayable from a single case seed.
func (in *Injector) ApplyShard(ctx context.Context, source string, shard int) error {
	return in.Apply(ctx, fmt.Sprintf("%s#%d", source, shard))
}

// Errors returns the number of transient errors injected so far.
func (in *Injector) Errors() uint64 { return in.errs.Load() }

// Stalls returns the number of stalls injected so far.
func (in *Injector) Stalls() uint64 { return in.stalls.Load() }

// Delays returns the number of benign delays injected so far.
func (in *Injector) Delays() uint64 { return in.delays.Load() }

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
