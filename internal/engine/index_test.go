package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/qparse"
	"repro/internal/qtree"
	"repro/internal/values"
)

func randomRelation(seed int64, n int) *Relation {
	rng := rand.New(rand.NewSource(seed))
	r := NewRelation("r")
	for i := 0; i < n; i++ {
		r.Tuples = append(r.Tuples, tup(
			"a", values.Int(int64(rng.Intn(20))),
			"b", values.Int(int64(rng.Intn(5))),
			"s", values.String(fmt.Sprintf("w%d", rng.Intn(8))),
		))
	}
	return r
}

// TestSelectIndexedEquivalence: for many random queries, indexed selection
// returns exactly Select's answer set.
func TestSelectIndexedEquivalence(t *testing.T) {
	r := randomRelation(1, 500)
	ev := NewEvaluator()
	indexes := BuildIndexes(r, "a", "s")

	queries := []string{
		`[a = 7]`,
		`[a = 7] and [b = 2]`,
		`[s = "w3"] and [a >= 10]`,
		`[b = 4]`,              // not indexed: falls back to scan
		`[a = 7] or [a = 12]`,  // not a simple conjunction: scan
		`[a = 999]`,            // empty bucket
		`[a != 7] and [b = 1]`, // inequality cannot probe
	}
	for _, qs := range queries {
		q := qparse.MustParse(qs)
		want, err := r.Select(q, ev)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.SelectIndexed(q, ev, indexes)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != want.Len() {
			t.Errorf("%s: indexed %d tuples, scan %d", qs, got.Len(), want.Len())
		}
		seen := make(map[string]bool, want.Len())
		for _, tu := range want.Tuples {
			seen[tu.String()] = true
		}
		for _, tu := range got.Tuples {
			if !seen[tu.String()] {
				t.Errorf("%s: indexed returned extra tuple %s", qs, tu)
			}
		}
	}
}

// TestSelectIndexedRespectsOverrides: an overridden equality (Amazon-style
// structured matching) must not be answered from the index.
func TestSelectIndexedRespectsOverrides(t *testing.T) {
	r := NewRelation("r",
		tup("author", values.String("Clancy, Tom")),
		tup("author", values.String("Clancy, Jack")),
		tup("author", values.String("Smith, Ann")),
	)
	ev := NewEvaluator()
	ev.Override("author", qtree.OpEq, func(tv, cv qtree.Value) (bool, error) {
		// Last-name-only matching: value identity would miss both Clancys.
		st, _ := tv.(values.String)
		cs, _ := cv.(values.String)
		ln, _ := values.NameToLnFn(st.Raw())
		qn, _ := values.NameToLnFn(cs.Raw())
		return ln == qn, nil
	})
	indexes := BuildIndexes(r, "author")
	got, err := r.SelectIndexed(qparse.MustParse(`[author = "Clancy"]`), ev, indexes)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Errorf("indexed select with override returned %d tuples, want 2 (must fall back to scan)", got.Len())
	}
}

// TestIndexNumericIdentity: 3 and 3.0 share a bucket, matching Value.Equal.
func TestIndexNumericIdentity(t *testing.T) {
	r := NewRelation("r", tup("a", values.Float(3)), tup("a", values.Int(3)))
	ix := BuildIndex(r, "a")
	if got := len(ix.Probe(values.Int(3))); got != 2 {
		t.Errorf("Probe(3) = %d tuples, want 2 (cross-kind numeric identity)", got)
	}
	if ix.Attr() != "a" {
		t.Errorf("Attr = %q", ix.Attr())
	}
}

func BenchmarkSelectScanVsIndexed(b *testing.B) {
	r := randomRelation(2, 20000)
	ev := NewEvaluator()
	indexes := BuildIndexes(r, "a")
	q := qparse.MustParse(`[a = 7] and [b = 2]`)
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := r.Select(q, ev); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := r.SelectIndexed(q, ev, indexes); err != nil {
				b.Fatal(err)
			}
		}
	})
}
