package engine

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestInjectorDeterministicPerSource checks that the fault sequence drawn
// for one source is a pure function of (seed, source, call index), no
// matter how calls against other sources interleave.
func TestInjectorDeterministicPerSource(t *testing.T) {
	plan := FaultPlan{ErrProb: 0.4, DelayProb: 0.3, Delay: time.Microsecond}
	seq := func(interleave bool) []bool {
		in := NewInjector(7, plan)
		var out []bool
		for i := 0; i < 64; i++ {
			if interleave {
				in.Apply(context.Background(), "other")
			}
			err := in.Apply(context.Background(), "s1")
			out = append(out, err != nil)
		}
		return out
	}
	a, b := seq(false), seq(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: fault decision for s1 changed when interleaved with another source", i)
		}
	}
}

func TestInjectorTypedErrors(t *testing.T) {
	in := NewInjector(1, FaultPlan{ErrProb: 1})
	err := in.Apply(context.Background(), "s")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if in.Errors() != 1 {
		t.Fatalf("Errors = %d, want 1", in.Errors())
	}
}

func TestInjectorStallHonorsContext(t *testing.T) {
	in := NewInjector(1, FaultPlan{StallProb: 1, Stall: time.Minute})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := in.Apply(ctx, "s")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("stall ignored context cancellation")
	}
}

func TestZeroPlanInjectsNothing(t *testing.T) {
	in := NewInjector(3, FaultPlan{})
	for i := 0; i < 100; i++ {
		if err := in.Apply(context.Background(), "s"); err != nil {
			t.Fatalf("zero plan injected a fault: %v", err)
		}
	}
	if in.Errors()+in.Stalls()+in.Delays() != 0 {
		t.Fatal("zero plan recorded injections")
	}
}

func TestInjectorErrorBurst(t *testing.T) {
	in := NewInjector(1, FaultPlan{})
	in.SetErrorBurst("s", 3)
	for i := 0; i < 3; i++ {
		if err := in.Apply(context.Background(), "s"); !errors.Is(err, ErrInjected) {
			t.Fatalf("burst call %d: err = %v, want ErrInjected", i, err)
		}
	}
	if err := in.Apply(context.Background(), "s"); err != nil {
		t.Fatalf("post-burst call: err = %v, want recovery", err)
	}
	if in.Errors() != 3 {
		t.Fatalf("Errors = %d, want 3", in.Errors())
	}
	// Bursts are per source; shard streams inherit the base source's burst.
	in.SetErrorBurst("s", 1)
	if err := in.ApplyShard(context.Background(), "s", 2); !errors.Is(err, ErrInjected) {
		t.Fatalf("shard did not inherit the base burst: %v", err)
	}
	if err := in.Apply(context.Background(), "other"); err != nil {
		t.Fatalf("burst leaked across sources: %v", err)
	}
}

func TestInjectorPinnedLatency(t *testing.T) {
	in := NewInjector(1, FaultPlan{})
	in.SetLatency("slow", 20*time.Millisecond)
	start := time.Now()
	if err := in.Apply(context.Background(), "slow"); err != nil {
		t.Fatalf("pinned latency errored: %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("pinned latency slept only %v", d)
	}
	if in.Latencies() != 1 {
		t.Fatalf("Latencies = %d, want 1", in.Latencies())
	}
	// Other sources are unaffected; clearing removes the pin.
	start = time.Now()
	if err := in.Apply(context.Background(), "fast"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Fatalf("unpinned source slept %v", d)
	}
	in.SetLatency("slow", 0)
	start = time.Now()
	if err := in.Apply(context.Background(), "slow"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Fatalf("cleared pin still slept %v", d)
	}
	// A pinned sleep honors context cancellation.
	in.SetLatency("slow", time.Minute)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if err := in.Apply(ctx, "slow"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}
