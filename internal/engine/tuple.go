// Package engine is a small in-memory relational engine: typed tuples,
// relations, constraint-query selection, and cross products. It is the
// substrate on which the reproduction *executes* translated queries so that
// the paper's subsumption guarantees (Definition 1, Eq. 3) can be verified
// empirically rather than only on paper.
//
// Constraint evaluation is pluggable per attribute/operator so that sources
// with non-standard attribute semantics — like Example 8's map source, where
// [Cll = (10,20)] selects the open region x ≥ 10 ∧ y ≥ 20 — can supply
// their own predicates.
package engine

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/qtree"
)

// Tuple maps attribute keys (qtree.Attr.Key()) to values. A tuple may carry
// attributes from several vocabularies at once — the mediator's view
// attributes and a source's native attributes — mirroring the paper's
// conceptual relations X that relate the two (Section 2). That is what lets
// a single tuple witness both an original query and its translation.
type Tuple map[string]qtree.Value

// Get returns the value of attribute a.
func (t Tuple) Get(a qtree.Attr) (qtree.Value, bool) {
	v, ok := t[a.Key()]
	return v, ok
}

// Set stores the value of attribute a.
func (t Tuple) Set(a qtree.Attr, v qtree.Value) { t[a.Key()] = v }

// Clone returns a shallow copy (values are immutable).
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	for k, v := range t {
		c[k] = v
	}
	return c
}

// Merge returns the union of two tuples; keys of u win on conflict.
func (t Tuple) Merge(u Tuple) Tuple {
	c := t.Clone()
	for k, v := range u {
		c[k] = v
	}
	return c
}

// String renders the tuple deterministically for tests and debugging.
func (t Tuple) String() string {
	keys := make([]string, 0, len(t))
	for k := range t {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%s", k, t[k].String())
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Relation is a named bag of tuples.
type Relation struct {
	Name   string
	Tuples []Tuple
}

// NewRelation returns a relation with the given name and tuples.
func NewRelation(name string, tuples ...Tuple) *Relation {
	return &Relation{Name: name, Tuples: tuples}
}

// Len returns the tuple count.
func (r *Relation) Len() int { return len(r.Tuples) }

// Select evaluates q over every tuple and returns the satisfying ones.
func (r *Relation) Select(q *qtree.Node, ev *Evaluator) (*Relation, error) {
	out := &Relation{Name: r.Name}
	for _, t := range r.Tuples {
		ok, err := ev.EvalQuery(q, t)
		if err != nil {
			return nil, fmt.Errorf("engine: selecting from %s: %w", r.Name, err)
		}
		if ok {
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out, nil
}

// Product returns the cross product of two relations; tuple attribute sets
// are expected to be disjoint (qualified by view/relation), and u's values
// win on conflict.
func Product(r, u *Relation) *Relation {
	out := &Relation{Name: r.Name + "x" + u.Name}
	for _, a := range r.Tuples {
		for _, b := range u.Tuples {
			out.Tuples = append(out.Tuples, a.Merge(b))
		}
	}
	return out
}
