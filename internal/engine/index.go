package engine

import (
	"repro/internal/qtree"
)

// Index is a hash index over one attribute's values, accelerating equality
// selections. Indexes are built once over an immutable relation snapshot;
// rebuilding after mutation is the caller's responsibility.
type Index struct {
	attr    string
	buckets map[string][]Tuple
}

// BuildIndex indexes relation r on the named attribute. Tuples lacking the
// attribute are not indexed (an equality probe cannot select them).
func BuildIndex(r *Relation, attrName string) *Index {
	idx := &Index{attr: attrName, buckets: make(map[string][]Tuple)}
	for _, t := range r.Tuples {
		if v, ok := t[attrName]; ok {
			k := valueBucketKey(v)
			idx.buckets[k] = append(idx.buckets[k], t)
		}
	}
	return idx
}

// Attr returns the indexed attribute name.
func (ix *Index) Attr() string { return ix.attr }

// Probe returns the tuples whose indexed attribute equals v.
func (ix *Index) Probe(v qtree.Value) []Tuple {
	return ix.buckets[valueBucketKey(v)]
}

// ProbeKey returns the tuples bucketed under a canonical value-identity key
// (qtree.ValueKey / Constraint.ValueKey). Constraints cache their key, so
// probing this way costs no allocation.
func (ix *Index) ProbeKey(key string) []Tuple {
	return ix.buckets[key]
}

// valueBucketKey mirrors the canonical value identity used by constraint
// keys (numeric kinds share one identity).
func valueBucketKey(v qtree.Value) string {
	return qtree.ValueKey(v)
}

// IndexSet holds the indexes available on one relation, by attribute name.
type IndexSet map[string]*Index

// BuildIndexes builds indexes for each named attribute.
func BuildIndexes(r *Relation, attrs ...string) IndexSet {
	out := make(IndexSet, len(attrs))
	for _, a := range attrs {
		out[a] = BuildIndex(r, a)
	}
	return out
}

// SelectIndexed evaluates q over the relation like Select, but when q is a
// simple conjunction containing equality constraints on indexed attributes
// with *default* semantics, it probes the index whose bucket is smallest —
// the most selective probe, not merely the first eligible one — and
// evaluates the full query only on that bucket. Overridden operators
// (source-specific semantics such as Amazon's structured author match)
// disable the probe for that constraint, since their equality is not value
// identity. Results are identical to Select's up to tuple order.
func (r *Relation) SelectIndexed(q *qtree.Node, ev *Evaluator, indexes IndexSet) (*Relation, error) {
	q = q.Normalize()
	if q.IsSimpleConjunction() {
		var best []Tuple
		probed := false
		for _, c := range q.SimpleConjuncts() {
			if c.IsJoin() || c.Op != qtree.OpEq || c.Val == nil {
				continue
			}
			if ev.hasOverride(c.Attr.Name, c.Op) {
				continue
			}
			ix, ok := indexes[c.Attr.Key()]
			if !ok {
				continue
			}
			bucket := ix.ProbeKey(c.ValueKey())
			if !probed || len(bucket) < len(best) {
				best, probed = bucket, true
			}
		}
		if probed {
			out := &Relation{Name: r.Name}
			for _, t := range best {
				match, err := ev.EvalQuery(q, t)
				if err != nil {
					return nil, err
				}
				if match {
					out.Tuples = append(out.Tuples, t)
				}
			}
			return out, nil
		}
	}
	return r.Select(q, ev)
}
