package engine

import (
	"testing"

	"repro/internal/qparse"
	"repro/internal/qtree"
	"repro/internal/values"
)

func tup(pairs ...any) Tuple {
	t := make(Tuple)
	for i := 0; i+1 < len(pairs); i += 2 {
		t.Set(qtree.A(pairs[i].(string)), pairs[i+1].(qtree.Value))
	}
	return t
}

func TestDefaultOpsComparisons(t *testing.T) {
	ev := NewEvaluator()
	tuple := tup("n", values.Int(5), "s", values.String("bravo"),
		"d", values.Date{Year: 1997, Month: 5, Day: 12})

	cases := []struct {
		q    string
		want bool
	}{
		{`[n = 5]`, true},
		{`[n != 5]`, false},
		{`[n < 6]`, true},
		{`[n <= 5]`, true},
		{`[n > 5]`, false},
		{`[n >= 5]`, true},
		{`[s = "bravo"]`, true},
		{`[s < "charlie"]`, true},
		{`[s > "alpha"]`, true},
		{`[d during May/97]`, true},
		{`[d during 97]`, true},
		{`[d during Jun/97]`, false},
		{`[d during 96]`, false},
	}
	for _, c := range cases {
		got, err := ev.EvalQuery(qparse.MustParse(c.q), tuple)
		if err != nil {
			t.Errorf("%s: %v", c.q, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestContainsAndStarts(t *testing.T) {
	ev := NewEvaluator()
	tuple := tup("ti", values.String("Java JDK in a Nutshell"))

	cases := []struct {
		q    string
		want bool
	}{
		{`[ti contains java]`, true},
		{`[ti contains java(^)jdk]`, true},
		{`[ti contains java(near)jdk]`, true},
		{`[ti contains java(^)python]`, false},
		{`[ti contains python(v)java]`, true},
		{`[ti starts "java jdk"]`, true}, // prefix match is case-insensitive
		{`[ti starts "jdk"]`, false},
	}
	for _, c := range cases {
		got, err := ev.EvalQuery(qparse.MustParse(c.q), tuple)
		if err != nil {
			t.Errorf("%s: %v", c.q, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestJoinConstraint(t *testing.T) {
	ev := NewEvaluator()
	tuple := tup("x", values.Int(3), "y", values.Int(3), "z", values.Int(4))
	ok, err := ev.EvalConstraint(qtree.Join(qtree.A("x"), qtree.OpEq, qtree.A("y")), tuple)
	if err != nil || !ok {
		t.Errorf("[x = y] = %v, %v", ok, err)
	}
	ok, err = ev.EvalConstraint(qtree.Join(qtree.A("x"), qtree.OpLt, qtree.A("z")), tuple)
	if err != nil || !ok {
		t.Errorf("[x < z] = %v, %v", ok, err)
	}
}

func TestBooleanEvaluation(t *testing.T) {
	ev := NewEvaluator()
	tuple := tup("a", values.Int(1), "b", values.Int(2))
	cases := []struct {
		q    string
		want bool
	}{
		{`[a = 1] and [b = 2]`, true},
		{`[a = 1] and [b = 3]`, false},
		{`[a = 9] or [b = 2]`, true},
		{`TRUE`, true},
		{`([a = 9] or [b = 9]) and [a = 1]`, false},
	}
	for _, c := range cases {
		got, err := ev.EvalQuery(qparse.MustParse(c.q), tuple)
		if err != nil {
			t.Errorf("%s: %v", c.q, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestMissingAttribute(t *testing.T) {
	ev := NewEvaluator()
	tuple := tup("a", values.Int(1))
	if _, err := ev.EvalQuery(qparse.MustParse(`[missing = 1]`), tuple); err == nil {
		t.Error("missing attribute should error by default")
	}
	ev.MissingIsFalse = true
	got, err := ev.EvalQuery(qparse.MustParse(`[missing = 1]`), tuple)
	if err != nil || got {
		t.Errorf("MissingIsFalse: got %v, %v", got, err)
	}
}

func TestOverride(t *testing.T) {
	ev := NewEvaluator()
	ev.Override("x", qtree.OpEq, func(tv, cv qtree.Value) (bool, error) {
		a, _ := values.Numeric(tv)
		b, _ := values.Numeric(cv)
		return a >= b, nil // '=' reinterpreted as ≥
	})
	tuple := tup("x", values.Int(10))
	got, err := ev.EvalQuery(qparse.MustParse(`[x = 5]`), tuple)
	if err != nil || !got {
		t.Errorf("override not applied: %v, %v", got, err)
	}
}

func TestTypeErrors(t *testing.T) {
	ev := NewEvaluator()
	tuple := tup("n", values.Int(5))
	for _, q := range []string{
		`[n contains java]`, `[n starts "x"]`, `[n during May/97]`,
	} {
		if _, err := ev.EvalQuery(qparse.MustParse(q), tuple); err == nil {
			t.Errorf("%s on int attribute should error", q)
		}
	}
	if _, err := Compare(values.Int(1), values.String("a")); err == nil {
		t.Error("cross-kind compare should error")
	}
}

func TestSelectAndProduct(t *testing.T) {
	r := NewRelation("r",
		tup("a", values.Int(1)),
		tup("a", values.Int(2)),
		tup("a", values.Int(3)),
	)
	ev := NewEvaluator()
	sel, err := r.Select(qparse.MustParse(`[a >= 2]`), ev)
	if err != nil || sel.Len() != 2 {
		t.Fatalf("select: %d tuples, %v", sel.Len(), err)
	}

	u := NewRelation("u", tup("b", values.Int(10)), tup("b", values.Int(20)))
	p := Product(r, u)
	if p.Len() != 6 {
		t.Fatalf("product: %d tuples, want 6", p.Len())
	}
	if _, ok := p.Tuples[0].Get(qtree.A("a")); !ok {
		t.Error("product tuple missing left attribute")
	}
	if _, ok := p.Tuples[0].Get(qtree.A("b")); !ok {
		t.Error("product tuple missing right attribute")
	}
}

func TestTupleCloneMerge(t *testing.T) {
	a := tup("x", values.Int(1))
	b := a.Clone()
	b.Set(qtree.A("x"), values.Int(2))
	if v, _ := a.Get(qtree.A("x")); !v.Equal(values.Int(1)) {
		t.Error("Clone shares storage")
	}
	m := a.Merge(tup("y", values.Int(3)))
	if _, ok := m.Get(qtree.A("y")); !ok {
		t.Error("Merge lost attribute")
	}
}

func TestCompareDates(t *testing.T) {
	early := values.Date{Year: 1996, Month: 12, Day: 31}
	late := values.Date{Year: 1997, Month: 1, Day: 1}
	c, err := Compare(early, late)
	if err != nil || c >= 0 {
		t.Errorf("Compare(dates) = %d, %v", c, err)
	}
}

func TestTupleString(t *testing.T) {
	tuple := tup("b", values.Int(2), "a", values.Int(1))
	if got := tuple.String(); got != "{a=1, b=2}" {
		t.Errorf("Tuple String = %q (must be deterministic, sorted)", got)
	}
}

func TestContainsStringConstant(t *testing.T) {
	ev := NewEvaluator()
	tuple := tup("s", values.String("alpha beta"))
	ok, err := ev.EvalConstraint(
		qtree.Sel(qtree.A("s"), qtree.OpContains, values.String("beta")), tuple)
	if err != nil || !ok {
		t.Errorf("contains with string constant = %v, %v", ok, err)
	}
	// Wrong constant kind errors.
	if _, err := ev.EvalConstraint(
		qtree.Sel(qtree.A("s"), qtree.OpContains, values.Int(1)), tuple); err == nil {
		t.Error("contains with int constant accepted")
	}
}

func TestUnsupportedOperator(t *testing.T) {
	ev := NewEvaluator()
	tuple := tup("a", values.Int(1))
	if _, err := ev.EvalConstraint(
		qtree.Sel(qtree.A("a"), "bogus-op", values.Int(1)), tuple); err == nil {
		t.Error("unsupported operator accepted")
	}
}
