package engine

import (
	"fmt"
	"strings"

	"repro/internal/qtree"
	"repro/internal/values"
)

// OpFunc evaluates a single selection predicate: tv is the tuple's value of
// the constrained attribute, cv the constraint's constant.
type OpFunc func(tv, cv qtree.Value) (bool, error)

// Evaluator evaluates constraint queries over tuples. Overrides registered
// with Override take precedence over the default operator semantics, keyed
// by (attribute name, operator); this is how sources with special attribute
// semantics (Example 8's Cll/Cur corners) plug in.
type Evaluator struct {
	overrides map[string]OpFunc
	// MissingIsFalse controls evaluation when the tuple lacks the
	// constrained attribute: if true the constraint is simply false; if
	// false (the default) evaluation fails with an error, which catches
	// vocabulary mismatches in tests.
	MissingIsFalse bool
}

// NewEvaluator returns an evaluator with the default operator semantics.
func NewEvaluator() *Evaluator {
	return &Evaluator{overrides: make(map[string]OpFunc)}
}

// Override installs fn for constraints on the named attribute (by bare
// attribute name, ignoring view/relation qualifiers) with operator op.
func (e *Evaluator) Override(attrName, op string, fn OpFunc) {
	e.overrides[attrName+"\x00"+op] = fn
}

// hasOverride reports whether a custom predicate is installed for the
// attribute/operator pair; index probes must not bypass it.
func (e *Evaluator) hasOverride(attrName, op string) bool {
	_, ok := e.overrides[attrName+"\x00"+op]
	return ok
}

// EvalQuery evaluates a whole query tree against a tuple.
func (e *Evaluator) EvalQuery(q *qtree.Node, t Tuple) (bool, error) {
	switch q.Kind {
	case qtree.KindTrue:
		return true, nil
	case qtree.KindLeaf:
		return e.EvalConstraint(q.C, t)
	case qtree.KindAnd:
		for _, k := range q.Kids {
			ok, err := e.EvalQuery(k, t)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	case qtree.KindOr:
		for _, k := range q.Kids {
			ok, err := e.EvalQuery(k, t)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	default:
		return false, fmt.Errorf("engine: invalid node kind %v", q.Kind)
	}
}

// EvalConstraint evaluates a single constraint against a tuple.
func (e *Evaluator) EvalConstraint(c *qtree.Constraint, t Tuple) (bool, error) {
	lv, ok := t.Get(c.Attr)
	if !ok {
		if e.MissingIsFalse {
			return false, nil
		}
		return false, fmt.Errorf("engine: tuple lacks attribute %s", c.Attr)
	}
	var rv qtree.Value
	if c.IsJoin() {
		rv, ok = t.Get(*c.RAttr)
		if !ok {
			if e.MissingIsFalse {
				return false, nil
			}
			return false, fmt.Errorf("engine: tuple lacks attribute %s", c.RAttr)
		}
	} else {
		rv = c.Val
	}
	if fn, ok := e.overrides[c.Attr.Name+"\x00"+c.Op]; ok {
		return fn(lv, rv)
	}
	return DefaultOp(c.Op, lv, rv)
}

// DefaultOp implements the standard operator semantics.
func DefaultOp(op string, lv, rv qtree.Value) (bool, error) {
	switch op {
	case qtree.OpEq:
		return lv.Equal(rv), nil
	case qtree.OpNe:
		return !lv.Equal(rv), nil
	case qtree.OpLt, qtree.OpLe, qtree.OpGt, qtree.OpGe:
		cmp, err := Compare(lv, rv)
		if err != nil {
			return false, err
		}
		switch op {
		case qtree.OpLt:
			return cmp < 0, nil
		case qtree.OpLe:
			return cmp <= 0, nil
		case qtree.OpGt:
			return cmp > 0, nil
		default:
			return cmp >= 0, nil
		}
	case qtree.OpContains:
		return evalContains(lv, rv)
	case qtree.OpStarts:
		ls, ok1 := asString(lv)
		rs, ok2 := asString(rv)
		if !ok1 || !ok2 {
			return false, fmt.Errorf("engine: starts needs string operands, got %s/%s", lv.Kind(), rv.Kind())
		}
		return strings.HasPrefix(strings.ToLower(ls), strings.ToLower(rs)), nil
	case qtree.OpDuring:
		ld, ok1 := lv.(values.Date)
		rd, ok2 := rv.(values.Date)
		if !ok1 || !ok2 {
			return false, fmt.Errorf("engine: during needs date operands, got %s/%s", lv.Kind(), rv.Kind())
		}
		// [pdate during May/97]: the constant period contains the tuple date.
		return rd.Contains(ld), nil
	default:
		return false, fmt.Errorf("engine: unsupported operator %q", op)
	}
}

func evalContains(lv, rv qtree.Value) (bool, error) {
	text, ok := asString(lv)
	if !ok {
		return false, fmt.Errorf("engine: contains needs a string attribute, got %s", lv.Kind())
	}
	switch p := rv.(type) {
	case *values.Pattern:
		return p.Match(text), nil
	case values.String:
		return values.Word(p.Raw()).Match(text), nil
	default:
		return false, fmt.Errorf("engine: contains needs a pattern or string constant, got %s", rv.Kind())
	}
}

func asString(v qtree.Value) (string, bool) {
	s, ok := v.(values.String)
	if !ok {
		return "", false
	}
	return s.Raw(), true
}

// Compare orders two values of the same family: numbers numerically,
// strings lexicographically, dates chronologically (by year, month, day
// with unspecified components ordered first).
func Compare(a, b qtree.Value) (int, error) {
	if x, ok := values.Numeric(a); ok {
		if y, ok := values.Numeric(b); ok {
			switch {
			case x < y:
				return -1, nil
			case x > y:
				return 1, nil
			default:
				return 0, nil
			}
		}
	}
	if x, ok := a.(values.String); ok {
		if y, ok := b.(values.String); ok {
			return strings.Compare(string(x), string(y)), nil
		}
	}
	if x, ok := a.(values.Date); ok {
		if y, ok := b.(values.Date); ok {
			ka := [3]int{x.Year, x.Month, x.Day}
			kb := [3]int{y.Year, y.Month, y.Day}
			for i := range ka {
				if ka[i] != kb[i] {
					if ka[i] < kb[i] {
						return -1, nil
					}
					return 1, nil
				}
			}
			return 0, nil
		}
	}
	return 0, fmt.Errorf("engine: cannot compare %s with %s", a.Kind(), b.Kind())
}
