package engine

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/qparse"
	"repro/internal/qtree"
	"repro/internal/values"
)

// accessRelation is the fixed probe-kind fixture: every attribute is total
// and family-uniform, so each operator family has a sound probe.
func accessRelation() *Relation {
	r := NewRelation("books")
	words := []string{"go systems", "query mapping", "systems design", "go query"}
	for i := 0; i < 40; i++ {
		r.Tuples = append(r.Tuples, tup(
			"cat", values.Int(int64(i%8)),
			"price", values.Int(int64(i*7%100)),
			"title", values.String(fmt.Sprintf("%s vol %d", words[i%len(words)], i)),
			"pdate", values.Date{Year: 1995 + i%4, Month: 1 + i%12},
		))
	}
	return r
}

// TestAccessPlanKinds: the planner picks the expected probe kind per
// operator and reports it through Describe.
func TestAccessPlanKinds(t *testing.T) {
	r := accessRelation()
	acc := BuildAccess(r)
	ev := NewEvaluator()
	ev.MissingIsFalse = true
	cases := []struct {
		query string
		want  string // Describe prefix: kind(attr)
	}{
		{`[cat = 3]`, "eq(cat)"},
		{`[price < 20]`, "rng(price)"},
		{`[title starts "go"]`, "pre(title)"},
		{`[title contains "mapping"]`, "tok(title)"},
		{`[pdate during 96]`, "rng(pdate)"},
		{`[cat = 3] or [cat = 5]`, "eq(cat):5+eq(cat)"},
		{`[cat != 3]`, "scan"}, // inequality has no probe
		{`[nope = 1]`, "nil(nope)"},
	}
	for _, tc := range cases {
		q := qparse.MustParse(tc.query)
		plan := acc.PlanQuery(q, ev)
		if d := plan.Describe(); !strings.HasPrefix(d, tc.want) {
			t.Errorf("%s: plan %q, want prefix %q", tc.query, d, tc.want)
		}
		if tc.want == "scan" && plan.Probed() {
			t.Errorf("%s: expected fallback plan", tc.query)
		}
	}
}

// TestSelectAccessByteIdentical: SelectAccess must reproduce Select's answer
// byte-for-byte, including tuple order, across probed and fallback plans.
func TestSelectAccessByteIdentical(t *testing.T) {
	r := accessRelation()
	acc := BuildAccess(r)
	ev := NewEvaluator()
	ev.MissingIsFalse = true
	ctx := context.Background()
	queries := []string{
		`[cat = 3]`,
		`[cat = 3] and [price < 40]`,
		`[price >= 80] or [title starts "query"]`,
		`[title contains "systems"] and [cat != 2]`,
		`[pdate during 96] or [pdate during Feb/97]`,
		`[cat = 99]`,
		`[missing = 1] or [cat = 0]`,
		`([cat = 1] or [cat = 2]) and ([price > 10] or [title contains "go"])`,
	}
	for _, qs := range queries {
		q := qparse.MustParse(qs)
		want, err := r.Select(q, ev)
		if err != nil {
			t.Fatalf("%s: scan: %v", qs, err)
		}
		got, err := r.SelectAccess(ctx, q, ev, acc)
		if err != nil {
			t.Fatalf("%s: access: %v", qs, err)
		}
		if err := sameRelation(want, got); err != nil {
			t.Errorf("%s: %v", qs, err)
		}
	}
}

func sameRelation(want, got *Relation) error {
	if want.Len() != got.Len() {
		return fmt.Errorf("access returned %d tuples, scan %d", got.Len(), want.Len())
	}
	for i := range want.Tuples {
		if want.Tuples[i].String() != got.Tuples[i].String() {
			return fmt.Errorf("tuple %d differs: access %s, scan %s",
				i, got.Tuples[i], want.Tuples[i])
		}
	}
	return nil
}

// TestAccessRespectsOverrides: an overridden (attribute, operator) pair must
// not be probed — the override's semantics replace value identity.
func TestAccessRespectsOverrides(t *testing.T) {
	r := NewRelation("r",
		tup("author", values.String("Clancy, Tom")),
		tup("author", values.String("Clancy, Jack")),
		tup("author", values.String("Smith, Ann")),
	)
	ev := NewEvaluator()
	ev.Override("author", qtree.OpEq, func(tv, cv qtree.Value) (bool, error) {
		st, _ := tv.(values.String)
		cs, _ := cv.(values.String)
		ln, _ := values.NameToLnFn(st.Raw())
		qn, _ := values.NameToLnFn(cs.Raw())
		return ln == qn, nil
	})
	acc := BuildAccess(r)
	q := qparse.MustParse(`[author = "Clancy"]`)
	if plan := acc.PlanQuery(q, ev); plan.Probed() {
		t.Fatalf("overridden equality planned as %q, want scan", plan.Describe())
	}
	got, err := r.SelectAccess(context.Background(), q, ev, acc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Errorf("override select returned %d tuples, want 2", got.Len())
	}
}

// TestAccessStatsCounters: probed plans count probes and candidate tuples;
// fallback plans count fallbacks and universe scans.
func TestAccessStatsCounters(t *testing.T) {
	r := accessRelation()
	acc := BuildAccess(r)
	ev := NewEvaluator()
	ev.MissingIsFalse = true
	ctx := context.Background()

	if _, err := r.SelectAccess(ctx, qparse.MustParse(`[cat = 3]`), ev, acc); err != nil {
		t.Fatal(err)
	}
	st := acc.Stats()
	if st.Probes != 1 || st.Fallbacks != 0 {
		t.Fatalf("after probe: %+v", st)
	}
	if st.Scanned != 5 { // 40 tuples, cat = i%8: exactly 5 candidates
		t.Errorf("probe scanned %d tuples, want 5", st.Scanned)
	}

	if _, err := r.SelectAccess(ctx, qparse.MustParse(`[cat != 3]`), ev, acc); err != nil {
		t.Fatal(err)
	}
	st = acc.Stats()
	if st.Fallbacks != 1 {
		t.Fatalf("after fallback: %+v", st)
	}
	if st.Scanned != 5+40 {
		t.Errorf("fallback scanned %d total tuples, want 45", st.Scanned)
	}
}

// TestAttrStats: build-time statistics reflect the value distribution.
func TestAttrStats(t *testing.T) {
	r := accessRelation()
	acc := BuildAccess(r)
	st, ok := acc.AttrStats("cat")
	if !ok {
		t.Fatal("no stats for cat")
	}
	if st.Count != 40 || st.Distinct != 8 || st.MaxBucket != 5 {
		t.Errorf("cat stats = %+v, want Count 40, Distinct 8, MaxBucket 5", st)
	}
	if _, ok := acc.AttrStats("nope"); ok {
		t.Error("stats reported for an attribute no tuple carries")
	}
}

// TestSelectIndexedPicksSmallestBucket: with several indexed equality
// conjuncts, SelectIndexed must evaluate over the smallest bucket — counted
// through an overridden leading conjunct that sees every evaluated tuple.
func TestSelectIndexedPicksSmallestBucket(t *testing.T) {
	r := NewRelation("r")
	for i := 0; i < 100; i++ {
		r.Tuples = append(r.Tuples, tup(
			"big", values.Int(1), // one 100-tuple bucket
			"small", values.Int(int64(i/2)), // 2-tuple buckets
			"flag", values.Int(5),
		))
	}
	ev := NewEvaluator()
	evaluated := 0
	ev.Override("flag", qtree.OpEq, func(tv, cv qtree.Value) (bool, error) {
		evaluated++
		return true, nil
	})
	indexes := BuildIndexes(r, "big", "small")
	// flag leads so the counting override runs once per candidate tuple.
	q := qparse.MustParse(`[flag = 5] and [big = 1] and [small = 7]`)
	got, err := r.SelectIndexed(q, ev, indexes)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("returned %d tuples, want 2", got.Len())
	}
	if evaluated != 2 {
		t.Errorf("evaluated %d candidate tuples, want 2 (the smallest bucket, not the first)", evaluated)
	}
}

// fuzzAttrs drives the random query generator: each attribute with the
// operators and constants the fuzzer may pair with it. "mixed" holds values
// from two comparison families, so range probes are unsound there and the
// planner must preserve scan-path errors; "ghost" is carried by no tuple.
var fuzzWords = []string{"alpha", "beta", "gamma", "delta", "query", "map"}

func fuzzRelation(rng *rand.Rand, n int) *Relation {
	r := NewRelation("fz")
	for i := 0; i < n; i++ {
		t := Tuple{}
		if rng.Intn(10) > 0 {
			t["a"] = values.Int(int64(rng.Intn(12)))
		}
		if rng.Intn(10) > 1 {
			t["s"] = values.String(fuzzWords[rng.Intn(len(fuzzWords))] + " " + fuzzWords[rng.Intn(len(fuzzWords))])
		}
		if rng.Intn(10) > 2 {
			d := values.Date{Year: 1995 + rng.Intn(3)}
			if rng.Intn(2) == 0 {
				d.Month = 1 + rng.Intn(12)
				if rng.Intn(2) == 0 {
					d.Day = 1 + rng.Intn(28)
				}
			}
			t["d"] = d
		}
		if rng.Intn(2) == 0 {
			if rng.Intn(2) == 0 {
				t["mixed"] = values.Int(int64(rng.Intn(5)))
			} else {
				t["mixed"] = values.String(fuzzWords[rng.Intn(len(fuzzWords))])
			}
		}
		if len(t) == 0 {
			t["a"] = values.Int(0)
		}
		r.Tuples = append(r.Tuples, t)
	}
	return r
}

func fuzzConstraint(rng *rand.Rand) *qtree.Constraint {
	switch rng.Intn(7) {
	case 0:
		ops := []string{qtree.OpEq, qtree.OpNe, qtree.OpLt, qtree.OpLe, qtree.OpGt, qtree.OpGe}
		return qtree.Sel(qtree.A("a"), ops[rng.Intn(len(ops))], values.Int(int64(rng.Intn(14)-1)))
	case 1:
		ops := []string{qtree.OpEq, qtree.OpStarts, qtree.OpContains}
		return qtree.Sel(qtree.A("s"), ops[rng.Intn(len(ops))], values.String(fuzzWords[rng.Intn(len(fuzzWords))]))
	case 2:
		d := values.Date{Year: 1995 + rng.Intn(3)}
		if rng.Intn(2) == 0 {
			d.Month = 1 + rng.Intn(12)
		}
		return qtree.Sel(qtree.A("d"), qtree.OpDuring, d)
	case 3:
		return qtree.Sel(qtree.A("d"), qtree.OpEq, values.Date{Year: 1995 + rng.Intn(3), Month: 1 + rng.Intn(12)})
	case 4: // mixed family: comparisons error on the wrong-family tuples
		ops := []string{qtree.OpEq, qtree.OpLt, qtree.OpGe, qtree.OpContains}
		return qtree.Sel(qtree.A("mixed"), ops[rng.Intn(len(ops))], values.Int(int64(rng.Intn(5))))
	case 5: // ghost attribute: no tuple carries it
		return qtree.Sel(qtree.A("ghost"), qtree.OpEq, values.Int(int64(rng.Intn(3))))
	default: // overridable pair (the fuzz evaluator may override a/=)
		return qtree.Sel(qtree.A("a"), qtree.OpEq, values.Int(int64(rng.Intn(12))))
	}
}

func fuzzQuery(rng *rand.Rand, depth int) *qtree.Node {
	if depth <= 0 || rng.Intn(3) == 0 {
		return qtree.Leaf(fuzzConstraint(rng))
	}
	kids := make([]*qtree.Node, 1+rng.Intn(3))
	for i := range kids {
		kids[i] = fuzzQuery(rng, depth-1)
	}
	if rng.Intn(2) == 0 {
		return qtree.And(kids...)
	}
	return qtree.Or(kids...)
}

// FuzzIndexEquivalence: for random relations, evaluators, and queries —
// including overridden operators, missing attributes, and mixed-family
// values — SelectAccess must agree with Select byte-for-byte, and when the
// scan path errors the access path must return the identical error.
func FuzzIndexEquivalence(f *testing.F) {
	for _, s := range []int64{1, 7, 42, 1001, 31337} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		r := fuzzRelation(rng, 30+rng.Intn(120))
		ev := NewEvaluator()
		ev.MissingIsFalse = rng.Intn(4) > 0
		if rng.Intn(3) == 0 {
			ev.Override("a", qtree.OpEq, func(tv, cv qtree.Value) (bool, error) {
				x, _ := values.Numeric(tv)
				y, _ := values.Numeric(cv)
				return int64(x)%3 == int64(y)%3, nil
			})
		}
		acc := BuildAccess(r)
		ctx := context.Background()
		for i := 0; i < 24; i++ {
			q := fuzzQuery(rng, 2)
			want, werr := r.Select(q, ev)
			got, gerr := r.SelectAccess(ctx, q, ev, acc)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("seed %d q=%s: scan err %v, access err %v", seed, q, werr, gerr)
			}
			if werr != nil {
				if werr.Error() != gerr.Error() {
					t.Fatalf("seed %d q=%s: error text differs\nscan:   %v\naccess: %v", seed, q, werr, gerr)
				}
				continue
			}
			if err := sameRelation(want, got); err != nil {
				t.Fatalf("seed %d q=%s: %v", seed, q, err)
			}
		}
	})
}
