package engine

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/qtree"
	"repro/internal/values"
)

// family classifies values into the engine's comparison families (see
// Compare): numbers, strings, dates, and everything else. Probing and
// error-safety analysis reason per family.
type family uint8

const (
	famOther family = iota
	famNum
	famStr
	famDate
	numFamilies
)

func familyOf(v qtree.Value) family {
	if _, ok := values.Numeric(v); ok {
		return famNum
	}
	switch v.(type) {
	case values.String:
		return famStr
	case values.Date:
		return famDate
	}
	return famOther
}

// AttrStats summarizes one attribute's value distribution, collected while
// building an Access. The planner ranks probes by exact index counts; these
// statistics cost residual predicates that have no index support.
type AttrStats struct {
	// Count is the number of tuples carrying the attribute.
	Count int
	// Distinct is the number of distinct values under the canonical value
	// identity (qtree.ValueKey).
	Distinct int
	// BucketHist is a log2 histogram of equality-bucket sizes:
	// BucketHist[i] counts distinct values occurring in [2^i, 2^(i+1))
	// tuples (sizes beyond the last bin land in it).
	BucketHist [16]int
	// MaxBucket is the largest equality-bucket size.
	MaxBucket int
}

// attrAccess bundles one attribute's indexes and statistics. Positions are
// indices into the relation's tuple slice; every position list is ascending,
// which is what lets probe results replay the scan path's emission order.
type attrAccess struct {
	stats AttrStats
	fams  [numFamilies]int
	fam   family // uniform family of all carried values; famOther when mixed or exotic
	// eq maps canonical value keys to ascending positions (hash index).
	eq map[string][]int32
	// sorted orders the carrying positions by value, ties by position; built
	// only for a uniform comparable family. Backs <,<=,>,>= range probes.
	sorted []int32
	// lex orders string positions by lowercased raw value (ties by
	// position) for case-insensitive prefix probes; lowered is aligned.
	lex     []int32
	lowered []string
	// tokens maps each word token of string values to ascending positions
	// (inverted token index for contains probes).
	tokens map[string][]int32
}

// uniform reports the single comparable family all carried values share,
// or famOther when the attribute is empty, mixed, or not comparable.
func (aa *attrAccess) uniform() family { return aa.fam }

// AccessStats is a snapshot of an Access's cumulative execution counters.
type AccessStats struct {
	// Probes counts index probes executed (one per planned disjunct per
	// selection).
	Probes uint64
	// Fallbacks counts selections answered by a full scan because no sound
	// probe existed.
	Fallbacks uint64
	// Scanned counts tuples evaluated: probe candidates on indexed
	// selections, the whole range on fallbacks.
	Scanned uint64
}

// Access is the cost-based access-path layer over one immutable relation
// snapshot: a hash index for equality, sorted-position arrays for range and
// prefix probes, an inverted token index for contains-word probes, and
// per-attribute statistics — all position-based, so indexed execution can
// reproduce the scan path's tuple order byte-for-byte. Build once with
// BuildAccess; safe for concurrent use afterwards.
type Access struct {
	rel   *Relation
	attrs map[string]*attrAccess

	probes    atomic.Uint64
	fallbacks atomic.Uint64
	scanned   atomic.Uint64
}

// BuildAccess indexes relation r. With no explicit attrs every attribute
// appearing in the relation is indexed; otherwise only the named ones (by
// tuple key, i.e. qtree.Attr.Key()). The relation must not be mutated while
// the Access is live.
func BuildAccess(r *Relation, attrs ...string) *Access {
	var want map[string]bool
	if len(attrs) > 0 {
		want = make(map[string]bool, len(attrs))
		for _, a := range attrs {
			want[a] = true
		}
	}
	a := &Access{rel: r, attrs: make(map[string]*attrAccess)}
	for pos, t := range r.Tuples {
		for k, v := range t {
			if want != nil && !want[k] {
				continue
			}
			aa := a.attrs[k]
			if aa == nil {
				aa = &attrAccess{eq: make(map[string][]int32)}
				a.attrs[k] = aa
			}
			aa.stats.Count++
			aa.fams[familyOf(v)]++
			key := qtree.ValueKey(v)
			aa.eq[key] = append(aa.eq[key], int32(pos))
		}
	}
	for k, aa := range a.attrs {
		aa.finish(r, k)
	}
	return a
}

// finish derives the sorted/prefix/token structures and statistics once the
// position buckets are collected.
func (aa *attrAccess) finish(r *Relation, key string) {
	aa.stats.Distinct = len(aa.eq)
	for _, bucket := range aa.eq {
		n := len(bucket)
		if n > aa.stats.MaxBucket {
			aa.stats.MaxBucket = n
		}
		bin := 0
		for s := n; s > 1 && bin < len(aa.stats.BucketHist)-1; s >>= 1 {
			bin++
		}
		aa.stats.BucketHist[bin]++
	}
	aa.fam = famOther
	for f := famNum; f < numFamilies; f++ {
		if aa.fams[f] == aa.stats.Count && aa.stats.Count > 0 {
			aa.fam = f
		}
	}
	if aa.fam == famOther {
		return
	}
	aa.sorted = make([]int32, 0, aa.stats.Count)
	for _, bucket := range aa.eq {
		aa.sorted = append(aa.sorted, bucket...)
	}
	val := func(pos int32) qtree.Value { return r.Tuples[pos][key] }
	sort.Slice(aa.sorted, func(i, j int) bool {
		cmp, err := Compare(val(aa.sorted[i]), val(aa.sorted[j]))
		if err != nil || cmp == 0 {
			return aa.sorted[i] < aa.sorted[j]
		}
		return cmp < 0
	})
	if aa.fam != famStr {
		return
	}
	aa.lex = make([]int32, len(aa.sorted))
	copy(aa.lex, aa.sorted)
	aa.lowered = make([]string, len(aa.lex))
	low := make(map[int32]string, len(aa.lex))
	for _, pos := range aa.lex {
		s, _ := val(pos).(values.String)
		low[pos] = strings.ToLower(s.Raw())
	}
	sort.Slice(aa.lex, func(i, j int) bool {
		li, lj := low[aa.lex[i]], low[aa.lex[j]]
		if li != lj {
			return li < lj
		}
		return aa.lex[i] < aa.lex[j]
	})
	for i, pos := range aa.lex {
		aa.lowered[i] = low[pos]
	}
	aa.tokens = buildTokens(r, key)
}

// buildTokens builds the inverted token index for a uniformly-string
// attribute: token → ascending positions, deduplicated per tuple.
func buildTokens(r *Relation, key string) map[string][]int32 {
	tokens := make(map[string][]int32)
	for pos, t := range r.Tuples {
		v, ok := t[key]
		if !ok {
			continue
		}
		s, ok := v.(values.String)
		if !ok {
			continue
		}
		seen := map[string]bool{}
		for _, tok := range values.Tokenize(s.Raw()) {
			if seen[tok] {
				continue
			}
			seen[tok] = true
			tokens[tok] = append(tokens[tok], int32(pos))
		}
	}
	return tokens
}

// Relation returns the relation snapshot the Access was built over.
func (a *Access) Relation() *Relation { return a.rel }

// Stats returns a snapshot of the cumulative execution counters.
func (a *Access) Stats() AccessStats {
	return AccessStats{
		Probes:    a.probes.Load(),
		Fallbacks: a.fallbacks.Load(),
		Scanned:   a.scanned.Load(),
	}
}

// AttrStats returns the build-time statistics for an attribute (by tuple
// key), and whether the attribute is indexed.
func (a *Access) AttrStats(attr string) (AttrStats, bool) {
	aa, ok := a.attrs[attr]
	if !ok {
		return AttrStats{}, false
	}
	return aa.stats, true
}

// probeKind discriminates the access paths a disjunct can take.
type probeKind uint8

const (
	probeEq     probeKind = iota // hash-index equality bucket
	probeRange                   // sorted-array range slice
	probePrefix                  // lowercased prefix slice
	probeToken                   // inverted-index postings for a word
	probeEmpty                   // provably empty (attr carried by no tuple)
)

func (k probeKind) String() string {
	switch k {
	case probeEq:
		return "eq"
	case probeRange:
		return "rng"
	case probePrefix:
		return "pre"
	case probeToken:
		return "tok"
	case probeEmpty:
		return "nil"
	}
	return "?"
}

// probe is one chosen access path: an exactly-counted candidate set for one
// constraint of a disjunct. exact means the candidates are precisely the
// constraint's matches (the constraint is dropped from the residual);
// otherwise they are a superset and the constraint is re-evaluated.
type probe struct {
	kind  probeKind
	attr  string
	count int
	exact bool
	c     *qtree.Constraint

	bucket   []int32 // probeEq: ascending positions
	postings []int32 // probeToken: ascending positions
	aa       *attrAccess
	lo, hi   int // probeRange/probePrefix: subrange of aa.sorted / aa.lex
	useLex   bool
}

// disjunctPlan is one disjunct's execution recipe: probe the candidates,
// then evaluate the residual conjuncts cheapest-first.
type disjunctPlan struct {
	probe    probe
	residual []*qtree.Constraint
}

// AccessPlan is a planned execution of one query over one Access. A plan
// either probes (every disjunct has a sound, exactly-counted access path) or
// falls back to the full scan; either way Scan emits matching positions in
// ascending order, reproducing Relation.Select's tuple order.
type AccessPlan struct {
	acc       *Access
	orig      *qtree.Node
	ev        *Evaluator
	probed    bool
	disjuncts []disjunctPlan
	desc      string
}

// Probed reports whether the plan uses index probes; false means full scan.
func (p *AccessPlan) Probed() bool { return p.probed }

// Describe renders the chosen access path, one probe per disjunct —
// e.g. "eq(author):3+tok(subject):17" — or "scan" for the fallback.
func (p *AccessPlan) Describe() string { return p.desc }

// PlanQuery plans q for execution over the Access. Probing requires every
// top-level disjunct of the normalized query to be a simple conjunction with
// (a) at least one probe-capable constraint and (b) no conjunct whose
// evaluation could error on any tuple of this relation (missing attributes
// under strict evaluation, cross-family comparisons, non-string pattern
// operands, unknown operators). Constraints whose (attribute, operator) pair
// carries an Evaluator override never probe — their semantics are not value
// identity — but may appear in residuals. When probing is unsound anywhere,
// the whole query falls back to the scan path, keeping error behavior
// byte-identical to Relation.Select.
func (a *Access) PlanQuery(q *qtree.Node, ev *Evaluator) *AccessPlan {
	p := &AccessPlan{acc: a, orig: q, ev: ev, desc: "scan"}
	qn := q.Normalize()
	if qn.Kind == qtree.KindTrue {
		return p
	}
	djs, ok := qn.DisjunctConjuncts()
	if !ok || len(djs) == 0 {
		return p
	}
	plans := make([]disjunctPlan, 0, len(djs))
	var desc strings.Builder
	for _, conjs := range djs {
		dp, ok := a.planDisjunct(conjs, ev)
		if !ok {
			return p
		}
		plans = append(plans, dp)
		if desc.Len() > 0 {
			desc.WriteByte('+')
		}
		fmt.Fprintf(&desc, "%s(%s):%d", dp.probe.kind, dp.probe.attr, dp.probe.count)
	}
	p.probed = true
	p.disjuncts = plans
	p.desc = desc.String()
	return p
}

// planDisjunct picks the cheapest sound probe for one conjunct list and
// orders the residual cheapest-predicate-first. ok=false forces the whole
// query to the scan path.
func (a *Access) planDisjunct(conjs []*qtree.Constraint, ev *Evaluator) (disjunctPlan, bool) {
	if len(conjs) == 0 {
		// A True disjunct admits every tuple; scanning is the access path.
		return disjunctPlan{}, false
	}
	for _, c := range conjs {
		if !a.errorSafe(c, ev) {
			return disjunctPlan{}, false
		}
	}
	best, found := probe{}, false
	for _, c := range conjs {
		pr, ok := a.probeFor(c, ev)
		if !ok {
			continue
		}
		if !found || pr.count < best.count {
			best, found = pr, true
		}
	}
	if !found {
		return disjunctPlan{}, false
	}
	residual := make([]*qtree.Constraint, 0, len(conjs))
	for _, c := range conjs {
		if best.exact && c == best.c {
			continue
		}
		residual = append(residual, c)
	}
	sort.SliceStable(residual, func(i, j int) bool {
		return a.estimate(residual[i], ev) < a.estimate(residual[j], ev)
	})
	return disjunctPlan{probe: best, residual: residual}, true
}

// presentSafe reports whether evaluating a constraint on attr can never trip
// the strict missing-attribute error: either evaluation treats absence as
// false, or every tuple carries the attribute.
func (a *Access) presentSafe(attr qtree.Attr, ev *Evaluator) bool {
	if ev.MissingIsFalse {
		return true
	}
	aa := a.attrs[attr.Key()]
	return aa != nil && aa.stats.Count == len(a.rel.Tuples)
}

// carried returns the attribute's index bundle and whether any tuple carries
// it. A nil bundle with ok=false means the attribute never occurs: every
// default-semantics constraint on it is vacuously error-free on values.
func (a *Access) carried(attr qtree.Attr) (*attrAccess, bool) {
	aa := a.attrs[attr.Key()]
	if aa == nil || aa.stats.Count == 0 {
		return nil, false
	}
	return aa, true
}

// errorSafe reports whether evaluating c can never error on any tuple of
// this relation. Probing skips tuples and reorders residuals, both of which
// change *which* evaluations run; requiring every conjunct of a probed
// disjunct to be incapable of erroring makes the indexed path's behavior —
// including error behavior — identical to the scan's.
func (a *Access) errorSafe(c *qtree.Constraint, ev *Evaluator) bool {
	if !a.presentSafe(c.Attr, ev) {
		return false
	}
	if c.IsJoin() && !a.presentSafe(*c.RAttr, ev) {
		return false
	}
	if ev.hasOverride(c.Attr.Name, c.Op) {
		// Override semantics are the source's own; both paths run the same
		// override on the same tuples it can match, so its errors (if any)
		// surface identically. Treat as total.
		return true
	}
	laa, lok := a.carried(c.Attr)
	if !lok {
		return true // never evaluated on a value
	}
	var rfam family
	rUniform := true
	if c.IsJoin() {
		raa, rok := a.carried(*c.RAttr)
		if !rok {
			return true
		}
		rfam = raa.uniform()
		rUniform = rfam != famOther
	} else if c.Val != nil {
		rfam = familyOf(c.Val)
	} else {
		return false
	}
	switch c.Op {
	case qtree.OpEq, qtree.OpNe:
		return true // Equal is total
	case qtree.OpLt, qtree.OpLe, qtree.OpGt, qtree.OpGe:
		f := laa.uniform()
		return f != famOther && rUniform && f == rfam
	case qtree.OpStarts:
		return laa.uniform() == famStr && rUniform && rfam == famStr
	case qtree.OpContains:
		if laa.uniform() != famStr {
			return false
		}
		if c.IsJoin() {
			return rfam == famStr
		}
		switch c.Val.(type) {
		case values.String, *values.Pattern:
			return true
		}
		return false
	case qtree.OpDuring:
		return laa.uniform() == famDate && rUniform && rfam == famDate
	default:
		return false // unknown operator errors on every tuple
	}
}

// probeFor derives an exactly-counted candidate probe for c, when one is
// sound: equality via the hash index, ranges via the sorted array, starts
// via the lowercased prefix order, contains via the rarest required word's
// postings. Overridden (attribute, operator) pairs never probe.
func (a *Access) probeFor(c *qtree.Constraint, ev *Evaluator) (probe, bool) {
	if c.IsJoin() || c.Val == nil || ev.hasOverride(c.Attr.Name, c.Op) {
		return probe{}, false
	}
	attrKey := c.Attr.Key()
	aa, ok := a.carried(c.Attr)
	if !ok {
		// No tuple carries the attribute: under MissingIsFalse (guaranteed
		// by errorSafe) the constraint is false everywhere.
		return probe{kind: probeEmpty, attr: attrKey, exact: true, c: c}, true
	}
	switch c.Op {
	case qtree.OpEq:
		// The hash bucket is keyed by canonical value identity, which
		// coincides with Value.Equal within the num/str/date families;
		// exotic kinds (patterns, ranges) don't carry that guarantee.
		if aa.fams[famOther] > 0 || familyOf(c.Val) == famOther {
			return probe{}, false
		}
		bucket := aa.eq[c.ValueKey()]
		return probe{kind: probeEq, attr: attrKey, count: len(bucket), exact: true, c: c, bucket: bucket}, true
	case qtree.OpLt, qtree.OpLe, qtree.OpGt, qtree.OpGe:
		f := aa.uniform()
		if f == famOther || f != familyOf(c.Val) || len(aa.sorted) == 0 {
			return probe{}, false
		}
		lo, hi := aa.rangeBounds(a.rel, attrKey, c.Op, c.Val)
		return probe{kind: probeRange, attr: attrKey, count: hi - lo, exact: true, c: c, aa: aa, lo: lo, hi: hi}, true
	case qtree.OpStarts:
		if aa.uniform() != famStr {
			return probe{}, false
		}
		s, ok := c.Val.(values.String)
		if !ok {
			return probe{}, false
		}
		prefix := strings.ToLower(s.Raw())
		lo := sort.Search(len(aa.lowered), func(i int) bool { return aa.lowered[i] >= prefix })
		hi := lo + sort.Search(len(aa.lowered)-lo, func(i int) bool {
			return !strings.HasPrefix(aa.lowered[lo+i], prefix)
		})
		return probe{kind: probePrefix, attr: attrKey, count: hi - lo, exact: true, c: c, aa: aa, lo: lo, hi: hi, useLex: true}, true
	case qtree.OpContains:
		if aa.uniform() != famStr {
			return probe{}, false
		}
		words, exact := requiredWords(c.Val)
		if len(words) == 0 {
			return probe{}, false
		}
		best, bestLen := "", -1
		for _, w := range words {
			if n := len(aa.tokens[w]); bestLen < 0 || n < bestLen {
				best, bestLen = w, n
			}
		}
		postings := aa.tokens[best]
		return probe{kind: probeToken, attr: attrKey, count: len(postings), exact: exact && len(words) == 1, c: c, postings: postings}, true
	case qtree.OpDuring:
		if aa.uniform() != famDate {
			return probe{}, false
		}
		d, ok := c.Val.(values.Date)
		if !ok {
			return probe{}, false
		}
		lo, hi := aa.duringBounds(a.rel, attrKey, d)
		return probe{kind: probeRange, attr: attrKey, count: hi - lo, exact: true, c: c, aa: aa, lo: lo, hi: hi}, true
	}
	return probe{}, false
}

// rangeBounds binary-searches the sorted-position array for the half-open
// candidate window of a range constraint. Families were pre-validated, so
// Compare cannot error.
func (aa *attrAccess) rangeBounds(r *Relation, attrKey, op string, cv qtree.Value) (int, int) {
	cmpAt := func(i int) int {
		cmp, _ := Compare(r.Tuples[aa.sorted[i]][attrKey], cv)
		return cmp
	}
	firstGE := sort.Search(len(aa.sorted), func(i int) bool { return cmpAt(i) >= 0 })
	firstGT := firstGE + sort.Search(len(aa.sorted)-firstGE, func(i int) bool { return cmpAt(firstGE+i) > 0 })
	switch op {
	case qtree.OpLt:
		return 0, firstGE
	case qtree.OpLe:
		return 0, firstGT
	case qtree.OpGt:
		return firstGT, len(aa.sorted)
	default: // OpGe
		return firstGE, len(aa.sorted)
	}
}

// duringBounds binary-searches the chronologically-sorted positions for the
// window of tuple dates the period d contains. Compare orders dates by
// (year, month, day) with unspecified components first, so each period — a
// whole year, a month, or a single day — is the contiguous run of dates whose
// specified-component prefix matches d exactly (Date.Contains demands the
// tuple date specify at least the components d does).
func (aa *attrAccess) duringBounds(r *Relation, attrKey string, d values.Date) (int, int) {
	depth := 3
	switch {
	case d.Month == 0:
		depth = 1
	case d.Day == 0:
		depth = 2
	}
	want := [3]int{d.Year, d.Month, d.Day}
	cmpAt := func(i int) int {
		t := r.Tuples[aa.sorted[i]][attrKey].(values.Date)
		have := [3]int{t.Year, t.Month, t.Day}
		for j := 0; j < depth; j++ {
			if have[j] != want[j] {
				if have[j] < want[j] {
					return -1
				}
				return 1
			}
		}
		return 0
	}
	lo := sort.Search(len(aa.sorted), func(i int) bool { return cmpAt(i) >= 0 })
	hi := lo + sort.Search(len(aa.sorted)-lo, func(i int) bool { return cmpAt(lo+i) > 0 })
	return lo, hi
}

// requiredWords extracts word tokens every match of a contains constant must
// carry. exact reports that token presence alone decides the match (single
// keyword); conjunctive and proximity patterns still need re-evaluation, and
// disjunctive patterns require nothing (not probeable this way).
func requiredWords(v qtree.Value) (words []string, exact bool) {
	switch t := v.(type) {
	case values.String:
		return []string{strings.ToLower(t.Raw())}, true
	case *values.Pattern:
		return patternRequired(t)
	}
	return nil, false
}

func patternRequired(p *values.Pattern) ([]string, bool) {
	switch p.Op {
	case values.PatWord:
		return []string{strings.ToLower(p.Word)}, true
	case values.PatAnd, values.PatNear:
		var out []string
		for _, s := range p.Subs {
			ws, _ := patternRequired(s)
			out = append(out, ws...)
		}
		return out, false
	default: // PatOr: no single required word
		return nil, false
	}
}

// estimate scores a residual constraint's expected match fraction, ordering
// residual evaluation most-selective-first. Probe-capable constraints use
// exact index counts; the rest fall back to statistics and per-operator
// heuristics.
func (a *Access) estimate(c *qtree.Constraint, ev *Evaluator) float64 {
	n := len(a.rel.Tuples)
	if n == 0 {
		return 0
	}
	if pr, ok := a.probeFor(c, ev); ok {
		return float64(pr.count) / float64(n)
	}
	var sel float64
	switch c.Op {
	case qtree.OpEq:
		sel = 0.1
		if aa, ok := a.carried(c.Attr); ok && aa.stats.Distinct > 0 {
			sel = float64(aa.stats.Count) / float64(aa.stats.Distinct) / float64(n)
		}
	case qtree.OpNe:
		sel = 0.9
	case qtree.OpLt, qtree.OpLe, qtree.OpGt, qtree.OpGe:
		sel = 0.33
	case qtree.OpStarts, qtree.OpContains:
		sel = 0.1
	case qtree.OpDuring:
		sel = 0.2
	default:
		sel = 0.5
	}
	if c.IsJoin() {
		sel = 0.5
	}
	return sel
}

// candidates materializes the probe's candidate positions restricted to the
// global window [lo, hi), ascending. Hash buckets and postings slice an
// already-ascending list; sorted-array windows are position-sorted copies.
func (pr *probe) candidates(lo, hi int) []int32 {
	switch pr.kind {
	case probeEmpty:
		return nil
	case probeEq:
		return clipAscending(pr.bucket, lo, hi)
	case probeToken:
		return clipAscending(pr.postings, lo, hi)
	default:
		src := pr.aa.sorted
		if pr.useLex {
			src = pr.aa.lex
		}
		out := make([]int32, 0, pr.hi-pr.lo)
		for _, pos := range src[pr.lo:pr.hi] {
			if int(pos) >= lo && int(pos) < hi {
				out = append(out, pos)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
}

// clipAscending returns the subslice of an ascending position list that
// falls inside [lo, hi).
func clipAscending(ps []int32, lo, hi int) []int32 {
	i := sort.Search(len(ps), func(k int) bool { return int(ps[k]) >= lo })
	j := i + sort.Search(len(ps)-i, func(k int) bool { return int(ps[i+k]) >= hi })
	return ps[i:j]
}

// Scan streams the positions in [lo, hi) whose tuples satisfy the query, in
// ascending order — the scan path's emission order. The context is polled on
// a stride so cancelled executions stop promptly; a nil visit error
// continues, any other error aborts the scan. Execution counters accrue on
// the Access.
func (p *AccessPlan) Scan(ctx context.Context, lo, hi int, visit func(pos int) error) error {
	a := p.acc
	if !p.probed {
		a.fallbacks.Add(1)
		a.scanned.Add(uint64(hi - lo))
		for pos := lo; pos < hi; pos++ {
			if (pos-lo)&63 == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			ok, err := p.ev.EvalQuery(p.orig, a.rel.Tuples[pos])
			if err != nil {
				return err
			}
			if ok {
				if err := visit(pos); err != nil {
					return err
				}
			}
		}
		return nil
	}
	a.probes.Add(uint64(len(p.disjuncts)))
	cands := make([][]int32, len(p.disjuncts))
	for i := range p.disjuncts {
		cands[i] = p.disjuncts[i].probe.candidates(lo, hi)
	}
	idx := make([]int, len(cands))
	var scanned uint64
	defer func() { a.scanned.Add(scanned) }()
	for {
		best := -1
		for i := range cands {
			if idx[i] < len(cands[i]) {
				if pos := int(cands[i][idx[i]]); best < 0 || pos < best {
					best = pos
				}
			}
		}
		if best < 0 {
			return nil
		}
		if scanned&63 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		scanned++
		t := a.rel.Tuples[best]
		matched := false
		for i := range cands {
			if idx[i] < len(cands[i]) && int(cands[i][idx[i]]) == best {
				idx[i]++
				if !matched {
					ok, err := p.matchDisjunct(i, t)
					if err != nil {
						return err
					}
					matched = ok
				}
			}
		}
		if matched {
			if err := visit(best); err != nil {
				return err
			}
		}
	}
}

// matchDisjunct evaluates disjunct i's residual conjuncts (cheapest-first,
// And-short-circuit) against a candidate tuple.
func (p *AccessPlan) matchDisjunct(i int, t Tuple) (bool, error) {
	for _, c := range p.disjuncts[i].residual {
		ok, err := p.ev.EvalConstraint(c, t)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// SelectAccess evaluates q like Select but through acc's cost-based planner:
// per-disjunct index probes with residual re-evaluation when sound, full
// scan otherwise. Results are byte-identical to Select — same tuples, same
// order, same errors. ctx is polled on a stride, giving indexed selections
// the cancellation points plain Select lacks. A nil acc, or one built over a
// different relation, degrades to Select.
func (r *Relation) SelectAccess(ctx context.Context, q *qtree.Node, ev *Evaluator, acc *Access) (*Relation, error) {
	if acc == nil || acc.rel != r {
		return r.Select(q, ev)
	}
	plan := acc.PlanQuery(q, ev)
	out := &Relation{Name: r.Name}
	err := plan.Scan(ctx, 0, len(r.Tuples), func(pos int) error {
		out.Tuples = append(out.Tuples, r.Tuples[pos])
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("engine: selecting from %s: %w", r.Name, err)
	}
	return out, nil
}
