package conformance

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/mediator"
	"repro/internal/qtree"
	"repro/internal/resilience"
	"repro/internal/serve"
	"repro/internal/sources"
)

// permute returns a deep copy of q with every interior node's children
// reversed — a structurally different but canonically equivalent query, used
// to exercise the serving layer's canonical translation cache.
func permute(q *qtree.Node) *qtree.Node {
	cp := q.Clone()
	var rev func(n *qtree.Node)
	rev = func(n *qtree.Node) {
		for i, j := 0, len(n.Kids)-1; i < j; i, j = i+1, j-1 {
			n.Kids[i], n.Kids[j] = n.Kids[j], n.Kids[i]
		}
		for _, k := range n.Kids {
			rev(k)
		}
	}
	rev(cp)
	return cp
}

// serveConfig is one point of the serve-equivalence grid.
type serveConfig struct {
	name string
	cfg  serve.Config
	// fresh rebuilds the server per request — a cold cache every time,
	// equivalent to serving with the translation cache off.
	fresh bool
}

// checkServe stands up the serving stack over the case's scenario — the data
// split across two sources sharing the scenario's vocabulary — and demands
// that every grid point — cache on / effectively off × sequential / parallel
// workers × {materialized, streaming with shards 1, 2, 8} — answers both the
// original query and a structurally permuted equivalent byte-identically to
// the sequential mediator baseline (mediator.ExecuteUnion). With
// Options.Faults set it re-runs the grid under an injected fault mix
// (transient errors, benign delays, timeout-tripping stalls; per-shard
// streams on the streaming points) and additionally demands that failures
// carry only typed errors and that retrying reaches the exact baseline
// answer.
func (h *Harness) checkServe(c *Case) *Violation {
	med, data := c.serveStack()
	want, _, err := med.ExecuteUnion(c.Query, data)
	if err != nil {
		return &Violation{Oracle: "harness", Detail: fmt.Sprintf("mediator baseline: %v", err)}
	}
	wantS := renderRelation(want)
	permuted := permute(c.Query)

	grid := []serveConfig{
		{name: "seq/cache", cfg: serve.Config{Workers: 1, CacheSize: 64}},
		{name: "par/cache", cfg: serve.Config{Workers: 4, CacheSize: 64}},
		{name: "par/nocache", cfg: serve.Config{Workers: 4, CacheSize: 64}, fresh: true},
		{name: "stream/shards=1", cfg: serve.Config{Workers: 4, CacheSize: 64, Stream: true, Shards: 1}},
		{name: "stream/shards=2", cfg: serve.Config{Workers: 4, CacheSize: 64, Stream: true, Shards: 2}},
		{name: "stream/shards=8", cfg: serve.Config{Workers: 4, CacheSize: 64, Stream: true, Shards: 8, StreamBuffer: 4}},
		// The index dimension: cost-based access paths must reproduce each
		// scan path byte-identically (content and order) on both the
		// materialized and streaming executors.
		{name: "seq/cache/index", cfg: serve.Config{Workers: 1, CacheSize: 64, Index: true}},
		{name: "par/cache/index", cfg: serve.Config{Workers: 4, CacheSize: 64, Index: true}},
		{name: "stream/shards=1/index", cfg: serve.Config{Workers: 4, CacheSize: 64, Stream: true, Shards: 1, Index: true}},
		{name: "stream/shards=2/index", cfg: serve.Config{Workers: 4, CacheSize: 64, Stream: true, Shards: 2, Index: true}},
		{name: "stream/shards=8/index", cfg: serve.Config{Workers: 4, CacheSize: 64, Stream: true, Shards: 8, StreamBuffer: 4, Index: true}},
		// The resilience dimension ({breaker on/off} × {hedge on/off}, plus
		// retries and TinyLFU cache admission): all of it must be invisible
		// on clean runs — answers byte-identical to the unprotected path,
		// because breakers only trip on errors, retries only re-run failed
		// executions, hedges duplicate pure selections, and admission only
		// decides what is cached, never what is answered.
		{name: "par/cache/breaker", cfg: serve.Config{Workers: 4, CacheSize: 64,
			Resilience: serve.ResilienceConfig{Breaker: true}}},
		{name: "par/cache/hedge", cfg: serve.Config{Workers: 4, CacheSize: 64,
			Resilience: serve.ResilienceConfig{Hedge: true}}},
		{name: "par/cache/breaker+hedge", cfg: serve.Config{Workers: 4, CacheSize: 64,
			Resilience: serve.ResilienceConfig{Breaker: true, Hedge: true, Retries: 2}}},
		{name: "par/cache/admission", cfg: serve.Config{Workers: 4,
			Cache: serve.CacheConfig{Size: 64, Admission: true}}},
		{name: "stream/shards=2/breaker", cfg: serve.Config{Workers: 4, CacheSize: 64,
			Stream: true, Shards: 2,
			Resilience: serve.ResilienceConfig{Breaker: true}}},
	}
	ctx := context.Background()
	stale := staleIndexExecutor()
	silent := silentBreakerExecutor()

	for _, gc := range grid {
		cfg := gc.cfg
		if h.opts.Plant == PlantBadIndex && cfg.Index && !cfg.Stream {
			cfg.Executor = stale
		}
		if h.opts.Plant == PlantBadBreaker && cfg.Resilience.Breaker && !cfg.Stream {
			cfg.Executor = silent
		}
		srv := serve.New(med, data, cfg)
		for qi, q := range []*qtree.Node{c.Query, permuted} {
			if gc.fresh {
				srv = serve.New(med, data, cfg)
			}
			got, err := srv.Query(ctx, q)
			if err != nil {
				return &Violation{Oracle: "serve-equivalence", Variant: gc.name,
					Detail: fmt.Sprintf("query %d failed without faults: %v", qi, err)}
			}
			if g := renderRelation(got); g != wantS {
				return &Violation{Oracle: "serve-equivalence", Variant: gc.name,
					Detail: fmt.Sprintf("answer differs from sequential mediator baseline\nq = %s\ngot %d tuples, want %d", q, got.Len(), want.Len())}
			}
		}
		if gc.cfg.Stream {
			st := srv.Stats()
			if st.StreamRequests != 2 {
				return &Violation{Oracle: "serve-equivalence", Variant: gc.name,
					Detail: fmt.Sprintf("streaming server answered %d of 2 requests on the streaming path", st.StreamRequests)}
			}
			if st.StreamInFlight != 0 {
				return &Violation{Oracle: "serve-equivalence", Variant: gc.name,
					Detail: fmt.Sprintf("stream in-flight gauge = %d after requests returned, want 0", st.StreamInFlight)}
			}
		}
		if !gc.fresh {
			st := srv.Stats()
			if st.CacheHits+st.CacheMisses+st.CacheShared < 2 {
				return &Violation{Oracle: "serve-equivalence", Variant: gc.name,
					Detail: fmt.Sprintf("cache accounting lost lookups: hits=%d misses=%d shared=%d for 2 queries",
						st.CacheHits, st.CacheMisses, st.CacheShared)}
			}
			if st.CacheHits == 0 {
				return &Violation{Oracle: "serve-equivalence", Variant: gc.name,
					Detail: "permuted-but-equivalent query missed the canonical translation cache"}
			}
		}
	}

	if h.opts.Faults {
		return h.checkServeFaults(c, med, data, wantS)
	}
	return nil
}

// staleIndexExecutor implements the badindex plant: a source executor that
// answers indexed selections from a stale snapshot — the relation and its
// access structure as they looked before the last tuple arrived — so
// indexed answers silently drop tuples the scan path keeps. The
// serve-equivalence oracle must catch the divergence against the
// sequential mediator baseline.
func staleIndexExecutor() serve.SourceExecutor {
	type snap struct {
		rel *engine.Relation
		acc *engine.Access
	}
	var mu sync.Mutex
	memo := map[*engine.Relation]snap{}
	return func(ctx context.Context, source string, rel *engine.Relation, q *qtree.Node, ev *engine.Evaluator, ix engine.IndexSet, acc *engine.Access) (*engine.Relation, error) {
		if acc == nil || rel.Len() == 0 {
			return serve.DefaultExecutor(ctx, source, rel, q, ev, ix, acc)
		}
		mu.Lock()
		s, ok := memo[rel]
		if !ok {
			s.rel = engine.NewRelation(rel.Name, rel.Tuples[:rel.Len()-1]...)
			s.acc = engine.BuildAccess(s.rel)
			memo[rel] = s
		}
		mu.Unlock()
		return s.rel.SelectAccess(ctx, q, ev, s.acc)
	}
}

// silentBreakerExecutor implements the badbreaker plant: a defective
// breaker integration that, once a source has "tripped" (here: after its
// first execution), silently answers that source's selections with an empty
// relation instead of failing the request with the typed ErrBreakerOpen.
// That is exactly the degraded-answer-contract violation the resilience
// layer forbids — a tripped source silently omitted from a union answer —
// and the serve-equivalence oracle must catch it as an answer smaller than
// the sequential baseline.
func silentBreakerExecutor() serve.SourceExecutor {
	var mu sync.Mutex
	execs := map[string]int{}
	return func(ctx context.Context, source string, rel *engine.Relation, q *qtree.Node, ev *engine.Evaluator, ix engine.IndexSet, acc *engine.Access) (*engine.Relation, error) {
		mu.Lock()
		n := execs[source]
		execs[source] = n + 1
		mu.Unlock()
		if source == "sB" && n > 0 {
			return engine.NewRelation(source), nil
		}
		return serve.DefaultExecutor(ctx, source, rel, q, ev, ix, acc)
	}
}

// faultPlan is the mix the fault-injected grid runs under: frequent typed
// transient errors, benign sub-timeout delays, and stalls long enough to trip
// the per-source timeout below.
var faultPlan = engine.FaultPlan{
	ErrProb:   0.25,
	StallProb: 0.15,
	Stall:     50 * time.Millisecond,
	DelayProb: 0.25,
	Delay:     400 * time.Microsecond,
}

// faultTimeout bounds each per-source execution under faults; it sits far
// below Stall and far above a real in-memory selection.
const faultTimeout = 5 * time.Millisecond

// checkServeFaults runs the serving stack under the injector and demands the
// transient-fault contract: every failed request carries a typed error
// (engine.ErrInjected or a context deadline), and within Options.ServeTries
// retries the answer converges to the fault-free baseline, byte-identically.
func (h *Harness) checkServeFaults(c *Case, med *mediator.Mediator, data map[string]*engine.Relation, wantS string) *Violation {
	type faultConfig struct {
		variant string
		plan    engine.FaultPlan
		make    func(inj *engine.Injector) serve.Config
	}
	var grid []faultConfig
	for _, workers := range []int{1, 4} {
		for _, index := range []bool{false, true} {
			workers, index := workers, index
			grid = append(grid, faultConfig{
				variant: fmt.Sprintf("faults/workers=%d/index=%v", workers, index),
				plan:    faultPlan,
				make: func(inj *engine.Injector) serve.Config {
					return serve.Config{
						Workers:       workers,
						CacheSize:     64,
						SourceTimeout: faultTimeout,
						Index:         index,
						Executor: func(ctx context.Context, source string, rel *engine.Relation, q *qtree.Node, ev *engine.Evaluator, ix engine.IndexSet, acc *engine.Access) (*engine.Relation, error) {
							if err := inj.Apply(ctx, source); err != nil {
								return nil, err
							}
							return serve.DefaultExecutor(ctx, source, rel, q, ev, ix, acc)
						},
					}
				},
			})
		}
	}
	// The resilience combos under faults ({breaker} × {hedge}, plus retry):
	// failed requests must still carry only typed errors — now including
	// ErrBreakerOpen — and successes must still be byte-identical to the
	// fault-free baseline. The breaker cool-down is shortened so the retry
	// loop can observe recovery rather than starving on fast-fails.
	shortOpen := resilience.BreakerConfig{OpenFor: 2 * time.Millisecond}
	for _, res := range []struct {
		tag string
		rc  serve.ResilienceConfig
	}{
		{"breaker", serve.ResilienceConfig{Breaker: true, BreakerConfig: shortOpen}},
		{"hedge", serve.ResilienceConfig{Hedge: true}},
		{"breaker+hedge+retry", serve.ResilienceConfig{
			Breaker: true, BreakerConfig: shortOpen, Hedge: true, Retries: 2}},
	} {
		res := res
		grid = append(grid, faultConfig{
			variant: "faults/" + res.tag,
			plan:    faultPlan,
			make: func(inj *engine.Injector) serve.Config {
				return serve.Config{
					Workers:       4,
					CacheSize:     64,
					SourceTimeout: faultTimeout,
					Resilience:    res.rc,
					Executor: func(ctx context.Context, source string, rel *engine.Relation, q *qtree.Node, ev *engine.Evaluator, ix engine.IndexSet, acc *engine.Access) (*engine.Relation, error) {
						if err := inj.Apply(ctx, source); err != nil {
							return nil, err
						}
						return serve.DefaultExecutor(ctx, source, rel, q, ev, ix, acc)
					},
				}
			},
		})
	}
	for _, shards := range []int{1, 2, 8} {
		for _, index := range []bool{false, true} {
			shards, index := shards, index
			// A streaming request draws one fault per shard instead of one per
			// source, so scale the per-draw probabilities by 1/shards to keep
			// per-request fault exposure (and the retry loop's success odds)
			// comparable to the materialized grid points.
			plan := faultPlan
			plan.ErrProb /= float64(shards)
			plan.StallProb /= float64(shards)
			grid = append(grid, faultConfig{
				variant: fmt.Sprintf("faults/stream/shards=%d/index=%v", shards, index),
				plan:    plan,
				make: func(inj *engine.Injector) serve.Config {
					return serve.Config{
						Workers:       4,
						CacheSize:     64,
						SourceTimeout: faultTimeout,
						Stream:        true,
						Shards:        shards,
						StreamBuffer:  4,
						Index:         index,
						ShardHook:     inj.ApplyShard,
					}
				},
			})
		}
	}
	for _, fc := range grid {
		inj := engine.NewInjector(c.Seed, fc.plan)
		srv := serve.New(med, data, fc.make(inj))
		ok := false
		for try := 0; try < h.opts.ServeTries; try++ {
			got, err := srv.Query(context.Background(), c.Query)
			if err != nil {
				if !typedFault(err) {
					return &Violation{Oracle: "serve-equivalence", Variant: fc.variant,
						Detail: fmt.Sprintf("untyped error under fault injection: %v", err)}
				}
				continue
			}
			if g := renderRelation(got); g != wantS {
				return &Violation{Oracle: "serve-equivalence", Variant: fc.variant,
					Detail: fmt.Sprintf("successful answer under faults differs from fault-free baseline\ngot %d tuples", got.Len())}
			}
			ok = true
			break
		}
		if !ok {
			return &Violation{Oracle: "serve-equivalence", Variant: fc.variant,
				Detail: fmt.Sprintf("no successful answer in %d tries (injected: %d errors, %d stalls, %d delays)",
					h.opts.ServeTries, inj.Errors(), inj.Stalls(), inj.Delays())}
		}
	}
	return nil
}

// typedFault reports whether err is one of the contractually allowed fault
// shapes: the injector's typed transient error, a context deadline /
// cancellation surfaced by the per-source timeout, or the breaker's typed
// fast-fail — the degraded-answer contract says a tripped source must
// surface ErrBreakerOpen, never a silently smaller answer.
func typedFault(err error) bool {
	return errors.Is(err, engine.ErrInjected) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, serve.ErrBreakerOpen)
}

// serveStack builds the mediation stack the serve oracle runs: two sources
// sharing the scenario's specification and evaluator (union-style
// integration of replicas), with the case dataset split between them.
func (c *Case) serveStack() (*mediator.Mediator, map[string]*engine.Relation) {
	s1 := &sources.Source{Name: "sA", Spec: c.S.Spec, Eval: c.S.Eval}
	s2 := &sources.Source{Name: "sB", Spec: c.S.Spec, Eval: c.S.Eval}
	med := mediator.New(s1, s2)
	med.Eval = c.S.Eval
	r1, r2 := engine.NewRelation("sA"), engine.NewRelation("sB")
	for i, t := range c.Data {
		if i%2 == 0 {
			r1.Tuples = append(r1.Tuples, t)
		} else {
			r2.Tuples = append(r2.Tuples, t)
		}
	}
	return med, map[string]*engine.Relation{"sA": r1, "sB": r2}
}
